package core

import (
	"math"
	"math/rand"
	"testing"

	"mdgan/internal/gan"
	"mdgan/internal/tensor"
)

// Swap-path cross-dtype round-trip: a discriminator's parameters framed
// in either wire dtype must stream back into a peer's storage, exact at
// the native width and within float32 rounding for the narrow one.
func TestSwapParamsCrossDtype(t *testing.T) {
	d := gan.RingMLP().NewGAN(1, 0, 0).D
	rng := rand.New(rand.NewSource(31))
	for _, p := range d.Params() {
		for i := range p.W.Data {
			p.W.Data[i] = tensor.Elem(rng.NormFloat64())
		}
	}

	for _, tc := range []struct {
		name string
		dt   byte
		tol  float64
	}{
		{"native", tensor.NativeDType, 0},
		{"f64", tensor.DTypeF64, tensor.Tol(0, 0)},
		{"f32", tensor.DTypeF32, tensor.Tol(2e-7, 0)},
	} {
		var frames []byte
		for _, p := range d.Params() {
			frames = p.W.AppendBinaryAs(frames, tc.dt)
		}
		peer := gan.RingMLP().NewGAN(2, 0, 0).D
		if err := decodeDiscParamsInto(peer, frames); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		dp, pp := d.Params(), peer.Params()
		for i := range dp {
			for j, v := range dp[i].W.Data {
				if diff := math.Abs(float64(v) - float64(pp[i].W.Data[j])); diff > tc.tol {
					t.Fatalf("%s: param %d[%d] deviates by %g (tol %g)", tc.name, i, j, diff, tc.tol)
				}
			}
		}
	}
}

// The native swap payload size follows the compiled element width: the
// Table III W→W accounting must shrink 2× under the f32 build.
func TestSwapPayloadSizeTracksDtype(t *testing.T) {
	d := gan.RingMLP().NewGAN(1, 0, 0).D
	payload := encodeDiscParams(d, SwapNative)
	if int64(len(payload)) != d.EncodedParamSize() {
		t.Fatalf("swap payload %d bytes, EncodedParamSize says %d", len(payload), d.EncodedParamSize())
	}
	perParam := int64(0)
	elems := int64(0)
	for _, p := range d.Params() {
		perParam += int64(1 + 4 + 4*p.W.Rank())
		elems += int64(p.W.Size())
	}
	if want := perParam + int64(tensor.ElemBytes)*elems; int64(len(payload)) != want {
		t.Fatalf("swap payload %d bytes, want %d (%d-byte elements)", len(payload), want, tensor.ElemBytes)
	}
}

// The default swap precision ships 4-byte elements regardless of build:
// the payload matches the f32-framing size, decodes into a peer within
// float32 rounding, and swapPayloadSize agrees with what the traffic
// accounting will observe per swap message. This is the cross-build
// contract of the FP32-swap default — a frame produced by either build
// is the same f32 frame, and either build decodes it.
func TestSwapFP32DefaultPayload(t *testing.T) {
	d := gan.RingMLP().NewGAN(1, 0, 0).D
	rng := rand.New(rand.NewSource(33))
	for _, p := range d.Params() {
		for i := range p.W.Data {
			p.W.Data[i] = tensor.Elem(rng.NormFloat64())
		}
	}
	payload := encodeSwap(7, d, SwapFP32)
	if int64(len(payload)) != 4+d.EncodedParamSizeAs(tensor.DTypeF32) {
		t.Fatalf("fp32 swap payload %d bytes, want round tag + %d", len(payload), d.EncodedParamSizeAs(tensor.DTypeF32))
	}
	if int64(len(payload)) != swapPayloadSize(d, SwapFP32) {
		t.Fatalf("swapPayloadSize disagrees with the encoder: %d vs %d",
			swapPayloadSize(d, SwapFP32), len(payload))
	}
	if tensor.ElemBytes == 8 && int64(len(payload)) >= d.EncodedParamSize() {
		t.Fatalf("f64 build: fp32 swap payload %d not below native %d",
			len(payload), d.EncodedParamSize())
	}
	round, params, err := decodeSwap(payload)
	if err != nil {
		t.Fatal(err)
	}
	if round != 7 {
		t.Fatalf("swap round tag = %d, want 7", round)
	}
	peer := gan.RingMLP().NewGAN(2, 0, 0).D
	if err := decodeDiscParamsInto(peer, params); err != nil {
		t.Fatal(err)
	}
	dp, pp := d.Params(), peer.Params()
	for i := range dp {
		for j, v := range dp[i].W.Data {
			diff := math.Abs(float64(v) - float64(pp[i].W.Data[j]))
			if diff > 2e-7*(1+math.Abs(float64(v))) {
				t.Fatalf("param %d[%d] deviates by %g beyond f32 rounding", i, j, diff)
			}
		}
	}
}

// Feedback cross-dtype: a feedback encoded by the opposite-width build
// (simulated via AppendBinaryAs) decodes under CompressNone framing.
func TestFeedbackCrossDtype(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	f := randFeedback(rng, 6, 9)
	for _, dt := range []byte{tensor.DTypeF64, tensor.DTypeF32} {
		enc := append([]byte{byte(CompressNone)}, f.AppendBinaryAs(nil, dt)...)
		got, err := decodeFeedbackAny(enc, f.Shape())
		if err != nil {
			t.Fatalf("dtype %#x: %v", dt, err)
		}
		tol := 0.0
		if dt == tensor.DTypeF32 {
			tol = 2e-7
		}
		for i, v := range f.Data {
			if math.Abs(float64(v)-float64(got.Data[i])) > tol*(1+math.Abs(float64(v))) {
				t.Fatalf("dtype %#x: element %d deviates", dt, i)
			}
		}
	}
}

func TestWorkerRoundTripAllCompressionsStillTrains(t *testing.T) {
	// End-to-end: each compression mode completes a short K>1 run and
	// produces a finite generator (the dtype-aware wire in real use).
	for _, mode := range []Compression{CompressNone, CompressFP32, CompressTopK} {
		shards := ringShards(3, 120, 61)
		cfg := baseConfig()
		cfg.Iters = 12
		cfg.K = 2
		cfg.Compress = mode
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for _, v := range res.G.Net.ParamVector() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v: non-finite generator parameter", mode)
			}
		}
	}
}
