//go:build !race

package core

// raceEnabled relaxes steady-state allocation budgets under the race
// detector; see race_on_test.go.
const raceEnabled = false
