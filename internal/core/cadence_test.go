package core

import "testing"

// Regression (PR 3): the swap cadence used truncating integer division,
// m·E/b, so small shards systematically swapped too often — m=100, E=1,
// b=64 gave 1 iteration instead of the nearest-integer 2 (true cadence
// 1.5625), and any m·E < b collapsed to every iteration. The cadence is
// now round-to-nearest with a floor of 1, computed once by the server
// from the MINIMUM shard size, so workers with uneven shards share one
// schedule and can never drift apart.
func TestSwapIntervalFor(t *testing.T) {
	for _, tc := range []struct {
		name  string
		sizes []int
		swapE int
		batch int
		want  int
	}{
		{"exact-division", []int{100}, 1, 10, 10},
		{"round-up", []int{100}, 1, 64, 2},        // 1.5625 → 2 (pre-fix: 1)
		{"round-down", []int{100}, 1, 70, 1},      // 1.43 → 1
		{"tiny-shard-floor", []int{30}, 1, 64, 1}, // 0.47 → floor at 1
		{"multi-epoch", []int{100}, 3, 64, 5},     // 4.6875 → 5 (pre-fix: 4)
		{"half-up", []int{96}, 1, 64, 2},          // exactly 1.5 → 2
		{"uneven-shards-use-min", []int{999, 100, 250}, 1, 64, 2},
		{"uneven-shards-exact", []int{50, 200, 200}, 2, 10, 10},
		{"disabled-negative", []int{100}, -1, 10, 0},
		{"disabled-zero", []int{100}, 0, 10, 0},
		{"no-shards", nil, 1, 10, 0},
		{"large-shard", []int{50000}, 1, 10, 5000},
	} {
		if got := swapIntervalFor(tc.sizes, tc.swapE, tc.batch); got != tc.want {
			t.Errorf("%s: swapIntervalFor(%v, E=%d, b=%d) = %d, want %d",
				tc.name, tc.sizes, tc.swapE, tc.batch, got, tc.want)
		}
	}
}

// All workers derive their swap schedule from the single server-side
// cadence: the same shard multiset in any order yields the same value.
func TestSwapIntervalOrderInvariant(t *testing.T) {
	base := []int{120, 480, 77, 3000}
	perms := [][]int{
		{120, 480, 77, 3000},
		{3000, 77, 480, 120},
		{77, 3000, 120, 480},
	}
	want := swapIntervalFor(base, 2, 32)
	for _, p := range perms {
		if got := swapIntervalFor(p, 2, 32); got != want {
			t.Fatalf("order-dependent cadence: %v vs %v", got, want)
		}
	}
}
