package core

// Buffer-ownership contract tests. Since PR 1, Generator/Discriminator
// Forward and Backward return module-owned buffers that are valid only
// until that module's next call; code that retains results across
// passes must Clone (or otherwise consume the buffer first). The round
// engine's generate stage relies on the "consume first" form — each
// generated batch is encoded into its wire frame before the next
// Forward clobbers the buffer, and apply re-forwards from the retained
// latents instead of retaining outputs; the async path still clones
// X^(g) before generating X^(d), and the worker feedback path encodes
// immediately. These tests intentionally retain outputs WITHOUT
// cloning and assert the corruption is real — if a refactor ever
// changes the ownership model, they fail loudly and the retention
// sites plus the internal/nn package doc must be revisited together.

import (
	"math/rand"
	"testing"

	"mdgan/internal/gan"
	"mdgan/internal/nn"
	"mdgan/internal/tensor"
)

func testCouple(t *testing.T) *gan.GAN {
	t.Helper()
	return gan.ScaledMLP(16).NewGAN(3, nn.GenLossNonSaturating, 1)
}

func tensorsDiffer(a, b *tensor.Tensor) bool {
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return true
		}
	}
	return false
}

// TestGeneratorForwardCloneOrCorrupt pins the contract at the sync
// server call site: the k generated batches of one global iteration
// share the generator's output buffer, so the engine's generate stage
// must consume each one (encode it into its wire frame) before the
// next Forward — retaining the raw output would corrupt it exactly as
// demonstrated here.
func TestGeneratorForwardCloneOrCorrupt(t *testing.T) {
	g := testCouple(t).G
	rng := rand.New(rand.NewSource(11))

	z1, l1 := g.SampleZ(4, rng)
	x1 := g.Forward(z1, l1, true) // retained WITHOUT clone
	kept := x1.Clone()            // an encode-before-next-Forward stand-in

	z2, l2 := g.SampleZ(4, rng)
	x2 := g.Forward(z2, l2, true)

	if &x1.Data[0] != &x2.Data[0] {
		t.Fatal("Generator.Forward returned a fresh buffer: the documented " +
			"clone-or-corrupt contract changed — update the retention sites " +
			"in core (engine.go generate/apply), async, metrics and this test together")
	}
	if !tensorsDiffer(kept, x1) {
		t.Fatal("second Forward left the retained buffer intact; the contract test is vacuous")
	}
}

// TestAsyncBatchCloneOrCorrupt replays the async server's send(): the
// X^(g) batch must survive the X^(d) forward that follows it, which
// only the Clone guarantees (async.go, "the X^(g) batch must survive
// the X^(d) forward below").
func TestAsyncBatchCloneOrCorrupt(t *testing.T) {
	g := testCouple(t).G
	rng := rand.New(rand.NewSource(13))

	zg, lg := g.SampleZ(4, rng)
	raw := g.Forward(zg, lg, true) // the un-cloned alias
	xg := raw.Clone()              // what send() does
	snapshot := xg.Clone()

	zd, ld := g.SampleZ(4, rng)
	_ = g.Forward(zd, ld, true) // generating X^(d) clobbers the alias

	if !tensorsDiffer(raw, snapshot) {
		t.Fatal("X^(d) forward left the retained X^(g) alias intact; contract is vacuous")
	}
	if tensorsDiffer(xg, snapshot) {
		t.Fatal("the cloned X^(g) batch was corrupted: Clone no longer detaches storage")
	}
}

// TestFeedbackCloneOrCorrupt pins gan.Feedback's documented aliasing:
// F_n shares the discriminator's input-gradient buffer and is valid
// only until the next Backward, so a worker must encode it before its
// next step (worker.go encodes immediately).
func TestFeedbackCloneOrCorrupt(t *testing.T) {
	couple := testCouple(t)
	g, d := couple.G, couple.D
	rng := rand.New(rand.NewSource(17))

	z1, l1 := g.SampleZ(4, rng)
	x1 := g.Forward(z1, l1, true).Clone()
	z2, l2 := g.SampleZ(4, rng)
	x2 := g.Forward(z2, l2, true).Clone()

	f1, _ := gan.Feedback(d, couple.LossConfig, x1, l1)
	kept := f1.Clone()
	f2, _ := gan.Feedback(d, couple.LossConfig, x2, l2)

	if &f1.Data[0] != &f2.Data[0] {
		t.Fatal("Feedback returned a fresh buffer: the documented aliasing changed — revisit worker.go and this test")
	}
	if !tensorsDiffer(kept, f1) {
		t.Fatal("second Feedback left the retained buffer intact; contract test is vacuous")
	}
}
