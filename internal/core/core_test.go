package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdgan/internal/dataset"
	"mdgan/internal/gan"
	"mdgan/internal/nn"
	"mdgan/internal/opt"
	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

func ringShards(n int, samplesPerShard int, seed int64) []*dataset.Dataset {
	ds := dataset.GaussianRing(n*samplesPerShard, 8, 2.0, 0.05, seed)
	return dataset.Split(ds, n, seed+1)
}

func baseConfig() Config {
	return Config{
		TrainConfig: gan.TrainConfig{
			Batch: 16, Iters: 30, DiscSteps: 1,
			GenLoss: nn.GenLossNonSaturating,
			OptG:    opt.AdamConfig{LR: 1e-3}, OptD: opt.AdamConfig{LR: 4e-3},
			Seed: 7,
		},
		K: 2,
	}
}

func TestTrainRunsAndReportsResult(t *testing.T) {
	shards := ringShards(4, 200, 1)
	res, err := Train(shards, gan.RingMLP(), baseConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 30 {
		t.Fatalf("iters = %d", res.Iters)
	}
	if len(res.Live) != 4 || len(res.Discs) != 4 {
		t.Fatalf("live = %v", res.Live)
	}
	if res.Traffic.Total() == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestDefaultK(t *testing.T) {
	for _, c := range []struct{ n, k int }{{1, 1}, {2, 1}, {10, 2}, {25, 3}, {50, 3}} {
		if got := DefaultK(c.n); got != c.k {
			t.Fatalf("DefaultK(%d) = %d, want %d", c.n, got, c.k)
		}
	}
}

// TestFeedbackEquivalence is the heart of MD-GAN (§IV-B2): with k = N
// distinct batches and all workers holding IDENTICAL discriminators,
// one MD-GAN generator update must equal the update a standalone GAN
// computes by direct backprop of B̃(∪ X^(g)_n) through D∘G. We verify
// the equality of generator parameters after one iteration to float
// round-off. DiscSteps = 0 keeps D_n identical during the iteration and
// the MLP architecture is batch-decoupled, so equality is exact.
func TestFeedbackEquivalence(t *testing.T) {
	const (
		n    = 3
		b    = 8
		seed = 99
	)
	arch := gan.RingMLP()
	shards := ringShards(n, 100, 5)

	cfg := Config{
		TrainConfig: gan.TrainConfig{
			Batch: b, Iters: 1, DiscSteps: -1, // no D updates: keep D_n identical
			GenLoss: nn.GenLossNonSaturating,
			OptG:    opt.AdamConfig{LR: 1e-3},
			Seed:    seed,
		},
		K:         n, // every worker gets a distinct batch
		SwapEvery: -1,
	}
	res, err := Train(shards, arch, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: reconstruct the same initial couple and replay the
	// server's batch generation with the same RNG stream, then do one
	// monolithic generator step on the union batch.
	couple := arch.NewGAN(seed, cfg.GenLoss, cfg.ClsWeight)
	rng := rand.New(rand.NewSource(seed + 31)) // server RNG seed offset
	zs := make([]*tensor.Tensor, n)
	for j := 0; j < n; j++ {
		zs[j], _ = couple.G.SampleZ(b, rng)
	}
	// Union feedback: mean of per-batch feedbacks (each already a
	// per-batch mean), matching the server's 1/N merge.
	couple.G.ZeroGrads()
	for j := 0; j < n; j++ {
		xg := couple.G.Forward(zs[j], nil, true)
		fn, _ := gan.Feedback(couple.D, couple.LossConfig, xg, nil)
		couple.G.Forward(zs[j], nil, true) // restore caches
		couple.G.Backward(fn.Scale(1 / float64(n)))
	}
	optG := opt.NewAdam(cfg.OptG)
	optG.Step(couple.G.Params())

	got := res.G.Net.ParamVector()
	want := couple.G.Net.ParamVector()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("generator param %d: distributed %g vs centralised %g", i, got[i], want[i])
		}
	}
}

// TestSplitRule checks §IV-B1: every worker receives two distinct
// batches whenever k > 1, following X^(g) = X^(n mod k),
// X^(d) = X^((n+1) mod k).
func TestSplitRule(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%10) + 2
		k := int(kRaw%uint8(n)) + 1
		if k < 2 {
			k = 2
		}
		for i := 0; i < n; i++ {
			gi := i % k
			di := (i + 1) % k
			if gi == di {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSattoloIsFixedPointFreePermutation checks the SWAP routing.
func TestSattoloIsFixedPointFreePermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 3, 5, 10, 31} {
		names := make([]string, n)
		for i := range names {
			names[i] = workerName(i)
		}
		perm := sattolo(names, rng)
		if len(perm) != n {
			t.Fatalf("n=%d: %d entries", n, len(perm))
		}
		seen := map[string]bool{}
		for from, to := range perm {
			if from == to {
				t.Fatalf("n=%d: fixed point at %s", n, from)
			}
			if seen[to] {
				t.Fatalf("n=%d: %s receives two discriminators", n, to)
			}
			seen[to] = true
		}
	}
}

// TestSwapConservation verifies that after training with swaps enabled,
// the multiset of discriminators is a permutation of what it would be —
// i.e. every worker ends with exactly one discriminator and all are
// distinct objects.
func TestSwapConservation(t *testing.T) {
	shards := ringShards(4, 64, 9)
	cfg := baseConfig()
	cfg.Iters = 12
	cfg.SwapEvery = 1 // with m=64, b=16: swap every 4 iterations
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Discs) != 4 {
		t.Fatalf("%d discriminators for 4 workers", len(res.Discs))
	}
	seen := map[*gan.Discriminator]bool{}
	for _, d := range res.Discs {
		if d == nil || seen[d] {
			t.Fatal("discriminator lost or duplicated")
		}
		seen[d] = true
	}
}

// TestSwapActuallyMovesParameters runs two workers with wildly different
// data and verifies a swap changes which parameters live where, by
// comparing a no-swap run with a swap run.
func TestSwapActuallyMovesParameters(t *testing.T) {
	shards := ringShards(2, 64, 11)
	mk := func(swapEvery int) map[string]*gan.Discriminator {
		cfg := baseConfig()
		cfg.Iters = 8
		cfg.SwapEvery = swapEvery
		cfg.K = 1
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Discs
	}
	noSwap := mk(-1)
	withSwap := mk(1)
	// Identical seeds → identical worker-0 D only if no swap happened.
	a := noSwap[workerName(0)].Trunk.ParamVector()
	b := withSwap[workerName(0)].Trunk.ParamVector()
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("swap run produced identical worker-0 discriminator; swap is a no-op")
	}
}

// TestTrafficMatchesAnalyticModel validates the simnet counters against
// the closed-form Table III entries for a crash-free, swap-free run.
func TestTrafficMatchesAnalyticModel(t *testing.T) {
	const (
		n     = 3
		iters = 5
		b     = 8
	)
	shards := ringShards(n, 100, 13)
	cfg := baseConfig()
	cfg.Iters = iters
	cfg.Batch = b
	cfg.K = 2
	cfg.SwapEvery = -1
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Payload sizes: a batch tensor (b, 2) is 1 (dtype byte) + 4 + 4·2
	// + ElemBytes·b·2 bytes; labels are 4 bytes (zero count) each ×2;
	// swap-target string is 4 bytes, plus the 4-byte round tag, plus the
	// topology trailer (empty parent string + zero child count + batch
	// index + aggregation wait = 16 bytes on the flat star).
	// Feedback = one tensor frame.
	batchFrame := int64(1 + 4 + 4*2 + tensor.ElemBytes*b*2)
	batchesPayload := 2*batchFrame + 2*4 + 4 + 4 + 16
	feedbackPayload := batchFrame + 1 // +1: compression-mode prefix byte
	wantCtoW := int64(n*iters) * batchesPayload
	// The final stop messages are zero-payload, so bytes are unaffected.
	if got := res.Traffic.Bytes[simnet.CtoW]; got != wantCtoW {
		t.Fatalf("C→W bytes = %d, want %d", got, wantCtoW)
	}
	wantWtoC := int64(n*iters) * feedbackPayload
	if got := res.Traffic.Bytes[simnet.WtoC]; got != wantWtoC {
		t.Fatalf("W→C bytes = %d, want %d", got, wantWtoC)
	}
	if got := res.Traffic.Bytes[simnet.WtoW]; got != 0 {
		t.Fatalf("W→W bytes = %d with swaps disabled", got)
	}
	// Message counts: Table III says I iterations × N workers in each
	// direction (+ N stop messages C→W).
	if got := res.Traffic.Msgs[simnet.CtoW]; got != int64(n*iters+n) {
		t.Fatalf("C→W msgs = %d", got)
	}
	if got := res.Traffic.Msgs[simnet.WtoC]; got != int64(n*iters) {
		t.Fatalf("W→C msgs = %d", got)
	}
}

func TestSwapTrafficAccounting(t *testing.T) {
	const n = 4
	shards := ringShards(n, 64, 15)
	cfg := baseConfig()
	cfg.Batch = 16
	cfg.Iters = 8 // swap interval = 64·1/16 = 4 → swaps at 4 and 8
	cfg.SwapEvery = 1
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Traffic.Msgs[simnet.WtoW]; got != int64(2*n) {
		t.Fatalf("W→W msgs = %d, want %d", got, 2*n)
	}
	// Each swap payload is the serialised discriminator at the default
	// FP32 wire precision: equal sizes, and on the float64 build about
	// half the native |θ| framing.
	perSwap := res.Traffic.Bytes[simnet.WtoW] / (2 * n)
	d := gan.RingMLP().NewGAN(1, nn.GenLossNonSaturating, 0).D
	if want := swapPayloadSize(d, SwapFP32); perSwap != want {
		t.Fatalf("per-swap bytes = %d, want fp32 |θ| payload %d", perSwap, want)
	}
	if tensor.ElemBytes == 8 && perSwap >= d.EncodedParamSize() {
		t.Fatalf("f64 build: fp32 swap %d bytes not below native %d", perSwap, d.EncodedParamSize())
	}
}

// TestSwapNativeTrafficAccounting pins the opt-out: SwapNative restores
// the compiled-width |θ| payload of the original Table III accounting.
func TestSwapNativeTrafficAccounting(t *testing.T) {
	const n = 4
	shards := ringShards(n, 64, 15)
	cfg := baseConfig()
	cfg.Batch = 16
	cfg.Iters = 8
	cfg.SwapEvery = 1
	cfg.SwapPrec = SwapNative
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	perSwap := res.Traffic.Bytes[simnet.WtoW] / (2 * n)
	d := gan.RingMLP().NewGAN(1, nn.GenLossNonSaturating, 0).D
	if want := swapPayloadSize(d, SwapNative); perSwap != want {
		t.Fatalf("per-swap bytes = %d, want native |θ| payload %d", perSwap, want)
	}
}

// TestCrashesRemoveWorkers runs the Fig. 5 schedule on a small scale:
// workers crash during training; the run completes with the survivors
// and the result reports exactly the surviving set.
func TestCrashesRemoveWorkers(t *testing.T) {
	shards := ringShards(4, 100, 17)
	cfg := baseConfig()
	cfg.Iters = 20
	cfg.CrashAt = map[int][]int{5: {0}, 10: {2}}
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Live) != 2 {
		t.Fatalf("live = %v, want 2 survivors", res.Live)
	}
	for _, name := range res.Live {
		if name == workerName(0) || name == workerName(2) {
			t.Fatalf("crashed worker %s reported live", name)
		}
	}
	if res.Iters != 20 {
		t.Fatalf("iters = %d; crashes must not stop training", res.Iters)
	}
}

func TestAllWorkersCrashedEndsTraining(t *testing.T) {
	shards := ringShards(2, 64, 19)
	cfg := baseConfig()
	cfg.Iters = 50
	cfg.CrashAt = map[int][]int{3: {0, 1}}
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters >= 50 || len(res.Live) != 0 {
		t.Fatalf("iters=%d live=%v; training must end when all workers die", res.Iters, res.Live)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		shards := ringShards(3, 100, 21)
		cfg := baseConfig()
		cfg.Iters = 10
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.G.Net.ParamVector()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at param %d", i)
		}
	}
}

// TestMDGANLearnsRing is the end-to-end learning check: distributed
// training moves generated samples onto the ring.
func TestMDGANLearnsRing(t *testing.T) {
	shards := ringShards(4, 500, 23)
	cfg := baseConfig()
	cfg.Iters = 500
	cfg.Batch = 32
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	x, _ := res.G.Generate(256, rng, false)
	sum := 0.0
	for i := 0; i < x.Dim(0); i++ {
		sum += math.Hypot(x.At(i, 0), x.At(i, 1))
	}
	mean := sum / float64(x.Dim(0))
	if mean < 1.2 || mean > 2.8 {
		t.Fatalf("mean generated radius %v, want ~2", mean)
	}
}

func TestEvalHookFires(t *testing.T) {
	shards := ringShards(2, 64, 25)
	cfg := baseConfig()
	cfg.Iters = 10
	cfg.EvalEvery = 3
	var calls []int
	_, err := Train(shards, gan.RingMLP(), cfg, func(it int, g *gan.Generator) {
		calls = append(calls, it)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 6, 9}
	if len(calls) != len(want) {
		t.Fatalf("eval calls = %v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("eval calls = %v, want %v", calls, want)
		}
	}
}

func TestKExceedsNRejected(t *testing.T) {
	shards := ringShards(2, 64, 27)
	cfg := baseConfig()
	cfg.K = 5
	if _, err := Train(shards, gan.RingMLP(), cfg, nil); err == nil {
		t.Fatal("k > N must be rejected")
	}
}

func TestAsyncModeTrains(t *testing.T) {
	shards := ringShards(3, 200, 29)
	cfg := baseConfig()
	cfg.Async = true
	cfg.Iters = 60 // 60 single-feedback updates ≈ 20 sync iterations
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 60 {
		t.Fatalf("async iters = %d", res.Iters)
	}
	if res.Traffic.Msgs[simnet.WtoC] < 60 {
		t.Fatalf("W→C msgs = %d, want >= 60", res.Traffic.Msgs[simnet.WtoC])
	}
}

func TestAsyncWithCrashes(t *testing.T) {
	shards := ringShards(3, 200, 31)
	cfg := baseConfig()
	cfg.Async = true
	cfg.Iters = 40
	cfg.CrashAt = map[int][]int{10: {1}}
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Live) != 2 {
		t.Fatalf("live = %v", res.Live)
	}
}

// TestTrainOverTCP runs a short MD-GAN session over real loopback
// sockets, confirming the algorithm is transport-independent.
func TestTrainOverTCP(t *testing.T) {
	shards := ringShards(2, 64, 33)
	cfg := baseConfig()
	cfg.Iters = 5
	net := simnet.NewTCPNet()
	defer net.Close()
	cfg.Net = net
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 5 {
		t.Fatalf("iters = %d", res.Iters)
	}
	if res.Traffic.Bytes[simnet.CtoW] == 0 || res.Traffic.Bytes[simnet.WtoC] == 0 {
		t.Fatal("no traffic accounted over TCP")
	}
}
