package core

import (
	"encoding/binary"
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"mdgan/internal/tensor"
)

// Regression (PR 3): decodeFeedbackAny used to bound only the decoded
// VOLUME, so a reshaped feedback — same element count, different shape —
// decoded successfully and silently mis-aligned against the generator
// batch it answers. Every mode must now reject shape mismatches.
func TestDecodeFeedbackRejectsReshapedFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := randFeedback(rng, 4, 6)
	for _, mode := range []Compression{CompressNone, CompressFP32, CompressTopK} {
		enc := encodeFeedbackCompressed(f, mode)
		if _, err := decodeFeedbackAny(enc, f.Shape()); err != nil {
			t.Fatalf("%v: matching shape rejected: %v", mode, err)
		}
		for _, want := range [][]int{{6, 4}, {2, 12}, {24}, {4, 6, 1}} {
			if _, err := decodeFeedbackAny(enc, want); err == nil {
				t.Fatalf("%v: shape (4,6) decoded against expected %v without error", mode, want)
			}
		}
		// Smaller AND larger expected volumes must also fail.
		if _, err := decodeFeedbackAny(enc, []int{4, 5}); err == nil {
			t.Fatalf("%v: volume overrun accepted", mode)
		}
		if _, err := decodeFeedbackAny(enc, []int{4, 7}); err == nil {
			t.Fatalf("%v: volume underrun accepted", mode)
		}
	}
}

// Regression (PR 3): the FP32/TopK encoders were built from per-element
// bytes.Buffer writes; they are now exact-size single-allocation
// appenders (TopK adds one allocation for its selection index).
func TestEncodeFeedbackAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := randFeedback(rng, 16, 784)
	for _, tc := range []struct {
		mode Compression
		want float64
	}{
		{CompressNone, 1},
		{CompressFP32, 1},
		{CompressTopK, 2},
	} {
		got := testing.AllocsPerRun(20, func() {
			encodeFeedbackCompressed(f, tc.mode)
		})
		if got > tc.want {
			t.Errorf("%v: %v allocs per encode, want <= %v", tc.mode, got, tc.want)
		}
	}
}

func TestEncodedFeedbackSizesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := randFeedback(rng, 8, 32)
	if got, want := len(encodeFeedbackCompressed(f, CompressNone)), 1+int(f.EncodedSize()); got != want {
		t.Fatalf("none: %d bytes, want %d", got, want)
	}
	if got, want := len(encodeFeedbackCompressed(f, CompressFP32)), 1+int(f.EncodedSizeAs(tensor.DTypeF32)); got != want {
		t.Fatalf("fp32: %d bytes, want %d", got, want)
	}
	k := int(float64(f.Size()) * topKFraction)
	if got, want := len(encodeFeedbackCompressed(f, CompressTopK)), 1+4+4*2+4+8*k; got != want {
		t.Fatalf("topk: %d bytes, want %d", got, want)
	}
}

// topKIndices' quickselect must agree with the straightforward
// sort-everything reference for arbitrary data and k.
func TestTopKIndicesMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		data := make([]tensor.Elem, n)
		for i := range data {
			// Small integer magnitudes exercise ties.
			data[i] = tensor.Elem(rng.Intn(9) - 4)
		}
		k := 1 + rng.Intn(n)
		got := topKIndices(data, k)
		if len(got) != k {
			t.Fatalf("n=%d k=%d: got %d indices", n, k, len(got))
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("indices not ascending: %v", got)
		}
		// The selected set must contain the k largest magnitudes: the
		// smallest selected magnitude must be >= the largest unselected.
		sel := make(map[int]bool, k)
		minSel := tensor.Elem(0)
		for i, idx := range got {
			sel[idx] = true
			if m := absE(data[idx]); i == 0 || m < minSel {
				minSel = m
			}
		}
		for i := range data {
			if !sel[i] && absE(data[i]) > minSel {
				t.Fatalf("n=%d k=%d: unselected |%v| beats selected min %v", n, k, data[i], minSel)
			}
		}
	}
}

// Legacy pre-dtype feedback frames (CompressNone around a headerless
// rank-first tensor frame) still decode — the corpus a deployed mixed
// fleet or an old fuzz corpus would replay.
func TestDecodeFeedbackLegacyFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := randFeedback(rng, 3, 5)
	legacy := []byte{byte(CompressNone)}
	legacy = binary.LittleEndian.AppendUint32(legacy, 2)
	legacy = binary.LittleEndian.AppendUint32(legacy, 3)
	legacy = binary.LittleEndian.AppendUint32(legacy, 5)
	for _, v := range f.Data {
		legacy = appendFloat64(legacy, float64(v))
	}
	got, err := decodeFeedbackAny(legacy, f.Shape())
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got.Shape(), f.Shape()) || !got.Equal(f, tensor.Tol(0, 1e-7)) {
		t.Fatal("legacy frame did not round-trip")
	}
}

func appendFloat64(dst []byte, v float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	return append(dst, tmp[:]...)
}
