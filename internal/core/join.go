package core

import (
	"fmt"

	"mdgan/internal/dataset"
	"mdgan/internal/gan"
	"mdgan/internal/simnet"
)

// Dynamic worker join (paper §IV-A): "extra workers can enter the
// learning task if they enter with a pre-trained discriminator (e.g., a
// copy of another worker discriminator)".
//
// The join protocol is server-mediated so it stays deterministic:
//
//  1. at the end of iteration i the server registers the new node and
//     spawns its goroutine (with a fresh data shard supplied by the
//     caller);
//  2. the server asks a uniformly-chosen live donor for its
//     discriminator (msgClone → msgDParams);
//  3. the server forwards the parameters to the joiner (msgSwap — the
//     worker loop already adopts stray swap payloads), then adds it to
//     the membership, so the joiner's first batches arrive strictly
//     after its pre-trained discriminator.
//
// A join therefore costs 2·|θ| of traffic (donor→server→joiner), at
// the configured swap wire precision.

// Message types used by the join protocol.
const (
	msgClone   = "clone"   // C→W: please send me your discriminator
	msgDParams = "dparams" // W→C: discriminator parameters (clone reply)
)

// processJoins spawns and initialises the workers scheduled to join at
// iteration it. Called by the engine's prepare stage between rounds.
func (s *server) processJoins(it int, spawn func(shard *dataset.Dataset) (*worker, error)) error {
	shards := s.joinAt[it]
	if len(shards) == 0 {
		return nil
	}
	for _, shard := range shards {
		// Prefer an active (non-suspect) donor — a suspect may be
		// unreachable right now; identical to Live on fault-free runs,
		// so the RNG draw stays on the pinned stream.
		donors := s.m.Active()
		if len(donors) == 0 {
			donors = s.m.Live()
		}
		if len(donors) == 0 {
			return fmt.Errorf("core: worker join at iteration %d with no live donor", it)
		}
		donor := donors[s.rng.Intn(len(donors))]
		w, err := spawn(shard)
		if err != nil {
			return fmt.Errorf("core: join spawn: %w", err)
		}
		// Ask the donor for its discriminator.
		if err := s.net.Send(simnet.Message{
			From: serverName, To: donor, Type: msgClone,
			Kind: simnet.CtoW, Payload: []byte(serverName),
		}); err != nil {
			return fmt.Errorf("core: clone request to %s: %w", donor, err)
		}
		// Wait for the reply, ignoring any unrelated stragglers.
		var params []byte
		inbox := s.net.Inbox(serverName)
		for params == nil {
			msg, ok := <-inbox
			if !ok {
				return fmt.Errorf("core: server inbox closed during join")
			}
			if msg.Type == msgDParams && msg.From == donor {
				params = msg.Payload
			} else if msg.Type == msgPong || msg.Type == msgFeedback {
				// Evidence of life from a probed suspect must not be
				// silently discarded while we wait for the clone reply.
				if s.m.Reinstate(msg.From) {
					delete(s.probes, msg.From)
				}
			}
		}
		// Hand the pre-trained discriminator to the joiner before it
		// can see any batches. The swap framing carries round tag 0 —
		// "before any round" — so the joiner's stray-swap path adopts
		// it immediately instead of holding it for a rendezvous that
		// will never open (real rounds are numbered from 1).
		if err := s.net.Send(simnet.Message{
			From: serverName, To: w.name, Type: msgSwap,
			Kind: simnet.CtoW, Payload: encodeSwapForward(0, params),
		}); err != nil {
			return fmt.Errorf("core: forward clone to %s: %w", w.name, err)
		}
		s.m.Add(w.name)
		if s.joinWarmup > 0 {
			if s.joinedRound == nil {
				s.joinedRound = make(map[string]int)
			}
			s.joinedRound[w.name] = it
		}
	}
	return nil
}

// spawnJoiner builds the worker-spawning closure Train hands to the
// server for dynamic joins.
func spawnJoiner(cfg Config, net simnet.Net, lc gan.LossConfig, template *gan.Discriminator,
	workers *[]*worker, nextIdx *int) func(*dataset.Dataset) (*worker, error) {
	return func(shard *dataset.Dataset) (*worker, error) {
		i := *nextIdx
		*nextIdx++
		if err := net.Register(workerName(i)); err != nil {
			return nil, err
		}
		// The template discriminator is only the architecture; it is
		// overwritten by the donor's parameters before the first batch
		// arrives.
		w := newWorker(cfg, net, lc, template, i, shard)
		*workers = append(*workers, w)
		go w.run()
		return w, nil
	}
}
