package core

import (
	"fmt"
	"math/rand"
	"sort"

	"mdgan/internal/tensor"
)

// Adversaries in generative adversarial networks (paper §VII.3): "the
// learning process is most likely prone to workers having their
// discriminator lie to the server's generator (by sending erroneous or
// manipulated feedback)". This file implements both sides of that
// arms race: Byzantine feedback corruption at workers, free-rider
// feedback fabrication (Zhao et al., "Attacks and Defenses for
// Free-Riders in Multi-Discriminator GAN"), and robust aggregation
// rules at the server in the spirit of Byzantine-tolerant gradient
// descent (Blanchard et al., cited by the paper as [46]). The
// cross-round feedback-quality defense that catches the quiet
// free-rider modes lives in defense.go.

// ByzantineMode describes how a compromised worker lies in its error
// feedback: the loud modes corrupt an honestly-computed feedback, the
// free-rider modes fabricate one without running the discriminator at
// all.
type ByzantineMode int

// Attack modes.
const (
	// ByzantineNone is an honest worker.
	ByzantineNone ByzantineMode = iota
	// ByzantineRandom replaces the feedback with Gaussian noise.
	ByzantineRandom
	// ByzantineInvert negates the feedback (gradient-ascent attack:
	// pushes the generator AWAY from fooling the discriminator).
	ByzantineInvert
	// ByzantineScale multiplies the feedback by a large factor
	// (magnitude attack: dominates a mean aggregation).
	ByzantineScale
	// FreeRiderRandom fabricates small-variance Gaussian noise in the
	// magnitude range of real feedback — plausible enough to slip past
	// a naive magnitude filter, unlike ByzantineRandom's unit noise —
	// without ever running the discriminator.
	FreeRiderRandom
	// FreeRiderReplay fabricates one plausible feedback on its first
	// round and re-sends that identical stale tensor every round after
	// (the replay free-rider: zero compute, stable-looking statistics).
	FreeRiderReplay
	// FreeRiderScaledNoise fabricates a fresh noise direction each
	// round, rescaled to track the received generated batch's norm —
	// mimicking the magnitude trajectory of honest feedback so norm
	// tests alone cannot spot it.
	FreeRiderScaledNoise
)

// String implements fmt.Stringer.
func (m ByzantineMode) String() string {
	switch m {
	case ByzantineNone:
		return "none"
	case ByzantineRandom:
		return "random"
	case ByzantineInvert:
		return "invert"
	case ByzantineScale:
		return "scale"
	case FreeRiderRandom:
		return "freerider-random"
	case FreeRiderReplay:
		return "freerider-replay"
	case FreeRiderScaledNoise:
		return "freerider-noise"
	default:
		return fmt.Sprintf("ByzantineMode(%d)", int(m))
	}
}

// IsFreeRider reports whether the mode fabricates feedback without
// running the discriminator (the quiet attack class the cross-round
// defense exists for), as opposed to corrupting an honest feedback.
func (m ByzantineMode) IsFreeRider() bool {
	return m == FreeRiderRandom || m == FreeRiderReplay || m == FreeRiderScaledNoise
}

// byzantineScaleFactor is the magnitude of the ByzantineScale attack.
const byzantineScaleFactor = 100.0

// Free-rider fabrication constants: honest error feedback on the
// architectures here has per-element magnitudes around 1e-2 (it is a
// per-sample loss gradient, not a raw activation), so the fabricated
// noise targets that range rather than unit variance.
const (
	// freeRiderSigma is the per-element standard deviation of the
	// FreeRiderRandom / FreeRiderReplay fabrication.
	freeRiderSigma = 0.01
	// freeRiderNormFrac scales the FreeRiderScaledNoise target norm as
	// a fraction of the received generated batch's norm — the only
	// honest quantity a non-training worker can observe and track.
	freeRiderNormFrac = 0.02
)

// corruptFeedback applies a loud attack in place. An unknown mode is an
// error (never a panic: a misconfigured mode must not kill a worker
// goroutine mid-run — the caller surfaces it through the corrupt-frame
// strike path instead). Free-rider modes never reach here: they
// fabricate instead of corrupting (fabricateFreeRiderFeedback).
func corruptFeedback(f *tensor.Tensor, mode ByzantineMode, rng *rand.Rand) error {
	switch mode {
	case ByzantineNone:
	case ByzantineRandom:
		for i := range f.Data {
			f.Data[i] = tensor.Elem(rng.NormFloat64())
		}
	case ByzantineInvert:
		f.ScaleInPlace(-1)
	case ByzantineScale:
		f.ScaleInPlace(byzantineScaleFactor)
	default:
		return fmt.Errorf("core: unknown byzantine mode %d", int(mode))
	}
	return nil
}

// fabricateFreeRiderFeedback builds a free-rider's feedback for the
// received generated batch xg without running any discriminator. The
// result is freshly allocated (FreeRiderReplay retains it across
// rounds, so it must not alias pooled or network-owned storage).
func fabricateFreeRiderFeedback(xg *tensor.Tensor, mode ByzantineMode, rng *rand.Rand) *tensor.Tensor {
	f := tensor.New(xg.Shape()...)
	for i := range f.Data {
		f.Data[i] = tensor.Elem(rng.NormFloat64())
	}
	switch mode {
	case FreeRiderScaledNoise:
		if n := f.Norm2(); n > 0 {
			f.ScaleInPlace(freeRiderNormFrac * xg.Norm2() / n)
		}
	default: // FreeRiderRandom, FreeRiderReplay: plausible-variance noise
		f.ScaleInPlace(freeRiderSigma)
	}
	return f
}

// Aggregation selects the server-side rule for merging the feedbacks
// of workers that share a generated batch.
type Aggregation int

// Aggregation rules.
const (
	// AggMean is the paper's plain averaging (§IV-B2) — not
	// Byzantine-tolerant.
	AggMean Aggregation = iota
	// AggMedian takes the coordinate-wise median across workers —
	// tolerant to a minority of arbitrary feedbacks.
	AggMedian
	// AggTrimmedMean drops the ⌊n/4⌋ smallest and largest values per
	// coordinate before averaging.
	AggTrimmedMean
)

// String implements fmt.Stringer.
func (a Aggregation) String() string {
	switch a {
	case AggMean:
		return "mean"
	case AggMedian:
		return "median"
	case AggTrimmedMean:
		return "trimmed-mean"
	default:
		return fmt.Sprintf("Aggregation(%d)", int(a))
	}
}

// aggScratch recycles the per-coordinate scratch buffer of the robust
// aggregation rules across rounds; the zero value is ready to use.
// (The buffer is []float64, not []Elem, so it cannot ride the tensor
// pool on the f32 build — it lives here instead.)
type aggScratch struct{ vals []float64 }

// ensure returns a scratch slice of length n, growing the backing
// array only when a larger group arrives.
func (sc *aggScratch) ensure(n int) []float64 {
	if cap(sc.vals) < n {
		sc.vals = make([]float64, n)
	}
	return sc.vals[:n]
}

// aggregateFeedbacks merges the feedback tensors of the workers that
// shared one generated batch into a single per-sample gradient. The
// result plays the role of the group's "mean feedback"; the caller
// weights it by groupSize/N to recover the paper's global scaling.
//
// The result is drawn from the workspace pool — the caller owns it and
// must tensor.Put it once consumed. sc may be nil (a local scratch is
// allocated); the engines pass their per-server scratch so a
// steady-state robust-aggregation round allocates nothing.
func aggregateFeedbacks(fs []*tensor.Tensor, mode Aggregation, sc *aggScratch) *tensor.Tensor {
	if len(fs) == 0 {
		return nil
	}
	if sc == nil {
		sc = &aggScratch{}
	}
	if len(fs) == 1 {
		out := tensor.Get(fs[0].Shape()...)
		copy(out.Data, fs[0].Data)
		return out
	}
	switch mode {
	case AggMean:
		out := tensor.GetZeroed(fs[0].Shape()...)
		inv := 1 / float64(len(fs))
		for _, f := range fs {
			out.AxpyInPlace(inv, f)
		}
		return out
	case AggMedian:
		out := tensor.Get(fs[0].Shape()...)
		vals := sc.ensure(len(fs))
		for i := range out.Data {
			for j, f := range fs {
				vals[j] = float64(f.Data[i])
			}
			out.Data[i] = tensor.Elem(median(vals))
		}
		return out
	case AggTrimmedMean:
		out := tensor.Get(fs[0].Shape()...)
		trim := len(fs) / 4
		vals := sc.ensure(len(fs))
		for i := range out.Data {
			for j, f := range fs {
				vals[j] = float64(f.Data[i])
			}
			sort.Float64s(vals)
			kept := vals[trim : len(vals)-trim]
			s := 0.0
			for _, v := range kept {
				s += v
			}
			out.Data[i] = tensor.Elem(s / float64(len(kept)))
		}
		return out
	default:
		panic(fmt.Sprintf("core: unknown aggregation %d", mode))
	}
}

// aggregateFeedbacksWeighted is aggregateFeedbacks with per-feedback
// trust weights in [0, 1] (the defense's down-weighting and the
// joiner warm-up ramp). For AggMean the result is the weighted mean
// Σ wᵢFᵢ / Σ wᵢ. The robust order-statistic rules have no meaningful
// fractional weighting — a median's breakdown point counts members,
// not mass — so they EXCLUDE zero-weight feedbacks and rank the rest
// unweighted. The returned weight is the total included mass (the
// caller's group-scaling numerator); a nil tensor (weight 0) means
// every feedback was excluded. The result is pool-owned like
// aggregateFeedbacks'.
func aggregateFeedbacksWeighted(fs []*tensor.Tensor, ws []float64, mode Aggregation, sc *aggScratch) (*tensor.Tensor, float64) {
	totalW := 0.0
	for _, w := range ws {
		totalW += w
	}
	if len(fs) == 0 || totalW <= 0 {
		return nil, 0
	}
	if mode == AggMean {
		out := tensor.GetZeroed(fs[0].Shape()...)
		for i, f := range fs {
			if ws[i] > 0 {
				out.AxpyInPlace(ws[i]/totalW, f)
			}
		}
		return out, totalW
	}
	// Robust rules: drop the excluded members, rank the rest.
	kept := fs[:0:0]
	for i, f := range fs {
		if ws[i] > 0 {
			kept = append(kept, f)
		}
	}
	return aggregateFeedbacks(kept, mode, sc), totalW
}

// median returns the middle value (average of the two middle values for
// even counts). It sorts its argument in place.
func median(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}
