package core

import (
	"fmt"
	"math/rand"
	"sort"

	"mdgan/internal/tensor"
)

// Adversaries in generative adversarial networks (paper §VII.3): "the
// learning process is most likely prone to workers having their
// discriminator lie to the server's generator (by sending erroneous or
// manipulated feedback)". This file implements both sides of that
// arms race: Byzantine feedback corruption at workers, and robust
// aggregation rules at the server in the spirit of Byzantine-tolerant
// gradient descent (Blanchard et al., cited by the paper as [46]).

// ByzantineMode describes how a compromised worker corrupts its error
// feedback before sending it.
type ByzantineMode int

// Attack modes.
const (
	// ByzantineNone is an honest worker.
	ByzantineNone ByzantineMode = iota
	// ByzantineRandom replaces the feedback with Gaussian noise.
	ByzantineRandom
	// ByzantineInvert negates the feedback (gradient-ascent attack:
	// pushes the generator AWAY from fooling the discriminator).
	ByzantineInvert
	// ByzantineScale multiplies the feedback by a large factor
	// (magnitude attack: dominates a mean aggregation).
	ByzantineScale
)

// String implements fmt.Stringer.
func (m ByzantineMode) String() string {
	switch m {
	case ByzantineNone:
		return "none"
	case ByzantineRandom:
		return "random"
	case ByzantineInvert:
		return "invert"
	case ByzantineScale:
		return "scale"
	default:
		return fmt.Sprintf("ByzantineMode(%d)", int(m))
	}
}

// byzantineScaleFactor is the magnitude of the ByzantineScale attack.
const byzantineScaleFactor = 100.0

// corruptFeedback applies the attack in place.
func corruptFeedback(f *tensor.Tensor, mode ByzantineMode, rng *rand.Rand) {
	switch mode {
	case ByzantineNone:
	case ByzantineRandom:
		for i := range f.Data {
			f.Data[i] = tensor.Elem(rng.NormFloat64())
		}
	case ByzantineInvert:
		f.ScaleInPlace(-1)
	case ByzantineScale:
		f.ScaleInPlace(byzantineScaleFactor)
	default:
		panic(fmt.Sprintf("core: unknown byzantine mode %d", mode))
	}
}

// Aggregation selects the server-side rule for merging the feedbacks
// of workers that share a generated batch.
type Aggregation int

// Aggregation rules.
const (
	// AggMean is the paper's plain averaging (§IV-B2) — not
	// Byzantine-tolerant.
	AggMean Aggregation = iota
	// AggMedian takes the coordinate-wise median across workers —
	// tolerant to a minority of arbitrary feedbacks.
	AggMedian
	// AggTrimmedMean drops the ⌊n/4⌋ smallest and largest values per
	// coordinate before averaging.
	AggTrimmedMean
)

// String implements fmt.Stringer.
func (a Aggregation) String() string {
	switch a {
	case AggMean:
		return "mean"
	case AggMedian:
		return "median"
	case AggTrimmedMean:
		return "trimmed-mean"
	default:
		return fmt.Sprintf("Aggregation(%d)", int(a))
	}
}

// aggregateFeedbacks merges the feedback tensors of the workers that
// shared one generated batch into a single per-sample gradient. The
// result plays the role of the group's "mean feedback"; the caller
// weights it by groupSize/N to recover the paper's global scaling.
func aggregateFeedbacks(fs []*tensor.Tensor, mode Aggregation) *tensor.Tensor {
	if len(fs) == 0 {
		return nil
	}
	if len(fs) == 1 {
		return fs[0].Clone()
	}
	out := tensor.New(fs[0].Shape()...)
	switch mode {
	case AggMean:
		inv := 1 / float64(len(fs))
		for _, f := range fs {
			out.AxpyInPlace(inv, f)
		}
	case AggMedian:
		vals := make([]float64, len(fs))
		for i := range out.Data {
			for j, f := range fs {
				vals[j] = float64(f.Data[i])
			}
			out.Data[i] = tensor.Elem(median(vals))
		}
	case AggTrimmedMean:
		trim := len(fs) / 4
		vals := make([]float64, len(fs))
		for i := range out.Data {
			for j, f := range fs {
				vals[j] = float64(f.Data[i])
			}
			sort.Float64s(vals)
			kept := vals[trim : len(vals)-trim]
			s := 0.0
			for _, v := range kept {
				s += v
			}
			out.Data[i] = tensor.Elem(s / float64(len(kept)))
		}
	default:
		panic(fmt.Sprintf("core: unknown aggregation %d", mode))
	}
	return out
}

// median returns the middle value (average of the two middle values for
// even counts). It sorts its argument in place.
func median(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}
