package core

import (
	"math/rand"
	"reflect"
	"testing"

	"mdgan/internal/gan"
)

func schedNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = workerName(i)
	}
	return out
}

// checkPermutation verifies the SwapSchedule contract: the successor
// map's key set equals its value set (every sender receives exactly
// one discriminator) and nobody swaps with itself.
func checkPermutation(t *testing.T, m map[string]string) {
	t.Helper()
	recv := map[string]int{}
	for from, to := range m {
		if from == to {
			t.Fatalf("%s swaps with itself", from)
		}
		if _, ok := m[to]; !ok {
			t.Fatalf("%s receives but never sends", to)
		}
		recv[to]++
	}
	for to, n := range recv {
		if n != 1 {
			t.Fatalf("%s receives %d discriminators", to, n)
		}
	}
}

// TestRingSwapMatchesSattolo pins the bitwise guarantee behind the
// strict engine's serial-reference equivalence: RingSwap must consume
// the RNG exactly like the pre-interface sattolo call and return the
// identical permutation.
func TestRingSwapMatchesSattolo(t *testing.T) {
	for _, n := range []int{2, 3, 7, 16} {
		names := schedNames(n)
		a := RingSwap{}.Plan(names, rand.New(rand.NewSource(99)))
		b := sattolo(names, rand.New(rand.NewSource(99)))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("n=%d: RingSwap %v != sattolo %v", n, a, b)
		}
	}
	if (RingSwap{}).Plan(schedNames(1), rand.New(rand.NewSource(1))) != nil {
		t.Fatal("single worker must not self-swap")
	}
}

func TestShuffleSwapIsInvolution(t *testing.T) {
	for _, n := range []int{2, 5, 8, 13} {
		m := ShuffleSwap{}.Plan(schedNames(n), rand.New(rand.NewSource(7)))
		checkPermutation(t, m)
		for from, to := range m {
			if m[to] != from {
				t.Fatalf("n=%d: %s→%s but %s→%s (not a pairing)", n, from, to, to, m[to])
			}
		}
		want := n - n%2
		if len(m) != want {
			t.Fatalf("n=%d: %d swappers, want %d", n, len(m), want)
		}
	}
}

func TestGossipSwapPairsBound(t *testing.T) {
	for _, tc := range []struct{ n, pairs, wantSwappers int }{
		{8, 2, 4}, {8, 0, 4}, {3, 5, 2}, {16, 0, 8},
	} {
		m := GossipSwap{Pairs: tc.pairs}.Plan(schedNames(tc.n), rand.New(rand.NewSource(3)))
		checkPermutation(t, m)
		if len(m) != tc.wantSwappers {
			t.Fatalf("n=%d pairs=%d: %d swappers, want %d", tc.n, tc.pairs, len(m), tc.wantSwappers)
		}
	}
}

func TestParseSwapSchedule(t *testing.T) {
	for spec, want := range map[string]string{
		"": "ring", "ring": "ring", "shuffle": "shuffle",
		"gossip": "gossip", "gossip:3": "gossip:3",
	} {
		s, err := ParseSwapSchedule(spec)
		if err != nil {
			t.Fatalf("ParseSwapSchedule(%q): %v", spec, err)
		}
		if s.Name() != want {
			t.Fatalf("ParseSwapSchedule(%q) = %s, want %s", spec, s.Name(), want)
		}
	}
	for _, bad := range []string{"mesh", "gossip:", "gossip:0", "gossip:x"} {
		if _, err := ParseSwapSchedule(bad); err == nil {
			t.Fatalf("ParseSwapSchedule(%q) accepted", bad)
		}
	}
}

// TestEngineRunsWithAlternateSwapSchedules: the round-tagged rendezvous
// is schedule-agnostic — shuffle and gossip plans must train to
// completion with swaps firing every iteration, flat and tree alike.
func TestEngineRunsWithAlternateSwapSchedules(t *testing.T) {
	for _, sched := range []SwapSchedule{ShuffleSwap{}, GossipSwap{Pairs: 2}} {
		for _, tree := range []bool{false, true} {
			shards := ringShards(8, 64, 467)
			cfg := baseConfig()
			if tree {
				cfg = treeConfig()
				shards = ringShards(9, 64, 467)
			}
			cfg.Iters = 12
			cfg.SwapEvery = 1
			cfg.SwapSched = sched
			res, err := Train(shards, gan.RingMLP(), cfg, nil)
			if err != nil {
				t.Fatalf("%s tree=%v: %v", sched.Name(), tree, err)
			}
			if res.Iters != cfg.Iters {
				t.Fatalf("%s tree=%v: iters = %d", sched.Name(), tree, res.Iters)
			}
			if res.Traffic.Msgs[0] == 0 {
				_ = res // traffic checked elsewhere; completion is the point
			}
		}
	}
}

// TestSwapScheduleValidation: non-ring schedules are synchronous-only.
func TestSwapScheduleValidation(t *testing.T) {
	shards := ringShards(4, 64, 479)
	cfg := baseConfig()
	cfg.Async = true
	cfg.SwapSched = ShuffleSwap{}
	if _, err := Train(shards, gan.RingMLP(), cfg, nil); err == nil {
		t.Fatal("shuffle + async accepted")
	}
	cfg.SwapSched = RingSwap{}
	cfg.Iters = 2
	if _, err := Train(shards, gan.RingMLP(), cfg, nil); err != nil {
		t.Fatalf("ring + async rejected: %v", err)
	}
}
