package core

// Transient-fault regression tests.
//
// These pin the suspect/rejoin machinery end to end: a hung or muted
// worker no longer deadlocks Train (the round applies within
// RoundTimeout with the quorum in hand), a healed straggler is
// re-admitted and contributes again, a corrupt feedback frame strikes
// its sender instead of aborting the run, and the fault paths are
// provably inert on fault-free runs (bitwise strict pin with the
// deadline armed). The soak tests run both synchronous drivers at
// N = 8 over a seeded ChaosNet — random drops, delays, duplicates,
// payload corruption and one partition/heal cycle — and require full
// completion, ring convergence, a rejoin, and no goroutine leaks.

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"mdgan/internal/gan"
	"mdgan/internal/parallel"
	"mdgan/internal/simnet"
)

// goroutineBaseline warms the lazily-spawned global parallel pool (its
// workers are persistent by design, not a leak) and returns the
// goroutine count to compare against after the run.
func goroutineBaseline() int {
	parallel.ForceFor(1024, func(int, int) {})
	return runtime.NumGoroutine()
}

// assertNoGoroutineLeak polls until the goroutine count is back at the
// pre-test level (workers exit asynchronously after stop/crash).
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// muteNet silently swallows the victim's first `mute` feedback frames
// (a transient straggler: alive, computing, but its results never reach
// the server), then lets everything through.
type muteNet struct {
	simnet.Net
	victim string
	mu     sync.Mutex
	mute   int
	muted  int
	passed int // victim feedbacks delivered after the mute window
}

func (n *muteNet) Send(msg simnet.Message) error {
	if msg.From == n.victim && msg.Type == msgFeedback {
		n.mu.Lock()
		if n.mute > 0 {
			n.mute--
			n.muted++
			n.mu.Unlock()
			return nil
		}
		n.passed++
		n.mu.Unlock()
	}
	return n.Net.Send(msg)
}

// blackholeNet swallows the victim's feedbacks AND pongs forever — a
// worker that accepts work but never answers, the shape that must
// escalate from suspect to demotion.
type blackholeNet struct {
	simnet.Net
	victim string
}

func (n *blackholeNet) Send(msg simnet.Message) error {
	if msg.From == n.victim && (msg.Type == msgFeedback || msg.Type == msgPong) {
		return nil
	}
	return n.Net.Send(msg)
}

// garbleNet truncates the victim's feedback payloads so they cannot
// decode (a corrupt frame, not merely wrong values).
type garbleNet struct {
	simnet.Net
	victim  string
	mu      sync.Mutex
	garbled int
}

func (n *garbleNet) Send(msg simnet.Message) error {
	if msg.From == n.victim && msg.Type == msgFeedback {
		n.mu.Lock()
		n.garbled++
		n.mu.Unlock()
		msg.Payload = append([]byte(nil), msg.Payload[:3]...)
	}
	return n.Net.Send(msg)
}

func contains(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// TestRoundDeadlineSuspectsStragglerAndRejoins is the fails-on-pre-fix
// regression for the tentpole: a dispatched worker whose feedback never
// arrives used to block collect forever. With RoundTimeout set the
// round must apply with the quorum in hand, the straggler must be
// suspected (skipped for dispatch, state retained), and once its
// network heals it must be probed back in and contribute feedback to a
// later round.
func TestRoundDeadlineSuspectsStragglerAndRejoins(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		name := "strict"
		if pipeline {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			before := goroutineBaseline()
			inner := simnet.NewChannelNet(0)
			net := &muteNet{Net: inner, victim: workerName(0), mute: 2}
			shards := ringShards(4, 64, 401)
			cfg := baseConfig()
			cfg.Iters = 8
			cfg.Pipeline = pipeline
			cfg.Net = net
			cfg.RoundTimeout = 150 * time.Millisecond
			res, err := Train(shards, gan.RingMLP(), cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Iters != cfg.Iters {
				t.Fatalf("applied %d updates, want %d — the deadline must not stall the round loop", res.Iters, cfg.Iters)
			}
			if res.Faults.Timeouts < 2 || res.Faults.Suspects < 2 {
				t.Fatalf("faults = %+v, want >=2 timeouts and suspects for 2 muted feedbacks", res.Faults)
			}
			if res.Faults.Rejoins < 1 {
				t.Fatalf("faults = %+v, want at least one rejoin after the mute window", res.Faults)
			}
			if !contains(res.Live, net.victim) {
				t.Fatalf("live = %v: the healed straggler must be re-admitted, not demoted", res.Live)
			}
			net.mu.Lock()
			passed := net.passed
			net.mu.Unlock()
			if passed < 1 {
				t.Fatal("the rejoined worker never contributed a feedback after healing")
			}
			inner.Close()
			assertNoGoroutineLeak(t, before)
		})
	}
}

// TestRoundDeadlineEscalatesToDemotion: a worker that never answers —
// not even probes — must not be suspected forever. SuspectAfter
// consecutive misses demote it fail-stop style and the run completes
// with the survivors.
func TestRoundDeadlineEscalatesToDemotion(t *testing.T) {
	before := goroutineBaseline()
	inner := simnet.NewChannelNet(0)
	net := &blackholeNet{Net: inner, victim: workerName(0)}
	shards := ringShards(3, 64, 409)
	cfg := baseConfig()
	cfg.Iters = 6
	cfg.Net = net
	cfg.RoundTimeout = 60 * time.Millisecond
	cfg.SuspectAfter = 2
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != cfg.Iters {
		t.Fatalf("applied %d updates, want %d", res.Iters, cfg.Iters)
	}
	if res.Faults.Demotions != 1 {
		t.Fatalf("faults = %+v, want exactly one demotion", res.Faults)
	}
	if contains(res.Live, net.victim) {
		t.Fatalf("live = %v: a never-answering worker must be demoted", res.Live)
	}
	if res.Faults.Timeouts < cfg.SuspectAfter {
		t.Fatalf("faults = %+v, want >=%d timeout ticks before demotion", res.Faults, cfg.SuspectAfter)
	}
	inner.Close()
	assertNoGoroutineLeak(t, before)
}

// TestCorruptFeedbackKeepsTraining is the fails-on-pre-fix regression
// for the corrupt-frame satellite: an undecodable feedback used to
// abort the whole run with a decode error. It must instead strike the
// sender — immediate demotion on the legacy (RoundTimeout=0) path,
// suspect-then-demote within the strike budget on the deadline path —
// while the other workers keep training.
func TestCorruptFeedbackKeepsTraining(t *testing.T) {
	t.Run("legacy-demotes-immediately", func(t *testing.T) {
		before := goroutineBaseline()
		inner := simnet.NewChannelNet(0)
		net := &garbleNet{Net: inner, victim: workerName(1)}
		shards := ringShards(3, 64, 419)
		cfg := baseConfig()
		cfg.Iters = 5
		cfg.Net = net
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatalf("a corrupt feedback frame aborted the run: %v", err)
		}
		if res.Iters != cfg.Iters {
			t.Fatalf("applied %d updates, want %d", res.Iters, cfg.Iters)
		}
		if res.Faults.CorruptFrames < 1 {
			t.Fatalf("faults = %+v, want a counted corrupt frame", res.Faults)
		}
		if contains(res.Live, net.victim) {
			t.Fatalf("live = %v: without a deadline a corrupt sender is failed outright", res.Live)
		}
		inner.Close()
		assertNoGoroutineLeak(t, before)
	})
	t.Run("deadline-strikes-then-demotes", func(t *testing.T) {
		before := goroutineBaseline()
		inner := simnet.NewChannelNet(0)
		net := &garbleNet{Net: inner, victim: workerName(1)}
		shards := ringShards(3, 64, 421)
		cfg := baseConfig()
		cfg.Iters = 8
		cfg.Net = net
		// The victim garbles frames but still answers every round, so
		// the deadline should never fire — it is armed only to select
		// the suspect-then-demote strike path (generous, so it really
		// never expires). Strikes are asserted as corrupt + timeout
		// misses, not corrupt frames alone: after the first corrupt
		// strike the victim is probed, and on a loaded 1-CPU host its
		// pong can legitimately lose the scheduling race against the
		// next round's probe sweep, ticking a timeout miss that
		// consumes part of the budget. Demotion still must not come
		// before SuspectAfter total misses, and at least one of them
		// must be the corrupt-strike path this regression test exists
		// for.
		cfg.RoundTimeout = 2 * time.Second
		cfg.SuspectAfter = 2
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iters != cfg.Iters {
			t.Fatalf("applied %d updates, want %d", res.Iters, cfg.Iters)
		}
		if res.Faults.CorruptFrames < 1 || res.Faults.CorruptFrames+res.Faults.Timeouts < cfg.SuspectAfter {
			t.Fatalf("faults = %+v, want a corrupt strike and >=%d total misses before demotion", res.Faults, cfg.SuspectAfter)
		}
		if res.Faults.Demotions != 1 || contains(res.Live, net.victim) {
			t.Fatalf("faults = %+v live = %v: the striker must be demoted at the budget", res.Faults, res.Live)
		}
		inner.Close()
		assertNoGoroutineLeak(t, before)
	})
}

// TestDeadlineFaultFreeKeepsStrictPin: arming RoundTimeout on a
// fault-free run must not touch the deterministic contract — same
// rounds, same RNG stream, bitwise-identical generator parameters to
// the RoundTimeout=0 run. The fault paths activate only on faults.
func TestDeadlineFaultFreeKeepsStrictPin(t *testing.T) {
	run := func(timeout time.Duration) []float64 {
		shards := ringShards(4, 96, 431)
		cfg := baseConfig()
		cfg.Iters = 10
		cfg.SwapEvery = 1
		cfg.RoundTimeout = timeout
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Faults.Any() {
			t.Fatalf("fault-free run recorded faults: %+v", res.Faults)
		}
		return res.G.Net.ParamVector()
	}
	plain, armed := run(0), run(2*time.Second)
	for i := range plain {
		if plain[i] != armed[i] {
			t.Fatalf("param %d: %g with deadline vs %g without — RoundTimeout must be inert without faults",
				i, armed[i], plain[i])
		}
	}
}

// TestAsyncTimeoutDemotesUnresponsiveWorkers is the async counterpart
// of the deadline regression: with every outstanding feedback lost, the
// async loop used to block on the inbox forever. The timeout must tick
// the pending workers to suspicion and on to demotion, and Train must
// return cleanly once nobody is left.
func TestAsyncTimeoutDemotesUnresponsiveWorkers(t *testing.T) {
	before := goroutineBaseline()
	inner := simnet.NewChannelNet(0)
	// Mute all three workers: victim selection per message type.
	net := &blackholeNet{Net: &blackholeNet{Net: &blackholeNet{Net: inner,
		victim: workerName(0)}, victim: workerName(1)}, victim: workerName(2)}
	shards := ringShards(3, 64, 433)
	cfg := baseConfig()
	cfg.Iters = 10
	cfg.Async = true
	cfg.Net = net
	cfg.RoundTimeout = 40 * time.Millisecond
	cfg.SuspectAfter = 2
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 0 {
		t.Fatalf("applied %d updates with every feedback lost", res.Iters)
	}
	if res.Faults.Demotions != 3 || len(res.Live) != 0 {
		t.Fatalf("faults = %+v live = %v, want all three workers demoted", res.Faults, res.Live)
	}
	if res.Faults.Timeouts < 2*3 {
		t.Fatalf("faults = %+v, want two timeout ticks per worker", res.Faults)
	}
	inner.Close()
	assertNoGoroutineLeak(t, before)
}

// TestAsyncCorruptFeedbackKeepsTraining: the async loop's corrupt-frame
// path — strike, demote, continue with the survivors.
func TestAsyncCorruptFeedbackKeepsTraining(t *testing.T) {
	before := goroutineBaseline()
	inner := simnet.NewChannelNet(0)
	net := &garbleNet{Net: inner, victim: workerName(2)}
	shards := ringShards(3, 64, 439)
	cfg := baseConfig()
	cfg.Iters = 12
	cfg.Async = true
	cfg.Net = net
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatalf("a corrupt async feedback aborted the run: %v", err)
	}
	if res.Iters != cfg.Iters {
		t.Fatalf("applied %d updates, want %d from the two clean workers", res.Iters, cfg.Iters)
	}
	if res.Faults.CorruptFrames < 1 || contains(res.Live, net.victim) {
		t.Fatalf("faults = %+v live = %v", res.Faults, res.Live)
	}
	inner.Close()
	assertNoGoroutineLeak(t, before)
}

// TestChaosSoak: both synchronous drivers at N=8 over a seeded
// ChaosNet — random drops, delays, duplicates, corrupted worker→server
// payloads, and one partition/heal cycle on worker3 mid-run — must
// complete every round, keep all eight workers in the membership,
// re-admit the partitioned worker, land the generator on the ring, and
// leak nothing. Deterministic by construction: the fault stream is
// seeded and delays are far shorter than the round deadline.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a long test")
	}
	for _, pipeline := range []bool{false, true} {
		name := "strict"
		if pipeline {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			before := goroutineBaseline()
			inner := simnet.NewChannelNet(0)
			chaos := simnet.WrapChaos(inner, simnet.ChaosConfig{
				Seed:      2025,
				Drop:      0.003,
				Corrupt:   0.003,
				Delay:     0.02,
				MaxDelay:  2 * time.Millisecond,
				Duplicate: 0.01,
				// Corrupt only worker→server frames: a corrupted swap
				// payload is indistinguishable from a poisoned model, and
				// the swap rendezvous resolves corruption as cancellation
				// (tested separately in the worker suite).
				CorruptKinds: map[simnet.Kind]bool{simnet.WtoC: true},
				// stop must always land (shutdown); swaps are protected so
				// a dropped W→W frame cannot demote a healthy receiver —
				// transports retry them, the chaos layer models the
				// post-retry residual.
				ProtectTypes: map[string]bool{msgStop: true, msgSwap: true},
			})
			shards := ringShards(8, 200, 601)
			cfg := baseConfig()
			cfg.Iters = 300
			cfg.Batch = 32
			cfg.Pipeline = pipeline
			cfg.Net = chaos
			cfg.RoundTimeout = 250 * time.Millisecond
			cfg.SuspectAfter = 8
			cfg.EvalEvery = 1
			partitioned := workerName(3)
			eval := func(it int, _ *gan.Generator) {
				switch it {
				case 120:
					chaos.Partition(partitioned)
				case 124:
					chaos.Heal()
				}
			}
			res, err := Train(shards, gan.RingMLP(), cfg, eval)
			if err != nil {
				t.Fatal(err)
			}
			if res.Iters != cfg.Iters {
				t.Fatalf("applied %d updates, want %d", res.Iters, cfg.Iters)
			}
			if len(res.Live) != 8 {
				t.Fatalf("live = %v, want all 8 workers to survive transient chaos", res.Live)
			}
			if res.Faults.Timeouts < 1 || res.Faults.Rejoins < 1 {
				t.Fatalf("faults = %+v, want the partition to cost timeouts and a rejoin", res.Faults)
			}
			stats := chaos.Stats()
			if stats.Dropped == 0 || stats.Delayed == 0 || stats.Duplicated == 0 {
				t.Fatalf("chaos stats %+v: the fault stream never fired — soak is vacuous", stats)
			}
			rng := rand.New(rand.NewSource(77))
			x, _ := res.G.Generate(256, rng, false)
			sum := 0.0
			for i := 0; i < x.Dim(0); i++ {
				sum += math.Hypot(x.At(i, 0), x.At(i, 1))
			}
			if mean := sum / float64(x.Dim(0)); mean < 1.2 || mean > 2.8 {
				t.Fatalf("mean radius %v under chaos, want the ring at ~2.0", mean)
			}
			chaos.Close()
			assertNoGoroutineLeak(t, before)
		})
	}
}
