package core

// Tests for the hierarchical-aggregation wire path: round-trip
// fidelity, hostile-frame bounds, the clone-or-corrupt contract on
// aggAccum inputs, and the steady-state allocation budget the pool
// reuse buys.

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"mdgan/internal/tensor"
)

// validAggPayload builds a well-formed two-entry aggregate frame to
// seed the fuzzer and drive the round-trip test.
func validAggPayload(mode Compression) []byte {
	f0 := tensor.New(2, 3)
	f1 := tensor.New(2, 3)
	for i := range f0.Data {
		f0.Data[i] = tensor.Elem(i) * 0.5
		f1.Data[i] = -tensor.Elem(i) * 0.25
	}
	var a aggAccum
	a.reset()
	a.add(1, []string{"worker4", "worker5"}, f0)
	a.add(0, []string{"worker3"}, f1)
	a.add(1, []string{"worker6"}, f1)
	out := a.encode(7, mode)
	a.reset()
	return out
}

func TestDecodeAggregateRoundTrip(t *testing.T) {
	want := []int{2, 3}
	p := validAggPayload(CompressNone)
	type got struct {
		gIdx     int
		contribs []string
		sum      []tensor.Elem
	}
	var ents []got
	round, err := decodeAggInto(p, want, func(gIdx int, contribs []string, sum *tensor.Tensor) error {
		ents = append(ents, got{gIdx, append([]string(nil), contribs...), append([]tensor.Elem(nil), sum.Data...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if round != 7 {
		t.Fatalf("round = %d, want 7", round)
	}
	if len(ents) != 2 {
		t.Fatalf("entries = %d, want 2", len(ents))
	}
	// encode sorts by batch index.
	if ents[0].gIdx != 0 || ents[1].gIdx != 1 {
		t.Fatalf("batch indices %d,%d — want sorted 0,1", ents[0].gIdx, ents[1].gIdx)
	}
	if !reflect.DeepEqual(ents[0].contribs, []string{"worker3"}) {
		t.Fatalf("entry 0 contributors = %v", ents[0].contribs)
	}
	if !reflect.DeepEqual(ents[1].contribs, []string{"worker4", "worker5", "worker6"}) {
		t.Fatalf("entry 1 contributors = %v", ents[1].contribs)
	}
	// Entry 1 summed f0 + f1 = 0.5i - 0.25i = 0.25i.
	for i, v := range ents[1].sum {
		if wantV := tensor.Elem(i) * 0.25; v != wantV {
			t.Fatalf("entry 1 sum[%d] = %v, want %v", i, v, wantV)
		}
	}
	// The tensor-free scan sees the same round and the full roster.
	r, names, err := aggContribNames(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r != 7 {
		t.Fatalf("aggContribNames round = %d", r)
	}
	sort.Strings(names)
	if !reflect.DeepEqual(names, []string{"worker3", "worker4", "worker5", "worker6"}) {
		t.Fatalf("aggContribNames = %v", names)
	}
}

// TestDecodeAggregateRejects pins the per-field bounds: duplicate batch
// indices, implausible indices, entry-count and contributor-count bombs
// all error before any proportional work.
func TestDecodeAggregateRejects(t *testing.T) {
	want := []int{2, 3}
	noMerge := func(int, []string, *tensor.Tensor) error { return nil }

	dup := func() []byte { // two entries, same gIdx
		f := tensor.New(2, 3)
		var a aggAccum
		a.reset()
		a.add(0, []string{"w"}, f)
		p := a.encode(1, CompressNone)
		a.reset()
		// Double the single entry, patch nEntries to 2.
		p = append(p, p[8:]...)
		binary.LittleEndian.PutUint32(p[4:8], 2)
		return p
	}()
	if _, err := decodeAggInto(dup, want, noMerge); err == nil {
		t.Fatal("duplicate batch index accepted")
	}

	valid := validAggPayload(CompressNone)
	bigIdx := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(bigIdx[8:12], maxAggEntries) // first entry's gIdx
	if _, err := decodeAggInto(bigIdx, want, noMerge); err == nil {
		t.Fatal("implausible batch index accepted")
	}

	entryBomb := binary.LittleEndian.AppendUint32(nil, 0)
	entryBomb = binary.LittleEndian.AppendUint32(entryBomb, 0xFFFFFFF0)
	if _, err := decodeAggInto(entryBomb, want, noMerge); err == nil {
		t.Fatal("entry-count bomb accepted")
	}

	contribBomb := binary.LittleEndian.AppendUint32(nil, 0)
	contribBomb = binary.LittleEndian.AppendUint32(contribBomb, 1)
	contribBomb = binary.LittleEndian.AppendUint32(contribBomb, 0)         // gIdx
	contribBomb = binary.LittleEndian.AppendUint32(contribBomb, 0xFFFFFF0) // nContrib
	contribBomb = append(contribBomb, make([]byte, 16)...)
	if _, err := decodeAggInto(contribBomb, want, noMerge); err == nil {
		t.Fatal("contributor-count bomb accepted")
	}
}

// TestDecodeAggregateTruncationsError walks every prefix of a valid
// frame; each must produce a clean error, never a panic.
func TestDecodeAggregateTruncationsError(t *testing.T) {
	want := []int{2, 3}
	for _, mode := range []Compression{CompressNone, CompressFP32} {
		valid := validAggPayload(mode)
		if _, err := decodeAggInto(valid, want, func(int, []string, *tensor.Tensor) error { return nil }); err != nil {
			t.Fatalf("mode %d: valid frame rejected: %v", mode, err)
		}
		for cut := 0; cut < len(valid); cut++ {
			if _, err := decodeAggInto(valid[:cut], want, func(int, []string, *tensor.Tensor) error { return nil }); err == nil {
				t.Fatalf("mode %d: truncation at %d of %d decoded without error", mode, cut, len(valid))
			}
		}
	}
}

func FuzzDecodeAggregate(f *testing.F) {
	for _, mode := range []Compression{CompressNone, CompressFP32, CompressTopK} {
		valid := validAggPayload(mode)
		f.Add(valid)
		f.Add(valid[:len(valid)/2]) // truncated mid-entry
	}
	f.Add([]byte{})
	f.Add(binary.LittleEndian.AppendUint32(nil, 3)) // round only, no count
	bomb := binary.LittleEndian.AppendUint32(nil, 0)
	bomb = binary.LittleEndian.AppendUint32(bomb, 0xFFFFFFFF) // entry bomb
	f.Add(bomb)
	skip := encodeAggSkip(5, "worker2") // the sibling frame shares the tag
	f.Add(skip)
	f.Fuzz(func(t *testing.T, p []byte) {
		want := []int{2, 3}
		// Neither decoder may panic, and any sum that survives decoding
		// must respect the expected feedback volume.
		_, _ = decodeAggInto(p, want, func(_ int, _ []string, sum *tensor.Tensor) error {
			if sum.Size() > 6 {
				t.Fatalf("decoded %d elements past the 6-element bound", sum.Size())
			}
			return nil
		})
		_, _, _ = aggContribNames(p, nil)
		_, _, _ = decodeAggSkip(p)
	})
}

// TestHostileAggregateFramesDoNotOverAllocate: fabricated length
// prefixes claiming huge entry/contributor/frame sizes must be rejected
// before the decoder allocates storage for the claim.
func TestHostileAggregateFramesDoNotOverAllocate(t *testing.T) {
	want := []int{2, 3}
	hostile := [][]byte{
		func() []byte { // entry-count bomb
			b := binary.LittleEndian.AppendUint32(nil, 0)
			return binary.LittleEndian.AppendUint32(b, 0x7FFFFFFF)
		}(),
		func() []byte { // contributor-count bomb
			b := binary.LittleEndian.AppendUint32(nil, 0)
			b = binary.LittleEndian.AppendUint32(b, 1)
			b = binary.LittleEndian.AppendUint32(b, 0)
			b = binary.LittleEndian.AppendUint32(b, 0x7FFFFFF0)
			return append(b, make([]byte, 32)...)
		}(),
		func() []byte { // feedback frame-length bomb
			b := binary.LittleEndian.AppendUint32(nil, 0)
			b = binary.LittleEndian.AppendUint32(b, 1)
			b = binary.LittleEndian.AppendUint32(b, 0) // gIdx
			b = binary.LittleEndian.AppendUint32(b, 0) // nContrib
			b = binary.LittleEndian.AppendUint32(b, 0x7FFFFFF0)
			return append(b, make([]byte, 16)...)
		}(),
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for _, p := range hostile {
		if _, err := decodeAggInto(p, want, func(int, []string, *tensor.Tensor) error { return nil }); err == nil {
			t.Fatal("hostile aggregate frame decoded without error")
		}
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("hostile frames allocated %d bytes; bounds checks must reject before allocating", grew)
	}
}

// TestAggAccumDoesNotRetainInputs is the clone-or-corrupt contract for
// the aggregator reduce path: mutating a feedback tensor or the
// contributor slice after add() must not change what the accumulator
// encodes.
func TestAggAccumDoesNotRetainInputs(t *testing.T) {
	f := tensor.New(2, 3)
	for i := range f.Data {
		f.Data[i] = tensor.Elem(i)
	}
	names := []string{"worker1"}
	var a aggAccum
	a.reset()
	a.add(0, names, f)
	ref := a.encode(3, CompressNone)
	// Corrupt both inputs in place.
	for i := range f.Data {
		f.Data[i] = -999
	}
	names[0] = "mallory"
	if got := a.encode(3, CompressNone); !bytes.Equal(got, ref) {
		t.Fatal("accumulator retained a caller-owned tensor or name slice")
	}
	a.reset()
}

// TestAggAccumEncodeBuffersAreFresh: the net retains payload references
// (frames travel through channels and may sit in a peer's inbox across
// rounds), so encode must hand out a fresh buffer every call.
func TestAggAccumEncodeBuffersAreFresh(t *testing.T) {
	f := tensor.New(2, 3)
	var a aggAccum
	a.reset()
	a.add(0, []string{"w"}, f)
	first := a.encode(1, CompressNone)
	snapshot := append([]byte(nil), first...)
	a.reset()
	a.add(0, []string{"w"}, f)
	a.add(1, []string{"x"}, f)
	_ = a.encode(2, CompressNone)
	if !bytes.Equal(first, snapshot) {
		t.Fatal("a later encode overwrote an earlier in-flight frame")
	}
	a.reset()
}

// TestAggAccumSteadyStateAllocs pins the pool-reuse budget: after the
// first round warms the entry slots, map and pooled sums, a
// reset/add/add cycle allocates only the pooled tensor checkouts (which
// tensor.Get satisfies from the free list without new backing arrays).
func TestAggAccumSteadyStateAllocs(t *testing.T) {
	f := tensor.New(4, 6)
	for i := range f.Data {
		f.Data[i] = tensor.Elem(i % 5)
	}
	kids := []string{"worker4", "worker5"}
	var a aggAccum
	a.reset()
	// Warm the pool and the accumulator's slots.
	for r := 0; r < 3; r++ {
		a.reset()
		a.add(0, kids, f)
		a.add(1, kids, f)
	}
	a.reset()
	avg := testing.AllocsPerRun(50, func() {
		a.reset()
		a.add(0, kids, f)
		a.add(1, kids, f)
	})
	// Budget: one pool checkout per entry may allocate the *tensor.Tensor
	// header even when the backing array is recycled.
	if avg > 4 {
		t.Fatalf("steady-state aggregation round allocates %.1f objects, budget 4", avg)
	}
	a.reset()
}
