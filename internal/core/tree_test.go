package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"mdgan/internal/cluster"
	"mdgan/internal/gan"
	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

// treeConfig is baseConfig with a depth-2 tree over 9 workers (auto
// fan-in 3: aggregators worker0/3/6, two leaves each).
func treeConfig() Config {
	cfg := baseConfig()
	cfg.Topology = cluster.Tree{Depth: 2}
	return cfg
}

// TestTreeAggregationMatchesFlat: a fault-free depth-2 tree must
// produce the same generator update as the flat star up to
// floating-point reassociation — the tree's per-batch gradient is
// sum/received, exactly the flat groupMean·groupSize/received
// decomposed. Compared over a couple of iterations (reassociation
// drift compounds chaotically through Adam beyond that) within
// tensor.Tol.
func TestTreeAggregationMatchesFlat(t *testing.T) {
	run := func(topo cluster.Topology, iters int) []float64 {
		shards := ringShards(9, 96, 419)
		cfg := baseConfig()
		cfg.Iters = iters
		cfg.K = 3
		cfg.SwapEvery = 1
		cfg.Topology = topo
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.G.Net.ParamVector()
	}
	for _, iters := range []int{1, 2} {
		flat := run(nil, iters)
		tree := run(cluster.Tree{Depth: 2}, iters)
		tol := tensor.Tol(1e-9, 2e-3)
		for i := range flat {
			scale := math.Max(1, math.Abs(flat[i]))
			if d := math.Abs(flat[i] - tree[i]); d > tol*scale {
				t.Fatalf("iters=%d param %d: tree %g vs flat %g (Δ=%g > %g)",
					iters, i, tree[i], flat[i], d, tol*scale)
			}
		}
	}
}

// TestTreeTrainCompletes: a longer tree run with swaps converges onto
// the ring like the flat engine does, under both synchronous drivers.
func TestTreeTrainCompletes(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		shards := ringShards(9, 120, 433)
		cfg := treeConfig()
		cfg.Iters = 40
		cfg.SwapEvery = 1
		cfg.Pipeline = pipeline
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatalf("pipeline=%v: %v", pipeline, err)
		}
		if res.Iters != cfg.Iters {
			t.Fatalf("pipeline=%v: iters = %d, want %d", pipeline, res.Iters, cfg.Iters)
		}
		if len(res.Live) != 9 {
			t.Fatalf("pipeline=%v: live = %v", pipeline, res.Live)
		}
		if res.Faults.Any() {
			t.Fatalf("pipeline=%v: fault-free tree run recorded faults: %+v", pipeline, res.Faults)
		}
	}
}

// TestTreeServerIngressReduction pins the scaling win: with a depth-2
// tree over 9 workers the server ingests one W→C frame per DIRECT
// child per round (3), not one per worker (9).
func TestTreeServerIngressReduction(t *testing.T) {
	const iters = 6
	run := func(topo cluster.Topology) simnet.Traffic {
		shards := ringShards(9, 96, 439)
		cfg := baseConfig()
		cfg.Iters = iters
		cfg.SwapEvery = -1
		cfg.Topology = topo
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Traffic
	}
	flat := run(nil)
	tree := run(cluster.Tree{Depth: 2})
	if got, want := flat.Msgs[simnet.WtoC], int64(9*iters); got != want {
		t.Fatalf("flat W→C msgs = %d, want %d", got, want)
	}
	if got, want := tree.Msgs[simnet.WtoC], int64(3*iters); got != want {
		t.Fatalf("tree W→C msgs = %d, want %d (fan-in-bounded ingress)", got, want)
	}
	// The leaves' contributions moved to the W→W tier (6 per round).
	if got, want := tree.Msgs[simnet.WtoW], int64(6*iters); got != want {
		t.Fatalf("tree W→W msgs = %d, want %d", got, want)
	}
}

// TestAggregatorFailureReparentsChildren: killing an aggregator
// mid-run (its batches dispatch starts failing with ErrNodeDown) must
// demote it, charge its two leaves a reparent, rehome them under the
// next round's plan, and complete training with the survivors.
func TestAggregatorFailureReparentsChildren(t *testing.T) {
	inner := simnet.NewChannelNet(0)
	shards := ringShards(9, 96, 443)
	cfg := treeConfig()
	cfg.Iters = 10
	// worker3 heads the middle subtree {worker3, worker4, worker5}.
	cfg.Net = &failNet{Net: inner, victim: workerName(3), after: 3}
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	inner.Close()
	if err != nil {
		t.Fatalf("aggregator failure aborted training: %v", err)
	}
	if res.Iters != cfg.Iters {
		t.Fatalf("iters = %d, want %d", res.Iters, cfg.Iters)
	}
	if len(res.Live) != 8 {
		t.Fatalf("live = %v, want the 8 survivors", res.Live)
	}
	if res.Faults.Reparents < 2 {
		t.Fatalf("reparents = %d, want ≥ 2 (worker4 and worker5 lost their aggregator); faults: %+v",
			res.Faults.Reparents, res.Faults)
	}
	for _, name := range []string{workerName(4), workerName(5)} {
		if res.Faults.Workers[name].Reparents < 1 {
			t.Fatalf("%s recorded no reparent: %+v", name, res.Faults.Workers[name])
		}
	}
}

// TestTreeTrainExitPathsReapWorkers extends the leak assertions to the
// tree paths: every Train exit (clean run, aggregator death) must reap
// all worker goroutines, including aggregators blocked in
// collectChildren.
func TestTreeTrainExitPathsReapWorkers(t *testing.T) {
	before := goroutineBaseline()
	t.Run("clean", func(t *testing.T) {
		shards := ringShards(9, 64, 449)
		cfg := treeConfig()
		cfg.Iters = 4
		if _, err := Train(shards, gan.RingMLP(), cfg, nil); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("aggregator-death", func(t *testing.T) {
		inner := simnet.NewChannelNet(0)
		defer inner.Close()
		shards := ringShards(9, 64, 457)
		cfg := treeConfig()
		cfg.Iters = 8
		cfg.Net = &failNet{Net: inner, victim: workerName(0), after: 2}
		if _, err := Train(shards, gan.RingMLP(), cfg, nil); err != nil {
			t.Fatal(err)
		}
	})
	assertNoGoroutineLeak(t, before)
}

// TestTreeValidation: the tree composes with the synchronous engines
// and mean aggregation only.
func TestTreeValidation(t *testing.T) {
	shards := ringShards(4, 64, 461)
	cfg := treeConfig()
	cfg.Async = true
	if _, err := Train(shards, gan.RingMLP(), cfg, nil); err == nil {
		t.Fatal("tree + async accepted")
	}
	cfg = treeConfig()
	cfg.Aggregate = AggMedian
	if _, err := Train(shards, gan.RingMLP(), cfg, nil); err == nil {
		t.Fatal("tree + median accepted")
	}
	// Flat topology is identity: it must NOT reject median.
	cfg = baseConfig()
	cfg.Topology = cluster.Flat{}
	cfg.Aggregate = AggMedian
	cfg.Iters = 2
	if _, err := Train(shards, gan.RingMLP(), cfg, nil); err != nil {
		t.Fatalf("flat topology rejected a legal config: %v", err)
	}
}

// TestChaosSoakTree is the chaos soak run under a depth-2 tree: seeded
// drops, delays, duplicates, corrupted worker→server aggregates and a
// partition/heal cycle on an AGGREGATOR — the soak must complete every
// round, keep all workers, rehome the partitioned aggregator's leaves
// (reparents recorded) and land the generator on the ring.
func TestChaosSoakTree(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a long test")
	}
	before := goroutineBaseline()
	inner := simnet.NewChannelNet(0)
	chaos := simnet.WrapChaos(inner, simnet.ChaosConfig{
		Seed:         2026,
		Drop:         0.003,
		Corrupt:      0.003,
		Delay:        0.02,
		MaxDelay:     2 * time.Millisecond,
		Duplicate:    0.01,
		CorruptKinds: map[simnet.Kind]bool{simnet.WtoC: true},
		ProtectTypes: map[string]bool{msgStop: true, msgSwap: true},
	})
	shards := ringShards(9, 200, 607)
	cfg := treeConfig()
	cfg.Iters = 300
	cfg.Batch = 32
	cfg.Net = chaos
	cfg.RoundTimeout = 250 * time.Millisecond
	cfg.SuspectAfter = 8
	cfg.EvalEvery = 1
	// worker3 heads the middle subtree: the partition severs its two
	// leaves' only route to the server mid-run.
	partitioned := workerName(3)
	eval := func(it int, _ *gan.Generator) {
		switch it {
		case 120:
			chaos.Partition(partitioned)
		case 124:
			chaos.Heal()
		}
	}
	res, err := Train(shards, gan.RingMLP(), cfg, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != cfg.Iters {
		t.Fatalf("applied %d updates, want %d", res.Iters, cfg.Iters)
	}
	if len(res.Live) != 9 {
		t.Fatalf("live = %v, want all 9 workers to survive transient chaos", res.Live)
	}
	if res.Faults.Timeouts < 1 || res.Faults.Rejoins < 1 {
		t.Fatalf("faults = %+v, want the partition to cost timeouts and a rejoin", res.Faults)
	}
	if res.Faults.Reparents < 2 {
		t.Fatalf("faults = %+v, want the partitioned aggregator's leaves reparented", res.Faults)
	}
	rng := rand.New(rand.NewSource(77))
	x, _ := res.G.Generate(256, rng, false)
	sum := 0.0
	for i := 0; i < x.Dim(0); i++ {
		sum += math.Hypot(x.At(i, 0), x.At(i, 1))
	}
	if mean := sum / float64(x.Dim(0)); mean < 1.2 || mean > 2.8 {
		t.Fatalf("mean radius %v under chaos, want the ring at ~2.0", mean)
	}
	chaos.Close()
	assertNoGoroutineLeak(t, before)
}
