package core

import (
	"fmt"
	"time"

	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

// runAsync implements the asynchronous variant the paper sketches in
// §VII.1: "the server may compute a gradient Δw and apply it each time
// it receives a single F_n. Fresh batches of data can be generated
// frequently, so that they can be sent to idle workers."
//
// Differences from the synchronous Algorithm 1:
//   - one generator update per arriving feedback (no barrier);
//   - every worker gets its own freshly-generated batch pair, so
//     effectively k = N;
//   - swaps use the paper's literal GETRANDOMWORKER (uniform random
//     peer) with lazy application at the receiver instead of the
//     coordinated rendezvous, since no global round exists to anchor a
//     permutation.
//
// As the paper notes, a feedback may be computed against stale
// generator parameters; the update is applied regardless, which is the
// standard asynchronous parameter-server trade-off.
//
// Transient faults (Config.RoundTimeout > 0): when no feedback arrives
// for a full timeout, every worker with an outstanding batch takes a
// suspect miss (escalating to demotion after SuspectAfter ticks); a
// suspect whose feedback does arrive is reinstated and re-fed. A
// corrupt feedback frame strikes its sender — re-fed below the strike
// budget, demoted at it — instead of aborting the run. There is no
// ping/pong probing here: with no round barrier, the feedback itself
// is the liveness signal.
func (s *server) runAsync(iters int) (int, error) {
	type genBatch struct {
		z    *tensor.Tensor
		labs []int
	}
	cache := make(map[string]genBatch)  // worker → latents behind its X^(g)
	workerIters := make(map[string]int) // worker → iterations completed
	pending := make(map[string]bool)    // worker → batch outstanding, feedback awaited

	send := func(name string) error {
		zg, lg := s.g.SampleZ(s.batch, s.rng)
		// Clone: the X^(g) batch must survive the X^(d) forward below
		// (Forward returns a network-owned buffer).
		xg := s.g.Forward(zg, lg, true).Clone()
		zd, ld := s.g.SampleZ(s.batch, s.rng)
		xd := s.g.Forward(zd, ld, true)
		s.feedbackShape = xg.Shape()
		cache[name] = genBatch{z: zg, labs: lg}
		workerIters[name]++
		swapTo := ""
		if s.swapInterval > 0 && workerIters[name]%s.swapInterval == 0 {
			if peer := s.randomPeer(name); peer != "" {
				swapTo = peer
			}
		}
		// No global round exists in async mode; the per-worker iteration
		// count tags the (lazily applied) swaps instead.
		payload := encodeBatches(batchesMsg{Xd: xd, Ld: ld, Xg: xg, Lg: lg, SwapTo: swapTo, Round: workerIters[name]})
		if err := s.net.Send(simnet.Message{
			From: serverName, To: name, Type: msgBatches,
			Kind: simnet.CtoW, Payload: payload,
		}); err != nil {
			return err
		}
		pending[name] = true
		return nil
	}

	for _, name := range s.m.Live() {
		if err := send(name); err != nil {
			return 0, fmt.Errorf("core: async prime %s: %w", name, err)
		}
	}

	updates := 0
	inbox := s.net.Inbox(serverName)
	for updates < iters {
		if s.m.NumLive() == 0 {
			return updates, nil
		}
		var msg simnet.Message
		var ok bool
		if s.roundTimeout > 0 {
			t := time.NewTimer(s.roundTimeout)
			select {
			case msg, ok = <-inbox:
				t.Stop()
			case <-t.C:
				// A full timeout with no feedback at all: every worker
				// with an outstanding batch takes a miss (join order for
				// reproducibility). A demoted worker will never answer;
				// a surviving suspect still might — its batch stays
				// outstanding and its feedback reinstates it.
				for _, name := range s.m.Live() {
					if !pending[name] {
						continue
					}
					s.m.NoteTimeout(name)
					if s.m.Suspect(name) {
						delete(pending, name)
					}
				}
				continue
			}
		} else {
			msg, ok = <-inbox
		}
		if !ok {
			return updates, fmt.Errorf("core: server inbox closed")
		}
		if msg.Type != msgFeedback || !s.m.Alive(msg.From) {
			continue
		}
		f, err := decodeFeedbackAny(msg.Payload, s.feedbackShape)
		if err != nil {
			// Corrupt frame: strike the sender and keep training — this
			// used to abort the whole run. Below the strike budget the
			// worker is re-fed (its next clean feedback reinstates it);
			// at the budget it is demoted.
			delete(pending, msg.From)
			strikes := s.m.NoteCorrupt(msg.From)
			switch {
			case s.roundTimeout <= 0 || strikes >= s.m.SuspectThreshold():
				s.m.Fail(msg.From)
			case s.m.Suspect(msg.From):
				// escalated: nothing more to send
			default:
				if send(msg.From) != nil {
					s.m.Fail(msg.From)
				}
			}
			continue
		}
		// A suspect's feedback arriving is evidence of life.
		s.m.Reinstate(msg.From)
		delete(pending, msg.From)
		gb, okc := cache[msg.From]
		if !okc {
			continue
		}
		// Apply Δw from this single feedback (stale-gradient update).
		s.g.ZeroGrads()
		s.g.Forward(gb.z, gb.labs, true)
		s.g.Backward(f)
		s.optG.Step(s.g.Params())
		updates++

		s.m.ApplyCrashes(updates)
		if s.eval != nil && s.evalEvery > 0 && updates%s.evalEvery == 0 {
			s.eval(updates, s.g)
		}
		if updates >= iters {
			break
		}
		if s.m.Alive(msg.From) {
			if err := send(msg.From); err != nil {
				// The worker crashed between our liveness check and the
				// send: demote it fail-stop style and continue with the
				// survivors.
				s.m.Fail(msg.From)
				continue
			}
		}
	}
	return updates, nil
}

// randomPeer picks a uniform random live worker different from name
// (the paper's GETRANDOMWORKER).
func (s *server) randomPeer(name string) string {
	var candidates []string
	for _, w := range s.m.Live() {
		if w != name {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		return ""
	}
	return candidates[s.rng.Intn(len(candidates))]
}
