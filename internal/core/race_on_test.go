//go:build race

package core

// raceEnabled relaxes steady-state allocation budgets under the race
// detector: its sync.Pool instrumentation intentionally drops a random
// fraction of Puts (to widen the interleavings it can observe), so
// pooled workspaces miss sporadically and the exact pool-hit budgets of
// the normal build cannot hold.
const raceEnabled = true
