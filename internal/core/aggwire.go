package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"mdgan/internal/tensor"
)

// Wire encoding of hierarchical feedback aggregation (the tree
// topology's W→W / W→C frames). An aggregate frame carries the SUM of
// its contributors' feedbacks per generated-batch index, plus the
// contributor names, so the server can (a) account every worker the
// frame covers for round completion and suspect bookkeeping and (b)
// recover the paper's mean by scaling the global per-batch sum with
// 1/received — summing is associative, so a tree of partial sums
// reduces to the same merged update as the flat star up to
// floating-point reassociation (pinned within tensor.Tol by
// TestTreeAggregationMatchesFlat).
//
// Frame layout (little-endian):
//
//	u32 round
//	u32 nEntries, then per entry:
//	  u32 gIdx                     generated-batch index of the sum
//	  u32 nContrib, nContrib × (u32 len ++ name bytes)
//	  u32 frameLen ++ feedback frame (compress.go framing of the sum)
//
// The skip frame (msgAggSkip, server → aggregator) is u32 round ++ one
// length-prefixed child name: "this child's dispatch failed, stop
// waiting for its contribution".
//
// Every length prefix is bounded against the remaining payload and the
// expected feedback shape before any proportional allocation, in the
// same style as decodeBatches/decodeFeedbackAny, and fuzzed by
// FuzzDecodeAggregate.

// Aggregation message type tags.
const (
	msgAgg     = "agg"     // W→{W,C}: reduced feedback contributions
	msgAggSkip = "aggskip" // C→W: released child slot (failed dispatch)
)

// maxAggEntries bounds the per-frame entry count: entries are keyed by
// generated-batch index, and k never exceeds the cluster size, so any
// frame claiming more is hostile or corrupt.
const maxAggEntries = 4096

// aggEntry is one reduced batch group: the sum of Contribs' feedbacks
// for generated batch GIdx.
type aggEntry struct {
	GIdx     int
	Contribs []string
	Sum      *tensor.Tensor
}

// aggAccum accumulates feedback sums per generated-batch index. The
// sum tensors come from the workspace pool and are recycled by
// reset(), so a steady-state aggregation round reuses its buffers —
// the AllocsPerRun budget in aggwire_test.go pins that.
type aggAccum struct {
	entries []aggEntry
	byIdx   map[int]int
}

// reset clears the accumulator for a new round, returning the previous
// round's pooled sums. Entry slices keep their backing storage.
func (a *aggAccum) reset() {
	for i := range a.entries {
		tensor.Put(a.entries[i].Sum)
		a.entries[i].Sum = nil
		a.entries[i].Contribs = a.entries[i].Contribs[:0]
	}
	a.entries = a.entries[:0]
	if a.byIdx == nil {
		a.byIdx = make(map[int]int)
	} else {
		clear(a.byIdx)
	}
}

// add merges one contribution into batch gIdx: the sum picks up f (a
// SUM itself when merging a child frame, a single feedback when adding
// the aggregator's own), and names joins the contributor list. f is
// only read — the accumulator owns pooled copies, never retains its
// arguments (the clone-or-corrupt contract tests pin this).
func (a *aggAccum) add(gIdx int, names []string, f *tensor.Tensor) {
	i, ok := a.byIdx[gIdx]
	if !ok {
		i = len(a.entries)
		if i < cap(a.entries) {
			a.entries = a.entries[:i+1]
			a.entries[i].GIdx = gIdx
		} else {
			a.entries = append(a.entries, aggEntry{GIdx: gIdx})
		}
		a.entries[i].GIdx = gIdx
		a.entries[i].Sum = tensor.GetZeroed(f.Shape()...)
		a.byIdx[gIdx] = i
	}
	e := &a.entries[i]
	e.Sum.AxpyInPlace(1, f)
	e.Contribs = append(e.Contribs, names...)
}

// count returns the number of contributors accumulated so far.
func (a *aggAccum) count() int {
	n := 0
	for i := range a.entries {
		n += len(a.entries[i].Contribs)
	}
	return n
}

// encode frames the accumulated entries for round, sorted by batch
// index so the frame bytes are independent of merge discovery order.
// The buffer is freshly allocated on every call, never pooled: the net
// retains payload references (ChannelNet hands the slice through a
// channel), and under quorum collect the parent can still be holding
// round R's frame when round R+1 encodes — reuse would corrupt the
// in-flight frame.
func (a *aggAccum) encode(round int, mode Compression) []byte {
	sort.Slice(a.entries, func(i, j int) bool { return a.entries[i].GIdx < a.entries[j].GIdx })
	for i := range a.entries {
		a.byIdx[a.entries[i].GIdx] = i
	}
	size := int64(8)
	for i := range a.entries {
		e := &a.entries[i]
		size += 8 + 4 + feedbackEncodedSize(e.Sum, mode)
		for _, name := range e.Contribs {
			size += int64(4 + len(name))
		}
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint32(out, uint32(round))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(a.entries)))
	for i := range a.entries {
		e := &a.entries[i]
		out = binary.LittleEndian.AppendUint32(out, uint32(e.GIdx))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(e.Contribs)))
		for _, name := range e.Contribs {
			out = appendString(out, name)
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(feedbackEncodedSize(e.Sum, mode)))
		out = appendFeedbackCompressed(out, e.Sum, mode)
	}
	return out
}

// aggRound peeks the round tag every aggregation frame (msgAgg and
// msgAggSkip alike) leads with.
func aggRound(p []byte) (int, bool) {
	if len(p) < 4 {
		return 0, false
	}
	return int(binary.LittleEndian.Uint32(p[:4])), true
}

// readAggHeader consumes the round tag and bounded entry count.
func readAggHeader(r *bytes.Reader) (round, entries int, err error) {
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, 0, fmt.Errorf("core: read aggregate round: %w", err)
	}
	round = int(binary.LittleEndian.Uint32(tmp[:]))
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, 0, fmt.Errorf("core: read aggregate entry count: %w", err)
	}
	entries = int(binary.LittleEndian.Uint32(tmp[:]))
	// Every entry needs at least gIdx + nContrib + frameLen.
	if entries > maxAggEntries || entries > r.Len()/12 {
		return 0, 0, fmt.Errorf("core: aggregate entry count %d exceeds remaining payload", entries)
	}
	return round, entries, nil
}

// readAggContribs consumes one entry's bounded contributor list,
// appending into names.
func readAggContribs(r *bytes.Reader, names []string) ([]string, error) {
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return nil, fmt.Errorf("core: read aggregate contributor count: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(tmp[:]))
	if n > r.Len()/4 {
		return nil, fmt.Errorf("core: aggregate contributor count %d exceeds remaining payload", n)
	}
	for i := 0; i < n; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

// decodeAggInto parses an aggregate frame, invoking merge once per
// entry with the entry's batch index, contributor names and decoded
// sum. The expected feedback shape bounds every tensor decode; the
// contributor slice and tensor are only valid during the callback —
// retainers must clone. Duplicate batch indices within one frame are
// rejected (a legal aggregator merges per index before encoding), so a
// hostile frame cannot multiply decode work beyond maxAggEntries
// distinct sums.
func decodeAggInto(p []byte, want []int, merge func(gIdx int, contribs []string, sum *tensor.Tensor) error) (round int, err error) {
	r := bytes.NewReader(p)
	round, entries, err := readAggHeader(r)
	if err != nil {
		return 0, err
	}
	var names []string
	var seen map[int]bool
	var tmp [4]byte
	for i := 0; i < entries; i++ {
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return round, fmt.Errorf("core: read aggregate batch index: %w", err)
		}
		gIdx := int(binary.LittleEndian.Uint32(tmp[:]))
		if gIdx >= maxAggEntries {
			return round, fmt.Errorf("core: implausible aggregate batch index %d", gIdx)
		}
		if seen[gIdx] {
			return round, fmt.Errorf("core: duplicate aggregate batch index %d", gIdx)
		}
		if seen == nil {
			seen = make(map[int]bool, entries)
		}
		seen[gIdx] = true
		if names, err = readAggContribs(r, names[:0]); err != nil {
			return round, err
		}
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return round, fmt.Errorf("core: read aggregate frame length: %w", err)
		}
		frameLen := int(binary.LittleEndian.Uint32(tmp[:]))
		if frameLen > r.Len() {
			return round, fmt.Errorf("core: aggregate frame length %d exceeds remaining payload", frameLen)
		}
		off := len(p) - r.Len()
		sum, err := decodeFeedbackAny(p[off:off+frameLen], want)
		if err != nil {
			return round, fmt.Errorf("core: aggregate entry %d: %w", i, err)
		}
		r.Seek(int64(frameLen), io.SeekCurrent)
		if err := merge(gIdx, names, sum); err != nil {
			return round, err
		}
	}
	return round, nil
}

// aggContribNames scans an aggregate frame for its round tag and the
// full contributor list without decoding any tensor — the cheap
// arrival-time pass the server's collect uses for round accounting
// before the deterministic merge.
func aggContribNames(p []byte, names []string) (round int, _ []string, err error) {
	r := bytes.NewReader(p)
	round, entries, err := readAggHeader(r)
	if err != nil {
		return 0, nil, err
	}
	var tmp [4]byte
	for i := 0; i < entries; i++ {
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return round, nil, fmt.Errorf("core: read aggregate batch index: %w", err)
		}
		if names, err = readAggContribs(r, names); err != nil {
			return round, nil, err
		}
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return round, nil, fmt.Errorf("core: read aggregate frame length: %w", err)
		}
		frameLen := int(binary.LittleEndian.Uint32(tmp[:]))
		if frameLen > r.Len() {
			return round, nil, fmt.Errorf("core: aggregate frame length %d exceeds remaining payload", frameLen)
		}
		r.Seek(int64(frameLen), io.SeekCurrent)
	}
	return round, names, nil
}

// encodeAggSkip frames the server's "stop waiting for this child"
// release for round.
func encodeAggSkip(round int, child string) []byte {
	out := make([]byte, 0, 8+len(child))
	out = binary.LittleEndian.AppendUint32(out, uint32(round))
	return appendString(out, child)
}

// decodeAggSkip splits a skip frame into its round tag and child name.
func decodeAggSkip(p []byte) (round int, child string, err error) {
	r := bytes.NewReader(p)
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, "", fmt.Errorf("core: read skip round: %w", err)
	}
	child, err = readString(r)
	if err != nil {
		return 0, "", err
	}
	return int(binary.LittleEndian.Uint32(tmp[:])), child, nil
}
