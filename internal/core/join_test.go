package core

import (
	"math"
	"math/rand"
	"testing"

	"mdgan/internal/dataset"
	"mdgan/internal/gan"
	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

func TestWorkerJoinAddsParticipant(t *testing.T) {
	shards := ringShards(3, 100, 61) // shards for workers 0..2 + spare
	spare := dataset.GaussianRing(100, 8, 2.0, 0.05, 62)
	cfg := baseConfig()
	cfg.Iters = 20
	cfg.SwapEvery = -1
	cfg.JoinAt = map[int][]*dataset.Dataset{8: {spare}}
	res, err := Train(shards[:2], gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Live) != 3 {
		t.Fatalf("live = %v, want original 2 + 1 joiner", res.Live)
	}
	if _, ok := res.Discs[workerName(2)]; !ok {
		t.Fatal("joined worker's discriminator missing from result")
	}
	// After the join, every iteration carries 3 feedbacks instead of 2:
	// 7 iterations × 2 + 13 × 3 = 53, plus the one dparams clone reply.
	wantWtoC := int64(7*2 + 13*3 + 1)
	if got := res.Traffic.Msgs[simnet.WtoC]; got != wantWtoC {
		t.Fatalf("W→C msgs = %d, want %d", got, wantWtoC)
	}
}

// TestJoinerAdoptsDonorDiscriminator: with discriminator training
// disabled, every worker's D stays at its adopted value, so the joiner
// must end bit-identical to its donor — proving it entered with a
// pre-trained copy rather than a fresh initialisation.
func TestJoinerAdoptsDonorDiscriminator(t *testing.T) {
	shards := ringShards(2, 100, 63)
	spare := dataset.GaussianRing(100, 8, 2.0, 0.05, 64)
	cfg := baseConfig()
	cfg.Iters = 10
	cfg.DiscSteps = -1
	cfg.SwapEvery = -1
	cfg.SwapPrec = SwapNative // clone payloads at compiled width: bit-exact adoption
	cfg.JoinAt = map[int][]*dataset.Dataset{5: {spare}}
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	joined := res.Discs[workerName(2)]
	if joined == nil {
		t.Fatal("no joiner discriminator")
	}
	// All discriminators started identical and never trained, so the
	// joiner must match worker 0 exactly.
	a := joined.Trunk.ParamVector()
	b := res.Discs[workerName(0)].Trunk.ParamVector()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("joiner did not adopt the donor's discriminator")
		}
	}
}

// Under the default FP32 clone payloads the joiner adopts the donor's
// discriminator up to one float32 rounding per parameter.
func TestJoinerAdoptsDonorDiscriminatorFP32(t *testing.T) {
	shards := ringShards(2, 100, 63)
	spare := dataset.GaussianRing(100, 8, 2.0, 0.05, 64)
	cfg := baseConfig()
	cfg.Iters = 10
	cfg.DiscSteps = -1
	cfg.SwapEvery = -1
	cfg.JoinAt = map[int][]*dataset.Dataset{5: {spare}}
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	joined := res.Discs[workerName(2)]
	if joined == nil {
		t.Fatal("no joiner discriminator")
	}
	a := joined.Trunk.ParamVector()
	b := res.Discs[workerName(0)].Trunk.ParamVector()
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > 2e-7*(1+math.Abs(b[i])) {
			t.Fatalf("joiner deviates from donor at %d by %g beyond f32 rounding", i, d)
		}
	}
}

func TestJoinTrafficCost(t *testing.T) {
	shards := ringShards(2, 100, 65)
	spare := dataset.GaussianRing(100, 8, 2.0, 0.05, 66)
	cfg := baseConfig()
	cfg.Iters = 6
	cfg.SwapEvery = -1
	run := func(join bool) simnet.Traffic {
		c := cfg
		if join {
			c.JoinAt = map[int][]*dataset.Dataset{3: {spare}}
		}
		res, err := Train(ringShards(2, 100, 65), gan.RingMLP(), c, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Traffic
	}
	_ = shards
	without := run(false)
	with := run(true)
	// The join adds one |θ| upload (donor→server, at the default FP32
	// swap precision; the clone reply is raw parameter framing — only
	// W→W swap messages carry the round tag) beyond the extra worker's
	// ordinary feedback traffic.
	d := gan.RingMLP().NewGAN(1, cfg.GenLoss, 0).D
	extraUp := with.Bytes[simnet.WtoC] - without.Bytes[simnet.WtoC]
	feedbackBytes := int64(1+4+4*2+tensor.ElemBytes*cfg.Batch*2) + 1
	wantExtra := d.EncodedParamSizeAs(SwapFP32.wireDType()) + 4*feedbackBytes // 4 post-join iterations
	if extraUp != wantExtra {
		t.Fatalf("extra W→C bytes = %d, want %d", extraUp, wantExtra)
	}
}

func TestJoinDeterminism(t *testing.T) {
	run := func() []float64 {
		spare := dataset.GaussianRing(100, 8, 2.0, 0.05, 68)
		cfg := baseConfig()
		cfg.Iters = 12
		cfg.JoinAt = map[int][]*dataset.Dataset{6: {spare}}
		res, err := Train(ringShards(2, 100, 67), gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.G.Net.ParamVector()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("join run not deterministic at param %d", i)
		}
	}
}

func TestJoinRejectedInAsyncMode(t *testing.T) {
	spare := dataset.GaussianRing(50, 8, 2.0, 0.05, 69)
	cfg := baseConfig()
	cfg.Async = true
	cfg.JoinAt = map[int][]*dataset.Dataset{2: {spare}}
	if _, err := Train(ringShards(2, 50, 70), gan.RingMLP(), cfg, nil); err == nil {
		t.Fatal("join in async mode must be rejected")
	}
}

func TestJoinThenLearn(t *testing.T) {
	// Start with one worker, join three more early, and verify the
	// grown cluster still learns the ring.
	base := ringShards(1, 500, 71)
	joins := map[int][]*dataset.Dataset{
		20: {dataset.GaussianRing(500, 8, 2.0, 0.05, 72)},
		40: {dataset.GaussianRing(500, 8, 2.0, 0.05, 73), dataset.GaussianRing(500, 8, 2.0, 0.05, 74)},
	}
	cfg := baseConfig()
	cfg.Iters = 400
	cfg.Batch = 32
	cfg.K = 1 // initial cluster is a single worker
	cfg.JoinAt = joins
	res, err := Train(base, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Live) != 4 {
		t.Fatalf("live = %v", res.Live)
	}
	rng := rand.New(rand.NewSource(7))
	x, _ := res.G.Generate(256, rng, false)
	sum := 0.0
	for i := 0; i < x.Dim(0); i++ {
		sum += math.Hypot(x.At(i, 0), x.At(i, 1))
	}
	if mean := sum / 256; mean < 1.0 || mean > 3.0 {
		t.Fatalf("grown cluster diverged: mean radius %v", mean)
	}
}
