package core

// Engine-decomposition regression tests.
//
// TestStrictEngineMatchesSerialReference pins the refactor's core
// guarantee: the staged round engine in strict (default) mode produces
// bitwise-identical generator parameters to a serial, message-free
// replay of Algorithm 1 — the semantics of the pre-engine monolithic
// runSync. If a stage reorders an RNG draw, changes the merge order or
// accidentally makes pipelining the default, this fails.
//
// The pipelined tests pin the documented one-iteration staleness
// contract: identical to strict at Iters=1 (no round to overlap with),
// convergent to the same ring at full length.

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"mdgan/internal/cluster"
	"mdgan/internal/dataset"
	"mdgan/internal/gan"
	"mdgan/internal/opt"
	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

// serialReference replays Algorithm 1 with plain loops and no message
// passing, mirroring the engine's deterministic contract: the same RNG
// streams (server Seed+31, sampler Seed+7919·(i+1)), the same draw
// order (joins → sampling → k latent draws → swap permutation), the
// same §IV-B1 SPLIT, the same merge order and the same swap wire
// round-trip. It supports crashes and client sampling (not joins or
// byzantine modes, which have their own determinism tests).
func serialReference(shards []*dataset.Dataset, arch gan.Arch, cfg Config) []float64 {
	cfg.TrainConfig = cfg.TrainConfig.Defaults()
	n := len(shards)
	kCfg := cfg.K
	if kCfg == 0 {
		kCfg = DefaultK(n)
	}
	swapE := cfg.SwapEvery
	if swapE == 0 {
		swapE = 1
	}
	couple := arch.NewGAN(cfg.Seed, cfg.GenLoss, cfg.ClsWeight)
	g := couple.G
	lc := couple.LossConfig
	optG := opt.NewAdam(cfg.OptG)
	rng := rand.New(rand.NewSource(cfg.Seed + 31))
	swapInterval := swapIntervalFor(shardSizes(shards), swapE, cfg.Batch)

	type refWorker struct {
		d       *gan.Discriminator
		optD    *opt.Adam
		sampler *dataset.Sampler
	}
	ws := make(map[string]*refWorker, n)
	live := make([]string, n)
	for i := 0; i < n; i++ {
		live[i] = workerName(i)
		ws[live[i]] = &refWorker{
			d:       couple.D.Clone(),
			optD:    opt.NewAdam(cfg.OptD),
			sampler: dataset.NewSampler(shards[i], cfg.Seed+7919*int64(i+1)),
		}
	}
	alive := func() []string {
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			if ws[workerName(i)] != nil {
				out = append(out, workerName(i))
			}
		}
		return out
	}

	for it := 1; it <= cfg.Iters; it++ {
		for _, idx := range cfg.CrashAt[it] {
			delete(ws, workerName(idx))
		}
		active := alive()
		if len(active) == 0 {
			break
		}
		if cfg.ActivePerRound > 0 && cfg.ActivePerRound < len(active) {
			rng.Shuffle(len(active), func(i, j int) { active[i], active[j] = active[j], active[i] })
			active = active[:cfg.ActivePerRound]
			sortStrings(active)
		}
		k := kCfg
		if k > len(active) {
			k = len(active)
		}
		zs := make([]*tensor.Tensor, k)
		labs := make([][]int, k)
		xs := make([]*tensor.Tensor, k)
		for j := 0; j < k; j++ {
			zs[j], labs[j] = g.SampleZ(cfg.Batch, rng)
			xs[j] = g.Forward(zs[j], labs[j], true).Clone()
		}
		swapTo := map[string]string{}
		if swapInterval > 0 && it%swapInterval == 0 && len(active) > 1 {
			swapTo = sattolo(active, rng)
		}
		// Worker side: L discriminator steps + feedback, in any order
		// (workers are independent); swaps apply after every feedback
		// is computed, matching the engine's post-round rendezvous.
		feedbacks := make(map[string]*tensor.Tensor, len(active))
		for i, name := range active {
			w := ws[name]
			gi, di := i%k, (i+1)%k
			xr, lr := w.sampler.Sample(cfg.Batch)
			for l := 0; l < cfg.DiscSteps; l++ {
				gan.DiscStep(w.d, lc, w.optD, xr, lr, xs[di], labs[di])
			}
			fn, _ := gan.Feedback(w.d, lc, xs[gi], labs[gi])
			feedbacks[name] = fn.Clone()
		}
		if len(swapTo) > 0 {
			payloads := make(map[string][]byte, len(swapTo))
			for from, to := range swapTo {
				payloads[to] = encodeDiscParams(ws[from].d, cfg.SwapPrec)
			}
			for to, p := range payloads {
				if err := decodeDiscParamsInto(ws[to].d, p); err != nil {
					panic(err)
				}
			}
		}
		// Server side: merge per generated batch in worker order.
		groups := make([][]*tensor.Tensor, k)
		for i, name := range active {
			groups[i%k] = append(groups[i%k], feedbacks[name])
		}
		outGrads := make([]*tensor.Tensor, k)
		for j, fs := range groups {
			if len(fs) == 0 {
				continue
			}
			agg := aggregateFeedbacks(fs, cfg.Aggregate, nil)
			outGrads[j] = agg.ScaleInPlace(float64(len(fs)) / float64(len(active)))
		}
		g.ZeroGrads()
		for j := 0; j < k; j++ {
			if outGrads[j] == nil {
				continue
			}
			g.Forward(zs[j], labs[j], true)
			g.Backward(outGrads[j])
		}
		optG.Step(g.Params())
	}
	return g.Net.ParamVector()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// strictTopologyOverride reads the MDGAN_TOPOLOGY gate (set by
// scripts/verify.sh, e.g. "tree:2"): when it names a non-flat topology
// the strict test re-runs every case as a topology-vs-flat equivalence
// check instead of the serial-reference bitwise pin — the serial
// reference models the flat star, and tree aggregation is only
// reassociation-equivalent, not bitwise.
func strictTopologyOverride(t *testing.T) cluster.Topology {
	spec := os.Getenv("MDGAN_TOPOLOGY")
	if spec == "" {
		return nil
	}
	topo, err := cluster.ParseTopology(spec, 0)
	if err != nil {
		t.Fatalf("MDGAN_TOPOLOGY=%q: %v", spec, err)
	}
	if topo.Name() == "flat" {
		return nil
	}
	return topo
}

func TestStrictEngineMatchesSerialReference(t *testing.T) {
	topo := strictTopologyOverride(t)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"plain", func(c *Config) {}},
		{"swaps", func(c *Config) { c.SwapEvery = 1 }},
		{"crashes", func(c *Config) { c.CrashAt = map[int][]int{4: {1}, 7: {3}} }},
		{"sampling", func(c *Config) { c.ActivePerRound = 3 }},
		{"swaps+crashes+sampling", func(c *Config) {
			c.SwapEvery = 1
			c.CrashAt = map[int][]int{5: {0}}
			c.ActivePerRound = 3
		}},
		{"native-swaps", func(c *Config) { c.SwapEvery = 1; c.SwapPrec = SwapNative }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() ([]*dataset.Dataset, Config) {
				shards := ringShards(5, 96, 311)
				cfg := baseConfig()
				cfg.Iters = 12
				cfg.Batch = 16
				cfg.SwapEvery = -1
				tc.mut(&cfg)
				return shards, cfg
			}
			if topo != nil {
				// Topology gate: same config, hierarchical vs flat
				// aggregation, over a short horizon (reassociation
				// drift compounds chaotically through Adam beyond a
				// couple of updates). Crash schedules land past iter 2
				// and so reduce to fault-free runs here, which is the
				// point — the gate pins the fault-free reduce path.
				run := func(top cluster.Topology) []float64 {
					shards, cfg := mk()
					cfg.Iters = 2
					cfg.Topology = top
					res, err := Train(shards, gan.RingMLP(), cfg, nil)
					if err != nil {
						t.Fatal(err)
					}
					return res.G.Net.ParamVector()
				}
				got, want := run(topo), run(nil)
				tol := tensor.Tol(1e-9, 2e-3)
				for i := range want {
					scale := math.Max(1, math.Abs(want[i]))
					if d := math.Abs(got[i] - want[i]); d > tol*scale {
						t.Fatalf("topology %s diverged from flat at param %d: %g vs %g (Δ=%g)",
							topo.Name(), i, got[i], want[i], d)
					}
				}
				return
			}
			shards, cfg := mk()
			res, err := Train(shards, gan.RingMLP(), cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			refShards, refCfg := mk()
			want := serialReference(refShards, gan.RingMLP(), refCfg)
			got := res.G.Net.ParamVector()
			if len(got) != len(want) {
				t.Fatalf("parameter count %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("strict engine diverged from serial Algorithm 1 at param %d: %g vs %g",
						i, got[i], want[i])
				}
			}
		})
	}
}

// TestPipelinedOneIterationMatchesStrict: with a single iteration there
// is no next round to pregenerate, so the pipelined driver must be
// bitwise identical to strict — the zero-staleness anchor of the
// staleness contract.
func TestPipelinedOneIterationMatchesStrict(t *testing.T) {
	run := func(pipeline bool) []float64 {
		shards := ringShards(4, 96, 313)
		cfg := baseConfig()
		cfg.Iters = 1
		cfg.Pipeline = pipeline
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.G.Net.ParamVector()
	}
	strict, pipe := run(false), run(true)
	for i := range strict {
		if strict[i] != pipe[i] {
			t.Fatalf("param %d: pipelined %g vs strict %g with Iters=1", i, pipe[i], strict[i])
		}
	}
}

// TestPipelinedConvergesLikeStrict: the one-iteration staleness must
// not change what is learned — both drivers put the generator on the
// ring, and their final sample statistics agree within the smoke
// tolerance.
func TestPipelinedConvergesLikeStrict(t *testing.T) {
	radius := func(pipeline bool) float64 {
		shards := ringShards(4, 400, 317)
		cfg := baseConfig()
		cfg.Iters = 400
		cfg.Batch = 32
		cfg.Pipeline = pipeline
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iters != cfg.Iters {
			t.Fatalf("pipeline=%v applied %d updates, want %d", pipeline, res.Iters, cfg.Iters)
		}
		rng := rand.New(rand.NewSource(77))
		x, _ := res.G.Generate(256, rng, false)
		sum := 0.0
		for i := 0; i < x.Dim(0); i++ {
			sum += math.Hypot(x.At(i, 0), x.At(i, 1))
		}
		return sum / float64(x.Dim(0))
	}
	rs, rp := radius(false), radius(true)
	if rs < 1.2 || rs > 2.8 {
		t.Fatalf("strict run off the ring: mean radius %v", rs)
	}
	if rp < 1.2 || rp > 2.8 {
		t.Fatalf("pipelined run off the ring: mean radius %v", rp)
	}
	if d := math.Abs(rs - rp); d > 0.6+tensor.Tol(0, 1e-3) {
		t.Fatalf("strict and pipelined converged apart: radii %v vs %v", rs, rp)
	}
}

// TestPipelinedWithCrashesSamplingAndSwaps: the pipelined driver runs
// the full membership machinery — scheduled crashes take effect at
// their iteration, sampling keeps rotating, swaps keep firing — and
// completes with the survivors.
func TestPipelinedWithCrashesSamplingAndSwaps(t *testing.T) {
	shards := ringShards(5, 96, 331)
	cfg := baseConfig()
	cfg.Iters = 20
	cfg.Batch = 16
	cfg.SwapEvery = 1
	cfg.ActivePerRound = 3
	cfg.Pipeline = true
	cfg.CrashAt = map[int][]int{6: {0}, 12: {4}}
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Live) != 3 {
		t.Fatalf("live = %v, want 3 survivors", res.Live)
	}
	if res.Iters != 20 {
		t.Fatalf("iters = %d; crashes must not stop pipelined training", res.Iters)
	}
}

// TestPipelinedJoin: dynamic joins work under the pipelined driver (the
// join protocol runs in the quiet window after a round's feedbacks are
// collected).
func TestPipelinedJoin(t *testing.T) {
	shards := ringShards(2, 96, 337)
	spare := dataset.GaussianRing(96, 8, 2.0, 0.05, 338)
	cfg := baseConfig()
	cfg.Iters = 12
	cfg.Batch = 16
	cfg.Pipeline = true
	cfg.JoinAt = map[int][]*dataset.Dataset{6: {spare}}
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Live) != 3 {
		t.Fatalf("live = %v, want 2 + 1 joiner", res.Live)
	}
}

// TestPipelinedOverTCP: the pipelined driver is transport-independent —
// a short run over real loopback sockets completes with full traffic.
func TestPipelinedOverTCP(t *testing.T) {
	shards := ringShards(2, 64, 339)
	cfg := baseConfig()
	cfg.Iters = 5
	cfg.Pipeline = true
	net := simnet.NewTCPNet()
	defer net.Close()
	cfg.Net = net
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 5 {
		t.Fatalf("iters = %d", res.Iters)
	}
	if res.Traffic.Bytes[simnet.CtoW] == 0 || res.Traffic.Bytes[simnet.WtoC] == 0 {
		t.Fatal("no traffic accounted over TCP")
	}
}

// failNet wraps a Net and fails every send to one victim from a given
// send count onward, reporting ErrNodeDown — the observable behaviour
// of a worker that died mid-round on a real transport. The victim's
// inbox stays open until the engine demotes it (membership calls
// Crash), exactly like a TCP peer whose process vanished.
type failNet struct {
	simnet.Net
	victim string
	after  int // fail the victim's sends once this many succeeded
	sent   int
}

func (f *failNet) Send(msg simnet.Message) error {
	if msg.To == f.victim && msg.Type == msgBatches {
		f.sent++
		if f.sent > f.after {
			return simnet.ErrNodeDown
		}
	}
	return f.Net.Send(msg)
}

// TestMidRoundSendFailureDemotesWorker: a batches send that fails with
// ErrNodeDown mid-run demotes the destination through the membership
// layer and training continues with the survivors — the pre-engine loop
// aborted the whole run here.
func TestMidRoundSendFailureDemotesWorker(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		inner := simnet.NewChannelNet(0)
		shards := ringShards(3, 96, 341)
		cfg := baseConfig()
		cfg.Iters = 10
		cfg.Batch = 16
		cfg.Pipeline = pipeline
		cfg.Net = &failNet{Net: inner, victim: workerName(1), after: 3}
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		inner.Close()
		if err != nil {
			t.Fatalf("pipeline=%v: mid-round send failure aborted training: %v", pipeline, err)
		}
		if len(res.Live) != 2 {
			t.Fatalf("pipeline=%v: live = %v, want the 2 survivors", pipeline, res.Live)
		}
		for _, name := range res.Live {
			if name == workerName(1) {
				t.Fatalf("pipeline=%v: demoted worker still reported live", pipeline)
			}
		}
		if res.Iters != cfg.Iters {
			t.Fatalf("pipeline=%v: iters = %d, want %d", pipeline, res.Iters, cfg.Iters)
		}
	}
}

// TestMidRoundSendFailureWithSwapsReleasesReceiver: when the demoted
// worker owed its discriminator to a peer this round, the engine's
// cancellation (empty msgSwap) releases that peer from its rendezvous —
// without it the run deadlocks on the next round.
func TestMidRoundSendFailureWithSwapsReleasesReceiver(t *testing.T) {
	inner := simnet.NewChannelNet(0)
	shards := ringShards(3, 64, 347)
	cfg := baseConfig()
	cfg.Iters = 12
	cfg.Batch = 16
	cfg.SwapEvery = 1 // m=64, b=16 → swap every 4 iterations
	cfg.Net = &failNet{Net: inner, victim: workerName(2), after: 4}
	done := make(chan *Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			errc <- err
			return
		}
		done <- res
	}()
	select {
	case res := <-done:
		if len(res.Live) != 2 {
			t.Fatalf("live = %v, want 2 survivors", res.Live)
		}
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(30 * time.Second):
		t.Fatal("run deadlocked: swap receiver was never released after its sender's demotion")
	}
	inner.Close()
}

// brokenNet wraps a Net and fails a batches send with a plain (non-
// ErrNodeDown) transport error from a given send count onward — the
// "transport itself is broken" class the engine treats as fatal, and a
// deterministic way to drive Train down an error return path with a
// caller-supplied transport. (A corrupt FEEDBACK no longer aborts the
// run — see TestCorruptFeedbackDoesNotAbortRun — so the fatal path
// must be driven from the dispatch side.)
type brokenNet struct {
	simnet.Net
	after int // fail batches sends once this many succeeded
	sent  int
}

func (b *brokenNet) Send(msg simnet.Message) error {
	if msg.Type == msgBatches {
		b.sent++
		if b.sent > b.after {
			return fmt.Errorf("injected transport failure")
		}
	}
	return b.Net.Send(msg)
}

// TestTrainErrorPathStopsWorkers is the goroutine-leak regression for
// the shutdown satellite: with a caller-supplied net, an error return
// from the round loop (here: a fatal transport error at dispatch) used
// to leave every worker goroutine blocked on its inbox forever — no
// stop was sent and wait() was never reached. The defer-based shutdown
// must reap them on every exit path.
func TestTrainErrorPathStopsWorkers(t *testing.T) {
	before := goroutineBaseline()
	inner := simnet.NewChannelNet(0)
	shards := ringShards(4, 96, 353)
	cfg := baseConfig()
	cfg.Iters = 10
	cfg.Net = &brokenNet{Net: inner, after: 6}
	if _, err := Train(shards, gan.RingMLP(), cfg, nil); err == nil {
		t.Fatal("a fatal transport error at dispatch must surface")
	}
	// The caller still owns the net: workers must be gone even before
	// it is closed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines leaked across a failing Train: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	inner.Close()
}
