package core

import (
	"testing"
	"time"

	"mdgan/internal/gan"
	"mdgan/internal/nn"
	"mdgan/internal/opt"
	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

// TestCancelSwapCannotResolveEarlierRendezvous is the regression for
// the round-tag fix. Scenario (the ROADMAP known limitation): worker B
// is blocked in round 1's swap rendezvous while its sender's frame
// trails on the transport. The server has already collected every
// feedback and moved on; in round 2 it demotes B's NEW sender and emits
// a cancellation to B. On TCP that cancellation can overtake the real
// round-1 swap.
//
// Pre-fix, msgSwap carried no round tag, so the round-2 cancellation
// resolved round 1's rendezvous: B kept its own discriminator, trained
// round 2 on it, and only afterwards adopted the late swap as a stray —
// one degraded round. Post-fix the cancellation is buffered, the
// tagged round-1 swap completes the rendezvous, and round 2 runs on the
// swapped-in discriminator.
//
// The worker runs with DiscSteps=0, so its round-2 outgoing swap is a
// byte-exact image of whatever discriminator round 2 STARTED from —
// the adopted one iff the rendezvous resolved correctly.
func TestCancelSwapCannotResolveEarlierRendezvous(t *testing.T) {
	net := simnet.NewChannelNet(16)
	defer net.Close()
	const probe = "probe"
	for _, name := range []string{serverName, workerName(0), probe} {
		if err := net.Register(name); err != nil {
			t.Fatal(err)
		}
	}

	arch := gan.RingMLP()
	couple := arch.NewGAN(41, nn.GenLossNonSaturating, 0)
	shard := ringShards(1, 32, 43)[0]
	cfg := Config{TrainConfig: gan.TrainConfig{
		Batch: 4, DiscSteps: 0, Seed: 41,
		OptD: opt.AdamConfig{LR: 1e-3},
	}, SwapPrec: SwapNative}
	w := newWorker(cfg, net, couple.LossConfig, couple.D, 0, shard)
	go w.run()

	// The discriminator B must adopt: recognisably different parameters.
	donor := couple.D.Clone()
	for _, p := range donor.Params() {
		for i := range p.W.Data {
			p.W.Data[i] = tensor.Elem(5)
		}
	}

	batches := func(round int) []byte {
		x := tensor.Full(0.25, cfg.Batch, 2)
		return encodeBatches(batchesMsg{Xd: x, Xg: x, SwapTo: probe, Round: round})
	}
	send := func(typ string, payload []byte) {
		t.Helper()
		if err := net.Send(simnet.Message{
			From: serverName, To: workerName(0), Type: typ,
			Kind: simnet.CtoW, Payload: payload,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// The adversarial interleaving, all queued in B's inbox up front:
	// round 1's batches; round 2's cancellation overtaking round 1's
	// swap; round 2's batches; the late round-1 swap. Rounds 3 and 4
	// then proceed normally BEFORE the shutdown: the stashed round-2
	// cancellation must resolve round 2's rendezvous on its own (a
	// buggy worker that consumed it elsewhere deadlocks in round 2 and
	// never reaches them — the stop would rescue round 2 but not the
	// rounds after it).
	send(msgBatches, batches(1))
	send(msgSwap, encodeSwapCancel(2))
	send(msgBatches, batches(2))
	send(msgSwap, encodeSwap(1, donor, SwapNative))
	send(msgBatches, batches(3))
	send(msgSwap, encodeSwap(3, donor, SwapNative))
	send(msgBatches, batches(4))
	send(msgSwap, encodeSwapCancel(4))
	send(msgStop, nil)

	done := make(chan struct{})
	go func() { w.wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker deadlocked: round-1 rendezvous never resolved")
	}

	// B must have sent one swap per round to the probe — rounds 3 and 4
	// completing proves the stashed round-2 cancellation resolved its
	// own rendezvous. The round-2 swap must carry the donor's
	// parameters — round 2 started from the adopted D.
	inbox := net.Inbox(probe)
	var swaps [][]byte
	for len(swaps) < 4 {
		select {
		case msg := <-inbox:
			if msg.Type == msgSwap {
				swaps = append(swaps, msg.Payload)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("probe received %d swaps, want 4", len(swaps))
		}
	}
	for i, want := range []int{1, 2, 3, 4} {
		r, _, err := decodeSwap(swaps[i])
		if err != nil {
			t.Fatal(err)
		}
		if r != want {
			t.Fatalf("probe swap %d tagged round %d, want %d", i, r, want)
		}
	}
	round, params, err := decodeSwap(swaps[1])
	if err != nil {
		t.Fatal(err)
	}
	if round != 2 {
		t.Fatalf("second probe swap tagged round %d, want 2", round)
	}
	got := couple.D.Clone()
	if err := decodeDiscParamsInto(got, params); err != nil {
		t.Fatal(err)
	}
	for pi, p := range got.Params() {
		for i, v := range p.W.Data {
			if v != 5 {
				t.Fatalf("round 2 swap param %d[%d] = %v, want the donor's 5: the round-2 cancellation resolved round 1's rendezvous", pi, i, v)
			}
		}
	}
}
