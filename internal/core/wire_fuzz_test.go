package core

// Fuzz and hostile-frame tests for the wire decoders: truncated frames,
// oversized length prefixes and garbage payloads must produce errors —
// never a panic, and never an allocation proportional to a fabricated
// length field. The seed corpus covers each hand-written failure class
// so `go test` (without -fuzz) already exercises them.

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"

	"mdgan/internal/tensor"
)

// validBatchesPayload builds a well-formed batches frame to seed the
// fuzzer (and to mutate into near-valid corruptions).
func validBatchesPayload() []byte {
	xd := tensor.New(2, 3)
	xg := tensor.New(2, 3)
	for i := range xd.Data {
		xd.Data[i] = tensor.Elem(i) * 0.25
		xg.Data[i] = -tensor.Elem(i)
	}
	return encodeBatches(batchesMsg{
		Xd: xd, Ld: []int{0, 1},
		Xg: xg, Lg: []int{1, 0},
		SwapTo: "worker3",
	})
}

func FuzzDecodeBatches(f *testing.F) {
	valid := validBatchesPayload()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                  // truncated mid-frame
	f.Add(valid[:3])                                             // truncated header
	f.Add([]byte{})                                              // empty
	f.Add(binary.LittleEndian.AppendUint32(nil, 0xFFFFFFFF))     // absurd rank
	huge := binary.LittleEndian.AppendUint32(nil, 2)             // rank 2
	huge = binary.LittleEndian.AppendUint32(huge, 0x7FFFFFFF)    // dim bomb
	huge = binary.LittleEndian.AppendUint32(huge, 0x7FFFFFFF)    // dim bomb
	f.Add(huge)                                                  // oversized volume
	strBomb := append([]byte(nil), valid[:len(valid)-8]...)      // keep tensors+labels
	strBomb = binary.LittleEndian.AppendUint32(strBomb, 1<<31-1) // swap-string length bomb
	f.Add(strBomb)

	f.Fuzz(func(t *testing.T, p []byte) {
		var m batchesMsg
		_ = decodeBatches(p, &m) // must never panic
		// Decoding again into the same message exercises the PR-1
		// buffer-reuse path (tensors and label slices overwritten in
		// place) against whatever state the first decode left behind.
		_ = decodeBatches(p, &m)
	})
}

func FuzzDecodeFeedback(f *testing.F) {
	fb := tensor.New(4, 6)
	for i := range fb.Data {
		fb.Data[i] = tensor.Elem(i%7) - 3
	}
	for _, mode := range []Compression{CompressNone, CompressFP32, CompressTopK} {
		enc := encodeFeedbackCompressed(fb, mode)
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
	}
	// Dtype-byte coverage: the non-native wire width and the legacy
	// pre-dtype framing both decode through the same entry point.
	other := append([]byte{byte(CompressNone)}, fb.AppendBinaryAs(nil, tensor.DTypeF32)...)
	f.Add(other)
	f.Add(other[:len(other)/3])
	legacy := []byte{byte(CompressNone), 2, 0, 0, 0, 4, 0, 0, 0, 6, 0, 0, 0}
	legacy = append(legacy, make([]byte, 8*24)...) // zero-valued f64 payload
	f.Add(legacy)
	f.Add([]byte{byte(CompressTopK), 1, 0, 0, 0, 255, 255, 255, 255})    // dim bomb
	f.Add([]byte{byte(CompressNone), tensor.DTypeF32, 9, 0, 0, 0})       // f32 frame, absurd rank
	f.Add([]byte{byte(CompressFP32), tensor.DTypeF64, 1, 0, 0, 0, 2, 0}) // truncated payload
	f.Fuzz(func(t *testing.T, p []byte) {
		fn, err := decodeFeedbackAny(p, fb.Shape()) // must never panic
		if err == nil && fn.Size() > fb.Size() {
			t.Fatalf("decoded %d elements past the %d-element bound", fn.Size(), fb.Size())
		}
	})
}

// FuzzTensorReadInPlace drives the swap-path primitive (a worker
// adopting a peer's discriminator decodes frames straight into its own
// parameter storage) with arbitrary bytes.
func FuzzTensorReadInPlace(f *testing.F) {
	ref := tensor.New(3, 4)
	for i := range ref.Data {
		ref.Data[i] = tensor.Elem(i)
	}
	valid := ref.AppendBinary(nil)
	f.Add(valid)
	f.Add(valid[:5])
	f.Add(ref.AppendBinaryAs(nil, tensor.DTypeF32)) // non-native wire width
	f.Add(ref.AppendBinaryAs(nil, tensor.DTypeF64))
	legacy := binary.LittleEndian.AppendUint32(nil, 2) // pre-dtype framing
	legacy = binary.LittleEndian.AppendUint32(legacy, 3)
	legacy = binary.LittleEndian.AppendUint32(legacy, 4)
	f.Add(append(legacy, make([]byte, 8*12)...))
	f.Add(binary.LittleEndian.AppendUint32(nil, 9))   // rank out of range
	f.Add([]byte{tensor.DTypeF32, 2, 0, 0, 0, 255})   // f32 header, truncated dims
	f.Add([]byte{tensor.DTypeF64})                    // dtype byte alone
	f.Add([]byte{0xF0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 2}) // near-miss dtype byte → legacy rank garbage
	f.Fuzz(func(t *testing.T, p []byte) {
		dst := tensor.New(3, 4)
		_, _ = dst.ReadInPlace(bytes.NewReader(p)) // must never panic
		var fresh tensor.Tensor
		_, _ = fresh.ReadFrom(bytes.NewReader(p)) // must never panic
	})
}

// TestHostileFramesDoNotOverAllocate pins the bounds checks: a frame
// whose length prefixes claim gigabytes, backed by a few bytes of
// payload, must error without the decoder ever allocating storage for
// the claimed size.
func TestHostileFramesDoNotOverAllocate(t *testing.T) {
	hostile := [][]byte{
		func() []byte { // tensor dim bomb: claims 2^31-1 × 2 floats
			b := binary.LittleEndian.AppendUint32(nil, 2)
			b = binary.LittleEndian.AppendUint32(b, 0x7FFFFFFF)
			b = binary.LittleEndian.AppendUint32(b, 2)
			return append(b, make([]byte, 64)...)
		}(),
		func() []byte { // label-count bomb after a tiny valid tensor
			x := tensor.New(1, 1)
			b := x.AppendBinary(nil)
			return binary.LittleEndian.AppendUint32(b, 0xFFFFFFF0)
		}(),
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for _, p := range hostile {
		var m batchesMsg
		if err := decodeBatches(p, &m); err == nil {
			t.Fatal("hostile frame decoded without error")
		}
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("hostile frames allocated %d bytes; bounds checks must reject before allocating", grew)
	}
}

// TestDecodeBatchesTruncationsError walks every prefix of a valid frame
// and demands a clean error (or, for the empty suffix boundary, a
// successful decode only at full length).
func TestDecodeBatchesTruncationsError(t *testing.T) {
	valid := validBatchesPayload()
	var m batchesMsg
	if err := decodeBatches(valid, &m); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	for cut := 0; cut < len(valid); cut++ {
		var m batchesMsg
		if err := decodeBatches(valid[:cut], &m); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(valid))
		}
	}
}
