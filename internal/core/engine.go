package core

// The synchronous round engine. Algorithm 1's global iteration is
// decomposed into composable stages over engine-owned buffers:
//
//	prepare   — membership: crashes, joins, client sampling, k clamp
//	generate  — k latent draws, k generator forwards, one wire frame
//	            per batch (tensor framing ++ labels, encoded once)
//	route     — SWAP permutation + the §IV-B1 SPLIT assignment, then
//	            the per-worker payloads (frame concatenation) fanned
//	            out on the work-stealing scheduler
//	dispatch  — simnet.BroadcastEach; an ErrNodeDown destination is
//	            suspected (or, without a round deadline, demoted
//	            fail-stop style) instead of aborting the run
//	collect   — one feedback per successfully-dispatched worker,
//	            bounded by RoundTimeout with quorum degradation
//	apply     — aggregate per generated batch, backprop through G,
//	            Adam step, eval hook
//
// Two drivers compose the stages. runSync is the paper's strict
// barrier loop — stage order within one round, bitwise-identical
// generator parameters to a serial replay of Algorithm 1 (pinned by
// TestStrictEngineMatchesSerialReference). runPipelined overlaps the
// next round's generate with the current round's worker compute
// (§VII.1: "fresh batches of data can be generated frequently, so that
// they can be sent to idle workers"), trading exactly one iteration of
// generator-parameter staleness for the overlap.
//
// Buffer ownership: a round's slices and maps belong to the engine and
// are reset — not reallocated — when the round slot is reused. The
// per-batch frames are copied into freshly-allocated per-worker message
// payloads at route time, so no in-flight message ever aliases an
// engine buffer (transports hold payloads until workers decode them,
// possibly across a round boundary when a worker buffers batches while
// awaiting a swap).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"mdgan/internal/cluster"
	"mdgan/internal/dataset"
	"mdgan/internal/gan"
	"mdgan/internal/opt"
	"mdgan/internal/parallel"
	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

// server drives the global iterations.
type server struct {
	g            *gan.Generator
	optG         *opt.Adam
	net          simnet.Net
	rng          *rand.Rand
	batch        int
	k            int
	m            *cluster.Membership
	swapInterval int
	eval         EvalFunc
	evalEvery    int
	aggregate    Aggregation
	joinAt       map[int][]*dataset.Dataset
	spawn        func(*dataset.Dataset) (*worker, error)
	// feedbackShape validates async feedback decodes: the shape of the
	// last generated batch, set before any feedback can arrive.
	feedbackShape []int
	// roundTimeout bounds collect's wait for feedbacks (0 = wait
	// forever, the strict fail-stop-only mode the bitwise pin replays).
	roundTimeout time.Duration
	// quorum is the minimum feedback count needed to apply a round when
	// the deadline expires (≤ 0 = 1).
	quorum int
	// topo computes the per-round aggregation plan. nil = the flat star,
	// which keeps the pre-topology dispatch/collect/apply paths
	// byte-for-byte (the bitwise pin's configuration).
	topo cluster.Topology
	// swapSched plans the SWAP step over the active workers (RingSwap —
	// the paper's cyclic permutation — when nil).
	swapSched SwapSchedule
	// probes tracks suspects pinged since the last probe tick; a pong or
	// feedback clears the entry (reinstating the worker), an entry still
	// present at the next tick is another miss.
	probes map[string]bool
	// defense is the cross-round feedback-quality scorer (nil = off).
	defense *defense
	// joinWarmup ramps a joiner's aggregation weight from 1/joinWarmup
	// to 1 over its first joinWarmup rounds (0 = full weight at once);
	// joinedRound records each tracked joiner's entry iteration.
	joinWarmup  int
	joinedRound map[string]int
	// retireAt maps iteration → names of the workers whose Lifetime
	// ends at its start (processed by prepare, before joins).
	retireAt map[int][]string
	// aggSc recycles the robust-aggregation scratch across rounds; wsSc
	// recycles apply's per-group weight vector.
	aggSc aggScratch
	wsSc  []float64
	// updates counts generator updates applied (the engine's Iters).
	updates int
	// rounds are the engine-owned per-stage buffers: slot 0 for strict
	// mode, both slots double-buffered in pipelined mode.
	rounds [2]round
}

// round owns the per-stage state of one synchronous global iteration.
type round struct {
	it     int
	k      int               // generated batches this round
	active []string          // workers targeted this round (post-sampling)
	sent   map[string]bool   // dispatch succeeded; a feedback is expected
	gIdx   map[string]int    // worker → generated-batch index (SPLIT)
	swapTo map[string]string // SWAP successor per worker ("" = none)

	zs    []*tensor.Tensor // latent draws behind each generated batch
	labs  [][]int
	shape []int // generated-batch shape (bounds feedback decodes)
	msgs  []simnet.Message
	// frames holds one wire frame per generated batch (tensor framing
	// followed by the label framing). Each batch is encoded exactly
	// once; per-worker payloads are concatenations of two frames, so
	// the old per-worker re-encoding of the same tensors is gone.
	frames [][]byte

	feedbacks map[string]*tensor.Tensor

	// Apply-stage reusable buffers (flat path): member names and
	// feedback tensors grouped per generated batch, the per-group
	// pooled gradients, and — on weighted rounds — the group weights.
	groupNames [][]string
	groupFeeds [][]*tensor.Tensor
	outGrads   []*tensor.Tensor
	groupWs    []float64

	// Tree-collect state, all nil/empty on the flat path (lazily
	// allocated so a flat round's reset stays allocation-identical to
	// the pre-topology engine).
	plan *cluster.Plan // this round's aggregation plan (nil = flat)
	// acctGot is the contributor set: every worker whose feedback
	// arrived inside some aggregate frame this round.
	acctGot map[string]bool
	// aggEnts holds the decoded entries of each direct child's
	// aggregate frame; apply merges them in plan order.
	aggEnts map[string][]aggEntry
	// preFailed marks the planned subtrees of workers whose dispatch
	// failed — their contributions are unreachable this round.
	preFailed map[string]bool
	// reparented dedups the per-round reparent charge per aggregator.
	reparented map[string]bool
	// agg is the apply-stage merge accumulator; its sum tensors come
	// from the workspace pool and are recycled every round.
	agg aggAccum
}

// reset prepares the round slot for iteration it, reusing backing
// storage — slices are truncated and maps cleared in place (frames are
// copied into payloads before dispatch, so their buffers never escape
// the engine).
func (r *round) reset(it int) {
	r.it = it
	r.k = 0
	r.active = r.active[:0]
	r.swapTo = nil
	r.zs = r.zs[:0]
	r.labs = r.labs[:0]
	r.shape = r.shape[:0]
	r.msgs = r.msgs[:0]
	if r.sent == nil {
		r.sent = make(map[string]bool)
	} else {
		clear(r.sent)
	}
	if r.gIdx == nil {
		r.gIdx = make(map[string]int)
	} else {
		clear(r.gIdx)
	}
	if r.feedbacks == nil {
		r.feedbacks = make(map[string]*tensor.Tensor)
	} else {
		clear(r.feedbacks)
	}
	r.plan = nil
	if r.acctGot != nil {
		clear(r.acctGot)
	}
	if r.aggEnts != nil {
		clear(r.aggEnts)
	}
	if r.preFailed != nil {
		clear(r.preFailed)
	}
	if r.reparented != nil {
		clear(r.reparented)
	}
}

// prepare runs the membership stage for iteration it: scheduled
// crashes, dynamic joins, client sampling. It fills r.active and, when
// clampK is true (strict mode), sets r.k = min(server k, active count).
// Pipelined rounds generate before membership is decided, so they keep
// the k the pregenerate stage chose.
func (s *server) prepare(r *round, clampK bool) error {
	s.m.ApplyCrashes(r.it)
	s.processRetirements(r.it)
	if err := s.processJoins(r.it, s.spawn); err != nil {
		return err
	}
	if s.roundTimeout > 0 {
		s.tickProbes()
	}
	r.active = append(r.active[:0], s.m.Sample()...)
	// Every dispatchable worker is currently suspect: rather than ending
	// training while live workers may yet rejoin, wait for evidence of
	// life. Bounded: each fruitless wait ticks every suspect's
	// escalation counter, so if nobody ever answers they all demote and
	// the loop exits with an empty active set (training ends).
	for len(r.active) == 0 && s.roundTimeout > 0 && s.m.NumSuspect() > 0 {
		if !s.awaitRejoin() {
			s.tickProbes()
		}
		r.active = append(r.active[:0], s.m.Sample()...)
	}
	if clampK {
		r.k = s.k
		if r.k > len(r.active) {
			r.k = len(r.active)
		}
	}
	return nil
}

// generate runs the generation stage: r.k latent draws and generator
// forwards, each batch encoded into its wire frame exactly once. The
// forward output is consumed (encoded) before the next forward clobbers
// it, so no clone is needed; apply re-forwards from r.zs to restore the
// layer caches batch by batch.
func (s *server) generate(r *round) {
	if cap(r.frames) < r.k {
		r.frames = make([][]byte, r.k)
	} else {
		r.frames = r.frames[:r.k]
	}
	for j := 0; j < r.k; j++ {
		z, lab := s.g.SampleZ(s.batch, s.rng)
		x := s.g.Forward(z, lab, true)
		r.zs = append(r.zs, z)
		r.labs = append(r.labs, lab)
		r.shape = append(r.shape[:0], x.Shape()...)
		frame := x.AppendBinary(r.frames[j][:0])
		r.frames[j] = appendLabels(frame, lab)
	}
}

// route runs the routing stage: the SWAP permutation for this
// iteration (a uniform random cyclic permutation over the active
// workers realises the paper's random gossip SWAP deterministically),
// the §IV-B1 SPLIT assignment X^(g) = X^(n mod k), X^(d) =
// X^((n+1) mod k), and the per-worker payloads. Payload assembly is
// independent per worker (the batch frames are only read), so it fans
// out on the scheduler.
func (s *server) route(r *round) {
	r.swapTo = nil
	if s.swapInterval > 0 && r.it%s.swapInterval == 0 && len(r.active) > 1 {
		sched := s.swapSched
		if sched == nil {
			sched = RingSwap{}
		}
		r.swapTo = sched.Plan(r.active, s.rng)
	}
	// The aggregation plan is recomputed fresh every round from the
	// active set — deterministic and RNG-free (the Topology contract),
	// so a membership change reparents orphans as a plain side effect of
	// replanning, without disturbing the pinned RNG streams.
	r.plan = nil
	if s.topo != nil {
		r.plan = s.topo.Plan(serverName, r.active)
	}
	// Aggregators bound their own wait at half the round deadline so a
	// partial reduction (a child's frame was lost) still reaches the
	// server before ITS timer expires — otherwise every lost child frame
	// would cost the aggregator's whole accounted subtree a timeout.
	aggWait := 0
	if s.roundTimeout > 0 {
		aggWait = int(s.roundTimeout / 2 / time.Millisecond)
		if aggWait < 1 {
			aggWait = 1
		}
	}
	for i, name := range r.active {
		r.gIdx[name] = i % r.k
	}
	if cap(r.msgs) < len(r.active) {
		r.msgs = make([]simnet.Message, len(r.active))
	}
	r.msgs = r.msgs[:len(r.active)]
	parallel.ForceFor(len(r.active), func(ws, we int) {
		for i := ws; i < we; i++ {
			name := r.active[i]
			gi := i % r.k
			di := (i + 1) % r.k
			swap := r.swapTo[name]
			var parent string
			var kids []string
			if r.plan != nil {
				parent = r.plan.Parent[name]
				kids = r.plan.Children[name]
			}
			size := len(r.frames[di]) + len(r.frames[gi]) + 4 + len(swap) + 4 +
				4 + len(parent) + 4 + 8
			for _, c := range kids {
				size += 4 + len(c)
			}
			payload := make([]byte, 0, size)
			payload = append(payload, r.frames[di]...) // X^(d) ++ L^(d)
			payload = append(payload, r.frames[gi]...) // X^(g) ++ L^(g)
			payload = appendString(payload, swap)
			payload = binary.LittleEndian.AppendUint32(payload, uint32(r.it))
			payload = appendString(payload, parent)
			payload = binary.LittleEndian.AppendUint32(payload, uint32(len(kids)))
			for _, c := range kids {
				payload = appendString(payload, c)
			}
			payload = binary.LittleEndian.AppendUint32(payload, uint32(gi))
			payload = binary.LittleEndian.AppendUint32(payload, uint32(aggWait))
			r.msgs[i] = simnet.Message{
				From: serverName, To: name, Type: msgBatches,
				Kind: simnet.CtoW, Payload: payload,
			}
		}
	})
}

// dispatch sends the routed payloads. A destination that is down
// (simnet.ErrNodeDown — a fail-stop crash that raced the round, or a
// dead peer on a real transport) loses this round and its swap receiver
// is released; with a round deadline configured it is suspected
// (transient until proven otherwise — TCPNet maps a retried-out peer
// here too), without one it is demoted fail-stop style. Any other
// transport error stays fatal.
func (s *server) dispatch(r *round) error {
	errs := simnet.BroadcastEach(s.net, r.msgs)
	for i, err := range errs {
		name := r.active[i]
		switch {
		case err == nil:
			r.sent[name] = true
		case errors.Is(err, simnet.ErrNodeDown):
			if s.roundTimeout > 0 {
				s.m.Suspect(name)
			} else {
				s.m.Fail(name)
			}
			s.cancelSwap(r, name)
			if r.plan != nil {
				s.preFailSubtree(r, name)
			}
		default:
			return fmt.Errorf("core: send batches: %w", err)
		}
	}
	return nil
}

// preFailSubtree gives up on everything routed through name this round:
// a worker whose dispatch failed never aggregates, so the contributions
// of its whole planned subtree can never reach the server (the children
// address their frames to a parent that has no round to collect them
// into — those frames die in its future-round stash). The subtree is
// marked failed for collect's accounting in BOTH timeout modes, name's
// own parent gets a skip release so it stops waiting for the slot, and
// name's direct children are charged a reparent (the next round's plan
// rehomes them).
//
// BroadcastEach completes every send before dispatch examines the
// errors, so on a FIFO per-pair transport the skip can never overtake
// the parent's own batches frame.
func (s *server) preFailSubtree(r *round, name string) {
	if r.preFailed == nil {
		r.preFailed = make(map[string]bool)
	}
	for _, n := range r.plan.Subtree(name) {
		r.preFailed[n] = true
	}
	s.noteReparented(r, name)
	if parent := r.plan.Parent[name]; parent != "" && parent != serverName && !r.preFailed[parent] {
		_ = s.net.Send(simnet.Message{
			From: serverName, To: parent, Type: msgAggSkip, Kind: simnet.CtoW,
			Payload: encodeAggSkip(r.it, name),
		})
	}
}

// noteReparented charges one reparent per direct child of a failed or
// suspect aggregator, at most once per round per aggregator (a deadline
// can expire several times while the same aggregator stays missing).
func (s *server) noteReparented(r *round, aggName string) {
	kids := r.plan.Children[aggName]
	if len(kids) == 0 || r.reparented[aggName] {
		return
	}
	if r.reparented == nil {
		r.reparented = make(map[string]bool)
	}
	r.reparented[aggName] = true
	for _, c := range kids {
		s.m.NoteReparent(c)
	}
}

// cancelSwap releases the worker that was routed to receive the demoted
// worker's discriminator: a bare-round-tag msgSwap payload means "no
// swap this round, keep your own D" (the receiver would otherwise block
// in its rendezvous forever, since the demoted worker never got its
// batches and so never sends). The demoted worker's discriminator is
// lost with it — the fail-stop model of Fig. 5 — and its receiver keeps
// a copy of its own, which the next scheduled swap re-mixes.
//
// The round tag closes the former known limitation: on a transport
// where worker→worker frames can trail the server's sends (TCP uses one
// connection per pair), this cancellation can arrive while its receiver
// is still blocked in the PREVIOUS round's rendezvous. Untagged, it
// would resolve that rendezvous and silently displace the real swap
// still in flight; tagged, the receiver buffers it, completes the old
// rendezvous with the matching-round frame, and later skips the
// cancellation in its main loop (regression:
// TestCancelSwapCannotResolveEarlierRendezvous).
func (s *server) cancelSwap(r *round, name string) {
	to := r.swapTo[name]
	if to == "" {
		return
	}
	_ = s.net.Send(simnet.Message{
		From: serverName, To: to, Type: msgSwap, Kind: simnet.CtoW,
		Payload: encodeSwapCancel(r.it),
	})
}

// collect gathers one feedback per successfully-dispatched worker,
// bounded by the round deadline. Without a deadline (RoundTimeout 0 —
// the strict fail-stop-only mode the bitwise pin replays) it blocks
// until every feedback is in. With one, a deadline expiry marks every
// missing worker suspect (releasing its swap receiver) and, once at
// least quorum feedbacks are in, applies the round with what it has
// instead of deadlocking the run on a hung worker; below quorum the
// timer re-arms and the wait continues — bounded, because each expiry
// ticks the missing workers' escalation counters until they demote and
// stop being waited for.
//
// Stale or unexpected messages are skipped, but any message from a
// suspect — a pong, a late feedback — is evidence of life and
// reinstates it. A corrupt feedback frame strikes its sender (suspect,
// or demote past the threshold) and the round continues; this used to
// abort the entire training run. A closed server inbox (the transport
// died under the engine) is fatal.
func (s *server) collect(r *round) error {
	if r.plan != nil {
		return s.collectTree(r)
	}
	if len(r.sent) == 0 {
		return nil
	}
	inbox := s.net.Inbox(serverName)
	// failed counts dispatched workers that will never answer this round
	// (corrupt senders, suspects given up on, demotions); the round is
	// complete when feedbacks + failed covers everyone dispatched to.
	failed := 0
	var failedSet, canceled map[string]bool
	var timer *time.Timer
	var deadline <-chan time.Time
	if s.roundTimeout > 0 {
		timer = time.NewTimer(s.roundTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	for len(r.feedbacks)+failed < len(r.sent) {
		var msg simnet.Message
		var ok bool
		if deadline == nil {
			msg, ok = <-inbox
		} else {
			select {
			case msg, ok = <-inbox:
			case <-deadline:
				if failedSet == nil {
					failedSet = make(map[string]bool)
					canceled = make(map[string]bool)
				}
				// Every missing worker takes a miss (r.active iteration
				// keeps the order deterministic). Its swap receiver is
				// released exactly once — the suspect, having never seen
				// its batches, will never send the swap it owes.
				for _, name := range r.active {
					if !r.sent[name] || failedSet[name] {
						continue
					}
					if _, got := r.feedbacks[name]; got {
						continue
					}
					s.m.NoteTimeout(name)
					demoted := s.m.Suspect(name)
					if !canceled[name] {
						canceled[name] = true
						s.cancelSwap(r, name)
					}
					if demoted {
						failedSet[name] = true
						failed++
					}
				}
				quorum := s.quorum
				if quorum < 1 {
					quorum = 1
				}
				if len(r.feedbacks) >= quorum {
					// Quorum reached: apply the round without the
					// missing (they stay suspect until probed back in).
					for _, name := range r.active {
						if !r.sent[name] || failedSet[name] {
							continue
						}
						if _, got := r.feedbacks[name]; !got {
							failedSet[name] = true
							failed++
						}
					}
				} else {
					timer.Reset(s.roundTimeout)
				}
				continue
			}
		}
		if !ok {
			return fmt.Errorf("core: server inbox closed")
		}
		switch msg.Type {
		case msgPong:
			if s.m.Reinstate(msg.From) {
				delete(s.probes, msg.From)
			}
			continue
		case msgFeedback:
		default:
			continue
		}
		from := msg.From
		if !r.sent[from] || failedSet[from] {
			// Not usable this round (stale, or already given up on) —
			// but a feedback from a suspect is evidence of life.
			if s.m.Reinstate(from) {
				delete(s.probes, from)
			}
			continue
		}
		if _, dup := r.feedbacks[from]; dup {
			continue
		}
		// A feedback must have the shape of the generated batch it
		// answers; the expected shape also bounds the decode so a
		// corrupt frame cannot over-allocate.
		f, err := decodeFeedbackAny(msg.Payload, r.shape)
		if err != nil {
			// Corrupt frame: strike the sender and continue the round.
			// Its swap receiver needs no release — workers ship their
			// swap before their feedback, so it is already in flight.
			strikes := s.m.NoteCorrupt(from)
			if s.roundTimeout <= 0 || strikes >= s.m.SuspectThreshold() {
				s.m.Fail(from)
			} else {
				s.m.Suspect(from)
			}
			if failedSet == nil {
				failedSet = make(map[string]bool)
				canceled = make(map[string]bool)
			}
			failedSet[from] = true
			failed++
			continue
		}
		if s.m.Reinstate(from) {
			// Suspected at an earlier expiry this round, answered after
			// all — the feedback still counts.
			delete(s.probes, from)
		}
		r.feedbacks[from] = f
	}
	return nil
}

// collectTree is collect for a round with an aggregation plan: instead
// of one feedback frame per worker, the server ingests one aggregate
// frame per DIRECT child — fan-in-bounded ingress, the scaling win of
// the tree — and accounts every contributor named inside. Completion
// still covers every dispatched worker: contributors arrive, or their
// subtree fails, or the deadline machinery gives up on them exactly
// like the flat path (timeout strikes, suspect escalation, quorum on
// the contributor count). A corrupt aggregate strikes its sender and
// fails everything routed through it; a suspect or corrupt aggregator
// additionally charges its direct children a reparent.
func (s *server) collectTree(r *round) error {
	if len(r.sent) == 0 {
		return nil
	}
	if r.acctGot == nil {
		r.acctGot = make(map[string]bool)
	}
	if r.aggEnts == nil {
		r.aggEnts = make(map[string][]aggEntry)
	}
	// Workers whose planned route died at dispatch are failed from the
	// start (preFailSubtree); collect never waits for them.
	failed := 0
	var failedSet, canceled map[string]bool
	if len(r.preFailed) > 0 {
		failedSet = make(map[string]bool, len(r.preFailed))
		for name := range r.preFailed {
			if r.sent[name] {
				failedSet[name] = true
				failed++
			}
		}
	}
	inbox := s.net.Inbox(serverName)
	var timer *time.Timer
	var deadline <-chan time.Time
	if s.roundTimeout > 0 {
		timer = time.NewTimer(s.roundTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	for len(r.acctGot)+failed < len(r.sent) {
		var msg simnet.Message
		var ok bool
		if deadline == nil {
			msg, ok = <-inbox
		} else {
			select {
			case msg, ok = <-inbox:
			case <-deadline:
				if failedSet == nil {
					failedSet = make(map[string]bool)
				}
				if canceled == nil {
					canceled = make(map[string]bool)
				}
				for _, name := range r.active {
					if !r.sent[name] || failedSet[name] || r.acctGot[name] {
						continue
					}
					s.m.NoteTimeout(name)
					demoted := s.m.Suspect(name)
					if !canceled[name] {
						canceled[name] = true
						s.cancelSwap(r, name)
					}
					// A missing aggregator strands its direct children's
					// only route to the server; the next plan rehomes
					// them.
					if r.plan.IsAggregator(name) {
						s.noteReparented(r, name)
					}
					if demoted {
						failedSet[name] = true
						failed++
					}
				}
				quorum := s.quorum
				if quorum < 1 {
					quorum = 1
				}
				if len(r.acctGot) >= quorum {
					for _, name := range r.active {
						if !r.sent[name] || failedSet[name] || r.acctGot[name] {
							continue
						}
						failedSet[name] = true
						failed++
					}
				} else {
					timer.Reset(s.roundTimeout)
				}
				continue
			}
		}
		if !ok {
			return fmt.Errorf("core: server inbox closed")
		}
		switch msg.Type {
		case msgPong, msgFeedback:
			// A pong — or a stray flat-style feedback — is evidence of
			// life, never a tree contribution.
			if s.m.Reinstate(msg.From) {
				delete(s.probes, msg.From)
			}
			continue
		case msgAgg:
		default:
			continue
		}
		from := msg.From
		// Only this round's direct children feed the server.
		if r.plan.Parent[from] != serverName || !r.sent[from] || failedSet[from] {
			if s.m.Reinstate(from) {
				delete(s.probes, from)
			}
			continue
		}
		if _, dup := r.aggEnts[from]; dup {
			continue
		}
		if rt, tagged := aggRound(msg.Payload); tagged && rt != r.it {
			// A straggler from an earlier round (quorum moved on without
			// it): evidence of life, not a contribution.
			if s.m.Reinstate(from) {
				delete(s.probes, from)
			}
			continue
		}
		var ents []aggEntry
		_, err := decodeAggInto(msg.Payload, r.shape, func(gIdx int, contribs []string, sum *tensor.Tensor) error {
			if gIdx >= r.k {
				return fmt.Errorf("core: aggregate batch index %d out of range", gIdx)
			}
			ents = append(ents, aggEntry{
				GIdx:     gIdx,
				Contribs: append([]string(nil), contribs...),
				Sum:      sum,
			})
			return nil
		})
		if err != nil {
			// Corrupt aggregate: strike the sender like a corrupt flat
			// feedback, and give up on everything routed through it this
			// round.
			strikes := s.m.NoteCorrupt(from)
			if s.roundTimeout <= 0 || strikes >= s.m.SuspectThreshold() {
				s.m.Fail(from)
			} else {
				s.m.Suspect(from)
			}
			if r.plan.IsAggregator(from) {
				s.noteReparented(r, from)
			}
			if failedSet == nil {
				failedSet = make(map[string]bool)
			}
			for _, n := range r.plan.Subtree(from) {
				if r.sent[n] && !failedSet[n] && !r.acctGot[n] {
					failedSet[n] = true
					failed++
				}
			}
			continue
		}
		r.aggEnts[from] = ents
		for _, e := range ents {
			for _, name := range e.Contribs {
				if !r.sent[name] || failedSet[name] || r.acctGot[name] {
					continue
				}
				r.acctGot[name] = true
				// A named contributor computed a feedback this round —
				// evidence of life for a suspect.
				if s.m.Reinstate(name) {
					delete(s.probes, name)
				}
			}
		}
	}
	return nil
}

// tickProbes advances the suspect probe cycle at a round boundary: a
// probe that went unanswered since the last tick is another miss
// (possibly escalating the suspect to demotion), then every remaining
// suspect is (re)probed. Pongs are consumed by collect and awaitRejoin,
// which reinstate the sender — a worker stuck outside its main loop
// cannot answer, so reinstatement needs real evidence of life, never
// mere send success (which would flap a dead-but-reachable worker in
// and out of the active set forever).
func (s *server) tickProbes() {
	// A probe answer — or a straggler's own late feedback — may have
	// arrived after the previous collect exited and be sitting unread
	// in the inbox (with an unbuffered transport, the worker is parked
	// mid-Send). Consume that evidence of life before ticking, so a
	// prompt answer is never counted as a miss. No round is in flight
	// at a prepare boundary, so anything queued here is a pong or a
	// stale feedback frame.
	inbox := s.net.Inbox(serverName)
drain:
	for {
		select {
		case msg, ok := <-inbox:
			if !ok {
				break drain
			}
			if msg.Type == msgPong || msg.Type == msgFeedback || msg.Type == msgAgg {
				if s.m.Reinstate(msg.From) {
					delete(s.probes, msg.From)
				}
				if msg.Type == msgAgg {
					// A stale aggregate carries evidence of life for
					// every contributor it names, not just its sender.
					if _, names, err := aggContribNames(msg.Payload, nil); err == nil {
						for _, n := range names {
							if s.m.Reinstate(n) {
								delete(s.probes, n)
							}
						}
					}
				}
			}
		default:
			break drain
		}
	}
	for _, name := range s.m.Suspects() {
		if s.probes[name] {
			s.m.NoteTimeout(name)
			s.m.Suspect(name)
		}
	}
	clear(s.probes)
	for _, name := range s.m.Suspects() {
		if err := s.net.Send(simnet.Message{
			From: serverName, To: name, Type: msgPing, Kind: simnet.CtoW,
		}); err != nil {
			s.m.NoteTimeout(name)
			s.m.Suspect(name) // transport still refuses: another miss
		} else {
			s.probes[name] = true
		}
	}
}

// awaitRejoin blocks up to RoundTimeout for evidence of life from any
// suspect, reinstating the first that answers; it reports whether one
// did. Used when the active set drained entirely — the alternative to
// ending training while suspects may still recover.
func (s *server) awaitRejoin() bool {
	inbox := s.net.Inbox(serverName)
	timer := time.NewTimer(s.roundTimeout)
	defer timer.Stop()
	for {
		select {
		case msg, ok := <-inbox:
			if !ok {
				return false
			}
			if (msg.Type == msgPong || msg.Type == msgFeedback || msg.Type == msgAgg) &&
				s.m.Reinstate(msg.From) {
				delete(s.probes, msg.From)
				return true
			}
		case <-timer.C:
			return false
		}
	}
}

// apply merges the feedbacks per generated batch and backpropagates
// through G. Grouping follows worker index order so the result is
// independent of message arrival order. The per-group merge applies the
// configured aggregation rule (mean = the paper's §IV-B2 averaging;
// median/trimmed = §VII.3 robustness); the group result is weighted by
// groupSize/received to keep the global 1/N scaling. A round with no
// feedbacks (every dispatch failed) applies no update.
//
// When the defense or the joiner warm-up assigns non-unit weights
// (roundWeights != nil), the head-count scaling generalises to weight
// mass: each group aggregates as a weighted mean and contributes its
// share of the total included weight. The nil-weights branch is the
// byte-identical legacy path the bitwise pin replays.
//
// The grouping slices, group gradients and aggregation scratch are all
// reused round over round, and the pooled per-group aggregates return
// to the workspace pool right after their backward pass — a
// steady-state apply allocates nothing.
func (s *server) apply(r *round) {
	if r.plan != nil {
		s.applyTree(r)
		return
	}
	if len(r.feedbacks) == 0 {
		return
	}
	if cap(r.groupNames) < r.k {
		r.groupNames = make([][]string, r.k)
		r.groupFeeds = make([][]*tensor.Tensor, r.k)
	}
	r.groupNames = r.groupNames[:r.k]
	r.groupFeeds = r.groupFeeds[:r.k]
	for j := range r.groupNames {
		r.groupNames[j] = r.groupNames[j][:0]
		r.groupFeeds[j] = r.groupFeeds[j][:0]
	}
	for _, name := range r.active {
		f, ok := r.feedbacks[name]
		if !ok {
			continue // demoted mid-round
		}
		j := r.gIdx[name]
		r.groupNames[j] = append(r.groupNames[j], name)
		r.groupFeeds[j] = append(r.groupFeeds[j], f)
	}
	weights := s.roundWeights(r)
	if cap(r.outGrads) < r.k {
		r.outGrads = make([]*tensor.Tensor, r.k)
	}
	r.outGrads = r.outGrads[:r.k]
	if weights == nil {
		total := len(r.feedbacks)
		for j, fs := range r.groupFeeds {
			r.outGrads[j] = nil
			if len(fs) == 0 {
				continue
			}
			agg := aggregateFeedbacks(fs, s.aggregate, &s.aggSc)
			r.outGrads[j] = agg.ScaleInPlace(float64(len(fs)) / float64(total))
		}
	} else {
		if cap(r.groupWs) < r.k {
			r.groupWs = make([]float64, r.k)
		}
		r.groupWs = r.groupWs[:r.k]
		total := 0.0
		for j, fs := range r.groupFeeds {
			r.outGrads[j] = nil
			r.groupWs[j] = 0
			if len(fs) == 0 {
				continue
			}
			ws := s.wsSc[:0]
			for _, name := range r.groupNames[j] {
				ws = append(ws, feedbackWeight(weights, name))
			}
			s.wsSc = ws
			agg, w := aggregateFeedbacksWeighted(fs, ws, s.aggregate, &s.aggSc)
			if agg == nil {
				continue
			}
			r.outGrads[j], r.groupWs[j] = agg, w
			total += w
		}
		if total <= 0 {
			return // every feedback excluded: no update this round
		}
		for j, g := range r.outGrads {
			if g != nil {
				g.ScaleInPlace(r.groupWs[j] / total)
			}
		}
	}
	s.g.ZeroGrads()
	for j := 0; j < r.k; j++ {
		if r.outGrads[j] == nil {
			continue
		}
		// Re-forward to restore layer caches for batch j (they were
		// clobbered when batch j+1.. were generated).
		s.g.Forward(r.zs[j], r.labs[j], true)
		s.g.Backward(r.outGrads[j])
		tensor.Put(r.outGrads[j])
		r.outGrads[j] = nil
	}
	s.optG.Step(s.g.Params())
	s.updates++

	if s.eval != nil && s.evalEvery > 0 && r.it%s.evalEvery == 0 {
		s.eval(r.it, s.g)
	}
}

// roundWeights computes the per-worker aggregation weights for this
// round: the defense's suspicion down-weights composed with the joiner
// warm-up ramp. It returns nil when every weight is exactly 1, keeping
// a defense-on fault-free round on the byte-identical legacy
// arithmetic path (the strict bitwise pin).
func (s *server) roundWeights(r *round) map[string]float64 {
	var weights map[string]float64
	if s.defense != nil {
		weights = s.defense.observe(r)
	}
	if s.joinWarmup > 0 && len(s.joinedRound) > 0 {
		for name, joined := range s.joinedRound {
			if _, ok := r.feedbacks[name]; !ok {
				continue
			}
			// Qu et al.'s generator-stability rule: a fresh
			// discriminator's feedback is noise to the generator, so a
			// joiner's weight ramps linearly over its first warm-up
			// rounds instead of jolting the aggregate at full strength.
			age := r.it - joined + 1
			if age >= s.joinWarmup {
				delete(s.joinedRound, name) // ramp complete
				continue
			}
			w := float64(age) / float64(s.joinWarmup)
			if weights == nil {
				weights = make(map[string]float64, 1)
			}
			if cur, ok := weights[name]; ok {
				weights[name] = cur * w
			} else {
				weights[name] = w // absent means 1: compose onto it
			}
		}
	}
	return weights
}

// feedbackWeight resolves a worker's aggregation weight (absent = 1).
func feedbackWeight(weights map[string]float64, name string) float64 {
	if w, ok := weights[name]; ok {
		return w
	}
	return 1
}

// processRetirements retires the workers whose Lifetime ends at the
// start of iteration it: a graceful protocol stop followed by removal
// from the live set. Unlike a demotion no inbox is closed — the worker
// drains its queue and exits through its own main loop — and because
// retirement happens at a prepare boundary, its final round's feedback
// was already counted and no swap rendezvous of its can be in flight
// (workers ship swaps before feedbacks, and collect saw every
// feedback). A worker that crashed or was demoted before its scheduled
// exit is simply skipped.
func (s *server) processRetirements(it int) {
	for _, name := range s.retireAt[it] {
		if !s.m.Alive(name) {
			continue
		}
		_ = s.net.Send(simnet.Message{
			From: serverName, To: name, Type: msgStop, Kind: simnet.CtoW,
		})
		s.m.Retire(name)
		delete(s.joinedRound, name)
	}
}

// applyTree merges the direct children's aggregate entries and
// backpropagates through G. The per-batch gradient is the global
// contribution SUM scaled by 1/received — exactly the flat path's
// groupMean · groupSize/received decomposed (summing is associative),
// so a tree round's update matches the flat round's within
// floating-point reassociation (TestTreeAggregationMatchesFlat pins the
// tolerance). Merge order is the plan's child order, never arrival
// order, so the result is scheduling-independent; the running sums come
// from the workspace pool and are recycled via the round accumulator.
// Tree mode is restricted to AggMean (Train validates): a median over
// pre-summed subtrees would not be the median over workers.
func (s *server) applyTree(r *round) {
	if len(r.acctGot) == 0 {
		return
	}
	a := &r.agg
	a.reset()
	for _, c := range r.plan.Children[serverName] {
		for _, e := range r.aggEnts[c] {
			a.add(e.GIdx, e.Contribs, e.Sum)
		}
	}
	total := float64(len(r.acctGot))
	s.g.ZeroGrads()
	for j := 0; j < r.k; j++ {
		i, ok := a.byIdx[j]
		if !ok {
			continue
		}
		g := a.entries[i].Sum.ScaleInPlace(1 / total)
		// Re-forward to restore layer caches for batch j (they were
		// clobbered when batch j+1.. were generated).
		s.g.Forward(r.zs[j], r.labs[j], true)
		s.g.Backward(g)
	}
	s.optG.Step(s.g.Params())
	s.updates++
	a.reset()

	if s.eval != nil && s.evalEvery > 0 && r.it%s.evalEvery == 0 {
		s.eval(r.it, s.g)
	}
}

// runSync executes the strict synchronous Algorithm 1 for I iterations
// and returns the number of generator updates applied. Stage order
// within a round matches the pre-engine monolithic loop exactly
// (including the server RNG draw order: joins → sampling → k latent
// draws → swap permutation), so a fixed seed yields bitwise-identical
// generator parameters.
func (s *server) runSync(iters int) (int, error) {
	for it := 1; it <= iters; it++ {
		r := &s.rounds[0]
		r.reset(it)
		if err := s.prepare(r, true); err != nil {
			return s.updates, err
		}
		if len(r.active) == 0 {
			return s.updates, nil // every worker crashed: training ends
		}
		s.generate(r)
		s.route(r)
		if err := s.dispatch(r); err != nil {
			return s.updates, err
		}
		if err := s.collect(r); err != nil {
			return s.updates, err
		}
		s.apply(r)
	}
	return s.updates, nil
}

// runPipelined executes the one-round-deep pipelined variant: while the
// workers compute round t, the server generates and encodes round
// t+1's batches (pregenerate), then collects and applies round t, and
// only then resolves round t+1's membership and routing. Round t+1's
// batches therefore come from parameters that miss exactly round t's
// update, and round t's apply re-forwards through parameters one
// update newer than the ones that generated its batches — both sides
// of the one-update stale-gradient trade-off documented on
// Config.Pipeline. Crashes, joins and sampling still take effect at
// their scheduled iteration. With Iters=1 no pregeneration happens and
// the run is bitwise identical to strict mode.
func (s *server) runPipelined(iters int) (int, error) {
	if iters <= 0 {
		return 0, nil
	}
	cur, nxt := &s.rounds[0], &s.rounds[1]
	cur.reset(1)
	if err := s.prepare(cur, true); err != nil {
		return s.updates, err
	}
	if len(cur.active) == 0 {
		return s.updates, nil
	}
	s.generate(cur)
	s.route(cur)
	if err := s.dispatch(cur); err != nil {
		return s.updates, err
	}
	for it := 1; it <= iters; it++ {
		if it < iters {
			// Overlap: the workers are busy with round it right now.
			// Clamp k by the membership bound visible at this point; if
			// crashes at it+1 later shrink the active set below k, the
			// surplus batches simply collect no feedback.
			nxt.reset(it + 1)
			nxt.k = s.k
			if bound := s.m.ActiveBound(); nxt.k > bound {
				nxt.k = bound
			}
			if nxt.k > 0 {
				s.generate(nxt)
			}
		}
		if err := s.collect(cur); err != nil {
			return s.updates, err
		}
		s.apply(cur)
		if it == iters {
			break
		}
		// Round it+1's membership is resolved only now — after round
		// it's feedbacks are in, so a scheduled crash can never eat a
		// feedback the strict schedule would have counted.
		if err := s.prepare(nxt, false); err != nil {
			return s.updates, err
		}
		if len(nxt.active) == 0 || nxt.k == 0 {
			return s.updates, nil
		}
		s.route(nxt)
		if err := s.dispatch(nxt); err != nil {
			return s.updates, err
		}
		cur, nxt = nxt, cur
	}
	return s.updates, nil
}

// sattolo returns a uniform random cyclic permutation of names as a
// map name → successor. Cyclic permutations have no fixed points, so no
// worker ever "swaps with itself" (which would defeat §IV-C1).
func sattolo(names []string, rng *rand.Rand) map[string]string {
	p := append([]string(nil), names...)
	for i := len(p) - 1; i > 0; i-- {
		j := rng.Intn(i)
		p[i], p[j] = p[j], p[i]
	}
	out := make(map[string]string, len(p))
	for i, name := range p {
		out[name] = p[(i+1)%len(p)]
	}
	return out
}
