package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"mdgan/internal/gan"
	"mdgan/internal/tensor"
)

// Wire encodings for the three MD-GAN message types. The formats are
// explicit binary (tensor framing from internal/tensor plus
// little-endian label/flag fields) so payload sizes are deterministic —
// the byte accounting behind Tables III/IV counts these payloads.

// Message type tags.
const (
	msgBatches  = "batches"  // C→W: the two generated batches
	msgFeedback = "feedback" // W→C: error feedback F_n
	msgSwap     = "swap"     // W→W: discriminator parameters
	msgStop     = "stop"     // C→W: terminate
	msgPing     = "ping"     // C→W: liveness probe of a suspect
	msgPong     = "pong"     // W→C: probe reply (evidence of life)
)

// batchesMsg carries the per-worker payload of step 1 (§IV-A): the
// discriminator-training batch X^(d) and the feedback batch X^(g) with
// their intended labels, plus the swap command for this iteration
// (empty SwapTo = no swap) and the round the command belongs to. Round
// tags the whole swap exchange: the worker stamps it onto its outgoing
// msgSwap, and its rendezvous only accepts swap traffic carrying the
// same tag (see awaitSwap), so a cancellation or late frame from an
// adjacent round can never resolve the wrong rendezvous.
// The topology fields route the W→C feedback through the round's
// aggregation plan. Parent names where this worker sends its round
// contribution: empty = directly to the server as a legacy msgFeedback
// (the flat star), anything else = fold it into an msgAgg frame
// addressed to Parent. Children lists the workers whose msgAgg/
// msgFeedback frames this worker must reduce before forwarding (so a
// non-empty Children makes the worker an aggregator this round), GIdx
// is the generated-batch index the worker's own feedback answers (the
// flat path keeps that mapping server-side), and AggWait bounds in
// milliseconds how long an aggregator waits for its children before
// forwarding a partial reduction (0 = wait until every child reports or
// is skipped — strict fail-stop).
type batchesMsg struct {
	Xd, Xg   *tensor.Tensor
	Ld, Lg   []int
	SwapTo   string
	Round    int
	Parent   string
	Children []string
	GIdx     int
	AggWait  int
}

// readLabels decodes a label list, appending into buf (pass a
// zero-length slice with capacity to avoid allocation). An empty list
// decodes as nil, preserving the "unconditional" convention.
func readLabels(r *bytes.Reader, buf []int) ([]int, error) {
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return nil, fmt.Errorf("core: read label count: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(tmp[:]))
	if n == 0 {
		return nil, nil
	}
	if n > r.Len()/4 {
		return nil, fmt.Errorf("core: label count %d exceeds remaining payload", n)
	}
	labels := buf
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return nil, fmt.Errorf("core: read label %d: %w", i, err)
		}
		labels = append(labels, int(binary.LittleEndian.Uint32(tmp[:])))
	}
	return labels, nil
}

func encodeBatches(m batchesMsg) []byte {
	size := m.Xd.EncodedSize() + m.Xg.EncodedSize() +
		int64(8+4*len(m.Ld)+4*len(m.Lg)) + int64(4+len(m.SwapTo)) + 4 +
		int64(4+len(m.Parent)) + 4 + 8
	for _, c := range m.Children {
		size += int64(4 + len(c))
	}
	buf := make([]byte, 0, size)
	buf = m.Xd.AppendBinary(buf)
	buf = appendLabels(buf, m.Ld)
	buf = m.Xg.AppendBinary(buf)
	buf = appendLabels(buf, m.Lg)
	buf = appendString(buf, m.SwapTo)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Round))
	buf = appendString(buf, m.Parent)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Children)))
	for _, c := range m.Children {
		buf = appendString(buf, c)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.GIdx))
	return binary.LittleEndian.AppendUint32(buf, uint32(m.AggWait))
}

func appendLabels(buf []byte, labels []int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(labels)))
	for _, l := range labels {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l))
	}
	return buf
}

// appendString appends the length-prefixed string framing readString
// decodes.
func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// decodeBatches parses p into m, reusing m's tensors and label slices
// so a worker's steady-state receive loop does not allocate.
func decodeBatches(p []byte, m *batchesMsg) error {
	r := bytes.NewReader(p)
	if m.Xd == nil {
		m.Xd = new(tensor.Tensor)
	}
	if _, err := m.Xd.ReadFrom(r); err != nil {
		return fmt.Errorf("core: decode X(d): %w", err)
	}
	var err error
	if m.Ld, err = readLabels(r, m.Ld[:0]); err != nil {
		return err
	}
	if m.Xg == nil {
		m.Xg = new(tensor.Tensor)
	}
	if _, err := m.Xg.ReadFrom(r); err != nil {
		return fmt.Errorf("core: decode X(g): %w", err)
	}
	if m.Lg, err = readLabels(r, m.Lg[:0]); err != nil {
		return err
	}
	if m.SwapTo, err = readString(r); err != nil {
		return err
	}
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return fmt.Errorf("core: read batches round: %w", err)
	}
	m.Round = int(binary.LittleEndian.Uint32(tmp[:]))
	if m.Parent, err = readString(r); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return fmt.Errorf("core: read child count: %w", err)
	}
	nc := int(binary.LittleEndian.Uint32(tmp[:]))
	if nc > r.Len()/4 {
		return fmt.Errorf("core: child count %d exceeds remaining payload", nc)
	}
	m.Children = m.Children[:0]
	for i := 0; i < nc; i++ {
		c, err := readString(r)
		if err != nil {
			return err
		}
		m.Children = append(m.Children, c)
	}
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return fmt.Errorf("core: read batch index: %w", err)
	}
	m.GIdx = int(binary.LittleEndian.Uint32(tmp[:]))
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return fmt.Errorf("core: read aggregation wait: %w", err)
	}
	m.AggWait = int(binary.LittleEndian.Uint32(tmp[:]))
	return nil
}

func readString(r *bytes.Reader) (string, error) {
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return "", fmt.Errorf("core: read string length: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(tmp[:]))
	if n == 0 {
		return "", nil
	}
	if n > r.Len() {
		return "", fmt.Errorf("core: string length %d exceeds remaining payload", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("core: read string: %w", err)
	}
	return string(b), nil
}

// Feedback framing lives in compress.go: F_n is b·d floats (the W→C
// entry of Table III) under CompressNone, or a reduced encoding under
// the §VII.2 compression extensions.

// SwapPrecision selects the wire element width of discriminator swap
// (and join-clone) payloads — the |θ| entries of Table III's W→W row
// and the join protocol's 2·|θ| cost.
type SwapPrecision int

// Swap payload precisions.
const (
	// SwapFP32 (the default) ships 4-byte elements: a 2× reduction of
	// the W→W row on the float64 build (a no-op under -tags f32, whose
	// native frames are already 4-byte). A swapped discriminator loses
	// at most one float32 rounding per parameter per swap — noise well
	// below the gradient scale of the next local step, the same
	// trade-off CompressFP32 already makes for feedbacks every
	// iteration.
	SwapFP32 SwapPrecision = iota
	// SwapNative ships the compiled element width: swaps move
	// parameters bit-exactly (the serial-equivalence and
	// conservation-style tests that demand bitwise transfers use
	// this).
	SwapNative
)

// String implements fmt.Stringer.
func (p SwapPrecision) String() string {
	switch p {
	case SwapFP32:
		return "fp32"
	case SwapNative:
		return "native"
	default:
		return fmt.Sprintf("SwapPrecision(%d)", int(p))
	}
}

// wireDType maps the precision to the tensor wire dtype byte.
func (p SwapPrecision) wireDType() byte {
	if p == SwapNative {
		return tensor.NativeDType
	}
	return tensor.DTypeF32
}

// Swap framing: every msgSwap payload leads with a 4-byte little-endian
// round tag — the iteration whose SWAP command produced it — followed
// by the discriminator parameter framing, or by nothing for a
// cancellation ("no swap this round, keep your own D"). The tag is what
// lets a rendezvous reject traffic from adjacent rounds: on transports
// where W→W frames can trail the server's sends (TCP uses one
// connection per pair), an untagged cancellation could resolve the
// receiver's PREVIOUS rendezvous while the real swap was still in
// flight.

// encodeSwap frames a discriminator's parameters for round's swap at
// the given wire precision.
func encodeSwap(round int, d *gan.Discriminator, p SwapPrecision) []byte {
	dt := p.wireDType()
	buf := make([]byte, 0, 4+d.EncodedParamSizeAs(dt))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(round))
	return d.AppendParamsAs(buf, dt)
}

// encodeSwapCancel frames the server's rendezvous release for round: a
// bare round tag, no parameters.
func encodeSwapCancel(round int) []byte {
	return binary.LittleEndian.AppendUint32(make([]byte, 0, 4), uint32(round))
}

// encodeSwapForward wraps already-encoded parameter bytes (a clone
// reply) in round's swap framing — the join protocol's server→joiner
// hand-off.
func encodeSwapForward(round int, params []byte) []byte {
	buf := binary.LittleEndian.AppendUint32(make([]byte, 0, 4+len(params)), uint32(round))
	return append(buf, params...)
}

// decodeSwap splits a msgSwap payload into its round tag and the
// parameter bytes (empty for a cancellation).
func decodeSwap(p []byte) (round int, params []byte, err error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("core: swap payload %d bytes, want ≥ 4 (round tag)", len(p))
	}
	return int(binary.LittleEndian.Uint32(p[:4])), p[4:], nil
}

// swapPayloadSize returns the byte size of one full swap message under
// the given precision (round tag + parameter framing) — what the
// traffic tests and the Table III accounting expect per swap.
func swapPayloadSize(d *gan.Discriminator, p SwapPrecision) int64 {
	return 4 + d.EncodedParamSizeAs(p.wireDType())
}

// encodeDiscParams frames a discriminator's parameters for a swap at
// the given wire precision. Size is the |θ| payload of Table III's
// W→W row.
func encodeDiscParams(d *gan.Discriminator, p SwapPrecision) []byte {
	dt := p.wireDType()
	return d.AppendParamsAs(make([]byte, 0, d.EncodedParamSizeAs(dt)), dt)
}

// decodeDiscParamsInto loads a swap payload of either wire width (the
// tensor framing self-describes its dtype, so frames from the f32 and
// f64 builds decode interchangeably).
func decodeDiscParamsInto(d *gan.Discriminator, p []byte) error {
	if _, err := d.ReadParams(bytes.NewReader(p)); err != nil {
		return fmt.Errorf("core: decode swap params: %w", err)
	}
	return nil
}
