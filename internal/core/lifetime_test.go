package core

// Temporary-discriminator regression tests: graceful retirement at a
// scheduled round boundary (final feedback counted, swap rendezvous
// already resolved, no fault recorded, no goroutine leaked) and the Qu
// et al. joiner warm-up ramp.

import (
	"testing"

	"mdgan/internal/cluster"
	"mdgan/internal/dataset"
	"mdgan/internal/gan"
	"mdgan/internal/simnet"
)

// TestRetirementReleasesSwapRendezvous: with swaps every iteration, a
// mid-run retiree leaves through its own main loop — the run must
// complete every round, the swap rendezvous of the retiree's last round
// must resolve (no deadlock), the departure must be accounted as a
// Retirement (never a fault), and nothing may leak.
func TestRetirementReleasesSwapRendezvous(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		name := "strict"
		if pipeline {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			before := goroutineBaseline()
			shards := ringShards(4, 96, 449)
			cfg := baseConfig()
			cfg.Iters = 12
			cfg.SwapEvery = 1
			cfg.Pipeline = pipeline
			cfg.Lifetimes = map[int]cluster.Lifetime{1: {Retire: 6}}
			res, err := Train(shards, gan.RingMLP(), cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Iters != cfg.Iters {
				t.Fatalf("applied %d updates, want %d — retirement must not stall the round loop", res.Iters, cfg.Iters)
			}
			if contains(res.Live, workerName(1)) {
				t.Fatalf("live = %v: the retiree is still listed", res.Live)
			}
			if len(res.Live) != 3 {
				t.Fatalf("live = %v, want the 3 remaining workers", res.Live)
			}
			if res.Faults.Retirements != 1 || res.Faults.Workers[workerName(1)].Retirements != 1 {
				t.Fatalf("faults = %+v, want exactly one recorded retirement", res.Faults)
			}
			if res.Faults.Any() {
				t.Fatalf("a scheduled retirement is not a fault, got %+v", res.Faults)
			}
			assertNoGoroutineLeak(t, before)
		})
	}
}

// TestRetirementFinalFeedbackCounted pins the boundary semantics via
// message accounting: retiring at the START of iteration 5 means
// iterations 1–4 carry the retiree's feedback and 5–8 do not.
func TestRetirementFinalFeedbackCounted(t *testing.T) {
	shards := ringShards(3, 96, 457)
	cfg := baseConfig()
	cfg.Iters = 8
	cfg.SwapEvery = -1
	cfg.Lifetimes = map[int]cluster.Lifetime{2: {Retire: 5}}
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantWtoC := int64(4*3 + 4*2)
	if got := res.Traffic.Msgs[simnet.WtoC]; got != wantWtoC {
		t.Fatalf("W→C msgs = %d, want %d (4 rounds of 3 feedbacks, then 4 of 2)", got, wantWtoC)
	}
}

// TestRetirementOfJoinerClosesItsWindow: a temporary discriminator that
// both joins and retires inside the run — the full Qu et al. lifetime —
// leaves the original workers as the survivors.
func TestRetirementOfJoinerClosesItsWindow(t *testing.T) {
	before := goroutineBaseline()
	spare := dataset.GaussianRing(96, 8, 2.0, 0.05, 461)
	cfg := baseConfig()
	cfg.Iters = 14
	cfg.JoinAt = map[int][]*dataset.Dataset{4: {spare}}
	cfg.Lifetimes = map[int]cluster.Lifetime{2: {Join: 4, Retire: 10}}
	res, err := Train(ringShards(2, 96, 463), gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Live) != 2 || contains(res.Live, workerName(2)) {
		t.Fatalf("live = %v, want only the 2 original workers after the joiner retired", res.Live)
	}
	if res.Faults.Retirements != 1 || res.Faults.Any() {
		t.Fatalf("faults = %+v, want one retirement and no faults", res.Faults)
	}
	assertNoGoroutineLeak(t, before)
}

// TestLifetimeValidationAtTrain: the schedule is validated before any
// goroutine spawns.
func TestLifetimeValidationAtTrain(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"retire-not-after-join", func(c *Config) {
			c.JoinAt = map[int][]*dataset.Dataset{5: {dataset.GaussianRing(48, 8, 2.0, 0.05, 468)}}
			c.Lifetimes = map[int]cluster.Lifetime{2: {Join: 5, Retire: 5}}
		}},
		{"initial-worker-declares-join", func(c *Config) {
			c.Lifetimes = map[int]cluster.Lifetime{0: {Join: 3, Retire: 6}}
		}},
		{"lifetime-without-join-shard", func(c *Config) {
			c.Lifetimes = map[int]cluster.Lifetime{7: {Join: 3, Retire: 6}}
		}},
		{"join-iteration-mismatch", func(c *Config) {
			c.JoinAt = map[int][]*dataset.Dataset{5: {dataset.GaussianRing(48, 8, 2.0, 0.05, 469)}}
			c.Lifetimes = map[int]cluster.Lifetime{2: {Join: 4, Retire: 8}}
		}},
		{"async-mode", func(c *Config) {
			c.Async = true
			c.Lifetimes = map[int]cluster.Lifetime{0: {Retire: 4}}
		}},
		{"negative-warmup", func(c *Config) { c.JoinWarmup = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig()
			cfg.Iters = 6
			tc.mut(&cfg)
			if _, err := Train(ringShards(2, 48, 467), gan.RingMLP(), cfg, nil); err == nil {
				t.Fatal("invalid config must be rejected")
			}
		})
	}
}

// TestJoinWarmupRampsJoinerWeight: the warm-up ramp must leave the
// pre-join prefix bitwise untouched (no joiner, no weights, legacy
// path) and must change the post-join trajectory relative to a
// full-weight join — the observable effect of down-weighting the fresh
// discriminator's feedback. The ramped run must also stay
// deterministic.
func TestJoinWarmupRampsJoinerWeight(t *testing.T) {
	run := func(warmup int) [][]float64 {
		spare := dataset.GaussianRing(96, 8, 2.0, 0.05, 479)
		cfg := baseConfig()
		cfg.Iters = 9
		cfg.EvalEvery = 1
		cfg.JoinAt = map[int][]*dataset.Dataset{6: {spare}}
		cfg.JoinWarmup = warmup
		var trace [][]float64
		eval := func(it int, g *gan.Generator) {
			trace = append(trace, g.Net.ParamVector())
		}
		if _, err := Train(ringShards(2, 96, 487), gan.RingMLP(), cfg, eval); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	full, ramped := run(0), run(4)
	if len(full) != 9 || len(ramped) != 9 {
		t.Fatalf("trace lengths %d/%d, want 9", len(full), len(ramped))
	}
	// Pre-join prefix (iterations 1–5): bitwise identical.
	for it := 0; it < 5; it++ {
		for i := range full[it] {
			if full[it][i] != ramped[it][i] {
				t.Fatalf("iter %d param %d diverged before the join — warm-up must be inert pre-join", it+1, i)
			}
		}
	}
	// The join round itself: the ramp must bite (weight 1/4 vs 1).
	same := true
	for i := range full[5] {
		if full[5][i] != ramped[5][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("warm-up ramp had no effect on the join round — test is vacuous")
	}
	again := run(4)
	for it := range ramped {
		for i := range ramped[it] {
			if ramped[it][i] != again[it][i] {
				t.Fatalf("warm-up run not deterministic at iter %d param %d", it+1, i)
			}
		}
	}
}
