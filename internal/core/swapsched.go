package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// SwapSchedule generalises the paper's SWAP step (§IV-C1): given the
// round's active workers it decides which worker ships its
// discriminator where. The ring (a uniform random cyclic permutation —
// the paper's gossip realisation) is one instance; shuffle and gossip
// pairings slot in without touching the round-tagged rendezvous
// machinery, because the engine only consumes the returned successor
// map: every key sends its discriminator to its value and then blocks
// in awaitSwap for the frame (or cancellation) tagged with this round.
//
// Contract: the returned map's key set must equal its value set —
// every worker that sends also receives exactly one discriminator, so
// each rendezvous has a matching frame in flight (the deadlock-freedom
// argument in worker.handleBatches relies on it). Workers absent from
// the map sit the swap out. Implementations may consume the server
// RNG; RingSwap must consume it exactly like the pre-interface sattolo
// call so the strict engine's bitwise pin holds for the default
// configuration.
type SwapSchedule interface {
	// Name identifies the schedule ("ring", "shuffle", "gossip:2", ...).
	Name() string
	// Plan returns the successor map for one swap round over the
	// active workers (nil or empty = no swaps this round).
	Plan(active []string, rng *rand.Rand) map[string]string
}

// RingSwap is the paper's schedule: one uniform random cycle over all
// active workers (Sattolo's algorithm), so every discriminator moves
// and none returns to its sender. The default.
type RingSwap struct{}

// Name implements SwapSchedule.
func (RingSwap) Name() string { return "ring" }

// Plan implements SwapSchedule.
func (RingSwap) Plan(active []string, rng *rand.Rand) map[string]string {
	if len(active) < 2 {
		return nil
	}
	return sattolo(active, rng)
}

// ShuffleSwap pairs the active workers uniformly at random and has
// each pair exchange discriminators (an involution: a→b and b→a). With
// an odd count one worker sits out. Compared to the ring, a shuffle
// mixes the same number of discriminators per swap round but with
// two-cycles instead of one long cycle — discriminators revisit shards
// sooner, an alternative mixing pattern for topology experiments.
type ShuffleSwap struct{}

// Name implements SwapSchedule.
func (ShuffleSwap) Name() string { return "shuffle" }

// Plan implements SwapSchedule.
func (ShuffleSwap) Plan(active []string, rng *rand.Rand) map[string]string {
	if len(active) < 2 {
		return nil
	}
	p := append([]string(nil), active...)
	rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	out := make(map[string]string, len(p))
	for i := 0; i+1 < len(p); i += 2 {
		out[p[i]], out[p[i+1]] = p[i+1], p[i]
	}
	return out
}

// GossipSwap exchanges discriminators between Pairs random pairs per
// swap round and leaves everyone else in place — sparse gossip, the
// cheap end of the swap-traffic spectrum (2·Pairs swap frames instead
// of K). Pairs 0 defaults to max(1, ⌊K/4⌋).
type GossipSwap struct {
	Pairs int
}

// Name implements SwapSchedule.
func (g GossipSwap) Name() string {
	if g.Pairs <= 0 {
		return "gossip"
	}
	return fmt.Sprintf("gossip:%d", g.Pairs)
}

// Plan implements SwapSchedule.
func (g GossipSwap) Plan(active []string, rng *rand.Rand) map[string]string {
	if len(active) < 2 {
		return nil
	}
	pairs := g.Pairs
	if pairs <= 0 {
		pairs = len(active) / 4
		if pairs < 1 {
			pairs = 1
		}
	}
	if pairs > len(active)/2 {
		pairs = len(active) / 2
	}
	p := append([]string(nil), active...)
	rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	out := make(map[string]string, 2*pairs)
	for i := 0; i < 2*pairs; i += 2 {
		out[p[i]], out[p[i+1]] = p[i+1], p[i]
	}
	return out
}

// ParseSwapSchedule resolves a schedule spec: "" or "ring" (the
// default), "shuffle", or "gossip"/"gossip:<pairs>".
func ParseSwapSchedule(spec string) (SwapSchedule, error) {
	switch {
	case spec == "" || spec == "ring":
		return RingSwap{}, nil
	case spec == "shuffle":
		return ShuffleSwap{}, nil
	case spec == "gossip":
		return GossipSwap{}, nil
	case strings.HasPrefix(spec, "gossip:"):
		n, err := strconv.Atoi(spec[len("gossip:"):])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("core: bad gossip pair count in %q (want gossip:<pairs≥1>)", spec)
		}
		return GossipSwap{Pairs: n}, nil
	default:
		return nil, fmt.Errorf("core: unknown swap schedule %q (want ring, shuffle or gossip[:pairs])", spec)
	}
}
