package core

import (
	"math/rand"
	"sync"
	"time"

	"mdgan/internal/dataset"
	"mdgan/internal/gan"
	"mdgan/internal/opt"
	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

// worker is one MD-GAN participant: it hosts a discriminator D_n and a
// local data shard B_n, and runs the WORKER procedure of Algorithm 1 in
// its own goroutine, driven entirely by messages.
type worker struct {
	name    string
	d       *gan.Discriminator
	lc      gan.LossConfig
	optD    *opt.Adam
	sampler *dataset.Sampler
	batch   int
	discL   int
	net     simnet.Net
	// lazySwap applies incoming swap parameters whenever they arrive
	// instead of blocking for them (used in async mode, where strict
	// rendezvous could stall the pipeline).
	lazySwap bool
	// compress selects the feedback wire encoding (§VII.2 extension).
	compress Compression
	// swapPrec selects the wire width of outgoing swap and clone
	// payloads (SwapFP32 by default).
	swapPrec SwapPrecision
	// byzantine, when non-zero, corrupts the feedback before sending
	// (§VII.3 adversary model). Free-rider modes skip local training
	// and fabricate the feedback outright.
	byzantine ByzantineMode
	// rng drives the ByzantineRandom attack and the free-rider
	// fabrications.
	rng *rand.Rand
	// replay caches the FreeRiderReplay attacker's fabricated feedback:
	// built once on its first round, re-sent verbatim ever after.
	replay *tensor.Tensor

	// pending buffers messages that arrive while the worker is blocked
	// waiting for a swap (e.g. the next iteration's batches racing the
	// peer's swap message on TCP transports).
	pending []simnet.Message
	// futureSwaps holds swap traffic tagged with a round this worker
	// has not reached yet (it can overtake that round's batches on
	// TCP). Only awaitSwap consumes it — routing it through the main
	// loop would discard a future rendezvous's release and deadlock
	// that rendezvous.
	futureSwaps []simnet.Message
	// futureAggs holds aggregation traffic (msgAgg contributions from
	// children, msgAggSkip releases from the server) tagged with a round
	// whose batches have not arrived yet — a child's contribution can
	// overtake its aggregator's own batches on TCP. Only collectChildren
	// consumes it.
	futureAggs []simnet.Message
	// lastRound is the most recent batches round handled; swap traffic
	// tagged beyond it belongs to a rendezvous that has not opened yet.
	lastRound int

	// agg accumulates this worker's aggregation round (own feedback +
	// children's sums) when the topology plan names it a parent; its sum
	// tensors come from the workspace pool and are recycled each round.
	agg aggAccum
	// aggGot buffers raw child frames during collectChildren so the
	// merge can run in bm.Children order — merging at arrival order
	// would make the forwarded sums scheduling-dependent.
	aggGot map[string][]byte
	// ownName caches the single-element contributor slice for the
	// worker's own aggregate entry.
	ownName []string

	// bm is the reusable decode target for incoming batch messages: the
	// tensors and label slices are overwritten in place each iteration.
	bm batchesMsg

	done chan struct{}
	once sync.Once
}

// run processes messages until stopped or crashed (inbox closed).
// w.done must be initialised before the goroutine starts.
func (w *worker) run() {
	defer w.once.Do(func() { close(w.done) })
	inbox := w.net.Inbox(w.name)
	for {
		msg, ok := w.next(inbox)
		if !ok {
			return // crashed: inbox closed under us (fail-stop)
		}
		switch msg.Type {
		case msgStop:
			return
		case msgPing:
			// Liveness probe: the server suspects us (our feedback missed
			// a round deadline). Answering from the main loop — and ONLY
			// from here — is deliberate: a worker stuck in a swap
			// rendezvous cannot pong, so the server keeps ticking its
			// escalation counter and eventually demotes it, closing its
			// inbox and unblocking the rendezvous. A pong is therefore
			// real evidence of life, not just of a reachable transport.
			_ = w.net.Send(simnet.Message{
				From: w.name, To: serverName, Type: msgPong, Kind: simnet.WtoC,
			})
		case msgSwap:
			// A swap that arrived outside a rendezvous: adopt the
			// incoming discriminator if its round has already passed
			// (lazy mode, a late frame whose rendezvous was cancelled,
			// or the join protocol's tag-0 clone); a bare round tag is
			// a cancellation (the sender was demoted mid-round): keep
			// D. Traffic tagged with a FUTURE round overtook that
			// round's batches — hold it for that round's rendezvous
			// instead of consuming it here, or the rendezvous would
			// wait forever for a release that was already eaten. (Lazy
			// workers never rendezvous, and async tags come from the
			// sender's own iteration counter, so they always adopt
			// immediately.)
			r, params, err := decodeSwap(msg.Payload)
			if err != nil {
				continue // corrupt frame: a lost swap, not a death sentence
			}
			if r > w.lastRound && !w.lazySwap {
				w.futureSwaps = append(w.futureSwaps, msg)
				continue
			}
			if len(params) == 0 {
				continue
			}
			if err := decodeDiscParamsInto(w.d, params); err != nil {
				continue // corrupt parameters: keep our own discriminator
			}
		case msgClone:
			// The server asked for a copy of our discriminator to
			// bootstrap a joining worker (§IV-A).
			if err := w.net.Send(simnet.Message{
				From: w.name, To: serverName, Type: msgDParams,
				Kind: simnet.WtoC, Payload: encodeDiscParams(w.d, w.swapPrec),
			}); err != nil {
				return
			}
		case msgAgg, msgAggSkip:
			// Aggregation traffic outside a collect window: a child's
			// contribution (or the server's skip release) for a round
			// whose batches have not reached us yet — hold it where
			// collectChildren will look for it. Anything tagged with a
			// round we already forwarded is a straggler whose
			// contribution is lost (the server's deadline machinery
			// accounts for the missing contributors).
			if r, ok := aggRound(msg.Payload); ok && r > w.lastRound {
				w.futureAggs = append(w.futureAggs, msg)
			}
		case msgBatches:
			if !w.handleBatches(msg) {
				return
			}
		}
	}
}

// next pops a buffered message first, then reads the inbox.
func (w *worker) next(inbox <-chan simnet.Message) (simnet.Message, bool) {
	if len(w.pending) > 0 {
		msg := w.pending[0]
		w.pending = w.pending[1:]
		return msg, true
	}
	msg, ok := <-inbox
	return msg, ok
}

// handleBatches runs one global iteration at the worker: L local
// discriminator steps on (X^(r), X^(d)), the error feedback on X^(g),
// and the swap when commanded. Returns false when the worker must stop.
func (w *worker) handleBatches(msg simnet.Message) bool {
	if err := decodeBatches(msg.Payload, &w.bm); err != nil {
		// A corrupt batches frame is a transient fault, not a reason to
		// die: skip the round. The server's deadline will notice the
		// missing feedback and suspect us; its probe finds us alive.
		return true
	}
	bm := &w.bm
	if bm.Round <= w.lastRound {
		// Duplicate delivery (an at-least-once transport, or a chaos
		// net): the round was already trained. Re-running it would send
		// a second swap AND open a second rendezvous nothing will ever
		// resolve. Rounds per worker are strictly increasing in every
		// mode (global iterations, or the per-worker counter in async).
		return true
	}
	w.lastRound = bm.Round
	var fn *tensor.Tensor
	if w.byzantine.IsFreeRider() {
		// Free-rider (Zhao et al.): the attack's whole point is to
		// reap the generator's benefit while spending no compute, so
		// it skips the L discriminator steps AND the feedback pass and
		// fabricates a plausible frame from worker-visible data only.
		fn = w.fabricateFeedback(bm.Xg)
	} else {
		// Step 2 (§IV-A): L discriminator learning steps against the
		// local shard. X^(r) is drawn once per global iteration
		// (Algorithm 1 line 4) and reused across the L steps.
		xr, lr := w.sampler.Sample(w.batch)
		for l := 0; l < w.discL; l++ {
			gan.DiscStep(w.d, w.lc, w.optD, xr, lr, bm.Xd, bm.Ld)
		}
		// Step 3: error feedback on X^(g). A compromised worker lies
		// here.
		fn, _ = gan.Feedback(w.d, w.lc, bm.Xg, bm.Lg)
		if w.byzantine != ByzantineNone {
			if err := corruptFeedback(fn, w.byzantine, w.rng); err != nil {
				// A misconfigured attack mode must not kill the worker
				// goroutine mid-run (this used to panic): surface it
				// through the corrupt-frame strike path instead — the
				// deliberately-invalid frame below fails the server's
				// decode, which strikes us per round until the budget
				// demotes us.
				fn = nil
			}
		}
	}

	// SWAP (§IV-C1): send D_n before the feedback so that once the
	// server has every feedback, every swap is already in flight —
	// the receiving rendezvous below can then never deadlock. The
	// payload carries this round's tag so the receiver can match it to
	// the rendezvous the server commanded.
	if bm.SwapTo != "" {
		if err := w.net.Send(simnet.Message{
			From: w.name, To: bm.SwapTo, Type: msgSwap,
			Kind: simnet.WtoW, Payload: encodeSwap(bm.Round, w.d, w.swapPrec),
		}); err != nil {
			// Receiver crashed mid-round: keep our discriminator.
			_ = err
		}
	}
	if fn == nil {
		// Unknown byzantine mode: ship an undecodable one-byte frame on
		// the round's normal feedback channel. The server (or parent
		// aggregator) rejects it like any corrupt frame — NoteCorrupt
		// strikes accumulate until the budget demotes us — instead of
		// the old panic tearing the goroutine down.
		to, typ, kind := serverName, msgFeedback, simnet.WtoC
		if bm.Parent != "" {
			to, typ = bm.Parent, msgAgg
			if bm.Parent != serverName {
				kind = simnet.WtoW
			}
		}
		if err := w.net.Send(simnet.Message{
			From: w.name, To: to, Type: typ, Kind: kind, Payload: []byte{0xFF},
		}); err != nil && to == serverName {
			return false
		}
	} else if bm.Parent == "" {
		// Flat star: the legacy direct feedback frame to the server.
		if err := w.net.Send(simnet.Message{
			From: w.name, To: serverName, Type: msgFeedback,
			Kind: simnet.WtoC, Payload: encodeFeedbackCompressed(fn, w.compress),
		}); err != nil {
			return false
		}
	} else if !w.sendAggregate(fn) {
		return false
	}
	if bm.SwapTo != "" && !w.lazySwap {
		return w.awaitSwap(bm.Round)
	}
	return true
}

// fabricateFeedback is the free-rider's replacement for the honest
// DiscStep + Feedback computation: plausible noise (or the cached
// replay tensor) shaped like the generated batch, at zero training
// cost. The replay cache holds the FIRST fabrication forever — the
// identical tensor re-encodes to the identical wire frame each round,
// which is exactly the stale-feedback signature the server-side
// fingerprint detection looks for.
func (w *worker) fabricateFeedback(xg *tensor.Tensor) *tensor.Tensor {
	if w.byzantine == FreeRiderReplay && w.replay != nil {
		return w.replay
	}
	f := fabricateFreeRiderFeedback(xg, w.byzantine, w.rng)
	if w.byzantine == FreeRiderReplay {
		w.replay = f
	}
	return f
}

// sendAggregate runs the worker's side of the round's aggregation plan:
// collect the children's contributions (none for a leaf), fold in our
// own feedback, and forward the reduced frame to bm.Parent. Returns
// false when the worker must stop (crashed inbox, or the parent IS the
// server and it is gone — the same death the legacy feedback path
// takes).
func (w *worker) sendAggregate(fn *tensor.Tensor) bool {
	bm := &w.bm
	send, alive := w.collectChildren()
	if !alive {
		return false
	}
	if !send {
		return true // stopping: run() pops the requeued msgStop next
	}
	w.agg.reset()
	if w.ownName == nil {
		w.ownName = []string{w.name}
	}
	w.agg.add(bm.GIdx, w.ownName, fn)
	want := bm.Xg.Shape()
	for _, c := range bm.Children {
		p, ok := w.aggGot[c]
		if !ok {
			continue
		}
		// A frame that corrupts mid-decode keeps its already-decoded
		// entries (they are real sums); the contributors lost to the
		// corrupt tail miss the round and the server's deadline
		// machinery accounts for them.
		_, _ = decodeAggInto(p, want, func(gIdx int, names []string, sum *tensor.Tensor) error {
			w.agg.add(gIdx, names, sum)
			return nil
		})
	}
	// An aggregator re-encodes SUMS: top-k of a sum would re-sparsify
	// the children's already-lossy contributions, compounding the loss
	// at every tree level, so the aggregate frame falls back to the
	// dense fp32 encoding. A leaf's single-contribution frame keeps the
	// configured mode — same loss profile as the flat star.
	mode := w.compress
	if len(bm.Children) > 0 && mode == CompressTopK {
		mode = CompressFP32
	}
	payload := w.agg.encode(bm.Round, mode)
	kind := simnet.WtoW
	if bm.Parent == serverName {
		kind = simnet.WtoC
	}
	err := w.net.Send(simnet.Message{
		From: w.name, To: bm.Parent, Type: msgAgg, Kind: kind, Payload: payload,
	})
	w.agg.reset()
	if err != nil {
		if bm.Parent == serverName {
			return false
		}
		// A dead peer parent loses this subtree's round; the next
		// round's plan reparents us.
	}
	return true
}

// collectChildren gathers this round's msgAgg frames from bm.Children
// (buffering the raw payloads in aggGot for the in-order merge),
// honouring msgAggSkip releases and the AggWait deadline. send=false
// means skip the upstream forward (stopping); alive=false means the
// worker crashed (inbox closed).
func (w *worker) collectChildren() (send, alive bool) {
	bm := &w.bm
	if w.aggGot == nil {
		w.aggGot = make(map[string][]byte, len(bm.Children))
	} else {
		clear(w.aggGot)
	}
	if len(bm.Children) == 0 {
		return true, true
	}
	need := make(map[string]bool, len(bm.Children))
	for _, c := range bm.Children {
		need[c] = true
	}
	// This round's contributions may already be stashed: a child's
	// frame can overtake our own batches on TCP. Flush stale stragglers
	// along the way.
	keep := w.futureAggs[:0]
	for _, msg := range w.futureAggs {
		r, ok := aggRound(msg.Payload)
		switch {
		case !ok || r < bm.Round:
			// Corrupt or stale: its round already closed.
		case r > bm.Round:
			keep = append(keep, msg)
		default:
			w.absorbAgg(msg, need)
		}
	}
	w.futureAggs = keep
	if len(need) == 0 {
		return true, true
	}
	var expire <-chan time.Time
	if bm.AggWait > 0 {
		timer := time.NewTimer(time.Duration(bm.AggWait) * time.Millisecond)
		defer timer.Stop()
		expire = timer.C
	}
	inbox := w.net.Inbox(w.name)
	for len(need) > 0 {
		select {
		case msg, ok := <-inbox:
			if !ok {
				return false, false
			}
			switch msg.Type {
			case msgAgg, msgAggSkip:
				r, ok := aggRound(msg.Payload)
				switch {
				case !ok || r < bm.Round:
				case r > bm.Round:
					w.futureAggs = append(w.futureAggs, msg)
				default:
					w.absorbAgg(msg, need)
				}
			case msgSwap:
				// Swap traffic tagged with this round or later belongs
				// to a rendezvous that has not opened yet (ours opens
				// after the upstream forward) — adopting it here would
				// eat the release awaitSwap will block on. Earlier
				// rounds follow the stray rules.
				r, params, err := decodeSwap(msg.Payload)
				if err != nil {
					continue
				}
				if r >= bm.Round {
					w.futureSwaps = append(w.futureSwaps, msg)
					continue
				}
				if len(params) > 0 {
					_ = decodeDiscParamsInto(w.d, params)
				}
			case msgStop:
				// Shutdown beats the forward: requeue so run() exits on
				// it next.
				w.pending = append(w.pending, msg)
				return false, true
			default:
				// Pings included: a collect-blocked aggregator must not
				// pong (see run) — the probe escalation is what breaks a
				// wedged collect once the server gives up on us.
				w.pending = append(w.pending, msg)
			}
		case <-expire:
			// Deadline: forward the partial reduction. Missing children
			// miss the round; the server's accounting notices.
			return true, true
		}
	}
	return true, true
}

// absorbAgg accounts one in-round aggregation message against the
// outstanding-children set: a child's frame is buffered for the merge,
// a skip releases the slot of a child whose dispatch failed. A skip
// racing behind the child's real frame is stale and ignored.
func (w *worker) absorbAgg(msg simnet.Message, need map[string]bool) {
	if msg.Type == msgAggSkip {
		if _, child, err := decodeAggSkip(msg.Payload); err == nil && w.aggGot[child] == nil {
			delete(need, child)
		}
		return
	}
	if !need[msg.From] {
		return // not our child this round, or a duplicate: drop
	}
	delete(need, msg.From)
	w.aggGot[msg.From] = msg.Payload
}

// awaitSwap blocks until round's replacement discriminator arrives. A
// bare-tag msgSwap for the same round is the server's cancellation —
// the peer that owed us its discriminator was demoted mid-round — so we
// keep our own D and resume. Swap traffic tagged with a LATER round is
// stashed in futureSwaps for that round's rendezvous: a later round's
// cancellation can race ahead of this round's swap on TCP (the server
// moves on once feedbacks are in), and resolving this rendezvous with
// it would both drop the real swap still in flight AND eat the release
// the later rendezvous will block on. Earlier-round stragglers follow
// the stray rules in place (late swap adopted, stale cancellation
// dropped). The protocol guarantees something tagged with THIS round is
// coming: the sender either got its batches (its swap is in flight — it
// sends before awaiting its own rendezvous) or it did not (the server
// saw the failed dispatch and sent this round's cancellation).
func (w *worker) awaitSwap(round int) bool {
	// This round's release may already be stashed: it can arrive while
	// an EARLIER rendezvous is still open. Flush stale stragglers along
	// the way.
	keep := w.futureSwaps[:0]
	var match *simnet.Message
	for i := range w.futureSwaps {
		msg := w.futureSwaps[i]
		r, params, err := decodeSwap(msg.Payload)
		switch {
		case err != nil:
			// Corrupt frame: discard it (its rendezvous, if any, is
			// released by the server's deadline machinery).
		case r == round && match == nil:
			match = &msg
		case r < round:
			if len(params) > 0 {
				// Stray adoption; corrupt parameters → keep our own D.
				_ = decodeDiscParamsInto(w.d, params)
			}
		default:
			keep = append(keep, msg)
		}
	}
	w.futureSwaps = keep
	if match != nil {
		_, params, _ := decodeSwap(match.Payload)
		if len(params) > 0 {
			// Corrupt parameters resolve the rendezvous like a
			// cancellation: the swap is lost, our own D carries on.
			_ = decodeDiscParamsInto(w.d, params)
		}
		return true
	}
	inbox := w.net.Inbox(w.name)
	for {
		msg, ok := <-inbox
		if !ok {
			return false
		}
		if msg.Type == msgSwap {
			r, params, err := decodeSwap(msg.Payload)
			if err != nil {
				continue // corrupt frame: not this rendezvous's release
			}
			if r > round {
				// A later rendezvous's traffic: hold it where only that
				// rendezvous will look for it.
				w.futureSwaps = append(w.futureSwaps, msg)
				continue
			}
			if r < round {
				// Straggler from a resolved round: stray rules (corrupt
				// parameters → keep our own discriminator).
				if len(params) > 0 {
					_ = decodeDiscParamsInto(w.d, params)
				}
				continue
			}
			if len(params) > 0 {
				// Corrupt parameters resolve like a cancellation.
				_ = decodeDiscParamsInto(w.d, params)
			}
			return true
		}
		if msg.Type == msgStop {
			// Shutdown beats the swap: requeue so run() sees it next.
			w.pending = append(w.pending, msg)
			return true
		}
		w.pending = append(w.pending, msg)
	}
}

// wait blocks until the worker goroutine has exited.
func (w *worker) wait() {
	if w.done != nil {
		<-w.done
	}
}
