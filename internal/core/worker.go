package core

import (
	"math/rand"
	"sync"

	"mdgan/internal/dataset"
	"mdgan/internal/gan"
	"mdgan/internal/opt"
	"mdgan/internal/simnet"
)

// worker is one MD-GAN participant: it hosts a discriminator D_n and a
// local data shard B_n, and runs the WORKER procedure of Algorithm 1 in
// its own goroutine, driven entirely by messages.
type worker struct {
	name    string
	d       *gan.Discriminator
	lc      gan.LossConfig
	optD    *opt.Adam
	sampler *dataset.Sampler
	batch   int
	discL   int
	net     simnet.Net
	// lazySwap applies incoming swap parameters whenever they arrive
	// instead of blocking for them (used in async mode, where strict
	// rendezvous could stall the pipeline).
	lazySwap bool
	// compress selects the feedback wire encoding (§VII.2 extension).
	compress Compression
	// swapPrec selects the wire width of outgoing swap and clone
	// payloads (SwapFP32 by default).
	swapPrec SwapPrecision
	// byzantine, when non-zero, corrupts the feedback before sending
	// (§VII.3 adversary model).
	byzantine ByzantineMode
	// rng drives the ByzantineRandom attack.
	rng *rand.Rand

	// pending buffers messages that arrive while the worker is blocked
	// waiting for a swap (e.g. the next iteration's batches racing the
	// peer's swap message on TCP transports).
	pending []simnet.Message

	// bm is the reusable decode target for incoming batch messages: the
	// tensors and label slices are overwritten in place each iteration.
	bm batchesMsg

	done chan struct{}
	once sync.Once
}

// run processes messages until stopped or crashed (inbox closed).
// w.done must be initialised before the goroutine starts.
func (w *worker) run() {
	defer w.once.Do(func() { close(w.done) })
	inbox := w.net.Inbox(w.name)
	for {
		msg, ok := w.next(inbox)
		if !ok {
			return // crashed: inbox closed under us (fail-stop)
		}
		switch msg.Type {
		case msgStop:
			return
		case msgSwap:
			// A swap that arrived outside a rendezvous (lazy mode,
			// late delivery, or the join protocol's initial clone):
			// adopt the incoming discriminator. An empty payload is a
			// cancellation (the sender was demoted mid-round): keep D.
			if len(msg.Payload) == 0 {
				continue
			}
			if err := decodeDiscParamsInto(w.d, msg.Payload); err != nil {
				return
			}
		case msgClone:
			// The server asked for a copy of our discriminator to
			// bootstrap a joining worker (§IV-A).
			if err := w.net.Send(simnet.Message{
				From: w.name, To: serverName, Type: msgDParams,
				Kind: simnet.WtoC, Payload: encodeDiscParams(w.d, w.swapPrec),
			}); err != nil {
				return
			}
		case msgBatches:
			if !w.handleBatches(msg) {
				return
			}
		}
	}
}

// next pops a buffered message first, then reads the inbox.
func (w *worker) next(inbox <-chan simnet.Message) (simnet.Message, bool) {
	if len(w.pending) > 0 {
		msg := w.pending[0]
		w.pending = w.pending[1:]
		return msg, true
	}
	msg, ok := <-inbox
	return msg, ok
}

// handleBatches runs one global iteration at the worker: L local
// discriminator steps on (X^(r), X^(d)), the error feedback on X^(g),
// and the swap when commanded. Returns false when the worker must stop.
func (w *worker) handleBatches(msg simnet.Message) bool {
	if err := decodeBatches(msg.Payload, &w.bm); err != nil {
		return false
	}
	bm := &w.bm
	// Step 2 (§IV-A): L discriminator learning steps against the local
	// shard. X^(r) is drawn once per global iteration (Algorithm 1
	// line 4) and reused across the L steps.
	xr, lr := w.sampler.Sample(w.batch)
	for l := 0; l < w.discL; l++ {
		gan.DiscStep(w.d, w.lc, w.optD, xr, lr, bm.Xd, bm.Ld)
	}
	// Step 3: error feedback on X^(g). A compromised worker lies here.
	fn, _ := gan.Feedback(w.d, w.lc, bm.Xg, bm.Lg)
	if w.byzantine != ByzantineNone {
		corruptFeedback(fn, w.byzantine, w.rng)
	}

	// SWAP (§IV-C1): send D_n before the feedback so that once the
	// server has every feedback, every swap is already in flight —
	// the receiving rendezvous below can then never deadlock.
	if bm.SwapTo != "" {
		if err := w.net.Send(simnet.Message{
			From: w.name, To: bm.SwapTo, Type: msgSwap,
			Kind: simnet.WtoW, Payload: encodeDiscParams(w.d, w.swapPrec),
		}); err != nil {
			// Receiver crashed mid-round: keep our discriminator.
			_ = err
		}
	}
	if err := w.net.Send(simnet.Message{
		From: w.name, To: serverName, Type: msgFeedback,
		Kind: simnet.WtoC, Payload: encodeFeedbackCompressed(fn, w.compress),
	}); err != nil {
		return false
	}
	if bm.SwapTo != "" && !w.lazySwap {
		return w.awaitSwap()
	}
	return true
}

// awaitSwap blocks until the replacement discriminator arrives,
// buffering any other traffic for later processing. An empty msgSwap
// payload is the server's cancellation — the peer that owed us its
// discriminator was demoted mid-round — so we keep our own D and
// resume.
func (w *worker) awaitSwap() bool {
	inbox := w.net.Inbox(w.name)
	for {
		msg, ok := <-inbox
		if !ok {
			return false
		}
		if msg.Type == msgSwap {
			if len(msg.Payload) == 0 {
				return true // swap cancelled: keep our discriminator
			}
			return decodeDiscParamsInto(w.d, msg.Payload) == nil
		}
		if msg.Type == msgStop {
			// Shutdown beats the swap: requeue so run() sees it next.
			w.pending = append(w.pending, msg)
			return true
		}
		w.pending = append(w.pending, msg)
	}
}

// wait blocks until the worker goroutine has exited.
func (w *worker) wait() {
	if w.done != nil {
		<-w.done
	}
}
