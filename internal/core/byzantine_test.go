package core

import (
	"math"
	"math/rand"
	"testing"

	"mdgan/internal/gan"
	"mdgan/internal/tensor"
)

func TestMedianAndTrimmedMean(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("median even = %v", m)
	}
	fs := []*tensor.Tensor{
		tensor.FromSlice([]tensor.Elem{1, 10}, 2),
		tensor.FromSlice([]tensor.Elem{2, 20}, 2),
		tensor.FromSlice([]tensor.Elem{3, 30}, 2),
		tensor.FromSlice([]tensor.Elem{1000, -1000}, 2), // outlier
	}
	med := aggregateFeedbacks(fs, AggMedian, nil)
	if med.Data[0] != 2.5 || med.Data[1] != 15 {
		t.Fatalf("median agg = %v", med.Data)
	}
	tr := aggregateFeedbacks(fs, AggTrimmedMean, nil) // trims 1 each side
	if tr.Data[0] != 2.5 || tr.Data[1] != 15 {
		t.Fatalf("trimmed agg = %v", tr.Data)
	}
	mean := aggregateFeedbacks(fs, AggMean, nil)
	if math.Abs(float64(mean.Data[0])-251.5) > tensor.Tol(1e-12, 1e-4) {
		t.Fatalf("mean agg = %v", mean.Data)
	}
}

func TestAggregateSingleFeedbackIsIdentity(t *testing.T) {
	f := tensor.FromSlice([]tensor.Elem{1, 2, 3}, 3)
	for _, mode := range []Aggregation{AggMean, AggMedian, AggTrimmedMean} {
		got := aggregateFeedbacks([]*tensor.Tensor{f}, mode, nil)
		if !got.Equal(f, 0) {
			t.Fatalf("%v on singleton not identity", mode)
		}
	}
}

func TestCorruptFeedbackModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := tensor.FromSlice([]tensor.Elem{1, -2, 3}, 3)

	inv := base.Clone()
	if err := corruptFeedback(inv, ByzantineInvert, rng); err != nil {
		t.Fatal(err)
	}
	if inv.Data[0] != -1 || inv.Data[1] != 2 {
		t.Fatalf("invert = %v", inv.Data)
	}
	sc := base.Clone()
	if err := corruptFeedback(sc, ByzantineScale, rng); err != nil {
		t.Fatal(err)
	}
	if sc.Data[2] != 300 {
		t.Fatalf("scale = %v", sc.Data)
	}
	rd := base.Clone()
	if err := corruptFeedback(rd, ByzantineRandom, rng); err != nil {
		t.Fatal(err)
	}
	if rd.Equal(base, 1e-9) {
		t.Fatal("random attack left feedback unchanged")
	}
	hon := base.Clone()
	if err := corruptFeedback(hon, ByzantineNone, rng); err != nil {
		t.Fatal(err)
	}
	if !hon.Equal(base, 0) {
		t.Fatal("honest mode must not modify feedback")
	}
}

// An unknown mode is an error, never a panic: a misconfigured worker
// must not die mid-run — it ships an undecodable frame instead, which
// the server's corrupt-frame strike budget handles
// (TestUnknownByzantineModeTakesCorruptStrikePath).
func TestCorruptFeedbackUnknownModeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := tensor.FromSlice([]tensor.Elem{1, 2}, 2)
	if err := corruptFeedback(f, ByzantineMode(99), rng); err == nil {
		t.Fatal("unknown mode must return an error")
	}
	if f.Data[0] != 1 || f.Data[1] != 2 {
		t.Fatalf("unknown mode must leave feedback untouched, got %v", f.Data)
	}
}

// TestMedianNeutralisesByzantineExactly: with k = 1, no disc updates and
// no swaps, all honest workers compute IDENTICAL feedback (same batch,
// same discriminator), so the coordinate-wise median across 2 honest +
// 1 Byzantine worker equals the honest value exactly — the run must be
// bit-identical to a fully honest run. Under mean aggregation the same
// attack must change the generator.
func TestMedianNeutralisesByzantineExactly(t *testing.T) {
	run := func(byz map[int]ByzantineMode, agg Aggregation) []float64 {
		shards := ringShards(3, 100, 51)
		cfg := baseConfig()
		cfg.Iters = 5
		cfg.DiscSteps = -1
		cfg.K = 1
		cfg.SwapEvery = -1
		cfg.Byzantine = byz
		cfg.Aggregate = agg
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.G.Net.ParamVector()
	}
	for _, attack := range []ByzantineMode{ByzantineScale, ByzantineInvert, ByzantineRandom} {
		honest := run(nil, AggMedian)
		attacked := run(map[int]ByzantineMode{1: attack}, AggMedian)
		for i := range honest {
			if honest[i] != attacked[i] {
				t.Fatalf("attack %v: median aggregation failed to neutralise (param %d)", attack, i)
			}
		}
	}
	// Control: under mean aggregation the scale attack must leak into
	// the generator.
	honestMean := run(nil, AggMean)
	attackedMean := run(map[int]ByzantineMode{1: ByzantineScale}, AggMean)
	same := true
	for i := range honestMean {
		if honestMean[i] != attackedMean[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("mean aggregation absorbed a 100× attack — test is vacuous")
	}
}

// TestMedianTrainingSurvivesAttack: end-to-end, MD-GAN with one
// compromised worker out of five still learns the ring under median
// aggregation.
func TestMedianTrainingSurvivesAttack(t *testing.T) {
	shards := ringShards(5, 300, 53)
	cfg := baseConfig()
	cfg.Iters = 400
	cfg.Batch = 32
	cfg.K = 1
	cfg.Byzantine = map[int]ByzantineMode{2: ByzantineInvert}
	cfg.Aggregate = AggMedian
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	x, _ := res.G.Generate(256, rng, false)
	sum := 0.0
	for i := 0; i < x.Dim(0); i++ {
		sum += math.Hypot(x.At(i, 0), x.At(i, 1))
	}
	if mean := sum / 256; mean < 1.0 || mean > 3.0 {
		t.Fatalf("median-aggregated training diverged under attack: radius %v", mean)
	}
}

func TestModeStrings(t *testing.T) {
	if ByzantineInvert.String() != "invert" || AggMedian.String() != "median" {
		t.Fatal("stringers broken")
	}
	if ByzantineMode(99).String() == "" || Aggregation(99).String() == "" {
		t.Fatal("unknown values must render")
	}
}

// TestUnknownByzantineModeTakesCorruptStrikePath: end to end, a worker
// whose configured mode corruptFeedback rejects must not die or abort
// the run — it ships an undecodable frame instead, which the server
// counts as a corrupt strike and resolves through the same demotion
// path a garbage sender takes, while everyone else keeps training.
func TestUnknownByzantineModeTakesCorruptStrikePath(t *testing.T) {
	before := goroutineBaseline()
	shards := ringShards(3, 64, 59)
	cfg := baseConfig()
	cfg.Iters = 6
	cfg.Byzantine = map[int]ByzantineMode{1: ByzantineMode(99)}
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatalf("a misconfigured byzantine mode aborted the run: %v", err)
	}
	if res.Iters != cfg.Iters {
		t.Fatalf("applied %d updates, want %d", res.Iters, cfg.Iters)
	}
	if res.Faults.CorruptFrames < 1 {
		t.Fatalf("faults = %+v, want the invalid frame counted as a corrupt strike", res.Faults)
	}
	if contains(res.Live, workerName(1)) {
		t.Fatalf("live = %v: the invalid-frame sender must be demoted", res.Live)
	}
	assertNoGoroutineLeak(t, before)
}

// TestFreeRiderFeedbackFabrication pins the worker-side attack shapes:
// replay-class noise lands in the plausible magnitude range, and the
// scaled variant tracks the generated batch's norm.
func TestFreeRiderFeedbackFabrication(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xg := tensor.New(16, 8)
	for i := range xg.Data {
		xg.Data[i] = tensor.Elem(rng.NormFloat64())
	}
	f := fabricateFreeRiderFeedback(xg, FreeRiderRandom, rng)
	perElem := f.Norm2() / math.Sqrt(float64(len(f.Data)))
	if perElem < freeRiderSigma/3 || perElem > freeRiderSigma*3 {
		t.Fatalf("random fabrication RMS %g, want around sigma %g", perElem, freeRiderSigma)
	}
	s := fabricateFreeRiderFeedback(xg, FreeRiderScaledNoise, rng)
	want := freeRiderNormFrac * xg.Norm2()
	if got := s.Norm2(); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("scaled fabrication norm %g, want %g (tracking ‖Xg‖)", got, want)
	}
	if !FreeRiderReplay.IsFreeRider() || ByzantineInvert.IsFreeRider() {
		t.Fatal("IsFreeRider classification broken")
	}
}

// TestAggregateFeedbacksWeighted pins the weighted-mean arithmetic and
// the robust rules' exclusion semantics.
func TestAggregateFeedbacksWeighted(t *testing.T) {
	fs := []*tensor.Tensor{
		tensor.FromSlice([]tensor.Elem{1}, 1),
		tensor.FromSlice([]tensor.Elem{3}, 1),
	}
	agg, w := aggregateFeedbacksWeighted(fs, []float64{1, 3}, AggMean, nil)
	if w != 4 || math.Abs(float64(agg.Data[0])-2.5) > tensor.Tol(1e-12, 1e-5) {
		t.Fatalf("weighted mean = %v (w=%v), want 2.5 (w=4)", agg.Data, w)
	}
	tensor.Put(agg)
	// Robust rules exclude zero-weight members and rank the rest
	// unweighted: a down-weighted outlier still counts fully until its
	// weight reaches zero, because a median's breakdown point counts
	// members, not mass.
	fs = append(fs, tensor.FromSlice([]tensor.Elem{1000}, 1))
	med, w := aggregateFeedbacksWeighted(fs, []float64{1, 1, 0}, AggMedian, nil)
	if w != 2 || med.Data[0] != 2 {
		t.Fatalf("median with excluded outlier = %v (w=%v), want 2 (w=2)", med.Data, w)
	}
	tensor.Put(med)
	if agg, w := aggregateFeedbacksWeighted(fs, []float64{0, 0, 0}, AggMean, nil); agg != nil || w != 0 {
		t.Fatalf("all-excluded group returned %v (w=%v), want nil", agg, w)
	}
}

// TestAggregateFeedbacksAllocsBudget: the server's per-round
// aggregation must be allocation-free in steady state — results ride
// the tensor workspace pool and the per-coordinate scratch persists in
// the server's aggScratch.
func TestAggregateFeedbacksAllocsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fs := make([]*tensor.Tensor, 4)
	for i := range fs {
		fs[i] = tensor.New(16, 8)
		for j := range fs[i].Data {
			fs[i].Data[j] = tensor.Elem(rng.NormFloat64())
		}
	}
	sc := &aggScratch{}
	for _, mode := range []Aggregation{AggMean, AggMedian, AggTrimmedMean} {
		tensor.Put(aggregateFeedbacks(fs, mode, sc)) // warm pool + scratch
		n := testing.AllocsPerRun(50, func() {
			tensor.Put(aggregateFeedbacks(fs, mode, sc))
		})
		budget := 0.0
		if raceEnabled {
			budget = 8 // sporadic pool misses under the race detector
		}
		if n > budget {
			t.Fatalf("%v aggregation allocates %v per round, budget %v", mode, n, budget)
		}
	}
}
