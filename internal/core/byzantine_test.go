package core

import (
	"math"
	"math/rand"
	"testing"

	"mdgan/internal/gan"
	"mdgan/internal/tensor"
)

func TestMedianAndTrimmedMean(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("median even = %v", m)
	}
	fs := []*tensor.Tensor{
		tensor.FromSlice([]tensor.Elem{1, 10}, 2),
		tensor.FromSlice([]tensor.Elem{2, 20}, 2),
		tensor.FromSlice([]tensor.Elem{3, 30}, 2),
		tensor.FromSlice([]tensor.Elem{1000, -1000}, 2), // outlier
	}
	med := aggregateFeedbacks(fs, AggMedian)
	if med.Data[0] != 2.5 || med.Data[1] != 15 {
		t.Fatalf("median agg = %v", med.Data)
	}
	tr := aggregateFeedbacks(fs, AggTrimmedMean) // trims 1 each side
	if tr.Data[0] != 2.5 || tr.Data[1] != 15 {
		t.Fatalf("trimmed agg = %v", tr.Data)
	}
	mean := aggregateFeedbacks(fs, AggMean)
	if math.Abs(float64(mean.Data[0])-251.5) > tensor.Tol(1e-12, 1e-4) {
		t.Fatalf("mean agg = %v", mean.Data)
	}
}

func TestAggregateSingleFeedbackIsIdentity(t *testing.T) {
	f := tensor.FromSlice([]tensor.Elem{1, 2, 3}, 3)
	for _, mode := range []Aggregation{AggMean, AggMedian, AggTrimmedMean} {
		got := aggregateFeedbacks([]*tensor.Tensor{f}, mode)
		if !got.Equal(f, 0) {
			t.Fatalf("%v on singleton not identity", mode)
		}
	}
}

func TestCorruptFeedbackModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := tensor.FromSlice([]tensor.Elem{1, -2, 3}, 3)

	inv := base.Clone()
	corruptFeedback(inv, ByzantineInvert, rng)
	if inv.Data[0] != -1 || inv.Data[1] != 2 {
		t.Fatalf("invert = %v", inv.Data)
	}
	sc := base.Clone()
	corruptFeedback(sc, ByzantineScale, rng)
	if sc.Data[2] != 300 {
		t.Fatalf("scale = %v", sc.Data)
	}
	rd := base.Clone()
	corruptFeedback(rd, ByzantineRandom, rng)
	if rd.Equal(base, 1e-9) {
		t.Fatal("random attack left feedback unchanged")
	}
	hon := base.Clone()
	corruptFeedback(hon, ByzantineNone, rng)
	if !hon.Equal(base, 0) {
		t.Fatal("honest mode must not modify feedback")
	}
}

// TestMedianNeutralisesByzantineExactly: with k = 1, no disc updates and
// no swaps, all honest workers compute IDENTICAL feedback (same batch,
// same discriminator), so the coordinate-wise median across 2 honest +
// 1 Byzantine worker equals the honest value exactly — the run must be
// bit-identical to a fully honest run. Under mean aggregation the same
// attack must change the generator.
func TestMedianNeutralisesByzantineExactly(t *testing.T) {
	run := func(byz map[int]ByzantineMode, agg Aggregation) []float64 {
		shards := ringShards(3, 100, 51)
		cfg := baseConfig()
		cfg.Iters = 5
		cfg.DiscSteps = -1
		cfg.K = 1
		cfg.SwapEvery = -1
		cfg.Byzantine = byz
		cfg.Aggregate = agg
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.G.Net.ParamVector()
	}
	for _, attack := range []ByzantineMode{ByzantineScale, ByzantineInvert, ByzantineRandom} {
		honest := run(nil, AggMedian)
		attacked := run(map[int]ByzantineMode{1: attack}, AggMedian)
		for i := range honest {
			if honest[i] != attacked[i] {
				t.Fatalf("attack %v: median aggregation failed to neutralise (param %d)", attack, i)
			}
		}
	}
	// Control: under mean aggregation the scale attack must leak into
	// the generator.
	honestMean := run(nil, AggMean)
	attackedMean := run(map[int]ByzantineMode{1: ByzantineScale}, AggMean)
	same := true
	for i := range honestMean {
		if honestMean[i] != attackedMean[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("mean aggregation absorbed a 100× attack — test is vacuous")
	}
}

// TestMedianTrainingSurvivesAttack: end-to-end, MD-GAN with one
// compromised worker out of five still learns the ring under median
// aggregation.
func TestMedianTrainingSurvivesAttack(t *testing.T) {
	shards := ringShards(5, 300, 53)
	cfg := baseConfig()
	cfg.Iters = 400
	cfg.Batch = 32
	cfg.K = 1
	cfg.Byzantine = map[int]ByzantineMode{2: ByzantineInvert}
	cfg.Aggregate = AggMedian
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	x, _ := res.G.Generate(256, rng, false)
	sum := 0.0
	for i := 0; i < x.Dim(0); i++ {
		sum += math.Hypot(x.At(i, 0), x.At(i, 1))
	}
	if mean := sum / 256; mean < 1.0 || mean > 3.0 {
		t.Fatalf("median-aggregated training diverged under attack: radius %v", mean)
	}
}

func TestModeStrings(t *testing.T) {
	if ByzantineInvert.String() != "invert" || AggMedian.String() != "median" {
		t.Fatal("stringers broken")
	}
	if ByzantineMode(99).String() == "" || Aggregation(99).String() == "" {
		t.Fatal("unknown values must render")
	}
}
