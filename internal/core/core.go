// Package core implements MD-GAN (Algorithm 1 of the paper): a single
// generator hosted on a central server trained against N discriminators
// living on workers that hold immovable data shards. Each global
// iteration the server generates k ≤ N batches, distributes two per
// worker (SPLIT, §IV-B1), workers run L discriminator steps and return
// error feedbacks F_n (§IV-B2), the server merges the feedbacks into a
// generator gradient and applies Adam. Every E epochs discriminators
// swap between workers in a gossip fashion (SWAP, §IV-C1).
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mdgan/internal/dataset"
	"mdgan/internal/gan"
	"mdgan/internal/opt"
	"mdgan/internal/parallel"
	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

// Config configures an MD-GAN run. It embeds the hyper-parameters
// shared with the baselines (gan.TrainConfig).
type Config struct {
	gan.TrainConfig
	// K is the number of generated batches per global iteration
	// (k ≤ N). 0 selects the paper's default k = max(1, ⌊ln N⌋).
	K int
	// SwapEvery is E, the number of local epochs between discriminator
	// swaps. 0 selects E = 1; a negative value disables swapping
	// entirely (the Fig. 4 "no swap" ablation).
	SwapEvery int
	// CrashAt schedules fail-stop worker crashes: iteration → indices
	// of workers to kill at the start of that iteration. Crashed
	// workers' shards disappear with them (Fig. 5).
	CrashAt map[int][]int
	// JoinAt schedules dynamic worker joins (§IV-A): iteration → data
	// shards, one new worker per shard, each entering with a copy of a
	// random live worker's discriminator. Synchronous mode only.
	JoinAt map[int][]*dataset.Dataset
	// Net supplies the transport; nil selects an in-process ChannelNet.
	Net simnet.Net
	// Async enables the asynchronous variant sketched in §VII.1: the
	// server applies a generator update per arriving feedback instead
	// of waiting for all workers.
	Async bool
	// Compress selects the error-feedback wire encoding (§VII.2
	// extension): CompressNone (default), CompressFP32 or CompressTopK.
	Compress Compression
	// ActivePerRound, when in (0, N), activates only a uniform random
	// subset of workers each iteration (the §VII.4 adaptation of
	// federated learning's client sampling: fewer active
	// discriminators than workers, the whole dataset still covered
	// over time). 0 activates everyone.
	ActivePerRound int
	// Byzantine marks compromised workers (§VII.3): worker index →
	// attack mode. Compromised workers corrupt their error feedback.
	Byzantine map[int]ByzantineMode
	// Aggregate selects the server's feedback-merge rule: AggMean
	// (the paper's averaging) or a Byzantine-tolerant alternative.
	Aggregate Aggregation
}

// EvalFunc observes the server's generator during training.
type EvalFunc func(iter int, g *gan.Generator)

// Result is the outcome of an MD-GAN run.
type Result struct {
	G *gan.Generator
	// Discs are the final discriminators of workers still alive, keyed
	// by worker name.
	Discs map[string]*gan.Discriminator
	// Traffic is the byte/message accounting snapshot (Tables III/IV).
	Traffic simnet.Traffic
	// Live lists the workers that survived the run.
	Live []string
	// Iters is the number of generator updates performed.
	Iters int
}

// DefaultK returns the paper's k = max(1, ⌊ln N⌋) (§IV-B4 chooses
// k = 1 or k = ⌊log N⌋).
func DefaultK(n int) int {
	k := int(math.Floor(math.Log(float64(n))))
	if k < 1 {
		k = 1
	}
	return k
}

// workerName formats the canonical node name of worker i.
func workerName(i int) string { return fmt.Sprintf("worker%d", i) }

// shardSizes lists the per-worker shard lengths.
func shardSizes(shards []*dataset.Dataset) []int {
	sizes := make([]int, len(shards))
	for i, sh := range shards {
		sizes[i] = sh.Len()
	}
	return sizes
}

// swapIntervalFor converts the paper's swap cadence of E local epochs
// (Algorithm 1 line 11) into global iterations. Every worker passes its
// m local samples once per m/b iterations, so E epochs = m·E/b
// iterations, rounded to the nearest integer and floored at 1 (a swap
// cannot fire more often than once per iteration). Shard sizes can
// differ after splitting; the minimum is the paper's m, and because the
// server computes this single cadence for the whole cluster, workers
// with uneven shards can never drift onto different swap schedules.
// swapE ≤ 0 disables swapping (callers map the SwapEvery=0 default to
// E=1 before this).
//
// The rounding matters for small shards: the previous truncating
// m·E/b systematically shortened the cadence — m=100, E=1, b=64 swapped
// every iteration instead of every 2 (true cadence 1.56), and any
// m·E < b collapsed to 1 outright.
func swapIntervalFor(sizes []int, swapE, batch int) int {
	if swapE <= 0 || len(sizes) == 0 {
		return 0
	}
	m := sizes[0]
	for _, s := range sizes[1:] {
		if s < m {
			m = s
		}
	}
	interval := (m*swapE + batch/2) / batch
	if interval < 1 {
		interval = 1
	}
	return interval
}

const serverName = "server"

// Train runs MD-GAN over the given shards (one per worker; len(shards)
// is N). The caller provides shards explicitly so scalability
// experiments control the data-vs-worker scaling (Fig. 4).
func Train(shards []*dataset.Dataset, arch gan.Arch, cfg Config, eval EvalFunc) (*Result, error) {
	cfg.TrainConfig = cfg.TrainConfig.Defaults()
	n := len(shards)
	if n == 0 {
		return nil, fmt.Errorf("core: no shards")
	}
	k := cfg.K
	if k == 0 {
		k = DefaultK(n)
	}
	if k > n {
		return nil, fmt.Errorf("core: k=%d exceeds N=%d", k, n)
	}
	swapE := cfg.SwapEvery
	if swapE == 0 {
		swapE = 1
	}

	if cfg.Async && len(cfg.JoinAt) > 0 {
		return nil, fmt.Errorf("core: dynamic worker join requires synchronous mode")
	}

	net := cfg.Net
	if net == nil {
		net = simnet.NewChannelNet(0)
		defer net.Close()
	}
	if err := net.Register(serverName); err != nil {
		return nil, err
	}

	// Build the GAN couple once; every worker starts from the same
	// discriminator parameters (§IV-A "for simplicity, we assume that
	// they are the same").
	couple := arch.NewGAN(cfg.Seed, cfg.GenLoss, cfg.ClsWeight)
	g := couple.G
	lc := couple.LossConfig

	swapInterval := swapIntervalFor(shardSizes(shards), swapE, cfg.Batch)

	// Spawn workers.
	workers := make([]*worker, n)
	for i := range workers {
		name := workerName(i)
		if err := net.Register(name); err != nil {
			return nil, err
		}
		workers[i] = &worker{
			name:      name,
			d:         couple.D.Clone(),
			lc:        lc,
			optD:      opt.NewAdam(cfg.OptD),
			sampler:   dataset.NewSampler(shards[i], cfg.Seed+7919*int64(i+1)),
			batch:     cfg.Batch,
			discL:     cfg.DiscSteps,
			net:       net,
			lazySwap:  cfg.Async,
			compress:  cfg.Compress,
			byzantine: cfg.Byzantine[i],
			rng:       rand.New(rand.NewSource(cfg.Seed + 15485863*int64(i+1))),
			done:      make(chan struct{}),
		}
		go workers[i].run()
	}

	srv := &server{
		g:              g,
		optG:           opt.NewAdam(cfg.OptG),
		net:            net,
		rng:            rand.New(rand.NewSource(cfg.Seed + 31)),
		batch:          cfg.Batch,
		k:              k,
		live:           make(map[string]bool, n),
		order:          make([]string, n),
		swapInterval:   swapInterval,
		crashAt:        cfg.CrashAt,
		eval:           eval,
		evalEvery:      cfg.EvalEvery,
		activePerRound: cfg.ActivePerRound,
		aggregate:      cfg.Aggregate,
		joinAt:         cfg.JoinAt,
	}
	for i := range workers {
		srv.order[i] = workers[i].name
		srv.live[workers[i].name] = true
	}
	nextIdx := n
	srv.spawn = spawnJoiner(cfg, net, lc, couple.D, &workers, &nextIdx)

	var iters int
	var err error
	if cfg.Async {
		iters, err = srv.runAsync(cfg.Iters)
	} else {
		iters, err = srv.runSync(cfg.Iters)
	}
	if err != nil {
		return nil, err
	}

	// Stop surviving workers and collect their discriminators.
	discs := make(map[string]*gan.Discriminator)
	var liveNames []string
	for _, w := range workers {
		if !srv.live[w.name] {
			continue
		}
		_ = net.Send(simnet.Message{From: serverName, To: w.name, Type: msgStop, Kind: simnet.CtoW})
	}
	for _, w := range workers {
		w.wait()
		if srv.live[w.name] {
			discs[w.name] = w.d
			liveNames = append(liveNames, w.name)
		}
	}
	sort.Strings(liveNames)

	return &Result{
		G:       g,
		Discs:   discs,
		Traffic: net.Snapshot(),
		Live:    liveNames,
		Iters:   iters,
	}, nil
}

// server drives the global iterations.
type server struct {
	g              *gan.Generator
	optG           *opt.Adam
	net            simnet.Net
	rng            *rand.Rand
	batch          int
	k              int
	live           map[string]bool
	order          []string // worker names in index order (for determinism)
	swapInterval   int
	crashAt        map[int][]int
	eval           EvalFunc
	evalEvery      int
	activePerRound int
	aggregate      Aggregation
	joinAt         map[int][]*dataset.Dataset
	spawn          func(*dataset.Dataset) (*worker, error)
	// feedbackShape validates async feedback decodes: the shape of the
	// last generated batch, set before any feedback can arrive.
	feedbackShape []int
}

// liveWorkers returns the alive worker names in index order.
func (s *server) liveWorkers() []string {
	out := make([]string, 0, len(s.order))
	for _, name := range s.order {
		if s.live[name] {
			out = append(out, name)
		}
	}
	return out
}

// applyCrashes executes the fail-stop schedule for iteration it.
func (s *server) applyCrashes(it int) {
	for _, idx := range s.crashAt[it] {
		if idx < 0 || idx >= len(s.order) {
			continue
		}
		name := s.order[idx]
		if s.live[name] {
			s.live[name] = false
			s.net.Crash(name)
		}
	}
}

// runSync executes the synchronous Algorithm 1 for I iterations and
// returns the number of generator updates applied.
func (s *server) runSync(iters int) (int, error) {
	updates := 0
	for it := 1; it <= iters; it++ {
		s.applyCrashes(it)
		if err := s.processJoins(it, s.spawn); err != nil {
			return updates, err
		}
		alive := s.liveWorkers()
		if len(alive) == 0 {
			return updates, nil // every worker crashed: training ends
		}
		// §VII.4 extension: activate only a random subset of workers
		// this round (client sampling). The rest stay idle and keep
		// their discriminators.
		if s.activePerRound > 0 && s.activePerRound < len(alive) {
			s.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
			alive = alive[:s.activePerRound]
			sort.Strings(alive) // deterministic merge order
		}
		k := s.k
		if k > len(alive) {
			k = len(alive)
		}

		// Step 1: generate k batches from G, keeping the latent inputs
		// for the later backward pass.
		zs := make([]*tensor.Tensor, k)
		labs := make([][]int, k)
		xs := make([]*tensor.Tensor, k)
		for j := 0; j < k; j++ {
			zs[j], labs[j] = s.g.SampleZ(s.batch, s.rng)
			// Forward returns a network-owned buffer; clone because all
			// k generated batches stay live until they are encoded.
			xs[j] = s.g.Forward(zs[j], labs[j], true).Clone()
		}

		// Swap command for this iteration: a uniform random cyclic
		// permutation (fixed-point-free) over live workers realises the
		// paper's random gossip SWAP deterministically.
		swapTo := map[string]string{}
		if s.swapInterval > 0 && it%s.swapInterval == 0 && len(alive) > 1 {
			swapTo = sattolo(alive, s.rng)
		}

		// Step 1 (cont.): SPLIT — worker n gets X^(g) = X^(n mod k),
		// X^(d) = X^((n+1) mod k) (§IV-B1), indices over live workers.
		// Per-worker payload encoding is independent (the generated
		// batches are only read), so the per-worker step loop fans out
		// on the scheduler and the sends go through Broadcast.
		gIdx := make(map[string]int, len(alive))
		for i, name := range alive {
			gIdx[name] = i % k
		}
		msgs := make([]simnet.Message, len(alive))
		parallel.ForceFor(len(alive), func(ws, we int) {
			for i := ws; i < we; i++ {
				name := alive[i]
				gi := i % k
				di := (i + 1) % k
				msgs[i] = simnet.Message{
					From: serverName, To: name, Type: msgBatches,
					Kind: simnet.CtoW,
					Payload: encodeBatches(batchesMsg{
						Xd: xs[di], Ld: labs[di],
						Xg: xs[gi], Lg: labs[gi],
						SwapTo: swapTo[name],
					}),
				}
			}
		})
		if err := simnet.Broadcast(s.net, msgs); err != nil {
			return updates, fmt.Errorf("core: send batches: %w", err)
		}

		// Step 3: collect one feedback per live worker.
		feedbacks := make(map[string]*tensor.Tensor, len(alive))
		inbox := s.net.Inbox(serverName)
		for len(feedbacks) < len(alive) {
			msg, ok := <-inbox
			if !ok {
				return updates, fmt.Errorf("core: server inbox closed")
			}
			if msg.Type != msgFeedback {
				continue
			}
			if _, expected := gIdx[msg.From]; !expected {
				continue // stale feedback from an inactive round
			}
			// A feedback must have the shape of the generated batch it
			// answers; the expected shape also bounds the decode so a
			// corrupt frame cannot over-allocate.
			f, err := decodeFeedbackAny(msg.Payload, xs[0].Shape())
			if err != nil {
				return updates, err
			}
			feedbacks[msg.From] = f
		}

		// Step 4: merge feedbacks per generated batch and backpropagate
		// through G. Grouping follows worker index order so the result
		// is independent of message arrival order. The per-group merge
		// applies the configured aggregation rule (mean = the paper's
		// §IV-B2 averaging; median/trimmed = §VII.3 robustness); the
		// group result is weighted by groupSize/N to keep the global
		// 1/N scaling.
		groups := make([][]*tensor.Tensor, k)
		for _, name := range alive {
			j := gIdx[name]
			groups[j] = append(groups[j], feedbacks[name])
		}
		outGrads := make([]*tensor.Tensor, k)
		for j, fs := range groups {
			if len(fs) == 0 {
				continue
			}
			agg := aggregateFeedbacks(fs, s.aggregate)
			outGrads[j] = agg.ScaleInPlace(float64(len(fs)) / float64(len(alive)))
		}
		s.g.ZeroGrads()
		for j := 0; j < k; j++ {
			if outGrads[j] == nil {
				continue
			}
			// Re-forward to restore layer caches for batch j (they were
			// clobbered when batch j+1.. were generated).
			s.g.Forward(zs[j], labs[j], true)
			s.g.Backward(outGrads[j])
		}
		s.optG.Step(s.g.Params())
		updates++

		if s.eval != nil && s.evalEvery > 0 && it%s.evalEvery == 0 {
			s.eval(it, s.g)
		}
	}
	return updates, nil
}

// sattolo returns a uniform random cyclic permutation of names as a
// map name → successor. Cyclic permutations have no fixed points, so no
// worker ever "swaps with itself" (which would defeat §IV-C1).
func sattolo(names []string, rng *rand.Rand) map[string]string {
	p := append([]string(nil), names...)
	for i := len(p) - 1; i > 0; i-- {
		j := rng.Intn(i)
		p[i], p[j] = p[j], p[i]
	}
	out := make(map[string]string, len(p))
	for i, name := range p {
		out[name] = p[(i+1)%len(p)]
	}
	return out
}
