// Package core implements MD-GAN (Algorithm 1 of the paper): a single
// generator hosted on a central server trained against N discriminators
// living on workers that hold immovable data shards. Each global
// iteration the server generates k ≤ N batches, distributes two per
// worker (SPLIT, §IV-B1), workers run L discriminator steps and return
// error feedbacks F_n (§IV-B2), the server merges the feedbacks into a
// generator gradient and applies Adam. Every E epochs discriminators
// swap between workers in a gossip fashion (SWAP, §IV-C1).
//
// Since PR 4 the iteration is driven by a round engine (engine.go) that
// decomposes Algorithm 1 into composable stages — prepare (membership),
// generate, route, dispatch, collect, apply — over buffers owned by the
// engine rather than locals of one monolithic loop. The strict driver
// preserves Algorithm 1's barrier semantics bit-for-bit (pinned by a
// serial-reference equivalence test); the Pipeline driver overlaps the
// server's generation/encoding of round t+1 with the workers' compute
// of round t at the cost of one iteration of generator-parameter
// staleness. Cluster membership (crashes, joins, sampling, straggler
// demotion) lives in the shared internal/cluster package, which FL-GAN
// uses too.
//
// # Failure model
//
// Two failure classes are tolerated (the taxonomy and the suspect
// lifecycle diagram live in the cluster package doc):
//
//   - Fail-stop: scheduled crashes (Config.CrashAt, Fig. 5) and
//     unrecoverable transport deaths. The worker and its shard are gone
//     for the rest of the run.
//   - Transient (Config.RoundTimeout > 0): stragglers, dropped or
//     corrupt frames, short partitions. collect waits at most
//     RoundTimeout per round; on expiry the missing workers become
//     suspects — skipped for dispatch, state retained, probed each
//     round (ping/pong) — and the round is applied with the feedbacks
//     in hand once at least Config.Quorum (default 1) arrived, below
//     that the wait continues. A suspect that shows evidence of life (a
//     pong or feedback) is reinstated; Config.SuspectAfter consecutive
//     misses escalate it to a permanent, fail-stop demotion. apply
//     already scales by received count, so quorum rounds degrade
//     gracefully rather than skewing the update.
//
// Determinism caveat: the fault paths activate only on actual faults.
// A fault-free run with RoundTimeout set traverses exactly the
// pre-deadline code path (no suspicion, no probes, identical RNG
// stream), so the strict engine's bitwise pin holds with the deadline
// armed; runs that DO hit faults are repeatable only to the extent the
// fault schedule is (simnet.ChaosNet is seeded for that purpose).
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"mdgan/internal/cluster"
	"mdgan/internal/dataset"
	"mdgan/internal/gan"
	"mdgan/internal/opt"
	"mdgan/internal/simnet"
)

// Config configures an MD-GAN run. It embeds the hyper-parameters
// shared with the baselines (gan.TrainConfig).
type Config struct {
	gan.TrainConfig
	// K is the number of generated batches per global iteration
	// (k ≤ N). 0 selects the paper's default k = max(1, ⌊ln N⌋).
	K int
	// SwapEvery is E, the number of local epochs between discriminator
	// swaps. 0 selects E = 1; a negative value disables swapping
	// entirely (the Fig. 4 "no swap" ablation).
	SwapEvery int
	// CrashAt schedules fail-stop worker crashes: iteration → indices
	// of workers to kill at the start of that iteration. Crashed
	// workers' shards disappear with them (Fig. 5).
	CrashAt map[int][]int
	// JoinAt schedules dynamic worker joins (§IV-A): iteration → data
	// shards, one new worker per shard, each entering with a copy of a
	// random live worker's discriminator. Synchronous mode only
	// (strict or pipelined).
	JoinAt map[int][]*dataset.Dataset
	// Net supplies the transport; nil selects an in-process ChannelNet.
	Net simnet.Net
	// Async enables the asynchronous variant sketched in §VII.1: the
	// server applies a generator update per arriving feedback instead
	// of waiting for all workers.
	Async bool
	// Pipeline enables one-round-deep pipelining of the synchronous
	// engine (the other §VII.1 relaxation: "fresh batches of data can
	// be generated frequently, so that they can be sent to idle
	// workers"): the server generates and encodes round t+1's k batches
	// while the workers compute round t, and applies round t's
	// generator update when its feedbacks land. Contract: the batches
	// of round t+1 are generated from parameters that are exactly ONE
	// generator update stale (they miss round t's update), and —
	// symmetrically — round t's feedbacks backpropagate through the
	// generator's current parameters, one update newer than the ones
	// that produced the batches the workers scored. This is the
	// standard stale-gradient trade-off of asynchronous parameter
	// servers (the Async mode shares it), bounded here at exactly one
	// update. Everything else — membership, routing, aggregation — is
	// decided at the same round boundaries as strict mode. False (the
	// default) runs the paper's strict barrier loop, which a
	// serial-reference test pins bitwise. Mutually exclusive with
	// Async.
	Pipeline bool
	// Compress selects the error-feedback wire encoding (§VII.2
	// extension): CompressNone (default), CompressFP32 or CompressTopK.
	Compress Compression
	// SwapPrec selects the wire element width of discriminator swap
	// (and join-clone) payloads. The default SwapFP32 ships 4-byte
	// elements — halving Table III's W→W row on the float64 build, a
	// no-op under -tags f32; SwapNative keeps swaps bit-exact at the
	// compiled width.
	SwapPrec SwapPrecision
	// ActivePerRound, when in (0, N), activates only a uniform random
	// subset of workers each iteration (the §VII.4 adaptation of
	// federated learning's client sampling: fewer active
	// discriminators than workers, the whole dataset still covered
	// over time). 0 activates everyone.
	ActivePerRound int
	// Byzantine marks compromised workers (§VII.3): worker index →
	// attack mode. Compromised workers corrupt their error feedback.
	Byzantine map[int]ByzantineMode
	// Aggregate selects the server's feedback-merge rule: AggMean
	// (the paper's averaging) or a Byzantine-tolerant alternative.
	Aggregate Aggregation
	// RoundTimeout, when > 0, bounds each round's wait for feedbacks:
	// on expiry the missing workers are suspected (skipped for
	// dispatch, state retained, probed back in) and the round is
	// applied with the feedbacks it has, subject to Quorum. 0 (the
	// default) waits forever — the strict fail-stop-only mode whose
	// deterministic replay the bitwise pin tests. The deadline path
	// activates only on actual faults, so a fault-free run is bitwise
	// identical either way. In async mode the timeout bounds the wait
	// for ANY feedback, ticking every outstanding worker on expiry.
	RoundTimeout time.Duration
	// Quorum is the minimum number of feedbacks needed to apply a round
	// whose deadline expired (≤ 0 = 1). Below quorum the round keeps
	// waiting — bounded by SuspectAfter escalations demoting the
	// workers that never answer. Synchronous engines only.
	Quorum int
	// SuspectAfter is the number of consecutive misses that escalate a
	// suspect to permanent demotion (0 = cluster.DefaultSuspectAfter,
	// < 0 = never escalate). Also the corrupt-feedback strike budget.
	SuspectAfter int
	// Topology selects the feedback-aggregation topology (see the
	// cluster package's topology contract). nil or cluster.Flat keeps
	// the paper's flat star — every worker feeds the server directly,
	// byte-for-byte the pre-topology engine. cluster.Tree routes
	// feedbacks through worker-hosted aggregators, bounding the server's
	// per-round ingress by its fan-in instead of N. Synchronous engines
	// only, and AggMean only (partial sums commute with the mean, not
	// with median-style rules).
	Topology cluster.Topology
	// SwapSched selects the SWAP pairing (nil = RingSwap, the paper's
	// cyclic permutation). Non-ring schedules are synchronous-only: the
	// async engine picks its swap peers per-feedback rather than
	// per-round.
	SwapSched SwapSchedule
	// Defense configures the server-side feedback-quality defense
	// against free-riders (defense.go). Synchronous flat-topology
	// engines only: the server must see per-worker feedbacks, which a
	// tree pre-sums away. Attack-free runs stay on the bitwise-pinned
	// arithmetic path whether the defense is on or off.
	Defense DefenseConfig
	// Lifetimes bounds workers' participation windows (temporary
	// discriminators, Qu et al.): worker index → Lifetime. Joining
	// workers' Join rounds must match their JoinAt schedule; Retire
	// rounds end participation gracefully at the start of that
	// iteration. Synchronous engines only.
	Lifetimes map[int]cluster.Lifetime
	// JoinWarmup, when > 0, ramps a dynamic joiner's aggregation weight
	// linearly over its first JoinWarmup rounds (Qu et al.'s
	// generator-stability rule: a fresh discriminator's feedback is
	// noise to the generator at first). Flat topology only.
	JoinWarmup int
}

// EvalFunc observes the server's generator during training.
type EvalFunc func(iter int, g *gan.Generator)

// Result is the outcome of an MD-GAN run.
type Result struct {
	G *gan.Generator
	// Discs are the final discriminators of workers still alive, keyed
	// by worker name.
	Discs map[string]*gan.Discriminator
	// Traffic is the byte/message accounting snapshot (Tables III/IV).
	Traffic simnet.Traffic
	// Live lists the workers that survived the run.
	Live []string
	// Iters is the number of generator updates performed.
	Iters int
	// Faults is the run's fault accounting: per-worker timeout /
	// suspect / demotion / rejoin / corrupt-frame counters plus the
	// transport's send-retry count. Zero-valued on a fault-free run.
	Faults cluster.FaultStats
}

// DefaultK returns the paper's k = max(1, ⌊ln N⌋) (§IV-B4 chooses
// k = 1 or k = ⌊log N⌋).
func DefaultK(n int) int {
	k := int(math.Floor(math.Log(float64(n))))
	if k < 1 {
		k = 1
	}
	return k
}

// workerName formats the canonical node name of worker i.
func workerName(i int) string { return fmt.Sprintf("worker%d", i) }

// joinIters derives the worker index → join iteration assignment the
// engine will make for a JoinAt schedule: processJoins runs at
// ascending iterations and spawnJoiner hands out indices n, n+1, … in
// shard order, so the mapping is fully determined up front. Used to
// cross-check Lifetimes.
func joinIters(n int, joinAt map[int][]*dataset.Dataset) map[int]int {
	if len(joinAt) == 0 {
		return nil
	}
	its := make([]int, 0, len(joinAt))
	for it := range joinAt {
		its = append(its, it)
	}
	sort.Ints(its)
	out := make(map[int]int)
	idx := n
	for _, it := range its {
		for range joinAt[it] {
			out[idx] = it
			idx++
		}
	}
	return out
}

// retireSchedule resolves a Lifetimes map into the engine's iteration →
// worker-name retirement schedule (ascending index order per
// iteration, cluster.RetireesAt's contract).
func retireSchedule(lifetimes map[int]cluster.Lifetime) map[int][]string {
	if len(lifetimes) == 0 {
		return nil
	}
	out := make(map[int][]string)
	for _, lt := range lifetimes {
		if lt.Retire > 0 && out[lt.Retire] == nil {
			for _, idx := range cluster.RetireesAt(lifetimes, lt.Retire) {
				out[lt.Retire] = append(out[lt.Retire], workerName(idx))
			}
		}
	}
	return out
}

// shardSizes lists the per-worker shard lengths.
func shardSizes(shards []*dataset.Dataset) []int {
	sizes := make([]int, len(shards))
	for i, sh := range shards {
		sizes[i] = sh.Len()
	}
	return sizes
}

// swapIntervalFor converts the paper's swap cadence of E local epochs
// (Algorithm 1 line 11) into global iterations. Every worker passes its
// m local samples once per m/b iterations, so E epochs = m·E/b
// iterations, rounded to the nearest integer and floored at 1 (a swap
// cannot fire more often than once per iteration). Shard sizes can
// differ after splitting; the minimum is the paper's m, and because the
// server computes this single cadence for the whole cluster, workers
// with uneven shards can never drift onto different swap schedules.
// swapE ≤ 0 disables swapping (callers map the SwapEvery=0 default to
// E=1 before this).
//
// The rounding matters for small shards: the previous truncating
// m·E/b systematically shortened the cadence — m=100, E=1, b=64 swapped
// every iteration instead of every 2 (true cadence 1.56), and any
// m·E < b collapsed to 1 outright.
func swapIntervalFor(sizes []int, swapE, batch int) int {
	if swapE <= 0 || len(sizes) == 0 {
		return 0
	}
	m := sizes[0]
	for _, s := range sizes[1:] {
		if s < m {
			m = s
		}
	}
	interval := (m*swapE + batch/2) / batch
	if interval < 1 {
		interval = 1
	}
	return interval
}

const serverName = "server"

// Train runs MD-GAN over the given shards (one per worker; len(shards)
// is N). The caller provides shards explicitly so scalability
// experiments control the data-vs-worker scaling (Fig. 4).
func Train(shards []*dataset.Dataset, arch gan.Arch, cfg Config, eval EvalFunc) (*Result, error) {
	cfg.TrainConfig = cfg.TrainConfig.Defaults()
	n := len(shards)
	if n == 0 {
		return nil, fmt.Errorf("core: no shards")
	}
	k := cfg.K
	if k == 0 {
		k = DefaultK(n)
	}
	if k > n {
		return nil, fmt.Errorf("core: k=%d exceeds N=%d", k, n)
	}
	swapE := cfg.SwapEvery
	if swapE == 0 {
		swapE = 1
	}

	if cfg.Async && len(cfg.JoinAt) > 0 {
		return nil, fmt.Errorf("core: dynamic worker join requires synchronous mode")
	}
	if cfg.Async && cfg.Pipeline {
		return nil, fmt.Errorf("core: Pipeline applies to the synchronous engine only")
	}
	// A Flat topology is identity — drop it to nil so the engine stays
	// on the pre-topology code paths (the bitwise pin's configuration).
	topo := cfg.Topology
	if topo != nil && topo.Name() == "flat" {
		topo = nil
	}
	if topo != nil {
		if cfg.Async {
			return nil, fmt.Errorf("core: topology %q requires synchronous mode", topo.Name())
		}
		if cfg.Aggregate != AggMean {
			return nil, fmt.Errorf("core: topology %q requires mean aggregation (partial sums do not commute with %s)", topo.Name(), cfg.Aggregate)
		}
	}
	if cfg.SwapSched != nil && cfg.SwapSched.Name() != "ring" && cfg.Async {
		return nil, fmt.Errorf("core: swap schedule %q requires synchronous mode", cfg.SwapSched.Name())
	}
	if cfg.Defense.Enabled {
		if cfg.Async {
			return nil, fmt.Errorf("core: feedback-quality defense requires synchronous mode")
		}
		if topo != nil {
			return nil, fmt.Errorf("core: feedback-quality defense requires the flat topology (a %s pre-sums per-worker feedbacks away)", topo.Name())
		}
	}
	if cfg.JoinWarmup < 0 {
		return nil, fmt.Errorf("core: negative JoinWarmup %d", cfg.JoinWarmup)
	}
	if cfg.JoinWarmup > 0 && topo != nil {
		return nil, fmt.Errorf("core: joiner warm-up requires the flat topology (a %s cannot reweight pre-summed contributions)", topo.Name())
	}
	if len(cfg.Lifetimes) > 0 {
		if cfg.Async {
			return nil, fmt.Errorf("core: worker lifetimes require synchronous mode")
		}
		if err := cluster.ValidateLifetimes(cfg.Lifetimes, n, joinIters(n, cfg.JoinAt)); err != nil {
			return nil, err
		}
	}

	net := cfg.Net
	if net == nil {
		net = simnet.NewChannelNet(0)
		defer net.Close()
	}
	if err := net.Register(serverName); err != nil {
		return nil, err
	}

	// Build the GAN couple once; every worker starts from the same
	// discriminator parameters (§IV-A "for simplicity, we assume that
	// they are the same").
	couple := arch.NewGAN(cfg.Seed, cfg.GenLoss, cfg.ClsWeight)
	g := couple.G
	lc := couple.LossConfig

	swapInterval := swapIntervalFor(shardSizes(shards), swapE, cfg.Batch)

	// Spawn workers.
	workers := make([]*worker, n)
	for i := range workers {
		name := workerName(i)
		if err := net.Register(name); err != nil {
			return nil, err
		}
		workers[i] = newWorker(cfg, net, lc, couple.D, i, shards[i])
		go workers[i].run()
	}

	srv := &server{
		g:            g,
		optG:         opt.NewAdam(cfg.OptG),
		net:          net,
		rng:          rand.New(rand.NewSource(cfg.Seed + 31)),
		batch:        cfg.Batch,
		k:            k,
		swapInterval: swapInterval,
		eval:         eval,
		evalEvery:    cfg.EvalEvery,
		aggregate:    cfg.Aggregate,
		joinAt:       cfg.JoinAt,
		roundTimeout: cfg.RoundTimeout,
		quorum:       cfg.Quorum,
		topo:         topo,
		swapSched:    cfg.SwapSched,
		probes:       make(map[string]bool),
		joinWarmup:   cfg.JoinWarmup,
		retireAt:     retireSchedule(cfg.Lifetimes),
	}
	srv.m = cluster.New(net, srv.rng, cfg.CrashAt, cfg.ActivePerRound)
	if cfg.Defense.Enabled {
		srv.defense = newDefense(cfg.Defense, srv.m)
	}
	srv.m.SetSuspectThreshold(cfg.SuspectAfter)
	for _, w := range workers {
		srv.m.Add(w.name)
	}
	nextIdx := n
	srv.spawn = spawnJoiner(cfg, net, lc, couple.D, &workers, &nextIdx)

	// Shutdown runs on EVERY exit path — the error returns used to
	// leak the worker goroutines whenever cfg.Net was caller-supplied
	// (no stop message was sent and wait() was never reached, and only
	// an internally-created net gets closed above).
	stopped := false
	shutdown := func() {
		if stopped {
			return
		}
		stopped = true
		srv.m.StopAll(serverName, msgStop)
		for _, w := range workers {
			w.wait()
		}
	}
	defer shutdown()

	var iters int
	var err error
	switch {
	case cfg.Async:
		iters, err = srv.runAsync(cfg.Iters)
	case cfg.Pipeline:
		iters, err = srv.runPipelined(cfg.Iters)
	default:
		iters, err = srv.runSync(cfg.Iters)
	}
	if err != nil {
		return nil, err
	}

	// Stop surviving workers and collect their discriminators (their
	// goroutines must have exited before w.d is read).
	shutdown()
	discs := make(map[string]*gan.Discriminator)
	var liveNames []string
	for _, w := range workers {
		if srv.m.Alive(w.name) {
			discs[w.name] = w.d
			liveNames = append(liveNames, w.name)
		}
	}
	sort.Strings(liveNames)

	// Transports that retry sends (TCPNet, or a chaos wrapper over one)
	// expose the count for the fault accounting.
	var retries int64
	if rc, ok := net.(interface{ Retries() int64 }); ok {
		retries = rc.Retries()
	}

	faults := srv.m.Faults(retries)
	if srv.defense != nil {
		faults.Defense = srv.defense.snapshots()
	}
	return &Result{
		G:       g,
		Discs:   discs,
		Traffic: net.Snapshot(),
		Live:    liveNames,
		Iters:   iters,
		Faults:  faults,
	}, nil
}

// newWorker builds worker i over its shard. The discriminator starts as
// a clone of the shared template (for joiners it is overwritten by the
// donor's parameters before the first batch arrives).
func newWorker(cfg Config, net simnet.Net, lc gan.LossConfig, template *gan.Discriminator, i int, shard *dataset.Dataset) *worker {
	return &worker{
		name:      workerName(i),
		d:         template.Clone(),
		lc:        lc,
		optD:      opt.NewAdam(cfg.OptD),
		sampler:   dataset.NewSampler(shard, cfg.Seed+7919*int64(i+1)),
		batch:     cfg.Batch,
		discL:     cfg.DiscSteps,
		net:       net,
		lazySwap:  cfg.Async,
		compress:  cfg.Compress,
		swapPrec:  cfg.SwapPrec,
		byzantine: cfg.Byzantine[i],
		rng:       rand.New(rand.NewSource(cfg.Seed + 15485863*int64(i+1))),
		done:      make(chan struct{}),
	}
}
