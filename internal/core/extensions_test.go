package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdgan/internal/gan"
	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

func randFeedback(rng *rand.Rand, shape ...int) *tensor.Tensor {
	f := tensor.New(shape...)
	for i := range f.Data {
		f.Data[i] = tensor.Elem(rng.NormFloat64())
	}
	return f
}

func TestCompressNoneRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := randFeedback(rng, 4, 7)
	got, err := decodeFeedbackAny(encodeFeedbackCompressed(f, CompressNone), f.Shape())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f, 0) {
		t.Fatal("CompressNone must be lossless")
	}
}

func TestCompressFP32HalvesPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := randFeedback(rng, 16, 784)
	full := encodeFeedbackCompressed(f, CompressNone)
	half := encodeFeedbackCompressed(f, CompressFP32)
	if tensor.ElemBytes == 4 {
		// The f32 build already ships 4-byte elements: FP32 compression
		// is a no-op reduction and the frames coincide in size.
		if len(half) != len(full) {
			t.Fatalf("f32 build: fp32 payload %d, want %d", len(half), len(full))
		}
	} else if len(half) >= len(full)*6/10 {
		t.Fatalf("fp32 payload %d not ~half of %d", len(half), len(full))
	}
	got, err := decodeFeedbackAny(half, f.Shape())
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameShape(f) {
		t.Fatal("shape lost")
	}
	for i := range f.Data {
		if math.Abs(float64(got.Data[i])-float64(f.Data[i])) > 1e-6*(1+math.Abs(float64(f.Data[i]))) {
			t.Fatalf("fp32 error too large at %d: %g vs %g", i, got.Data[i], f.Data[i])
		}
	}
}

func TestCompressTopKKeepsLargestEntries(t *testing.T) {
	f := tensor.New(1, 100)
	for i := range f.Data {
		f.Data[i] = 0.001
	}
	f.Data[7] = 5
	f.Data[42] = -9
	f.Data[99] = 3
	got, err := decodeFeedbackAny(encodeFeedbackCompressed(f, CompressTopK), f.Shape())
	if err != nil {
		t.Fatal(err)
	}
	// The three spikes survive (k = 10% of 100 = 10 entries).
	for _, i := range []int{7, 42, 99} {
		if math.Abs(float64(got.Data[i])-float64(f.Data[i])) > 1e-4 {
			t.Fatalf("spike at %d lost: %g", i, got.Data[i])
		}
	}
	// Payload far below the dense encoding.
	dense := encodeFeedbackCompressed(f, CompressNone)
	sparse := encodeFeedbackCompressed(f, CompressTopK)
	if len(sparse) >= len(dense)/4 {
		t.Fatalf("topk payload %d not well below dense %d", len(sparse), len(dense))
	}
}

// Property: every compression mode decodes to the original shape, and
// fp32 stays within float32 rounding of the original values.
func TestCompressionRoundTripProperty(t *testing.T) {
	f := func(seed int64, modeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mode := Compression(modeRaw % 3)
		x := randFeedback(rng, 1+rng.Intn(5), 1+rng.Intn(40))
		got, err := decodeFeedbackAny(encodeFeedbackCompressed(x, mode), x.Shape())
		if err != nil || !got.SameShape(x) {
			return false
		}
		if mode == CompressTopK {
			return true // lossy by design
		}
		for i := range x.Data {
			if math.Abs(float64(got.Data[i])-float64(x.Data[i])) > 1e-6*(1+math.Abs(float64(x.Data[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFeedbackRejectsGarbage(t *testing.T) {
	if _, err := decodeFeedbackAny(nil, []int{32, 32}); err == nil {
		t.Fatal("empty payload must error")
	}
	if _, err := decodeFeedbackAny([]byte{200, 1, 2, 3}, []int{32, 32}); err == nil {
		t.Fatal("unknown mode byte must error")
	}
}

// TestCompressedTrainingReducesTraffic runs MD-GAN with fp32 feedback
// and verifies (a) W→C traffic is roughly halved, (b) training still
// converges on the ring.
func TestCompressedTrainingReducesTraffic(t *testing.T) {
	run := func(mode Compression) (int64, *Result) {
		shards := ringShards(3, 200, 41)
		cfg := baseConfig()
		cfg.Iters = 150
		cfg.Compress = mode
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Traffic.Bytes[simnet.WtoC], res
	}
	full, _ := run(CompressNone)
	half, res := run(CompressFP32)
	if tensor.ElemBytes == 4 {
		if half != full {
			t.Fatalf("f32 build: fp32 W→C traffic %d, want %d", half, full)
		}
	} else if half >= full*6/10 {
		t.Fatalf("fp32 W→C traffic %d not ~half of %d", half, full)
	}
	rng := rand.New(rand.NewSource(5))
	x, _ := res.G.Generate(128, rng, false)
	sum := 0.0
	for i := 0; i < x.Dim(0); i++ {
		sum += math.Hypot(x.At(i, 0), x.At(i, 1))
	}
	if mean := sum / 128; mean < 0.8 || mean > 3.2 {
		t.Fatalf("compressed training diverged: mean radius %v", mean)
	}
}

// TestActivePerRoundSubsetsWorkers checks the §VII.4 client-sampling
// extension: per-iteration traffic drops proportionally and all workers
// still participate over time.
func TestActivePerRoundSubsetsWorkers(t *testing.T) {
	const n = 6
	shards := ringShards(n, 120, 43)
	cfg := baseConfig()
	cfg.Iters = 30
	cfg.K = 1
	cfg.SwapEvery = -1
	cfg.ActivePerRound = 2
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly ActivePerRound batch messages per iteration (+ stop msgs).
	wantMsgs := int64(cfg.Iters*2 + n)
	if got := res.Traffic.Msgs[simnet.CtoW]; got != wantMsgs {
		t.Fatalf("C→W msgs = %d, want %d", got, wantMsgs)
	}
	if got := res.Traffic.Msgs[simnet.WtoC]; got != int64(cfg.Iters*2) {
		t.Fatalf("W→C msgs = %d, want %d", got, cfg.Iters*2)
	}
	// Over 30 iterations of 2-of-6 sampling, every worker should have
	// been activated at least once (probability of missing one worker
	// is (4/6)^30 ≈ 5e-6).
	for name, egress := range res.Traffic.EgressByNode {
		if name == serverName {
			continue
		}
		if egress == 0 {
			t.Fatalf("worker %s never activated", name)
		}
	}
	if len(res.Live) != n {
		t.Fatalf("live = %v", res.Live)
	}
}

func TestActivePerRoundStillLearns(t *testing.T) {
	shards := ringShards(4, 400, 45)
	cfg := baseConfig()
	cfg.Iters = 400
	cfg.Batch = 32
	cfg.ActivePerRound = 2
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	x, _ := res.G.Generate(256, rng, false)
	sum := 0.0
	for i := 0; i < x.Dim(0); i++ {
		sum += math.Hypot(x.At(i, 0), x.At(i, 1))
	}
	if mean := sum / 256; mean < 1.0 || mean > 3.0 {
		t.Fatalf("subset training diverged: mean radius %v", mean)
	}
}

func TestTopKIndices(t *testing.T) {
	data := []tensor.Elem{1, -10, 3, 0.5, -2}
	idx := topKIndices(data, 2) // largest magnitudes: |-10| at 1, |3| at 2
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 2 {
		t.Fatalf("topKIndices = %v, want [1 2]", idx)
	}
	all := topKIndices(data, 99)
	if len(all) != len(data) {
		t.Fatalf("k >= len must return all, got %v", all)
	}
}

func TestCompressionString(t *testing.T) {
	if CompressNone.String() != "none" || CompressFP32.String() != "fp32" || CompressTopK.String() != "topk" {
		t.Fatal("Compression.String broken")
	}
}
