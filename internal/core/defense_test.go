package core

// Feedback-quality defense regression tests.
//
// The demotion soak is the tentpole's acceptance check: 2-of-8
// free-riders on a non-IID digit split, over a seeded ChaosNet, must be
// down-weighted and then demoted through the strike budget — for every
// fabrication variant — while every honest worker survives with a
// near-zero suspicion. The strict-pin test proves the defense is
// bitwise inert without attackers, and the fingerprint test pins the
// property replay detection depends on: the FP32-quantized hash
// survives the feedback wire round-trip under every compression mode.

import (
	"math/rand"
	"testing"
	"time"

	"mdgan/internal/dataset"
	"mdgan/internal/gan"
	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

// digitsDefenseConfig is the shared soak setup: 8 workers on a heavily
// non-IID synthetic digit split (skew 0.8 — the hard case for the
// cosine test, since honest feedbacks already disagree more than under
// IID shards).
func digitsDefenseConfig(t *testing.T, iters int) ([]*dataset.Dataset, Config) {
	t.Helper()
	ds := dataset.SynthDigits(640, 1)
	shards := dataset.SplitNonIID(ds, 8, 0.8, 2)
	cfg := baseConfig()
	cfg.Iters = iters
	cfg.Batch = 16
	cfg.K = 2
	cfg.Defense = DefenseConfig{Enabled: true}
	return shards, cfg
}

// TestDefenseDemotesFreeRiders: each fabrication variant, injected at
// workers 2 and 5 of 8, must be caught by the cross-round scorer —
// first down-weighted, then demoted through the corrupt-frame strike
// budget — while the six honest workers survive untouched. The run
// rides a seeded ChaosNet (drops, delays, duplicates) to prove the
// defense composes with the transient-fault machinery instead of
// misfiring on its noise.
func TestDefenseDemotesFreeRiders(t *testing.T) {
	if testing.Short() {
		t.Skip("defense soak is a long test")
	}
	attackers := []int{2, 5}
	for _, tc := range []struct {
		name string
		mode ByzantineMode
	}{
		{"random", FreeRiderRandom},
		{"replay", FreeRiderReplay},
		{"noise", FreeRiderScaledNoise},
	} {
		t.Run(tc.name, func(t *testing.T) {
			before := goroutineBaseline()
			inner := simnet.NewChannelNet(0)
			chaos := simnet.WrapChaos(inner, simnet.ChaosConfig{
				Seed:      2026,
				Drop:      0.002,
				Delay:     0.02,
				MaxDelay:  2 * time.Millisecond,
				Duplicate: 0.01,
				// No payload corruption: a corrupt frame strikes its
				// sender through the same budget the defense uses, which
				// would conflate the two demotion paths this test tells
				// apart.
				ProtectTypes: map[string]bool{msgStop: true, msgSwap: true},
			})
			shards, cfg := digitsDefenseConfig(t, 24)
			cfg.Net = chaos
			cfg.RoundTimeout = 250 * time.Millisecond
			cfg.Byzantine = map[int]ByzantineMode{}
			for _, i := range attackers {
				cfg.Byzantine[i] = tc.mode
			}
			res, err := Train(shards, gan.ScaledMLP(32), cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Iters != cfg.Iters {
				t.Fatalf("applied %d updates, want %d", res.Iters, cfg.Iters)
			}
			if res.Faults.FreeRidersDemoted != len(attackers) {
				t.Fatalf("faults = %+v, want both free-riders demoted", res.Faults)
			}
			if res.Faults.DownWeighted == 0 {
				t.Fatalf("faults = %+v: demotion must pass through the reversible down-weight rung first", res.Faults)
			}
			for _, i := range attackers {
				name := workerName(i)
				if contains(res.Live, name) {
					t.Fatalf("live = %v: free-rider %s survived", res.Live, name)
				}
				d, ok := res.Faults.Defense[name]
				if !ok || !d.Demoted {
					t.Fatalf("defense snapshot for %s = %+v, want demoted", name, d)
				}
				if tc.mode == FreeRiderReplay && d.ReplayHits == 0 {
					t.Fatalf("replay free-rider %s demoted without a fingerprint hit: %+v", name, d)
				}
			}
			for i := 0; i < 8; i++ {
				name := workerName(i)
				if i == attackers[0] || i == attackers[1] {
					continue
				}
				if !contains(res.Live, name) {
					t.Fatalf("live = %v: honest worker %s was demoted", res.Live, name)
				}
				if d := res.Faults.Defense[name]; d.Suspicion >= defaultDownWeightAt {
					t.Fatalf("honest worker %s ended at suspicion %.3f — the defense would down-weight it", name, d.Suspicion)
				}
			}
			chaos.Close()
			assertNoGoroutineLeak(t, before)
		})
	}
}

// TestDefenseFaultFreeKeepsStrictPin: with zero attackers, enabling the
// defense must not move a single bit — the scorer observes every round
// but returns nil weights while nobody crosses the down-weight
// threshold, keeping the engine on the legacy arithmetic path pinned to
// serial Algorithm 1.
func TestDefenseFaultFreeKeepsStrictPin(t *testing.T) {
	run := func(defense bool) []float64 {
		shards := ringShards(4, 96, 443)
		cfg := baseConfig()
		cfg.Iters = 10
		cfg.SwapEvery = 1
		cfg.Defense = DefenseConfig{Enabled: defense}
		res, err := Train(shards, gan.RingMLP(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Faults.DownWeighted != 0 || res.Faults.FreeRidersDemoted != 0 {
			t.Fatalf("attack-free run tripped the defense: %+v", res.Faults)
		}
		if defense && len(res.Faults.Defense) != 4 {
			t.Fatalf("defense snapshots = %v, want all 4 workers scored", res.Faults.Defense)
		}
		return res.G.Net.ParamVector()
	}
	plain, defended := run(false), run(true)
	for i := range plain {
		if plain[i] != defended[i] {
			t.Fatalf("param %d: %g with defense vs %g without — the defense must be bitwise inert without attackers",
				i, defended[i], plain[i])
		}
	}
}

// TestReplayFingerprintSurvivesFP32: the replay detector hashes
// FP32-quantized elements precisely so that the fingerprint a worker's
// tensor would produce is the fingerprint the server computes after the
// wire round-trip — under the raw frame and the FP32-compressed frame
// alike. A replayed tensor must collide with itself across encodings;
// a fresh tensor must not.
func TestReplayFingerprintSurvivesFP32(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := tensor.New(16, 8)
	for i := range f.Data {
		f.Data[i] = tensor.Elem(rng.NormFloat64())
	}
	want := feedbackFingerprint(f)
	for _, mode := range []Compression{CompressNone, CompressFP32} {
		got, err := decodeFeedbackAny(encodeFeedbackCompressed(f, mode), f.Shape())
		if err != nil {
			t.Fatal(err)
		}
		if fp := feedbackFingerprint(got); fp != want {
			t.Fatalf("fingerprint changed across the %v wire round-trip: %x vs %x", mode, fp, want)
		}
	}
	// Sensitivity control: one element nudged by a float32-visible ulp
	// must change the fingerprint.
	g := f.Clone()
	g.Data[5] += 1e-3
	if feedbackFingerprint(g) == want {
		t.Fatal("fingerprint blind to a changed element — replay detection is vacuous")
	}
}

// TestDefensePenaltyRamps pins the scoring primitives' endpoints and
// interior slopes.
func TestDefensePenaltyRamps(t *testing.T) {
	if rampDown(0.05, 0.05, 0.25) != 1 || rampDown(0.25, 0.05, 0.25) != 0 {
		t.Fatal("rampDown endpoints")
	}
	if got := rampDown(0.15, 0.05, 0.25); got <= 0.49 || got >= 0.51 {
		t.Fatalf("rampDown midpoint = %v", got)
	}
	if rampUp(1, 1, 2) != 0 || rampUp(2, 1, 2) != 1 {
		t.Fatal("rampUp endpoints")
	}
	if got := rampUp(1.5, 1, 2); got <= 0.49 || got >= 0.51 {
		t.Fatalf("rampUp midpoint = %v", got)
	}
}
