package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"mdgan/internal/tensor"
)

// Compression of the W→C error feedback, the extension the paper
// sketches in §VII.2: "methods such as Adacomp propose to communicate
// updates based on gradient staleness, which constitutes a form of data
// compression … those methods may be applied … to the error feedback
// messages sent by workers to the server."
//
// Two schemes are implemented:
//
//   - CompressFP32 — cast the float64 feedback to float32 on the wire
//     (2× reduction, negligible accuracy impact: feedbacks are consumed
//     by one Adam step);
//   - CompressTopK — transmit only the q highest-magnitude entries as
//     sparse (index, float32) pairs, zeros elsewhere (Adacomp-style
//     selective update; large reduction for peaked gradients).
//
// The wire format prefixes one mode byte so the server can decode
// whatever each worker sends.

// Compression selects the feedback wire encoding.
type Compression int

// Available feedback compression modes.
const (
	CompressNone Compression = iota
	CompressFP32
	CompressTopK
)

// String implements fmt.Stringer.
func (c Compression) String() string {
	switch c {
	case CompressNone:
		return "none"
	case CompressFP32:
		return "fp32"
	case CompressTopK:
		return "topk"
	default:
		return fmt.Sprintf("Compression(%d)", int(c))
	}
}

// topKFraction is the fraction of entries CompressTopK keeps.
const topKFraction = 0.1

// encodeFeedbackCompressed frames F_n under the given mode.
func encodeFeedbackCompressed(f *tensor.Tensor, mode Compression) []byte {
	if mode == CompressNone {
		// The per-iteration default: one exact-size allocation.
		out := make([]byte, 0, 1+f.EncodedSize())
		out = append(out, byte(CompressNone))
		return f.AppendBinary(out)
	}
	var buf bytes.Buffer
	buf.WriteByte(byte(mode))
	switch mode {
	case CompressNone:
		if _, err := f.WriteTo(&buf); err != nil {
			panic(err)
		}
	case CompressFP32:
		writeShape(&buf, f.Shape())
		var tmp [4]byte
		for _, v := range f.Data {
			binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(float32(v)))
			buf.Write(tmp[:])
		}
	case CompressTopK:
		writeShape(&buf, f.Shape())
		k := int(float64(f.Size()) * topKFraction)
		if k < 1 {
			k = 1
		}
		idx := topKIndices(f.Data, k)
		var tmp [8]byte
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(idx)))
		buf.Write(tmp[:4])
		for _, i := range idx {
			binary.LittleEndian.PutUint32(tmp[:4], uint32(i))
			binary.LittleEndian.PutUint32(tmp[4:], math.Float32bits(float32(f.Data[i])))
			buf.Write(tmp[:])
		}
	default:
		panic(fmt.Sprintf("core: unknown compression %d", mode))
	}
	return buf.Bytes()
}

// decodeFeedbackAny decodes a feedback regardless of its mode. maxVol
// bounds the decoded element count (the server knows the shape of the
// batch a feedback answers), so a corrupt or hostile frame errors out
// before it can over-allocate.
func decodeFeedbackAny(p []byte, maxVol int) (*tensor.Tensor, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("core: empty feedback")
	}
	mode := Compression(p[0])
	r := bytes.NewReader(p[1:])
	switch mode {
	case CompressNone:
		f := new(tensor.Tensor)
		if _, err := f.ReadFrom(r); err != nil {
			return nil, fmt.Errorf("core: decode feedback: %w", err)
		}
		if f.Size() > maxVol {
			return nil, fmt.Errorf("core: feedback volume %d exceeds expected %d", f.Size(), maxVol)
		}
		return f, nil
	case CompressFP32:
		shape, err := readShapeBounded(r, maxVol)
		if err != nil {
			return nil, err
		}
		f := tensor.New(shape...)
		var tmp [4]byte
		for i := range f.Data {
			if _, err := io.ReadFull(r, tmp[:]); err != nil {
				return nil, fmt.Errorf("core: decode fp32 feedback: %w", err)
			}
			f.Data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(tmp[:])))
		}
		return f, nil
	case CompressTopK:
		shape, err := readShapeBounded(r, maxVol)
		if err != nil {
			return nil, err
		}
		f := tensor.New(shape...)
		var tmp [8]byte
		if _, err := io.ReadFull(r, tmp[:4]); err != nil {
			return nil, fmt.Errorf("core: decode topk count: %w", err)
		}
		n := int(binary.LittleEndian.Uint32(tmp[:4]))
		if n > r.Len()/8 {
			return nil, fmt.Errorf("core: topk count %d exceeds remaining payload", n)
		}
		for j := 0; j < n; j++ {
			if _, err := io.ReadFull(r, tmp[:]); err != nil {
				return nil, fmt.Errorf("core: decode topk entry: %w", err)
			}
			i := int(binary.LittleEndian.Uint32(tmp[:4]))
			if i < 0 || i >= f.Size() {
				return nil, fmt.Errorf("core: topk index %d out of range", i)
			}
			f.Data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(tmp[4:])))
		}
		return f, nil
	default:
		return nil, fmt.Errorf("core: unknown feedback compression byte %d", p[0])
	}
}

func writeShape(buf *bytes.Buffer, shape []int) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(shape)))
	buf.Write(tmp[:])
	for _, d := range shape {
		binary.LittleEndian.PutUint32(tmp[:], uint32(d))
		buf.Write(tmp[:])
	}
}

// readShapeBounded decodes a shape whose volume must not exceed maxVol,
// rejecting oversized or overflowing dimension products before any
// allocation proportional to them happens.
func readShapeBounded(r *bytes.Reader, maxVol int) ([]int, error) {
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return nil, fmt.Errorf("core: read shape rank: %w", err)
	}
	rank := int(binary.LittleEndian.Uint32(tmp[:]))
	if rank <= 0 || rank > 8 {
		return nil, fmt.Errorf("core: implausible shape rank %d", rank)
	}
	shape := make([]int, rank)
	vol := 1
	for i := range shape {
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return nil, fmt.Errorf("core: read shape dim: %w", err)
		}
		shape[i] = int(binary.LittleEndian.Uint32(tmp[:]))
		if shape[i] <= 0 {
			return nil, fmt.Errorf("core: non-positive shape dim")
		}
		if shape[i] > maxVol/vol {
			return nil, fmt.Errorf("core: shape volume exceeds expected %d elements", maxVol)
		}
		vol *= shape[i]
	}
	return shape, nil
}

// topKIndices returns the indices of the k largest-magnitude entries.
func topKIndices(data []float64, k int) []int {
	if k >= len(data) {
		out := make([]int, len(data))
		for i := range out {
			out[i] = i
		}
		return out
	}
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(data[idx[a]]) > math.Abs(data[idx[b]])
	})
	out := idx[:k]
	sort.Ints(out) // ascending indices compress better and decode cache-friendly
	return out
}
