package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"

	"mdgan/internal/tensor"
)

// Compression of the W→C error feedback, the extension the paper
// sketches in §VII.2: "methods such as Adacomp propose to communicate
// updates based on gradient staleness, which constitutes a form of data
// compression … those methods may be applied … to the error feedback
// messages sent by workers to the server."
//
// Two schemes are implemented:
//
//   - CompressFP32 — ship the feedback as float32 on the wire (a 2×
//     reduction when the compiled storage is float64, a no-op reduction
//     under the f32 build; negligible accuracy impact either way:
//     feedbacks are consumed by one Adam step);
//   - CompressTopK — transmit only the q highest-magnitude entries as
//     sparse (index, float32) pairs, zeros elsewhere (Adacomp-style
//     selective update; large reduction for peaked gradients).
//
// The wire format prefixes one mode byte so the server can decode
// whatever each worker sends. Every encoder builds its frame with a
// single exact-size allocation (TopK adds one more for the selection
// index); the per-element bytes.Buffer writes of the original
// implementation are gone.

// Compression selects the feedback wire encoding.
type Compression int

// Available feedback compression modes.
const (
	CompressNone Compression = iota
	CompressFP32
	CompressTopK
)

// String implements fmt.Stringer.
func (c Compression) String() string {
	switch c {
	case CompressNone:
		return "none"
	case CompressFP32:
		return "fp32"
	case CompressTopK:
		return "topk"
	default:
		return fmt.Sprintf("Compression(%d)", int(c))
	}
}

// topKFraction is the fraction of entries CompressTopK keeps.
const topKFraction = 0.1

// encodeFeedbackCompressed frames F_n under the given mode with one
// exact-size allocation.
func encodeFeedbackCompressed(f *tensor.Tensor, mode Compression) []byte {
	return appendFeedbackCompressed(make([]byte, 0, feedbackEncodedSize(f, mode)), f, mode)
}

// feedbackEncodedSize returns the exact encoded size of F_n under mode.
func feedbackEncodedSize(f *tensor.Tensor, mode Compression) int64 {
	switch mode {
	case CompressNone:
		return 1 + f.EncodedSize()
	case CompressFP32:
		return 1 + f.EncodedSizeAs(tensor.DTypeF32)
	case CompressTopK:
		k := int(float64(f.Size()) * topKFraction)
		if k < 1 {
			k = 1
		}
		return int64(1 + 4 + 4*f.Rank() + 4 + 8*k)
	default:
		panic(fmt.Sprintf("core: unknown compression %d", mode))
	}
}

// appendFeedbackCompressed appends F_n's frame under the given mode —
// the allocation-free form the aggregate encoder builds its multi-entry
// payloads from (size the destination with feedbackEncodedSize).
func appendFeedbackCompressed(out []byte, f *tensor.Tensor, mode Compression) []byte {
	switch mode {
	case CompressNone:
		out = append(out, byte(CompressNone))
		return f.AppendBinary(out)
	case CompressFP32:
		// The payload is the ordinary tensor framing pinned to the f32
		// wire dtype, decoded by the same tensor decoder as
		// CompressNone.
		out = append(out, byte(CompressFP32))
		return f.AppendBinaryAs(out, tensor.DTypeF32)
	case CompressTopK:
		k := int(float64(f.Size()) * topKFraction)
		if k < 1 {
			k = 1
		}
		idx := topKIndices(f.Data, k)
		shape := f.Shape()
		out = append(out, byte(CompressTopK))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(shape)))
		for _, d := range shape {
			out = binary.LittleEndian.AppendUint32(out, uint32(d))
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(idx)))
		for _, i := range idx {
			out = binary.LittleEndian.AppendUint32(out, uint32(i))
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(float32(f.Data[i])))
		}
		return out
	default:
		panic(fmt.Sprintf("core: unknown compression %d", mode))
	}
}

// shapeVol returns the volume of a shape.
func shapeVol(shape []int) int {
	vol := 1
	for _, d := range shape {
		vol *= d
	}
	return vol
}

// decodeFeedbackAny decodes a feedback regardless of its mode. The
// decoded tensor must have exactly the shape of the generated batch the
// feedback answers (`want`): a feedback is consumed row-for-row against
// that batch, so a frame of merely equal volume but different shape
// would silently mis-align against the generator's samples. The volume
// of want also bounds every decode-side allocation, so a corrupt or
// hostile frame errors out before it can over-allocate.
func decodeFeedbackAny(p []byte, want []int) (*tensor.Tensor, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("core: empty feedback")
	}
	mode := Compression(p[0])
	r := bytes.NewReader(p[1:])
	switch mode {
	case CompressNone, CompressFP32:
		f := new(tensor.Tensor)
		if _, err := f.ReadFrom(r); err != nil {
			return nil, fmt.Errorf("core: decode %s feedback: %w", mode, err)
		}
		if !slices.Equal(f.Shape(), want) {
			return nil, fmt.Errorf("core: feedback shape %v, want %v", f.Shape(), want)
		}
		return f, nil
	case CompressTopK:
		shape, err := readShapeBounded(r, shapeVol(want))
		if err != nil {
			return nil, err
		}
		if !slices.Equal(shape, want) {
			return nil, fmt.Errorf("core: feedback shape %v, want %v", shape, want)
		}
		f := tensor.New(shape...)
		var tmp [8]byte
		if _, err := io.ReadFull(r, tmp[:4]); err != nil {
			return nil, fmt.Errorf("core: decode topk count: %w", err)
		}
		n := int(binary.LittleEndian.Uint32(tmp[:4]))
		if n > r.Len()/8 {
			return nil, fmt.Errorf("core: topk count %d exceeds remaining payload", n)
		}
		for j := 0; j < n; j++ {
			if _, err := io.ReadFull(r, tmp[:]); err != nil {
				return nil, fmt.Errorf("core: decode topk entry: %w", err)
			}
			i := int(binary.LittleEndian.Uint32(tmp[:4]))
			if i < 0 || i >= f.Size() {
				return nil, fmt.Errorf("core: topk index %d out of range", i)
			}
			f.Data[i] = tensor.Elem(math.Float32frombits(binary.LittleEndian.Uint32(tmp[4:])))
		}
		return f, nil
	default:
		return nil, fmt.Errorf("core: unknown feedback compression byte %d", p[0])
	}
}

// readShapeBounded decodes a shape whose volume must not exceed maxVol,
// rejecting oversized or overflowing dimension products before any
// allocation proportional to them happens.
func readShapeBounded(r *bytes.Reader, maxVol int) ([]int, error) {
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return nil, fmt.Errorf("core: read shape rank: %w", err)
	}
	rank := int(binary.LittleEndian.Uint32(tmp[:]))
	if rank <= 0 || rank > 8 {
		return nil, fmt.Errorf("core: implausible shape rank %d", rank)
	}
	shape := make([]int, rank)
	vol := 1
	for i := range shape {
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return nil, fmt.Errorf("core: read shape dim: %w", err)
		}
		shape[i] = int(binary.LittleEndian.Uint32(tmp[:]))
		if shape[i] <= 0 {
			return nil, fmt.Errorf("core: non-positive shape dim")
		}
		if shape[i] > maxVol/vol {
			return nil, fmt.Errorf("core: shape volume exceeds expected %d elements", maxVol)
		}
		vol *= shape[i]
	}
	return shape, nil
}

// topKIndices returns the indices of the k largest-magnitude entries in
// ascending index order (ascending indices compress better and decode
// cache-friendly). It allocates only the index permutation: selection
// is an in-place quickselect, so the encoder's total footprint stays at
// two allocations per frame.
func topKIndices(data []tensor.Elem, k int) []int {
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	if k >= len(data) {
		return idx
	}
	quickSelectTopK(data, idx, k)
	top := idx[:k]
	slices.Sort(top)
	return top
}

// absE is math.Abs over the compiled element type.
func absE(v tensor.Elem) tensor.Elem {
	if v < 0 {
		return -v
	}
	return v
}

// quickSelectTopK partially orders idx so its first k entries index the
// k largest-magnitude values of data (in unspecified order), using
// median-of-three Hoare partitioning.
func quickSelectTopK(data []tensor.Elem, idx []int, k int) {
	lo, hi := 0, len(idx)-1
	for lo < hi {
		// Median-of-three pivot on |data|, moved to idx[lo].
		mid := lo + (hi-lo)/2
		if absE(data[idx[mid]]) > absE(data[idx[lo]]) {
			idx[lo], idx[mid] = idx[mid], idx[lo]
		}
		if absE(data[idx[hi]]) > absE(data[idx[lo]]) {
			idx[lo], idx[hi] = idx[hi], idx[lo]
		}
		if absE(data[idx[mid]]) > absE(data[idx[hi]]) {
			idx[mid], idx[hi] = idx[hi], idx[mid]
		}
		pivot := absE(data[idx[hi]])
		// Partition descending by magnitude: entries > pivot first.
		p := lo
		for i := lo; i < hi; i++ {
			if absE(data[idx[i]]) > pivot {
				idx[p], idx[i] = idx[i], idx[p]
				p++
			}
		}
		idx[p], idx[hi] = idx[hi], idx[p]
		switch {
		case p == k || p == k-1:
			return
		case p > k:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}
