package core

// Server-side feedback-quality defense against free-riders (Zhao et
// al., "Attacks and Defenses for Free-Riders in Multi-Discriminator
// GAN"). A free-rider fabricates feedback without running its
// discriminator, so nothing it sends can carry information about the
// generated batch it claims to score. The defense exploits exactly
// that: it tracks per-worker cross-round statistics of the feedbacks
// the server already holds —
//
//   - cosine similarity to a leave-one-out reference (the sum of the
//     OTHER feedbacks that scored the same generated batch): honest
//     feedbacks share the loss surface's descent direction, fabricated
//     noise is orthogonal to it in expectation;
//   - norm trajectory: a feedback whose magnitude strays far from its
//     group's median was fabricated with the wrong scale;
//   - replay detection: a fingerprint over the FP32-quantized elements
//     (stable across the FP32 wire re-encoding) that an honest worker
//     can never repeat, while a replay free-rider repeats it every
//     round —
//
// and folds the per-round evidence into an EWMA suspicion score. The
// response escalates through the EXISTING failure machinery rather
// than inventing a new one: a suspicious worker is first down-weighted
// in aggregation (reversible — the suspicion decays if its feedback
// recovers), and only a worker whose suspicion stays above the
// demotion threshold for a full corrupt-frame strike budget is removed
// permanently, through the same Membership.Fail path a persistent
// garbage sender takes. Suspect/probe is deliberately NOT used: a
// free-rider is alive and answers pings, so suspicion would just flap.
//
// Determinism: the defense reads the round's feedbacks and performs
// pure float arithmetic — no RNG draws, no mutation of the feedbacks.
// While no worker crosses the down-weight threshold it returns a nil
// weight map and the engine takes the byte-identical legacy
// aggregation path, so a defense-on attack-free run stays on the
// strict bitwise pin.

import (
	"math"

	"mdgan/internal/cluster"
	"mdgan/internal/tensor"
)

// DefenseConfig configures the feedback-quality defense. The zero
// value of every knob selects the documented default.
type DefenseConfig struct {
	// Enabled turns the defense on. Synchronous flat-topology engines
	// only (the server must see per-worker feedbacks; a tree pre-sums
	// them).
	Enabled bool
	// Decay is the EWMA weight of the PAST suspicion (default 0.5):
	// s ← Decay·s + (1−Decay)·p with p this round's penalty in [0, 1].
	Decay float64
	// DownWeightAt is the suspicion at which a worker's aggregation
	// weight drops below 1 (default 0.6 — two consecutive maximally
	// suspicious rounds at the default decay).
	DownWeightAt float64
	// DemoteAt is the suspicion above which a round counts against the
	// worker's strike budget (default 0.85); SuspectAfter strikes demote
	// it permanently.
	DemoteAt float64
	// CosLow/CosHigh bound the cosine penalty ramp: similarity to the
	// leave-one-out reference at or below CosLow scores the full
	// penalty, at or above CosHigh none (defaults 0.05 / 0.25).
	CosLow, CosHigh float64
}

// Defense defaults; see the DefenseConfig field docs.
const (
	defaultDefenseDecay = 0.5
	defaultDownWeightAt = 0.6
	defaultDemoteAt     = 0.85
	defaultCosLow       = 0.05
	defaultCosHigh      = 0.25
)

// Norm-outlier penalty ramp: no penalty up to 3× (or 1/3×) the group's
// median feedback norm, full penalty at 9× (honest norms cluster; a
// mis-calibrated fabrication does not).
var (
	normDevLow  = math.Log(3)
	normDevHigh = math.Log(9)
)

// fpHistory bounds each worker's fingerprint set. Clearing a full set
// cannot mask a replayer — it re-offers the same fingerprint every
// round, so it re-enters the set immediately and is caught on the next.
const fpHistory = 512

// withDefaults resolves zero-valued knobs.
func (c DefenseConfig) withDefaults() DefenseConfig {
	if c.Decay == 0 {
		c.Decay = defaultDefenseDecay
	}
	if c.DownWeightAt == 0 {
		c.DownWeightAt = defaultDownWeightAt
	}
	if c.DemoteAt == 0 {
		c.DemoteAt = defaultDemoteAt
	}
	if c.CosLow == 0 {
		c.CosLow = defaultCosLow
	}
	if c.CosHigh == 0 {
		c.CosHigh = defaultCosHigh
	}
	return c
}

// defWorker is the cross-round state the defense keeps per worker.
type defWorker struct {
	suspicion  float64
	strikes    int // rounds at suspicion ≥ DemoteAt (the demotion budget)
	demoted    bool
	cosSum     float64
	cosRounds  int
	scored     int
	lastNorm   float64
	replayHits int
	fps        map[uint64]bool
}

// defense scores each round's feedbacks and maintains the per-worker
// suspicion state. One instance per server, single-threaded (observe
// runs inside apply).
type defense struct {
	cfg     DefenseConfig
	m       *cluster.Membership
	workers map[string]*defWorker
	weights map[string]float64 // reused across rounds
	norms   []float64          // per-group scratch
	meds    []float64          // median scratch (median sorts in place)
}

func newDefense(cfg DefenseConfig, m *cluster.Membership) *defense {
	return &defense{
		cfg:     cfg.withDefaults(),
		m:       m,
		workers: make(map[string]*defWorker),
		weights: make(map[string]float64),
	}
}

func (d *defense) worker(name string) *defWorker {
	w := d.workers[name]
	if w == nil {
		w = &defWorker{}
		d.workers[name] = w
	}
	return w
}

// observe scores this round's grouped feedbacks (r.groupNames /
// r.groupFeeds, as built by apply) and returns the per-worker
// aggregation weights — or nil when every weight is exactly 1, which
// keeps the engine on the legacy arithmetic path. Demotions fire
// inside (Membership.Fail + NoteFreeRiderDemotion) once a worker
// exhausts its strike budget.
func (d *defense) observe(r *round) map[string]float64 {
	clear(d.weights)
	flagged := false
	for j := range r.groupNames {
		names, fs := r.groupNames[j], r.groupFeeds[j]
		if len(names) == 0 {
			continue
		}
		n := len(fs)
		// Group sum: the leave-one-out reference for member i is
		// S − Fᵢ, and cos(Fᵢ, S−Fᵢ) needs only ⟨Fᵢ,S⟩, ‖Fᵢ‖ and ‖S‖ —
		// no per-member reference tensor is ever materialized.
		var sum *tensor.Tensor
		var sumSq float64
		if n >= 2 {
			sum = tensor.GetZeroed(fs[0].Shape()...)
			for _, f := range fs {
				sum.AxpyInPlace(1, f)
			}
			sumSq = tensor.Dot(sum, sum)
		}
		if cap(d.norms) < n {
			d.norms = make([]float64, n)
		}
		norms := d.norms[:n]
		for i, f := range fs {
			norms[i] = f.Norm2()
		}
		med := 0.0
		if n >= 2 {
			d.meds = append(d.meds[:0], norms...)
			med = median(d.meds)
		}
		for i, name := range names {
			w := d.worker(name)
			w.scored++
			norm := norms[i]
			p := 0.0
			fp := feedbackFingerprint(fs[i])
			if w.fps == nil {
				w.fps = make(map[uint64]bool)
			}
			if w.fps[fp] {
				w.replayHits++
				p = 1
			} else {
				if len(w.fps) >= fpHistory {
					clear(w.fps)
				}
				w.fps[fp] = true
			}
			if n >= 2 {
				dot := tensor.Dot(fs[i], sum)
				nf2 := norm * norm
				refSq := sumSq - 2*dot + nf2 // ‖S−Fᵢ‖²
				if norm > 0 && refSq > 0 {
					cos := (dot - nf2) / (norm * math.Sqrt(refSq))
					w.cosSum += cos
					w.cosRounds++
					if pc := rampDown(cos, d.cfg.CosLow, d.cfg.CosHigh); pc > p {
						p = pc
					}
				}
				if norm > 0 && med > 0 {
					dev := math.Abs(math.Log(norm / med))
					if pn := rampUp(dev, normDevLow, normDevHigh); pn > p {
						p = pn
					}
				}
			}
			w.lastNorm = norm
			w.suspicion = d.cfg.Decay*w.suspicion + (1-d.cfg.Decay)*p
			if !w.demoted && w.suspicion >= d.cfg.DemoteAt {
				w.strikes++
				if w.strikes >= d.m.SuspectThreshold() {
					w.demoted = true
					d.m.Fail(name)
					d.m.NoteFreeRiderDemotion(name)
				}
			}
			switch {
			case w.demoted:
				d.weights[name] = 0
				flagged = true
			case w.suspicion >= d.cfg.DownWeightAt:
				d.weights[name] = 1 - w.suspicion
				d.m.NoteDownWeight(name)
				flagged = true
			}
		}
		if sum != nil {
			tensor.Put(sum)
		}
	}
	if !flagged {
		return nil
	}
	return d.weights
}

// snapshots exports the per-worker state for Result.Faults.Defense.
func (d *defense) snapshots() map[string]cluster.DefenseScore {
	out := make(map[string]cluster.DefenseScore, len(d.workers))
	for name, w := range d.workers {
		avg := 0.0
		if w.cosRounds > 0 {
			avg = w.cosSum / float64(w.cosRounds)
		}
		out[name] = cluster.DefenseScore{
			Suspicion:    w.suspicion,
			AvgCosine:    avg,
			ReplayHits:   w.replayHits,
			ScoredRounds: w.scored,
			Demoted:      w.demoted,
		}
	}
	return out
}

// rampDown maps x ≤ lo to 1, x ≥ hi to 0, linear between.
func rampDown(x, lo, hi float64) float64 {
	switch {
	case x <= lo:
		return 1
	case x >= hi:
		return 0
	default:
		return (hi - x) / (hi - lo)
	}
}

// rampUp maps x ≤ lo to 0, x ≥ hi to 1, linear between.
func rampUp(x, lo, hi float64) float64 {
	switch {
	case x <= lo:
		return 0
	case x >= hi:
		return 1
	default:
		return (x - lo) / (hi - lo)
	}
}

// feedbackFingerprint hashes the FP32-quantized elements (FNV-1a over
// the float32 bit patterns). Quantizing before hashing makes the
// fingerprint survive an FP32 wire round-trip exactly —
// float32(float64(float32(v))) == float32(v) — so a replayed tensor is
// recognized across CompressNone and CompressFP32 alike.
func feedbackFingerprint(f *tensor.Tensor) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range f.Data {
		b := math.Float32bits(float32(v))
		for s := 0; s < 32; s += 8 {
			h ^= uint64(b>>s) & 0xFF
			h *= prime64
		}
	}
	return h
}
