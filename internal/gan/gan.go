// Package gan implements the GAN models and training primitives shared
// by the standalone baseline, FL-GAN and MD-GAN: a class-conditional
// generator, a two-headed (source + auxiliary class) discriminator in
// the ACGAN style the paper trains (§V-A(b)), the discriminator and
// generator learning steps of §II, and — central to MD-GAN — the error
// feedback F_n = ∂B̃(X^(g))/∂x computed by backpropagating the generator
// objective through the discriminator down to its *input*.
package gan

import (
	"fmt"
	"io"
	"math/rand"

	"mdgan/internal/nn"
	"mdgan/internal/opt"
	"mdgan/internal/tensor"
)

// Generator wraps the generator network Gw with latent sampling and
// optional class conditioning. Conditioning multiplies the latent
// vector element-wise with a learned per-class embedding (the Keras
// ACGAN construction), which keeps the core network input at ZDim so
// the paper's parameter counts are preserved exactly.
type Generator struct {
	Net     *nn.Sequential
	Embed   *nn.Param // (Classes, ZDim); nil when unconditional
	ZDim    int
	Classes int

	zCache   *tensor.Tensor
	labCache []int
	inBuf    *tensor.Tensor // reusable conditioned-latent buffer
	params   []*nn.Param    // cached combined parameter list
}

// NewGenerator builds a generator. classes == 0 yields an unconditional
// generator.
func NewGenerator(net *nn.Sequential, zdim, classes int, rng *rand.Rand) *Generator {
	g := &Generator{Net: net, ZDim: zdim, Classes: classes}
	if classes > 0 {
		w := tensor.New(classes, zdim)
		// Near-identity init: conditioning starts as a gentle per-class
		// modulation and sharpens as training progresses.
		for i := range w.Data {
			w.Data[i] = tensor.Elem(1 + 0.1*rng.NormFloat64())
		}
		g.Embed = &nn.Param{Name: "gen.embed", W: w, Grad: tensor.New(classes, zdim)}
	}
	return g
}

// SampleZ draws b latent vectors z ~ N(0,1)^ZDim and, when conditional,
// uniform class labels.
func (g *Generator) SampleZ(b int, rng *rand.Rand) (*tensor.Tensor, []int) {
	z := tensor.New(b, g.ZDim)
	for i := range z.Data {
		z.Data[i] = tensor.Elem(rng.NormFloat64())
	}
	var labels []int
	if g.Classes > 0 {
		labels = make([]int, b)
		for i := range labels {
			labels[i] = rng.Intn(g.Classes)
		}
	}
	return z, labels
}

// Forward maps latents (and labels, when conditional) to samples,
// caching what Backward needs. The returned tensor is a network-owned
// buffer, valid until the generator's next Forward call; callers that
// keep several generated batches alive at once must Clone them.
func (g *Generator) Forward(z *tensor.Tensor, labels []int, train bool) *tensor.Tensor {
	g.zCache, g.labCache = z, labels
	in := z
	if g.Embed != nil {
		if len(labels) != z.Dim(0) {
			panic(fmt.Sprintf("gan: %d labels for %d latents", len(labels), z.Dim(0)))
		}
		g.inBuf = tensor.Ensure(g.inBuf, z.Shape()...)
		in = g.inBuf
		for i := 0; i < z.Dim(0); i++ {
			e := g.Embed.W.Data[labels[i]*g.ZDim : (labels[i]+1)*g.ZDim]
			zi := z.Data[i*g.ZDim : (i+1)*g.ZDim]
			out := in.Data[i*g.ZDim : (i+1)*g.ZDim]
			for j := range zi {
				out[j] = zi[j] * e[j]
			}
		}
	}
	return g.Net.Forward(in, train)
}

// Generate is the convenience path: sample latents and run Forward.
func (g *Generator) Generate(b int, rng *rand.Rand, train bool) (*tensor.Tensor, []int) {
	z, labels := g.SampleZ(b, rng)
	return g.Forward(z, labels, train), labels
}

// Backward accumulates parameter gradients given ∂L/∂output — this is
// exactly what the MD-GAN server does with the merged worker feedbacks.
func (g *Generator) Backward(grad *tensor.Tensor) {
	din := g.Net.Backward(grad)
	if g.Embed != nil {
		din = din.Reshape(din.Dim(0), din.Size()/din.Dim(0))
		for i, lab := range g.labCache {
			zi := g.zCache.Data[i*g.ZDim : (i+1)*g.ZDim]
			gi := din.Data[i*g.ZDim : (i+1)*g.ZDim]
			eg := g.Embed.Grad.Data[lab*g.ZDim : (lab+1)*g.ZDim]
			for j := range zi {
				eg[j] += gi[j] * zi[j]
			}
		}
	}
}

// Params returns all learnable parameters (network + embedding). The
// slice is cached; it must not be appended to in place.
func (g *Generator) Params() []*nn.Param {
	if g.params == nil {
		net := g.Net.Params()
		g.params = make([]*nn.Param, 0, len(net)+1)
		g.params = append(g.params, net...)
		if g.Embed != nil {
			g.params = append(g.params, g.Embed)
		}
	}
	return g.params
}

// ZeroGrads clears all parameter gradients.
func (g *Generator) ZeroGrads() {
	for _, p := range g.Params() {
		p.Grad.Zero()
	}
}

// NumParams counts scalar parameters of the core network (the paper's
// |w|; the conditioning embedding is reported separately by EmbedParams).
func (g *Generator) NumParams() int { return g.Net.NumParams() }

// EmbedParams counts the conditioning embedding parameters (0 when
// unconditional).
func (g *Generator) EmbedParams() int {
	if g.Embed == nil {
		return 0
	}
	return g.Embed.W.Size()
}

// WriteParams serialises the generator's full learnable state (network
// parameters plus the conditioning embedding) — the checkpoint format.
func (g *Generator) WriteParams(w io.Writer) (int64, error) {
	n, err := g.Net.WriteParams(w)
	if err != nil {
		return n, err
	}
	if g.Embed != nil {
		n2, err := g.Embed.W.WriteTo(w)
		n += n2
		if err != nil {
			return n, fmt.Errorf("gan: write embedding: %w", err)
		}
	}
	return n, nil
}

// ReadParams restores state previously written by WriteParams on an
// identically-shaped generator.
func (g *Generator) ReadParams(r io.Reader) (int64, error) {
	n, err := g.Net.ReadParams(r)
	if err != nil {
		return n, err
	}
	if g.Embed != nil {
		var t tensor.Tensor
		n2, err := t.ReadFrom(r)
		n += n2
		if err != nil {
			return n, fmt.Errorf("gan: read embedding: %w", err)
		}
		if !t.SameShape(g.Embed.W) {
			return n, fmt.Errorf("gan: embedding shape %v, want %v", t.Shape(), g.Embed.W.Shape())
		}
		g.Embed.W.CopyFrom(&t)
	}
	return n, nil
}

// Clone deep-copies the generator.
func (g *Generator) Clone() *Generator {
	out := &Generator{Net: g.Net.Clone(), ZDim: g.ZDim, Classes: g.Classes}
	if g.Embed != nil {
		out.Embed = &nn.Param{Name: g.Embed.Name, W: g.Embed.W.Clone(), Grad: tensor.New(g.Embed.W.Shape()...)}
	}
	return out
}

// Discriminator is the two-headed ACGAN discriminator: a shared trunk
// producing features, a source head (1 logit: real vs generated) and an
// optional class head (K logits). With a nil class head it degrades to
// the vanilla GAN discriminator of §II.
type Discriminator struct {
	Trunk *nn.Sequential
	Src   *nn.Sequential
	Cls   *nn.Sequential // nil for unconditional GANs

	params []*nn.Param // cached combined parameter list
}

// Forward returns source logits (N, 1) and class logits (N, K) or nil.
func (d *Discriminator) Forward(x *tensor.Tensor, train bool) (src, cls *tensor.Tensor) {
	feat := d.Trunk.Forward(x, train)
	src = d.Src.Forward(feat, train)
	if d.Cls != nil {
		cls = d.Cls.Forward(feat, train)
	}
	return src, cls
}

// Backward merges head gradients into the trunk and returns ∂L/∂input —
// the error-feedback path of MD-GAN. clsGrad may be nil.
func (d *Discriminator) Backward(srcGrad, clsGrad *tensor.Tensor) *tensor.Tensor {
	featGrad := d.Src.Backward(srcGrad)
	if clsGrad != nil {
		if d.Cls == nil {
			panic("gan: class gradient without class head")
		}
		// featGrad is the Src head's gradient buffer; merging in place
		// is safe because it is consumed by the trunk before the head's
		// next Backward.
		featGrad.AddInPlace(d.Cls.Backward(clsGrad))
	}
	return d.Trunk.Backward(featGrad)
}

// Params returns all learnable parameters. The slice is cached (it is
// consulted on every ZeroGrads and optimiser step) and copied out of
// the per-network caches so no append aliases them.
func (d *Discriminator) Params() []*nn.Param {
	if d.params == nil {
		trunk, src := d.Trunk.Params(), d.Src.Params()
		var cls []*nn.Param
		if d.Cls != nil {
			cls = d.Cls.Params()
		}
		d.params = make([]*nn.Param, 0, len(trunk)+len(src)+len(cls))
		d.params = append(d.params, trunk...)
		d.params = append(d.params, src...)
		d.params = append(d.params, cls...)
	}
	return d.params
}

// ZeroGrads clears all parameter gradients.
func (d *Discriminator) ZeroGrads() {
	for _, p := range d.Params() {
		p.Grad.Zero()
	}
}

// NumParams counts scalar parameters (the paper's |θ|).
func (d *Discriminator) NumParams() int {
	n := d.Trunk.NumParams() + d.Src.NumParams()
	if d.Cls != nil {
		n += d.Cls.NumParams()
	}
	return n
}

// Clone deep-copies the discriminator.
func (d *Discriminator) Clone() *Discriminator {
	out := &Discriminator{Trunk: d.Trunk.Clone(), Src: d.Src.Clone()}
	if d.Cls != nil {
		out.Cls = d.Cls.Clone()
	}
	return out
}

// EncodedParamSize is the byte size of WriteParams output (the |θ|
// payload of a swap message at the compiled element width).
func (d *Discriminator) EncodedParamSize() int64 {
	n := d.Trunk.EncodedParamSize() + d.Src.EncodedParamSize()
	if d.Cls != nil {
		n += d.Cls.EncodedParamSize()
	}
	return n
}

// EncodedParamSizeAs is EncodedParamSize at an explicit wire dtype —
// the |θ| payload of an FP32-compressed swap.
func (d *Discriminator) EncodedParamSizeAs(dt byte) int64 {
	n := d.Trunk.EncodedParamSizeAs(dt) + d.Src.EncodedParamSizeAs(dt)
	if d.Cls != nil {
		n += d.Cls.EncodedParamSizeAs(dt)
	}
	return n
}

// AppendParams appends trunk, source head and class head parameters to
// dst — the allocation-free flavour of WriteParams for swap messages.
func (d *Discriminator) AppendParams(dst []byte) []byte {
	dst = d.Trunk.AppendParams(dst)
	dst = d.Src.AppendParams(dst)
	if d.Cls != nil {
		dst = d.Cls.AppendParams(dst)
	}
	return dst
}

// AppendParamsAs is AppendParams at an explicit wire dtype. ReadParams
// decodes either width (the tensor framing is self-describing), so a
// float64 build can swap 4-byte payloads and vice versa.
func (d *Discriminator) AppendParamsAs(dst []byte, dt byte) []byte {
	dst = d.Trunk.AppendParamsAs(dst, dt)
	dst = d.Src.AppendParamsAs(dst, dt)
	if d.Cls != nil {
		dst = d.Cls.AppendParamsAs(dst, dt)
	}
	return dst
}

// WriteParams serialises trunk, source head and class head in order.
func (d *Discriminator) WriteParams(w io.Writer) (int64, error) {
	n1, err := d.Trunk.WriteParams(w)
	if err != nil {
		return n1, err
	}
	n2, err := d.Src.WriteParams(w)
	if err != nil {
		return n1 + n2, err
	}
	if d.Cls == nil {
		return n1 + n2, nil
	}
	n3, err := d.Cls.WriteParams(w)
	return n1 + n2 + n3, err
}

// ReadParams loads parameters previously produced by WriteParams on an
// identically-shaped discriminator.
func (d *Discriminator) ReadParams(r io.Reader) (int64, error) {
	n1, err := d.Trunk.ReadParams(r)
	if err != nil {
		return n1, err
	}
	n2, err := d.Src.ReadParams(r)
	if err != nil {
		return n1 + n2, err
	}
	if d.Cls == nil {
		return n1 + n2, nil
	}
	n3, err := d.Cls.ReadParams(r)
	return n1 + n2 + n3, err
}

// LossConfig is the loss configuration shared by workers (which hold
// only a discriminator) and full GAN couples.
type LossConfig struct {
	// GenLoss selects the generator objective (paper log(1−D) or the
	// non-saturating heuristic).
	GenLoss nn.GenLossMode
	// ClsWeight weighs the ACGAN auxiliary classification loss; 0
	// disables it even when a class head exists.
	ClsWeight float64
}

// GAN couples a generator and discriminator with the loss
// configuration.
type GAN struct {
	G *Generator
	D *Discriminator
	LossConfig
}

// DiscStep performs one discriminator learning step (§II.1): gradient
// of Jdisc on a real batch (xr, lr) and a generated batch (xg, lg),
// followed by one optimiser update. Returns the discriminator loss.
func DiscStep(d *Discriminator, lc LossConfig, optD opt.Optimizer, xr *tensor.Tensor, lr []int, xg *tensor.Tensor, lg []int) float64 {
	d.ZeroGrads()
	loss := 0.0
	// Real batch, target 1.
	src, cls := d.Forward(xr, true)
	lSrc, gSrc := nn.BCEWithLogits(src, 1)
	loss += lSrc
	var gCls *tensor.Tensor
	if cls != nil && lc.ClsWeight > 0 {
		lCls, gc := nn.SoftmaxCrossEntropy(cls, lr)
		loss += lc.ClsWeight * lCls
		gCls = gc.ScaleInPlace(lc.ClsWeight)
	}
	d.Backward(gSrc, gCls)
	// Generated batch, target 0; the class head also trains on the
	// intended labels of the generated samples (ACGAN).
	src, cls = d.Forward(xg, true)
	lSrc, gSrc = nn.BCEWithLogits(src, 0)
	loss += lSrc
	gCls = nil
	if cls != nil && lc.ClsWeight > 0 && lg != nil {
		lCls, gc := nn.SoftmaxCrossEntropy(cls, lg)
		loss += lc.ClsWeight * lCls
		gCls = gc.ScaleInPlace(lc.ClsWeight)
	}
	d.Backward(gSrc, gCls)
	optD.Step(d.Params())
	return loss
}

// Feedback computes the MD-GAN error feedback F_n (§IV-B2): the
// gradient of the generator objective with respect to the generated
// batch xg, obtained by backpropagating through the discriminator to
// its input. The discriminator's parameter gradients are zeroed
// afterwards (no D update happens here). Returns (F_n, generator loss).
// F_n aliases the discriminator's input-gradient buffer and is valid
// until the discriminator's next Backward call.
func Feedback(d *Discriminator, lc LossConfig, xg *tensor.Tensor, lg []int) (*tensor.Tensor, float64) {
	src, cls := d.Forward(xg, true)
	loss, gSrc := nn.GeneratorLoss(src, lc.GenLoss)
	var gCls *tensor.Tensor
	if cls != nil && lc.ClsWeight > 0 && lg != nil {
		lCls, gc := nn.SoftmaxCrossEntropy(cls, lg)
		loss += lc.ClsWeight * lCls
		gCls = gc.ScaleInPlace(lc.ClsWeight)
	}
	fn := d.Backward(gSrc, gCls)
	d.ZeroGrads()
	return fn, loss
}

// GenStepLocal performs one local generator learning step (§II.2) as a
// standalone or FL-GAN node does: generate a batch, evaluate the
// generator objective through the local discriminator, backpropagate
// all the way into G and update. Returns the generator loss.
func GenStepLocal(g *GAN, optG opt.Optimizer, b int, rng *rand.Rand) float64 {
	z, labels := g.G.SampleZ(b, rng)
	xg := g.G.Forward(z, labels, true)
	fn, loss := Feedback(g.D, g.LossConfig, xg, labels)
	g.G.ZeroGrads()
	g.G.Backward(fn)
	optG.Step(g.G.Params())
	return loss
}

// Clone deep-copies the whole GAN (FL-GAN replicates the couple onto
// every worker).
func (g *GAN) Clone() *GAN {
	return &GAN{G: g.G.Clone(), D: g.D.Clone(), LossConfig: g.LossConfig}
}
