package gan

import (
	"math/rand"

	"mdgan/internal/nn"
)

// Arch is a GAN architecture specification: it knows how to build fresh
// generator and discriminator networks and carries the metadata
// (latent size, conditioning, output geometry) the trainers need.
type Arch struct {
	Name     string
	ZDim     int
	Classes  int   // number of classes for ACGAN conditioning (0 = none)
	OutShape []int // per-sample output shape, e.g. [1, 28, 28]
	BuildG   func(rng *rand.Rand) *nn.Sequential
	BuildD   func(rng *rand.Rand) (trunk *nn.Sequential, featDim int)
}

// SampleDim returns the flattened sample dimension (the paper's object
// size d, in scalar values).
func (a Arch) SampleDim() int {
	d := 1
	for _, v := range a.OutShape {
		d *= v
	}
	return d
}

// NewGAN instantiates the architecture with the given seed and loss
// configuration.
func (a Arch) NewGAN(seed int64, mode nn.GenLossMode, clsWeight float64) *GAN {
	rng := rand.New(rand.NewSource(seed))
	gnet := a.BuildG(rng)
	trunk, feat := a.BuildD(rng)
	d := &Discriminator{
		Trunk: trunk,
		Src:   nn.NewSequential(nn.NewDense(feat, 1, rng)),
	}
	cond := 0
	if a.Classes > 0 && clsWeight > 0 {
		d.Cls = nn.NewSequential(nn.NewDense(feat, a.Classes, rng))
		cond = a.Classes
	}
	g := NewGenerator(gnet, a.ZDim, cond, rng)
	return &GAN{G: g, D: d, LossConfig: LossConfig{GenLoss: mode, ClsWeight: clsWeight}}
}

// PaperMLP is the paper's MLP architecture for MNIST-shaped data
// (§V-A(b)): G = 512/512/784 fully-connected (716,560 parameters
// exactly), D = 512/512/11 (670,219 parameters exactly, with the
// 11-neuron output realised as a 1-logit source head plus a 10-logit
// class head).
func PaperMLP() Arch {
	return Arch{
		Name: "paper-mlp", ZDim: 100, Classes: 10, OutShape: []int{1, 28, 28},
		BuildG: func(rng *rand.Rand) *nn.Sequential {
			return nn.NewSequential(
				nn.NewDense(100, 512, rng),
				nn.NewReLU(),
				nn.NewDense(512, 512, rng),
				nn.NewReLU(),
				nn.NewDense(512, 784, rng),
				nn.NewTanh(),
				nn.NewReshape(1, 28, 28),
			)
		},
		BuildD: func(rng *rand.Rand) (*nn.Sequential, int) {
			return nn.NewSequential(
				nn.NewFlatten(),
				nn.NewDense(784, 512, rng),
				nn.NewLeakyReLU(0.2),
				nn.NewDense(512, 512, rng),
				nn.NewLeakyReLU(0.2),
			), 512
		},
	}
}

// ScaledMLP is a width-reduced MLP for fast experiments on 28×28
// digits: same depth and activations as PaperMLP, hidden width h.
func ScaledMLP(h int) Arch {
	return Arch{
		Name: "scaled-mlp", ZDim: 32, Classes: 10, OutShape: []int{1, 28, 28},
		BuildG: func(rng *rand.Rand) *nn.Sequential {
			return nn.NewSequential(
				nn.NewDense(32, h, rng),
				nn.NewReLU(),
				nn.NewDense(h, h, rng),
				nn.NewReLU(),
				nn.NewDense(h, 784, rng),
				nn.NewTanh(),
				nn.NewReshape(1, 28, 28),
			)
		},
		BuildD: func(rng *rand.Rand) (*nn.Sequential, int) {
			return nn.NewSequential(
				nn.NewFlatten(),
				nn.NewDense(784, h, rng),
				nn.NewLeakyReLU(0.2),
				nn.NewDense(h, h, rng),
				nn.NewLeakyReLU(0.2),
			), h
		},
	}
}

// PaperCNNMNIST follows the layer list of the paper's CNN architecture
// for MNIST: G = one 6,272-neuron fully-connected layer (128·7·7) plus
// transposed convolutions of 32 and 1 kernels (5×5, stride 2); D = six
// 3×3 convolutions of 16..512 kernels, a minibatch-discrimination layer
// and the 11-neuron output. The paper omits strides/padding, so exact
// parameter counts differ slightly (recorded in EXPERIMENTS.md).
func PaperCNNMNIST() Arch {
	return Arch{
		Name: "paper-cnn-mnist", ZDim: 100, Classes: 10, OutShape: []int{1, 28, 28},
		BuildG: func(rng *rand.Rand) *nn.Sequential {
			return nn.NewSequential(
				nn.NewDense(100, 6272, rng), // 128·7·7
				nn.NewReLU(),
				nn.NewReshape(128, 7, 7),
				nn.NewConvTranspose2D(128, 7, 7, 32, 5, 2, 2, 1, rng), // 7→14
				nn.NewReLU(),
				nn.NewConvTranspose2D(32, 14, 14, 1, 5, 2, 2, 1, rng), // 14→28
				nn.NewTanh(),
			)
		},
		BuildD: func(rng *rand.Rand) (*nn.Sequential, int) {
			return nn.NewSequential(
				nn.NewConv2D(1, 28, 28, 16, 3, 2, 1, rng), // 28→14
				nn.NewLeakyReLU(0.2),
				nn.NewConv2D(16, 14, 14, 32, 3, 1, 1, rng),
				nn.NewLeakyReLU(0.2),
				nn.NewConv2D(32, 14, 14, 64, 3, 2, 1, rng), // 14→7
				nn.NewLeakyReLU(0.2),
				nn.NewConv2D(64, 7, 7, 128, 3, 1, 1, rng),
				nn.NewLeakyReLU(0.2),
				nn.NewConv2D(128, 7, 7, 256, 3, 2, 1, rng), // 7→4
				nn.NewLeakyReLU(0.2),
				nn.NewConv2D(256, 4, 4, 512, 3, 1, 1, rng),
				nn.NewLeakyReLU(0.2),
				nn.NewFlatten(),
				nn.NewDense(512*4*4, 64, rng),
				nn.NewLeakyReLU(0.2),
				nn.NewMinibatchDiscrimination(64, 8, 4, rng),
			), 72
		},
	}
}

// PaperCNNCIFAR follows the paper's CNN architecture for CIFAR10:
// G = one 6,144-neuron fully-connected layer (384·4·4) plus transposed
// convolutions of 192, 96 and 3 kernels (5×5, stride 2); D = the same
// six-convolution stack as MNIST on 32×32×3 input.
func PaperCNNCIFAR() Arch {
	return Arch{
		Name: "paper-cnn-cifar", ZDim: 100, Classes: 10, OutShape: []int{3, 32, 32},
		BuildG: func(rng *rand.Rand) *nn.Sequential {
			return nn.NewSequential(
				nn.NewDense(100, 6144, rng), // 384·4·4
				nn.NewReLU(),
				nn.NewReshape(384, 4, 4),
				nn.NewConvTranspose2D(384, 4, 4, 192, 5, 2, 2, 1, rng), // 4→8
				nn.NewReLU(),
				nn.NewConvTranspose2D(192, 8, 8, 96, 5, 2, 2, 1, rng), // 8→16
				nn.NewReLU(),
				nn.NewConvTranspose2D(96, 16, 16, 3, 5, 2, 2, 1, rng), // 16→32
				nn.NewTanh(),
			)
		},
		BuildD: func(rng *rand.Rand) (*nn.Sequential, int) {
			return nn.NewSequential(
				nn.NewConv2D(3, 32, 32, 16, 3, 2, 1, rng), // 32→16
				nn.NewLeakyReLU(0.2),
				nn.NewConv2D(16, 16, 16, 32, 3, 1, 1, rng),
				nn.NewLeakyReLU(0.2),
				nn.NewConv2D(32, 16, 16, 64, 3, 2, 1, rng), // 16→8
				nn.NewLeakyReLU(0.2),
				nn.NewConv2D(64, 8, 8, 128, 3, 1, 1, rng),
				nn.NewLeakyReLU(0.2),
				nn.NewConv2D(128, 8, 8, 256, 3, 2, 1, rng), // 8→4
				nn.NewLeakyReLU(0.2),
				nn.NewConv2D(256, 4, 4, 512, 3, 1, 1, rng),
				nn.NewLeakyReLU(0.2),
				nn.NewFlatten(),
				nn.NewDense(512*4*4, 64, rng),
				nn.NewLeakyReLU(0.2),
				nn.NewMinibatchDiscrimination(64, 8, 4, rng),
			), 72
		},
	}
}

// ScaledCNN is a channel-reduced convolutional architecture for
// size×size images with c channels — the workhorse of the CNN
// experiments at laptop scale. Structure mirrors the paper CNNs
// (FC → two transposed convs; strided conv stack → minibatch
// discrimination).
func ScaledCNN(c, size, classes int) Arch {
	q := size / 4
	return Arch{
		Name: "scaled-cnn", ZDim: 32, Classes: classes, OutShape: []int{c, size, size},
		BuildG: func(rng *rand.Rand) *nn.Sequential {
			return nn.NewSequential(
				nn.NewDense(32, 16*q*q, rng),
				nn.NewReLU(),
				nn.NewReshape(16, q, q),
				nn.NewConvTranspose2D(16, q, q, 8, 5, 2, 2, 1, rng), // q→2q
				nn.NewReLU(),
				nn.NewConvTranspose2D(8, 2*q, 2*q, c, 5, 2, 2, 1, rng), // 2q→size
				nn.NewTanh(),
			)
		},
		BuildD: func(rng *rand.Rand) (*nn.Sequential, int) {
			return nn.NewSequential(
				nn.NewConv2D(c, size, size, 8, 3, 2, 1, rng), // size→size/2
				nn.NewLeakyReLU(0.2),
				nn.NewConv2D(8, size/2, size/2, 16, 3, 2, 1, rng), // →size/4
				nn.NewLeakyReLU(0.2),
				nn.NewFlatten(),
				nn.NewDense(16*q*q, 48, rng),
				nn.NewLeakyReLU(0.2),
				nn.NewMinibatchDiscrimination(48, 6, 3, rng),
			), 54
		},
	}
}

// FacesCNN is the Fig. 6 (CelebA) architecture adapted to the 32×32
// SynthFaces stand-in: G = one 16,384-neuron fully-connected layer
// (matching the paper's CelebA generator) plus two transposed
// convolutions of 128 and 3 kernels; D = convolution stack with a
// single-neuron output (the paper's CelebA D is unconditional).
func FacesCNN() Arch {
	return Arch{
		Name: "faces-cnn", ZDim: 100, Classes: 0, OutShape: []int{3, 32, 32},
		BuildG: func(rng *rand.Rand) *nn.Sequential {
			return nn.NewSequential(
				nn.NewDense(100, 16384, rng), // 256·8·8
				nn.NewReLU(),
				nn.NewReshape(256, 8, 8),
				nn.NewConvTranspose2D(256, 8, 8, 128, 5, 2, 2, 1, rng), // 8→16
				nn.NewReLU(),
				nn.NewConvTranspose2D(128, 16, 16, 3, 5, 2, 2, 1, rng), // 16→32
				nn.NewTanh(),
			)
		},
		BuildD: func(rng *rand.Rand) (*nn.Sequential, int) {
			return nn.NewSequential(
				nn.NewConv2D(3, 32, 32, 16, 3, 2, 1, rng), // 32→16
				nn.NewLeakyReLU(0.2),
				nn.NewConv2D(16, 16, 16, 32, 3, 2, 1, rng), // 16→8
				nn.NewLeakyReLU(0.2),
				nn.NewConv2D(32, 8, 8, 64, 3, 2, 1, rng), // 8→4
				nn.NewLeakyReLU(0.2),
				nn.NewFlatten(),
				nn.NewDense(64*4*4, 64, rng),
				nn.NewLeakyReLU(0.2),
			), 64
		},
	}
}

// ScaledFacesCNN is a lighter faces architecture for tests and quick
// Fig. 6 runs.
func ScaledFacesCNN() Arch {
	a := ScaledCNN(3, 32, 0)
	a.Name = "scaled-faces-cnn"
	return a
}

// RingMLP is a tiny unconditional GAN for the 2-D Gaussian-ring toy
// set — fast enough for unit tests and the quickstart example.
func RingMLP() Arch {
	return Arch{
		Name: "ring-mlp", ZDim: 8, Classes: 0, OutShape: []int{2},
		BuildG: func(rng *rand.Rand) *nn.Sequential {
			return nn.NewSequential(
				nn.NewDense(8, 32, rng),
				nn.NewReLU(),
				nn.NewDense(32, 32, rng),
				nn.NewReLU(),
				nn.NewDense(32, 2, rng),
			)
		},
		BuildD: func(rng *rand.Rand) (*nn.Sequential, int) {
			return nn.NewSequential(
				nn.NewDense(2, 32, rng),
				nn.NewLeakyReLU(0.2),
				nn.NewDense(32, 32, rng),
				nn.NewLeakyReLU(0.2),
			), 32
		},
	}
}
