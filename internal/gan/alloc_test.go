package gan

import (
	"math/rand"
	"testing"

	"mdgan/internal/nn"
	"mdgan/internal/opt"
	"mdgan/internal/tensor"
)

// TestTrainingIterationSteadyStateAllocs pins the allocation budget of
// one full local training iteration (DiscStep + GenStepLocal) on an MLP
// couple. The seed implementation allocated ~300 times per iteration;
// with pooled workspaces and layer-owned buffers the steady state is
// dominated by the loss-gradient tensors and latent sampling only. The
// budget of 30 is the ≥10× regression gate.
func TestTrainingIterationSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	gnet := nn.NewSequential(
		nn.NewDense(16, 48, rng), nn.NewReLU(),
		nn.NewDense(48, 64, rng), nn.NewTanh(),
	)
	dnet := nn.NewSequential(nn.NewDense(64, 48, rng), nn.NewLeakyReLU(0.2))
	src := nn.NewSequential(nn.NewDense(48, 1, rng))
	g := &GAN{
		G: NewGenerator(gnet, 16, 0, rng),
		D: &Discriminator{Trunk: dnet, Src: src},
	}
	optD := opt.NewAdam(opt.AdamConfig{})
	optG := opt.NewAdam(opt.AdamConfig{})
	xr := tensor.New(10, 64)
	for i := range xr.Data {
		xr.Data[i] = tensor.Elem(rng.NormFloat64())
	}
	step := func() {
		xg, lg := g.G.Generate(10, rng, true)
		DiscStep(g.D, g.LossConfig, optD, xr, nil, xg, lg)
		GenStepLocal(g, optG, 10, rng)
	}
	for i := 0; i < 3; i++ {
		step()
	}
	n := testing.AllocsPerRun(30, step)
	t.Logf("allocs per DiscStep+GenStepLocal: %v (seed baseline: ~308)", n)
	budget := 30.0
	if raceEnabled {
		budget *= 2 // sporadic pool misses under the race detector
	}
	if n > budget {
		t.Fatalf("training iteration allocates %v per step, budget %v", n, budget)
	}
}

// TestConditionalTrainingIterationSteadyStateAllocs covers the ACGAN
// path (class head + embedding) at a looser budget: the softmax
// cross-entropy still allocates its probability/gradient tensors.
func TestConditionalTrainingIterationSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	g := ScaledMLP(32).NewGAN(7, nn.GenLossNonSaturating, 1)
	optD := opt.NewAdam(opt.AdamConfig{})
	optG := opt.NewAdam(opt.AdamConfig{})
	xr := tensor.New(10, 784)
	lr := make([]int, 10)
	for i := range xr.Data {
		xr.Data[i] = tensor.Elem(rng.NormFloat64())
	}
	for i := range lr {
		lr[i] = rng.Intn(10)
	}
	step := func() {
		xg, lg := g.G.Generate(10, rng, true)
		DiscStep(g.D, g.LossConfig, optD, xr, lr, xg, lg)
		GenStepLocal(g, optG, 10, rng)
	}
	for i := 0; i < 3; i++ {
		step()
	}
	n := testing.AllocsPerRun(30, step)
	t.Logf("allocs per conditional iteration: %v", n)
	// The 784-feature MLP crosses the matmul parallel grain in most
	// layers (one fan-out closure each), and the class head adds a
	// softmax/gradient tensor per pass — a higher floor than the
	// unconditional couple.
	budget := 110.0
	if raceEnabled {
		budget *= 2 // sporadic pool misses under the race detector
	}
	if n > budget {
		t.Fatalf("conditional training iteration allocates %v per step, budget %v", n, budget)
	}
}
