package gan

import (
	"math/rand"
	"testing"

	"mdgan/internal/nn"
	"mdgan/internal/opt"
)

// TestPaperCNNSmoke runs one full discriminator step and one feedback
// computation through the paper-shaped CNN architectures — these are
// too heavy for routine training tests but must remain trainable.
func TestPaperCNNSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale CNNs are slow; skipped with -short")
	}
	for _, arch := range []Arch{PaperCNNMNIST(), PaperCNNCIFAR()} {
		t.Run(arch.Name, func(t *testing.T) {
			g := arch.NewGAN(1, nn.GenLossNonSaturating, 1)
			rng := rand.New(rand.NewSource(2))
			xg, lg := g.G.Generate(2, rng, true)
			xr := xg.Clone() // shape stand-in for real data
			optD := opt.NewAdam(opt.AdamConfig{LR: 1e-4})
			loss := DiscStep(g.D, g.LossConfig, optD, xr, lg, xg, lg)
			if loss <= 0 {
				t.Fatalf("disc loss %v", loss)
			}
			fn, _ := Feedback(g.D, g.LossConfig, xg, lg)
			if !fn.SameShape(xg) {
				t.Fatalf("feedback shape %v", fn.Shape())
			}
			// Backprop the feedback through the generator.
			g.G.ZeroGrads()
			g.G.Backward(fn)
			if norm := g.G.Net.GradNorm(); norm == 0 {
				t.Fatal("no generator gradient")
			}
		})
	}
}

// TestPaperCNNParamCounts records this implementation's parameter
// counts for the paper-shaped CNNs. The paper's published counts
// (628,058/286,048 for MNIST; 628,110/100,203 for CIFAR10) are not
// reconstructible from its layer lists (strides and paddings are
// unstated, and a 6-conv 16→512 stack with 3×3 kernels alone exceeds
// 1.5M parameters); the counts below are the honest counts of the
// as-described layer lists, pinned here so they cannot drift silently.
func TestPaperCNNParamCounts(t *testing.T) {
	mnist := PaperCNNMNIST().NewGAN(1, nn.GenLossNonSaturating, 1)
	if w := mnist.G.NumParams(); w != 736705 {
		t.Fatalf("MNIST CNN G params = %d", w)
	}
	if th := mnist.D.NumParams(); th != 2099683 {
		t.Fatalf("MNIST CNN D params = %d", th)
	}
	cifar := PaperCNNCIFAR().NewGAN(1, nn.GenLossNonSaturating, 1)
	if w := cifar.G.NumParams(); w != 2932035 {
		t.Fatalf("CIFAR CNN G params = %d", w)
	}
	if th := cifar.D.NumParams(); th != 2099971 {
		t.Fatalf("CIFAR CNN D params = %d", th)
	}
}

// TestFacesGeneratorMatchesPaperFC verifies the CelebA generator keeps
// the paper's 16,384-neuron fully-connected layer.
func TestFacesGeneratorMatchesPaperFC(t *testing.T) {
	g := FacesCNN().NewGAN(1, nn.GenLossNonSaturating, 0)
	first := g.G.Net.Layers[0].(*nn.Dense)
	if first.Out != 16384 {
		t.Fatalf("faces G first FC = %d neurons, paper says 16384", first.Out)
	}
}
