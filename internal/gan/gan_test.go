package gan

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mdgan/internal/dataset"
	"mdgan/internal/nn"
	"mdgan/internal/opt"
	"mdgan/internal/tensor"
)

// TestPaperMLPParamCountsExact pins the architecture to the numbers
// published in §V-A(b): G = 716,560 and D = 670,219 parameters.
func TestPaperMLPParamCountsExact(t *testing.T) {
	g := PaperMLP().NewGAN(1, nn.GenLossNonSaturating, 1)
	if n := g.G.NumParams(); n != 716560 {
		t.Fatalf("G params = %d, paper says 716560", n)
	}
	if n := g.D.NumParams(); n != 670219 {
		t.Fatalf("D params = %d, paper says 670219", n)
	}
	// The conditioning embedding (10 × 100) rides outside the count,
	// exactly as the paper's report does.
	if n := g.G.EmbedParams(); n != 1000 {
		t.Fatalf("embedding params = %d", n)
	}
}

func TestArchGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, a := range []Arch{PaperMLP(), ScaledMLP(64), PaperCNNMNIST(), PaperCNNCIFAR(), ScaledCNN(1, 28, 10), ScaledCNN(3, 32, 10), FacesCNN(), ScaledFacesCNN(), RingMLP()} {
		t.Run(a.Name, func(t *testing.T) {
			g := a.NewGAN(2, nn.GenLossNonSaturating, 1)
			x, labels := g.G.Generate(3, rng, true)
			wantShape := append([]int{3}, a.OutShape...)
			for i, d := range wantShape {
				if x.Dim(i) != d {
					t.Fatalf("generated shape %v, want %v", x.Shape(), wantShape)
				}
			}
			src, cls := g.D.Forward(x, true)
			if src.Dim(0) != 3 || src.Dim(1) != 1 {
				t.Fatalf("src logits shape %v", src.Shape())
			}
			if a.Classes > 0 {
				if cls == nil || cls.Dim(1) != a.Classes {
					t.Fatalf("class logits missing or wrong: %v", cls)
				}
				if len(labels) != 3 {
					t.Fatal("conditional generator must return labels")
				}
			} else if cls != nil {
				t.Fatal("unconditional arch must not have a class head")
			}
		})
	}
}

func TestGeneratorConditioningChangesOutput(t *testing.T) {
	g := ScaledMLP(32).NewGAN(3, nn.GenLossNonSaturating, 1)
	z := tensor.New(1, 32)
	rng := rand.New(rand.NewSource(4))
	for i := range z.Data {
		z.Data[i] = tensor.Elem(rng.NormFloat64())
	}
	a := g.G.Forward(z, []int{0}, false).Clone()
	b := g.G.Forward(z, []int{7}, false)
	if a.Equal(b, 1e-12) {
		t.Fatal("different classes should generate different outputs")
	}
}

func TestFeedbackShapeAndZeroedGrads(t *testing.T) {
	g := ScaledMLP(32).NewGAN(5, nn.GenLossNonSaturating, 1)
	rng := rand.New(rand.NewSource(6))
	xg, lg := g.G.Generate(4, rng, true)
	fn, loss := Feedback(g.D, g.LossConfig, xg, lg)
	if !fn.SameShape(xg) {
		t.Fatalf("feedback shape %v, want %v", fn.Shape(), xg.Shape())
	}
	if loss <= 0 {
		t.Fatalf("generator loss %v", loss)
	}
	// Feedback must not leave parameter gradients behind.
	for _, p := range g.D.Params() {
		for _, v := range p.Grad.Data {
			if v != 0 {
				t.Fatal("Feedback left discriminator gradients set")
			}
		}
	}
}

// TestFeedbackMatchesDirectBackprop verifies that applying the feedback
// to the generator is identical to backpropagating the generator loss
// end-to-end (standalone path): same Δw either way.
func TestFeedbackMatchesDirectBackprop(t *testing.T) {
	arch := ScaledMLP(32)
	g1 := arch.NewGAN(7, nn.GenLossNonSaturating, 1)
	g2 := arch.NewGAN(7, nn.GenLossNonSaturating, 1) // identical init

	rng1 := rand.New(rand.NewSource(8))
	z, labels := g1.G.SampleZ(5, rng1)

	// Path A: Feedback then G.Backward (the MD-GAN decomposition).
	xg := g1.G.Forward(z, labels, true)
	fn, _ := Feedback(g1.D, g1.LossConfig, xg, labels)
	g1.G.ZeroGrads()
	g1.G.Backward(fn)
	gradA := g1.G.Net.GradVector()

	// Path B: monolithic backprop through D∘G.
	xg2 := g2.G.Forward(z, labels, true)
	src, cls := g2.D.Forward(xg2, true)
	_, gSrc := nn.GeneratorLoss(src, g2.GenLoss)
	var gCls *tensor.Tensor
	if cls != nil {
		_, gc := nn.SoftmaxCrossEntropy(cls, labels)
		gCls = gc
	}
	dIn := g2.D.Backward(gSrc, gCls)
	g2.G.ZeroGrads()
	g2.G.Backward(dIn)
	gradB := g2.G.Net.GradVector()

	for i := range gradA {
		if math.Abs(gradA[i]-gradB[i]) > tensor.Tol(1e-12, 1e-6) {
			t.Fatalf("grad mismatch at %d: %g vs %g", i, gradA[i], gradB[i])
		}
	}
}

func TestDiscStepLearnsToSeparate(t *testing.T) {
	// Real data at +1, "generated" data at −1 in 2-D: after a few steps
	// the discriminator should assign higher source logits to real.
	arch := RingMLP()
	g := arch.NewGAN(9, nn.GenLossNonSaturating, 0)
	optD := opt.NewAdam(opt.AdamConfig{LR: 5e-3})
	rng := rand.New(rand.NewSource(10))
	mk := func(center float64) *tensor.Tensor {
		x := tensor.New(16, 2)
		for i := range x.Data {
			x.Data[i] = tensor.Elem(center + 0.1*rng.NormFloat64())
		}
		return x
	}
	var lastLoss float64
	for i := 0; i < 60; i++ {
		lastLoss = DiscStep(g.D, g.LossConfig, optD, mk(1), nil, mk(-1), nil)
	}
	if lastLoss > 0.7 {
		t.Fatalf("disc loss after training = %v, want < 0.7", lastLoss)
	}
	srcRealBuf, _ := g.D.Forward(mk(1), false)
	srcReal := srcRealBuf.Clone() // network-owned buffer: survives next Forward
	srcFake, _ := g.D.Forward(mk(-1), false)
	if srcReal.Mean() <= srcFake.Mean() {
		t.Fatalf("real logit %v must exceed fake logit %v", srcReal.Mean(), srcFake.Mean())
	}
}

func TestGANCloneIndependent(t *testing.T) {
	g := ScaledMLP(32).NewGAN(11, nn.GenLossNonSaturating, 1)
	c := g.Clone()
	rng := rand.New(rand.NewSource(12))
	z, labels := g.G.SampleZ(2, rng)
	a := g.G.Forward(z, labels, false)
	b := c.G.Forward(z, labels, false)
	if !a.Equal(b, 0) {
		t.Fatal("clone must reproduce generator output")
	}
	c.G.Net.Params()[0].W.Data[0] += 1
	if g.G.Net.Params()[0].W.Data[0] == c.G.Net.Params()[0].W.Data[0] {
		t.Fatal("clone shares parameter storage")
	}
}

func TestDiscriminatorParamSerialization(t *testing.T) {
	arch := ScaledCNN(1, 16, 10)
	a := arch.NewGAN(13, nn.GenLossNonSaturating, 1)
	b := arch.NewGAN(14, nn.GenLossNonSaturating, 1) // different init
	var buf bytes.Buffer
	n, err := a.D.WriteParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != a.D.EncodedParamSize() {
		t.Fatalf("wrote %d, EncodedParamSize %d", n, a.D.EncodedParamSize())
	}
	if _, err := b.D.ReadParams(&buf); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	x := tensor.New(2, 1, 16, 16)
	for i := range x.Data {
		x.Data[i] = tensor.Elem(rng.NormFloat64())
	}
	sa, ca := a.D.Forward(x, false)
	sb, cb := b.D.Forward(x, false)
	if !sa.Equal(sb, 0) || !ca.Equal(cb, 0) {
		t.Fatal("discriminators must agree after parameter transfer")
	}
}

// TestStandaloneLearnsRing trains the tiny GAN on the Gaussian ring and
// checks that generated points move onto the ring (radius ~2).
func TestStandaloneLearnsRing(t *testing.T) {
	ds := dataset.GaussianRing(2000, 8, 2.0, 0.05, 1)
	cfg := TrainConfig{
		Batch: 32, Iters: 600, DiscSteps: 1,
		GenLoss: nn.GenLossNonSaturating,
		// Discriminator slightly faster than the generator — the
		// standard stable regime for small GANs.
		OptG: opt.AdamConfig{LR: 1e-3}, OptD: opt.AdamConfig{LR: 4e-3},
		Seed: 42,
	}
	g := TrainStandalone(ds, RingMLP(), cfg, nil)
	rng := rand.New(rand.NewSource(77))
	x, _ := g.G.Generate(256, rng, false)
	// Mean radius of generated points should approach 2 (untrained
	// generators emit points near the origin, radius < 0.5).
	sum := 0.0
	for i := 0; i < x.Dim(0); i++ {
		sum += math.Hypot(x.At(i, 0), x.At(i, 1))
	}
	mean := sum / float64(x.Dim(0))
	if mean < 1.2 || mean > 2.8 {
		t.Fatalf("mean generated radius %v, want ~2", mean)
	}
}

func TestTrainConfigDefaults(t *testing.T) {
	c := TrainConfig{}.Defaults()
	if c.Batch != 10 || c.Iters != 100 || c.DiscSteps != 1 || c.ClsWeight != 1 {
		t.Fatalf("defaults = %+v", c)
	}
}
