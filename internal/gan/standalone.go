package gan

import (
	"math/rand"

	"mdgan/internal/dataset"
	"mdgan/internal/nn"
	"mdgan/internal/opt"
)

// TrainConfig carries the hyper-parameters shared by all three training
// algorithms (standalone, FL-GAN, MD-GAN).
type TrainConfig struct {
	Batch     int // b
	Iters     int // I: number of generator updates
	DiscSteps int // L: discriminator steps per generator update
	GenLoss   nn.GenLossMode
	ClsWeight float64
	OptG      opt.AdamConfig
	OptD      opt.AdamConfig
	Seed      int64
	// EvalEvery calls the evaluation hook every so many iterations
	// (0 disables evaluation).
	EvalEvery int
}

// Defaults fills zero fields with the experiment defaults.
func (c TrainConfig) Defaults() TrainConfig {
	if c.Batch == 0 {
		c.Batch = 10
	}
	if c.Iters == 0 {
		c.Iters = 100
	}
	switch {
	case c.DiscSteps == 0:
		c.DiscSteps = 1
	case c.DiscSteps < 0:
		c.DiscSteps = 0 // explicit "no discriminator updates"
	}
	if c.ClsWeight == 0 {
		c.ClsWeight = 1
	}
	return c
}

// EvalFunc observes the model during training (metric curves). It runs
// on the training goroutine; iter is the 1-based generator iteration.
type EvalFunc func(iter int, g *GAN)

// TrainStandalone trains arch on the full dataset on a single node —
// the paper's standalone-GAN baseline. The loop per iteration matches
// §II: sample a real batch, generate a batch, take L discriminator
// steps, then one generator step.
func TrainStandalone(ds *dataset.Dataset, arch Arch, cfg TrainConfig, eval EvalFunc) *GAN {
	cfg = cfg.Defaults()
	g := arch.NewGAN(cfg.Seed, cfg.GenLoss, cfg.ClsWeight)
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	sampler := dataset.NewSampler(ds, cfg.Seed+2000)
	optG := opt.NewAdam(cfg.OptG)
	optD := opt.NewAdam(cfg.OptD)

	for it := 1; it <= cfg.Iters; it++ {
		xr, lr := sampler.Sample(cfg.Batch)
		xg, lg := g.G.Generate(cfg.Batch, rng, true)
		for l := 0; l < cfg.DiscSteps; l++ {
			DiscStep(g.D, g.LossConfig, optD, xr, lr, xg, lg)
		}
		GenStepLocal(g, optG, cfg.Batch, rng)
		if eval != nil && cfg.EvalEvery > 0 && it%cfg.EvalEvery == 0 {
			eval(it, g)
		}
	}
	return g
}
