// Package linalg implements the small dense linear-algebra routines the
// evaluation metrics need: symmetric eigendecomposition (cyclic Jacobi),
// PSD matrix square roots, Cholesky factorisation and sample covariance.
// The Fréchet Inception Distance (FID) used throughout the paper's
// evaluation reduces to trace and sqrtm computations on feature
// covariances, which is exactly what lives here.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"mdgan/internal/tensor"
)

// SymEig computes the eigendecomposition of a symmetric matrix a
// (n, n) using the cyclic Jacobi method. It returns the eigenvalues and
// the matrix of eigenvectors V (columns), such that a = V·diag(vals)·Vᵀ.
// a is not modified.
func SymEig(a *tensor.Tensor) (vals []float64, vecs *tensor.Tensor, err error) {
	n := a.Dim(0)
	if a.Rank() != 2 || a.Dim(1) != n {
		return nil, nil, fmt.Errorf("linalg: SymEig needs square matrix, got %v", a.Shape())
	}
	// Work on a copy.
	m := a.Clone()
	v := tensor.New(n, n)
	for i := 0; i < n; i++ {
		v.Set(1, i, i)
	}
	// Convergence threshold: the off-diagonal mass cannot shrink below
	// the rotation round-off floor, which scales with the square of the
	// storage epsilon and the matrix magnitude — under the f32 build an
	// absolute 1e-22 would never be reached.
	frob2 := 0.0
	for _, x := range m.Data {
		frob2 += float64(x) * float64(x)
	}
	thresh := tensor.Tol(1e-22, 1e-12) * float64(n*n) * (1 + frob2)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < thresh {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(m, p, q, c, s)
				rotateCols(v, p, q, c, s)
			}
		}
		if sweep == maxSweeps-1 {
			return nil, nil, errors.New("linalg: Jacobi did not converge")
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	return vals, v, nil
}

// rotate applies the Jacobi rotation J(p,q,c,s) to m on both sides:
// m = Jᵀ m J.
func rotate(m *tensor.Tensor, p, q int, c, s float64) {
	n := m.Dim(0)
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(c*mip-s*miq, i, p)
		m.Set(s*mip+c*miq, i, q)
	}
	for i := 0; i < n; i++ {
		mpi, mqi := m.At(p, i), m.At(q, i)
		m.Set(c*mpi-s*mqi, p, i)
		m.Set(s*mpi+c*mqi, q, i)
	}
}

// rotateCols applies the rotation to the eigenvector accumulator
// (columns p and q).
func rotateCols(v *tensor.Tensor, p, q int, c, s float64) {
	n := v.Dim(0)
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(c*vip-s*viq, i, p)
		v.Set(s*vip+c*viq, i, q)
	}
}

// SqrtPSD returns the principal square root of a symmetric positive
// semi-definite matrix: B with B·B = a. Small negative eigenvalues from
// round-off are clamped to zero.
func SqrtPSD(a *tensor.Tensor) (*tensor.Tensor, error) {
	vals, v, err := SymEig(a)
	if err != nil {
		return nil, err
	}
	n := a.Dim(0)
	// B = V diag(sqrt(vals)) Vᵀ
	scaled := tensor.New(n, n) // V * diag(sqrt(vals))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ev := vals[j]
			if ev < 0 {
				ev = 0
			}
			scaled.Set(v.At(i, j)*math.Sqrt(ev), i, j)
		}
	}
	return tensor.MatMulT2(scaled, v), nil
}

// Cholesky returns the lower-triangular factor L with L·Lᵀ = a for a
// symmetric positive definite matrix.
func Cholesky(a *tensor.Tensor) (*tensor.Tensor, error) {
	n := a.Dim(0)
	if a.Rank() != 2 || a.Dim(1) != n {
		return nil, fmt.Errorf("linalg: Cholesky needs square matrix, got %v", a.Shape())
	}
	l := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (%g)", i, sum)
				}
				l.Set(math.Sqrt(sum), i, j)
			} else {
				l.Set(sum/l.At(j, j), i, j)
			}
		}
	}
	return l, nil
}

// Trace returns the trace of a square matrix.
func Trace(a *tensor.Tensor) float64 {
	n := a.Dim(0)
	s := 0.0
	for i := 0; i < n; i++ {
		s += a.At(i, i)
	}
	return s
}

// MeanCov returns the per-column mean (1, d) and the sample covariance
// (d, d) of a data matrix x (n, d), using the unbiased (n-1)
// normalisation when n > 1.
func MeanCov(x *tensor.Tensor) (mean, cov *tensor.Tensor) {
	n, d := x.Dim(0), x.Dim(1)
	mean = x.SumRows().Scale(1 / float64(n))
	// The centring workspace is pooled and the Gram product runs through
	// the packed GEMM's transposed-A path — MeanCov sits on the FID eval
	// hot loop, once per metrics pass.
	centered := tensor.Get(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			centered.Set(x.At(i, j)-mean.At(0, j), i, j)
		}
	}
	cov = tensor.New(d, d)
	tensor.MatMulT1Into(cov, centered, centered)
	tensor.Put(centered)
	norm := float64(n - 1)
	if n <= 1 {
		norm = 1
	}
	cov.ScaleInPlace(1 / norm)
	return mean, cov
}

// FrechetDistance computes the squared Fréchet distance between two
// Gaussians N(mu1, c1) and N(mu2, c2):
//
//	|mu1-mu2|² + Tr(c1 + c2 − 2·(c1·c2)^{1/2}).
//
// The matrix square root of the (generally non-symmetric) product c1·c2
// is evaluated through the symmetric similarity
// s·c2·s with s = c1^{1/2}, which has the same spectrum, keeping all
// numerics in symmetric PSD territory.
func FrechetDistance(mu1, c1, mu2, c2 *tensor.Tensor) (float64, error) {
	diff := tensor.Sub(mu1, mu2)
	d2 := 0.0
	for _, v := range diff.Data {
		d2 += float64(v) * float64(v)
	}
	s, err := SqrtPSD(c1)
	if err != nil {
		return 0, err
	}
	n := s.Dim(0)
	// s·c2·s via a pooled intermediate instead of two fresh n×n
	// allocations per metrics pass.
	tmp := tensor.Get(n, n)
	tensor.MatMulInto(tmp, s, c2)
	inner := tensor.Get(n, n)
	tensor.MatMulInto(inner, tmp, s)
	tensor.Put(tmp)
	symmetrise(inner)
	root, err := SqrtPSD(inner)
	tensor.Put(inner)
	if err != nil {
		return 0, err
	}
	fd := d2 + Trace(c1) + Trace(c2) - 2*Trace(root)
	if fd < 0 && fd > -1e-6 {
		fd = 0 // round-off
	}
	return fd, nil
}

// symmetrise replaces a with (a + aᵀ)/2 in place to scrub float noise.
func symmetrise(a *tensor.Tensor) {
	n := a.Dim(0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (a.At(i, j) + a.At(j, i)) / 2
			a.Set(v, i, j)
			a.Set(v, j, i)
		}
	}
}
