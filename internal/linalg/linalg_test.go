package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdgan/internal/tensor"
)

func randSPD(rng *rand.Rand, n int) *tensor.Tensor {
	a := tensor.New(n, n)
	for i := range a.Data {
		a.Data[i] = tensor.Elem(rng.NormFloat64())
	}
	// aᵀa + n·I is symmetric positive definite.
	spd := tensor.MatMulT1(a, a)
	for i := 0; i < n; i++ {
		spd.Set(spd.At(i, i)+float64(n), i, i)
	}
	return spd
}

func TestSymEigReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 10, 20} {
		a := randSPD(rng, n)
		vals, v, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct V diag(vals) Vᵀ.
		vd := tensor.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				vd.Set(v.At(i, j)*vals[j], i, j)
			}
		}
		rec := tensor.MatMulT2(vd, v)
		if !rec.Equal(a, tensor.Tol(1e-8, 1e-3)) {
			t.Fatalf("n=%d: eigendecomposition does not reconstruct input", n)
		}
	}
}

func TestSymEigKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := tensor.FromSlice([]tensor.Elem{2, 1, 1, 2}, 2, 2)
	vals, _, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Min(vals[0], vals[1]), math.Max(vals[0], vals[1])
	if math.Abs(lo-1) > tensor.Tol(1e-10, 1e-5) || math.Abs(hi-3) > tensor.Tol(1e-10, 1e-5) {
		t.Fatalf("eigenvalues = %v, want {1,3}", vals)
	}
}

func TestSqrtPSDSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 8, 16} {
		a := randSPD(rng, n)
		s, err := SqrtPSD(a)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.MatMul(s, s).Equal(a, tensor.Tol(1e-8, 1e-2)) {
			t.Fatalf("n=%d: sqrt(a)² != a", n)
		}
	}
}

func TestCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSPD(rng, 6)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.MatMulT2(l, l).Equal(a, tensor.Tol(1e-9, 1e-4)) {
		t.Fatal("L·Lᵀ != a")
	}
	// Upper triangle must be zero.
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if l.At(i, j) != 0 {
				t.Fatal("Cholesky factor not lower-triangular")
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := tensor.FromSlice([]tensor.Elem{1, 2, 2, 1}, 2, 2) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestMeanCov(t *testing.T) {
	// Two points (0,0) and (2,2): mean (1,1), cov [[2,2],[2,2]] (n-1 norm).
	x := tensor.FromSlice([]tensor.Elem{0, 0, 2, 2}, 2, 2)
	mean, cov := MeanCov(x)
	if mean.At(0, 0) != 1 || mean.At(0, 1) != 1 {
		t.Fatalf("mean = %v", mean.Data)
	}
	for _, v := range cov.Data {
		if math.Abs(float64(v)-2) > tensor.Tol(1e-12, 1e-6) {
			t.Fatalf("cov = %v", cov.Data)
		}
	}
}

func TestFrechetDistanceIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := randSPD(rng, 5)
	mu := tensor.New(1, 5)
	for i := range mu.Data {
		mu.Data[i] = tensor.Elem(rng.NormFloat64())
	}
	fd, err := FrechetDistance(mu, c, mu.Clone(), c.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fd) > tensor.Tol(1e-6, 1e-2) {
		t.Fatalf("FID(p, p) = %g, want ~0", fd)
	}
}

func TestFrechetDistanceClosedFormSpherical(t *testing.T) {
	// For N(0, I) vs N(m, 4I) in d dims:
	// |m|² + Tr(I + 4I − 2·sqrt(4I)·... ) = |m|² + d(1 + 4 − 2·2) = |m|² + d.
	d := 4
	c1 := tensor.New(d, d)
	c2 := tensor.New(d, d)
	for i := 0; i < d; i++ {
		c1.Set(1, i, i)
		c2.Set(4, i, i)
	}
	mu1 := tensor.New(1, d)
	mu2 := tensor.Full(3, 1, d) // |m|² = 9d
	fd, err := FrechetDistance(mu1, c1, mu2, c2)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(9*d) + float64(d)
	if math.Abs(fd-want) > tensor.Tol(1e-8, 1e-3) {
		t.Fatalf("FID = %g, want %g", fd, want)
	}
}

// Property: Fréchet distance is symmetric and non-negative.
func TestFrechetSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c1, c2 := randSPD(rng, n), randSPD(rng, n)
		mu1, mu2 := tensor.New(1, n), tensor.New(1, n)
		for i := 0; i < n; i++ {
			mu1.Data[i] = tensor.Elem(rng.NormFloat64())
			mu2.Data[i] = tensor.Elem(rng.NormFloat64())
		}
		ab, err1 := FrechetDistance(mu1, c1, mu2, c2)
		ba, err2 := FrechetDistance(mu2, c2, mu1, c1)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab >= 0 && math.Abs(ab-ba) < tensor.Tol(1e-6, 1e-3)*(1+math.Abs(ab))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
