// Package complexity implements the paper's analytic cost models:
// computation and memory complexity (Table II), communication
// complexity by link type (Table III), the instantiated communication
// costs of the CIFAR10 deployment (Table IV) and the ingress-traffic
// curves of Figure 2.
//
// Conventions, chosen to reproduce the paper's published numbers:
//   - BytesPerValue defaults to 8 (float64), which reproduces the
//     MD-GAN rows of Table IV exactly (e.g. b·d·8 = 0.23 MB for b=10 on
//     CIFAR10).
//   - Parameter messages (FL-GAN rounds, MD-GAN swaps) are multiplied
//     by OptStateFactor, default 3 (parameter + both Adam moments),
//     which reproduces the FL-GAN rows of Table IV (17.5 MB =
//     3·8·(|θ|+|w|)).
//   - BatchesPerTransfer defaults to 1: the paper's §IV-D1 text says a
//     worker receives two batches (2bd) but Table IV counts bd; the
//     default follows the table, the flag lets you follow the text.
package complexity

import "math"

// Params instantiates the paper's notation (Table I) plus the byte
// conventions above.
type Params struct {
	W     int // |w|: generator parameters
	Theta int // |θ|: discriminator parameters
	B     int // b: batch size
	D     int // d: data object size in scalars (e.g. 3072 for CIFAR10)
	N     int // N: number of workers
	K     int // k: generated batches per MD-GAN iteration
	M     int // m: local dataset size
	E     int // E: epochs per round/swap
	I     int // I: total iterations

	BytesPerValue      int // wire bytes per scalar (default 8)
	OptStateFactor     int // parameter-message multiplier (default 3)
	BatchesPerTransfer int // generated batches counted per C→W message (default 1)
}

// withDefaults returns p with the byte conventions defaulted.
func (p Params) withDefaults() Params {
	if p.BytesPerValue == 0 {
		p.BytesPerValue = 8
	}
	if p.OptStateFactor == 0 {
		p.OptStateFactor = 3
	}
	if p.BatchesPerTransfer == 0 {
		p.BatchesPerTransfer = 1
	}
	if p.E == 0 {
		p.E = 1
	}
	if p.K == 0 {
		p.K = 1
	}
	return p
}

// modelBytes is the size of one (θ+w) parameter message.
func (p Params) modelBytes() float64 {
	return float64(p.Theta+p.W) * float64(p.BytesPerValue*p.OptStateFactor)
}

// discBytes is the size of one swapped discriminator (θ).
func (p Params) discBytes() float64 {
	return float64(p.Theta) * float64(p.BytesPerValue*p.OptStateFactor)
}

// dataBytes is the size of one generated batch (b·d scalars).
func (p Params) dataBytes() float64 {
	return float64(p.B*p.D) * float64(p.BytesPerValue)
}

// TableII holds the computation/memory complexity expressions of
// Table II, evaluated numerically (unit-less operation counts — the
// paper's O(·) arguments).
type TableII struct {
	FLComputeServer float64 // O(IbN(|w|+|θ|)/(mE))
	FLMemoryServer  float64 // O(N(|w|+|θ|))
	FLComputeWorker float64 // O(Ib(|w|+|θ|))
	FLMemoryWorker  float64 // O(|w|+|θ|)
	MDComputeServer float64 // O(Ib(dN+k|w|))
	MDMemoryServer  float64 // O(b(dN+k|w|))
	MDComputeWorker float64 // O(Ib|θ|)
	MDMemoryWorker  float64 // O(|θ|)
}

// ComputeTableII evaluates the Table II expressions for p.
func ComputeTableII(p Params) TableII {
	p = p.withDefaults()
	w, th := float64(p.W), float64(p.Theta)
	b, d := float64(p.B), float64(p.D)
	n, k := float64(p.N), float64(p.K)
	i, m, e := float64(p.I), float64(p.M), float64(p.E)
	return TableII{
		FLComputeServer: i * b * n * (w + th) / (m * e),
		FLMemoryServer:  n * (w + th),
		FLComputeWorker: i * b * (w + th),
		FLMemoryWorker:  w + th,
		MDComputeServer: i * b * (d*n + k*w),
		MDMemoryServer:  b * (d*n + k*w),
		MDComputeWorker: i * b * th,
		MDMemoryWorker:  th,
	}
}

// WorkerReduction returns the Table II headline: the factor by which
// MD-GAN reduces per-worker computation relative to FL-GAN
// ((|w|+|θ|)/|θ|, ≈ 2 when G and D are similar).
func WorkerReduction(p Params) float64 {
	return float64(p.W+p.Theta) / float64(p.Theta)
}

// TableIII holds the per-link communication sizes (bytes) and message
// counts of Table III for one full training run.
type TableIII struct {
	// Per-message sizes in bytes.
	FLCtoWServer float64 // N(θ+w): server egress per round
	FLCtoWWorker float64 // θ+w: worker ingress per round
	FLWtoCWorker float64 // θ+w: worker egress per round
	FLWtoCServer float64 // N(θ+w): server ingress per round
	FLRounds     float64 // Ib/(mE)

	MDCtoWServer float64 // bdN per iteration (×BatchesPerTransfer)
	MDCtoWWorker float64 // bd per iteration
	MDWtoCWorker float64 // bd per iteration (error feedback)
	MDWtoCServer float64 // bdN per iteration
	MDIterations float64 // I
	MDWtoWWorker float64 // θ per swap
	MDSwaps      float64 // Ib/(mE)
}

// ComputeTableIII evaluates Table III for p.
func ComputeTableIII(p Params) TableIII {
	p = p.withDefaults()
	rounds := float64(p.I*p.B) / (float64(p.M) * float64(p.E))
	bd := p.dataBytes() * float64(p.BatchesPerTransfer)
	return TableIII{
		FLCtoWServer: float64(p.N) * p.modelBytes(),
		FLCtoWWorker: p.modelBytes(),
		FLWtoCWorker: p.modelBytes(),
		FLWtoCServer: float64(p.N) * p.modelBytes(),
		FLRounds:     rounds,

		MDCtoWServer: float64(p.N) * bd,
		MDCtoWWorker: bd,
		MDWtoCWorker: p.dataBytes(), // feedback: one float per feature
		MDWtoCServer: float64(p.N) * p.dataBytes(),
		MDIterations: float64(p.I),
		MDWtoWWorker: p.discBytes(),
		MDSwaps:      rounds,
	}
}

// Fig2Series is one batch-size sweep of Figure 2: maximal ingress
// traffic per communication, for workers (plain lines) and the server
// (dotted lines), in bytes.
type Fig2Series struct {
	B        []int
	MDWorker []float64
	MDServer []float64
	FLWorker []float64
	FLServer []float64
}

// ComputeFig2 evaluates the Figure 2 curves for the given batch sizes.
// Worker ingress per MD-GAN communication is the larger of the batch
// message and the swapped discriminator; FL-GAN ingress is
// batch-independent (the crossing of those lines is the figure's
// point).
func ComputeFig2(p Params, batches []int) Fig2Series {
	p = p.withDefaults()
	s := Fig2Series{B: append([]int(nil), batches...)}
	for _, b := range batches {
		q := p
		q.B = b
		bd := q.dataBytes() * float64(q.BatchesPerTransfer)
		s.MDWorker = append(s.MDWorker, math.Max(bd, q.discBytes()))
		s.MDServer = append(s.MDServer, float64(q.N)*q.dataBytes())
		s.FLWorker = append(s.FLWorker, q.modelBytes())
		s.FLServer = append(s.FLServer, float64(q.N)*q.modelBytes())
	}
	return s
}

// CrossoverBatch returns the batch size at which the MD-GAN worker
// ingress line crosses the FL-GAN worker line — the "MD-GAN is
// competitive for smaller batch sizes" threshold of §IV-D1 (b ≈ 550 for
// MNIST, ≈ 400 for CIFAR10 in the paper's setting).
func CrossoverBatch(p Params) float64 {
	p = p.withDefaults()
	perSample := float64(p.D) * float64(p.BytesPerValue) * float64(p.BatchesPerTransfer)
	return p.modelBytes() / perSample
}

// TableIVRow is one column of Table IV (a batch-size configuration).
type TableIVRow struct {
	B            int
	FLCtoWServer float64 // bytes
	FLCtoWWorker float64
	FLWtoCWorker float64
	FLWtoCServer float64
	FLTotalComms float64
	MDCtoWServer float64
	MDCtoWWorker float64
	MDWtoCWorker float64
	MDWtoCServer float64
	MDTotalComms float64
	MDWtoWWorker float64
	MDTotalSwaps float64
}

// ComputeTableIV evaluates Table IV for the given batch sizes.
func ComputeTableIV(p Params, batches []int) []TableIVRow {
	rows := make([]TableIVRow, 0, len(batches))
	for _, b := range batches {
		q := p
		q.B = b
		t := ComputeTableIII(q)
		rows = append(rows, TableIVRow{
			B:            b,
			FLCtoWServer: t.FLCtoWServer,
			FLCtoWWorker: t.FLCtoWWorker,
			FLWtoCWorker: t.FLWtoCWorker,
			FLWtoCServer: t.FLWtoCServer,
			FLTotalComms: t.FLRounds,
			MDCtoWServer: t.MDCtoWServer,
			MDCtoWWorker: t.MDCtoWWorker,
			MDWtoCWorker: t.MDWtoCWorker,
			MDWtoCServer: t.MDWtoCServer,
			MDTotalComms: t.MDIterations,
			MDWtoWWorker: t.MDWtoWWorker,
			MDTotalSwaps: t.MDSwaps,
		})
	}
	return rows
}

// MB converts bytes to the paper's megabytes (MiB).
func MB(bytes float64) float64 { return bytes / (1024 * 1024) }

// PaperCIFARParams returns the parameters of the paper's Table IV
// deployment: CIFAR10 (d = 3072), N = 10 workers, I = 50,000
// iterations, the paper's published CNN parameter counts, 50,000
// training images split evenly.
func PaperCIFARParams() Params {
	return Params{
		W:     628110,
		Theta: 100203,
		D:     3072,
		N:     10,
		M:     5000,
		E:     1,
		I:     50000,
	}
}

// PaperMNISTParams returns the MNIST equivalent (MLP architecture
// published counts, 60,000 images over 10 workers).
func PaperMNISTParams() Params {
	return Params{
		W:     716560,
		Theta: 670219,
		D:     784,
		N:     10,
		M:     6000,
		E:     1,
		I:     50000,
	}
}
