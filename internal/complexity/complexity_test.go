package complexity

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Abs(want) {
		t.Fatalf("%s = %g, want %g (±%g%%)", what, got, want, tol*100)
	}
}

// TestTableIVReproducesPaperNumbers checks our byte conventions against
// the paper's published Table IV values for the CIFAR10 deployment with
// 10 workers.
func TestTableIVReproducesPaperNumbers(t *testing.T) {
	rows := ComputeTableIV(PaperCIFARParams(), []int{10, 100})
	b10, b100 := rows[0], rows[1]

	// FL-GAN: 175 MB at server, 17.5 MB at worker, both batch sizes.
	approx(t, MB(b10.FLCtoWServer), 175, 0.05, "FL C→W (C) b=10")
	approx(t, MB(b10.FLCtoWWorker), 17.5, 0.05, "FL C→W (W) b=10")
	approx(t, MB(b100.FLWtoCWorker), 17.5, 0.05, "FL W→C (W) b=100")
	approx(t, MB(b100.FLWtoCServer), 175, 0.05, "FL W→C (C) b=100")

	// FL-GAN round counts: 100 and 1,000.
	approx(t, b10.FLTotalComms, 100, 0.001, "FL rounds b=10")
	approx(t, b100.FLTotalComms, 1000, 0.001, "FL rounds b=100")

	// MD-GAN: 2.30 MB / 0.23 MB at b=10; ×10 at b=100.
	approx(t, MB(b10.MDCtoWServer), 2.30, 0.05, "MD C→W (C) b=10")
	approx(t, MB(b10.MDCtoWWorker), 0.23, 0.05, "MD C→W (W) b=10")
	approx(t, MB(b100.MDCtoWServer), 23.0, 0.05, "MD C→W (C) b=100")
	approx(t, MB(b100.MDWtoCWorker), 2.30, 0.05, "MD W→C (W) b=100")

	// MD-GAN communication counts: 50,000 iterations; 100/1,000 swaps.
	approx(t, b10.MDTotalComms, 50000, 0.001, "MD comms")
	approx(t, b10.MDTotalSwaps, 100, 0.001, "MD swaps b=10")
	approx(t, b100.MDTotalSwaps, 1000, 0.001, "MD swaps b=100")
}

// TestTableIIShape checks the structural claims of Table II: the
// per-worker compute/memory reduction of MD-GAN is (|w|+|θ|)/|θ| — a
// factor ≈ 2 when generator and discriminator are similar.
func TestTableIIShape(t *testing.T) {
	p := PaperMNISTParams()
	p.B, p.K, p.I = 10, 1, 50000
	tab := ComputeTableII(p)
	if tab.MDComputeWorker >= tab.FLComputeWorker {
		t.Fatal("MD-GAN worker compute must be below FL-GAN")
	}
	if tab.MDMemoryWorker >= tab.FLMemoryWorker {
		t.Fatal("MD-GAN worker memory must be below FL-GAN")
	}
	red := WorkerReduction(p)
	if red < 1.9 || red > 2.2 {
		t.Fatalf("worker reduction factor %g, want ≈ 2 (MLP: G and D similar)", red)
	}
	// Ratios must equal the reduction factor exactly.
	approx(t, tab.FLComputeWorker/tab.MDComputeWorker, red, 1e-9, "compute ratio")
	approx(t, tab.FLMemoryWorker/tab.MDMemoryWorker, red, 1e-9, "memory ratio")
}

// TestFig2Shape checks the qualitative claims of Figure 2: FL-GAN lines
// are flat in b, MD-GAN lines grow linearly, and they cross at a batch
// size of a few hundred images for the paper's model sizes.
func TestFig2Shape(t *testing.T) {
	batches := []int{1, 10, 100, 1000, 10000}
	for name, p := range map[string]Params{
		"mnist": PaperMNISTParams(),
		"cifar": PaperCIFARParams(),
	} {
		s := ComputeFig2(p, batches)
		for i := 1; i < len(batches); i++ {
			if s.FLWorker[i] != s.FLWorker[0] {
				t.Fatalf("%s: FL worker line not flat", name)
			}
			if s.MDServer[i] <= s.MDServer[i-1] {
				t.Fatalf("%s: MD server line not increasing", name)
			}
		}
		// MD cheaper than FL at b=10, more expensive at b=10,000.
		if s.MDWorker[1] >= s.FLWorker[1] {
			t.Fatalf("%s: MD-GAN must win at b=10", name)
		}
		if s.MDWorker[4] <= s.FLWorker[4] {
			t.Fatalf("%s: FL-GAN must win at b=10000", name)
		}
		// The absolute crossover depends on byte conventions the paper
		// does not state (see EXPERIMENTS.md); what must hold is that it
		// exists, is positive, and sits between the plotted extremes.
		cross := CrossoverBatch(p)
		if cross < 10 || cross > 10000 {
			t.Fatalf("%s: crossover %g outside plotted range", name, cross)
		}
	}
}

// TestCrossoverOrdering: the paper finds the MNIST crossover above the
// CIFAR10 one (≈550 vs ≈400) because CIFAR images are larger relative
// to the model. Our conventions must preserve that ordering.
func TestCrossoverOrdering(t *testing.T) {
	mnist := CrossoverBatch(PaperMNISTParams())
	cifar := CrossoverBatch(PaperCIFARParams())
	if mnist <= cifar {
		t.Fatalf("crossover(MNIST)=%g must exceed crossover(CIFAR10)=%g", mnist, cifar)
	}
}

func TestDefaults(t *testing.T) {
	p := Params{W: 1, Theta: 1, D: 1, N: 1, M: 1, I: 1}.withDefaults()
	if p.BytesPerValue != 8 || p.OptStateFactor != 3 || p.BatchesPerTransfer != 1 || p.E != 1 || p.K != 1 {
		t.Fatalf("defaults = %+v", p)
	}
}

func TestSwapTrafficScalesWithTheta(t *testing.T) {
	p := PaperCIFARParams()
	p.B = 10
	a := ComputeTableIII(p)
	p.Theta *= 2
	b := ComputeTableIII(p)
	approx(t, b.MDWtoWWorker/a.MDWtoWWorker, 2, 1e-9, "swap bytes vs θ")
	// Feedback traffic must NOT depend on θ (it is bd).
	if a.MDWtoCWorker != b.MDWtoCWorker {
		t.Fatal("feedback size must be independent of θ")
	}
}
