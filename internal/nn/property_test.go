package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdgan/internal/tensor"
)

// Property-based tests on the algebraic structure of the layers —
// complements the finite-difference gradient checks with invariants
// that must hold for any input.

// Property: a Dense layer is affine — f(x+y) − f(y) = f(x) − f(0).
func TestDenseAffineProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, out, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(4)
		d := NewDense(in, out, rng)
		x := randInput(rng, n, in)
		y := randInput(rng, n, in)
		zero := tensor.New(n, in)
		// Forward outputs are layer-owned buffers: clone the first of
		// each pair before the second overwrites it.
		lhs := tensor.Sub(d.Forward(tensor.Add(x, y), false).Clone(), d.Forward(y, false))
		rhs := tensor.Sub(d.Forward(x, false).Clone(), d.Forward(zero, false))
		return lhs.Equal(rhs, tensor.Tol(1e-9, 1e-4))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LeakyReLU is positively homogeneous — f(a·x) = a·f(x) for
// a > 0.
func TestLeakyReLUHomogeneityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.1 + rng.Float64()*5
		l := NewLeakyReLU(0.2)
		x := randInput(rng, 2, 7)
		lhs := l.Forward(x.Scale(a), false).Clone() // layer-owned buffer
		rhs := l.Forward(x, false).Scale(a)
		return lhs.Equal(rhs, tensor.Tol(1e-9, 1e-5))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax is invariant to a constant shift of every logit in
// a row.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 100 {
			shift = 3
		}
		rng := rand.New(rand.NewSource(seed))
		x := randInput(rng, 3, 5)
		shifted := x.Apply(func(v float64) float64 { return v + shift })
		return Softmax(x).Equal(Softmax(shifted), tensor.Tol(1e-9, 1e-5))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: sigmoid(−s) = 1 − sigmoid(s), so BCE(s, 1) = BCE(−s, 0).
func TestBCESymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randInput(rng, 6, 1)
		neg := x.Scale(-1)
		l1, g1 := BCEWithLogits(x, 1)
		l0, g0 := BCEWithLogits(neg, 0)
		if math.Abs(l1-l0) > tensor.Tol(1e-9, 1e-5) {
			return false
		}
		for i := range g1.Data {
			if math.Abs(float64(g1.Data[i])+float64(g0.Data[i])) > tensor.Tol(1e-9, 1e-5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: batch-norm training output has per-channel mean ~0 and
// variance ~1 when γ=1, β=0.
func TestBatchNormNormalisesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(4)
		n := 8 + rng.Intn(8)
		bn := NewBatchNorm(c)
		x := randInput(rng, n, c)
		// Shift/scale the raw data arbitrarily.
		for i := range x.Data {
			x.Data[i] = x.Data[i]*3 + 7
		}
		y := bn.Forward(x, true)
		for ch := 0; ch < c; ch++ {
			sum, sq := 0.0, 0.0
			for i := 0; i < n; i++ {
				v := y.At(i, ch)
				sum += v
				sq += v * v
			}
			mean := sum / float64(n)
			variance := sq/float64(n) - mean*mean
			if math.Abs(mean) > tensor.Tol(1e-6, 1e-4) || math.Abs(variance-1) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Conv2D with a 1×1 kernel, stride 1, no padding is exactly a
// per-pixel Dense layer over channels.
func TestConv1x1EqualsDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inC, outC, hw := 1+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(4)
		conv := NewConv2D(inC, hw, hw, outC, 1, 1, 0, rng)
		x := randInput(rng, 2, inC, hw, hw)
		y := conv.Forward(x, false)
		// Reference: y[n,oc,p] = Σ_ic W[oc,ic]·x[n,ic,p] + b[oc].
		for n := 0; n < 2; n++ {
			for oc := 0; oc < outC; oc++ {
				for p := 0; p < hw*hw; p++ {
					want := conv.B.W.Data[oc]
					for ic := 0; ic < inC; ic++ {
						want += conv.W.W.Data[oc*inC+ic] * x.Data[(n*inC+ic)*hw*hw+p]
					}
					got := y.Data[(n*outC+oc)*hw*hw+p]
					if math.Abs(float64(got)-float64(want)) > tensor.Tol(1e-9, 1e-5) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: ConvTranspose2D is the exact adjoint of Conv2D with shared
// geometry: ⟨conv(x), y⟩ = ⟨x, convT(y)⟩ when they share weights and
// zero bias.
func TestConvTransposeAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// conv: (inC, 8, 8) → (outC, 4, 4) with k=4, s=2, p=1.
		inC, outC := 1+rng.Intn(2), 1+rng.Intn(2)
		conv := NewConv2D(inC, 8, 8, outC, 4, 2, 1, rng)
		convT := NewConvTranspose2D(outC, 4, 4, inC, 4, 2, 1, 0, rng)
		// Share weights: conv W is (outC, inC·k·k); convT W is
		// (outC, inC·k·k) too (its "in" is conv's out).
		convT.W.W.CopyFrom(conv.W.W.Reshape(convT.W.W.Shape()...))
		conv.B.W.Zero()
		convT.B.W.Zero()

		x := randInput(rng, 1, inC, 8, 8)
		y := randInput(rng, 1, outC, 4, 4)
		lhs := tensor.Dot(conv.Forward(x, false), y)
		rhs := tensor.Dot(x, convT.Forward(y, false))
		return math.Abs(lhs-rhs) < tensor.Tol(1e-9, 1e-4)*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: minibatch discrimination is permutation-equivariant — the
// similarity features of sample i do not depend on the order of the
// other samples.
func TestMinibatchDiscriminationPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewMinibatchDiscrimination(4, 3, 2, rng)
		n := 3 + rng.Intn(4)
		x := randInput(rng, n, 4)
		y := l.Forward(x, false).Clone()
		// Reverse the batch.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = n - 1 - i
		}
		yRev := l.Forward(x.Gather(idx), false)
		for i := 0; i < n; i++ {
			for j := 0; j < 7; j++ {
				if math.Abs(y.At(i, j)-yRev.At(n-1-i, j)) > tensor.Tol(1e-9, 1e-5) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
