package nn

import (
	"math"

	"mdgan/internal/tensor"
)

// LeakyReLU applies max(x, alpha*x) element-wise. Alpha = 0 gives plain
// ReLU.
type LeakyReLU struct {
	Alpha float64
	x     *tensor.Tensor
}

// NewLeakyReLU returns a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// NewReLU returns a plain ReLU.
func NewReLU() *LeakyReLU { return &LeakyReLU{} }

// Forward applies the activation.
func (l *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.x = x
	a := l.Alpha
	return x.Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return a * v
	})
}

// Backward gates the incoming gradient by the activation derivative.
func (l *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	a := l.Alpha
	for i, v := range l.x.Data {
		if v > 0 {
			out.Data[i] = grad.Data[i]
		} else {
			out.Data[i] = a * grad.Data[i]
		}
	}
	return out
}

// Params reports no learnables.
func (l *LeakyReLU) Params() []*Param { return nil }

// Clone returns a copy.
func (l *LeakyReLU) Clone() Layer { return &LeakyReLU{Alpha: l.Alpha} }

// Sigmoid applies 1/(1+exp(−x)) element-wise.
type Sigmoid struct {
	y *tensor.Tensor
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s.y = x.Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	return s.y
}

// Backward multiplies by y(1−y).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	for i, y := range s.y.Data {
		out.Data[i] = grad.Data[i] * y * (1 - y)
	}
	return out
}

// Params reports no learnables.
func (s *Sigmoid) Params() []*Param { return nil }

// Clone returns a copy.
func (s *Sigmoid) Clone() Layer { return &Sigmoid{} }

// Tanh applies the hyperbolic tangent element-wise; the conventional
// output activation of image generators (pixels in [−1, 1]).
type Tanh struct {
	y *tensor.Tensor
}

// NewTanh returns a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	t.y = x.Apply(math.Tanh)
	return t.y
}

// Backward multiplies by 1−y².
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	for i, y := range t.y.Data {
		out.Data[i] = grad.Data[i] * (1 - y*y)
	}
	return out
}

// Params reports no learnables.
func (t *Tanh) Params() []*Param { return nil }

// Clone returns a copy.
func (t *Tanh) Clone() Layer { return &Tanh{} }
