package nn

import (
	"math"

	"mdgan/internal/tensor"
)

// Activation outputs and input gradients live in layer-owned buffers
// (valid until the layer's next Forward/Backward call), so steady-state
// training allocates nothing here.

// LeakyReLU applies max(x, alpha*x) element-wise. Alpha = 0 gives plain
// ReLU.
type LeakyReLU struct {
	Alpha float64
	x     *tensor.Tensor
	out   *tensor.Tensor
	dx    *tensor.Tensor
}

// NewLeakyReLU returns a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// NewReLU returns a plain ReLU.
func NewReLU() *LeakyReLU { return &LeakyReLU{} }

// Forward applies the activation.
func (l *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.x = x
	l.out = tensor.Ensure(l.out, x.Shape()...)
	a := tensor.Elem(l.Alpha)
	od := l.out.Data
	for i, v := range x.Data {
		if v > 0 {
			od[i] = v
		} else {
			od[i] = a * v
		}
	}
	return l.out
}

// Backward gates the incoming gradient by the activation derivative.
func (l *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	l.dx = tensor.Ensure(l.dx, grad.Shape()...)
	a := tensor.Elem(l.Alpha)
	od, gd := l.dx.Data, grad.Data
	for i, v := range l.x.Data {
		if v > 0 {
			od[i] = gd[i]
		} else {
			od[i] = a * gd[i]
		}
	}
	return l.dx
}

// Params reports no learnables.
func (l *LeakyReLU) Params() []*Param { return nil }

// Clone returns a copy.
func (l *LeakyReLU) Clone() Layer { return &LeakyReLU{Alpha: l.Alpha} }

// Sigmoid applies 1/(1+exp(−x)) element-wise.
type Sigmoid struct {
	y  *tensor.Tensor
	dx *tensor.Tensor
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s.y = tensor.Ensure(s.y, x.Shape()...)
	yd := s.y.Data
	for i, v := range x.Data {
		yd[i] = tensor.Elem(1 / (1 + math.Exp(float64(-v))))
	}
	return s.y
}

// Backward multiplies by y(1−y).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	s.dx = tensor.Ensure(s.dx, grad.Shape()...)
	od, gd := s.dx.Data, grad.Data
	for i, y := range s.y.Data {
		od[i] = gd[i] * y * (1 - y)
	}
	return s.dx
}

// Params reports no learnables.
func (s *Sigmoid) Params() []*Param { return nil }

// Clone returns a copy.
func (s *Sigmoid) Clone() Layer { return &Sigmoid{} }

// Tanh applies the hyperbolic tangent element-wise; the conventional
// output activation of image generators (pixels in [−1, 1]).
type Tanh struct {
	y  *tensor.Tensor
	dx *tensor.Tensor
}

// NewTanh returns a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	t.y = tensor.Ensure(t.y, x.Shape()...)
	yd := t.y.Data
	for i, v := range x.Data {
		yd[i] = tensor.Elem(math.Tanh(float64(v)))
	}
	return t.y
}

// Backward multiplies by 1−y².
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	t.dx = tensor.Ensure(t.dx, grad.Shape()...)
	od, gd := t.dx.Data, grad.Data
	for i, y := range t.y.Data {
		od[i] = gd[i] * (1 - y*y)
	}
	return t.dx
}

// Params reports no learnables.
func (t *Tanh) Params() []*Param { return nil }

// Clone returns a copy.
func (t *Tanh) Clone() Layer { return &Tanh{} }
