package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mdgan/internal/parallel"
	"mdgan/internal/tensor"
)

// The convolution layers are batched end to end: one matmul per layer
// per batch, with every im2col-shaped operand consumed through fused
// GEMM packers (im2colSeg / the channel-major x̂ pack) that produce the
// values directly inside the packed B panels the micro-kernel reads —
// neither Conv2D's col(x) nor ConvTranspose2D's x̂/gcol matrices are
// ever materialised. The backward passes run the transposed products
// straight into preallocated gradient buffers. The few remaining
// workspaces come from the tensor pool and are released before the
// pass returns.

// convGeom describes a convolution geometry shared by Conv2D (as its
// forward map) and ConvTranspose2D (as its backward map).
type convGeom struct {
	inC, inH, inW int
	kh, kw        int
	stride, pad   int
	outH, outW    int
}

func newConvGeom(inC, inH, inW, kh, kw, stride, pad int) convGeom {
	g := convGeom{inC: inC, inH: inH, inW: inW, kh: kh, kw: kw, stride: stride, pad: pad}
	g.outH = (inH+2*pad-kh)/stride + 1
	g.outW = (inW+2*pad-kw)/stride + 1
	if g.outH <= 0 || g.outW <= 0 {
		panic(fmt.Sprintf("nn: conv geometry collapses: in %dx%d k %dx%d s %d p %d", inH, inW, kh, kw, stride, pad))
	}
	return g
}

// im2colSeg fills one row of the batched im2col matrix — row idx, the
// (c, ki, kj) patch coordinate — restricted to the global column range
// [p0, p1), writing dst[0], dst[stride], dst[2*stride], … Columns index
// output positions across the whole batch: p = i·outH·outW + oy·outW +
// ox. It is the packing primitive behind the fused conv GEMM: with
// stride 1 it fills a forward B-panel row, with stride nr it fills one
// column of a transposed (dW) panel, and in both cases the im2col value
// is produced directly in packed layout — one pass over the image
// instead of im2col-then-pack.
func (g convGeom) im2colSeg(x []tensor.Elem, inVol, idx, p0, p1 int, dst []tensor.Elem, stride int) {
	kj := idx % g.kw
	ki := (idx / g.kw) % g.kh
	c := idx / (g.kw * g.kh)
	oHW := g.outH * g.outW
	o := 0
	for p := p0; p < p1; {
		i := p / oHW
		rem := p - i*oHW
		oy := rem / g.outW
		ox := rem - oy*g.outW
		run := g.outW - ox // stay within one output row
		if p+run > p1 {
			run = p1 - p
		}
		iy := oy*g.stride + ki - g.pad
		if iy < 0 || iy >= g.inH {
			for t := 0; t < run; t++ {
				dst[o] = 0
				o += stride
			}
		} else {
			base := i*inVol + (c*g.inH+iy)*g.inW
			for t := 0; t < run; t++ {
				ix := (ox+t)*g.stride + kj - g.pad
				if ix < 0 || ix >= g.inW {
					dst[o] = 0
				} else {
					dst[o] = x[base+ix]
				}
				o += stride
			}
		}
		p += run
	}
}

// col2im scatters one column block of a batched col matrix back into an
// image, accumulating overlapping contributions — the adjoint of
// im2col.
func (g convGeom) col2im(col []tensor.Elem, rowStride, colOff int, x []tensor.Elem) {
	idx := 0
	for c := 0; c < g.inC; c++ {
		for ki := 0; ki < g.kh; ki++ {
			for kj := 0; kj < g.kw; kj++ {
				row := col[idx*rowStride+colOff : idx*rowStride+colOff+g.outH*g.outW]
				idx++
				o := 0
				for oy := 0; oy < g.outH; oy++ {
					iy := oy*g.stride + ki - g.pad
					if iy < 0 || iy >= g.inH {
						o += g.outW
						continue
					}
					base := (c*g.inH + iy) * g.inW
					for ox := 0; ox < g.outW; ox++ {
						ix := ox*g.stride + kj - g.pad
						if ix >= 0 && ix < g.inW {
							x[base+ix] += row[o]
						}
						o++
					}
				}
			}
		}
	}
}

// forImages fans a per-image loop out to the scheduler when the total
// work justifies it. The grain is sized so one task carries ~2^14
// scalar operations: tiny batches run inline (n <= grain), and big
// batches split down to single images so K concurrent simulated
// workers' conv layers can interleave on the shared scheduler.
func forImages(n, perImageWork int, fn func(s, e int)) {
	parallel.ForGrain(n, 1<<14/(perImageWork+1), fn)
}

// packIm2col returns the fused forward B-panel packer over xd, a batch
// of n images with per-image volume inVol viewed through geometry g:
// panel columns are batched output positions (cols = n·outH·outW),
// panel rows are (c, ki, kj) patch coordinates, and each row segment is
// one contiguous im2colSeg fill. Conv2D consumes x this way; the
// ConvTranspose2D backward consumes its output gradient the same way.
func (g convGeom) packIm2col(xd []tensor.Elem, inVol, cols int) tensor.BPanelPacker {
	return func(dst []tensor.Elem, k0, k1, j0, nr int) {
		j1 := j0 + nr
		if j1 > cols {
			// Zero-pad the panel columns past the batch edge.
			for kk := k0; kk < k1; kk++ {
				row := dst[(kk-k0)*nr : (kk-k0)*nr+nr]
				for j := cols - j0; j < nr; j++ {
					row[j] = 0
				}
			}
			j1 = cols
		}
		for kk := k0; kk < k1; kk++ {
			g.im2colSeg(xd, inVol, kk, j0, j1, dst[(kk-k0)*nr:], 1)
		}
	}
}

// packIm2colT returns the fused dW B-panel packer for ·col(x)ᵀ
// products: panel columns are (c, ki, kj) patch coordinates, panel rows
// are batched output positions, so each panel column is one strided
// im2colSeg fill.
func (g convGeom) packIm2colT(xd []tensor.Elem, inVol, ckk int) tensor.BPanelPacker {
	return func(dst []tensor.Elem, k0, k1, j0, nr int) {
		for jj := 0; jj < nr; jj++ {
			idx := j0 + jj
			if idx >= ckk {
				for kk := k0; kk < k1; kk++ {
					dst[(kk-k0)*nr+jj] = 0
				}
				continue
			}
			g.im2colSeg(xd, inVol, idx, k0, k1, dst[jj:], nr)
		}
	}
}

// packXhat returns the fused B-panel packer for the channel-major view
// x̂ (C, n·hw) of a batch x (n, C, hw): x̂[c][i·hw+rem] =
// xd[i·inVol+c·hw+rem]. Panel rows are channels, panel columns are
// batched spatial positions, and each row is filled by contiguous
// per-image copies (zero-padded past cols = n·hw). ConvTranspose2D
// consumes its input through this packer instead of materialising x̂.
func packXhat(xd []tensor.Elem, inVol, hw, cols int) tensor.BPanelPacker {
	return func(dst []tensor.Elem, k0, k1, j0, nr int) {
		j1 := j0 + nr
		if j1 > cols {
			// Zero-pad the panel columns past the batch edge.
			for kk := k0; kk < k1; kk++ {
				row := dst[(kk-k0)*nr : (kk-k0)*nr+nr]
				for j := cols - j0; j < nr; j++ {
					row[j] = 0
				}
			}
			j1 = cols
		}
		for kk := k0; kk < k1; kk++ {
			row := dst[(kk-k0)*nr:]
			o := 0
			for p := j0; p < j1; {
				i := p / hw
				rem := p - i*hw
				run := hw - rem // stay within one image's plane
				if p+run > j1 {
					run = j1 - p
				}
				src := xd[i*inVol+kk*hw+rem:]
				copy(row[o:o+run], src[:run])
				o += run
				p += run
			}
		}
	}
}

// Conv2D is a standard 2-D convolution over NCHW tensors. The im2col
// matrix is never materialised: both the forward product W·col(x) and
// the weight gradient g·col(x)ᵀ consume it through fused GEMM packers
// (im2colSeg), which produce each patch value directly inside the
// packed B panels the micro-kernel reads.
type Conv2D struct {
	geom convGeom
	OutC int
	W, B *Param // W: (OutC, InC*KH*KW), B: (1, OutC)
	x    *tensor.Tensor
	// trained records whether the last Forward ran in training mode
	// (Backward re-reads c.x through the fused packer, so it needs no
	// retained workspace — just the mode check).
	trained bool
	out     *tensor.Tensor // layer-owned output buffer
	dx      *tensor.Tensor // layer-owned input-gradient buffer
}

// NewConv2D builds a convolution mapping (N, inC, inH, inW) to
// (N, outC, outH, outW) with He-uniform initial weights.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	g := newConvGeom(inC, inH, inW, k, k, stride, pad)
	w := tensor.New(outC, inC*k*k)
	fanIn := inC * k * k
	heUniform(w, fanIn, rng)
	return &Conv2D{
		geom: g, OutC: outC,
		W: newParam(fmt.Sprintf("conv%dx%d.W", inC, outC), w),
		B: newParam(fmt.Sprintf("conv%dx%d.b", inC, outC), tensor.New(1, outC)),
	}
}

func heUniform(w *tensor.Tensor, fanIn int, rng *rand.Rand) {
	a := math.Sqrt(6.0 / float64(fanIn))
	for i := range w.Data {
		w.Data[i] = tensor.Elem((rng.Float64()*2 - 1) * a)
	}
}

// OutShape returns the per-image output dimensions (C, H, W).
func (c *Conv2D) OutShape() (int, int, int) { return c.OutC, c.geom.outH, c.geom.outW }

// Forward applies the convolution to x (N, inC, inH, inW). The returned
// tensor is a layer-owned buffer, valid until the next Forward call.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.geom
	n := x.Dim(0)
	inVol := g.inC * g.inH * g.inW
	if x.Size()/n != inVol {
		panic(fmt.Sprintf("nn: Conv2D input %v, want per-image volume %d", x.Shape(), inVol))
	}
	c.x = x
	c.trained = train
	oHW := g.outH * g.outW

	// One fused matmul for the whole batch: (OutC, ckk)·(ckk, n·oHW),
	// the im2col operand produced inside the GEMM's packed B panels.
	y := tensor.Get(c.OutC, n*oHW)
	tensor.MatMulPacked(y, c.W.W, n*oHW, g.packIm2col(x.Data, inVol, n*oHW))

	// Scatter (OutC, n·oHW) → (n, OutC, oHW), adding the bias.
	c.out = tensor.Ensure(c.out, n, c.OutC, g.outH, g.outW)
	outVol := c.OutC * oHW
	od, yd, bd := c.out.Data, y.Data, c.B.W.Data
	outC := c.OutC
	forImages(n, outVol, func(s, e int) {
		for i := s; i < e; i++ {
			for oc := 0; oc < outC; oc++ {
				src := yd[oc*n*oHW+i*oHW : oc*n*oHW+(i+1)*oHW]
				dst := od[i*outVol+oc*oHW : i*outVol+(oc+1)*oHW]
				b := bd[oc]
				for j, v := range src {
					dst[j] = v + b
				}
			}
		}
	})
	tensor.Put(y)
	return c.out
}

// Backward accumulates weight/bias gradients and returns the input
// gradient (a layer-owned buffer, valid until the next Backward call).
// The weight gradient re-reads the retained input through the fused
// transposed im2col packer, so no workspace survives the pass.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := c.geom
	n := c.x.Dim(0)
	oHW := g.outH * g.outW
	ckk := g.inC * g.kh * g.kw
	inVol := g.inC * g.inH * g.inW
	outVol := c.OutC * oHW
	if !c.trained {
		panic("nn: Conv2D.Backward without a training-mode Forward")
	}

	// Gather grad (n, OutC, oHW) → (OutC, n·oHW), mirroring the batched
	// forward layout.
	gy := tensor.Get(c.OutC, n*oHW)
	gd, gyd := grad.Data, gy.Data
	outC := c.OutC
	forImages(n, outVol, func(s, e int) {
		for i := s; i < e; i++ {
			for oc := 0; oc < outC; oc++ {
				copy(gyd[oc*n*oHW+i*oHW:oc*n*oHW+(i+1)*oHW], gd[i*outVol+oc*oHW:i*outVol+(oc+1)*oHW])
			}
		}
	})

	// dW += gy·col(x)ᵀ and dB += per-channel sums: one fused matmul (the
	// transposed im2col packed straight from x), one contiguous
	// reduction.
	tensor.MatMulPackedAdd(c.W.Grad, gy, ckk, g.packIm2colT(c.x.Data, inVol, ckk))
	db := c.B.Grad.Data
	for oc := 0; oc < c.OutC; oc++ {
		sum := 0.0
		for _, v := range gyd[oc*n*oHW : (oc+1)*n*oHW] {
			sum += float64(v)
		}
		db[oc] += tensor.Elem(sum)
	}

	// dcol = Wᵀ·gy, scattered back per image into dx.
	dcol := tensor.Get(ckk, n*oHW)
	tensor.MatMulT1Into(dcol, c.W.W, gy)
	tensor.Put(gy)
	c.dx = tensor.Ensure(c.dx, c.x.Shape()...)
	c.dx.Zero()
	dxd, dcd := c.dx.Data, dcol.Data
	forImages(n, ckk*oHW, func(s, e int) {
		for i := s; i < e; i++ {
			g.col2im(dcd, n*oHW, i*oHW, dxd[i*inVol:(i+1)*inVol])
		}
	})
	tensor.Put(dcol)
	c.trained = false
	return c.dx
}

// Params returns the kernel and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// Clone returns a deep copy.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		geom: c.geom, OutC: c.OutC,
		W: newParam(c.W.Name, c.W.W.Clone()),
		B: newParam(c.B.Name, c.B.W.Clone()),
	}
}

// ConvTranspose2D is the transposed (fractionally-strided) convolution
// used by the paper's generators to upsample. Its forward pass is the
// adjoint of a Conv2D whose *forward* direction maps the ConvTranspose
// output geometry back to its input geometry.
type ConvTranspose2D struct {
	geom      convGeom // geometry of the adjoint conv: in = our OUTPUT
	InC, OutC int
	inH, inW  int
	W, B      *Param // W: (InC, OutC*KH*KW), B: (1, OutC)
	x         *tensor.Tensor
	// trained records whether the last Forward ran in training mode
	// (Backward re-reads c.x through the fused packers, so it needs no
	// retained workspace — just the mode check).
	trained bool
	out     *tensor.Tensor
	dx      *tensor.Tensor
}

// NewConvTranspose2D maps (N, inC, inH, inW) to (N, outC, outH, outW)
// with outH = (inH−1)*stride − 2*pad + k + outPad. outPad (0 ≤ outPad <
// stride) grows the output by rows/columns that receive only the bias,
// matching the output_padding used by 'same'-padded stride-2 transposed
// convolutions (e.g. 7→14 with k=5, pad=2, outPad=1).
func NewConvTranspose2D(inC, inH, inW, outC, k, stride, pad, outPad int, rng *rand.Rand) *ConvTranspose2D {
	if outPad < 0 || outPad >= stride {
		panic("nn: ConvTranspose2D needs 0 <= outPad < stride")
	}
	outH := (inH-1)*stride - 2*pad + k + outPad
	outW := (inW-1)*stride - 2*pad + k + outPad
	if outH <= 0 || outW <= 0 {
		panic("nn: ConvTranspose2D geometry collapses")
	}
	// The adjoint conv consumes our output (outC, outH, outW) and must
	// produce exactly (inH, inW) spatial positions.
	g := newConvGeom(outC, outH, outW, k, k, stride, pad)
	if g.outH != inH || g.outW != inW {
		panic(fmt.Sprintf("nn: ConvTranspose2D inconsistent geometry: adjoint yields %dx%d, want %dx%d", g.outH, g.outW, inH, inW))
	}
	w := tensor.New(inC, outC*k*k)
	heUniform(w, inC*k*k, rng)
	return &ConvTranspose2D{
		geom: g, InC: inC, OutC: outC, inH: inH, inW: inW,
		W: newParam(fmt.Sprintf("convT%dx%d.W", inC, outC), w),
		B: newParam(fmt.Sprintf("convT%dx%d.b", inC, outC), tensor.New(1, outC)),
	}
}

// OutShape returns the per-image output dimensions (C, H, W).
func (c *ConvTranspose2D) OutShape() (int, int, int) { return c.OutC, c.geom.inH, c.geom.inW }

// Forward computes y = col2im(Wᵀ·x̂) + b for the whole batch at once:
// one transposed matmul consumes the channel-major view x̂ (InC, n·hw)
// of the input through the fused packXhat packer, producing every patch
// column, and col2im scatters them per image. x̂ itself is never
// materialised.
func (c *ConvTranspose2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.geom
	n := x.Dim(0)
	hw := c.inH * c.inW
	inVol := c.InC * hw
	if x.Size()/n != inVol {
		panic(fmt.Sprintf("nn: ConvTranspose2D input %v, want per-image volume %d", x.Shape(), inVol))
	}
	c.x = x
	c.trained = train
	outVol := c.OutC * g.inH * g.inW
	oPlane := g.inH * g.inW

	// col = Wᵀ·x̂: (OutC·k·k, n·hw) in one fused matmul.
	col := tensor.Get(c.OutC*g.kh*g.kw, n*hw)
	tensor.MatMulT1Packed(col, c.W.W, n*hw, packXhat(x.Data, inVol, hw, n*hw))

	// Per image: start from the bias plane, then scatter the columns.
	c.out = tensor.Ensure(c.out, n, c.OutC, g.inH, g.inW)
	od, cd, bd := c.out.Data, col.Data, c.B.W.Data
	outC := c.OutC
	forImages(n, outVol*g.kh*g.kw, func(s, e int) {
		for i := s; i < e; i++ {
			dst := od[i*outVol : (i+1)*outVol]
			for oc := 0; oc < outC; oc++ {
				plane := dst[oc*oPlane : (oc+1)*oPlane]
				b := bd[oc]
				for j := range plane {
					plane[j] = b
				}
			}
			g.col2im(cd, n*hw, i*hw, dst)
		}
	})
	tensor.Put(col)
	return c.out
}

// Backward: dx = W·im2col(grad); dW += x̂·im2col(grad)ᵀ; db sums grad
// per channel — all batched. The gradient's im2col matrix (the old
// gcol workspace, the largest buffer of the pass) is never
// materialised: both products consume it through the fused
// packIm2col/packIm2colT packers shared with Conv2D.
func (c *ConvTranspose2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := c.geom
	n := c.x.Dim(0)
	hw := c.inH * c.inW
	inVol := c.InC * hw
	outVol := c.OutC * g.inH * g.inW
	oPlane := g.inH * g.inW
	ckk := c.OutC * g.kh * g.kw
	if !c.trained {
		panic("nn: ConvTranspose2D.Backward without a training-mode Forward")
	}
	gd := grad.Data

	// dx̂ = W·im2col(grad) (InC, n·hw), the gradient unrolled straight
	// into the GEMM's packed B panels, then unpacked to (n, InC, hw).
	dxhat := tensor.Get(c.InC, n*hw)
	tensor.MatMulPacked(dxhat, c.W.W, n*hw, g.packIm2col(gd, outVol, n*hw))
	c.dx = tensor.Ensure(c.dx, c.x.Shape()...)
	dxd, dh := c.dx.Data, dxhat.Data
	inC := c.InC
	forImages(n, inVol, func(s, e int) {
		for i := s; i < e; i++ {
			for ic := 0; ic < inC; ic++ {
				copy(dxd[i*inVol+ic*hw:i*inVol+(ic+1)*hw], dh[ic*n*hw+i*hw:ic*n*hw+(i+1)*hw])
			}
		}
	})
	tensor.Put(dxhat)

	// dW += x̂·im2col(grad)ᵀ: the left operand is the channel-major
	// repack of x (a cheap transient, InC·n·hw — released before
	// returning), and the transposed im2col of the gradient is packed
	// straight into B panels.
	xhat := tensor.Get(c.InC, n*hw)
	xd, xh := c.x.Data, xhat.Data
	forImages(n, inVol, func(s, e int) {
		for i := s; i < e; i++ {
			for ic := 0; ic < inC; ic++ {
				copy(xh[ic*n*hw+i*hw:ic*n*hw+(i+1)*hw], xd[i*inVol+ic*hw:i*inVol+(ic+1)*hw])
			}
		}
	})
	tensor.MatMulPackedAdd(c.W.Grad, xhat, ckk, g.packIm2colT(gd, outVol, ckk))
	tensor.Put(xhat)

	// dB sums the gradient per output channel.
	db := c.B.Grad.Data
	for i := 0; i < n; i++ {
		gi := gd[i*outVol : (i+1)*outVol]
		for oc := 0; oc < c.OutC; oc++ {
			sum := 0.0
			for _, v := range gi[oc*oPlane : (oc+1)*oPlane] {
				sum += float64(v)
			}
			db[oc] += tensor.Elem(sum)
		}
	}
	c.trained = false
	return c.dx
}

// Params returns the kernel and bias.
func (c *ConvTranspose2D) Params() []*Param { return []*Param{c.W, c.B} }

// Clone returns a deep copy.
func (c *ConvTranspose2D) Clone() Layer {
	return &ConvTranspose2D{
		geom: c.geom, InC: c.InC, OutC: c.OutC, inH: c.inH, inW: c.inW,
		W: newParam(c.W.Name, c.W.W.Clone()),
		B: newParam(c.B.Name, c.B.W.Clone()),
	}
}
