package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mdgan/internal/parallel"
	"mdgan/internal/tensor"
)

// convGeom describes a convolution geometry shared by Conv2D (as its
// forward map) and ConvTranspose2D (as its backward map).
type convGeom struct {
	inC, inH, inW int
	kh, kw        int
	stride, pad   int
	outH, outW    int
}

func newConvGeom(inC, inH, inW, kh, kw, stride, pad int) convGeom {
	g := convGeom{inC: inC, inH: inH, inW: inW, kh: kh, kw: kw, stride: stride, pad: pad}
	g.outH = (inH+2*pad-kh)/stride + 1
	g.outW = (inW+2*pad-kw)/stride + 1
	if g.outH <= 0 || g.outW <= 0 {
		panic(fmt.Sprintf("nn: conv geometry collapses: in %dx%d k %dx%d s %d p %d", inH, inW, kh, kw, stride, pad))
	}
	return g
}

// im2col unrolls a single image x (C*H*W flat) into a matrix col of
// shape (C*KH*KW, outH*outW) so the convolution becomes one MatMul.
func (g convGeom) im2col(x []float64, col []float64) {
	oHW := g.outH * g.outW
	idx := 0
	for c := 0; c < g.inC; c++ {
		for ki := 0; ki < g.kh; ki++ {
			for kj := 0; kj < g.kw; kj++ {
				row := col[idx*oHW : (idx+1)*oHW]
				idx++
				o := 0
				for oy := 0; oy < g.outH; oy++ {
					iy := oy*g.stride + ki - g.pad
					if iy < 0 || iy >= g.inH {
						for ox := 0; ox < g.outW; ox++ {
							row[o] = 0
							o++
						}
						continue
					}
					base := (c*g.inH + iy) * g.inW
					for ox := 0; ox < g.outW; ox++ {
						ix := ox*g.stride + kj - g.pad
						if ix < 0 || ix >= g.inW {
							row[o] = 0
						} else {
							row[o] = x[base+ix]
						}
						o++
					}
				}
			}
		}
	}
}

// col2im scatters a col matrix back into an image, accumulating
// overlapping contributions — the adjoint of im2col.
func (g convGeom) col2im(col []float64, x []float64) {
	oHW := g.outH * g.outW
	idx := 0
	for c := 0; c < g.inC; c++ {
		for ki := 0; ki < g.kh; ki++ {
			for kj := 0; kj < g.kw; kj++ {
				row := col[idx*oHW : (idx+1)*oHW]
				idx++
				o := 0
				for oy := 0; oy < g.outH; oy++ {
					iy := oy*g.stride + ki - g.pad
					if iy < 0 || iy >= g.inH {
						o += g.outW
						continue
					}
					base := (c*g.inH + iy) * g.inW
					for ox := 0; ox < g.outW; ox++ {
						ix := ox*g.stride + kj - g.pad
						if ix >= 0 && ix < g.inW {
							x[base+ix] += row[o]
						}
						o++
					}
				}
			}
		}
	}
}

// Conv2D is a standard 2-D convolution over NCHW tensors.
type Conv2D struct {
	geom convGeom
	OutC int
	W, B *Param // W: (OutC, InC*KH*KW), B: (1, OutC)
	x    *tensor.Tensor
	cols []*tensor.Tensor // cached per-image col matrices
}

// NewConv2D builds a convolution mapping (N, inC, inH, inW) to
// (N, outC, outH, outW) with He-uniform initial weights.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	g := newConvGeom(inC, inH, inW, k, k, stride, pad)
	w := tensor.New(outC, inC*k*k)
	fanIn := inC * k * k
	heUniform(w, fanIn, rng)
	return &Conv2D{
		geom: g, OutC: outC,
		W: newParam(fmt.Sprintf("conv%dx%d.W", inC, outC), w),
		B: newParam(fmt.Sprintf("conv%dx%d.b", inC, outC), tensor.New(1, outC)),
	}
}

func heUniform(w *tensor.Tensor, fanIn int, rng *rand.Rand) {
	a := math.Sqrt(6.0 / float64(fanIn))
	for i := range w.Data {
		w.Data[i] = (rng.Float64()*2 - 1) * a
	}
}

// OutShape returns the per-image output dimensions (C, H, W).
func (c *Conv2D) OutShape() (int, int, int) { return c.OutC, c.geom.outH, c.geom.outW }

// Forward applies the convolution to x (N, inC, inH, inW).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.geom
	n := x.Dim(0)
	if x.Size()/n != g.inC*g.inH*g.inW {
		panic(fmt.Sprintf("nn: Conv2D input %v, want per-image volume %d", x.Shape(), g.inC*g.inH*g.inW))
	}
	c.x = x
	if len(c.cols) < n {
		c.cols = make([]*tensor.Tensor, n)
	}
	oHW := g.outH * g.outW
	out := tensor.New(n, c.OutC, g.outH, g.outW)
	inVol := g.inC * g.inH * g.inW
	outVol := c.OutC * oHW
	parallel.ForceFor(n, func(s, e int) {
		for i := s; i < e; i++ {
			col := c.cols[i]
			if col == nil {
				col = tensor.New(g.inC*g.kh*g.kw, oHW)
				c.cols[i] = col
			}
			g.im2col(x.Data[i*inVol:(i+1)*inVol], col.Data)
			y := tensor.MatMul(c.W.W, col) // (OutC, oHW)
			dst := out.Data[i*outVol : (i+1)*outVol]
			for oc := 0; oc < c.OutC; oc++ {
				b := c.B.W.Data[oc]
				row := y.Data[oc*oHW : (oc+1)*oHW]
				for j, v := range row {
					dst[oc*oHW+j] = v + b
				}
			}
		}
	})
	return out
}

// Backward accumulates weight/bias gradients and returns the input
// gradient.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := c.geom
	n := c.x.Dim(0)
	oHW := g.outH * g.outW
	inVol := g.inC * g.inH * g.inW
	outVol := c.OutC * oHW
	dx := tensor.New(c.x.Shape()...)
	// Parallelise over images, with per-shard weight-grad accumulators
	// merged at the end to avoid contention.
	type shard struct {
		dW *tensor.Tensor
		dB *tensor.Tensor
	}
	shards := make([]shard, n)
	parallel.ForceFor(n, func(s, e int) {
		dW := tensor.New(c.W.W.Shape()...)
		dB := tensor.New(c.B.W.Shape()...)
		for i := s; i < e; i++ {
			gi := tensor.FromSlice(grad.Data[i*outVol:(i+1)*outVol], c.OutC, oHW)
			tensor.MatMulAdd(dW, gi, c.cols[i].Transpose())
			for oc := 0; oc < c.OutC; oc++ {
				sum := 0.0
				for _, v := range gi.Data[oc*oHW : (oc+1)*oHW] {
					sum += v
				}
				dB.Data[oc] += sum
			}
			dcol := tensor.MatMulT1(c.W.W, gi) // (inC*k*k, oHW)
			g.col2im(dcol.Data, dx.Data[i*inVol:(i+1)*inVol])
		}
		shards[s] = shard{dW, dB}
	})
	for _, sh := range shards {
		if sh.dW != nil {
			c.W.Grad.AddInPlace(sh.dW)
			c.B.Grad.AddInPlace(sh.dB)
		}
	}
	return dx
}

// Params returns the kernel and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// Clone returns a deep copy.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		geom: c.geom, OutC: c.OutC,
		W: newParam(c.W.Name, c.W.W.Clone()),
		B: newParam(c.B.Name, c.B.W.Clone()),
	}
}

// ConvTranspose2D is the transposed (fractionally-strided) convolution
// used by the paper's generators to upsample. Its forward pass is the
// adjoint of a Conv2D whose *forward* direction maps the ConvTranspose
// output geometry back to its input geometry.
type ConvTranspose2D struct {
	geom      convGeom // geometry of the adjoint conv: in = our OUTPUT
	InC, OutC int
	inH, inW  int
	W, B      *Param // W: (InC, OutC*KH*KW), B: (1, OutC)
	x         *tensor.Tensor
}

// NewConvTranspose2D maps (N, inC, inH, inW) to (N, outC, outH, outW)
// with outH = (inH−1)*stride − 2*pad + k + outPad. outPad (0 ≤ outPad <
// stride) grows the output by rows/columns that receive only the bias,
// matching the output_padding used by 'same'-padded stride-2 transposed
// convolutions (e.g. 7→14 with k=5, pad=2, outPad=1).
func NewConvTranspose2D(inC, inH, inW, outC, k, stride, pad, outPad int, rng *rand.Rand) *ConvTranspose2D {
	if outPad < 0 || outPad >= stride {
		panic("nn: ConvTranspose2D needs 0 <= outPad < stride")
	}
	outH := (inH-1)*stride - 2*pad + k + outPad
	outW := (inW-1)*stride - 2*pad + k + outPad
	if outH <= 0 || outW <= 0 {
		panic("nn: ConvTranspose2D geometry collapses")
	}
	// The adjoint conv consumes our output (outC, outH, outW) and must
	// produce exactly (inH, inW) spatial positions.
	g := newConvGeom(outC, outH, outW, k, k, stride, pad)
	if g.outH != inH || g.outW != inW {
		panic(fmt.Sprintf("nn: ConvTranspose2D inconsistent geometry: adjoint yields %dx%d, want %dx%d", g.outH, g.outW, inH, inW))
	}
	w := tensor.New(inC, outC*k*k)
	heUniform(w, inC*k*k, rng)
	return &ConvTranspose2D{
		geom: g, InC: inC, OutC: outC, inH: inH, inW: inW,
		W: newParam(fmt.Sprintf("convT%dx%d.W", inC, outC), w),
		B: newParam(fmt.Sprintf("convT%dx%d.b", inC, outC), tensor.New(1, outC)),
	}
}

// OutShape returns the per-image output dimensions (C, H, W).
func (c *ConvTranspose2D) OutShape() (int, int, int) { return c.OutC, c.geom.inH, c.geom.inW }

// Forward computes y = col2im(Wᵀ·x̂) + b: each input pixel paints a
// k×k kernel patch into the upsampled output.
func (c *ConvTranspose2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.geom
	n := x.Dim(0)
	inVol := c.InC * c.inH * c.inW
	if x.Size()/n != inVol {
		panic(fmt.Sprintf("nn: ConvTranspose2D input %v, want per-image volume %d", x.Shape(), inVol))
	}
	c.x = x
	outVol := c.OutC * g.inH * g.inW
	out := tensor.New(n, c.OutC, g.inH, g.inW)
	hw := c.inH * c.inW
	parallel.ForceFor(n, func(s, e int) {
		for i := s; i < e; i++ {
			xi := tensor.FromSlice(x.Data[i*inVol:(i+1)*inVol], c.InC, hw)
			col := tensor.MatMulT1(c.W.W, xi) // (OutC*k*k, hw)
			dst := out.Data[i*outVol : (i+1)*outVol]
			g.col2im(col.Data, dst)
			for oc := 0; oc < c.OutC; oc++ {
				b := c.B.W.Data[oc]
				if b == 0 {
					continue
				}
				plane := dst[oc*g.inH*g.inW : (oc+1)*g.inH*g.inW]
				for j := range plane {
					plane[j] += b
				}
			}
		}
	})
	return out
}

// Backward: dx = W·im2col(grad); dW += x̂·im2col(grad)ᵀ; db sums grad
// per channel.
func (c *ConvTranspose2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := c.geom
	n := c.x.Dim(0)
	inVol := c.InC * c.inH * c.inW
	outVol := c.OutC * g.inH * g.inW
	hw := c.inH * c.inW
	oPlane := g.inH * g.inW
	dx := tensor.New(c.x.Shape()...)
	type shard struct{ dW, dB *tensor.Tensor }
	shards := make([]shard, n)
	parallel.ForceFor(n, func(s, e int) {
		dW := tensor.New(c.W.W.Shape()...)
		dB := tensor.New(c.B.W.Shape()...)
		col := tensor.New(c.OutC*g.kh*g.kw, hw)
		for i := s; i < e; i++ {
			gi := grad.Data[i*outVol : (i+1)*outVol]
			g.im2col(gi, col.Data)
			xi := tensor.FromSlice(c.x.Data[i*inVol:(i+1)*inVol], c.InC, hw)
			// dx̂ = W·col with W (InC, OutC*k*k), col (OutC*k*k, hw).
			dxm := tensor.MatMul(c.W.W, col)
			copy(dx.Data[i*inVol:(i+1)*inVol], dxm.Data)
			// dW += x̂ · colᵀ → (InC, OutC*k*k)
			tensor.MatMulAdd(dW, xi, col.Transpose())
			for oc := 0; oc < c.OutC; oc++ {
				sum := 0.0
				for _, v := range gi[oc*oPlane : (oc+1)*oPlane] {
					sum += v
				}
				dB.Data[oc] += sum
			}
		}
		shards[s] = shard{dW, dB}
	})
	for _, sh := range shards {
		if sh.dW != nil {
			c.W.Grad.AddInPlace(sh.dW)
			c.B.Grad.AddInPlace(sh.dB)
		}
	}
	return dx
}

// Params returns the kernel and bias.
func (c *ConvTranspose2D) Params() []*Param { return []*Param{c.W, c.B} }

// Clone returns a deep copy.
func (c *ConvTranspose2D) Clone() Layer {
	return &ConvTranspose2D{
		geom: c.geom, InC: c.InC, OutC: c.OutC, inH: c.inH, inW: c.inW,
		W: newParam(c.W.Name, c.W.W.Clone()),
		B: newParam(c.B.Name, c.B.W.Clone()),
	}
}
