// Package nn implements the neural-network layers, containers and loss
// functions used by the GAN models. Every layer provides exact analytic
// backpropagation for both its parameters and its input; the *input*
// gradients matter as much as the parameter gradients here, because the
// MD-GAN error feedback F_n is precisely the gradient of the generator
// loss with respect to the generated data (paper §IV-B2).
//
// Buffer ownership: layers reuse internal buffers across calls, so the
// tensor returned by Forward is valid only until the layer's next
// Forward call, and the tensor returned by Backward only until its next
// Backward call. Callers that retain an output across another pass
// through the same layer (e.g. to compare two forward passes) must
// Clone it. Layer instances are not safe for concurrent use; distinct
// instances (e.g. per MD-GAN worker) are independent. The same
// discipline extends up the stack: the MD-GAN round engine
// (internal/core, engine.go) owns per-round stage buffers that are
// reset — not reallocated — when a round slot is reused, and encodes
// each generator output into its wire frame before the next Forward
// clobbers it, so nothing there retains a layer buffer across passes
// either (the clone-or-corrupt tests in core pin both levels). The
// serving tier (internal/serve) lives under the same rule: the request
// coalescer answers every fused request with a pooled COPY of its
// slice of the generator's output — response encoding (raw frames,
// PNG) happens on the HTTP goroutine, concurrent with the replica's
// next Forward, so a response that aliased the generator's buffer
// would corrupt under exactly two overlapping requests. Its
// contract_test.go pins the serve-side retention sites (responses,
// the /preview cache) the way core's pins the engine's.
//
// The discipline extends DOWN the stack too, into the packed GEMM's
// pack-panel pool: Conv2D's im2col operand is never materialised —
// tensor.MatMulPacked fills pool-backed B panels through a fused packer
// (im2colSeg) that reads the layer's retained input x directly, both in
// Forward and for the weight gradient in Backward. That retained x is a
// buffer OWNED BY THE UPSTREAM LAYER, valid until that layer's next
// call; the Forward→Backward window of a training step stays inside it,
// which is exactly the window the contract above guarantees. The pack
// panels themselves are pooled workspaces released inside the GEMM
// call, and the fused packers run concurrently on the scheduler — they
// only read x and write disjoint panel slices.
//
// Dtype: activations, parameters and gradients are stored and combined
// at tensor.Elem width (float64 by default, float32 under `-tags f32`),
// so the matmul/im2col hot path moves half the bytes under the f32
// build. Numerics that either span many elements or feed long-running
// state deliberately stay float64 at any width: loss scalars and their
// 1/n factors, batch-norm per-channel statistics (a channel's sum spans
// N·spatial values), bias-gradient reductions inside the conv layers,
// transcendentals (computed via math on widened values, rounded on
// store), and the optimiser moments in package opt. Test tolerances
// follow the dtype through tensor.Tol(f64, f32): float64 asserts keep
// their historical 1e-9/1e-12 bounds, while the float32 values were
// chosen per test from the accumulation depth of the op under test
// (~1e-3 for deep matmul/conv reductions, ~1e-5 for element-wise
// paths); finite-difference gradcheck is skipped under f32, where the
// quotient noise O(ε·|f|/h) makes it meaningless — analytic-vs-
// reference equivalence tests carry that coverage instead.
package nn

import (
	"fmt"
	"io"
	"math"

	"mdgan/internal/tensor"
)

// Param is one learnable tensor with its accumulated gradient.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

func newParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, Grad: tensor.New(w.Shape()...)}
}

// Layer is a differentiable module. Forward caches whatever Backward
// needs; Backward consumes the gradient with respect to the layer output
// and returns the gradient with respect to the layer input, accumulating
// parameter gradients as a side effect.
type Layer interface {
	// Forward computes the layer output. train selects training
	// behaviour (batch statistics, dropout masks).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates grad (∂L/∂out) and returns ∂L/∂in.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the learnable parameters (possibly none).
	Params() []*Param
	// Clone returns a deep copy with identical parameters and fresh
	// gradient/cache state.
	Clone() Layer
}

// Sequential chains layers. Layers must not be modified after the
// first Params call (the flattened parameter list is cached — it is
// consulted several times per training step by ZeroGrads and the
// optimisers).
type Sequential struct {
	Layers []Layer

	params      []*Param
	paramsBuilt bool
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs the layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the layers in reverse, returning the gradient with
// respect to the network input.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all learnable parameters in layer order. The returned
// slice is cached and shared across calls; callers must not append to
// it in place (copy first, as Discriminator.Params does).
func (s *Sequential) Params() []*Param {
	if !s.paramsBuilt {
		for _, l := range s.Layers {
			s.params = append(s.params, l.Params()...)
		}
		s.paramsBuilt = true
	}
	return s.params
}

// Clone deep-copies the network (parameters included, gradients fresh).
// The clone builds its own parameter cache on first use.
func (s *Sequential) Clone() *Sequential {
	out := &Sequential{Layers: make([]Layer, len(s.Layers))}
	for i, l := range s.Layers {
		out.Layers[i] = l.Clone()
	}
	return out
}

// ZeroGrads clears every accumulated parameter gradient.
func (s *Sequential) ZeroGrads() {
	for _, p := range s.Params() {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of scalar parameters (the |w| and
// |θ| quantities of the paper's complexity analysis).
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.W.Size()
	}
	return n
}

// ParamVector flattens all parameters into a single []float64 in layer
// order (widened from the compiled Elem when that is float32). The
// result is a copy.
func (s *Sequential) ParamVector() []float64 {
	out := make([]float64, 0, s.NumParams())
	for _, p := range s.Params() {
		for _, v := range p.W.Data {
			out = append(out, float64(v))
		}
	}
	return out
}

// SetParamVector loads parameters from a flat vector previously produced
// by ParamVector on an identically-shaped network.
func (s *Sequential) SetParamVector(v []float64) error {
	off := 0
	for _, p := range s.Params() {
		n := p.W.Size()
		if off+n > len(v) {
			return fmt.Errorf("nn: param vector too short: have %d, need >= %d", len(v), off+n)
		}
		for i, x := range v[off : off+n] {
			p.W.Data[i] = tensor.Elem(x)
		}
		off += n
	}
	if off != len(v) {
		return fmt.Errorf("nn: param vector length %d does not match network size %d", len(v), off)
	}
	return nil
}

// GradVector flattens all parameter gradients into a single []float64
// (widened from the compiled Elem when that is float32).
func (s *Sequential) GradVector() []float64 {
	out := make([]float64, 0, s.NumParams())
	for _, p := range s.Params() {
		for _, v := range p.Grad.Data {
			out = append(out, float64(v))
		}
	}
	return out
}

// CopyParamsFrom copies parameter values from src, which must have the
// same architecture.
func (s *Sequential) CopyParamsFrom(src *Sequential) error {
	sp, dp := src.Params(), s.Params()
	if len(sp) != len(dp) {
		return fmt.Errorf("nn: param count mismatch %d vs %d", len(sp), len(dp))
	}
	for i := range sp {
		if !sp[i].W.SameShape(dp[i].W) {
			return fmt.Errorf("nn: param %d shape mismatch", i)
		}
		dp[i].W.CopyFrom(sp[i].W)
	}
	return nil
}

// EncodedParamSize returns the number of bytes WriteParams produces —
// used by the communication accounting of Tables III/IV.
func (s *Sequential) EncodedParamSize() int64 {
	var n int64
	for _, p := range s.Params() {
		n += p.W.EncodedSize()
	}
	return n
}

// EncodedParamSizeAs returns the number of bytes AppendParamsAs(_, dt)
// produces — the wire footprint of a parameter transfer at an explicit
// element width (the FP32 swap payloads of Table III's W→W row).
func (s *Sequential) EncodedParamSizeAs(dt byte) int64 {
	var n int64
	for _, p := range s.Params() {
		n += p.W.EncodedSizeAs(dt)
	}
	return n
}

// WriteParams serialises all parameters to w (for swap / FedAvg traffic).
func (s *Sequential) WriteParams(w io.Writer) (int64, error) {
	var total int64
	for _, p := range s.Params() {
		n, err := p.W.WriteTo(w)
		total += n
		if err != nil {
			return total, fmt.Errorf("nn: write %s: %w", p.Name, err)
		}
	}
	return total, nil
}

// AppendParams appends every parameter's wire framing to dst and
// returns the extended slice — the allocation-free flavour of
// WriteParams for the per-iteration swap traffic (size the buffer with
// EncodedParamSize).
func (s *Sequential) AppendParams(dst []byte) []byte {
	for _, p := range s.Params() {
		dst = p.W.AppendBinary(dst)
	}
	return dst
}

// AppendParamsAs is AppendParams at an explicit wire dtype, converting
// per element when dt is not the compiled width. ReadParams accepts the
// resulting frames regardless of the width they were written at (the
// tensor framing self-describes its dtype), which is what lets the
// float64 build ship 4-byte discriminator swaps.
func (s *Sequential) AppendParamsAs(dst []byte, dt byte) []byte {
	for _, p := range s.Params() {
		dst = p.W.AppendBinaryAs(dst, dt)
	}
	return dst
}

// ReadParams deserialises parameters from r into the network, streaming
// each payload directly into the existing parameter storage (no
// intermediate tensors). On a shape mismatch the network may be left
// partially updated — callers treat that as fatal.
func (s *Sequential) ReadParams(r io.Reader) (int64, error) {
	var total int64
	for _, p := range s.Params() {
		n, err := p.W.ReadInPlace(r)
		total += n
		if err != nil {
			return total, fmt.Errorf("nn: read %s: %w", p.Name, err)
		}
	}
	return total, nil
}

// GradNorm returns the Euclidean norm of the concatenated parameter
// gradients — handy for divergence diagnostics.
func (s *Sequential) GradNorm() float64 {
	sum := 0.0
	for _, p := range s.Params() {
		for _, v := range p.Grad.Data {
			sum += float64(v) * float64(v)
		}
	}
	return math.Sqrt(sum)
}
