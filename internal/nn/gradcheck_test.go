package nn

import (
	"math"
	"math/rand"
	"testing"

	"mdgan/internal/tensor"
)

// scalarLoss projects the network output onto a fixed random direction,
// giving a scalar objective whose analytic gradient is obtained by
// feeding the projection itself into Backward.
type scalarLoss struct {
	proj *tensor.Tensor
}

func newScalarLoss(outShape []int, rng *rand.Rand) *scalarLoss {
	p := tensor.New(outShape...)
	for i := range p.Data {
		p.Data[i] = tensor.Elem(rng.NormFloat64())
	}
	return &scalarLoss{proj: p}
}

func (s *scalarLoss) value(out *tensor.Tensor) float64 { return tensor.Dot(out, s.proj) }

// skipGradcheckF32 skips finite-difference checks under the f32 build:
// with h = 1e-5 and float32 forward evaluations the quotient
// (f(w+h)−f(w−h))/2h carries O(ε₃₂·|f|/h) ≈ O(1) relative noise, so
// central differences cannot resolve the gradient. The f32 build's
// gradient coverage comes from the analytic-vs-reference equivalence
// tests (batched_equiv_test.go) and the cross-dtype training tests.
func skipGradcheckF32(t *testing.T) {
	t.Helper()
	if tensor.ElemBytes == 4 {
		t.Skip("finite-difference gradcheck needs float64 forward evaluations")
	}
}

// checkLayerGradients verifies analytic parameter AND input gradients of
// a layer against central finite differences. Input gradients are what
// MD-GAN workers ship to the server, so they get equal scrutiny.
func checkLayerGradients(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	skipGradcheckF32(t)
	rng := rand.New(rand.NewSource(99))
	out := l.Forward(x, true)
	loss := newScalarLoss(out.Shape(), rng)
	for _, p := range l.Params() {
		p.Grad.Zero()
	}
	dx := l.Backward(loss.proj.Clone())

	const h = 1e-5
	eval := func() float64 { return loss.value(l.Forward(x, true)) }

	// Parameter gradients.
	for _, p := range l.Params() {
		if p.Name != "" && (p.Name[len(p.Name)-5:] == "rmean" || p.Name[len(p.Name)-4:] == "rvar") {
			continue // running stats are state, not learnables
		}
		for _, i := range sampleIndices(p.W.Size(), 12, rng) {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			fp := eval()
			p.W.Data[i] = orig - h
			fm := eval()
			p.W.Data[i] = orig
			num := (fp - fm) / (2 * h)
			got := float64(p.Grad.Data[i])
			if relErr(num, got) > tol {
				t.Fatalf("param %s[%d]: analytic %g vs numeric %g", p.Name, i, got, num)
			}
		}
	}
	// Input gradients.
	for _, i := range sampleIndices(x.Size(), 12, rng) {
		orig := x.Data[i]
		x.Data[i] = orig + h
		fp := eval()
		x.Data[i] = orig - h
		fm := eval()
		x.Data[i] = orig
		num := (fp - fm) / (2 * h)
		got := float64(dx.Data[i])
		if relErr(num, got) > tol {
			t.Fatalf("input[%d]: analytic %g vs numeric %g", i, got, num)
		}
	}
}

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	s := math.Abs(a) + math.Abs(b)
	if s < 1e-7 {
		return d
	}
	return d / s
}

func sampleIndices(n, k int, rng *rand.Rand) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, k)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}

func randInput(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = tensor.Elem(rng.NormFloat64())
	}
	return x
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	checkLayerGradients(t, NewDense(7, 5, rng), randInput(rng, 4, 7), 1e-5)
}

func TestLeakyReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	checkLayerGradients(t, NewLeakyReLU(0.2), randInput(rng, 3, 9), 1e-5)
}

func TestSigmoidGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	checkLayerGradients(t, NewSigmoid(), randInput(rng, 3, 6), 1e-5)
}

func TestTanhGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	checkLayerGradients(t, NewTanh(), randInput(rng, 3, 6), 1e-5)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewConv2D(2, 6, 6, 3, 3, 1, 1, rng)
	checkLayerGradients(t, l, randInput(rng, 2, 2, 6, 6), 1e-4)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewConv2D(2, 8, 8, 4, 3, 2, 1, rng)
	checkLayerGradients(t, l, randInput(rng, 2, 2, 8, 8), 1e-4)
}

func TestConvTranspose2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewConvTranspose2D(3, 4, 4, 2, 4, 2, 1, 0, rng)
	checkLayerGradients(t, l, randInput(rng, 2, 3, 4, 4), 1e-4)
}

func TestConvTranspose2DOutputPadGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// 4 → (4−1)·2 − 4 + 5 + 1 = 8: the Keras 'same' k=5 s=2 geometry.
	l := NewConvTranspose2D(2, 4, 4, 2, 5, 2, 2, 1, rng)
	if _, oh, ow := l.OutShape(); oh != 8 || ow != 8 {
		t.Fatalf("out %dx%d, want 8x8", oh, ow)
	}
	checkLayerGradients(t, l, randInput(rng, 2, 2, 4, 4), 1e-4)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	checkLayerGradients(t, NewBatchNorm(5), randInput(rng, 6, 5), 2e-4)
}

func TestBatchNorm2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	checkLayerGradients(t, NewBatchNorm(3), randInput(rng, 4, 3, 2, 2), 2e-4)
}

func TestMinibatchDiscriminationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := NewMinibatchDiscrimination(6, 3, 2, rng)
	checkLayerGradients(t, l, randInput(rng, 5, 6), 1e-4)
}

// TestSequentialMLPGradients checks a full MLP stack end to end,
// including the gradient delivered at the network input (the F_n path).
func TestSequentialMLPGradients(t *testing.T) {
	skipGradcheckF32(t)
	rng := rand.New(rand.NewSource(11))
	net := NewSequential(
		NewDense(8, 10, rng),
		NewLeakyReLU(0.2),
		NewDense(10, 6, rng),
		NewTanh(),
		NewDense(6, 1, rng),
	)
	x := randInput(rng, 4, 8)
	out := net.Forward(x, true)
	loss := newScalarLoss(out.Shape(), rng)
	net.ZeroGrads()
	dx := net.Backward(loss.proj.Clone())

	const h = 1e-5
	eval := func() float64 { return loss.value(net.Forward(x, true)) }
	for _, p := range net.Params() {
		for _, i := range sampleIndices(p.W.Size(), 8, rng) {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			fp := eval()
			p.W.Data[i] = orig - h
			fm := eval()
			p.W.Data[i] = orig
			if relErr((fp-fm)/(2*h), float64(p.Grad.Data[i])) > 1e-5 {
				t.Fatalf("param %s[%d] gradient mismatch", p.Name, i)
			}
		}
	}
	for _, i := range sampleIndices(x.Size(), 10, rng) {
		orig := x.Data[i]
		x.Data[i] = orig + h
		fp := eval()
		x.Data[i] = orig - h
		fm := eval()
		x.Data[i] = orig
		if relErr((fp-fm)/(2*h), float64(dx.Data[i])) > 1e-5 {
			t.Fatalf("input[%d] gradient mismatch", i)
		}
	}
}

func TestConvNetGradientsEndToEnd(t *testing.T) {
	skipGradcheckF32(t)
	rng := rand.New(rand.NewSource(12))
	net := NewSequential(
		NewConv2D(1, 8, 8, 4, 3, 2, 1, rng), // -> (4,4,4)
		NewLeakyReLU(0.2),
		NewFlatten(),
		NewDense(64, 1, rng),
	)
	x := randInput(rng, 2, 1, 8, 8)
	out := net.Forward(x, true)
	loss := newScalarLoss(out.Shape(), rng)
	net.ZeroGrads()
	dx := net.Backward(loss.proj.Clone())
	const h = 1e-5
	eval := func() float64 { return loss.value(net.Forward(x, true)) }
	for _, i := range sampleIndices(x.Size(), 10, rng) {
		orig := x.Data[i]
		x.Data[i] = orig + h
		fp := eval()
		x.Data[i] = orig - h
		fm := eval()
		x.Data[i] = orig
		if relErr((fp-fm)/(2*h), float64(dx.Data[i])) > 1e-4 {
			t.Fatalf("input[%d] gradient mismatch", i)
		}
	}
}
