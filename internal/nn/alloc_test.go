package nn

import (
	"math/rand"
	"testing"

	"mdgan/internal/tensor"
)

// Steady-state allocation regressions: after warm-up, a training step
// (forward + backward) through the layer stacks must stay under a tight
// allocation budget — layer outputs, gradients and conv workspaces all
// live in reused or pooled buffers. The budgets leave headroom only for
// the worker-pool fan-out bookkeeping and reshape views.

func trainStep(net *Sequential, x, grad *tensor.Tensor) {
	net.ZeroGrads()
	net.Forward(x, true)
	net.Backward(grad)
}

func TestDenseStackSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	net := NewSequential(
		NewDense(64, 48, rng),
		NewLeakyReLU(0.2),
		NewDense(48, 48, rng),
		NewTanh(),
		NewDense(48, 1, rng),
	)
	x := randInput(rng, 16, 64)
	grad := randInput(rng, 16, 1)
	for i := 0; i < 3; i++ {
		trainStep(net, x, grad)
	}
	n := testing.AllocsPerRun(50, func() { trainStep(net, x, grad) })
	// The only steady-state allocations are the fan-out closures built
	// when a matmul crosses the parallel grain (one per large matmul).
	budget := 16.0
	if raceEnabled {
		budget *= 2 // sporadic pool misses under the race detector
	}
	if n > budget {
		t.Fatalf("dense stack allocates %v per step, budget %v", n, budget)
	}
}

func TestConvStackSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	net := NewSequential(
		NewConv2D(1, 16, 16, 8, 3, 2, 1, rng), // -> (8, 8, 8)
		NewLeakyReLU(0.2),
		NewConv2D(8, 8, 8, 16, 3, 2, 1, rng), // -> (16, 4, 4)
		NewLeakyReLU(0.2),
		NewFlatten(),
		NewDense(256, 1, rng),
	)
	x := randInput(rng, 8, 1, 16, 16)
	grad := randInput(rng, 8, 1)
	for i := 0; i < 3; i++ {
		trainStep(net, x, grad)
	}
	n := testing.AllocsPerRun(50, func() { trainStep(net, x, grad) })
	// Conv layers Get/Put pooled workspaces and may fan out to the
	// worker pool (a WaitGroup + closure per parallel region), plus the
	// Flatten reshape views.
	budget := 32.0
	if raceEnabled {
		budget *= 2 // sporadic pool misses under the race detector
	}
	if n > budget {
		t.Fatalf("conv stack allocates %v per step, budget %v", n, budget)
	}
}

// TestConvTransposeFusedStepAllocs pins the fused ConvTranspose2D path
// on a single layer: one training step draws only the col output
// workspace and the two channel-major transients (dx̂, x̂ — each just
// InC·n·hw) from the pool. The gradient's im2col matrix — the old gcol
// workspace, the largest buffer of the pass — is consumed through the
// fused GEMM packers and never exists, so steady state is nothing but
// fan-out bookkeeping.
func TestConvTransposeFusedStepAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	net := NewSequential(
		NewConvTranspose2D(8, 7, 7, 4, 5, 2, 2, 1, rng), // -> (4, 14, 14)
	)
	x := randInput(rng, 4, 8, 7, 7)
	grad := randInput(rng, 4, 4, 14, 14)
	for i := 0; i < 3; i++ {
		trainStep(net, x, grad)
	}
	n := testing.AllocsPerRun(50, func() { trainStep(net, x, grad) })
	budget := 20.0
	if raceEnabled {
		// The race detector makes sync.Pool drop items at random, and the
		// fused path cycles several pooled objects per step (workspaces,
		// GEMM run state, scheduler regions), so the flat x2 convention
		// undercounts here.
		budget = 80.0
	}
	if n > budget {
		t.Fatalf("fused convT step allocates %v per step, budget %v", n, budget)
	}
}

func TestConvTransposeStackSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	net := NewSequential(
		NewDense(16, 4*4*4, rng),
		NewReLU(),
		NewReshape(4, 4, 4),
		NewConvTranspose2D(4, 4, 4, 2, 4, 2, 1, 0, rng), // -> (2, 8, 8)
		NewTanh(),
	)
	x := randInput(rng, 8, 16)
	grad := randInput(rng, 8, 2, 8, 8)
	for i := 0; i < 3; i++ {
		trainStep(net, x, grad)
	}
	n := testing.AllocsPerRun(50, func() { trainStep(net, x, grad) })
	budget := 32.0
	if raceEnabled {
		budget *= 2 // sporadic pool misses under the race detector
	}
	if n > budget {
		t.Fatalf("convT stack allocates %v per step, budget %v", n, budget)
	}
}
