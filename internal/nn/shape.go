package nn

import "mdgan/internal/tensor"

// Reshape reinterprets the per-sample volume with a new trailing shape,
// keeping the batch dimension. Use it to bridge Dense and Conv blocks
// (e.g. the paper's generators reshape a fully-connected output into a
// (C, H, W) feature map before transposed convolutions).
type Reshape struct {
	To      []int // per-sample shape
	inShape []int
}

// NewReshape builds a Reshape to the given per-sample shape.
func NewReshape(to ...int) *Reshape { return &Reshape{To: append([]int(nil), to...)} }

// Forward reshapes (N, ...) to (N, To...).
func (r *Reshape) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.inShape = x.Shape()
	shape := append([]int{x.Dim(0)}, r.To...)
	return x.Reshape(shape...)
}

// Backward restores the original shape.
func (r *Reshape) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(r.inShape...)
}

// Params reports no learnables.
func (r *Reshape) Params() []*Param { return nil }

// Clone returns a copy.
func (r *Reshape) Clone() Layer { return NewReshape(r.To...) }

// Flatten collapses each sample to a vector: (N, ...) → (N, V).
type Flatten struct {
	inShape []int
}

// NewFlatten builds a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens the trailing dimensions.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = x.Shape()
	n := x.Dim(0)
	return x.Reshape(n, x.Size()/n)
}

// Backward restores the original shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params reports no learnables.
func (f *Flatten) Params() []*Param { return nil }

// Clone returns a copy.
func (f *Flatten) Clone() Layer { return NewFlatten() }
