package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mdgan/internal/tensor"
)

func smallNet(rng *rand.Rand) *Sequential {
	return NewSequential(
		NewDense(4, 6, rng),
		NewBatchNorm(6),
		NewLeakyReLU(0.2),
		NewDense(6, 3, rng),
	)
}

func TestParamVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := smallNet(rng)
	b := smallNet(rng)
	v := a.ParamVector()
	if len(v) != a.NumParams() {
		t.Fatalf("vector length %d != NumParams %d", len(v), a.NumParams())
	}
	if err := b.SetParamVector(v); err != nil {
		t.Fatal(err)
	}
	x := randInput(rng, 3, 4)
	ya := a.Forward(x, false)
	yb := b.Forward(x, false)
	if !ya.Equal(yb, 0) {
		t.Fatal("networks with identical parameters must agree")
	}
}

func TestSetParamVectorRejectsWrongLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := smallNet(rng)
	if err := n.SetParamVector(make([]float64, 3)); err == nil {
		t.Fatal("expected error for short vector")
	}
	if err := n.SetParamVector(make([]float64, n.NumParams()+1)); err == nil {
		t.Fatal("expected error for long vector")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := smallNet(rng)
	b := a.Clone()
	x := randInput(rng, 2, 4)
	if !a.Forward(x, false).Equal(b.Forward(x, false), 0) {
		t.Fatal("clone must start identical")
	}
	// Mutate the clone; original must not change.
	b.Params()[0].W.Data[0] += 1
	if a.Forward(x, false).Equal(b.Forward(x, false), 0) {
		t.Fatal("clone must not share parameter storage")
	}
}

func TestParamSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := smallNet(rng)
	b := smallNet(rng)
	var buf bytes.Buffer
	n, err := a.WriteParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != a.EncodedParamSize() {
		t.Fatalf("wrote %d bytes, EncodedParamSize says %d", n, a.EncodedParamSize())
	}
	if _, err := b.ReadParams(&buf); err != nil {
		t.Fatal(err)
	}
	x := randInput(rng, 2, 4)
	if !a.Forward(x, false).Equal(b.Forward(x, false), 0) {
		t.Fatal("serialisation round trip must preserve behaviour")
	}
}

func TestReadParamsRejectsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := smallNet(rng)
	other := NewSequential(NewDense(9, 9, rng))
	var buf bytes.Buffer
	if _, err := other.WriteParams(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadParams(&buf); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestZeroGradsAndGradNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := smallNet(rng)
	x := randInput(rng, 3, 4)
	out := n.Forward(x, true)
	n.Backward(tensor.Ones(out.Shape()...))
	if n.GradNorm() == 0 {
		t.Fatal("expected non-zero gradients after backward")
	}
	n.ZeroGrads()
	if n.GradNorm() != 0 {
		t.Fatal("ZeroGrads must clear all gradients")
	}
}

func TestGradientAccumulationIsAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := smallNet(rng)
	x := randInput(rng, 3, 4)
	g := tensor.Ones(3, 3)

	n.ZeroGrads()
	n.Forward(x, true)
	n.Backward(g)
	once := n.GradVector()

	n.ZeroGrads()
	n.Forward(x, true)
	n.Backward(g)
	n.Forward(x, true)
	n.Backward(g)
	twice := n.GradVector()

	for i := range once {
		// Mixed absolute/relative bound: near-zero gradients see f32
		// cancellation noise that a pure relative error over-penalises.
		if d := math.Abs(2*once[i] - twice[i]); d > tensor.Tol(1e-9, 1e-5)*(1+math.Abs(2*once[i])) {
			t.Fatalf("gradient accumulation not additive at %d: %g vs %g", i, 2*once[i], twice[i])
		}
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewDropout(0.5, rng)
	x := tensor.Ones(1, 1000)
	yTrain := d.Forward(x, true)
	zeros := 0
	for _, v := range yTrain.Data {
		if v == 0 {
			zeros++
		} else if v != 2 { // inverted dropout rescale 1/(1-0.5)
			t.Fatalf("surviving activation = %v, want 2", v)
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("dropped %d of 1000, want ~500", zeros)
	}
	yEval := d.Forward(x, false)
	if !yEval.Equal(x, 0) {
		t.Fatal("eval mode must be identity")
	}
}

func TestBatchNormRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bn := NewBatchNorm(4)
	// Feed many training batches with mean 5, var 4.
	for i := 0; i < 200; i++ {
		x := tensor.New(16, 4)
		for j := range x.Data {
			x.Data[j] = tensor.Elem(5 + 2*rng.NormFloat64())
		}
		bn.Forward(x, true)
	}
	for c := 0; c < 4; c++ {
		if m := float64(bn.RunMean.W.Data[c]); m < 4.5 || m > 5.5 {
			t.Fatalf("running mean[%d] = %v, want ~5", c, m)
		}
		if v := float64(bn.RunVar.W.Data[c]); v < 3 || v > 5 {
			t.Fatalf("running var[%d] = %v, want ~4", c, v)
		}
	}
	// Eval mode on data with those stats should be ~standardised.
	x := tensor.New(64, 4)
	for j := range x.Data {
		x.Data[j] = tensor.Elem(5 + 2*rng.NormFloat64())
	}
	y := bn.Forward(x, false)
	if m := y.Mean(); m < -0.2 || m > 0.2 {
		t.Fatalf("eval output mean %v, want ~0", m)
	}
}

func TestMinibatchDiscriminationShapesAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := NewMinibatchDiscrimination(5, 4, 3, rng)
	x := randInput(rng, 6, 5)
	y := l.Forward(x, true)
	if y.Dim(0) != 6 || y.Dim(1) != 9 {
		t.Fatalf("output shape %v, want (6, 9)", y.Shape())
	}
	// Pass-through part intact.
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			if y.At(i, j) != x.At(i, j) {
				t.Fatal("pass-through features altered")
			}
		}
	}
	// Similarity features in (0, N−1].
	for i := 0; i < 6; i++ {
		for j := 5; j < 9; j++ {
			v := y.At(i, j)
			if v <= 0 || v > 5 {
				t.Fatalf("similarity feature %v out of range", v)
			}
		}
	}
}

func TestConvShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewConv2D(3, 32, 32, 16, 3, 2, 1, rng)
	oc, oh, ow := c.OutShape()
	if oc != 16 || oh != 16 || ow != 16 {
		t.Fatalf("conv out shape (%d,%d,%d), want (16,16,16)", oc, oh, ow)
	}
	ct := NewConvTranspose2D(16, 16, 16, 3, 4, 2, 1, 0, rng)
	tc, th, tw := ct.OutShape()
	if tc != 3 || th != 32 || tw != 32 {
		t.Fatalf("convT out shape (%d,%d,%d), want (3,32,32)", tc, th, tw)
	}
	x := randInput(rng, 2, 3, 32, 32)
	y := c.Forward(x, true)
	if y.Dim(1) != 16 || y.Dim(2) != 16 || y.Dim(3) != 16 {
		t.Fatalf("forward shape %v", y.Shape())
	}
	z := ct.Forward(y, true)
	if z.Dim(1) != 3 || z.Dim(2) != 32 || z.Dim(3) != 32 {
		t.Fatalf("transpose forward shape %v", z.Shape())
	}
}

// Regression (PR 3): Dropout.Forward reused its Ensure'd output buffer
// without writing zeros for dropped units, so from the second batch on,
// dropped positions leaked the PREVIOUS batch's (scaled) activations.
func TestDropoutZeroesDroppedUnitsAcrossBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := NewDropout(0.5, rng)
	// First pass fills the layer-owned buffer with non-zero survivors.
	d.Forward(tensor.Full(7, 1, 512), true)
	// Second pass: every output must be 0 (dropped) or exactly 2·3=6.
	y := d.Forward(tensor.Full(3, 1, 512), true)
	zeros := 0
	for i, v := range y.Data {
		if v == 0 {
			zeros++
		} else if v != 6 {
			t.Fatalf("position %d leaked stale value %v (want 0 or 6)", i, v)
		}
	}
	if zeros == 0 {
		t.Fatal("no units dropped; test is vacuous")
	}
}
