package nn

import (
	"fmt"
	"math"

	"mdgan/internal/tensor"
)

// Losses return both the scalar loss value and the gradient with respect
// to the logits, ready to feed Sequential.Backward. All losses average
// over the batch, matching the 1/b factors of the paper's Jdisc/Jgen.
// Natural logarithms are used throughout; the paper writes log₂, which
// differs by a constant factor absorbed into the learning rate.

// BCEWithLogits computes the binary cross-entropy between sigmoid(logits)
// and a constant target (1 = real, 0 = generated), in the numerically
// stable formulation max(s,0) − s·y + log(1+e^{−|s|}).
func BCEWithLogits(logits *tensor.Tensor, target float64) (float64, *tensor.Tensor) {
	n := float64(logits.Size())
	grad := tensor.New(logits.Shape()...)
	loss := 0.0
	for i, sv := range logits.Data {
		s := float64(sv)
		loss += math.Max(s, 0) - s*target + math.Log1p(math.Exp(-math.Abs(s)))
		grad.Data[i] = tensor.Elem((sigmoid(s) - target) / n)
	}
	return loss / n, grad
}

func sigmoid(s float64) float64 { return 1 / (1 + math.Exp(-s)) }

// GenLossMode selects the generator objective.
type GenLossMode int

const (
	// GenLossPaper minimises B̃ = E log(1−D(G(z))), the original
	// objective written in the paper (§II.2).
	GenLossPaper GenLossMode = iota
	// GenLossNonSaturating minimises −E log D(G(z)), the heuristic of
	// Goodfellow et al. that avoids vanishing gradients early in
	// training. Same fixed points, healthier dynamics.
	GenLossNonSaturating
)

// GeneratorLoss evaluates the generator objective on the discriminator's
// source logits for generated samples and returns (loss, ∂loss/∂logits).
// Backpropagating the returned gradient through D and then G yields
// exactly the Δw of paper §IV-B2; stopping at D's input yields the error
// feedback F_n.
func GeneratorLoss(srcLogits *tensor.Tensor, mode GenLossMode) (float64, *tensor.Tensor) {
	n := float64(srcLogits.Size())
	grad := tensor.New(srcLogits.Shape()...)
	loss := 0.0
	switch mode {
	case GenLossPaper:
		// B̃ = (1/b) Σ log(1−σ(s));  d/ds = −σ(s).
		for i, sv := range srcLogits.Data {
			s := float64(sv)
			// log(1−σ(s)) = −s − log(1+e^{−s}) = −max(s,0) − log(1+e^{−|s|})
			loss += -math.Max(s, 0) - math.Log1p(math.Exp(-math.Abs(s)))
			grad.Data[i] = tensor.Elem(-sigmoid(s) / n)
		}
	case GenLossNonSaturating:
		// −(1/b) Σ log σ(s);  d/ds = σ(s) − 1.
		for i, sv := range srcLogits.Data {
			s := float64(sv)
			loss += math.Max(-s, 0) + math.Log1p(math.Exp(-math.Abs(s)))
			grad.Data[i] = tensor.Elem((sigmoid(s) - 1) / n)
		}
	default:
		panic(fmt.Sprintf("nn: unknown GenLossMode %d", mode))
	}
	return loss / n, grad
}

// Softmax returns row-wise softmax probabilities of logits (N, K),
// computed with the max-subtraction trick.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		m := math.Inf(-1)
		for _, v := range row {
			if float64(v) > m {
				m = float64(v)
			}
		}
		sum := 0.0
		orow := out.Data[i*k : (i+1)*k]
		for j, v := range row {
			e := math.Exp(float64(v) - m)
			orow[j] = tensor.Elem(e)
			sum += e
		}
		inv := tensor.Elem(1 / sum)
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// SoftmaxCrossEntropy computes the mean cross-entropy between the row
// softmax of logits (N, K) and integer labels, returning the loss and
// ∂loss/∂logits = (softmax − onehot)/N.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for %d logit rows", len(labels), n))
	}
	probs := Softmax(logits)
	loss := 0.0
	for i, y := range labels {
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, k))
		}
		loss -= math.Log(math.Max(probs.At(i, y), 1e-300))
	}
	// The probabilities are no longer needed once the loss is summed, so
	// the gradient (softmax − onehot)/N reuses their tensor in place.
	grad := probs.ScaleInPlace(1 / float64(n))
	for i, y := range labels {
		grad.Data[i*k+y] -= tensor.Elem(1 / float64(n))
	}
	return loss / float64(n), grad
}

// Accuracy returns the fraction of rows whose arg-max matches the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	pred := logits.ArgMaxRows()
	hit := 0
	for i, p := range pred {
		if p == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(labels))
}
