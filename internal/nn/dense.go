package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mdgan/internal/tensor"
)

// Dense is a fully-connected layer: y = x·W + b with x (N, in),
// W (in, out), b (1, out).
type Dense struct {
	In, Out int
	W, B    *Param
	x       *tensor.Tensor // cached input
	out     *tensor.Tensor // layer-owned output buffer
	dx      *tensor.Tensor // layer-owned input-gradient buffer
}

// NewDense creates a Dense layer with Glorot-uniform weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	w := tensor.New(in, out)
	glorotUniform(w, in, out, rng)
	return &Dense{
		In: in, Out: out,
		W: newParam(fmt.Sprintf("dense%dx%d.W", in, out), w),
		B: newParam(fmt.Sprintf("dense%dx%d.b", in, out), tensor.New(1, out)),
	}
}

// glorotUniform fills w with U(−a, a), a = sqrt(6/(fanIn+fanOut)).
func glorotUniform(w *tensor.Tensor, fanIn, fanOut int, rng *rand.Rand) {
	a := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w.Data {
		w.Data[i] = tensor.Elem((rng.Float64()*2 - 1) * a)
	}
}

// Forward computes x·W + b into a layer-owned buffer (valid until the
// next Forward call).
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 {
		x = x.Reshape(x.Dim(0), x.Size()/x.Dim(0))
	}
	if x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: Dense expects %d features, got shape %v", d.In, x.Shape()))
	}
	d.x = x
	d.out = tensor.Ensure(d.out, x.Dim(0), d.Out)
	tensor.MatMulInto(d.out, x, d.W.W)
	return d.out.AddRowVecInPlace(d.B.W)
}

// Backward accumulates dW += xᵀ·g, db += Σ_rows g directly into the
// parameter gradients and returns g·Wᵀ in a layer-owned buffer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if grad.Rank() != 2 {
		grad = grad.Reshape(grad.Dim(0), grad.Size()/grad.Dim(0))
	}
	tensor.MatMulT1Add(d.W.Grad, d.x, grad)
	grad.SumRowsAdd(d.B.Grad)
	d.dx = tensor.Ensure(d.dx, grad.Dim(0), d.In)
	tensor.MatMulT2Into(d.dx, grad, d.W.W)
	return d.dx
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Clone returns a deep copy of the layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		In: d.In, Out: d.Out,
		W: newParam(d.W.Name, d.W.W.Clone()),
		B: newParam(d.B.Name, d.B.W.Clone()),
	}
}
