package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mdgan/internal/tensor"
)

// Dense is a fully-connected layer: y = x·W + b with x (N, in),
// W (in, out), b (1, out).
type Dense struct {
	In, Out int
	W, B    *Param
	x       *tensor.Tensor // cached input
}

// NewDense creates a Dense layer with Glorot-uniform weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	w := tensor.New(in, out)
	glorotUniform(w, in, out, rng)
	return &Dense{
		In: in, Out: out,
		W: newParam(fmt.Sprintf("dense%dx%d.W", in, out), w),
		B: newParam(fmt.Sprintf("dense%dx%d.b", in, out), tensor.New(1, out)),
	}
}

// glorotUniform fills w with U(−a, a), a = sqrt(6/(fanIn+fanOut)).
func glorotUniform(w *tensor.Tensor, fanIn, fanOut int, rng *rand.Rand) {
	a := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w.Data {
		w.Data[i] = (rng.Float64()*2 - 1) * a
	}
}

// Forward computes x·W + b.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 {
		x = x.Reshape(x.Dim(0), x.Size()/x.Dim(0))
	}
	if x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: Dense expects %d features, got shape %v", d.In, x.Shape()))
	}
	d.x = x
	return tensor.AddRowVec(tensor.MatMul(x, d.W.W), d.B.W)
}

// Backward accumulates dW = xᵀ·g, db = Σ_rows g and returns g·Wᵀ.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if grad.Rank() != 2 {
		grad = grad.Reshape(grad.Dim(0), grad.Size()/grad.Dim(0))
	}
	d.W.Grad.AddInPlace(tensor.MatMulT1(d.x, grad))
	d.B.Grad.AddInPlace(grad.SumRows())
	return tensor.MatMulT2(grad, d.W.W)
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Clone returns a deep copy of the layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		In: d.In, Out: d.Out,
		W: newParam(d.W.Name, d.W.W.Clone()),
		B: newParam(d.B.Name, d.B.W.Clone()),
	}
}
