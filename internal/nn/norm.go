package nn

import (
	"fmt"
	"math"

	"mdgan/internal/tensor"
)

// BatchNorm normalises each of C features over the batch (and any
// spatial extent): given input (N, C) or (N, C, H, W) it computes
// y = γ·(x−μ)/√(σ²+ε) + β per channel, maintaining running statistics
// for evaluation mode. Generators in the paper's ACGAN architectures use
// batch normalisation between up-sampling layers.
type BatchNorm struct {
	C        int
	Eps      float64
	Momentum float64
	Gamma    *Param
	Beta     *Param
	// Running statistics (not learned, but part of the transferable
	// state — they are serialised with the parameters so a swapped
	// discriminator behaves identically on its new worker).
	RunMean *Param
	RunVar  *Param

	// caches and layer-owned buffers
	xhat    *tensor.Tensor
	out     *tensor.Tensor
	dx      *tensor.Tensor
	std     []float64 // per-channel 1/sqrt(var+eps)
	shape   []int
	spatial int
}

// NewBatchNorm builds a BatchNorm over c channels.
func NewBatchNorm(c int) *BatchNorm {
	bn := &BatchNorm{
		C: c, Eps: 1e-5, Momentum: 0.9,
		Gamma:   newParam(fmt.Sprintf("bn%d.gamma", c), tensor.Ones(1, c)),
		Beta:    newParam(fmt.Sprintf("bn%d.beta", c), tensor.New(1, c)),
		RunMean: newParam(fmt.Sprintf("bn%d.rmean", c), tensor.New(1, c)),
		RunVar:  newParam(fmt.Sprintf("bn%d.rvar", c), tensor.Ones(1, c)),
	}
	return bn
}

// split interprets the input as (N, C, S) where S is the flattened
// spatial extent.
func (bn *BatchNorm) split(x *tensor.Tensor) (n, s int) {
	n = x.Dim(0)
	vol := x.Size() / n
	if vol%bn.C != 0 {
		panic(fmt.Sprintf("nn: BatchNorm(%d) got per-sample volume %d", bn.C, vol))
	}
	return n, vol / bn.C
}

// Forward normalises x.
func (bn *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, s := bn.split(x)
	bn.shape = x.Shape()
	bn.spatial = s
	bn.out = tensor.Ensure(bn.out, x.Shape()...)
	out := bn.out
	bn.xhat = tensor.Ensure(bn.xhat, x.Shape()...)
	if bn.std == nil || len(bn.std) != bn.C {
		bn.std = make([]float64, bn.C)
	}
	cnt := float64(n * s)
	for c := 0; c < bn.C; c++ {
		var mean, variance float64
		if train {
			// Batch statistics accumulate in float64 regardless of the
			// compiled Elem: a channel's sum spans n·s values.
			sum := 0.0
			for i := 0; i < n; i++ {
				base := (i*bn.C + c) * s
				for j := 0; j < s; j++ {
					sum += float64(x.Data[base+j])
				}
			}
			mean = sum / cnt
			sq := 0.0
			for i := 0; i < n; i++ {
				base := (i*bn.C + c) * s
				for j := 0; j < s; j++ {
					d := float64(x.Data[base+j]) - mean
					sq += d * d
				}
			}
			variance = sq / cnt
			m := bn.Momentum
			bn.RunMean.W.Data[c] = tensor.Elem(m*float64(bn.RunMean.W.Data[c]) + (1-m)*mean)
			bn.RunVar.W.Data[c] = tensor.Elem(m*float64(bn.RunVar.W.Data[c]) + (1-m)*variance)
		} else {
			mean = float64(bn.RunMean.W.Data[c])
			variance = float64(bn.RunVar.W.Data[c])
		}
		inv := 1 / sqrt(variance+bn.Eps)
		bn.std[c] = inv
		ge, be := bn.Gamma.W.Data[c], bn.Beta.W.Data[c]
		me, ie := tensor.Elem(mean), tensor.Elem(inv)
		for i := 0; i < n; i++ {
			base := (i*bn.C + c) * s
			for j := 0; j < s; j++ {
				xh := (x.Data[base+j] - me) * ie
				bn.xhat.Data[base+j] = xh
				out.Data[base+j] = ge*xh + be
			}
		}
	}
	return out
}

// Backward implements the standard batch-norm gradient (training-mode
// statistics).
func (bn *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := bn.shape[0]
	s := bn.spatial
	cnt := float64(n * s)
	bn.dx = tensor.Ensure(bn.dx, bn.shape...)
	dx := bn.dx
	for c := 0; c < bn.C; c++ {
		g := float64(bn.Gamma.W.Data[c])
		inv := bn.std[c]
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			base := (i*bn.C + c) * s
			for j := 0; j < s; j++ {
				dy := float64(grad.Data[base+j])
				sumDy += dy
				sumDyXhat += dy * float64(bn.xhat.Data[base+j])
			}
		}
		bn.Beta.Grad.Data[c] += tensor.Elem(sumDy)
		bn.Gamma.Grad.Data[c] += tensor.Elem(sumDyXhat)
		scale := tensor.Elem(g * inv)
		mDy, mDyXh := tensor.Elem(sumDy/cnt), tensor.Elem(sumDyXhat/cnt)
		for i := 0; i < n; i++ {
			base := (i*bn.C + c) * s
			for j := 0; j < s; j++ {
				dy := grad.Data[base+j]
				xh := bn.xhat.Data[base+j]
				dx.Data[base+j] = scale * (dy - mDy - xh*mDyXh)
			}
		}
	}
	return dx
}

func sqrt(v float64) float64 { return math.Sqrt(v) }

// Params returns γ, β and the running statistics. The running stats have
// zero gradient always but riding in Params keeps them inside the
// parameter (de)serialisation path, which matters for discriminator
// swaps (paper §IV-C1): a swap must carry the full behavioural state.
func (bn *BatchNorm) Params() []*Param {
	return []*Param{bn.Gamma, bn.Beta, bn.RunMean, bn.RunVar}
}

// Clone returns a deep copy.
func (bn *BatchNorm) Clone() Layer {
	out := NewBatchNorm(bn.C)
	out.Eps, out.Momentum = bn.Eps, bn.Momentum
	out.Gamma.W.CopyFrom(bn.Gamma.W)
	out.Beta.W.CopyFrom(bn.Beta.W)
	out.RunMean.W.CopyFrom(bn.RunMean.W)
	out.RunVar.W.CopyFrom(bn.RunVar.W)
	return out
}
