package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mdgan/internal/tensor"
)

// MinibatchDiscrimination implements the layer of Salimans et al. (2016)
// used by the paper's discriminators: each sample is compared to every
// other sample of the minibatch through learned projections, so the
// discriminator can detect a generator that collapses to a single mode.
//
// Input x (N, A); learned tensor T (A, B·C); M = x·T viewed (N, B, C);
// o_{i,b} = Σ_{j≠i} exp(−‖M_{i,b,·} − M_{j,b,·}‖₁); output is
// concat(x, o) of shape (N, A+B).
type MinibatchDiscrimination struct {
	A, B, C int
	T       *Param
	x       *tensor.Tensor
	m       *tensor.Tensor
	out     *tensor.Tensor
	dm      *tensor.Tensor
	dx      *tensor.Tensor
	cexp    []float64 // cached exp(−d) per (i, j, b)
}

// NewMinibatchDiscrimination builds the layer with nFeatures input
// features, nKernels comparison kernels (B) of dimension kernelDim (C).
func NewMinibatchDiscrimination(nFeatures, nKernels, kernelDim int, rng *rand.Rand) *MinibatchDiscrimination {
	t := tensor.New(nFeatures, nKernels*kernelDim)
	glorotUniform(t, nFeatures, nKernels*kernelDim, rng)
	return &MinibatchDiscrimination{
		A: nFeatures, B: nKernels, C: kernelDim,
		T: newParam(fmt.Sprintf("mbd%dx%dx%d.T", nFeatures, nKernels, kernelDim), t),
	}
}

// Forward computes the minibatch features and concatenates them to x.
func (l *MinibatchDiscrimination) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.A {
		panic(fmt.Sprintf("nn: MinibatchDiscrimination expects (N, %d), got %v", l.A, x.Shape()))
	}
	n := x.Dim(0)
	l.x = x
	l.m = tensor.Ensure(l.m, n, l.B*l.C)
	tensor.MatMulInto(l.m, x, l.T.W) // (N, B*C)
	if cap(l.cexp) < n*n*l.B {
		l.cexp = make([]float64, n*n*l.B)
	}
	l.cexp = l.cexp[:n*n*l.B]
	l.out = tensor.Ensure(l.out, n, l.A+l.B)
	l.out.Zero()
	out := l.out
	for i := 0; i < n; i++ {
		copy(out.Data[i*(l.A+l.B):i*(l.A+l.B)+l.A], x.Data[i*l.A:(i+1)*l.A])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for b := 0; b < l.B; b++ {
				d := 0.0
				mi := l.m.Data[i*l.B*l.C+b*l.C : i*l.B*l.C+(b+1)*l.C]
				mj := l.m.Data[j*l.B*l.C+b*l.C : j*l.B*l.C+(b+1)*l.C]
				for c := range mi {
					d += math.Abs(float64(mi[c]) - float64(mj[c]))
				}
				e := math.Exp(-d)
				l.cexp[(i*n+j)*l.B+b] = e
				l.cexp[(j*n+i)*l.B+b] = e
				out.Data[i*(l.A+l.B)+l.A+b] += tensor.Elem(e)
				out.Data[j*(l.A+l.B)+l.A+b] += tensor.Elem(e)
			}
		}
	}
	return out
}

// Backward propagates through both the concatenated pass-through part
// and the similarity features.
func (l *MinibatchDiscrimination) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := l.x.Dim(0)
	l.dm = tensor.Ensure(l.dm, n, l.B*l.C)
	l.dm.Zero()
	dm := l.dm
	l.dx = tensor.Ensure(l.dx, n, l.A)
	l.dx.Zero()
	dx := l.dx
	// Pass-through component.
	for i := 0; i < n; i++ {
		copy(dx.Data[i*l.A:(i+1)*l.A], grad.Data[i*(l.A+l.B):i*(l.A+l.B)+l.A])
	}
	// Similarity component: for every pair (i, j) and kernel b,
	// dM_{i,b,c} += −(go_{i,b} + go_{j,b})·c_{ijb}·sign(M_{i,b,c} − M_{j,b,c}).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for b := 0; b < l.B; b++ {
				e := l.cexp[(i*n+j)*l.B+b]
				if e == 0 {
					continue
				}
				gij := float64(grad.Data[i*(l.A+l.B)+l.A+b] + grad.Data[j*(l.A+l.B)+l.A+b])
				if gij == 0 {
					continue
				}
				scale := tensor.Elem(-gij * e)
				mi := l.m.Data[i*l.B*l.C+b*l.C : i*l.B*l.C+(b+1)*l.C]
				mj := l.m.Data[j*l.B*l.C+b*l.C : j*l.B*l.C+(b+1)*l.C]
				dmi := dm.Data[i*l.B*l.C+b*l.C : i*l.B*l.C+(b+1)*l.C]
				dmj := dm.Data[j*l.B*l.C+b*l.C : j*l.B*l.C+(b+1)*l.C]
				for c := range mi {
					s := sign(mi[c] - mj[c])
					dmi[c] += scale * s
					dmj[c] -= scale * s
				}
			}
		}
	}
	// dT += xᵀ·dM; dx += dM·Tᵀ.
	tensor.MatMulT1Add(l.T.Grad, l.x, dm)
	tensor.MatMulT2Add(dx, dm, l.T.W)
	return dx
}

func sign(v tensor.Elem) tensor.Elem {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Params returns the projection tensor.
func (l *MinibatchDiscrimination) Params() []*Param { return []*Param{l.T} }

// Clone returns a deep copy.
func (l *MinibatchDiscrimination) Clone() Layer {
	return &MinibatchDiscrimination{
		A: l.A, B: l.B, C: l.C,
		T: newParam(l.T.Name, l.T.W.Clone()),
	}
}
