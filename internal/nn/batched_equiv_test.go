package nn

import (
	"math"
	"math/rand"
	"testing"

	"mdgan/internal/tensor"
)

// The batched conv kernels (one im2col workspace and one matmul per
// batch) must reproduce the per-image definition exactly. The reference
// implementations below are direct nested loops straight from the conv
// equations — independent of im2col, matmul and the workspace pool.

// refConvForward computes a Conv2D forward pass by definition.
func refConvForward(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	g := c.geom
	n := x.Dim(0)
	out := tensor.New(n, c.OutC, g.outH, g.outW)
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.OutC; oc++ {
			for oy := 0; oy < g.outH; oy++ {
				for ox := 0; ox < g.outW; ox++ {
					sum := c.B.W.Data[oc]
					for ic := 0; ic < g.inC; ic++ {
						for ki := 0; ki < g.kh; ki++ {
							for kj := 0; kj < g.kw; kj++ {
								iy := oy*g.stride + ki - g.pad
								ix := ox*g.stride + kj - g.pad
								if iy < 0 || iy >= g.inH || ix < 0 || ix >= g.inW {
									continue
								}
								w := c.W.W.Data[oc*g.inC*g.kh*g.kw+(ic*g.kh+ki)*g.kw+kj]
								sum += w * x.Data[((i*g.inC+ic)*g.inH+iy)*g.inW+ix]
							}
						}
					}
					out.Data[((i*c.OutC+oc)*g.outH+oy)*g.outW+ox] = sum
				}
			}
		}
	}
	return out
}

// refConvBackward computes dW, dB, dx of a Conv2D by definition.
func refConvBackward(c *Conv2D, x, grad *tensor.Tensor) (dW, dB, dx *tensor.Tensor) {
	g := c.geom
	n := x.Dim(0)
	dW = tensor.New(c.W.W.Shape()...)
	dB = tensor.New(c.B.W.Shape()...)
	dx = tensor.New(x.Shape()...)
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.OutC; oc++ {
			for oy := 0; oy < g.outH; oy++ {
				for ox := 0; ox < g.outW; ox++ {
					gv := grad.Data[((i*c.OutC+oc)*g.outH+oy)*g.outW+ox]
					dB.Data[oc] += gv
					for ic := 0; ic < g.inC; ic++ {
						for ki := 0; ki < g.kh; ki++ {
							for kj := 0; kj < g.kw; kj++ {
								iy := oy*g.stride + ki - g.pad
								ix := ox*g.stride + kj - g.pad
								if iy < 0 || iy >= g.inH || ix < 0 || ix >= g.inW {
									continue
								}
								wi := oc*g.inC*g.kh*g.kw + (ic*g.kh+ki)*g.kw + kj
								xi := ((i*g.inC+ic)*g.inH+iy)*g.inW + ix
								dW.Data[wi] += gv * x.Data[xi]
								dx.Data[xi] += gv * c.W.W.Data[wi]
							}
						}
					}
				}
			}
		}
	}
	return dW, dB, dx
}

// refConvTForward computes a ConvTranspose2D forward pass by
// definition: every input pixel paints a k×k patch into the output.
func refConvTForward(c *ConvTranspose2D, x *tensor.Tensor) *tensor.Tensor {
	g := c.geom // adjoint geometry: g.inH/g.inW are OUR output dims
	n := x.Dim(0)
	out := tensor.New(n, c.OutC, g.inH, g.inW)
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.OutC; oc++ {
			base := (i*c.OutC + oc) * g.inH * g.inW
			for p := 0; p < g.inH*g.inW; p++ {
				out.Data[base+p] = c.B.W.Data[oc]
			}
		}
		for ic := 0; ic < c.InC; ic++ {
			for iy := 0; iy < c.inH; iy++ {
				for ix := 0; ix < c.inW; ix++ {
					xv := x.Data[((i*c.InC+ic)*c.inH+iy)*c.inW+ix]
					for oc := 0; oc < c.OutC; oc++ {
						for ki := 0; ki < g.kh; ki++ {
							for kj := 0; kj < g.kw; kj++ {
								oy := iy*g.stride + ki - g.pad
								ox := ix*g.stride + kj - g.pad
								if oy < 0 || oy >= g.inH || ox < 0 || ox >= g.inW {
									continue
								}
								w := c.W.W.Data[ic*c.OutC*g.kh*g.kw+(oc*g.kh+ki)*g.kw+kj]
								out.Data[((i*c.OutC+oc)*g.inH+oy)*g.inW+ox] += w * xv
							}
						}
					}
				}
			}
		}
	}
	return out
}

// refConvTBackward computes dW, dB, dx of a ConvTranspose2D by
// definition (the adjoint of refConvTForward).
func refConvTBackward(c *ConvTranspose2D, x, grad *tensor.Tensor) (dW, dB, dx *tensor.Tensor) {
	g := c.geom
	n := x.Dim(0)
	dW = tensor.New(c.W.W.Shape()...)
	dB = tensor.New(c.B.W.Shape()...)
	dx = tensor.New(x.Shape()...)
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.OutC; oc++ {
			base := (i*c.OutC + oc) * g.inH * g.inW
			for p := 0; p < g.inH*g.inW; p++ {
				dB.Data[oc] += grad.Data[base+p]
			}
		}
		for ic := 0; ic < c.InC; ic++ {
			for iy := 0; iy < c.inH; iy++ {
				for ix := 0; ix < c.inW; ix++ {
					xi := ((i*c.InC+ic)*c.inH+iy)*c.inW + ix
					for oc := 0; oc < c.OutC; oc++ {
						for ki := 0; ki < g.kh; ki++ {
							for kj := 0; kj < g.kw; kj++ {
								oy := iy*g.stride + ki - g.pad
								ox := ix*g.stride + kj - g.pad
								if oy < 0 || oy >= g.inH || ox < 0 || ox >= g.inW {
									continue
								}
								wi := ic*c.OutC*g.kh*g.kw + (oc*g.kh+ki)*g.kw + kj
								gv := grad.Data[((i*c.OutC+oc)*g.inH+oy)*g.inW+ox]
								dW.Data[wi] += gv * x.Data[xi]
								dx.Data[xi] += gv * c.W.W.Data[wi]
							}
						}
					}
				}
			}
		}
	}
	return dW, dB, dx
}

func maxAbsDiff(a, b *tensor.Tensor) float64 {
	m := 0.0
	for i, v := range a.Data {
		if d := math.Abs(float64(v) - float64(b.Data[i])); d > m {
			m = d
		}
	}
	return m
}

// convTol is the batched-vs-reference tolerance: exact summation-order
// equivalence holds only in exact arithmetic, so the bound scales with
// the compiled element width (float32 rounding across the C·KH·KW and
// N·oHW accumulation depths reaches ~1e-4).
var convTol = tensor.Tol(1e-9, 1e-3)

func TestConv2DBatchedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, cfg := range []struct{ inC, h, w, outC, k, stride, pad, n int }{
		{1, 6, 6, 2, 3, 1, 1, 1},
		{2, 8, 8, 4, 3, 2, 1, 3},
		{3, 7, 5, 2, 3, 1, 0, 4},
		{2, 9, 9, 3, 5, 2, 2, 5}, // odd batch exercises the fan-out remainder
	} {
		l := NewConv2D(cfg.inC, cfg.h, cfg.w, cfg.outC, cfg.k, cfg.stride, cfg.pad, rng)
		for i := range l.B.W.Data {
			l.B.W.Data[i] = tensor.Elem(rng.NormFloat64() * 0.1)
		}
		x := randInput(rng, cfg.n, cfg.inC, cfg.h, cfg.w)
		got := l.Forward(x, true)
		want := refConvForward(l, x)
		if d := maxAbsDiff(got, want); d > convTol {
			t.Fatalf("%+v: forward deviates by %g", cfg, d)
		}

		grad := randInput(rng, cfg.n, cfg.outC, l.geom.outH, l.geom.outW)
		l.W.Grad.Zero()
		l.B.Grad.Zero()
		dx := l.Backward(grad)
		wantdW, wantdB, wantdx := refConvBackward(l, x, grad)
		if d := maxAbsDiff(l.W.Grad, wantdW); d > convTol {
			t.Fatalf("%+v: dW deviates by %g", cfg, d)
		}
		if d := maxAbsDiff(l.B.Grad, wantdB); d > convTol {
			t.Fatalf("%+v: dB deviates by %g", cfg, d)
		}
		if d := maxAbsDiff(dx, wantdx); d > convTol {
			t.Fatalf("%+v: dx deviates by %g", cfg, d)
		}
	}
}

func TestConvTranspose2DBatchedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, cfg := range []struct{ inC, h, w, outC, k, stride, pad, outPad, n int }{
		{3, 4, 4, 2, 4, 2, 1, 0, 1},
		{2, 4, 4, 2, 5, 2, 2, 1, 3},
		{4, 3, 5, 1, 3, 1, 1, 0, 4},
	} {
		l := NewConvTranspose2D(cfg.inC, cfg.h, cfg.w, cfg.outC, cfg.k, cfg.stride, cfg.pad, cfg.outPad, rng)
		for i := range l.B.W.Data {
			l.B.W.Data[i] = tensor.Elem(rng.NormFloat64() * 0.1)
		}
		x := randInput(rng, cfg.n, cfg.inC, cfg.h, cfg.w)
		got := l.Forward(x, true)
		want := refConvTForward(l, x)
		if d := maxAbsDiff(got, want); d > convTol {
			t.Fatalf("%+v: forward deviates by %g", cfg, d)
		}

		_, oh, ow := l.OutShape()
		grad := randInput(rng, cfg.n, cfg.outC, oh, ow)
		l.W.Grad.Zero()
		l.B.Grad.Zero()
		dx := l.Backward(grad)
		wantdW, wantdB, wantdx := refConvTBackward(l, x, grad)
		if d := maxAbsDiff(l.W.Grad, wantdW); d > convTol {
			t.Fatalf("%+v: dW deviates by %g", cfg, d)
		}
		if d := maxAbsDiff(l.B.Grad, wantdB); d > convTol {
			t.Fatalf("%+v: dB deviates by %g", cfg, d)
		}
		if d := maxAbsDiff(dx, wantdx); d > convTol {
			t.Fatalf("%+v: dx deviates by %g", cfg, d)
		}
	}
}

// TestConvForwardEvalMatchesTrain: the eval-mode forward (which releases
// its workspace immediately) must produce identical values.
func TestConvForwardEvalMatchesTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	l := NewConv2D(2, 8, 8, 3, 3, 2, 1, rng)
	x := randInput(rng, 2, 2, 8, 8)
	train := l.Forward(x, true).Clone()
	eval := l.Forward(x, false)
	if d := maxAbsDiff(train, eval); d != 0 {
		t.Fatalf("train/eval forward differ by %g", d)
	}
}
