package nn

import (
	"math"
	"math/rand"
	"testing"

	"mdgan/internal/tensor"
)

func TestBCEWithLogitsValuesAndGrads(t *testing.T) {
	// At logit 0, sigmoid = 0.5: loss = −log 0.5 = ln 2 for either target;
	// grad = (0.5 − y)/n.
	logits := tensor.New(2, 1)
	loss, grad := BCEWithLogits(logits, 1)
	if math.Abs(loss-math.Ln2) > 1e-12 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	if math.Abs(float64(grad.Data[0])-(-0.25)) > 1e-12 {
		t.Fatalf("grad = %v, want -0.25", grad.Data[0])
	}
	loss0, grad0 := BCEWithLogits(logits, 0)
	if math.Abs(loss0-math.Ln2) > 1e-12 || math.Abs(float64(grad0.Data[0])-0.25) > 1e-12 {
		t.Fatalf("target-0 case: loss %v grad %v", loss0, grad0.Data[0])
	}
}

func TestBCEWithLogitsNumericGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := randInput(rng, 5, 1)
	for _, target := range []float64{0, 1} {
		_, grad := BCEWithLogits(logits, target)
		const h = 1e-6
		for i := range logits.Data {
			// Measure the perturbation the Elem storage actually
			// realised so the check stays valid at float32, where
			// orig ± h quantises.
			orig := logits.Data[i]
			logits.Data[i] = orig + h
			hp := float64(logits.Data[i])
			fp, _ := BCEWithLogits(logits, target)
			logits.Data[i] = orig - h
			hm := float64(logits.Data[i])
			fm, _ := BCEWithLogits(logits, target)
			logits.Data[i] = orig
			if relErr((fp-fm)/(hp-hm), float64(grad.Data[i])) > 1e-6 {
				t.Fatalf("target %v, logit %d: bad grad", target, i)
			}
		}
	}
}

func TestGeneratorLossNumericGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	logits := randInput(rng, 6, 1)
	for _, mode := range []GenLossMode{GenLossPaper, GenLossNonSaturating} {
		_, grad := GeneratorLoss(logits, mode)
		const h = 1e-6
		for i := range logits.Data {
			orig := logits.Data[i]
			logits.Data[i] = orig + h
			hp := float64(logits.Data[i])
			fp, _ := GeneratorLoss(logits, mode)
			logits.Data[i] = orig - h
			hm := float64(logits.Data[i])
			fm, _ := GeneratorLoss(logits, mode)
			logits.Data[i] = orig
			if relErr((fp-fm)/(hp-hm), float64(grad.Data[i])) > 1e-6 {
				t.Fatalf("mode %v, logit %d: bad grad", mode, i)
			}
		}
	}
}

func TestGeneratorLossModesAgreeOnFixedPoint(t *testing.T) {
	// Both objectives push D(G(z)) up; at logit s the paper-mode gradient
	// is −σ(s)/n and the non-saturating one is (σ(s)−1)/n — both strictly
	// negative, so a gradient DESCENT step always increases the logit.
	logits := tensor.FromSlice([]tensor.Elem{-3, 0, 3}, 3, 1)
	_, gp := GeneratorLoss(logits, GenLossPaper)
	_, gn := GeneratorLoss(logits, GenLossNonSaturating)
	for i := range gp.Data {
		if gp.Data[i] >= 0 || gn.Data[i] >= 0 {
			t.Fatalf("generator gradients must be negative: paper %v ns %v", gp.Data, gn.Data)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Softmax(randInput(rng, 7, 4))
	for i := 0; i < 7; i++ {
		s := 0.0
		for j := 0; j < 4; j++ {
			s += p.At(i, j)
		}
		if math.Abs(s-1) > tensor.Tol(1e-12, 1e-5) {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyNumericGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	logits := randInput(rng, 4, 5)
	labels := []int{0, 3, 2, 4}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	// Unlike BCE/GeneratorLoss (whose scalars are computed in float64
	// straight from the logits), this loss rounds through Elem-typed
	// softmax probabilities, so the step must clear the f32 evaluation
	// noise and the tolerance widens accordingly.
	h := tensor.Tol(1e-6, 1e-3)
	tol := tensor.Tol(1e-6, 5e-3)
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + tensor.Elem(h)
		hp := float64(logits.Data[i])
		fp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - tensor.Elem(h)
		hm := float64(logits.Data[i])
		fm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		if relErr((fp-fm)/(hp-hm), float64(grad.Data[i])) > tol {
			t.Fatalf("logit %d: bad grad", i)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]tensor.Elem{
		0.9, 0.1,
		0.2, 0.8,
		0.6, 0.4,
	}, 3, 2)
	if acc := Accuracy(logits, []int{0, 1, 1}); math.Abs(acc-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v", acc)
	}
}
