package nn

import (
	"math/rand"

	"mdgan/internal/tensor"
)

// Dropout zeroes each activation with probability P during training and
// rescales survivors by 1/(1−P) (inverted dropout), so evaluation mode
// is the identity.
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask []tensor.Elem
	out  *tensor.Tensor
	dx   *tensor.Tensor
}

// NewDropout builds a Dropout layer with drop probability p using the
// given random source (each worker owns its own source; rand.Rand is not
// safe for concurrent use).
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward applies the mask in training mode, identity otherwise.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.P
	if cap(d.mask) < x.Size() {
		d.mask = make([]tensor.Elem, x.Size())
	}
	d.mask = d.mask[:x.Size()]
	d.out = tensor.Ensure(d.out, x.Shape()...)
	out := d.out
	inv := tensor.Elem(1 / keep)
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = inv
			out.Data[i] = v * inv
		} else {
			// Write the zero explicitly: the Ensure'd buffer keeps its
			// previous contents, so a skipped store would leak the prior
			// batch's activations through dropped units.
			d.mask[i] = 0
			out.Data[i] = 0
		}
	}
	return out
}

// Backward gates the gradient by the stored mask.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	d.dx = tensor.Ensure(d.dx, grad.Shape()...)
	out := d.dx
	for i, g := range grad.Data {
		out.Data[i] = g * d.mask[i]
	}
	return out
}

// Params reports no learnables.
func (d *Dropout) Params() []*Param { return nil }

// Clone returns a copy sharing the drop rate but with its own RNG state
// position (the source is reused; clones are expected to be re-seeded by
// the caller when determinism matters).
func (d *Dropout) Clone() Layer { return &Dropout{P: d.P, rng: d.rng} }
