package simnet

import (
	"math/rand"
	"sync"
	"time"
)

// ChaosNet is a fault-injecting Net wrapper: a seeded, deterministic
// adversary between the protocol and any real transport (ChannelNet or
// TCPNet). Per message it can drop, delay, duplicate or corrupt the
// payload, and whole nodes can be partitioned away and healed again —
// the transient faults the round engines' deadline/quorum/suspect
// machinery exists to survive. Tests, `mdgan-train -chaos` and
// verify.sh's chaos gate all drive the trainers through it.
//
// Determinism: all fault decisions come from one seeded *rand.Rand
// consumed under the net's lock, so a fixed seed and a fixed message
// sequence yield the same faults. (Messages sent concurrently — e.g.
// BroadcastEach fan-out — race for the stream, so runs are repeatable
// rather than bitwise-pinned; the strict engine's bitwise tests run
// without chaos.)
//
// Dropped and partitioned messages are lost SILENTLY: Send returns nil,
// exactly like a real datagram loss or a peer behind a partition whose
// kernel still ACKs. The sender finds out the way real systems do — by
// a missing response and a deadline. Control-plane shutdown is exempt:
// message types in ProtectTypes (by default just "stop") are never
// dropped, corrupted or partitioned away, only delayed, so a chaotic
// run can always be reaped without leaking worker goroutines.
type ChaosNet struct {
	inner Net

	mu       sync.Mutex
	rng      *rand.Rand
	cfg      ChaosConfig
	isolated map[string]bool // nodes currently partitioned from the rest

	closed chan struct{}
	wg     sync.WaitGroup // in-flight delayed deliveries

	stats ChaosStats
}

// ChaosConfig configures the per-message fault probabilities. All
// probabilities are in [0, 1] and evaluated independently per message
// in a fixed order (drop, corrupt, delay, duplicate).
type ChaosConfig struct {
	// Seed seeds the fault stream.
	Seed int64
	// Drop is the probability a message is silently lost.
	Drop float64
	// Corrupt is the probability a message's payload is delivered with
	// flipped bytes (exercising the wire decoders' hardening in anger).
	Corrupt float64
	// CorruptKinds restricts corruption to the given link kinds; nil
	// corrupts every kind.
	CorruptKinds map[Kind]bool
	// Delay is the probability a message is held back before delivery.
	Delay float64
	// MaxDelay bounds the uniform random hold-back (default 5ms when
	// Delay > 0 and MaxDelay == 0). Delayed messages are delivered
	// asynchronously, so they reorder against later traffic — the
	// round-tag machinery's reason to exist.
	MaxDelay time.Duration
	// Duplicate is the probability a message is delivered twice (the
	// at-least-once failure mode of retrying transports).
	Duplicate float64
	// ProtectTypes lists message types exempt from drop/corrupt/
	// partition (delay still applies). Nil selects {"stop": true};
	// use an explicitly empty, non-nil map to protect nothing.
	ProtectTypes map[string]bool
}

// ChaosStats counts the faults actually injected.
type ChaosStats struct {
	Dropped, Corrupted, Delayed, Duplicated int64
	// Partitioned counts messages lost to an active partition
	// (accounted separately from probabilistic drops).
	Partitioned int64
}

// WrapChaos wraps inner in a ChaosNet with the given configuration.
func WrapChaos(inner Net, cfg ChaosConfig) *ChaosNet {
	if cfg.ProtectTypes == nil {
		cfg.ProtectTypes = map[string]bool{"stop": true}
	}
	if cfg.Delay > 0 && cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Millisecond
	}
	return &ChaosNet{
		inner:    inner,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		cfg:      cfg,
		isolated: make(map[string]bool),
		closed:   make(chan struct{}),
	}
}

// Partition isolates the named nodes from every node not named: sends
// crossing the boundary (either direction) are silently lost until the
// nodes are healed. Messages between two isolated nodes still flow.
func (c *ChaosNet) Partition(nodes ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range nodes {
		c.isolated[n] = true
	}
}

// Heal removes the named nodes from the partition; with no arguments it
// heals every partitioned node.
func (c *ChaosNet) Heal(nodes ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(nodes) == 0 {
		clear(c.isolated)
		return
	}
	for _, n := range nodes {
		delete(c.isolated, n)
	}
}

// Stats snapshots the injected-fault counters.
func (c *ChaosNet) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Retries exposes the inner transport's retry counter (0 when the
// transport has none) so the fault accounting composes through the
// wrapper.
func (c *ChaosNet) Retries() int64 {
	if r, ok := c.inner.(interface{ Retries() int64 }); ok {
		return r.Retries()
	}
	return 0
}

// Register implements Net.
func (c *ChaosNet) Register(node string) error { return c.inner.Register(node) }

// Inbox implements Net.
func (c *ChaosNet) Inbox(node string) <-chan Message { return c.inner.Inbox(node) }

// Crash implements Net.
func (c *ChaosNet) Crash(node string) { c.inner.Crash(node) }

// Snapshot implements Net.
func (c *ChaosNet) Snapshot() Traffic { return c.inner.Snapshot() }

// Close implements Net: it aborts pending delayed deliveries, waits for
// their goroutines, then closes the inner transport.
func (c *ChaosNet) Close() error {
	c.mu.Lock()
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	c.mu.Unlock()
	c.wg.Wait()
	return c.inner.Close()
}

// Send implements Net, applying the configured faults. The error
// surface is the inner transport's: a dropped or partitioned message
// reports success (the loss is silent, as on a real network).
func (c *ChaosNet) Send(msg Message) error {
	c.mu.Lock()
	protected := c.cfg.ProtectTypes[msg.Type]
	if !protected {
		if c.isolated[msg.From] != c.isolated[msg.To] {
			c.stats.Partitioned++
			c.mu.Unlock()
			return nil
		}
		if c.cfg.Drop > 0 && c.rng.Float64() < c.cfg.Drop {
			c.stats.Dropped++
			c.mu.Unlock()
			return nil
		}
		if c.cfg.Corrupt > 0 &&
			(c.cfg.CorruptKinds == nil || c.cfg.CorruptKinds[msg.Kind]) &&
			c.rng.Float64() < c.cfg.Corrupt && len(msg.Payload) > 0 {
			msg.Payload = c.corruptPayload(msg.Payload)
			c.stats.Corrupted++
		}
	}
	var delay time.Duration
	if c.cfg.Delay > 0 && c.rng.Float64() < c.cfg.Delay {
		delay = time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay))) + 1
		c.stats.Delayed++
	}
	duplicate := !protected && c.cfg.Duplicate > 0 && c.rng.Float64() < c.cfg.Duplicate
	if duplicate {
		c.stats.Duplicated++
	}
	c.mu.Unlock()

	if delay > 0 {
		c.deliverLater(msg, delay, duplicate)
		return nil
	}
	err := c.inner.Send(msg)
	if duplicate && err == nil {
		err = c.inner.Send(msg)
	}
	return err
}

// corruptPayload returns a copy of p with 1–4 random bytes flipped
// (the original may be aliased by the caller's encode buffers).
func (c *ChaosNet) corruptPayload(p []byte) []byte {
	out := make([]byte, len(p))
	copy(out, p)
	for i, n := 0, 1+c.rng.Intn(4); i < n; i++ {
		out[c.rng.Intn(len(out))] ^= byte(1 + c.rng.Intn(255))
	}
	return out
}

// deliverLater hands msg to the inner transport after the delay, or
// drops it if the net closes first. Delivery errors are discarded: by
// the time a held-back message lands its destination may legitimately
// be gone, exactly like a late datagram.
func (c *ChaosNet) deliverLater(msg Message, delay time.Duration, duplicate bool) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
			if err := c.inner.Send(msg); err == nil && duplicate {
				_ = c.inner.Send(msg)
			}
		case <-c.closed:
		}
	}()
}
