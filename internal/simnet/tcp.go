package simnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Default socket deadlines and retry backoff. A SYN-blackholed peer (a
// firewalled or partitioned host) otherwise blocks net.Dial for the
// kernel's SYN-retry budget (minutes), and a stalled peer whose receive
// window is full blocks a write forever — either one used to hang the
// server's dispatch loop for the rest of the run.
const (
	// DefaultDialTimeout bounds connection establishment.
	DefaultDialTimeout = 2 * time.Second
	// DefaultWriteTimeout bounds each chunk write (armed fresh before
	// every chunk, so a multi-hundred-MB frame to a healthy-but-slow
	// peer streams chunk by chunk instead of having to land whole
	// within one deadline, while a genuinely stalled peer still fails
	// at the first unbuffered chunk).
	DefaultWriteTimeout = 5 * time.Second
	// tcpSendAttempts is the total number of send attempts (the first
	// try plus fresh-dial retries).
	tcpSendAttempts = 3
	// tcpRetryBase is the first retry's backoff; it doubles per attempt
	// with up to 50% random jitter added (decorrelating the retry
	// storms of many senders hitting one recovering peer).
	tcpRetryBase = 20 * time.Millisecond
)

// Stream framing bounds.
const (
	// tcpChunkSize is the payload budget of one chunk. 64 KiB keeps
	// per-chunk latency (and the deadline granularity) small while
	// amortising the 9-byte chunk header to noise.
	tcpChunkSize = 64 << 10
	// tcpMaxFrame bounds a single message's payload: anything claiming
	// more is hostile or corrupt, and the receiver drops the connection
	// before allocating for the claim.
	tcpMaxFrame = 256 << 20
	// tcpMaxPartialStreams bounds the per-connection reassembly map: a
	// peer opening streams without finishing them cannot grow receiver
	// memory past this many in-flight frames.
	tcpMaxPartialStreams = 1024
	// tcpMaxNameLen bounds the node-name and type strings in a stream
	// header.
	tcpMaxNameLen = 4096

	tcpFlagFirst = 1 << 0
	tcpFlagLast  = 1 << 1
)

// TCPNet is a Net implementation over real loopback/LAN sockets using
// the stdlib net package: every registered node owns a TCP listener and
// senders keep one persistent connection per (from, to) pair. Traffic
// accounting counts application payload bytes (identical to
// ChannelNet), so the communication tables are transport-independent.
//
// Messages travel as multiplexed chunked streams. Each frame is cut
// into ≤ 64 KiB chunks tagged [u32 streamID ++ u8 flags ++ u32 len];
// the first chunk additionally carries the message header (from, to,
// type, kind, payload length) and concurrent sends over the same
// connection interleave their chunks rather than serialising whole
// frames. That is what makes K=500 tractable: the sender never builds
// a second full copy of a frame (the old gob encoder buffered every
// message wholesale), the write deadline applies per chunk instead of
// per frame, and backpressure propagates per connection through the
// TCP window — a slow worker throttles its own stream at chunk
// granularity instead of forcing hundreds of complete frames to queue
// in memory. The receiver reassembles streams into exactly one
// payload-sized buffer each, with every header length bounded before
// any proportional allocation.
//
// Sends are hardened against transient peer stalls: dials are bounded
// by DialTimeout, every chunk write is bounded by WriteTimeout, and a
// failed write is retried over a fresh connection with exponential
// backoff and jitter before the peer is reported down. Retries() counts
// those recovery attempts for the fault accounting.
type TCPNet struct {
	mu        sync.Mutex
	addrs     map[string]string
	listeners map[string]net.Listener
	inboxes   map[string]chan Message
	incoming  map[string][]net.Conn // accepted conns per node, closed on Crash
	conns     map[string]*tcpConn   // sender side, key: from+"→"+to
	down      map[string]bool
	acct      *accounting
	wg        sync.WaitGroup
	retries   atomic.Int64

	// DialTimeout and WriteTimeout bound connection establishment and
	// per-chunk writes. They default to DefaultDialTimeout /
	// DefaultWriteTimeout and may be lowered before the first Send
	// (tests use short deadlines to exercise the expiry paths).
	DialTimeout  time.Duration
	WriteTimeout time.Duration
}

// tcpConn is the sender half of one (from, to) connection. The mutex
// guards individual chunk writes, not whole frames — that is the
// multiplexing: concurrent Sends on the same pair interleave at chunk
// boundaries, each chunk atomic under the lock.
type tcpConn struct {
	mu     sync.Mutex
	conn   net.Conn
	nextID atomic.Uint32
}

// NewTCPNet creates a TCP-backed network on loopback.
func NewTCPNet() *TCPNet {
	return &TCPNet{
		addrs:        make(map[string]string),
		listeners:    make(map[string]net.Listener),
		inboxes:      make(map[string]chan Message),
		incoming:     make(map[string][]net.Conn),
		conns:        make(map[string]*tcpConn),
		down:         make(map[string]bool),
		acct:         newAccounting(),
		DialTimeout:  DefaultDialTimeout,
		WriteTimeout: DefaultWriteTimeout,
	}
}

// Retries returns the number of fresh-dial send retries performed so
// far — the transport-level entry of the fault accounting.
func (n *TCPNet) Retries() int64 { return n.retries.Load() }

// Register implements Net: the node gets a listener on an ephemeral
// loopback port and an accept loop feeding its inbox.
func (n *TCPNet) Register(node string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.inboxes[node]; ok {
		return fmt.Errorf("simnet: node %q already registered", node)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("simnet: listen for %s: %w", node, err)
	}
	inbox := make(chan Message, 1024)
	n.listeners[node] = l
	n.addrs[node] = l.Addr().String()
	n.inboxes[node] = inbox
	n.wg.Add(1)
	go n.acceptLoop(node, l, inbox)
	return nil
}

// acceptLoop owns the node's inbox: it is the only goroutine that closes
// it, and only after every connection reader has exited.
func (n *TCPNet) acceptLoop(node string, l net.Listener, inbox chan Message) {
	defer n.wg.Done()
	var connWG sync.WaitGroup
	for {
		c, err := l.Accept()
		if err != nil {
			// Listener closed (Crash or Close): stop readers, then
			// close the inbox so receivers unblock.
			n.mu.Lock()
			for _, ic := range n.incoming[node] {
				ic.Close()
			}
			n.mu.Unlock()
			connWG.Wait()
			close(inbox)
			return
		}
		n.mu.Lock()
		n.incoming[node] = append(n.incoming[node], c)
		n.mu.Unlock()
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			defer c.Close()
			readStreams(c, inbox)
		}()
	}
}

// partialStream is one in-flight reassembly: the decoded header plus
// how much of the payload buffer has arrived.
type partialStream struct {
	msg Message
	got int
}

// readStreams is the per-connection receive loop: it demultiplexes
// chunks into per-stream reassembly buffers and delivers each message
// once its LAST chunk lands. Any framing violation — oversized chunk,
// unknown continuation, length claims past the declared payload, too
// many open streams — drops the connection (the sender's next chunk
// write fails and takes the fresh-dial retry path). Partial streams
// die with the connection.
func readStreams(c net.Conn, inbox chan Message) {
	streams := make(map[uint32]*partialStream)
	var hdr [9]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		id := binary.LittleEndian.Uint32(hdr[0:4])
		flags := hdr[4]
		size := int(binary.LittleEndian.Uint32(hdr[5:9]))
		if size > tcpChunkSize {
			return
		}
		p := streams[id]
		if flags&tcpFlagFirst != 0 {
			if p != nil || len(streams) >= tcpMaxPartialStreams {
				return
			}
			chunk := make([]byte, size)
			if _, err := io.ReadFull(c, chunk); err != nil {
				return
			}
			msg, body, ok := parseStreamHeader(chunk)
			if !ok || len(body) > len(msg.Payload) {
				return
			}
			p = &partialStream{msg: msg, got: copy(msg.Payload, body)}
			streams[id] = p
		} else {
			if p == nil || p.got+size > len(p.msg.Payload) {
				return
			}
			if _, err := io.ReadFull(c, p.msg.Payload[p.got:p.got+size]); err != nil {
				return
			}
			p.got += size
		}
		if flags&tcpFlagLast != 0 {
			if p.got != len(p.msg.Payload) {
				return
			}
			delete(streams, id)
			inbox <- p.msg
		}
	}
}

// appendStreamHeader frames a message's envelope: three length-prefixed
// strings, the kind byte and the payload length.
func appendStreamHeader(b []byte, msg *Message) []byte {
	for _, s := range []string{msg.From, msg.To, msg.Type} {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	b = append(b, byte(msg.Kind))
	return binary.LittleEndian.AppendUint32(b, uint32(len(msg.Payload)))
}

// parseStreamHeader decodes the envelope from a first chunk, allocates
// the (bounded) payload buffer, and returns the chunk's remaining bytes
// — the payload prefix that shared the first chunk with the header.
func parseStreamHeader(chunk []byte) (msg Message, body []byte, ok bool) {
	fields := [3]string{}
	for i := range fields {
		if len(chunk) < 4 {
			return msg, nil, false
		}
		l := int(binary.LittleEndian.Uint32(chunk[:4]))
		chunk = chunk[4:]
		if l > tcpMaxNameLen || l > len(chunk) {
			return msg, nil, false
		}
		fields[i] = string(chunk[:l])
		chunk = chunk[l:]
	}
	if len(chunk) < 5 {
		return msg, nil, false
	}
	msg.From, msg.To, msg.Type = fields[0], fields[1], fields[2]
	msg.Kind = Kind(chunk[0])
	size := int(binary.LittleEndian.Uint32(chunk[1:5]))
	if size > tcpMaxFrame {
		return msg, nil, false
	}
	msg.Payload = make([]byte, size)
	return msg, chunk[5:], true
}

// writeChunk sends one framed chunk under the connection lock, with a
// fresh write deadline. Holding the lock only per chunk is what lets
// concurrent frames to the same destination interleave.
func (gc *tcpConn) writeChunk(id uint32, flags byte, data []byte, timeout time.Duration) error {
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], id)
	hdr[4] = flags
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(data)))
	gc.mu.Lock()
	defer gc.mu.Unlock()
	// Armed fresh per chunk: a stalled peer (full receive window) fails
	// this write with a timeout instead of hanging the server's dispatch
	// loop forever; expiry falls through to the fresh-dial retry path
	// like any other write error.
	_ = gc.conn.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := gc.conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := gc.conn.Write(data)
	return err
}

// writeMessage streams one message as chunks. The first chunk carries
// the envelope plus as much payload as fits; the rest of the payload is
// sliced directly from the caller's buffer — no full-frame copy is ever
// built on the send side.
func (gc *tcpConn) writeMessage(msg *Message, timeout time.Duration) error {
	id := gc.nextID.Add(1)
	first := appendStreamHeader(make([]byte, 0, tcpChunkSize), msg)
	rest := msg.Payload
	if room := tcpChunkSize - len(first); len(rest) <= room {
		first = append(first, rest...)
		rest = nil
	} else {
		first = append(first, rest[:room]...)
		rest = rest[room:]
	}
	flags := byte(tcpFlagFirst)
	if rest == nil {
		flags |= tcpFlagLast
	}
	if err := gc.writeChunk(id, flags, first, timeout); err != nil {
		return err
	}
	for rest != nil {
		chunk := rest
		if len(chunk) > tcpChunkSize {
			chunk = chunk[:tcpChunkSize]
		}
		flags = 0
		if len(rest) == len(chunk) {
			flags = tcpFlagLast
			rest = nil
		} else {
			rest = rest[len(chunk):]
		}
		if err := gc.writeChunk(id, flags, chunk, timeout); err != nil {
			return err
		}
	}
	return nil
}

// retryBackoff returns the sleep before retry attempt (1-based):
// exponential from tcpRetryBase with up to 50% random jitter.
func retryBackoff(attempt int) time.Duration {
	d := tcpRetryBase << (attempt - 1)
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// Send implements Net. A dial or write failure (including a deadline
// expiry on a stalled peer) gets fresh-dial retries with exponential
// backoff before the destination is reported down: an idle connection
// torn down by the peer's OS (or a NAT) must not read as a worker death
// — the round engines suspect/demote ErrNodeDown destinations, so a
// stale socket would otherwise silently drop a healthy worker and its
// shard from training. A write that fails mid-stream leaves a torn
// frame on the wire, so the connection is always evicted and the whole
// message resent over a fresh dial (the receiver discards the partial
// stream with the dropped connection).
func (n *TCPNet) Send(msg Message) error {
	n.mu.Lock()
	addr, ok := n.addrs[msg.To]
	dead := n.down[msg.To]
	key := msg.From + "→" + msg.To
	n.mu.Unlock()
	if !ok || dead {
		return fmt.Errorf("%w: %s", ErrNodeDown, msg.To)
	}
	if len(msg.Payload) > tcpMaxFrame {
		return fmt.Errorf("simnet: payload %d exceeds frame bound %d", len(msg.Payload), tcpMaxFrame)
	}
	var lastErr error
	for attempt := 0; attempt < tcpSendAttempts; attempt++ {
		if attempt > 0 {
			n.retries.Add(1)
			time.Sleep(retryBackoff(attempt))
		}
		n.mu.Lock()
		gc := n.conns[key]
		n.mu.Unlock()
		if gc == nil {
			conn, err := net.DialTimeout("tcp", addr, n.DialTimeout)
			if err != nil {
				// Keep retrying: a refused or timed-out dial may be a
				// transient partition or a peer mid-restart.
				lastErr = err
				continue
			}
			gc = &tcpConn{conn: conn}
			n.mu.Lock()
			n.conns[key] = gc
			n.mu.Unlock()
		}
		err := gc.writeMessage(&msg, n.WriteTimeout)
		if err == nil {
			n.acct.record(&msg)
			return nil
		}
		lastErr = err
		// Evict the broken connection; the next attempt dials fresh.
		n.mu.Lock()
		if n.conns[key] == gc {
			delete(n.conns, key)
		}
		n.mu.Unlock()
		gc.conn.Close()
	}
	// Every attempt failed: the peer is unreachable right now — report
	// the fail-stop mapping and let the membership lifecycle decide
	// whether it is transient (suspect) or permanent (demote).
	return fmt.Errorf("%w: send %s→%s: %v", ErrNodeDown, msg.From, msg.To, lastErr)
}

// Inbox implements Net.
func (n *TCPNet) Inbox(node string) <-chan Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inboxes[node]
}

// Crash implements Net (fail-stop): marks the node down, closes its
// listener and all of its established connections; the accept loop then
// closes the inbox.
func (n *TCPNet) Crash(node string) {
	n.mu.Lock()
	if n.down[node] {
		n.mu.Unlock()
		return
	}
	n.down[node] = true
	l := n.listeners[node]
	n.mu.Unlock()
	if l != nil {
		l.Close()
	}
}

// Snapshot implements Net.
func (n *TCPNet) Snapshot() Traffic { return n.acct.snapshot() }

// Close implements Net: crashes every node and waits for all accept
// loops to finish.
func (n *TCPNet) Close() error {
	n.mu.Lock()
	nodes := make([]string, 0, len(n.listeners))
	for name := range n.listeners {
		nodes = append(nodes, name)
	}
	senders := make([]*tcpConn, 0, len(n.conns))
	for _, c := range n.conns {
		senders = append(senders, c)
	}
	n.mu.Unlock()
	for _, c := range senders {
		c.conn.Close()
	}
	for _, name := range nodes {
		n.Crash(name)
	}
	n.wg.Wait()
	return nil
}
