package simnet

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Default socket deadlines and retry backoff. A SYN-blackholed peer (a
// firewalled or partitioned host) otherwise blocks net.Dial for the
// kernel's SYN-retry budget (minutes), and a stalled peer whose receive
// window is full blocks a write forever — either one used to hang the
// server's dispatch loop for the rest of the run.
const (
	// DefaultDialTimeout bounds connection establishment.
	DefaultDialTimeout = 2 * time.Second
	// DefaultWriteTimeout bounds each gob frame write (armed fresh
	// before every encode, so long-lived idle connections are fine).
	DefaultWriteTimeout = 5 * time.Second
	// tcpSendAttempts is the total number of send attempts (the first
	// try plus fresh-dial retries).
	tcpSendAttempts = 3
	// tcpRetryBase is the first retry's backoff; it doubles per attempt
	// with up to 50% random jitter added (decorrelating the retry
	// storms of many senders hitting one recovering peer).
	tcpRetryBase = 20 * time.Millisecond
)

// TCPNet is a Net implementation over real loopback/LAN sockets using
// the stdlib net package: every registered node owns a TCP listener and
// senders keep one persistent connection per (from, to) pair with
// gob-framed messages. Traffic accounting counts application payload
// bytes (identical to ChannelNet), so the communication tables are
// transport-independent.
//
// Sends are hardened against transient peer stalls: dials are bounded
// by DialTimeout, every frame write is bounded by WriteTimeout, and a
// failed write is retried over a fresh connection with exponential
// backoff and jitter before the peer is reported down. Retries() counts
// those recovery attempts for the fault accounting.
type TCPNet struct {
	mu        sync.Mutex
	addrs     map[string]string
	listeners map[string]net.Listener
	inboxes   map[string]chan Message
	incoming  map[string][]net.Conn // accepted conns per node, closed on Crash
	conns     map[string]*gobConn   // sender side, key: from+"→"+to
	down      map[string]bool
	acct      *accounting
	wg        sync.WaitGroup
	retries   atomic.Int64

	// DialTimeout and WriteTimeout bound connection establishment and
	// per-frame writes. They default to DefaultDialTimeout /
	// DefaultWriteTimeout and may be lowered before the first Send
	// (tests use short deadlines to exercise the expiry paths).
	DialTimeout  time.Duration
	WriteTimeout time.Duration
}

type gobConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// NewTCPNet creates a TCP-backed network on loopback.
func NewTCPNet() *TCPNet {
	return &TCPNet{
		addrs:        make(map[string]string),
		listeners:    make(map[string]net.Listener),
		inboxes:      make(map[string]chan Message),
		incoming:     make(map[string][]net.Conn),
		conns:        make(map[string]*gobConn),
		down:         make(map[string]bool),
		acct:         newAccounting(),
		DialTimeout:  DefaultDialTimeout,
		WriteTimeout: DefaultWriteTimeout,
	}
}

// Retries returns the number of fresh-dial send retries performed so
// far — the transport-level entry of the fault accounting.
func (n *TCPNet) Retries() int64 { return n.retries.Load() }

// Register implements Net: the node gets a listener on an ephemeral
// loopback port and an accept loop feeding its inbox.
func (n *TCPNet) Register(node string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.inboxes[node]; ok {
		return fmt.Errorf("simnet: node %q already registered", node)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("simnet: listen for %s: %w", node, err)
	}
	inbox := make(chan Message, 1024)
	n.listeners[node] = l
	n.addrs[node] = l.Addr().String()
	n.inboxes[node] = inbox
	n.wg.Add(1)
	go n.acceptLoop(node, l, inbox)
	return nil
}

// acceptLoop owns the node's inbox: it is the only goroutine that closes
// it, and only after every connection reader has exited.
func (n *TCPNet) acceptLoop(node string, l net.Listener, inbox chan Message) {
	defer n.wg.Done()
	var connWG sync.WaitGroup
	for {
		c, err := l.Accept()
		if err != nil {
			// Listener closed (Crash or Close): stop readers, then
			// close the inbox so receivers unblock.
			n.mu.Lock()
			for _, ic := range n.incoming[node] {
				ic.Close()
			}
			n.mu.Unlock()
			connWG.Wait()
			close(inbox)
			return
		}
		n.mu.Lock()
		n.incoming[node] = append(n.incoming[node], c)
		n.mu.Unlock()
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			defer c.Close()
			dec := gob.NewDecoder(c)
			for {
				var msg Message
				if err := dec.Decode(&msg); err != nil {
					return
				}
				inbox <- msg
			}
		}()
	}
}

// retryBackoff returns the sleep before retry attempt (1-based):
// exponential from tcpRetryBase with up to 50% random jitter.
func retryBackoff(attempt int) time.Duration {
	d := tcpRetryBase << (attempt - 1)
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// Send implements Net. A dial or write failure (including a deadline
// expiry on a stalled peer) gets fresh-dial retries with exponential
// backoff before the destination is reported down: an idle connection
// torn down by the peer's OS (or a NAT) must not read as a worker death
// — the round engines suspect/demote ErrNodeDown destinations, so a
// stale socket would otherwise silently drop a healthy worker and its
// shard from training.
func (n *TCPNet) Send(msg Message) error {
	n.mu.Lock()
	addr, ok := n.addrs[msg.To]
	dead := n.down[msg.To]
	key := msg.From + "→" + msg.To
	n.mu.Unlock()
	if !ok || dead {
		return fmt.Errorf("%w: %s", ErrNodeDown, msg.To)
	}
	var lastErr error
	for attempt := 0; attempt < tcpSendAttempts; attempt++ {
		if attempt > 0 {
			n.retries.Add(1)
			time.Sleep(retryBackoff(attempt))
		}
		n.mu.Lock()
		gc := n.conns[key]
		n.mu.Unlock()
		if gc == nil {
			conn, err := net.DialTimeout("tcp", addr, n.DialTimeout)
			if err != nil {
				// Keep retrying: a refused or timed-out dial may be a
				// transient partition or a peer mid-restart.
				lastErr = err
				continue
			}
			gc = &gobConn{conn: conn, enc: gob.NewEncoder(conn)}
			n.mu.Lock()
			n.conns[key] = gc
			n.mu.Unlock()
		}
		gc.mu.Lock()
		// Armed fresh per frame: a stalled peer (full receive window)
		// fails this write with a timeout instead of hanging the
		// server's dispatch loop forever; expiry falls through to the
		// fresh-dial retry path like any other write error.
		_ = gc.conn.SetWriteDeadline(time.Now().Add(n.WriteTimeout))
		err := gc.enc.Encode(msg)
		gc.mu.Unlock()
		if err == nil {
			n.acct.record(&msg)
			return nil
		}
		lastErr = err
		// Evict the broken connection; the next attempt dials fresh.
		n.mu.Lock()
		if n.conns[key] == gc {
			delete(n.conns, key)
		}
		n.mu.Unlock()
		gc.conn.Close()
	}
	// Every attempt failed: the peer is unreachable right now — report
	// the fail-stop mapping and let the membership lifecycle decide
	// whether it is transient (suspect) or permanent (demote).
	return fmt.Errorf("%w: send %s→%s: %v", ErrNodeDown, msg.From, msg.To, lastErr)
}

// Inbox implements Net.
func (n *TCPNet) Inbox(node string) <-chan Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inboxes[node]
}

// Crash implements Net (fail-stop): marks the node down, closes its
// listener and all of its established connections; the accept loop then
// closes the inbox.
func (n *TCPNet) Crash(node string) {
	n.mu.Lock()
	if n.down[node] {
		n.mu.Unlock()
		return
	}
	n.down[node] = true
	l := n.listeners[node]
	n.mu.Unlock()
	if l != nil {
		l.Close()
	}
}

// Snapshot implements Net.
func (n *TCPNet) Snapshot() Traffic { return n.acct.snapshot() }

// Close implements Net: crashes every node and waits for all accept
// loops to finish.
func (n *TCPNet) Close() error {
	n.mu.Lock()
	nodes := make([]string, 0, len(n.listeners))
	for name := range n.listeners {
		nodes = append(nodes, name)
	}
	senders := make([]*gobConn, 0, len(n.conns))
	for _, c := range n.conns {
		senders = append(senders, c)
	}
	n.mu.Unlock()
	for _, c := range senders {
		c.conn.Close()
	}
	for _, name := range nodes {
		n.Crash(name)
	}
	n.wg.Wait()
	return nil
}
