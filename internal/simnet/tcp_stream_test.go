package simnet

// Tests for the chunked stream framing: interleaved concurrent frames
// over one connection, multi-chunk reassembly fidelity, and the
// receiver's hostile-framing bounds.

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// TestTCPConcurrentStreamsInterleave drives many goroutines through the
// SAME (from, to) pair with multi-chunk payloads: per-chunk locking
// means their chunks interleave on one connection, and every frame must
// still reassemble intact.
func TestTCPConcurrentStreamsInterleave(t *testing.T) {
	n := NewTCPNet()
	defer n.Close()
	for _, node := range []string{"a", "b"} {
		if err := n.Register(node); err != nil {
			t.Fatal(err)
		}
	}
	const senders = 8
	// > 3 chunks each so interleaving actually happens.
	payloadLen := 3*tcpChunkSize + 1234
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			p := make([]byte, payloadLen)
			for i := range p {
				p[i] = seed // constant fill: any cross-stream mixup shows
			}
			if err := n.Send(Message{From: "a", To: "b", Type: "batches", Kind: CtoW, Payload: p}); err != nil {
				t.Error(err)
			}
		}(byte(s + 1))
	}
	wg.Wait()
	got := map[byte]bool{}
	for i := 0; i < senders; i++ {
		select {
		case msg := <-n.Inbox("b"):
			if len(msg.Payload) != payloadLen {
				t.Fatalf("frame %d: length %d, want %d", i, len(msg.Payload), payloadLen)
			}
			seed := msg.Payload[0]
			for j, v := range msg.Payload {
				if v != seed {
					t.Fatalf("frame %d: byte %d = %d, want %d (streams crossed)", i, j, v, seed)
				}
			}
			if got[seed] {
				t.Fatalf("frame with fill %d delivered twice", seed)
			}
			got[seed] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d interleaved frames delivered", i, senders)
		}
	}
	if tr := n.Snapshot(); tr.Msgs[CtoW] != senders {
		t.Fatalf("accounting recorded %d msgs, want %d", tr.Msgs[CtoW], senders)
	}
}

// TestTCPOversizedPayloadRejected: the sender refuses a frame past the
// transport bound outright, without dialing.
func TestTCPOversizedPayloadRejected(t *testing.T) {
	n := NewTCPNet()
	defer n.Close()
	for _, node := range []string{"a", "b"} {
		if err := n.Register(node); err != nil {
			t.Fatal(err)
		}
	}
	big := Message{From: "a", To: "b", Kind: CtoW, Payload: make([]byte, tcpMaxFrame+1)}
	err := n.Send(big)
	if err == nil || errors.Is(err, ErrNodeDown) {
		t.Fatalf("oversized payload: err = %v, want a non-fail-stop rejection", err)
	}
	if n.Retries() != 0 {
		t.Fatal("oversized payload must be rejected before any dial/retry")
	}
}

// TestTCPHostileStreamsDropConnection feeds raw hostile chunks at a
// registered node's listener: each framing violation must close the
// connection without delivering anything or allocating for the claimed
// sizes.
func TestTCPHostileStreamsDropConnection(t *testing.T) {
	n := NewTCPNet()
	defer n.Close()
	if err := n.Register("b"); err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	addr := n.addrs["b"]
	n.mu.Unlock()

	chunk := func(id uint32, flags byte, data []byte) []byte {
		out := binary.LittleEndian.AppendUint32(nil, id)
		out = append(out, flags)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(data)))
		return append(out, data...)
	}
	header := func(payloadLen uint32) []byte {
		var b []byte
		for _, s := range []string{"a", "b", "t"} {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
			b = append(b, s...)
		}
		b = append(b, 0)
		return binary.LittleEndian.AppendUint32(b, payloadLen)
	}

	hostile := [][]byte{
		// Chunk length past the chunk bound.
		func() []byte {
			out := binary.LittleEndian.AppendUint32(nil, 1)
			out = append(out, tcpFlagFirst|tcpFlagLast)
			return binary.LittleEndian.AppendUint32(out, tcpChunkSize+1)
		}(),
		// Payload-length bomb in the header.
		chunk(1, tcpFlagFirst|tcpFlagLast, header(0xFFFFFFF0)),
		// Continuation chunk for a stream that was never opened.
		chunk(9, tcpFlagLast, []byte("orphan")),
		// Name-length bomb inside the header.
		chunk(1, tcpFlagFirst|tcpFlagLast,
			binary.LittleEndian.AppendUint32(nil, tcpMaxNameLen+1)),
		// LAST chunk with the payload short of the declared length.
		chunk(1, tcpFlagFirst|tcpFlagLast, header(500)),
	}
	for i, frame := range hostile {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(frame); err != nil {
			c.Close()
			t.Fatalf("hostile frame %d: write: %v", i, err)
		}
		// The receiver must hang up on us.
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 1)
		if _, err := c.Read(buf); err == nil {
			c.Close()
			t.Fatalf("hostile frame %d: connection stayed open", i)
		}
		c.Close()
	}
	select {
	case msg := <-n.Inbox("b"):
		t.Fatalf("hostile framing delivered a message: %+v", msg)
	default:
	}
}

// TestTCPMultiChunkPayloadIntegrity round-trips a payload that is
// deliberately NOT a multiple of the chunk size, with a varying fill,
// so off-by-one reassembly or chunk reordering corrupts a checked byte.
func TestTCPMultiChunkPayloadIntegrity(t *testing.T) {
	n := NewTCPNet()
	defer n.Close()
	for _, node := range []string{"a", "b"} {
		if err := n.Register(node); err != nil {
			t.Fatal(err)
		}
	}
	payload := make([]byte, 5*tcpChunkSize+7919)
	for i := range payload {
		payload[i] = byte(i*2654435761 + i>>8)
	}
	if err := n.Send(Message{From: "a", To: "b", Type: "swap", Kind: WtoW, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-n.Inbox("b"):
		if msg.From != "a" || msg.To != "b" || msg.Type != "swap" || msg.Kind != WtoW {
			t.Fatalf("envelope corrupted: %+v", msg)
		}
		if len(msg.Payload) != len(payload) {
			t.Fatalf("length %d, want %d", len(msg.Payload), len(payload))
		}
		for i := range payload {
			if msg.Payload[i] != payload[i] {
				t.Fatalf("payload corrupted at byte %d", i)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("multi-chunk frame not delivered")
	}
}
