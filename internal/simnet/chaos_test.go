package simnet

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// chaosPair builds a ChaosNet over a ChannelNet with two registered
// nodes, a and b.
func chaosPair(t *testing.T, cfg ChaosConfig) (*ChaosNet, func()) {
	t.Helper()
	inner := NewChannelNet(0)
	for _, node := range []string{"a", "b"} {
		if err := inner.Register(node); err != nil {
			t.Fatal(err)
		}
	}
	c := WrapChaos(inner, cfg)
	return c, func() { c.Close() }
}

func chaosMsg(typ string, payload []byte) Message {
	return Message{From: "a", To: "b", Type: typ, Kind: CtoW, Payload: payload}
}

func TestChaosPassThroughWithoutFaults(t *testing.T) {
	c, done := chaosPair(t, ChaosConfig{Seed: 1})
	defer done()
	if err := c.Send(chaosMsg("batches", []byte("hello"))); err != nil {
		t.Fatal(err)
	}
	msg := <-c.Inbox("b")
	if string(msg.Payload) != "hello" {
		t.Fatalf("payload = %q", msg.Payload)
	}
	if s := c.Stats(); s != (ChaosStats{}) {
		t.Fatalf("fault-free config injected faults: %+v", s)
	}
}

func TestChaosDropIsSilent(t *testing.T) {
	c, done := chaosPair(t, ChaosConfig{Seed: 1, Drop: 1})
	defer done()
	if err := c.Send(chaosMsg("batches", []byte("x"))); err != nil {
		t.Fatalf("a dropped message must report success, got %v", err)
	}
	select {
	case msg := <-c.Inbox("b"):
		t.Fatalf("dropped message delivered: %+v", msg)
	case <-time.After(20 * time.Millisecond):
	}
	if s := c.Stats(); s.Dropped != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestChaosProtectsStopFromDropAndPartition(t *testing.T) {
	c, done := chaosPair(t, ChaosConfig{Seed: 1, Drop: 1, Corrupt: 1})
	defer done()
	c.Partition("b")
	if err := c.Send(chaosMsg("stop", []byte("s"))); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-c.Inbox("b"):
		if string(msg.Payload) != "s" {
			t.Fatalf("stop payload corrupted: %q", msg.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stop message must survive drop+corrupt+partition (shutdown must always be reapable)")
	}
}

func TestChaosPartitionAndHeal(t *testing.T) {
	c, done := chaosPair(t, ChaosConfig{Seed: 1})
	defer done()
	c.Partition("b")
	if err := c.Send(chaosMsg("batches", []byte("x"))); err != nil {
		t.Fatalf("a partitioned message is silently lost, got %v", err)
	}
	// Both directions cross the boundary.
	if err := c.Send(Message{From: "b", To: "a", Type: "feedback", Kind: WtoC, Payload: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Partitioned != 2 {
		t.Fatalf("partitioned = %d, want 2", s.Partitioned)
	}
	c.Heal()
	if err := c.Send(chaosMsg("batches", []byte("z"))); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-c.Inbox("b"):
		if string(msg.Payload) != "z" {
			t.Fatalf("post-heal payload = %q", msg.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("healed link must deliver")
	}
}

func TestChaosCorruptFlipsBytesOnSelectedKindsOnly(t *testing.T) {
	c, done := chaosPair(t, ChaosConfig{
		Seed: 3, Corrupt: 1, CorruptKinds: map[Kind]bool{WtoC: true},
	})
	defer done()
	orig := bytes.Repeat([]byte{0xAA}, 64)
	if err := c.Send(Message{From: "b", To: "a", Type: "feedback", Kind: WtoC, Payload: append([]byte(nil), orig...)}); err != nil {
		t.Fatal(err)
	}
	msg := <-c.Inbox("a")
	if bytes.Equal(msg.Payload, orig) {
		t.Fatal("WtoC payload must be corrupted")
	}
	if len(msg.Payload) != len(orig) {
		t.Fatalf("corruption changed length: %d", len(msg.Payload))
	}
	// A kind outside CorruptKinds passes untouched.
	if err := c.Send(chaosMsg("batches", append([]byte(nil), orig...))); err != nil {
		t.Fatal(err)
	}
	if msg := <-c.Inbox("b"); !bytes.Equal(msg.Payload, orig) {
		t.Fatal("CtoW payload must pass uncorrupted")
	}
	if s := c.Stats(); s.Corrupted != 1 {
		t.Fatalf("corrupted = %d", s.Corrupted)
	}
}

func TestChaosDuplicateDeliversTwice(t *testing.T) {
	c, done := chaosPair(t, ChaosConfig{Seed: 1, Duplicate: 1})
	defer done()
	if err := c.Send(chaosMsg("batches", []byte("x"))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-c.Inbox("b"):
		case <-time.After(2 * time.Second):
			t.Fatalf("copy %d never arrived", i)
		}
	}
	if s := c.Stats(); s.Duplicated != 1 {
		t.Fatalf("duplicated = %d", s.Duplicated)
	}
}

func TestChaosDelayedDeliveryArrives(t *testing.T) {
	c, done := chaosPair(t, ChaosConfig{Seed: 1, Delay: 1, MaxDelay: 5 * time.Millisecond})
	defer done()
	if err := c.Send(chaosMsg("batches", []byte("late"))); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-c.Inbox("b"):
		if string(msg.Payload) != "late" {
			t.Fatalf("payload = %q", msg.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delayed message never delivered")
	}
	if s := c.Stats(); s.Delayed != 1 {
		t.Fatalf("delayed = %d", s.Delayed)
	}
}

// TestChaosCloseAbortsPendingDelays: Close must not hang on (or panic
// from) deliveries still held back, even when the destination inbox is
// gone by then.
func TestChaosCloseAbortsPendingDelays(t *testing.T) {
	c, _ := chaosPair(t, ChaosConfig{Seed: 1, Delay: 1, MaxDelay: time.Hour})
	for i := 0; i < 8; i++ {
		if err := c.Send(chaosMsg("batches", []byte("x"))); err != nil {
			t.Fatal(err)
		}
	}
	donec := make(chan struct{})
	go func() { c.Close(); close(donec) }()
	select {
	case <-donec:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on pending delayed deliveries")
	}
}

// TestChaosDeterministicFaultStream: a fixed seed and a fixed message
// sequence must reproduce the exact same faults.
func TestChaosDeterministicFaultStream(t *testing.T) {
	run := func(seed int64) ChaosStats {
		c, done := chaosPair(t, ChaosConfig{Seed: seed, Drop: 0.3, Corrupt: 0.2, Duplicate: 0.2})
		defer done()
		for i := 0; i < 200; i++ {
			if err := c.Send(chaosMsg("batches", []byte{byte(i), 1, 2, 3})); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Dropped == 0 || a.Corrupted == 0 || a.Duplicated == 0 {
		t.Fatalf("fault probabilities never fired: %+v", a)
	}
	if c := run(43); c == a {
		t.Fatalf("different seeds produced identical fault streams: %+v", c)
	}
}

// TestChaosRetriesComposeThroughWrapper: the wrapper forwards the inner
// transport's retry counter for the fault accounting.
func TestChaosRetriesComposeThroughWrapper(t *testing.T) {
	inner := NewTCPNet()
	c := WrapChaos(inner, ChaosConfig{Seed: 1})
	defer c.Close()
	if got := c.Retries(); got != 0 {
		t.Fatalf("retries = %d", got)
	}
	inner.retries.Add(3)
	if got := c.Retries(); got != 3 {
		t.Fatalf("retries = %d, want 3 (delegated to inner)", got)
	}
	// A ChannelNet has no retry counter: the wrapper reports 0.
	c2 := WrapChaos(NewChannelNet(0), ChaosConfig{Seed: 1})
	defer c2.Close()
	if got := c2.Retries(); got != 0 {
		t.Fatalf("channel retries = %d", got)
	}
}

// --- TCPNet hardening (dial/write deadlines, retry with backoff) ---

// TestTCPWriteDeadlineUnblocksStalledPeer is the fails-on-pre-fix
// regression for the write-deadline satellite: a peer that accepts the
// connection but never reads (full receive window) used to block
// Send — and with it the server's dispatch loop — forever. With
// SetWriteDeadline armed per frame, the send must fail over to the
// retry path and surface ErrNodeDown within a few timeouts.
func TestTCPWriteDeadlineUnblocksStalledPeer(t *testing.T) {
	n := NewTCPNet()
	defer n.Close()
	if err := n.Register("server"); err != nil {
		t.Fatal(err)
	}
	// A raw listener that accepts and then never reads: the OS buffers
	// fill and the sender's write blocks.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			<-stop // hold the conn open, read nothing
		}
	}()
	n.mu.Lock()
	n.addrs["stalled"] = l.Addr().String()
	n.mu.Unlock()
	n.WriteTimeout = 200 * time.Millisecond

	// Larger than anything the kernel will buffer (tcp_wmem caps out at
	// a few MB), so even a retry's fresh dial cannot absorb the frame —
	// every attempt must hit the write deadline.
	payload := make([]byte, 1<<26)
	errc := make(chan error, 1)
	go func() {
		for {
			err := n.Send(Message{From: "server", To: "stalled", Type: "batches", Kind: CtoW, Payload: payload})
			if err != nil {
				errc <- err
				return
			}
		}
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrNodeDown) {
			t.Fatalf("stalled-peer send error = %v, want ErrNodeDown", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("send to a stalled peer never timed out (write deadline not armed)")
	}
	if n.Retries() == 0 {
		t.Fatal("the timed-out write must be counted as retried")
	}
}

// TestTCPDialFailureIsRetriedWithBackoff: a refused dial (peer mid-
// restart) goes through the backoff retry path — and counts its
// retries — before reporting the peer down.
func TestTCPDialFailureIsRetriedWithBackoff(t *testing.T) {
	n := NewTCPNet()
	defer n.Close()
	if err := n.Register("server"); err != nil {
		t.Fatal(err)
	}
	// Grab a port with nothing listening on it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	n.mu.Lock()
	n.addrs["gone"] = addr
	n.mu.Unlock()

	start := time.Now()
	err = n.Send(Message{From: "server", To: "gone", Type: "batches", Kind: CtoW, Payload: []byte("x")})
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("send to refused port = %v, want ErrNodeDown", err)
	}
	if got := n.Retries(); got != tcpSendAttempts-1 {
		t.Fatalf("retries = %d, want %d", got, tcpSendAttempts-1)
	}
	// The exponential backoff must actually have been slept.
	if minimum := tcpRetryBase + 2*tcpRetryBase; time.Since(start) < minimum {
		t.Fatalf("attempts returned after %v, backoff (≥ %v) not applied", time.Since(start), minimum)
	}
}

func TestRetryBackoffGrowsWithJitter(t *testing.T) {
	for attempt := 1; attempt <= 3; attempt++ {
		base := tcpRetryBase << (attempt - 1)
		for i := 0; i < 20; i++ {
			d := retryBackoff(attempt)
			if d < base || d > base+base/2 {
				t.Fatalf("attempt %d backoff %v outside [%v, %v]", attempt, d, base, base+base/2)
			}
		}
	}
}
