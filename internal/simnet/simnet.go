// Package simnet provides the cluster substrate the distributed GAN
// algorithms run on: named nodes exchanging messages over a pluggable
// transport, with per-link traffic accounting. The paper evaluates
// communication complexity by link type (server→worker, worker→server,
// worker→worker; Tables III/IV), so every send is tagged with its link
// kind and the byte counters reproduce those tables directly.
//
// Two transports are provided: ChannelNet (in-process, one goroutine per
// node — the emulation mode the paper itself uses) and TCPNet (real
// sockets via the stdlib net package, for running workers as separate
// processes or across machines).
package simnet

import (
	"errors"
	"fmt"
	"sync"

	"mdgan/internal/parallel"
)

// Kind labels a link for the traffic accounting of Tables III/IV.
type Kind int

const (
	// CtoW is server → worker traffic (generated batches in MD-GAN,
	// model parameters in FL-GAN).
	CtoW Kind = iota
	// WtoC is worker → server traffic (error feedback in MD-GAN,
	// model parameters in FL-GAN).
	WtoC
	// WtoW is worker → worker traffic (discriminator swaps, MD-GAN
	// only).
	WtoW
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CtoW:
		return "C→W"
	case WtoC:
		return "W→C"
	case WtoW:
		return "W→W"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Message is one unit of communication.
type Message struct {
	From, To string
	Type     string // application-level tag ("batches", "feedback", "swap", "params", ...)
	Kind     Kind
	Payload  []byte
}

// ErrNodeDown is returned when sending to a crashed or unknown node.
var ErrNodeDown = errors.New("simnet: node down")

// Traffic is a snapshot of accumulated communication counters.
type Traffic struct {
	Bytes         map[Kind]int64
	Msgs          map[Kind]int64
	IngressByNode map[string]int64
	EgressByNode  map[string]int64
}

// Total returns total bytes across all link kinds.
func (t Traffic) Total() int64 {
	var s int64
	for _, v := range t.Bytes {
		s += v
	}
	return s
}

// Net is a message transport between named nodes with traffic
// accounting and fail-stop crash injection.
type Net interface {
	// Register creates the node's inbox. Must be called before the
	// node sends or receives.
	Register(node string) error
	// Send delivers a message; it blocks only if the destination inbox
	// is full. Sending to a crashed node returns ErrNodeDown.
	Send(msg Message) error
	// Inbox returns the node's receive channel.
	Inbox(node string) <-chan Message
	// Crash marks a node as failed (fail-stop): subsequent sends to it
	// fail and its inbox is closed after draining.
	Crash(node string)
	// Snapshot returns a copy of the traffic counters.
	Snapshot() Traffic
	// Close releases transport resources.
	Close() error
}

// BroadcastEach delivers every message, fanning the sends out across
// the work-stealing scheduler: the per-destination work of a send (gob
// framing and socket writes on TCPNet, channel hand-off on ChannelNet)
// overlaps across destinations, which is where a server's per-worker
// distribution loop spends its time on real transports. All sends are
// attempted even when some fail (a fail-stop crash of one worker must
// not starve the others), and the result reports each destination's
// outcome: entry i is nil when msgs[i] was delivered, ErrNodeDown
// (wrapped) when its destination is crashed or unreachable, or another
// error for transport-level failures. Callers that tolerate stragglers
// — the round engines demote an ErrNodeDown destination via their
// membership layer and continue with the survivors — inspect the slice;
// callers that want the legacy all-or-nothing semantics use Broadcast.
func BroadcastEach(n Net, msgs []Message) []error {
	if len(msgs) == 0 {
		return nil
	}
	errs := make([]error, len(msgs))
	parallel.ForceFor(len(msgs), func(s, e int) {
		for i := s; i < e; i++ {
			errs[i] = n.Send(msgs[i])
		}
	})
	return errs
}

// Broadcast is BroadcastEach with strict semantics: every send is still
// attempted, and the first error in message order is returned.
func Broadcast(n Net, msgs []Message) error {
	for _, err := range BroadcastEach(n, msgs) {
		if err != nil {
			return err
		}
	}
	return nil
}

// accounting is shared by the transports.
type accounting struct {
	mu      sync.Mutex
	bytes   map[Kind]int64
	msgs    map[Kind]int64
	ingress map[string]int64
	egress  map[string]int64
}

func newAccounting() *accounting {
	return &accounting{
		bytes:   make(map[Kind]int64),
		msgs:    make(map[Kind]int64),
		ingress: make(map[string]int64),
		egress:  make(map[string]int64),
	}
}

func (a *accounting) record(msg *Message) {
	n := int64(len(msg.Payload))
	a.mu.Lock()
	a.bytes[msg.Kind] += n
	a.msgs[msg.Kind]++
	a.ingress[msg.To] += n
	a.egress[msg.From] += n
	a.mu.Unlock()
}

func (a *accounting) snapshot() Traffic {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := Traffic{
		Bytes:         make(map[Kind]int64, len(a.bytes)),
		Msgs:          make(map[Kind]int64, len(a.msgs)),
		IngressByNode: make(map[string]int64, len(a.ingress)),
		EgressByNode:  make(map[string]int64, len(a.egress)),
	}
	for k, v := range a.bytes {
		t.Bytes[k] = v
	}
	for k, v := range a.msgs {
		t.Msgs[k] = v
	}
	for k, v := range a.ingress {
		t.IngressByNode[k] = v
	}
	for k, v := range a.egress {
		t.EgressByNode[k] = v
	}
	return t
}

// ChannelNet is the in-process transport: one buffered channel per node.
type ChannelNet struct {
	mu      sync.Mutex
	inboxes map[string]chan Message
	down    map[string]bool
	acct    *accounting
	buf     int
}

// NewChannelNet creates an in-process network. buf is the inbox buffer
// depth per node (0 selects a generous default so synchronous rounds
// never deadlock).
func NewChannelNet(buf int) *ChannelNet {
	if buf <= 0 {
		buf = 1024
	}
	return &ChannelNet{
		inboxes: make(map[string]chan Message),
		down:    make(map[string]bool),
		acct:    newAccounting(),
		buf:     buf,
	}
}

// Register implements Net.
func (n *ChannelNet) Register(node string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.inboxes[node]; ok {
		return fmt.Errorf("simnet: node %q already registered", node)
	}
	n.inboxes[node] = make(chan Message, n.buf)
	return nil
}

// trySend delivers msg to ch, reporting false when the channel was
// closed underneath it: a fail-stop Crash may close an inbox between
// Send's liveness check and the send itself (the send cannot hold the
// net lock — a full inbox would block Register/Crash/Snapshot). The
// recover is scoped to exactly this one send so no other panic can be
// misread as a crashed node.
func trySend(ch chan Message, msg Message) (delivered bool) {
	defer func() {
		if recover() != nil {
			delivered = false
		}
	}()
	ch <- msg
	return true
}

// Send implements Net.
func (n *ChannelNet) Send(msg Message) error {
	n.mu.Lock()
	ch, ok := n.inboxes[msg.To]
	dead := n.down[msg.To]
	n.mu.Unlock()
	if !ok || dead || !trySend(ch, msg) {
		return fmt.Errorf("%w: %s", ErrNodeDown, msg.To)
	}
	n.acct.record(&msg)
	return nil
}

// Inbox implements Net.
func (n *ChannelNet) Inbox(node string) <-chan Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inboxes[node]
}

// Crash implements Net.
func (n *ChannelNet) Crash(node string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down[node] {
		return
	}
	n.down[node] = true
	if ch, ok := n.inboxes[node]; ok {
		close(ch)
	}
}

// Down reports whether the node has crashed.
func (n *ChannelNet) Down(node string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[node]
}

// Snapshot implements Net.
func (n *ChannelNet) Snapshot() Traffic { return n.acct.snapshot() }

// Close implements Net.
func (n *ChannelNet) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for name, ch := range n.inboxes {
		if !n.down[name] {
			n.down[name] = true
			close(ch)
		}
	}
	return nil
}
