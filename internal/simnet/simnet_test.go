package simnet

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// netFactories lets every behavioural test run against both transports.
var netFactories = map[string]func() Net{
	"channel": func() Net { return NewChannelNet(0) },
	"tcp":     func() Net { return NewTCPNet() },
}

func TestSendRecvAllTransports(t *testing.T) {
	for name, mk := range netFactories {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			if err := n.Register("server"); err != nil {
				t.Fatal(err)
			}
			if err := n.Register("w1"); err != nil {
				t.Fatal(err)
			}
			payload := []byte("hello worker")
			if err := n.Send(Message{From: "server", To: "w1", Type: "batches", Kind: CtoW, Payload: payload}); err != nil {
				t.Fatal(err)
			}
			select {
			case msg := <-n.Inbox("w1"):
				if msg.From != "server" || msg.Type != "batches" || string(msg.Payload) != "hello worker" {
					t.Fatalf("bad message %+v", msg)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("message not delivered")
			}
		})
	}
}

func TestTrafficAccounting(t *testing.T) {
	for name, mk := range netFactories {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			for _, node := range []string{"C", "w1", "w2"} {
				if err := n.Register(node); err != nil {
					t.Fatal(err)
				}
			}
			send := func(from, to string, kind Kind, size int) {
				if err := n.Send(Message{From: from, To: to, Kind: kind, Payload: make([]byte, size)}); err != nil {
					t.Fatal(err)
				}
			}
			send("C", "w1", CtoW, 100)
			send("C", "w2", CtoW, 100)
			send("w1", "C", WtoC, 40)
			send("w1", "w2", WtoW, 7)

			// Drain so TCP readers finish delivery before snapshotting.
			for _, node := range []string{"w1", "w2", "C"} {
				drain(t, n, node, map[string]int{"w1": 1, "w2": 2, "C": 1}[node])
			}
			tr := n.Snapshot()
			if tr.Bytes[CtoW] != 200 || tr.Msgs[CtoW] != 2 {
				t.Fatalf("C→W = %d bytes / %d msgs", tr.Bytes[CtoW], tr.Msgs[CtoW])
			}
			if tr.Bytes[WtoC] != 40 || tr.Msgs[WtoC] != 1 {
				t.Fatalf("W→C = %d bytes", tr.Bytes[WtoC])
			}
			if tr.Bytes[WtoW] != 7 {
				t.Fatalf("W→W = %d bytes", tr.Bytes[WtoW])
			}
			if tr.IngressByNode["w2"] != 107 {
				t.Fatalf("w2 ingress = %d, want 107", tr.IngressByNode["w2"])
			}
			if tr.EgressByNode["C"] != 200 {
				t.Fatalf("C egress = %d, want 200", tr.EgressByNode["C"])
			}
			if tr.Total() != 247 {
				t.Fatalf("total = %d, want 247", tr.Total())
			}
		})
	}
}

func drain(t *testing.T, n Net, node string, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		select {
		case <-n.Inbox(node):
		case <-time.After(5 * time.Second):
			t.Fatalf("node %s: message %d/%d not delivered", node, i+1, count)
		}
	}
}

func TestCrashFailStop(t *testing.T) {
	for name, mk := range netFactories {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			if err := n.Register("C"); err != nil {
				t.Fatal(err)
			}
			if err := n.Register("w1"); err != nil {
				t.Fatal(err)
			}
			n.Crash("w1")
			err := n.Send(Message{From: "C", To: "w1", Kind: CtoW, Payload: []byte("x")})
			if !errors.Is(err, ErrNodeDown) {
				t.Fatalf("send to crashed node: err = %v, want ErrNodeDown", err)
			}
			// The inbox must eventually close so the worker goroutine
			// unblocks and terminates.
			select {
			case _, ok := <-n.Inbox("w1"):
				if ok {
					t.Fatal("unexpected message on crashed inbox")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("crashed inbox did not close")
			}
		})
	}
}

func TestSendToUnknownNode(t *testing.T) {
	n := NewChannelNet(0)
	defer n.Close()
	if err := n.Register("C"); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Message{From: "C", To: "ghost", Payload: []byte("x")}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

func TestDoubleRegisterRejected(t *testing.T) {
	for name, mk := range netFactories {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			if err := n.Register("C"); err != nil {
				t.Fatal(err)
			}
			if err := n.Register("C"); err == nil {
				t.Fatal("double register must fail")
			}
		})
	}
}

func TestConcurrentSendersAccounting(t *testing.T) {
	n := NewChannelNet(0)
	defer n.Close()
	if err := n.Register("C"); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const msgs = 50
	for i := 0; i < workers; i++ {
		if err := n.Register(workerName(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < msgs; j++ {
				if err := n.Send(Message{From: workerName(w), To: "C", Kind: WtoC, Payload: make([]byte, 10)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	tr := n.Snapshot()
	if tr.Bytes[WtoC] != workers*msgs*10 {
		t.Fatalf("W→C bytes = %d, want %d", tr.Bytes[WtoC], workers*msgs*10)
	}
	if tr.Msgs[WtoC] != workers*msgs {
		t.Fatalf("W→C msgs = %d", tr.Msgs[WtoC])
	}
}

func TestTCPLargePayloadRoundTrip(t *testing.T) {
	n := NewTCPNet()
	defer n.Close()
	if err := n.Register("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b"); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := n.Send(Message{From: "a", To: "b", Kind: WtoW, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-n.Inbox("b"):
		if len(msg.Payload) != len(payload) {
			t.Fatalf("payload length %d", len(msg.Payload))
		}
		for i := 0; i < len(payload); i += 4097 {
			if msg.Payload[i] != payload[i] {
				t.Fatalf("payload corrupted at %d", i)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("large payload not delivered")
	}
}

func workerName(i int) string { return "w" + string(rune('0'+i)) }

// TestBroadcastEachReportsPerDestination pins the straggler-tolerant
// error semantics the round engines rely on: every send is attempted,
// live destinations receive their messages, and the crashed one's slot
// carries a wrapped ErrNodeDown — no error aborts the others.
func TestBroadcastEachReportsPerDestination(t *testing.T) {
	for name, mk := range netFactories {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			for _, node := range []string{"server", "w0", "w1", "w2"} {
				if err := n.Register(node); err != nil {
					t.Fatal(err)
				}
			}
			n.Crash("w1")
			msgs := []Message{
				{From: "server", To: "w0", Type: "batches", Kind: CtoW, Payload: []byte("a")},
				{From: "server", To: "w1", Type: "batches", Kind: CtoW, Payload: []byte("b")},
				{From: "server", To: "w2", Type: "batches", Kind: CtoW, Payload: []byte("c")},
			}
			errs := BroadcastEach(n, msgs)
			if errs[0] != nil || errs[2] != nil {
				t.Fatalf("live destinations errored: %v / %v", errs[0], errs[2])
			}
			if !errors.Is(errs[1], ErrNodeDown) {
				t.Fatalf("crashed destination error = %v, want ErrNodeDown", errs[1])
			}
			for _, node := range []string{"w0", "w2"} {
				select {
				case <-n.Inbox(node):
				case <-time.After(5 * time.Second):
					t.Fatalf("%s never received its message despite the w1 failure", node)
				}
			}
			// The strict wrapper keeps its all-or-nothing contract.
			if err := Broadcast(n, msgs); !errors.Is(err, ErrNodeDown) {
				t.Fatalf("Broadcast = %v, want first ErrNodeDown", err)
			}
		})
	}
}

// TestTCPSendToDeadPeerIsNodeDown: transport-level send failures map to
// ErrNodeDown (the fail-stop model), so engines can demote rather than
// abort when a remote worker process dies between rounds.
func TestTCPSendToDeadPeerIsNodeDown(t *testing.T) {
	n := NewTCPNet()
	defer n.Close()
	if err := n.Register("server"); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("w0"); err != nil {
		t.Fatal(err)
	}
	// Establish the connection, then kill the peer's listener and
	// readers WITHOUT marking it down — the sender must discover the
	// death at the socket, exactly like a remote process that vanished.
	if err := n.Send(Message{From: "server", To: "w0", Type: "batches", Kind: CtoW, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	l := n.listeners["w0"]
	n.mu.Unlock()
	l.Close()
	// The first send after the crash may still be buffered by the OS;
	// keep sending until the broken pipe surfaces.
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := n.Send(Message{From: "server", To: "w0", Type: "batches", Kind: CtoW, Payload: make([]byte, 1<<16)})
		if err != nil {
			if !errors.Is(err, ErrNodeDown) {
				t.Fatalf("send error = %v, want ErrNodeDown", err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("send to crashed TCP peer never failed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPSendRedialsStaleConnection: a pooled connection torn down
// under the sender (idle timeout, NAT reset) must NOT read as a dead
// peer — Send retries over a fresh dial and delivers, because the
// round engines permanently demote ErrNodeDown destinations.
func TestTCPSendRedialsStaleConnection(t *testing.T) {
	n := NewTCPNet()
	defer n.Close()
	for _, node := range []string{"server", "w0"} {
		if err := n.Register(node); err != nil {
			t.Fatal(err)
		}
	}
	send := func() error {
		return n.Send(Message{From: "server", To: "w0", Type: "batches", Kind: CtoW, Payload: []byte("x")})
	}
	if err := send(); err != nil {
		t.Fatal(err)
	}
	<-n.Inbox("w0")
	// Kill the pooled socket out from under the sender; the peer's
	// listener stays up.
	n.mu.Lock()
	gc := n.conns["server→w0"]
	n.mu.Unlock()
	gc.conn.Close()
	// The write on the dead socket must be retried on a fresh dial,
	// not surfaced as ErrNodeDown.
	if err := send(); err != nil {
		t.Fatalf("send over stale connection = %v, want redial success", err)
	}
	select {
	case <-n.Inbox("w0"):
	case <-time.After(5 * time.Second):
		t.Fatal("redialed message never delivered")
	}
}

func TestKindString(t *testing.T) {
	if CtoW.String() != "C→W" || WtoC.String() != "W→C" || WtoW.String() != "W→W" {
		t.Fatal("Kind.String broken")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}
