// Package parallel provides small helpers to split data-parallel loops
// across the available CPU cores. It is the only place in the code base
// that decides how many goroutines a compute kernel may use, so the
// policy (and its test hooks) live here.
//
// Work is executed by a persistent pool of worker goroutines started on
// first use, so a steady-state training iteration never pays goroutine
// spawn cost. Exactly one parallel region is active at a time: a
// For/ForceFor/Do reached while another region is running (nested
// kernels, or concurrent MD-GAN workers) executes inline on the calling
// goroutine instead of fanning out. That guard is what makes nesting
// deadlock-free and keeps the scheduler from being oversubscribed when
// a coarse per-image loop calls a parallel matmul internally.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// serialGrain is the loop length below which For runs inline; under
// ~4096 scalar iterations the hand-off to the pool costs more than it
// saves for the kernels in this repo.
const serialGrain = 4096

// maxProcsOverride pins the degree of parallelism for tests; 0 means
// use GOMAXPROCS.
var maxProcsOverride atomic.Int32

// procs returns the degree of parallelism to use.
func procs() int {
	if n := maxProcsOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetMaxProcs overrides the degree of parallelism used by For, ForceFor
// and Do. n <= 0 restores the default (GOMAXPROCS).
func SetMaxProcs(n int) {
	if n <= 0 {
		maxProcsOverride.Store(0)
		return
	}
	maxProcsOverride.Store(int32(n))
}

// task is one chunk of a parallel region, executed by a pool worker.
type task struct {
	fn         func(start, end int)
	start, end int
	wg         *sync.WaitGroup
}

var (
	poolOnce sync.Once
	taskCh   chan task
)

// pool returns the task channel, starting the persistent workers on
// first use. The pool is sized to GOMAXPROCS at startup; SetMaxProcs
// only narrows how many chunks a region is split into.
func pool() chan task {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 1 {
			n = 1
		}
		taskCh = make(chan task, 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for t := range taskCh {
					t.fn(t.start, t.end)
					t.wg.Done()
				}
			}()
		}
	})
	return taskCh
}

// active is the single-flight guard: true while some goroutine owns the
// pool for a parallel region. CompareAndSwap semantics mean nested or
// concurrent regions degrade to inline execution rather than stacking
// goroutines multiplicatively.
var active atomic.Bool

// serialDepth counts open Serial sections. While positive, every
// region runs inline — unlike the single-flight guard, this holds even
// if an unrelated region finishes mid-section, so Serial's guarantee
// does not depend on who owns the guard at entry.
var serialDepth atomic.Int32

// fanOut splits [0, n) into p chunks, runs the first chunk on the
// calling goroutine and hands the rest to the pool. The caller must
// hold the active guard.
func fanOut(n, p int, fn func(start, end int)) {
	ch := pool()
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for start := chunk; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		select {
		case ch <- task{fn: fn, start: start, end: end, wg: &wg}:
		default:
			// Queue full (cannot happen under the single-flight guard,
			// but never block): run inline.
			fn(start, end)
			wg.Done()
		}
	}
	if chunk > n {
		chunk = n
	}
	fn(0, chunk)
	wg.Wait()
}

// For runs fn over the half-open index ranges that partition [0, n),
// using the persistent worker pool. Each invocation receives a disjoint
// [start, end) chunk; fn must be safe to call concurrently on disjoint
// chunks. Small loops, nested calls and calls made while another
// parallel region is active all execute inline.
func For(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	p := procs()
	if p > n {
		p = n
	}
	if p == 1 || n < serialGrain || serialDepth.Load() > 0 || !active.CompareAndSwap(false, true) {
		fn(0, n)
		return
	}
	defer active.Store(false)
	fanOut(n, p, fn)
}

// ForceFor behaves like For but fans out even for small n. It is
// intended for coarse-grained tasks (one unit of work per index is
// itself expensive, e.g. a per-image im2col). Like For it degrades to
// inline execution when nested inside another parallel region.
func ForceFor(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	p := procs()
	if p > n {
		p = n
	}
	if p == 1 || serialDepth.Load() > 0 || !active.CompareAndSwap(false, true) {
		fn(0, n)
		return
	}
	defer active.Store(false)
	fanOut(n, p, fn)
}

// Do runs the given tasks concurrently on the pool and waits for all of
// them. Nested within a parallel region the tasks run sequentially.
func Do(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	if len(tasks) == 1 || serialDepth.Load() > 0 || !active.CompareAndSwap(false, true) {
		for _, t := range tasks {
			t()
		}
		return
	}
	defer active.Store(false)
	ch := pool()
	var wg sync.WaitGroup
	for _, t := range tasks[1:] {
		t := t
		wg.Add(1)
		select {
		case ch <- task{fn: func(int, int) { t() }, wg: &wg}:
		default:
			t()
			wg.Done()
		}
	}
	tasks[0]()
	wg.Wait()
}

// Serial runs fn with kernel fan-out suppressed: any For, ForceFor or
// Do reached from fn executes inline on the calling goroutine, for the
// whole duration of fn (the suppression is process-wide, so concurrent
// goroutines also stay inline while a Serial section is open). Use it
// to keep already-parallel callers (e.g. one goroutine per MD-GAN
// worker) from contending over the kernel pool.
func Serial(fn func()) {
	serialDepth.Add(1)
	defer serialDepth.Add(-1)
	fn()
}
