// Package parallel provides small helpers to split data-parallel loops
// across the available CPU cores. It is the only place in the code base
// that decides how many goroutines a compute kernel may use, so the
// policy (and its test hooks) live here.
package parallel

import (
	"runtime"
	"sync"
)

// maxProcs returns the degree of parallelism to use. It is a variable so
// tests can pin it.
var maxProcs = func() int { return runtime.GOMAXPROCS(0) }

// SetMaxProcs overrides the degree of parallelism used by For and Do.
// n <= 0 restores the default (GOMAXPROCS). It returns the previous
// override state for tests that want to restore it.
func SetMaxProcs(n int) {
	if n <= 0 {
		maxProcs = func() int { return runtime.GOMAXPROCS(0) }
		return
	}
	maxProcs = func() int { return n }
}

// For runs fn over the half-open index ranges that partition [0, n),
// using up to GOMAXPROCS goroutines. Each invocation receives a disjoint
// [start, end) chunk; fn must be safe to call concurrently on disjoint
// chunks. For small n the call is executed inline to avoid goroutine
// overhead.
func For(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	p := maxProcs()
	if p > n {
		p = n
	}
	// Under ~4096 scalar iterations the goroutine fan-out costs more
	// than it saves for the kernels in this repo.
	if p == 1 || n < 4096 {
		fn(0, n)
		return
	}
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// ForceFor behaves like For but always fans out across goroutines, even
// for small n. It is intended for coarse-grained tasks (one unit of work
// per index is itself expensive, e.g. a per-image convolution).
func ForceFor(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	p := maxProcs()
	if p > n {
		p = n
	}
	if p == 1 {
		fn(0, n)
		return
	}
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// Do runs the given tasks concurrently and waits for all of them.
func Do(tasks ...func()) {
	if len(tasks) == 1 {
		tasks[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		go func(f func()) {
			defer wg.Done()
			f()
		}(t)
	}
	wg.Wait()
}
