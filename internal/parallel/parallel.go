// Package parallel schedules the data-parallel loops of every compute
// kernel in the code base. It is the only place that decides how many
// goroutines a kernel may use, so the policy (and its test hooks) live
// here.
//
// Work is executed by a work-stealing scheduler. Each participating
// goroutine — a persistent pool worker, or any goroutine that submits a
// region — owns a deque of tasks. A task is one contiguous index range
// (lo, hi, fn) of a parallel region; executing a task first splits it
// recursively (push the upper half, keep the lower) until it reaches
// the region's grain, so large ranges become stealable halves while the
// owner keeps working on cache-adjacent indices. Idle workers steal
// half of a victim's deque at a time (oldest tasks first — the biggest
// ranges).
//
// Regions compose: a For reached from inside another For's loop body
// submits its subtasks to the same scheduler and then *helps* — the
// blocked goroutine executes tasks from its own deque first (its
// freshly pushed subtasks, LIFO), then steals, until its region has
// completed. Nothing ever parks while it still owes work, which makes
// arbitrarily nested regions and concurrently submitted regions (one
// per simulated MD-GAN worker) deadlock-free without the old
// single-flight guard that serialised them.
//
// Loop bodies may spawn nested regions freely but must not block on
// channels or locks held by *other* regions' bodies: a helping
// goroutine can execute any region's task while it waits, so such
// cross-region blocking can extend (though never cycle) a region's
// lifetime arbitrarily.
//
// A panic inside a loop body — even one executing on a stolen task in
// another goroutine — is recovered, the region is drained, and the
// panic value is re-raised on the goroutine that submitted the region.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// serialGrain is the loop length below which For runs inline; under
// ~4096 scalar iterations the hand-off to the scheduler costs more than
// it saves for the kernels in this repo.
const serialGrain = 4096

// splitMul is the number of grains per worker a region is split into
// when no explicit grain is given: enough slack for stealing to balance
// uneven bodies without drowning in per-task overhead.
const splitMul = 8

// maxProcsOverride pins the degree of parallelism for tests; 0 means
// use GOMAXPROCS.
var maxProcsOverride atomic.Int32

// procs returns the degree of parallelism to use.
func procs() int {
	if n := maxProcsOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetMaxProcs overrides the parallelism target used by For, ForGrain,
// ForceFor and Do. n <= 0 restores the default (GOMAXPROCS). n == 1
// forces every region inline on its calling goroutine (serial order).
// For n > 1 the value tunes how finely regions split (about splitMul·n
// tasks); the number of bodies actually running concurrently is bounded
// by the pool (sized to GOMAXPROCS at startup) plus the submitting
// goroutines, not by n — use the runtime's GOMAXPROCS to cap CPU use.
func SetMaxProcs(n int) {
	if n <= 0 {
		maxProcsOverride.Store(0)
		return
	}
	maxProcsOverride.Store(int32(n))
}

// serialDepth counts open Serial sections. While positive, every region
// runs inline, process-wide, so already-parallel callers can suppress
// kernel fan-out for a bounded section.
var serialDepth atomic.Int32

// Ranger is the loop body of a parallel region in interface form: Range
// is invoked with disjoint [lo, hi) chunks, concurrently. ForGrainRanger
// takes it instead of a func so allocation-free hot paths can pool one
// pointer-backed implementation per call site — a pointer (or any
// pointer-shaped value) converts to the interface without heap
// allocation, where a fresh func literal always allocates its closure.
type Ranger interface {
	Range(lo, hi int)
}

// funcRanger adapts the closure-based entry points to the Ranger-based
// region internals. A func value is pointer-shaped, so the conversion
// does not allocate beyond the closure itself.
type funcRanger func(lo, hi int)

func (f funcRanger) Range(lo, hi int) { f(lo, hi) }

// region is one For/ForceFor/Do invocation: the loop body, the split
// grain, and the completion state shared by every task split from it.
// Regions are pooled (steady-state kernels submit thousands per
// iteration), so completion is a cond broadcast rather than a one-shot
// channel close: whoever drives pending to zero broadcasts, and the
// submitting goroutine — the only possible waiter — always re-checks
// pending, so a stray broadcast delivered to a recycled region is a
// harmless spurious wake.
type region struct {
	fn      Ranger
	grain   int
	pending atomic.Int64 // index units not yet executed

	mu   sync.Mutex
	cond sync.Cond // signalled when pending reaches zero; L is &mu

	panicMu  sync.Mutex
	panicked bool
	panicV   any
}

var regionPool = sync.Pool{New: func() any {
	r := &region{}
	r.cond.L = &r.mu
	return r
}}

func (r *region) recordPanic(p any) {
	r.panicMu.Lock()
	if !r.panicked {
		r.panicked = true
		r.panicV = p
	}
	r.panicMu.Unlock()
}

// task is one contiguous index range of a region.
type task struct {
	r      *region
	lo, hi int
}

// deque is a mutex-guarded double-ended task queue. Only its owner
// pushes and pops (at the tail: LIFO, cache-warm); thieves take from
// the head — the oldest, therefore largest, ranges.
type deque struct {
	mu sync.Mutex
	t  []task
}

func (d *deque) push(t task) {
	d.mu.Lock()
	d.t = append(d.t, t)
	d.mu.Unlock()
	signalWork()
}

func (d *deque) pop() (task, bool) {
	d.mu.Lock()
	n := len(d.t)
	if n == 0 {
		d.mu.Unlock()
		return task{}, false
	}
	t := d.t[n-1]
	d.t[n-1] = task{} // drop the region reference
	d.t = d.t[:n-1]
	d.mu.Unlock()
	return t, true
}

// stealHalfInto moves the older half of d's queue to the thief: the
// first stolen task is returned for immediate execution, the rest are
// appended to dst. scratch is the thief's reusable staging buffer (the
// two deques are never locked at the same time, so mutual stealing
// cannot deadlock).
func (d *deque) stealHalfInto(dst *deque, scratch *[]task) (task, bool) {
	d.mu.Lock()
	n := len(d.t)
	if n == 0 {
		d.mu.Unlock()
		return task{}, false
	}
	k := (n + 1) / 2
	buf := append((*scratch)[:0], d.t[:k]...)
	rest := copy(d.t, d.t[k:])
	for i := rest; i < n; i++ {
		d.t[i] = task{}
	}
	d.t = d.t[:rest]
	d.mu.Unlock()
	t := buf[0]
	if len(buf) > 1 {
		dst.mu.Lock()
		dst.t = append(dst.t, buf[1:]...)
		dst.mu.Unlock()
		signalWork()
	}
	// Keep the staging buffer's capacity but drop its task references:
	// a pool worker lives forever, and a stale region pointer here would
	// pin the region and every buffer its closure captured.
	for i := range buf {
		buf[i] = task{}
	}
	*scratch = buf[:0]
	return t, true
}

// wctx is the scheduling context of one goroutine participating in the
// scheduler: a pool worker for its whole life, or any submitting
// goroutine for the duration of its outermost region.
type wctx struct {
	dq       deque
	stealBuf []task
	rnd      uint64
}

// nextRand is a xorshift step for victim selection.
func (w *wctx) nextRand() uint64 {
	x := w.rnd
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rnd = x
	return x
}

var (
	// ctxs maps goroutine id → *wctx for every participating goroutine.
	ctxs sync.Map
	// victims lists every deque a thief may steal from.
	victims struct {
		mu   sync.RWMutex
		list []*wctx
	}
	helperSeed atomic.Uint64
)

func addVictim(w *wctx) {
	victims.mu.Lock()
	victims.list = append(victims.list, w)
	victims.mu.Unlock()
}

func removeVictim(w *wctx) {
	victims.mu.Lock()
	l := victims.list
	for i, v := range l {
		if v == w {
			nl := make([]*wctx, 0, len(l)-1)
			nl = append(nl, l[:i]...)
			nl = append(nl, l[i+1:]...)
			victims.list = nl
			break
		}
	}
	victims.mu.Unlock()
}

// steal takes work from a random victim, sweeping all of them once.
func (w *wctx) steal() (task, bool) {
	victims.mu.RLock()
	defer victims.mu.RUnlock()
	n := len(victims.list)
	if n == 0 {
		return task{}, false
	}
	off := int(w.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		v := victims.list[(off+i)%n]
		if v == w {
			continue
		}
		if t, ok := v.dq.stealHalfInto(&w.dq, &w.stealBuf); ok {
			return t, true
		}
	}
	return task{}, false
}

// runTask splits t down to its region's grain (pushing upper halves for
// thieves) and executes the remaining range, recovering any panic into
// the region.
func (w *wctx) runTask(t task) {
	r := t.r
	lo, hi := t.lo, t.hi
	for hi-lo > r.grain {
		mid := lo + (hi-lo)/2
		w.dq.push(task{r: r, lo: mid, hi: hi})
		hi = mid
	}
	runBody(r, lo, hi)
	if r.pending.Add(int64(lo-hi)) == 0 {
		// pending is monotonically decreasing: exactly one broadcaster.
		// Taking mu orders the broadcast against the waiter's
		// check-then-Wait, so the wakeup cannot be lost.
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

func runBody(r *region, lo, hi int) {
	defer func() {
		if p := recover(); p != nil {
			r.recordPanic(p)
		}
	}()
	r.fn.Range(lo, hi)
}

// Pool workers: persistent goroutines that execute stolen work so a
// steady-state training iteration never pays goroutine spawn cost. The
// pool tracks runtime.GOMAXPROCS: every region submission re-checks it
// (two atomic loads on the fast path), so a GOMAXPROCS change between
// Train calls grows the pool or retires the excess workers without a
// restart.
var (
	poolMu     sync.Mutex
	wake       = make(chan struct{}, 128)
	sleepers   atomic.Int32
	poolTarget atomic.Int32 // desired pool size (poolWant of the last ensurePool)
	poolLive   atomic.Int32 // workers currently alive
	poolSeq    uint64       // seeds worker RNGs distinctly across respawns
)

// signalWork wakes one parked pool worker, if any.
func signalWork() {
	if sleepers.Load() > 0 {
		select {
		case wake <- struct{}{}:
		default:
		}
	}
}

// poolWant is the pool size the current GOMAXPROCS calls for (minimum 2
// so stealing is exercised even on one core). SetMaxProcs only narrows
// how finely regions split; it does not resize the pool.
func poolWant() int32 {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	return int32(n)
}

// ensurePool starts the pool on first use and resizes it whenever
// GOMAXPROCS has changed since the last region: new workers are spawned
// immediately; excess workers retire themselves the next time they go
// idle (poolExit), so a shrink never interrupts running tasks. A worker
// that committed to exit just as the target rose back is respawned by
// the next region's ensurePool — the pool converges within a region
// submission of any GOMAXPROCS change.
func ensurePool() {
	want := poolWant()
	if poolTarget.Load() == want {
		return
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	want = poolWant() // re-read under the lock
	cur := poolTarget.Load()
	if cur == want {
		return
	}
	poolTarget.Store(want)
	for live := poolLive.Load(); live < want; live++ {
		poolSeq++
		w := &wctx{rnd: poolSeq*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
		addVictim(w)
		poolLive.Add(1)
		go func() {
			id := goid()
			ctxs.Store(id, w)
			w.loop(id)
		}()
	}
	// Shrinking: wake enough parked workers for the excess to notice.
	for i := want; i < cur; i++ {
		select {
		case wake <- struct{}{}:
		default:
		}
	}
}

// poolExit reports whether an idle worker should retire to meet a
// lowered poolTarget. The excess check and the poolLive decrement
// happen under poolMu — the same lock ensurePool grows under — so a
// retirement can never interleave with a concurrent grow: without the
// lock, a worker could read a stale (lower) target, decrement poolLive
// after the grow counted it, and leave the pool permanently below
// target behind ensurePool's fast path. The lock-free load pair keeps
// the steady-state idle loop cheap.
func (w *wctx) poolExit(id uint64) bool {
	if poolLive.Load() <= poolTarget.Load() {
		return false
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	if poolLive.Load() <= poolTarget.Load() {
		return false
	}
	poolLive.Add(-1)
	removeVictim(w)
	ctxs.Delete(id)
	return true
}

// loop is the pool worker body: pop own work, steal, park. A worker's
// own deque is filled only by itself, so after a failed pop it can only
// acquire work by stealing. The sleepers increment happens before the
// final steal sweep, and every push signals after enqueueing, so a task
// enqueued concurrently with parking is never lost. An idle worker
// retires when the pool target shrank below the live count; its deque
// is empty at that point (pop just failed), so no task is stranded.
func (w *wctx) loop(id uint64) {
	for {
		if t, ok := w.dq.pop(); ok {
			w.runTask(t)
			continue
		}
		if t, ok := w.steal(); ok {
			w.runTask(t)
			continue
		}
		if w.poolExit(id) {
			return
		}
		sleepers.Add(1)
		if t, ok := w.steal(); ok {
			sleepers.Add(-1)
			w.runTask(t)
			continue
		}
		<-wake
		sleepers.Add(-1)
	}
}

// ctx returns the calling goroutine's scheduling context, creating and
// registering a helper context when the goroutine has none. top reports
// whether the caller owns (and must release) the context.
func ctx() (w *wctx, id uint64, top bool) {
	id = goid()
	if v, ok := ctxs.Load(id); ok {
		return v.(*wctx), id, false
	}
	w = helperPool.Get().(*wctx)
	ctxs.Store(id, w)
	addVictim(w)
	return w, id, true
}

// helperPool recycles helper contexts across outermost regions: the
// deque and steal buffers keep their capacity, so a goroutine that
// repeatedly submits regions (every training iteration does) stops
// allocating them after warm-up. A pooled wctx is safe to hand to
// another goroutine: release drained its deque and deregistered it
// before the Put, so no thief can still reach it.
var helperPool = sync.Pool{New: func() any {
	return &wctx{rnd: helperSeed.Add(0x9E3779B97F4A7C15) | 1}
}}

// release drains any leftover stolen tasks and deregisters a helper
// context. The deque must be drained before deregistering: it may hold
// tasks of other regions batched in by this goroutine's own steals.
func (w *wctx) release(id uint64) {
	for {
		t, ok := w.dq.pop()
		if !ok {
			break
		}
		w.runTask(t)
	}
	removeVictim(w)
	ctxs.Delete(id)
	helperPool.Put(w)
}

// runRegion executes fn over [0, n) with the given split grain on the
// work-stealing scheduler, returning when every index has executed.
func runRegion(n, grain int, fn Ranger) {
	w, id, top := ctx()
	r := regionPool.Get().(*region)
	r.fn, r.grain = fn, grain
	r.pending.Store(int64(n))
	w.runTask(task{r: r, lo: 0, hi: n})
	// Help until the region completes: own subtasks first (LIFO), then
	// steal. With nothing runnable anywhere, park on the region's cond —
	// the remaining bodies are in flight on other goroutines (possibly
	// blocked in sends), and polling for them would burn the very core
	// they need. A goroutine only parks here with an empty deque, so no
	// task is ever stranded behind a parked owner. The check-then-Wait
	// under mu pairs with the completion broadcast under the same mu, so
	// the wakeup cannot be lost; the outer loop absorbs spurious wakes
	// (including stray broadcasts from a previous life of the pooled
	// region).
	for r.pending.Load() > 0 {
		if t, ok := w.dq.pop(); ok {
			w.runTask(t)
			continue
		}
		if t, ok := w.steal(); ok {
			w.runTask(t)
			continue
		}
		// One yield before parking: a splitting task may be just about
		// to publish stealable halves.
		runtime.Gosched()
		if t, ok := w.steal(); ok {
			w.runTask(t)
			continue
		}
		r.mu.Lock()
		if r.pending.Load() > 0 {
			r.cond.Wait()
		}
		r.mu.Unlock()
	}
	if top {
		w.release(id)
	}
	// The final pending decrement happened-before the loop exit, so the
	// panic record (written before that decrement) is visible here.
	panicked, pv := r.panicked, r.panicV
	r.fn, r.panicked, r.panicV = nil, false, nil
	regionPool.Put(r)
	if panicked {
		panic(pv)
	}
}

// inline reports whether a region must run on the calling goroutine:
// single-proc configurations and open Serial sections. Every region
// submission passes through here, so this is also where the pool tracks
// GOMAXPROCS — a change resizes the pool even when the new setting
// forces regions inline (the stale workers still retire).
func inline() bool {
	ensurePool()
	return procs() == 1 || serialDepth.Load() > 0
}

// For runs fn over the half-open index ranges that partition [0, n).
// Each invocation receives a disjoint [start, end) chunk; fn must be
// safe to call concurrently on disjoint chunks. Small loops run inline;
// large ones split across the work-stealing scheduler, composing freely
// with enclosing or concurrent parallel regions.
func For(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if n < serialGrain || inline() {
		fn(0, n)
		return
	}
	grain := n / (splitMul * procs())
	if grain < serialGrain/4 {
		grain = serialGrain / 4
	}
	runRegion(n, grain, funcRanger(fn))
}

// ForGrain behaves like For with an explicit split grain: ranges stop
// splitting at or below grain indices. Use it when the caller knows the
// per-index cost (kernels size their grain so one task amortises the
// scheduling overhead). n <= grain runs inline.
func ForGrain(n, grain int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if n <= grain || inline() {
		fn(0, n)
		return
	}
	runRegion(n, grain, funcRanger(fn))
}

// ForGrainRanger is ForGrain for pre-built Ranger loop bodies: kernels
// that run every training iteration pool one pointer-backed Ranger and
// pass it here, so a steady-state region submission performs no heap
// allocation (a func-literal body would allocate its closure per call).
func ForGrainRanger(n, grain int, r Ranger) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if n <= grain || inline() {
		r.Range(0, n)
		return
	}
	runRegion(n, grain, r)
}

// ForceFor behaves like For but fans out even for small n. It is
// intended for coarse-grained tasks (one unit of work per index is
// itself expensive, e.g. a per-image im2col).
func ForceFor(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if n == 1 || inline() {
		fn(0, n)
		return
	}
	grain := n / (splitMul * procs())
	if grain < 1 {
		grain = 1
	}
	runRegion(n, grain, funcRanger(fn))
}

// Do runs the given tasks concurrently on the scheduler and waits for
// all of them.
func Do(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	if len(tasks) == 1 || inline() {
		for _, t := range tasks {
			t()
		}
		return
	}
	runRegion(len(tasks), 1, funcRanger(func(start, end int) {
		for i := start; i < end; i++ {
			tasks[i]()
		}
	}))
}

// Serial runs fn with kernel fan-out suppressed: any For, ForGrain,
// ForceFor or Do reached from fn executes inline on the calling
// goroutine, for the whole duration of fn (the suppression is
// process-wide, so concurrent goroutines also stay inline while a
// Serial section is open).
func Serial(fn func()) {
	serialDepth.Add(1)
	defer serialDepth.Add(-1)
	fn()
}

// goid returns the runtime id of the calling goroutine, parsed from the
// stack header ("goroutine 123 [running]:"). It is the only
// goroutine-identity primitive the runtime exposes without unsafe; the
// cost (~1µs) is paid once per fanned-out region, never on inline
// paths.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for i := prefix; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
