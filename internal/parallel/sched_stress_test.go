package parallel

// Stress, race and liveness tests for the work-stealing scheduler: the
// behaviors PR 1's single-flight pool could not provide. Run with
// `go test -race` (scripts/verify.sh does) — most of the value of these
// tests is what the race detector sees while they run.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestNestedThreeLevels drives For-inside-For three levels deep and
// checks exact index coverage: every level fans out, nothing deadlocks,
// no index is lost or run twice.
func TestNestedThreeLevels(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)

	const l1, l2, l3 = 3, 4, 8192
	var total int64
	ForceFor(l1, func(s1, e1 int) {
		for i := s1; i < e1; i++ {
			ForceFor(l2, func(s2, e2 int) {
				for j := s2; j < e2; j++ {
					For(l3, func(s3, e3 int) {
						atomic.AddInt64(&total, int64(e3-s3))
					})
				}
			})
		}
	})
	if total != l1*l2*l3 {
		t.Fatalf("3-level nesting covered %d index units, want %d", total, l1*l2*l3)
	}
}

// TestConcurrentRegionsCompose proves the single-flight behavior is
// gone: while one region is held open mid-execution, a second region
// submitted from another goroutine must still fan out into multiple
// chunks (under the PR-1 guard it degraded to exactly one inline
// invocation) — two regions making progress simultaneously.
func TestConcurrentRegionsCompose(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)

	aStarted := make(chan struct{})
	release := make(chan struct{})
	var hold sync.Once
	var aChunks, bChunks atomic.Int32
	aDone := make(chan struct{})
	go func() {
		defer close(aDone)
		ForceFor(8, func(s, e int) {
			aChunks.Add(1)
			hold.Do(func() {
				close(aStarted)
				<-release // keep region A open
			})
		})
	}()
	<-aStarted

	// Region A is demonstrably active (one of its bodies is blocked) and
	// cannot complete until released. Region B must still split.
	ForceFor(8, func(s, e int) { bChunks.Add(1) })

	if got := bChunks.Load(); got < 2 {
		t.Errorf("concurrent region ran in %d chunk(s): single-flight serialization is back", got)
	}
	select {
	case <-aDone:
		t.Error("region A completed while one of its bodies was still held")
	default:
	}
	close(release)
	select {
	case <-aDone:
	case <-time.After(30 * time.Second):
		t.Fatal("region A did not complete after release: scheduler lost its tasks")
	}
	if got := aChunks.Load(); got != 8 {
		t.Errorf("region A ran %d chunks, want 8", got)
	}
}

// TestTwoGoroutinesLaunchConcurrently runs two independent regions from
// two goroutines through a rendezvous that guarantees they overlap in
// time, then checks both fanned out and both covered their ranges.
func TestTwoGoroutinesLaunchConcurrently(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)

	var live [2]atomic.Int32
	var overlapped atomic.Bool
	var chunks [2]atomic.Int32
	var covered [2]int64
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ForceFor(64, func(s, e int) {
				chunks[g].Add(1)
				live[g].Add(1)
				// Watch briefly for the other region being live at the
				// same instant; one sighting anywhere is enough.
				deadline := time.Now().Add(100 * time.Millisecond)
				for !overlapped.Load() && time.Now().Before(deadline) {
					if live[1-g].Load() > 0 {
						overlapped.Store(true)
						break
					}
					time.Sleep(50 * time.Microsecond)
				}
				atomic.AddInt64(&covered[g], int64(e-s))
				live[g].Add(-1)
			})
		}()
	}
	wg.Wait()
	for g := 0; g < 2; g++ {
		if covered[g] != 64 {
			t.Errorf("region %d covered %d of 64", g, covered[g])
		}
		if chunks[g].Load() < 2 {
			t.Errorf("region %d ran in %d chunk(s), want fan-out", g, chunks[g].Load())
		}
	}
	if !overlapped.Load() {
		t.Error("the two regions were never live simultaneously")
	}
}

// TestPanicPropagatesFromTasks: a panic in any loop body — including
// bodies executed by pool workers on stolen tasks — must surface as a
// panic on the goroutine that submitted the region, with the original
// value, and leave the scheduler healthy.
func TestPanicPropagatesFromTasks(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)

	for try := 0; try < 25; try++ {
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatal("panic in loop body did not propagate")
				}
				if s, ok := p.(string); !ok || s != "kernel exploded" {
					t.Fatalf("propagated %v, want the original panic value", p)
				}
			}()
			ForceFor(64, func(s, e int) {
				for i := s; i < e; i++ {
					if i == 13 {
						panic("kernel exploded")
					}
				}
			})
		}()
	}
	// The scheduler must remain fully usable after panics.
	var n int64
	ForceFor(64, func(s, e int) { atomic.AddInt64(&n, int64(e-s)) })
	if n != 64 {
		t.Fatalf("post-panic region covered %d of 64", n)
	}
}

// TestNestedPanicPropagates: a panic inside an inner region crosses
// both region boundaries and reaches the outermost submitter.
func TestNestedPanicPropagates(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)

	defer func() {
		if p := recover(); p != "inner kernel panic" {
			t.Fatalf("outer goroutine recovered %v, want inner panic value", p)
		}
	}()
	ForceFor(4, func(s, e int) {
		ForceFor(4, func(s, e int) {
			panic("inner kernel panic")
		})
	})
	t.Fatal("unreachable: nested panic was swallowed")
}

// TestSchedulerStress hammers every composition at once: concurrent
// submitters, nesting, varying sizes, and Do — the closest model of K
// simulated MD-GAN workers each driving their own kernels.
func TestSchedulerStress(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)

	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch (g + i) % 3 {
				case 0:
					ForceFor(64, func(s, e int) {
						For(5000, func(is, ie int) {
							atomic.AddInt64(&total, int64(ie-is))
						})
					})
				case 1:
					For(20000, func(s, e int) {
						atomic.AddInt64(&total, int64(e-s))
					})
				case 2:
					Do(
						func() { atomic.AddInt64(&total, 1) },
						func() { atomic.AddInt64(&total, 1) },
						func() { atomic.AddInt64(&total, 1) },
					)
				}
			}
		}()
	}
	donech := make(chan struct{})
	go func() { wg.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-time.After(120 * time.Second):
		t.Fatal("scheduler stress did not complete: likely deadlock")
	}
	if total == 0 {
		t.Fatal("stress loop did no work")
	}
}
