package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 4096, 10000} {
		seen := make([]int32, n)
		For(n, func(s, e int) {
			for i := s; i < e; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForceForCoversRange(t *testing.T) {
	n := 37
	var mu sync.Mutex
	seen := make(map[int]int)
	ForceFor(n, func(s, e int) {
		mu.Lock()
		defer mu.Unlock()
		for i := s; i < e; i++ {
			seen[i]++
		}
	})
	if len(seen) != n {
		t.Fatalf("covered %d of %d", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestSetMaxProcsSerialises(t *testing.T) {
	SetMaxProcs(1)
	defer SetMaxProcs(0)
	order := make([]int, 0, 10000)
	For(10000, func(s, e int) {
		for i := s; i < e; i++ {
			order = append(order, i) // safe only because p==1
		}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution out of order at %d", i)
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatal("Do did not run all tasks")
	}
}

// TestNestedParallelismRunsInline is the regression test for the
// conv-inside-ForceFor bug: a kernel invoked from within a parallel
// region must execute inline (single fn invocation over the full
// range), not fan out a second layer of goroutines.
func TestNestedParallelismRunsInline(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)

	var innerCalls, innerMax, innerLive int32
	outer := 8
	var outerChunks int32
	ForceFor(outer, func(s, e int) {
		atomic.AddInt32(&outerChunks, 1)
		// Nested region: must degrade to exactly one inline call
		// covering the whole range.
		calls := int32(0)
		ForceFor(10000, func(is, ie int) {
			atomic.AddInt32(&calls, 1)
			live := atomic.AddInt32(&innerLive, 1)
			for {
				m := atomic.LoadInt32(&innerMax)
				if live <= m || atomic.CompareAndSwapInt32(&innerMax, m, live) {
					break
				}
			}
			if is != 0 || ie != 10000 {
				t.Errorf("nested chunk [%d,%d), want inline [0,10000)", is, ie)
			}
			atomic.AddInt32(&innerLive, -1)
		})
		atomic.AddInt32(&innerCalls, calls)
		if calls != 1 {
			t.Errorf("nested ForceFor split into %d chunks, want 1 (inline)", calls)
		}
	})
	if outerChunks == 0 {
		t.Fatal("outer region never ran")
	}
	// Oversubscription check: concurrent nested bodies can never exceed
	// the pinned parallelism (one inline body per outer chunk).
	if innerMax > 4 {
		t.Fatalf("%d nested bodies ran concurrently, want <= 4", innerMax)
	}
}

// TestSerialSuppressesFanOut: inside Serial, even a large For must run
// as one inline invocation.
func TestSerialSuppressesFanOut(t *testing.T) {
	calls := 0
	Serial(func() {
		For(100000, func(s, e int) {
			calls++
			if s != 0 || e != 100000 {
				t.Errorf("chunk [%d,%d), want inline [0,100000)", s, e)
			}
		})
	})
	if calls != 1 {
		t.Fatalf("For inside Serial ran %d chunks, want 1", calls)
	}
}

// TestPoolGoroutinesAreReused: repeated fan-outs must not leak
// goroutines (the pre-pool implementation spawned per call).
func TestPoolGoroutinesAreReused(t *testing.T) {
	// Warm the pool.
	ForceFor(64, func(s, e int) {})
	before := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		ForceFor(64, func(s, e int) {})
		For(100000, func(s, e int) {})
	}
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Fatalf("goroutines grew from %d to %d across 400 parallel regions", before, after)
	}
}

// TestConcurrentRegionsDoNotDeadlock: many goroutines hammering the
// pool at once (the MD-GAN worker topology) must all complete.
func TestConcurrentRegionsDoNotDeadlock(t *testing.T) {
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ForceFor(100, func(s, e int) {
					for j := s; j < e; j++ {
						atomic.AddInt64(&total, 1)
					}
				})
			}
		}()
	}
	wg.Wait()
	if total != 16*50*100 {
		t.Fatalf("covered %d iterations, want %d", total, 16*50*100)
	}
}
