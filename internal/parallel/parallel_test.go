package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)
	for _, n := range []int{0, 1, 7, 4096, 10000} {
		seen := make([]int32, n)
		For(n, func(s, e int) {
			for i := s; i < e; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForceForCoversRange(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)
	n := 37
	var mu sync.Mutex
	seen := make(map[int]int)
	ForceFor(n, func(s, e int) {
		mu.Lock()
		defer mu.Unlock()
		for i := s; i < e; i++ {
			seen[i]++
		}
	})
	if len(seen) != n {
		t.Fatalf("covered %d of %d", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForGrainRespectsGrain(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)
	var mu sync.Mutex
	var spans [][2]int
	ForGrain(1000, 100, func(s, e int) {
		mu.Lock()
		spans = append(spans, [2]int{s, e})
		mu.Unlock()
	})
	seen := make([]int, 1000)
	for _, sp := range spans {
		if sp[1]-sp[0] > 100 {
			t.Errorf("chunk [%d,%d) exceeds grain 100", sp[0], sp[1])
		}
		for i := sp[0]; i < sp[1]; i++ {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
	// n <= grain runs as a single inline invocation.
	calls := 0
	ForGrain(50, 100, func(s, e int) {
		calls++
		if s != 0 || e != 50 {
			t.Errorf("inline chunk [%d,%d), want [0,50)", s, e)
		}
	})
	if calls != 1 {
		t.Fatalf("n<=grain split into %d chunks, want 1", calls)
	}
}

func TestSetMaxProcsSerialises(t *testing.T) {
	SetMaxProcs(1)
	defer SetMaxProcs(0)
	order := make([]int, 0, 10000)
	For(10000, func(s, e int) {
		for i := s; i < e; i++ {
			order = append(order, i) // safe only because p==1
		}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution out of order at %d", i)
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)
	var a, b, c int32
	Do(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatal("Do did not run all tasks")
	}
}

// TestNestedParallelismComposes replaces the PR-1 regression test that
// pinned nested regions to inline execution: with the work-stealing
// scheduler a nested kernel fans out too, and the requirement is exact
// coverage, not serialisation.
func TestNestedParallelismComposes(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)

	outer, inner := 8, 10000
	var total int64
	ForceFor(outer, func(s, e int) {
		for o := s; o < e; o++ {
			ForceFor(inner, func(is, ie int) {
				atomic.AddInt64(&total, int64(ie-is))
			})
		}
	})
	if total != int64(outer*inner) {
		t.Fatalf("nested regions covered %d index units, want %d", total, outer*inner)
	}
}

// TestSerialSuppressesFanOut: inside Serial, even a large For must run
// as one inline invocation.
func TestSerialSuppressesFanOut(t *testing.T) {
	calls := 0
	Serial(func() {
		For(100000, func(s, e int) {
			calls++
			if s != 0 || e != 100000 {
				t.Errorf("chunk [%d,%d), want inline [0,100000)", s, e)
			}
		})
	})
	if calls != 1 {
		t.Fatalf("For inside Serial ran %d chunks, want 1", calls)
	}
}

// TestPoolGoroutinesAreReused: repeated fan-outs must not leak
// goroutines (workers are persistent; submitters help inline rather
// than spawning).
func TestPoolGoroutinesAreReused(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)
	// Warm the pool.
	ForceFor(64, func(s, e int) {})
	before := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		ForceFor(64, func(s, e int) {})
		For(100000, func(s, e int) {})
	}
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Fatalf("goroutines grew from %d to %d across 400 parallel regions", before, after)
	}
}

// TestConcurrentRegionsDoNotDeadlock: many goroutines hammering the
// scheduler at once (the MD-GAN worker topology) must all complete.
func TestConcurrentRegionsDoNotDeadlock(t *testing.T) {
	SetMaxProcs(4)
	defer SetMaxProcs(0)
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ForceFor(100, func(s, e int) {
					for j := s; j < e; j++ {
						atomic.AddInt64(&total, 1)
					}
				})
			}
		}()
	}
	wg.Wait()
	if total != 16*50*100 {
		t.Fatalf("covered %d iterations, want %d", total, 16*50*100)
	}
}
