package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 4096, 10000} {
		seen := make([]int32, n)
		For(n, func(s, e int) {
			for i := s; i < e; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForceForCoversRange(t *testing.T) {
	n := 37
	var mu sync.Mutex
	seen := make(map[int]int)
	ForceFor(n, func(s, e int) {
		mu.Lock()
		defer mu.Unlock()
		for i := s; i < e; i++ {
			seen[i]++
		}
	})
	if len(seen) != n {
		t.Fatalf("covered %d of %d", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestSetMaxProcsSerialises(t *testing.T) {
	SetMaxProcs(1)
	defer SetMaxProcs(0)
	order := make([]int, 0, 10000)
	For(10000, func(s, e int) {
		for i := s; i < e; i++ {
			order = append(order, i) // safe only because p==1
		}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution out of order at %d", i)
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatal("Do did not run all tasks")
	}
}
