package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// triggerRegion submits a region large enough to reach runRegion (and
// therefore ensurePool) regardless of the grain.
func triggerRegion() {
	var sink atomic.Int64
	ForGrain(1<<12, 8, func(s, e int) {
		sink.Add(int64(e - s))
	})
}

// waitPoolSize polls until the live worker count reaches want (shrinks
// complete asynchronously: excess workers retire when they go idle).
func waitPoolSize(t *testing.T, want int32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		triggerRegion() // wake idle workers so retirees notice the target
		if got := poolLive.Load(); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool size = %d, want %d", poolLive.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolResizesWithGOMAXPROCS pins the PR 2 leftover: the worker pool
// was sized to GOMAXPROCS once at startup, so raising it between Train
// calls left cores idle and lowering it left stale workers. ensurePool
// must now track GOMAXPROCS on every region submission, both ways.
func TestPoolResizesWithGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer func() {
		runtime.GOMAXPROCS(old)
		triggerRegion()
	}()

	runtime.GOMAXPROCS(4)
	triggerRegion()
	if got := poolLive.Load(); got != 4 {
		t.Fatalf("after GOMAXPROCS(4): pool size = %d, want 4", got)
	}

	// Shrink: the two excess workers must retire once idle.
	runtime.GOMAXPROCS(2)
	waitPoolSize(t, 2)

	// Grow again: fresh workers are spawned immediately.
	runtime.GOMAXPROCS(6)
	triggerRegion()
	if got := poolLive.Load(); got != 6 {
		t.Fatalf("after GOMAXPROCS(6): pool size = %d, want 6", got)
	}

	// The floor of two workers holds even at GOMAXPROCS(1), so stealing
	// stays exercised on one core.
	runtime.GOMAXPROCS(1)
	waitPoolSize(t, 2)
}

// TestPoolResizeUnderLoad exercises a shrink while regions are being
// submitted: no region may deadlock or lose indices while workers
// retire.
func TestPoolResizeUnderLoad(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer func() {
		runtime.GOMAXPROCS(old)
		triggerRegion()
	}()
	runtime.GOMAXPROCS(8)
	triggerRegion()
	for round := 0; round < 20; round++ {
		if round == 10 {
			runtime.GOMAXPROCS(2)
		}
		var sum atomic.Int64
		n := 1 << 14
		ForGrain(n, 16, func(s, e int) {
			for i := s; i < e; i++ {
				sum.Add(int64(i))
			}
		})
		want := int64(n) * int64(n-1) / 2
		if sum.Load() != want {
			t.Fatalf("round %d: region lost indices: sum %d, want %d", round, sum.Load(), want)
		}
	}
	waitPoolSize(t, 2)
}
