package tensor

// Packed, register-blocked GEMM. This file is the macro layer: cache
// blocking, operand packing and the parallel split. The MR×NR
// micro-kernels live in gemm_kernel64.go / gemm_kernel32.go (portable
// Go), gemm_amd64_f64.s / gemm_amd64_f32.s (AVX2+FMA) and
// gemm_amd64_f64_avx512.s / gemm_amd64_f32_avx512.s (AVX-512), selected
// at runtime — see gemm_cpu_amd64.go and the `noasm` build tag.
//
// # Architecture
//
// One GEMM call C (+)= A·B is driven as the classic three-level blocked
// loop nest (the gonum/BLIS structure):
//
//	for jc over n in gemmNC columns:        // bound the packed-B buffer
//	  for pc over k in gemmKC depths:       // cache-sized panel depth
//	    parallel over MR-row panels of A:   // the ForGrain split
//	      for bp over the task's panels in gemmMC blocks:  // L2-sized
//	        pack A[rows, pc:pc+kc]          // → MR-tall row panels
//	        for each NR panel × MR panel:   // macro-kernel
//	          cooperatively pack B panel on first touch
//	          micro-kernel: MR×NR tile over kc
//
// Packing copies each operand block once per (pc, jc) block into a
// pool-backed contiguous buffer whose layout matches exactly the order
// the micro-kernel streams it:
//
//	packed A panel p: MR rows interleaved by k —
//	    apack[p*MR*kc + (kk-pc)*MR + r] = A[p*MR+r, kk]
//	packed B panel q: NR columns interleaved by k —
//	    bpack[q*NR*kc + (kk-pc)*NR + j] = B[kk, jc+q*NR+j]
//
// so the kernel's inner loop reads both operands with unit stride
// regardless of how A and B are stored. Transposed operands (the
// MatMulT1/T2 backward passes) are absorbed here: packing reads through
// an (rs, cs) strided view, so aᵀ·b and a·bᵀ never strided-read inside
// the kernel and never materialise a transpose. Panels at the m/n edges
// are zero-padded to full MR/NR width; on the AVX-512 tier the kernel
// itself masks the ragged C store, on the other tiers the edge tile is
// computed into an on-stack buffer and only the valid region merged.
//
// The k dimension is never split across tasks: block pc accumulates
// into C before block pc+1 starts, so every C element is produced by a
// deterministic addition chain and results do not depend on the
// scheduler's interleaving.
//
// # Parallel split
//
// A single GEMM call fans out across the worker pool on
// parallel.ForGrainRanger in units of MR-row packed panels — the
// natural stealing boundary, since a task packs exactly the A panels it
// owns into its own pool buffer. The grain is sized so one task carries
// at least matMulGrain multiply-adds (cf. mmRowGrain for the legacy
// kernels).
//
// B panels are packed cooperatively inside the same region: each panel
// carries an atomic state (empty → packing → ready) and the first row
// task to need it claims and fills it; later tasks that hit a panel
// mid-pack yield until it is ready. Tasks walk the B panels starting at
// an offset derived from their row range, so concurrent tasks touch
// disjoint panels first and the pack work itself spreads across the
// pool instead of stampeding panel 0. This replaces a separate
// pack-B region + barrier per (jc, pc) block with zero extra
// synchronisation points.
//
// Determinism: a packed B panel's bytes depend only on the operands and
// the block coordinates — never on which task packed it or in what
// order panels were visited — and each C tile is written by exactly one
// micro-kernel call per pc block. Results are therefore bitwise
// identical across GOMAXPROCS values and task split boundaries; the
// strict-engine bitwise pin relies on this.
//
// # Dispatch order (see matMulInto and friends in matmul.go)
//
//  1. markedly sparse left operand → legacy zero-skip row kernels
//     (ReLU activations are ~half zeros; skipping beats packing)
//  2. small products (m·k·n < gemmMinWork) → legacy column-tiled
//     kernels (packing overhead dominates)
//  3. everything else → this file, with the widest micro-kernel the CPU
//     and build allow:
//
//	tier      tile (f64)  tile (f32)  requires
//	avx512    8×8         8×16        avx512 f+vl+dq+bw, XCR0 opmask+ZMM
//	avx2      4×4         4×8         AVX2 + FMA, XCR0 YMM
//	generic   4×4         4×8         nothing (pure Go)
//
// MDGAN_GEMM_KERNEL={generic,avx2,avx512} forces a tier at startup
// (ignored, falling back to the best available, when the CPU or build
// lacks it); ForceGemmKernel does the same at runtime for tests and
// benchmarks. verify.sh re-runs the engine-equivalence gates under
// every available tier this way.
//
// # Adding a new architecture
//
// Implement the micro-kernel contract for the new ISA: given packed
// panels a (MR·kc) and b (NR·kc), compute the full MR×NR tile
// t[r][j] = Σ_kk a[kk*MR+r]·b[kk*NR+j] and either store it to or
// accumulate it into c (row stride ldc). Supply a feature probe in a
// gemm_cpu_<arch>.go, gate both behind `<arch> && !noasm`, extend
// gemm_noasm.go's constraint so every other build keeps the Go kernel,
// and add a tier to the dispatch below. Tile sizes are per-dtype,
// per-tier constants in gemm_dims64.go / gemm_dims32.go; packing adapts
// automatically to the live gemmMR/gemmNR/gemmKC.
//
// The AVX-512 kernels are the worked example of every step:
//
//   - Why MR×NR changed: a ZMM vector holds 8 f64 / 16 f32, so one
//     vector is a full accumulator row and the tile grows to 8×8 f64 /
//     8×16 f32 — 16 accumulator registers out of 32 ZMM, still leaving
//     two B vectors, two broadcast temps and a C temp. The wider tile
//     quadruples the flops per packed element streamed, which is where
//     the ≥1.5× over AVX2 comes from. KC shrinks on the f32 tier
//     (gemm_dims32.go) to keep the packed panels cache-resident.
//   - Interleaved accumulators: like the AVX2 kernels, the k loop is
//     unrolled ×2 with even k feeding Z0–Z7 and odd k feeding Z8–Z15,
//     hiding the 4-cycle FMA latency; the sets are summed once after
//     the loop. A kc tail of 1 runs the even set only.
//   - Mask registers replace the stack-tile edge path: the kernel takes
//     (mr, nr) and builds K1 = (1<<nr)-1 with KMOVW, so ragged C edges
//     load (VMOVUPD.Z zero-masking) and store through the mask while
//     the packed operands stay zero-padded to full width. rowRange
//     therefore calls the AVX-512 kernel directly for edge tiles
//     instead of merging an on-stack tile; rows are handled by simply
//     stopping the store loop at mr.
//   - Probe: detectGemmAVX512 requires CPUID leaf 7 EBX avx512
//     {f,dq,bw,vl} and XCR0 0xE6 (SSE+AVX+opmask+ZMM state saved by the
//     OS) — the same belt-and-braces shape as the AVX2 probe.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mdgan/internal/parallel"
)

// gemmMinWork is the m·k·n product below which the packed path is not
// worth the two operand copies and the legacy column-tiled kernels run
// instead.
const gemmMinWork = 1 << 14

// gemmTierID enumerates the micro-kernel tiers in ascending width.
type gemmTierID int

const (
	tierGeneric gemmTierID = iota
	tierAVX2
	tierAVX512
)

// Live kernel tier and its tile geometry. Mutated only by
// applyGemmTier, which callers (env init, ForceGemmKernel) must not
// invoke concurrently with running GEMMs — the same contract the old
// boolean asm switch had.
var (
	gemmTier = tierGeneric
	gemmMR   = gemmMRBase
	gemmNR   = gemmNRBase
	gemmKC   = gemmKCBase
)

func applyGemmTier(t gemmTierID) {
	gemmTier = t
	if t == tierAVX512 {
		gemmMR, gemmNR, gemmKC = gemmMR512, gemmNR512, gemmKC512
	} else {
		gemmMR, gemmNR, gemmKC = gemmMRBase, gemmNRBase, gemmKCBase
	}
}

// gemmTierAvailable reports whether this build + CPU can run tier t.
func gemmTierAvailable(t gemmTierID) bool {
	switch t {
	case tierAVX2:
		return gemmHasAVX2
	case tierAVX512:
		return gemmHasAVX512
	default:
		return true
	}
}

func bestGemmTier() gemmTierID {
	switch {
	case gemmHasAVX512:
		return tierAVX512
	case gemmHasAVX2:
		return tierAVX2
	default:
		return tierGeneric
	}
}

// ForceGemmKernel selects the micro-kernel tier at runtime: "generic",
// "avx2", "avx512", or ""/"best" for the widest available. It reports
// whether the request was honoured; asking for a tier the CPU or build
// lacks leaves the dispatch unchanged and returns false, so callers
// (tests, verify.sh via MDGAN_GEMM_KERNEL, mdgan-bench's per-kernel
// rows) skip gracefully. Not safe to call concurrently with running
// GEMMs.
func ForceGemmKernel(name string) bool {
	switch name {
	case "", "best":
		applyGemmTier(bestGemmTier())
		return true
	case "generic":
		applyGemmTier(tierGeneric)
		return true
	case "avx2":
		if !gemmTierAvailable(tierAVX2) {
			return false
		}
		applyGemmTier(tierAVX2)
		return true
	case "avx512":
		if !gemmTierAvailable(tierAVX512) {
			return false
		}
		applyGemmTier(tierAVX512)
		return true
	}
	return false
}

// GemmKernel names the micro-kernel the packed GEMM currently
// dispatches to: "avx512", "avx2+fma", or "generic", with "(noasm)"
// marking builds that compiled the assembly out. Benchmarks record it
// so BENCH rows are attributable to a kernel variant.
func GemmKernel() string {
	switch gemmTier {
	case tierAVX512:
		return "avx512"
	case tierAVX2:
		return "avx2+fma"
	}
	if gemmAsmCompiled {
		return "generic"
	}
	return "generic (noasm)"
}

// GemmKernels lists the tier names this build + CPU can run, in the
// order verify.sh's kernel matrix iterates them. Each entry is a valid
// ForceGemmKernel argument.
func GemmKernels() []string {
	ks := []string{"generic"}
	if gemmHasAVX2 {
		ks = append(ks, "avx2")
	}
	if gemmHasAVX512 {
		ks = append(ks, "avx512")
	}
	return ks
}

// GemmLanes is the vector width, in elements of the compiled dtype, of
// the current micro-kernel tier (1 for the scalar generic kernel).
func GemmLanes() int {
	switch gemmTier {
	case tierAVX512:
		return 64 / ElemBytes
	case tierAVX2:
		return 32 / ElemBytes
	default:
		return 1
	}
}

// BPanelPacker fills one packed B panel for MatMulPacked: dst holds
// (k1-k0) rows of exactly nr contiguous elements each — the panel's
// columns [j0, j0+nr) of the virtual B operand, k range [k0, k1), laid
// out dst[(kk-k0)*nr + (j-j0)]. Columns past the operand's edge must be
// zero-filled. Implementations are called concurrently on disjoint dst
// slices and must not retain dst.
type BPanelPacker func(dst []Elem, k0, k1, j0, nr int)

// MatMulPacked computes out = a·B for a (m, k) and a virtual (k, n)
// right operand produced directly in packed-panel form by packB,
// skipping the materialise-then-pack copy (internal/nn fuses the conv
// im2col and conv-transpose fills this way). out must be (m, n).
func MatMulPacked(out, a *Tensor, n int, packB BPanelPacker) {
	m, k := mustRank2(a, "MatMulPacked")
	checkOutShape("MatMulPacked", out, m, n)
	gemm(out.Data, n, m, n, k, a.Data, k, 1, nil, 0, 0, packB, false)
}

// MatMulPackedAdd computes out += a·B with B produced by packB; out
// must be (m, n).
func MatMulPackedAdd(out, a *Tensor, n int, packB BPanelPacker) {
	m, k := mustRank2(a, "MatMulPackedAdd")
	checkOutShape("MatMulPackedAdd", out, m, n)
	gemm(out.Data, n, m, n, k, a.Data, k, 1, nil, 0, 0, packB, true)
}

// MatMulT1Packed computes out = aᵀ·B for a (k, m) and a virtual (k, n)
// right operand produced by packB; out must be (m, n).
func MatMulT1Packed(out, a *Tensor, n int, packB BPanelPacker) {
	k, m := mustRank2(a, "MatMulT1Packed")
	checkOutShape("MatMulT1Packed", out, m, n)
	gemm(out.Data, n, m, n, k, a.Data, 1, m, nil, 0, 0, packB, false)
}

func mustRank2(a *Tensor, op string) (d0, d1 int) {
	if len(a.shape) != 2 {
		panic("tensor: " + op + " requires a rank-2 left operand")
	}
	return a.shape[0], a.shape[1]
}

// packBStrided fills one packed panel of a stored B operand viewed as
// B[kk][j] = b[kk*rs + j*cs] with n logical columns (the default packer
// behind the nine MatMul entry points).
func packBStrided(dst []Elem, b []Elem, rs, cs, n, k0, k1, j0, nr int) {
	jn := n - j0 // valid columns in this panel
	if jn > nr {
		jn = nr
	}
	if cs == 1 {
		// Row-major B: each k row is a contiguous copy.
		for kk := k0; kk < k1; kk++ {
			row := dst[(kk-k0)*nr : (kk-k0)*nr+nr]
			copy(row, b[kk*rs+j0:kk*rs+j0+jn])
			for j := jn; j < nr; j++ {
				row[j] = 0
			}
		}
		return
	}
	if rs == 1 {
		// B is a stored transpose (a·bᵀ): each logical column is a
		// contiguous source run, written with stride nr.
		for j := 0; j < jn; j++ {
			src := b[(j0+j)*cs+k0 : (j0+j)*cs+k1]
			o := j
			for _, v := range src {
				dst[o] = v
				o += nr
			}
		}
	} else {
		for j := 0; j < jn; j++ {
			o := j
			for kk := k0; kk < k1; kk++ {
				dst[o] = b[kk*rs+(j0+j)*cs]
				o += nr
			}
		}
	}
	for j := jn; j < nr; j++ {
		o := j
		for kk := k0; kk < k1; kk++ {
			dst[o] = 0
			o += nr
		}
	}
}

// packAPanels packs A row panels [p0, p1) (units of gemmMR rows, edge
// rows zero-padded past m) over k range [k0, k1) into dst, reading
// A[i][kk] = a[i*rs + kk*cs].
func packAPanels(dst []Elem, a []Elem, rs, cs, m, p0, p1, k0, k1 int) {
	kc := k1 - k0
	mr := gemmMR
	for p := p0; p < p1; p++ {
		i0 := p * mr
		pan := dst[(p-p0)*mr*kc : (p-p0+1)*mr*kc]
		rows := m - i0
		if rows >= mr && cs == 1 && mr == 4 {
			// Full panel of row-major A: interleave the 4 contiguous
			// source rows of the base tile.
			r0 := a[(i0+0)*rs+k0 : (i0+0)*rs+k1]
			r1 := a[(i0+1)*rs+k0 : (i0+1)*rs+k1][:kc]
			r2 := a[(i0+2)*rs+k0 : (i0+2)*rs+k1][:kc]
			r3 := a[(i0+3)*rs+k0 : (i0+3)*rs+k1][:kc]
			o := 0
			for kk, v := range r0 {
				pan[o] = v
				pan[o+1] = r1[kk]
				pan[o+2] = r2[kk]
				pan[o+3] = r3[kk]
				o += 4
			}
			continue
		}
		if rows >= mr && cs == 1 && mr == 8 {
			// Full panel of row-major A at the AVX-512 tile height.
			r0 := a[(i0+0)*rs+k0 : (i0+0)*rs+k1]
			r1 := a[(i0+1)*rs+k0 : (i0+1)*rs+k1][:kc]
			r2 := a[(i0+2)*rs+k0 : (i0+2)*rs+k1][:kc]
			r3 := a[(i0+3)*rs+k0 : (i0+3)*rs+k1][:kc]
			r4 := a[(i0+4)*rs+k0 : (i0+4)*rs+k1][:kc]
			r5 := a[(i0+5)*rs+k0 : (i0+5)*rs+k1][:kc]
			r6 := a[(i0+6)*rs+k0 : (i0+6)*rs+k1][:kc]
			r7 := a[(i0+7)*rs+k0 : (i0+7)*rs+k1][:kc]
			o := 0
			for kk, v := range r0 {
				pan[o] = v
				pan[o+1] = r1[kk]
				pan[o+2] = r2[kk]
				pan[o+3] = r3[kk]
				pan[o+4] = r4[kk]
				pan[o+5] = r5[kk]
				pan[o+6] = r6[kk]
				pan[o+7] = r7[kk]
				o += 8
			}
			continue
		}
		if rows >= mr && rs == 1 {
			// Full panel of a stored transpose (aᵀ·b): the mr panel
			// rows are contiguous in the source at each k.
			for kk := k0; kk < k1; kk++ {
				copy(pan[(kk-k0)*mr:(kk-k0)*mr+mr], a[kk*cs+i0:kk*cs+i0+mr])
			}
			continue
		}
		if rows > mr {
			rows = mr
		}
		for kk := k0; kk < k1; kk++ {
			o := (kk - k0) * mr
			for r := 0; r < rows; r++ {
				pan[o+r] = a[(i0+r)*rs+kk*cs]
			}
			for r := rows; r < mr; r++ {
				pan[o+r] = 0
			}
		}
	}
}

// microKernel computes (or accumulates) one full MR×NR tile from packed
// panels, selecting the widest kernel the dispatch enabled.
func microKernel(c []Elem, ldc int, a, b []Elem, kc int, add bool) {
	switch gemmTier {
	case tierAVX512:
		gemmKernelAsm512(&c[0], ldc, &a[0], &b[0], kc, add, gemmMR, gemmNR)
	case tierAVX2:
		gemmKernelAsm(&c[0], ldc, &a[0], &b[0], kc, add)
	default:
		gemmKernelGo(c, ldc, a, b, kc, add)
	}
}

// B panel pack states for the cooperative first-touch protocol.
const (
	bPanelEmpty uint32 = iota
	bPanelPacking
	bPanelReady
)

// gemmRun is the pooled per-call state of one gemm invocation. The
// parallel row region passes it to ForGrainRanger as a Ranger, so a
// steady-state training iteration's matmuls perform no heap allocation:
// the run state, the pack buffers, the per-task A buffers and the panel
// state array all come from pools.
type gemmRun struct {
	c        []Elem
	ldc      int
	m, n, k  int
	a        []Elem
	ars, acs int
	// Stored B view (packB == nil) or caller-supplied fused packer.
	b        []Elem
	brs, bcs int
	packB    BPanelPacker

	// Per-(jc, pc) block state, set by gemm before each parallel phase.
	jc, nc  int
	pc, kc  int
	bbuf    []Elem
	panVolB int
	nPanB   int
	accum   bool
	// bState[q] tracks the cooperative pack of B panel q: empty →
	// packing → ready. Retained across pool cycles (it holds no operand
	// references) so steady-state runs do not reallocate it.
	bState []atomic.Uint32
}

var gemmRunPool = sync.Pool{New: func() any { return new(gemmRun) }}

// panel returns packed B panel q of the current block, packing it first
// if this task is the first to touch it. Tasks that lose the claim race
// yield until the winner finishes — the pack is bounded work already
// running on another goroutine, so this cannot deadlock.
func (g *gemmRun) panel(q int) []Elem {
	st := &g.bState[q]
	if st.Load() != bPanelReady {
		g.fillPanel(q, st)
	}
	return g.bbuf[q*g.panVolB : (q+1)*g.panVolB]
}

func (g *gemmRun) fillPanel(q int, st *atomic.Uint32) {
	if st.CompareAndSwap(bPanelEmpty, bPanelPacking) {
		dst := g.bbuf[q*g.panVolB : (q+1)*g.panVolB]
		if g.packB != nil {
			g.packB(dst, g.pc, g.pc+g.kc, g.jc+q*gemmNR, gemmNR)
		} else {
			packBStrided(dst, g.b, g.brs, g.bcs, g.n, g.pc, g.pc+g.kc, g.jc+q*gemmNR, gemmNR)
		}
		// Release: the atomic store publishes the packed bytes to every
		// task that observes bPanelReady.
		st.Store(bPanelReady)
		return
	}
	for st.Load() != bPanelReady {
		runtime.Gosched()
	}
}

// Range implements parallel.Ranger over A row panels [ps, pe) of the
// current block: pack an MC-bounded group of panels, then stream the
// packed B panels through the micro-kernel. Tasks start their B-panel
// walk at an offset derived from ps so concurrent tasks first-touch
// disjoint panels; the C tiles a task writes are its own regardless of
// panel order, so the rotation cannot change results.
func (g *gemmRun) Range(ps, pe int) {
	kc := g.kc
	mr, nrFull := gemmMR, gemmNR
	mcPan := gemmMC / mr
	span := pe - ps
	if span > mcPan {
		span = mcPan
	}
	abufT := Get(span * mr * kc)
	abuf := abufT.Data
	var tile [gemmMRMax * gemmNRMax]Elem
	qoff := ps % g.nPanB
	for bp := ps; bp < pe; bp += mcPan {
		bpe := bp + mcPan
		if bpe > pe {
			bpe = pe
		}
		packAPanels(abuf, g.a, g.ars, g.acs, g.m, bp, bpe, g.pc, g.pc+kc)
		for qi := 0; qi < g.nPanB; qi++ {
			q := qi + qoff
			if q >= g.nPanB {
				q -= g.nPanB
			}
			j0 := g.jc + q*nrFull
			nr := g.n - j0
			if nr > nrFull {
				nr = nrFull
			}
			bpan := g.panel(q)
			for ip := bp; ip < bpe; ip++ {
				i0 := ip * mr
				rows := g.m - i0
				if rows > mr {
					rows = mr
				}
				apan := abuf[(ip-bp)*mr*kc : (ip-bp+1)*mr*kc]
				if gemmTier == tierAVX512 {
					// The AVX-512 kernel masks ragged edges natively.
					gemmKernelAsm512(&g.c[i0*g.ldc+j0], g.ldc, &apan[0], &bpan[0], kc, g.accum, rows, nr)
					continue
				}
				if rows == mr && nr == nrFull {
					microKernel(g.c[i0*g.ldc+j0:], g.ldc, apan, bpan, kc, g.accum)
					continue
				}
				// Edge tile: full-size kernel into the stack tile
				// (packing zero-padded the operands), then merge the
				// valid region.
				microKernel(tile[:mr*nrFull], nrFull, apan, bpan, kc, false)
				for r := 0; r < rows; r++ {
					crow := g.c[(i0+r)*g.ldc+j0 : (i0+r)*g.ldc+j0+nr]
					trow := tile[r*nrFull : r*nrFull+nr]
					if g.accum {
						for j, v := range trow {
							crow[j] += v
						}
					} else {
						copy(crow, trow)
					}
				}
			}
		}
	}
	Put(abufT)
}

// gemm computes C (+)= A·B over strided views: C is row-major (ldc),
// A[i][kk] = a[i*ars + kk*acs], and B is either the stored operand
// B[kk][j] = b[kk*brs + j*bcs] (packB nil) or delivered panel-by-panel
// by packB.
func gemm(c []Elem, ldc, m, n, k int, a []Elem, ars, acs int, b []Elem, brs, bcs int, packB BPanelPacker, add bool) {
	g := gemmRunPool.Get().(*gemmRun)
	g.c, g.ldc, g.m, g.n, g.k = c, ldc, m, n, k
	g.a, g.ars, g.acs = a, ars, acs
	g.b, g.brs, g.bcs = b, brs, bcs
	g.packB = packB

	nPanA := (m + gemmMR - 1) / gemmMR
	bbufCols := n
	if bbufCols > gemmNC {
		bbufCols = gemmNC
	}
	bPanMax := (bbufCols + gemmNR - 1) / gemmNR
	kcMax := k
	if kcMax > gemmKC {
		kcMax = gemmKC
	}
	bbufT := Get(bPanMax * gemmNR * kcMax)
	g.bbuf = bbufT.Data
	if cap(g.bState) < bPanMax {
		g.bState = make([]atomic.Uint32, bPanMax)
	}
	g.bState = g.bState[:bPanMax]

	for jc := 0; jc < n; jc += gemmNC {
		nc := n - jc
		if nc > gemmNC {
			nc = gemmNC
		}
		g.jc, g.nc = jc, nc
		g.nPanB = (nc + gemmNR - 1) / gemmNR
		for pc := 0; pc < k; pc += gemmKC {
			kc := k - pc
			if kc > gemmKC {
				kc = gemmKC
			}
			g.pc, g.kc = pc, kc
			g.panVolB = kc * gemmNR
			// No task from the previous block can still be running here
			// (ForGrainRanger returns only when the region completes),
			// so the plain reset cannot race with panel claims.
			for q := 0; q < g.nPanB; q++ {
				g.bState[q].Store(bPanelEmpty)
			}
			g.accum = add || pc > 0
			// Row split: units of MR panels, at least matMulGrain
			// multiply-adds per task. B panels are packed cooperatively
			// by the same tasks on first touch.
			grain := matMulGrain / (gemmMR * kc * nc)
			if grain < 1 {
				grain = 1
			}
			parallel.ForGrainRanger(nPanA, grain, g)
		}
	}
	Put(bbufT)
	// Drop operand references before pooling; bState is retained so the
	// steady state does not reallocate it.
	g.c, g.a, g.b, g.bbuf, g.packB = nil, nil, nil, nil, nil
	gemmRunPool.Put(g)
}
