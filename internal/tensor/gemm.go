package tensor

// Packed, register-blocked GEMM. This file is the macro layer: cache
// blocking, operand packing and the parallel split. The MR×NR
// micro-kernels live in gemm_kernel64.go / gemm_kernel32.go (portable
// Go) and gemm_amd64_*.s (AVX2+FMA, selected at runtime — see
// gemm_cpu_amd64.go and the `noasm` build tag).
//
// # Architecture
//
// One GEMM call C (+)= A·B is driven as the classic three-level blocked
// loop nest (the gonum/BLIS structure):
//
//	for jc over n in gemmNC columns:        // bound the packed-B buffer
//	  for pc over k in gemmKC depths:       // L1-sized panel depth
//	    pack B[pc:pc+kc, jc:jc+nc]          // → NR-wide column panels
//	    parallel over MR-row panels of A:   // the ForGrain split
//	      for bp over the task's panels in gemmMC blocks:  // L2-sized
//	        pack A[rows, pc:pc+kc]          // → MR-tall row panels
//	        for each NR panel × MR panel:   // macro-kernel
//	          micro-kernel: MR×NR tile over kc
//
// Packing copies each operand block once per (pc, jc) block into a
// pool-backed contiguous buffer whose layout matches exactly the order
// the micro-kernel streams it:
//
//	packed A panel p: MR rows interleaved by k —
//	    apack[p*MR*kc + (kk-pc)*MR + r] = A[p*MR+r, kk]
//	packed B panel q: NR columns interleaved by k —
//	    bpack[q*NR*kc + (kk-pc)*NR + j] = B[kk, jc+q*NR+j]
//
// so the kernel's inner loop reads both operands with unit stride
// regardless of how A and B are stored. Transposed operands (the
// MatMulT1/T2 backward passes) are absorbed here: packing reads through
// an (rs, cs) strided view, so aᵀ·b and a·bᵀ never strided-read inside
// the kernel and never materialise a transpose. Panels at the m/n edges
// are zero-padded to full MR/NR width; their micro-kernel output lands
// in an on-stack tile and only the valid region is merged into C.
//
// The k dimension is never split across tasks: block pc accumulates
// into C before block pc+1 starts, so every C element is produced by a
// deterministic addition chain and results do not depend on the
// scheduler's interleaving.
//
// # Parallel split
//
// The row loop fans out on parallel.ForGrain in units of MR-row
// packed panels — the natural stealing boundary, since a task packs
// exactly the panels it owns into its own pool buffer. The grain is
// sized so one task carries at least matMulGrain multiply-adds (cf.
// mmRowGrain for the legacy kernels). B packing fans out the same way
// over NR-column panels.
//
// # Dispatch order (see matMulInto and friends in matmul.go)
//
//  1. markedly sparse left operand → legacy zero-skip row kernels
//     (ReLU activations are ~half zeros; skipping beats packing)
//  2. small products (m·k·n < gemmMinWork) → legacy column-tiled
//     kernels (packing overhead dominates)
//  3. everything else → this file, with the AVX2+FMA micro-kernel when
//     the CPU has it and the build allows it, the portable Go
//     micro-kernel otherwise
//
// # Adding a new architecture
//
// Implement the micro-kernel contract (gemmKernelAsm in the *_amd64.s
// files) for the new ISA: given packed panels a (MR·kc) and b (NR·kc),
// compute the full MR×NR tile t[r][j] = Σ_kk a[kk*MR+r]·b[kk*NR+j] and
// either store it to or accumulate it into c (row stride ldc). Supply a
// feature probe in a gemm_cpu_<arch>.go, gate both behind
// `<arch> && !noasm`, and extend gemm_noasm.go's constraint so every
// other build keeps the Go kernel. Tile sizes are per-dtype constants
// in gemm_dims64.go / gemm_dims32.go; packing adapts automatically.

import (
	"sync"

	"mdgan/internal/parallel"
)

// gemmMinWork is the m·k·n product below which the packed path is not
// worth the two operand copies and the legacy column-tiled kernels run
// instead.
const gemmMinWork = 1 << 14

// GemmKernel names the micro-kernel the packed GEMM dispatches to:
// "avx2+fma" when the runtime CPU probe enabled the assembly kernel,
// "generic" for the portable Go kernel, with "(noasm)" marking builds
// that compiled the assembly out. Benchmarks record it so BENCH rows
// are attributable to a kernel variant.
func GemmKernel() string {
	switch {
	case gemmUseAsm:
		return "avx2+fma"
	case gemmAsmCompiled:
		return "generic"
	default:
		return "generic (noasm)"
	}
}

// setGemmAsm flips the micro-kernel dispatch at runtime so tests can
// cover both kernels in one binary; it reports whether the assembly
// kernel is actually available (compiled in and CPU-supported). Enabling
// it on a build or CPU without the kernel is ignored.
func setGemmAsm(on bool) bool {
	if on && (!gemmAsmCompiled || !detectAsmAvailable()) {
		return false
	}
	gemmUseAsm = on
	return on || detectAsmAvailable()
}

// BPanelPacker fills one packed B panel for MatMulPacked: dst holds
// (k1-k0) rows of exactly nr contiguous elements each — the panel's
// columns [j0, j0+nr) of the virtual B operand, k range [k0, k1), laid
// out dst[(kk-k0)*nr + (j-j0)]. Columns past the operand's edge must be
// zero-filled. Implementations are called concurrently on disjoint dst
// slices and must not retain dst.
type BPanelPacker func(dst []Elem, k0, k1, j0, nr int)

// MatMulPacked computes out = a·B for a (m, k) and a virtual (k, n)
// right operand produced directly in packed-panel form by packB,
// skipping the materialise-then-pack copy (internal/nn fuses the conv
// im2col fill this way). out must be (m, n).
func MatMulPacked(out, a *Tensor, n int, packB BPanelPacker) {
	m, k := mustRank2(a, "MatMulPacked")
	checkOutShape("MatMulPacked", out, m, n)
	gemm(out.Data, n, m, n, k, a.Data, k, 1, nil, 0, 0, packB, false)
}

// MatMulPackedAdd computes out += a·B with B produced by packB; out
// must be (m, n).
func MatMulPackedAdd(out, a *Tensor, n int, packB BPanelPacker) {
	m, k := mustRank2(a, "MatMulPackedAdd")
	checkOutShape("MatMulPackedAdd", out, m, n)
	gemm(out.Data, n, m, n, k, a.Data, k, 1, nil, 0, 0, packB, true)
}

// MatMulT1Packed computes out = aᵀ·B for a (k, m) and a virtual (k, n)
// right operand produced by packB; out must be (m, n).
func MatMulT1Packed(out, a *Tensor, n int, packB BPanelPacker) {
	k, m := mustRank2(a, "MatMulT1Packed")
	checkOutShape("MatMulT1Packed", out, m, n)
	gemm(out.Data, n, m, n, k, a.Data, 1, m, nil, 0, 0, packB, false)
}

func mustRank2(a *Tensor, op string) (d0, d1 int) {
	if len(a.shape) != 2 {
		panic("tensor: " + op + " requires a rank-2 left operand")
	}
	return a.shape[0], a.shape[1]
}

// packBStrided fills one packed panel of a stored B operand viewed as
// B[kk][j] = b[kk*rs + j*cs] with n logical columns (the default packer
// behind the nine MatMul entry points).
func packBStrided(dst []Elem, b []Elem, rs, cs, n, k0, k1, j0, nr int) {
	jn := n - j0 // valid columns in this panel
	if jn > nr {
		jn = nr
	}
	if cs == 1 {
		// Row-major B: each k row is a contiguous copy.
		for kk := k0; kk < k1; kk++ {
			row := dst[(kk-k0)*nr : (kk-k0)*nr+nr]
			copy(row, b[kk*rs+j0:kk*rs+j0+jn])
			for j := jn; j < nr; j++ {
				row[j] = 0
			}
		}
		return
	}
	if rs == 1 {
		// B is a stored transpose (a·bᵀ): each logical column is a
		// contiguous source run, written with stride nr.
		for j := 0; j < jn; j++ {
			src := b[(j0+j)*cs+k0 : (j0+j)*cs+k1]
			o := j
			for _, v := range src {
				dst[o] = v
				o += nr
			}
		}
	} else {
		for j := 0; j < jn; j++ {
			o := j
			for kk := k0; kk < k1; kk++ {
				dst[o] = b[kk*rs+(j0+j)*cs]
				o += nr
			}
		}
	}
	for j := jn; j < nr; j++ {
		o := j
		for kk := k0; kk < k1; kk++ {
			dst[o] = 0
			o += nr
		}
	}
}

// packAPanels packs A row panels [p0, p1) (units of gemmMR rows, edge
// rows zero-padded past m) over k range [k0, k1) into dst, reading
// A[i][kk] = a[i*rs + kk*cs].
func packAPanels(dst []Elem, a []Elem, rs, cs, m, p0, p1, k0, k1 int) {
	kc := k1 - k0
	for p := p0; p < p1; p++ {
		i0 := p * gemmMR
		pan := dst[(p-p0)*gemmMR*kc : (p-p0+1)*gemmMR*kc]
		rows := m - i0
		if rows >= gemmMR && cs == 1 {
			// Full panel of row-major A: interleave gemmMR (= 4 at both
			// dtypes) contiguous source rows.
			r0 := a[(i0+0)*rs+k0 : (i0+0)*rs+k1]
			r1 := a[(i0+1)*rs+k0 : (i0+1)*rs+k1][:kc]
			r2 := a[(i0+2)*rs+k0 : (i0+2)*rs+k1][:kc]
			r3 := a[(i0+3)*rs+k0 : (i0+3)*rs+k1][:kc]
			o := 0
			for kk, v := range r0 {
				pan[o] = v
				pan[o+1] = r1[kk]
				pan[o+2] = r2[kk]
				pan[o+3] = r3[kk]
				o += 4
			}
			continue
		}
		if rows >= gemmMR && rs == 1 {
			// Full panel of a stored transpose (aᵀ·b): the gemmMR panel
			// rows are contiguous in the source at each k.
			for kk := k0; kk < k1; kk++ {
				copy(pan[(kk-k0)*gemmMR:(kk-k0)*gemmMR+gemmMR], a[kk*cs+i0:kk*cs+i0+gemmMR])
			}
			continue
		}
		if rows > gemmMR {
			rows = gemmMR
		}
		for kk := k0; kk < k1; kk++ {
			o := (kk - k0) * gemmMR
			for r := 0; r < rows; r++ {
				pan[o+r] = a[(i0+r)*rs+kk*cs]
			}
			for r := rows; r < gemmMR; r++ {
				pan[o+r] = 0
			}
		}
	}
}

// microKernel computes (or accumulates) one MR×NR tile from packed
// panels, selecting the assembly kernel when the CPU dispatch enabled
// it.
func microKernel(c []Elem, ldc int, a, b []Elem, kc int, add bool) {
	if gemmUseAsm {
		gemmKernelAsm(&c[0], ldc, &a[0], &b[0], kc, add)
		return
	}
	gemmKernelGo(c, ldc, a, b, kc, add)
}

// gemmRun is the pooled per-call state of one gemm invocation. The
// parallel phases pass it to ForGrainRanger as a Ranger, so a
// steady-state training iteration's matmuls perform no heap allocation:
// the run state, the pack buffers and the per-task A buffers all come
// from pools.
type gemmRun struct {
	c        []Elem
	ldc      int
	m, n, k  int
	a        []Elem
	ars, acs int
	// Stored B view (packB == nil) or caller-supplied fused packer.
	b        []Elem
	brs, bcs int
	packB    BPanelPacker

	// Per-(jc, pc) block state, set by gemm before each parallel phase.
	jc, nc  int
	pc, kc  int
	bbuf    []Elem
	panVolB int
	nPanB   int
	accum   bool
	phase   int
}

const (
	gemmPhasePackB = iota
	gemmPhaseRows
)

var gemmRunPool = sync.Pool{New: func() any { return new(gemmRun) }}

// Range implements parallel.Ranger, dispatching on the current phase.
func (g *gemmRun) Range(lo, hi int) {
	if g.phase == gemmPhasePackB {
		g.packBRange(lo, hi)
		return
	}
	g.rowRange(lo, hi)
}

// packBRange packs B panels [lo, hi) of the current block.
func (g *gemmRun) packBRange(lo, hi int) {
	for q := lo; q < hi; q++ {
		dst := g.bbuf[q*g.panVolB : (q+1)*g.panVolB]
		if g.packB != nil {
			g.packB(dst, g.pc, g.pc+g.kc, g.jc+q*gemmNR, gemmNR)
		} else {
			packBStrided(dst, g.b, g.brs, g.bcs, g.n, g.pc, g.pc+g.kc, g.jc+q*gemmNR, gemmNR)
		}
	}
}

// rowRange runs the macro-kernel over A row panels [ps, pe) of the
// current block: pack an MC-bounded group of panels, then stream the
// packed B panels through the micro-kernel.
func (g *gemmRun) rowRange(ps, pe int) {
	kc := g.kc
	mcPan := gemmMC / gemmMR
	span := pe - ps
	if span > mcPan {
		span = mcPan
	}
	abufT := Get(span * gemmMR * kc)
	abuf := abufT.Data
	var tile [gemmMR * gemmNR]Elem
	for bp := ps; bp < pe; bp += mcPan {
		bpe := bp + mcPan
		if bpe > pe {
			bpe = pe
		}
		packAPanels(abuf, g.a, g.ars, g.acs, g.m, bp, bpe, g.pc, g.pc+kc)
		for q := 0; q < g.nPanB; q++ {
			j0 := g.jc + q*gemmNR
			nr := g.n - j0
			if nr > gemmNR {
				nr = gemmNR
			}
			bpan := g.bbuf[q*g.panVolB : (q+1)*g.panVolB]
			for ip := bp; ip < bpe; ip++ {
				i0 := ip * gemmMR
				mr := g.m - i0
				if mr > gemmMR {
					mr = gemmMR
				}
				apan := abuf[(ip-bp)*gemmMR*kc : (ip-bp+1)*gemmMR*kc]
				if mr == gemmMR && nr == gemmNR {
					microKernel(g.c[i0*g.ldc+j0:], g.ldc, apan, bpan, kc, g.accum)
					continue
				}
				// Edge tile: full-size kernel into the stack tile
				// (packing zero-padded the operands), then merge the
				// valid region.
				microKernel(tile[:], gemmNR, apan, bpan, kc, false)
				for r := 0; r < mr; r++ {
					crow := g.c[(i0+r)*g.ldc+j0 : (i0+r)*g.ldc+j0+nr]
					trow := tile[r*gemmNR : r*gemmNR+nr]
					if g.accum {
						for j, v := range trow {
							crow[j] += v
						}
					} else {
						copy(crow, trow)
					}
				}
			}
		}
	}
	Put(abufT)
}

// gemm computes C (+)= A·B over strided views: C is row-major (ldc),
// A[i][kk] = a[i*ars + kk*acs], and B is either the stored operand
// B[kk][j] = b[kk*brs + j*bcs] (packB nil) or delivered panel-by-panel
// by packB.
func gemm(c []Elem, ldc, m, n, k int, a []Elem, ars, acs int, b []Elem, brs, bcs int, packB BPanelPacker, add bool) {
	g := gemmRunPool.Get().(*gemmRun)
	g.c, g.ldc, g.m, g.n, g.k = c, ldc, m, n, k
	g.a, g.ars, g.acs = a, ars, acs
	g.b, g.brs, g.bcs = b, brs, bcs
	g.packB = packB

	nPanA := (m + gemmMR - 1) / gemmMR
	bbufCols := n
	if bbufCols > gemmNC {
		bbufCols = gemmNC
	}
	bPanMax := (bbufCols + gemmNR - 1) / gemmNR
	kcMax := k
	if kcMax > gemmKC {
		kcMax = gemmKC
	}
	bbufT := Get(bPanMax * gemmNR * kcMax)
	g.bbuf = bbufT.Data

	for jc := 0; jc < n; jc += gemmNC {
		nc := n - jc
		if nc > gemmNC {
			nc = gemmNC
		}
		g.jc, g.nc = jc, nc
		g.nPanB = (nc + gemmNR - 1) / gemmNR
		for pc := 0; pc < k; pc += gemmKC {
			kc := k - pc
			if kc > gemmKC {
				kc = gemmKC
			}
			g.pc, g.kc = pc, kc
			g.panVolB = kc * gemmNR
			// Pack this (kc × nc) B block into NR panels, split on panel
			// boundaries so the fill (possibly a fused im2col) fans out.
			bGrain := gemmPackGrain / g.panVolB
			if bGrain < 1 {
				bGrain = 1
			}
			g.phase = gemmPhasePackB
			parallel.ForGrainRanger(g.nPanB, bGrain, g)
			g.accum = add || pc > 0
			// Row split: units of MR panels, at least matMulGrain
			// multiply-adds per task.
			grain := matMulGrain / (gemmMR * kc * nc)
			if grain < 1 {
				grain = 1
			}
			g.phase = gemmPhaseRows
			parallel.ForGrainRanger(nPanA, grain, g)
		}
	}
	Put(bbufT)
	*g = gemmRun{} // drop operand references before pooling
	gemmRunPool.Put(g)
}

// gemmPackGrain is the element count one B-packing task should fill —
// packing is a copy, so tasks are sized like the element-wise ops.
const gemmPackGrain = 1 << 14
