//go:build f32

package tensor

// Micro-kernel tile and cache-block sizes for the float32 build. See
// gemm.go for the layer architecture and the meaning of each constant.
// MR/NR/KC are per-tier: the AVX-512 kernel runs a wider tile than the
// AVX2 and portable kernels, so the live values are the gemmMR/gemmNR/
// gemmKC variables in gemm.go, switched by applyGemmTier.
const (
	// Base tile (portable Go and AVX2+FMA kernels): 4 rows of 8 float32
	// lanes, so the AVX2 kernel moves a full 8-lane YMM vector per FMA
	// (the "8×4 float32" kernel — one 8-wide B row broadcast-multiplied
	// into four row accumulators). The pure-Go kernel computes the same
	// tile as two 4×4 register-resident passes over the column halves.
	gemmMRBase = 4
	gemmNRBase = 8
	// gemmKCBase: the k extent of one packed block; float32 elements are
	// half-width, so the panels stay L1-resident at twice the f64 depth.
	gemmKCBase = 512

	// AVX-512 tile: 8 rows × 16 f32 lanes — one full ZMM vector per row
	// accumulator, two interleaved accumulator sets (16 ZMM registers)
	// hiding the FMA latency. 128 FMAs per (8+16)-element panel read
	// versus 32 per (4+8) at the base tile.
	gemmMR512 = 8
	gemmNR512 = 16
	// The 16-lane B panel is twice as wide, so kc halves to keep the
	// packed working set (8 KiB A + 16 KiB B) at the base tile's cache
	// footprint.
	gemmKC512 = 256

	// Upper bounds across tiers, for stack tiles and buffer sizing.
	gemmMRMax = 8
	gemmNRMax = 16

	// gemmMC: the row extent of one packed A block (L2-sized), and the
	// unit the parallel row split sub-blocks on.
	gemmMC = 256
	// gemmNC: the column extent of one packed B block; bounds the packed
	// B buffer at kc × gemmNC elements.
	gemmNC = 4096
)
