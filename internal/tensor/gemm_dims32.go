//go:build f32

package tensor

// Micro-kernel tile and cache-block sizes for the float32 build. See
// gemm.go for the layer architecture and the meaning of each constant.
const (
	// gemmMR × gemmNR is the micro-kernel tile: 4 rows of 8 float32
	// lanes, so the AVX2 kernel moves a full 8-lane YMM vector per FMA
	// (the "8×4 float32" kernel — one 8-wide B row broadcast-multiplied
	// into four row accumulators). The pure-Go kernel computes the same
	// tile as two 4×4 register-resident passes over the column halves.
	gemmMR = 4
	gemmNR = 8
	// gemmKC: the k extent of one packed block; float32 elements are
	// half-width, so the panels stay L1-resident at twice the f64 depth.
	gemmKC = 512
	// gemmMC: the row extent of one packed A block (L2-sized), and the
	// unit the parallel row split sub-blocks on.
	gemmMC = 256
	// gemmNC: the column extent of one packed B block; bounds the packed
	// B buffer at gemmKC × gemmNC elements.
	gemmNC = 4096
)
