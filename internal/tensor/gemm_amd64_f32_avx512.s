//go:build amd64 && !noasm && f32

#include "textflag.h"

// func gemmKernelAsm512(c *float32, ldc int, a, b *float32, kc int, add bool, mr, nr int)
//
// 8×16 float32 AVX-512 micro-kernel. The packed A panel holds 8 row
// elements per k (32 B), the packed B panel 16 column elements per k
// (one full ZMM, 64 B). Eight ZMM accumulators hold the output rows;
// the k loop is unrolled by two with a second accumulator set (Z8–Z15)
// so sixteen independent FMA chains cover the FMA latency. Per k: one
// 16-lane B load, eight broadcasts of A, eight FMAs.
//
// Ragged edges are handled in-kernel: K1 = (1<<nr)-1 masks every C
// load/store to the valid columns (packing zero-padded the operands),
// and the store walk stops after mr rows.
TEXT ·gemmKernelAsm512(SB), NOSPLIT, $0-64
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), R8
	SHLQ $2, R8            // row stride in bytes
	MOVQ a+16(FP), SI
	MOVQ b+24(FP), BX
	MOVQ kc+32(FP), CX

	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7
	VPXORQ Z8, Z8, Z8
	VPXORQ Z9, Z9, Z9
	VPXORQ Z10, Z10, Z10
	VPXORQ Z11, Z11, Z11
	VPXORQ Z12, Z12, Z12
	VPXORQ Z13, Z13, Z13
	VPXORQ Z14, Z14, Z14
	VPXORQ Z15, Z15, Z15

	MOVQ CX, DX
	SHRQ $1, DX
	JZ   tail

loop2:
	VMOVUPS      (BX), Z16
	VMOVUPS      64(BX), Z17
	VBROADCASTSS (SI), Z18
	VFMADD231PS  Z16, Z18, Z0
	VBROADCASTSS 4(SI), Z19
	VFMADD231PS  Z16, Z19, Z1
	VBROADCASTSS 8(SI), Z18
	VFMADD231PS  Z16, Z18, Z2
	VBROADCASTSS 12(SI), Z19
	VFMADD231PS  Z16, Z19, Z3
	VBROADCASTSS 16(SI), Z18
	VFMADD231PS  Z16, Z18, Z4
	VBROADCASTSS 20(SI), Z19
	VFMADD231PS  Z16, Z19, Z5
	VBROADCASTSS 24(SI), Z18
	VFMADD231PS  Z16, Z18, Z6
	VBROADCASTSS 28(SI), Z19
	VFMADD231PS  Z16, Z19, Z7
	VBROADCASTSS 32(SI), Z18
	VFMADD231PS  Z17, Z18, Z8
	VBROADCASTSS 36(SI), Z19
	VFMADD231PS  Z17, Z19, Z9
	VBROADCASTSS 40(SI), Z18
	VFMADD231PS  Z17, Z18, Z10
	VBROADCASTSS 44(SI), Z19
	VFMADD231PS  Z17, Z19, Z11
	VBROADCASTSS 48(SI), Z18
	VFMADD231PS  Z17, Z18, Z12
	VBROADCASTSS 52(SI), Z19
	VFMADD231PS  Z17, Z19, Z13
	VBROADCASTSS 56(SI), Z18
	VFMADD231PS  Z17, Z18, Z14
	VBROADCASTSS 60(SI), Z19
	VFMADD231PS  Z17, Z19, Z15
	ADDQ $64, SI
	ADDQ $128, BX
	DECQ DX
	JNZ  loop2

tail:
	TESTQ $1, CX
	JZ    reduce
	VMOVUPS      (BX), Z16
	VBROADCASTSS (SI), Z18
	VFMADD231PS  Z16, Z18, Z0
	VBROADCASTSS 4(SI), Z19
	VFMADD231PS  Z16, Z19, Z1
	VBROADCASTSS 8(SI), Z18
	VFMADD231PS  Z16, Z18, Z2
	VBROADCASTSS 12(SI), Z19
	VFMADD231PS  Z16, Z19, Z3
	VBROADCASTSS 16(SI), Z18
	VFMADD231PS  Z16, Z18, Z4
	VBROADCASTSS 20(SI), Z19
	VFMADD231PS  Z16, Z19, Z5
	VBROADCASTSS 24(SI), Z18
	VFMADD231PS  Z16, Z18, Z6
	VBROADCASTSS 28(SI), Z19
	VFMADD231PS  Z16, Z19, Z7

reduce:
	VADDPS Z8, Z0, Z0
	VADDPS Z9, Z1, Z1
	VADDPS Z10, Z2, Z2
	VADDPS Z11, Z3, Z3
	VADDPS Z12, Z4, Z4
	VADDPS Z13, Z5, Z5
	VADDPS Z14, Z6, Z6
	VADDPS Z15, Z7, Z7

	// K1 = (1<<nr)-1: the valid output columns (nr ≤ 16).
	MOVQ  nr+56(FP), CX
	MOVL  $1, AX
	SHLL  CX, AX
	DECL  AX
	KMOVW AX, K1

	MOVQ    mr+48(FP), R9
	MOVBLZX add+40(FP), AX
	TESTB   AL, AL
	JZ      store

	VMOVUPS.Z (DI), K1, Z20
	VADDPS    Z20, Z0, Z0
	VMOVUPS   Z0, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPS.Z (DI), K1, Z20
	VADDPS    Z20, Z1, Z1
	VMOVUPS   Z1, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPS.Z (DI), K1, Z20
	VADDPS    Z20, Z2, Z2
	VMOVUPS   Z2, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPS.Z (DI), K1, Z20
	VADDPS    Z20, Z3, Z3
	VMOVUPS   Z3, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPS.Z (DI), K1, Z20
	VADDPS    Z20, Z4, Z4
	VMOVUPS   Z4, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPS.Z (DI), K1, Z20
	VADDPS    Z20, Z5, Z5
	VMOVUPS   Z5, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPS.Z (DI), K1, Z20
	VADDPS    Z20, Z6, Z6
	VMOVUPS   Z6, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPS.Z (DI), K1, Z20
	VADDPS    Z20, Z7, Z7
	VMOVUPS   Z7, K1, (DI)
	JMP       done

store:
	VMOVUPS Z0, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPS Z1, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPS Z2, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPS Z3, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPS Z4, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPS Z5, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPS Z6, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPS Z7, K1, (DI)

done:
	VZEROUPPER
	RET
