//go:build amd64 && !noasm && f32

#include "textflag.h"

// func gemmKernelAsm(c *float32, ldc int, a, b *float32, kc int, add bool)
//
// 8-lane × 4-row float32 micro-kernel (gemmMR=4, gemmNR=8). The packed
// A panel holds 4 row elements per k (16 B), the packed B panel 8
// column elements per k (32 B = one full YMM). Four YMM accumulators
// hold the 8-wide output rows; the k loop is unrolled by two with a
// second accumulator set (Y8–Y11) so eight independent FMA chains cover
// the FMA latency. Per k: one 8-lane B load, four broadcasts of A, four
// FMAs — 8 lanes per AVX op.
TEXT ·gemmKernelAsm(SB), NOSPLIT, $0-41
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), R8
	SHLQ $2, R8            // row stride in bytes
	MOVQ a+16(FP), SI
	MOVQ b+24(FP), BX
	MOVQ kc+32(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11

	MOVQ CX, DX
	SHRQ $1, DX
	JZ   tail

loop2:
	VMOVUPS      (BX), Y4
	VBROADCASTSS (SI), Y5
	VFMADD231PS  Y4, Y5, Y0
	VBROADCASTSS 4(SI), Y5
	VFMADD231PS  Y4, Y5, Y1
	VBROADCASTSS 8(SI), Y5
	VFMADD231PS  Y4, Y5, Y2
	VBROADCASTSS 12(SI), Y5
	VFMADD231PS  Y4, Y5, Y3
	VMOVUPS      32(BX), Y6
	VBROADCASTSS 16(SI), Y7
	VFMADD231PS  Y6, Y7, Y8
	VBROADCASTSS 20(SI), Y7
	VFMADD231PS  Y6, Y7, Y9
	VBROADCASTSS 24(SI), Y7
	VFMADD231PS  Y6, Y7, Y10
	VBROADCASTSS 28(SI), Y7
	VFMADD231PS  Y6, Y7, Y11
	ADDQ $32, SI
	ADDQ $64, BX
	DECQ DX
	JNZ  loop2

tail:
	TESTQ $1, CX
	JZ    reduce
	VMOVUPS      (BX), Y4
	VBROADCASTSS (SI), Y5
	VFMADD231PS  Y4, Y5, Y0
	VBROADCASTSS 4(SI), Y5
	VFMADD231PS  Y4, Y5, Y1
	VBROADCASTSS 8(SI), Y5
	VFMADD231PS  Y4, Y5, Y2
	VBROADCASTSS 12(SI), Y5
	VFMADD231PS  Y4, Y5, Y3

reduce:
	VADDPS Y8, Y0, Y0
	VADDPS Y9, Y1, Y1
	VADDPS Y10, Y2, Y2
	VADDPS Y11, Y3, Y3

	MOVBLZX add+40(FP), AX
	TESTB   AL, AL
	JZ      store

	VADDPS  (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    R8, DI
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    R8, DI
	VADDPS  (DI), Y2, Y2
	VMOVUPS Y2, (DI)
	ADDQ    R8, DI
	VADDPS  (DI), Y3, Y3
	VMOVUPS Y3, (DI)
	VZEROUPPER
	RET

store:
	VMOVUPS Y0, (DI)
	ADDQ    R8, DI
	VMOVUPS Y1, (DI)
	ADDQ    R8, DI
	VMOVUPS Y2, (DI)
	ADDQ    R8, DI
	VMOVUPS Y3, (DI)
	VZEROUPPER
	RET
