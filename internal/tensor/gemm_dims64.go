//go:build !f32

package tensor

// Micro-kernel tile and cache-block sizes for the float64 build. See
// gemm.go for the layer architecture and the meaning of each constant.
const (
	// gemmMR × gemmNR is the micro-kernel tile: 4×4 float64 keeps the 16
	// scalar accumulators of the pure-Go kernel in registers, and the
	// AVX2 kernel holds the four 4-lane output rows in YMM registers
	// (two interleaved accumulator sets hide the FMA latency).
	gemmMR = 4
	gemmNR = 4
	// gemmKC: the k extent of one packed block. One A micro-panel
	// (gemmMR × gemmKC) and one B micro-panel (gemmKC × gemmNR) are 8 KiB
	// each at this depth — both resident in L1 while the micro-kernel
	// streams them.
	gemmKC = 256
	// gemmMC: the row extent of one packed A block (gemmMC × gemmKC ×
	// 8 B = 512 KiB, sized for L2), and the unit the parallel row split
	// sub-blocks on.
	gemmMC = 256
	// gemmNC: the column extent of one packed B block; bounds the packed
	// B buffer at gemmKC × gemmNC elements.
	gemmNC = 4096
)
