//go:build !f32

package tensor

// Micro-kernel tile and cache-block sizes for the float64 build. See
// gemm.go for the layer architecture and the meaning of each constant.
// MR/NR/KC are per-tier: the AVX-512 kernel runs a wider tile than the
// AVX2 and portable kernels, so the live values are the gemmMR/gemmNR/
// gemmKC variables in gemm.go, switched by applyGemmTier.
const (
	// Base tile (portable Go and AVX2+FMA kernels): 4×4 float64 keeps
	// the 16 scalar accumulators of the pure-Go kernel in registers, and
	// the AVX2 kernel holds the four 4-lane output rows in YMM registers
	// (two interleaved accumulator sets hide the FMA latency).
	gemmMRBase = 4
	gemmNRBase = 4
	// gemmKCBase: the k extent of one packed block. One A micro-panel
	// (MR × KC) and one B micro-panel (KC × NR) are 8 KiB each at this
	// depth — both resident in L1 while the micro-kernel streams them.
	gemmKCBase = 256

	// AVX-512 tile: 8 rows × 8 f64 lanes — one full ZMM vector per row
	// accumulator, two interleaved accumulator sets (16 of the 32 ZMM
	// registers) hiding the FMA latency exactly like the AVX2 kernel,
	// but at twice the width and twice the rows. The wider tile raises
	// the flop:load ratio: 64 FMAs per (8+8)-element panel read versus
	// 16 per (4+4) at the base tile.
	gemmMR512 = 8
	gemmNR512 = 8
	// Panels are 16 KiB each at kc=256 — past a 32 KiB L1d they stream
	// with the hardware prefetcher from L2; deeper kc amortises the C
	// tile traffic better than strict L1 residency here.
	gemmKC512 = 256

	// Upper bounds across tiers, for stack tiles and buffer sizing.
	gemmMRMax = 8
	gemmNRMax = 8

	// gemmMC: the row extent of one packed A block (gemmMC × kc × 8 B =
	// 512 KiB at kc=256, sized for L2), and the unit the parallel row
	// split sub-blocks on.
	gemmMC = 256
	// gemmNC: the column extent of one packed B block; bounds the packed
	// B buffer at kc × gemmNC elements.
	gemmNC = 4096
)
