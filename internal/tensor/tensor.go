// Package tensor implements the dense numerical arrays used by the
// neural-network stack. Tensors are row-major, contiguous buffers of
// Elem values with an explicit shape. Elem is float64 by default and
// float32 under the `f32` build tag (see dtype64.go/dtype32.go): the
// storage and every compute kernel in this package run at the compiled
// width, while the scalar-facing API (At/Set/Full/Scale/…) and every
// reduction that sums many elements (Sum, Mean, Norm2, Dot) stay
// float64, so accumulation error does not scale with tensor volume.
// The package provides the element-wise and linear-algebra kernels that
// the layers in internal/nn are built from; heavy kernels (MatMul) are
// parallelised across CPU cores.
//
// Wire frames (serialize.go) carry a leading dtype byte, so a float32
// build ships 4-byte elements natively and either build decodes the
// other's frames (and the legacy pre-dtype float64 framing) with
// per-element conversion. Tests select dtype-appropriate tolerances
// with Tol(f64, f32).
//
// # Kernel architecture
//
// Matrix multiplication — the hot path under every layer — is a packed,
// register-blocked GEMM (gemm.go), dispatched per call in this order:
//
//  1. markedly sparse left operands take the legacy zero-skip row
//     kernels (matmul.go) — the skip threshold is kernel-aware, since
//     the vector kernel moves the breakeven sparsity;
//  2. small products take the legacy column-tiled scalar kernels
//     (packing two operands costs more than it saves);
//  3. everything else is packed: A and B blocks are copied once per
//     cache block into pool-backed MR-row / NR-column panels whose
//     layout matches the micro-kernel's streaming order exactly, with
//     the MatMulT1/T2 transposes absorbed by the packing reads and the
//     conv layers' im2col fill fused straight into B-panel packing
//     (MatMulPacked). One GEMM call additionally fans its macro loops
//     out across the worker pool: tasks split on packed-panel
//     boundaries and pack the shared B panels cooperatively, so the
//     result stays bitwise identical at every GOMAXPROCS.
//
// The micro-kernel — an MR×NR register tile over the packed panels —
// is picked per process by a runtime CPUID+XGETBV probe
// (gemm_cpu_amd64.go), overridable with MDGAN_GEMM_KERNEL and at
// runtime via ForceGemmKernel:
//
//	tier      f64 tile  f32 tile  selected when
//	generic   4×4       4×8       always available (pure Go; the only
//	                              tier under the `noasm` build tag)
//	avx2      4×4       4×8       AVX2+FMA assembly (gemm_amd64_*.s)
//	avx512    8×8       8×16      AVX-512 F/DQ/BW/VL assembly
//	                              (gemm_amd64_*_avx512.s) with ZMM
//	                              state OS-enabled
//
// gemm.go's file comment specifies the packing layout, the micro-kernel
// contract, the parallel split (panel-aligned, cooperatively packed
// tasks) and the recipe for adding a new architecture's kernel.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major, contiguous array of Elem values.
// The zero value is not usable; construct tensors with New, FromSlice or
// the arithmetic helpers.
type Tensor struct {
	shape []int
	Data  []Elem
}

// New allocates a zero-filled tensor with the given shape. All
// dimensions must be positive.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]Elem, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is NOT
// copied; the tensor aliases it. len(data) must equal the shape volume.
func FromSlice(data []Elem, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (volume %d)", len(data), append([]int(nil), shape...), n))
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: data}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	e := Elem(v)
	for i := range t.Data {
		t.Data[i] = e
	}
	return t
}

// Ones returns a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			// Format a copy so the (cold) panic path does not force the
			// caller's variadic shape onto the heap.
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", append([]int(nil), shape...)))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor shape. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i, d := range t.shape {
		if u.shape[i] != d {
			return false
		}
	}
	return true
}

// Reshape returns a tensor sharing t's data with a new shape of the same
// volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", len(t.Data), append([]int(nil), shape...)))
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: t.Data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies u's data into t. Shapes must match in volume.
func (t *Tensor) CopyFrom(u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic("tensor: CopyFrom volume mismatch")
	}
	copy(t.Data, u.Data)
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return float64(t.Data[t.offset(idx)]) }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = Elem(v) }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	e := Elem(v)
	for i := range t.Data {
		t.Data[i] = e
	}
}

// Row returns row i of a rank-2 tensor as a view (shared data) of shape
// (1, cols).
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Row requires rank-2 tensor")
	}
	cols := t.shape[1]
	return &Tensor{shape: []int{1, cols}, Data: t.Data[i*cols : (i+1)*cols]}
}

// SliceRows returns rows [from, to) of the leading dimension as a view
// sharing t's data.
func (t *Tensor) SliceRows(from, to int) *Tensor {
	if len(t.shape) < 1 {
		panic("tensor: SliceRows on scalar")
	}
	if from < 0 || to > t.shape[0] || from >= to {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for dim %d", from, to, t.shape[0]))
	}
	rowVol := len(t.Data) / t.shape[0]
	shape := append([]int{to - from}, t.shape[1:]...)
	return &Tensor{shape: shape, Data: t.Data[from*rowVol : to*rowVol]}
}

// ConcatRows concatenates tensors along the leading dimension. All
// trailing dimensions must match.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	rows := 0
	rowVol := len(ts[0].Data) / ts[0].shape[0]
	for _, t := range ts {
		if len(t.Data)/t.shape[0] != rowVol {
			panic("tensor: ConcatRows trailing shape mismatch")
		}
		rows += t.shape[0]
	}
	shape := append([]int{rows}, ts[0].shape[1:]...)
	out := New(shape...)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:], t.Data)
		off += len(t.Data)
	}
	return out
}

// Gather returns a new tensor whose leading-dimension rows are
// t[idx[0]], t[idx[1]], ... in order.
func (t *Tensor) Gather(idx []int) *Tensor {
	rowVol := len(t.Data) / t.shape[0]
	shape := append([]int{len(idx)}, t.shape[1:]...)
	out := New(shape...)
	for i, j := range idx {
		if j < 0 || j >= t.shape[0] {
			panic(fmt.Sprintf("tensor: Gather index %d out of range", j))
		}
		copy(out.Data[i*rowVol:(i+1)*rowVol], t.Data[j*rowVol:(j+1)*rowVol])
	}
	return out
}

// Equal reports whether t and u have the same shape and element-wise
// equal data within tolerance tol.
func (t *Tensor) Equal(u *Tensor, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(float64(v)-float64(u.Data[i])) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus a few leading
// values), suitable for debugging.
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.Data[:n])
}
