package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// refMatMul is the triple-loop reference every kernel family is
// checked against, with float64 accumulation so the reference is at
// least as accurate as any kernel.
func refMatMul(a, b *Tensor, tA, tB bool) *Tensor {
	var m, k, n int
	var av func(i, kk int) float64
	var bv func(kk, j int) float64
	if tA {
		k, m = a.Dim(0), a.Dim(1)
		av = func(i, kk int) float64 { return a.At(kk, i) }
	} else {
		m, k = a.Dim(0), a.Dim(1)
		av = func(i, kk int) float64 { return a.At(i, kk) }
	}
	if tB {
		n = b.Dim(0)
		bv = func(kk, j int) float64 { return b.At(j, kk) }
	} else {
		n = b.Dim(1)
		bv = func(kk, j int) float64 { return b.At(kk, j) }
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += av(i, kk) * bv(kk, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

// sparseTensor is ~60% zeros, enough to trip the zero-skip dispatch.
func sparseTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := randTensor(rng, shape...)
	for i := range t.Data {
		if rng.Float64() < 0.6 {
			t.Data[i] = 0
		}
	}
	return t
}

// kernelVariants runs fn under every micro-kernel available in this
// binary: the portable Go kernel always, the assembly kernel when the
// build and CPU have it.
func kernelVariants(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	prev := gemmUseAsm
	defer func() { gemmUseAsm = prev }()
	t.Run("go", func(t *testing.T) {
		setGemmAsm(false)
		fn(t)
	})
	if !setGemmAsm(true) {
		t.Logf("assembly kernel unavailable (%s); asm variant skipped", GemmKernel())
		return
	}
	t.Run("asm", func(t *testing.T) {
		setGemmAsm(true)
		fn(t)
	})
}

// gemmShapes covers the dispatch boundaries: below gemmMinWork (legacy
// kernels), above it with M, N, K multiples of the tile, ragged
// remainder shapes in every dimension, more than one KC block, more
// than one MC block, and degenerate single-row/column operands.
var gemmShapes = [][3]int{
	{3, 5, 4},     // tiny: legacy path
	{16, 64, 32},  // aligned, single block
	{17, 63, 33},  // ragged in every dimension
	{4, 300, 44},  // k spans two KC blocks (f64)
	{37, 530, 29}, // k spans KC blocks at both dtypes
	{300, 40, 24}, // m spans two MC blocks
	{1, 128, 96},  // single output row
	{70, 96, 1},   // single output column
	{5, 1, 9},     // k = 1
}

// TestMatMulEntryPointsMatchReference checks all nine entry points
// against the naive reference for dense and sparse left operands, at
// every shape class, under every kernel variant.
func TestMatMulEntryPointsMatchReference(t *testing.T) {
	kernelVariants(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for _, sh := range gemmShapes {
			m, k, n := sh[0], sh[1], sh[2]
			for _, sparse := range []bool{false, true} {
				mk := func(shape ...int) *Tensor {
					if sparse {
						return sparseTensor(rng, shape...)
					}
					return randTensor(rng, shape...)
				}
				tol := Tol(1e-12, 2e-4) * float64(k)
				name := fmt.Sprintf("%dx%dx%d/sparse=%v", m, k, n, sparse)

				a, b := mk(m, k), mk(k, n)
				want := refMatMul(a, b, false, false)
				if got := MatMul(a, b); !got.Equal(want, tol) {
					t.Fatalf("%s: MatMul mismatch", name)
				}
				got := New(m, n)
				MatMulInto(got, a, b)
				if !got.Equal(want, tol) {
					t.Fatalf("%s: MatMulInto mismatch", name)
				}
				got = randTensor(rng, m, n)
				base := got.Clone()
				MatMulAdd(got, a, b)
				base.AddInPlace(want)
				if !got.Equal(base, tol) {
					t.Fatalf("%s: MatMulAdd mismatch", name)
				}

				at, bt := mk(k, m), mk(k, n)
				want = refMatMul(at, bt, true, false)
				if got := MatMulT1(at, bt); !got.Equal(want, tol) {
					t.Fatalf("%s: MatMulT1 mismatch", name)
				}
				got = New(m, n)
				MatMulT1Into(got, at, bt)
				if !got.Equal(want, tol) {
					t.Fatalf("%s: MatMulT1Into mismatch", name)
				}
				got = randTensor(rng, m, n)
				base = got.Clone()
				MatMulT1Add(got, at, bt)
				base.AddInPlace(want)
				if !got.Equal(base, tol) {
					t.Fatalf("%s: MatMulT1Add mismatch", name)
				}

				a2, b2 := mk(m, k), mk(n, k)
				want = refMatMul(a2, b2, false, true)
				if got := MatMulT2(a2, b2); !got.Equal(want, tol) {
					t.Fatalf("%s: MatMulT2 mismatch", name)
				}
				got = New(m, n)
				MatMulT2Into(got, a2, b2)
				if !got.Equal(want, tol) {
					t.Fatalf("%s: MatMulT2Into mismatch", name)
				}
				got = randTensor(rng, m, n)
				base = got.Clone()
				MatMulT2Add(got, a2, b2)
				base.AddInPlace(want)
				if !got.Equal(base, tol) {
					t.Fatalf("%s: MatMulT2Add mismatch", name)
				}
			}
		}
	})
}

// TestGemmGoKernelBitwiseMatchesLegacy pins the property the packed-Go
// path is documented to have: for k ≤ gemmKC (one k block) the per-
// element accumulation order is identical to the legacy column-tiled
// kernels, so the results are bitwise equal, not merely within
// tolerance.
func TestGemmGoKernelBitwiseMatchesLegacy(t *testing.T) {
	prev := gemmUseAsm
	defer func() { gemmUseAsm = prev }()
	setGemmAsm(false)
	rng := rand.New(rand.NewSource(11))
	m, k, n := 21, gemmKC, 19 // above gemmMinWork, single k block, ragged edges
	a, b := randTensor(rng, m, k), randTensor(rng, k, n)
	packed := New(m, n)
	gemm(packed.Data, n, m, n, k, a.Data, k, 1, b.Data, n, 1, nil, false)
	legacy := New(m, n)
	matMulRows(legacy.Data, a.Data, b.Data, k, n, 0, m, false)
	for i, v := range packed.Data {
		if v != legacy.Data[i] {
			t.Fatalf("packed Go kernel diverges from legacy at %d: %v vs %v", i, v, legacy.Data[i])
		}
	}
}

// TestGemmAsmWithinTolOfGo bounds the asm/Go cross-kernel error: the
// FMA kernel skips intermediate roundings, so it is not bitwise equal,
// but it must stay within tensor.Tol of the portable kernel.
func TestGemmAsmWithinTolOfGo(t *testing.T) {
	prev := gemmUseAsm
	defer func() { gemmUseAsm = prev }()
	if !setGemmAsm(true) {
		t.Skipf("assembly kernel unavailable (%s)", GemmKernel())
	}
	rng := rand.New(rand.NewSource(13))
	for _, sh := range gemmShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := randTensor(rng, m, k), randTensor(rng, k, n)
		setGemmAsm(true)
		asm := MatMul(a, b)
		setGemmAsm(false)
		gop := MatMul(a, b)
		tol := Tol(1e-12, 2e-4) * float64(k)
		if !asm.Equal(gop, tol) {
			t.Fatalf("%dx%dx%d: asm vs go kernel outside tolerance", m, k, n)
		}
	}
}

// TestMatMulPackedMatchesMaterialized checks the fused-packing entry
// points (the conv im2col fusion hook) against materialise-then-
// multiply, under every kernel variant.
func TestMatMulPackedMatchesMaterialized(t *testing.T) {
	kernelVariants(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(17))
		for _, sh := range gemmShapes {
			m, k, n := sh[0], sh[1], sh[2]
			b := randTensor(rng, k, n)
			packB := func(dst []Elem, k0, k1, j0, nr int) {
				packBStrided(dst, b.Data, n, 1, n, k0, k1, j0, nr)
			}
			tol := Tol(1e-12, 2e-4) * float64(k)

			a := randTensor(rng, m, k)
			want := refMatMul(a, b, false, false)
			got := New(m, n)
			MatMulPacked(got, a, n, packB)
			if !got.Equal(want, tol) {
				t.Fatalf("%dx%dx%d: MatMulPacked mismatch", m, k, n)
			}
			got = randTensor(rng, m, n)
			base := got.Clone()
			MatMulPackedAdd(got, a, n, packB)
			base.AddInPlace(want)
			if !got.Equal(base, tol) {
				t.Fatalf("%dx%dx%d: MatMulPackedAdd mismatch", m, k, n)
			}

			at := randTensor(rng, k, m)
			want = refMatMul(at, b, true, false)
			got = New(m, n)
			MatMulT1Packed(got, at, n, packB)
			if !got.Equal(want, tol) {
				t.Fatalf("%dx%dx%d: MatMulT1Packed mismatch", m, k, n)
			}
		}
	})
}

// TestGemmSteadyStateAllocs pins the pack buffers to the workspace
// pool: the steady-state allocation count of a packed matmul must be a
// small constant (the parallel-region closures) and must not grow with
// the operand sizes — a pool miss on the KB–MB pack buffers would show
// up immediately.
func TestGemmSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	measure := func(m, k, n int) float64 {
		a, b := randTensor(rng, m, k), randTensor(rng, k, n)
		out := New(m, n)
		MatMulInto(out, a, b) // warm the pool buckets
		return testing.AllocsPerRun(20, func() { MatMulInto(out, a, b) })
	}
	small := measure(16, 64, 32)
	big := measure(320, 600, 256) // multiple MC, KC and (f64) two k blocks
	budget := 6.0
	if raceEnabled {
		budget = 16 // sporadic pool misses under the race detector
	}
	if small > budget {
		t.Fatalf("steady-state packed matmul allocates %v times, budget %v", small, budget)
	}
	if big > 2*small+budget {
		t.Fatalf("allocations grew with operand size: %v (small) vs %v (big) — pack buffers not pooled?", small, big)
	}
}

// BenchmarkGEMM measures the packed kernels at MD-GAN layer shapes;
// the b.ReportMetric GFLOP/s figure is what mdgan-bench records into
// the BENCH trajectory.
func BenchmarkGEMM(b *testing.B) {
	shapes := [][3]int{
		{64, 800, 6272}, // conv2 forward: (OutC, C·KH·KW)·(ckk, N·oHW)
		{32, 128, 784},  // MLP generator output layer at batch 32
		{256, 256, 256}, // square reference point
		{512, 512, 512}, // square reference point
	}
	rng := rand.New(rand.NewSource(2))
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		x, y := randTensor(rng, m, k), randTensor(rng, k, n)
		out := New(m, n)
		b.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, x, y)
			}
			flops := 2 * float64(m) * float64(k) * float64(n)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}
