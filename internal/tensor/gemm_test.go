package tensor

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"mdgan/internal/parallel"
)

// refMatMul is the triple-loop reference every kernel family is
// checked against, with float64 accumulation so the reference is at
// least as accurate as any kernel.
func refMatMul(a, b *Tensor, tA, tB bool) *Tensor {
	var m, k, n int
	var av func(i, kk int) float64
	var bv func(kk, j int) float64
	if tA {
		k, m = a.Dim(0), a.Dim(1)
		av = func(i, kk int) float64 { return a.At(kk, i) }
	} else {
		m, k = a.Dim(0), a.Dim(1)
		av = func(i, kk int) float64 { return a.At(i, kk) }
	}
	if tB {
		n = b.Dim(0)
		bv = func(kk, j int) float64 { return b.At(j, kk) }
	} else {
		n = b.Dim(1)
		bv = func(kk, j int) float64 { return b.At(kk, j) }
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += av(i, kk) * bv(kk, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

// sparseTensor is ~60% zeros, enough to trip the zero-skip dispatch.
func sparseTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := randTensor(rng, shape...)
	for i := range t.Data {
		if rng.Float64() < 0.6 {
			t.Data[i] = 0
		}
	}
	return t
}

// restoreKernel reverts any ForceGemmKernel the test performed when it
// finishes.
func restoreKernel(t testing.TB) {
	prev := gemmTier
	t.Cleanup(func() { applyGemmTier(prev) })
}

// kernelVariants runs fn under every micro-kernel tier available in
// this binary on this CPU: the portable Go kernel always, the AVX2 and
// AVX-512 kernels when the build and CPU have them.
func kernelVariants(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	restoreKernel(t)
	for _, name := range GemmKernels() {
		t.Run(name, func(t *testing.T) {
			if !ForceGemmKernel(name) {
				t.Fatalf("ForceGemmKernel(%q) refused an advertised tier", name)
			}
			fn(t)
		})
	}
}

// gemmShapes covers the dispatch boundaries: below gemmMinWork (legacy
// kernels), above it with M, N, K multiples of the tile, ragged
// remainder shapes in every dimension, more than one KC block, more
// than one MC block, and degenerate single-row/column operands. The
// last group targets the AVX-512 tile (8 rows, 8/16 lanes): M%8, N%16
// and K%KC remainders that exercise every masked-edge combination of
// the wider kernel.
var gemmShapes = [][3]int{
	{3, 5, 4},     // tiny: legacy path
	{16, 64, 32},  // aligned, single block
	{17, 63, 33},  // ragged in every dimension
	{4, 300, 44},  // k spans two KC blocks (f64)
	{37, 530, 29}, // k spans KC blocks at both dtypes
	{300, 40, 24}, // m spans two MC blocks
	{1, 128, 96},  // single output row
	{70, 96, 1},   // single output column
	{5, 1, 9},     // k = 1
	// AVX-512 ragged edges:
	{15, 530, 17}, // m%8=7, n%16=1, k spans the avx512 KC
	{8, 256, 16},  // exactly one 8×16 tile (f32) / two 8×8 tiles (f64), k=KC
	{33, 100, 31}, // m%8=1, n%16=15 — widest masked tail
	{65, 260, 72}, // m%8=1, n%16=8 — half-ZMM f32 tail, aligned f64, k%KC=4
}

// TestMatMulEntryPointsMatchReference checks all nine entry points
// against the naive reference for dense and sparse left operands, at
// every shape class, under every kernel variant.
func TestMatMulEntryPointsMatchReference(t *testing.T) {
	kernelVariants(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for _, sh := range gemmShapes {
			m, k, n := sh[0], sh[1], sh[2]
			for _, sparse := range []bool{false, true} {
				mk := func(shape ...int) *Tensor {
					if sparse {
						return sparseTensor(rng, shape...)
					}
					return randTensor(rng, shape...)
				}
				tol := Tol(1e-12, 2e-4) * float64(k)
				name := fmt.Sprintf("%dx%dx%d/sparse=%v", m, k, n, sparse)

				a, b := mk(m, k), mk(k, n)
				want := refMatMul(a, b, false, false)
				if got := MatMul(a, b); !got.Equal(want, tol) {
					t.Fatalf("%s: MatMul mismatch", name)
				}
				got := New(m, n)
				MatMulInto(got, a, b)
				if !got.Equal(want, tol) {
					t.Fatalf("%s: MatMulInto mismatch", name)
				}
				got = randTensor(rng, m, n)
				base := got.Clone()
				MatMulAdd(got, a, b)
				base.AddInPlace(want)
				if !got.Equal(base, tol) {
					t.Fatalf("%s: MatMulAdd mismatch", name)
				}

				at, bt := mk(k, m), mk(k, n)
				want = refMatMul(at, bt, true, false)
				if got := MatMulT1(at, bt); !got.Equal(want, tol) {
					t.Fatalf("%s: MatMulT1 mismatch", name)
				}
				got = New(m, n)
				MatMulT1Into(got, at, bt)
				if !got.Equal(want, tol) {
					t.Fatalf("%s: MatMulT1Into mismatch", name)
				}
				got = randTensor(rng, m, n)
				base = got.Clone()
				MatMulT1Add(got, at, bt)
				base.AddInPlace(want)
				if !got.Equal(base, tol) {
					t.Fatalf("%s: MatMulT1Add mismatch", name)
				}

				a2, b2 := mk(m, k), mk(n, k)
				want = refMatMul(a2, b2, false, true)
				if got := MatMulT2(a2, b2); !got.Equal(want, tol) {
					t.Fatalf("%s: MatMulT2 mismatch", name)
				}
				got = New(m, n)
				MatMulT2Into(got, a2, b2)
				if !got.Equal(want, tol) {
					t.Fatalf("%s: MatMulT2Into mismatch", name)
				}
				got = randTensor(rng, m, n)
				base = got.Clone()
				MatMulT2Add(got, a2, b2)
				base.AddInPlace(want)
				if !got.Equal(base, tol) {
					t.Fatalf("%s: MatMulT2Add mismatch", name)
				}
			}
		}
	})
}

// TestGemmGoKernelBitwiseMatchesLegacy pins the property the packed-Go
// path is documented to have: for k ≤ gemmKC (one k block) the per-
// element accumulation order is identical to the legacy column-tiled
// kernels, so the results are bitwise equal, not merely within
// tolerance.
func TestGemmGoKernelBitwiseMatchesLegacy(t *testing.T) {
	restoreKernel(t)
	ForceGemmKernel("generic")
	rng := rand.New(rand.NewSource(11))
	m, k, n := 21, gemmKC, 19 // above gemmMinWork, single k block, ragged edges
	a, b := randTensor(rng, m, k), randTensor(rng, k, n)
	packed := New(m, n)
	gemm(packed.Data, n, m, n, k, a.Data, k, 1, b.Data, n, 1, nil, false)
	legacy := New(m, n)
	matMulRows(legacy.Data, a.Data, b.Data, k, n, 0, m, false)
	for i, v := range packed.Data {
		if v != legacy.Data[i] {
			t.Fatalf("packed Go kernel diverges from legacy at %d: %v vs %v", i, v, legacy.Data[i])
		}
	}
}

// TestGemmAsmWithinTolOfGo bounds the asm/Go cross-kernel error for
// every assembly tier: the FMA kernels skip intermediate roundings and
// interleave two accumulator sets, so they are not bitwise equal to the
// portable kernel, but must stay within tensor.Tol of it.
func TestGemmAsmWithinTolOfGo(t *testing.T) {
	restoreKernel(t)
	asmTiers := GemmKernels()[1:] // "generic" is the reference
	if len(asmTiers) == 0 {
		t.Skipf("no assembly kernel available (%s)", GemmKernel())
	}
	rng := rand.New(rand.NewSource(13))
	for _, tier := range asmTiers {
		t.Run(tier, func(t *testing.T) {
			for _, sh := range gemmShapes {
				m, k, n := sh[0], sh[1], sh[2]
				a, b := randTensor(rng, m, k), randTensor(rng, k, n)
				ForceGemmKernel(tier)
				asm := MatMul(a, b)
				ForceGemmKernel("generic")
				gop := MatMul(a, b)
				tol := Tol(1e-12, 2e-4) * float64(k)
				if !asm.Equal(gop, tol) {
					t.Fatalf("%dx%dx%d: %s vs go kernel outside tolerance", m, k, n, tier)
				}
			}
		})
	}
}

// TestGemmBitwiseAcrossGOMAXPROCS pins the determinism contract the
// strict engine relies on: a packed matmul fans out inside one call,
// but the k dimension is never split and every C tile is produced by
// exactly one micro-kernel call over identical packed bytes, so the
// result must be bitwise identical across GOMAXPROCS values and task
// splits — under every kernel tier. (On a 1-core host GOMAXPROCS>1
// still schedules the pool workers concurrently, so split boundaries
// and the cooperative B-pack race are genuinely exercised.)
func TestGemmBitwiseAcrossGOMAXPROCS(t *testing.T) {
	restoreKernel(t)
	prevProcs := runtime.GOMAXPROCS(0)
	defer func() {
		runtime.GOMAXPROCS(prevProcs)
		parallel.SetMaxProcs(0)
	}()
	rng := rand.New(rand.NewSource(29))
	shapes := [][3]int{
		{37, 530, 129}, // ragged everywhere, multiple KC blocks
		{64, 256, 96},  // aligned
		{130, 300, 60}, // multiple MC blocks
	}
	for _, name := range GemmKernels() {
		t.Run(name, func(t *testing.T) {
			ForceGemmKernel(name)
			for _, sh := range shapes {
				m, k, n := sh[0], sh[1], sh[2]
				a, b := randTensor(rng, m, k), randTensor(rng, k, n)
				runtime.GOMAXPROCS(1)
				parallel.SetMaxProcs(1) // serial reference: regions inline
				want := New(m, n)
				MatMulInto(want, a, b)
				for _, procs := range []int{2, 4, 8} {
					runtime.GOMAXPROCS(procs)
					parallel.SetMaxProcs(procs)
					got := New(m, n)
					MatMulInto(got, a, b)
					for i, v := range got.Data {
						if v != want.Data[i] {
							t.Fatalf("%dx%dx%d at GOMAXPROCS=%d: element %d differs from serial: %v vs %v",
								m, k, n, procs, i, v, want.Data[i])
						}
					}
				}
				runtime.GOMAXPROCS(prevProcs)
				parallel.SetMaxProcs(0)
			}
		})
	}
}

// TestMatMulPackedMatchesMaterialized checks the fused-packing entry
// points (the conv im2col fusion hook) against materialise-then-
// multiply, under every kernel variant.
func TestMatMulPackedMatchesMaterialized(t *testing.T) {
	kernelVariants(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(17))
		for _, sh := range gemmShapes {
			m, k, n := sh[0], sh[1], sh[2]
			b := randTensor(rng, k, n)
			packB := func(dst []Elem, k0, k1, j0, nr int) {
				packBStrided(dst, b.Data, n, 1, n, k0, k1, j0, nr)
			}
			tol := Tol(1e-12, 2e-4) * float64(k)

			a := randTensor(rng, m, k)
			want := refMatMul(a, b, false, false)
			got := New(m, n)
			MatMulPacked(got, a, n, packB)
			if !got.Equal(want, tol) {
				t.Fatalf("%dx%dx%d: MatMulPacked mismatch", m, k, n)
			}
			got = randTensor(rng, m, n)
			base := got.Clone()
			MatMulPackedAdd(got, a, n, packB)
			base.AddInPlace(want)
			if !got.Equal(base, tol) {
				t.Fatalf("%dx%dx%d: MatMulPackedAdd mismatch", m, k, n)
			}

			at := randTensor(rng, k, m)
			want = refMatMul(at, b, true, false)
			got = New(m, n)
			MatMulT1Packed(got, at, n, packB)
			if !got.Equal(want, tol) {
				t.Fatalf("%dx%dx%d: MatMulT1Packed mismatch", m, k, n)
			}
		}
	})
}

// TestGemmSteadyStateAllocs pins the pack buffers to the workspace
// pool: the steady-state allocation count of a packed matmul must be a
// small constant (the parallel-region closures) and must not grow with
// the operand sizes — a pool miss on the KB–MB pack buffers would show
// up immediately.
func TestGemmSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	measure := func(m, k, n int) float64 {
		a, b := randTensor(rng, m, k), randTensor(rng, k, n)
		out := New(m, n)
		MatMulInto(out, a, b) // warm the pool buckets
		return testing.AllocsPerRun(20, func() { MatMulInto(out, a, b) })
	}
	small := measure(16, 64, 32)
	big := measure(320, 600, 256) // multiple MC, KC and (f64) two k blocks
	budget := 6.0
	if raceEnabled {
		budget = 16 // sporadic pool misses under the race detector
	}
	if small > budget {
		t.Fatalf("steady-state packed matmul allocates %v times, budget %v", small, budget)
	}
	if big > 2*small+budget {
		t.Fatalf("allocations grew with operand size: %v (small) vs %v (big) — pack buffers not pooled?", small, big)
	}
}

// TestGemmParallelSteadyStateAllocs pins the fanned-out run-state: with
// GOMAXPROCS>1 a packed matmul submits real parallel regions, and the
// pooled gemmRun, the pooled scheduler regions and helper contexts, and
// the pooled pack buffers must keep the steady state at a small
// constant (goroutine-id registration in the scheduler's sync.Map is
// the only remaining per-region cost; zero run-state allocations per
// se). ×2 under -race per the established convention.
func TestGemmParallelSteadyStateAllocs(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	parallel.SetMaxProcs(4)
	defer func() {
		runtime.GOMAXPROCS(prevProcs)
		parallel.SetMaxProcs(0)
	}()
	rng := rand.New(rand.NewSource(31))
	m, k, n := 256, 300, 192 // multiple MC blocks, two KC blocks, fans out
	a, b := randTensor(rng, m, k), randTensor(rng, k, n)
	out := New(m, n)
	for i := 0; i < 3; i++ {
		MatMulInto(out, a, b) // warm pools across the worker set
	}
	allocs := testing.AllocsPerRun(20, func() { MatMulInto(out, a, b) })
	budget := 12.0
	if raceEnabled {
		// The race-mode sync.Pool fakes misses at random, and a fanned-
		// out matmul cycles several pooled objects per region (gemmRun,
		// pack buffers, scheduler regions and helper contexts), so the
		// flat ×2 convention undercounts here.
		budget = 80
	}
	if allocs > budget {
		t.Fatalf("fanned-out packed matmul allocates %v times steady-state, budget %v", allocs, budget)
	}
}

// BenchmarkGEMM measures the packed kernels at MD-GAN layer shapes;
// the b.ReportMetric GFLOP/s figure is what mdgan-bench records into
// the BENCH trajectory.
func BenchmarkGEMM(b *testing.B) {
	shapes := [][3]int{
		{64, 800, 6272}, // conv2 forward: (OutC, C·KH·KW)·(ckk, N·oHW)
		{32, 128, 784},  // MLP generator output layer at batch 32
		{256, 256, 256}, // square reference point
		{512, 512, 512}, // square reference point
	}
	rng := rand.New(rand.NewSource(2))
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		x, y := randTensor(rng, m, k), randTensor(rng, k, n)
		out := New(m, n)
		b.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, x, y)
			}
			flops := 2 * float64(m) * float64(k) * float64(n)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}
