package tensor

import (
	"fmt"
	"math"

	"mdgan/internal/parallel"
)

// Add returns t + u element-wise as a new tensor.
func Add(t, u *Tensor) *Tensor { return zipNew(t, u, func(a, b float64) float64 { return a + b }) }

// Sub returns t - u element-wise as a new tensor.
func Sub(t, u *Tensor) *Tensor { return zipNew(t, u, func(a, b float64) float64 { return a - b }) }

// Mul returns t * u element-wise as a new tensor.
func Mul(t, u *Tensor) *Tensor { return zipNew(t, u, func(a, b float64) float64 { return a * b }) }

// Div returns t / u element-wise as a new tensor.
func Div(t, u *Tensor) *Tensor { return zipNew(t, u, func(a, b float64) float64 { return a / b }) }

func zipNew(t, u *Tensor, f func(a, b float64) float64) *Tensor {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.shape, u.shape))
	}
	out := New(t.shape...)
	parallel.For(len(t.Data), func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = f(t.Data[i], u.Data[i])
		}
	})
	return out
}

// AddInPlace sets t += u.
func (t *Tensor) AddInPlace(u *Tensor) *Tensor {
	if len(t.Data) != len(u.Data) {
		panic("tensor: AddInPlace volume mismatch")
	}
	parallel.For(len(t.Data), func(s, e int) {
		for i := s; i < e; i++ {
			t.Data[i] += u.Data[i]
		}
	})
	return t
}

// SubInPlace sets t -= u.
func (t *Tensor) SubInPlace(u *Tensor) *Tensor {
	if len(t.Data) != len(u.Data) {
		panic("tensor: SubInPlace volume mismatch")
	}
	for i := range t.Data {
		t.Data[i] -= u.Data[i]
	}
	return t
}

// MulInPlace sets t *= u element-wise.
func (t *Tensor) MulInPlace(u *Tensor) *Tensor {
	if len(t.Data) != len(u.Data) {
		panic("tensor: MulInPlace volume mismatch")
	}
	for i := range t.Data {
		t.Data[i] *= u.Data[i]
	}
	return t
}

// Scale returns t * s as a new tensor.
func (t *Tensor) Scale(s float64) *Tensor {
	out := New(t.shape...)
	for i, v := range t.Data {
		out.Data[i] = v * s
	}
	return out
}

// ScaleInPlace sets t *= s.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AxpyInPlace sets t += alpha*u (BLAS axpy).
func (t *Tensor) AxpyInPlace(alpha float64, u *Tensor) *Tensor {
	if len(t.Data) != len(u.Data) {
		panic("tensor: AxpyInPlace volume mismatch")
	}
	for i := range t.Data {
		t.Data[i] += alpha * u.Data[i]
	}
	return t
}

// Apply returns f applied element-wise as a new tensor.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	out := New(t.shape...)
	parallel.For(len(t.Data), func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = f(t.Data[i])
		}
	})
	return out
}

// ApplyInPlace applies f element-wise in place.
func (t *Tensor) ApplyInPlace(f func(float64) float64) *Tensor {
	parallel.For(len(t.Data), func(s, e int) {
		for i := s; i < e; i++ {
			t.Data[i] = f(t.Data[i])
		}
	})
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.Data)) }

// Max returns the maximum element.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.Data {
		if v < m {
			m = v
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// SumRows reduces a rank-2 tensor (r, c) over its rows, returning a
// (1, c) tensor: out[j] = Σ_i t[i,j].
func (t *Tensor) SumRows() *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: SumRows requires rank-2 tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := New(1, c)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// SumCols reduces a rank-2 tensor (r, c) over its columns, returning a
// (r, 1) tensor: out[i] = Σ_j t[i,j].
func (t *Tensor) SumCols() *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: SumCols requires rank-2 tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := New(r, 1)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		s := 0.0
		for _, v := range row {
			s += v
		}
		out.Data[i] = s
	}
	return out
}

// AddRowVec adds a (1, c) row vector to every row of a (r, c) tensor,
// returning a new tensor.
func AddRowVec(t, v *Tensor) *Tensor {
	if len(t.shape) != 2 || len(v.shape) != 2 || v.shape[0] != 1 || v.shape[1] != t.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVec shapes %v %v", t.shape, v.shape))
	}
	r, c := t.shape[0], t.shape[1]
	out := New(r, c)
	parallel.For(r, func(s, e int) {
		for i := s; i < e; i++ {
			row := t.Data[i*c : (i+1)*c]
			o := out.Data[i*c : (i+1)*c]
			for j := range row {
				o[j] = row[j] + v.Data[j]
			}
		}
	})
	return out
}

// ArgMaxRows returns, for a (r, c) tensor, the column index of the
// maximum entry of each row.
func (t *Tensor) ArgMaxRows() []int {
	if len(t.shape) != 2 {
		panic("tensor: ArgMaxRows requires rank-2 tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := make([]int, r)
	for i := 0; i < r; i++ {
		best, bi := math.Inf(-1), 0
		for j, v := range t.Data[i*c : (i+1)*c] {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// Transpose returns the transpose of a rank-2 tensor as a new tensor.
func (t *Tensor) Transpose() *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Transpose requires rank-2 tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := New(c, r)
	parallel.For(r, func(s, e int) {
		for i := s; i < e; i++ {
			for j := 0; j < c; j++ {
				out.Data[j*r+i] = t.Data[i*c+j]
			}
		}
	})
	return out
}

// Dot returns the inner product of two tensors of equal volume.
func Dot(t, u *Tensor) float64 {
	if len(t.Data) != len(u.Data) {
		panic("tensor: Dot volume mismatch")
	}
	s := 0.0
	for i, v := range t.Data {
		s += v * u.Data[i]
	}
	return s
}
