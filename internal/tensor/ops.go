package tensor

import (
	"fmt"
	"math"

	"mdgan/internal/parallel"
)

// opsGrain is the element count below which element-wise ops run as a
// plain loop; it matches the worker-pool hand-off threshold, and the
// small path avoids even constructing the fan-out closure.
const opsGrain = 4096

// Add returns t + u element-wise as a new tensor.
func Add(t, u *Tensor) *Tensor {
	out := New(t.shape...)
	AddInto(out, t, u)
	return out
}

// Sub returns t - u element-wise as a new tensor.
func Sub(t, u *Tensor) *Tensor {
	out := New(t.shape...)
	SubInto(out, t, u)
	return out
}

// Mul returns t * u element-wise as a new tensor.
func Mul(t, u *Tensor) *Tensor {
	out := New(t.shape...)
	MulInto(out, t, u)
	return out
}

// Div returns t / u element-wise as a new tensor.
func Div(t, u *Tensor) *Tensor {
	out := New(t.shape...)
	DivInto(out, t, u)
	return out
}

func checkZip(op string, out, t, u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, u.shape))
	}
	if len(out.Data) != len(t.Data) {
		panic(fmt.Sprintf("tensor: %s out volume %d, want %d", op, len(out.Data), len(t.Data)))
	}
}

// AddInto computes out = t + u element-wise into the preallocated out.
func AddInto(out, t, u *Tensor) {
	checkZip("AddInto", out, t, u)
	od, td, ud := out.Data, t.Data, u.Data
	if len(od) < opsGrain {
		for i, v := range td {
			od[i] = v + ud[i]
		}
		return
	}
	parallel.For(len(od), func(s, e int) {
		for i := s; i < e; i++ {
			od[i] = td[i] + ud[i]
		}
	})
}

// SubInto computes out = t - u element-wise into the preallocated out.
func SubInto(out, t, u *Tensor) {
	checkZip("SubInto", out, t, u)
	od, td, ud := out.Data, t.Data, u.Data
	if len(od) < opsGrain {
		for i, v := range td {
			od[i] = v - ud[i]
		}
		return
	}
	parallel.For(len(od), func(s, e int) {
		for i := s; i < e; i++ {
			od[i] = td[i] - ud[i]
		}
	})
}

// MulInto computes out = t * u element-wise into the preallocated out.
func MulInto(out, t, u *Tensor) {
	checkZip("MulInto", out, t, u)
	od, td, ud := out.Data, t.Data, u.Data
	if len(od) < opsGrain {
		for i, v := range td {
			od[i] = v * ud[i]
		}
		return
	}
	parallel.For(len(od), func(s, e int) {
		for i := s; i < e; i++ {
			od[i] = td[i] * ud[i]
		}
	})
}

// DivInto computes out = t / u element-wise into the preallocated out.
func DivInto(out, t, u *Tensor) {
	checkZip("DivInto", out, t, u)
	od, td, ud := out.Data, t.Data, u.Data
	for i, v := range td {
		od[i] = v / ud[i]
	}
}

// AddInPlace sets t += u.
func (t *Tensor) AddInPlace(u *Tensor) *Tensor {
	if len(t.Data) != len(u.Data) {
		panic("tensor: AddInPlace volume mismatch")
	}
	td, ud := t.Data, u.Data
	if len(td) < opsGrain {
		for i, v := range ud {
			td[i] += v
		}
		return t
	}
	parallel.For(len(td), func(s, e int) {
		for i := s; i < e; i++ {
			td[i] += ud[i]
		}
	})
	return t
}

// SubInPlace sets t -= u.
func (t *Tensor) SubInPlace(u *Tensor) *Tensor {
	if len(t.Data) != len(u.Data) {
		panic("tensor: SubInPlace volume mismatch")
	}
	for i := range t.Data {
		t.Data[i] -= u.Data[i]
	}
	return t
}

// MulInPlace sets t *= u element-wise.
func (t *Tensor) MulInPlace(u *Tensor) *Tensor {
	if len(t.Data) != len(u.Data) {
		panic("tensor: MulInPlace volume mismatch")
	}
	for i := range t.Data {
		t.Data[i] *= u.Data[i]
	}
	return t
}

// Scale returns t * s as a new tensor.
func (t *Tensor) Scale(s float64) *Tensor {
	out := New(t.shape...)
	e := Elem(s)
	for i, v := range t.Data {
		out.Data[i] = v * e
	}
	return out
}

// ScaleInPlace sets t *= s.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	e := Elem(s)
	for i := range t.Data {
		t.Data[i] *= e
	}
	return t
}

// AxpyInPlace sets t += alpha*u (BLAS axpy).
func (t *Tensor) AxpyInPlace(alpha float64, u *Tensor) *Tensor {
	if len(t.Data) != len(u.Data) {
		panic("tensor: AxpyInPlace volume mismatch")
	}
	a := Elem(alpha)
	for i := range t.Data {
		t.Data[i] += a * u.Data[i]
	}
	return t
}

// Apply returns f applied element-wise as a new tensor.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	out := New(t.shape...)
	ApplyInto(out, t, f)
	return out
}

// ApplyInto computes out = f(t) element-wise into the preallocated out.
// f operates in float64 regardless of the compiled Elem (transcendental
// closures come from package math); the result rounds to Elem on store.
func ApplyInto(out, t *Tensor, f func(float64) float64) {
	if len(out.Data) != len(t.Data) {
		panic("tensor: ApplyInto volume mismatch")
	}
	od, td := out.Data, t.Data
	if len(od) < opsGrain {
		for i, v := range td {
			od[i] = Elem(f(float64(v)))
		}
		return
	}
	parallel.For(len(od), func(s, e int) {
		for i := s; i < e; i++ {
			od[i] = Elem(f(float64(td[i])))
		}
	})
}

// ApplyInPlace applies f element-wise in place.
func (t *Tensor) ApplyInPlace(f func(float64) float64) *Tensor {
	ApplyInto(t, t, f)
	return t
}

// Sum returns the sum of all elements, accumulated in float64
// regardless of the compiled Elem.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.Data)) }

// Max returns the maximum element.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.Data {
		if float64(v) > m {
			m = float64(v)
		}
	}
	return m
}

// Min returns the minimum element.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.Data {
		if float64(v) < m {
			m = float64(v)
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of the flattened tensor, accumulated
// in float64 regardless of the compiled Elem.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// SumRows reduces a rank-2 tensor (r, c) over its rows, returning a
// (1, c) tensor: out[j] = Σ_i t[i,j].
func (t *Tensor) SumRows() *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: SumRows requires rank-2 tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := New(1, c)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// SumRowsAdd accumulates the row reduction of a rank-2 tensor (r, c)
// into out (1, c): out[j] += Σ_i t[i,j]. It is the shape of a bias
// gradient update.
func (t *Tensor) SumRowsAdd(out *Tensor) {
	if len(t.shape) != 2 {
		panic("tensor: SumRowsAdd requires rank-2 tensor")
	}
	r, c := t.shape[0], t.shape[1]
	if len(out.Data) != c {
		panic("tensor: SumRowsAdd out volume mismatch")
	}
	od := out.Data
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j, v := range row {
			od[j] += v
		}
	}
}

// SumCols reduces a rank-2 tensor (r, c) over its columns, returning a
// (r, 1) tensor: out[i] = Σ_j t[i,j].
func (t *Tensor) SumCols() *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: SumCols requires rank-2 tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := New(r, 1)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		s := 0.0
		for _, v := range row {
			s += float64(v)
		}
		out.Data[i] = Elem(s)
	}
	return out
}

// AddRowVec adds a (1, c) row vector to every row of a (r, c) tensor,
// returning a new tensor.
func AddRowVec(t, v *Tensor) *Tensor {
	out := New(t.shape...)
	out.CopyFrom(t)
	return out.AddRowVecInPlace(v)
}

// AddRowVecInPlace adds a (1, c) row vector to every row of a (r, c)
// tensor in place (the bias term of a Dense layer).
func (t *Tensor) AddRowVecInPlace(v *Tensor) *Tensor {
	if len(t.shape) != 2 || len(v.shape) != 2 || v.shape[0] != 1 || v.shape[1] != t.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVecInPlace shapes %v %v", t.shape, v.shape))
	}
	r, c := t.shape[0], t.shape[1]
	vd := v.Data
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j := range row {
			row[j] += vd[j]
		}
	}
	return t
}

// ArgMaxRows returns, for a (r, c) tensor, the column index of the
// maximum entry of each row.
func (t *Tensor) ArgMaxRows() []int {
	if len(t.shape) != 2 {
		panic("tensor: ArgMaxRows requires rank-2 tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := make([]int, r)
	for i := 0; i < r; i++ {
		best, bi := math.Inf(-1), 0
		for j, v := range t.Data[i*c : (i+1)*c] {
			if float64(v) > best {
				best, bi = float64(v), j
			}
		}
		out[i] = bi
	}
	return out
}

// Transpose returns the transpose of a rank-2 tensor as a new tensor.
func (t *Tensor) Transpose() *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Transpose requires rank-2 tensor")
	}
	out := New(t.shape[1], t.shape[0])
	TransposeInto(out, t)
	return out
}

// TransposeInto writes the transpose of the rank-2 tensor t into the
// preallocated out (c, r).
func TransposeInto(out, t *Tensor) {
	if len(t.shape) != 2 {
		panic("tensor: TransposeInto requires rank-2 tensor")
	}
	r, c := t.shape[0], t.shape[1]
	if len(out.shape) != 2 || out.shape[0] != c || out.shape[1] != r {
		panic(fmt.Sprintf("tensor: TransposeInto out shape %v, want (%d,%d)", out.shape, c, r))
	}
	od, td := out.Data, t.Data
	for i := 0; i < r; i++ {
		row := td[i*c : (i+1)*c]
		for j, v := range row {
			od[j*r+i] = v
		}
	}
}

// Dot returns the inner product of two tensors of equal volume,
// accumulated in float64 regardless of the compiled Elem.
func Dot(t, u *Tensor) float64 {
	if len(t.Data) != len(u.Data) {
		panic("tensor: Dot volume mismatch")
	}
	s := 0.0
	for i, v := range t.Data {
		s += float64(v) * float64(u.Data[i])
	}
	return s
}
