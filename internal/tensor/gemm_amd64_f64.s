//go:build amd64 && !noasm && !f32

#include "textflag.h"

// func gemmKernelAsm(c *float64, ldc int, a, b *float64, kc int, add bool)
//
// 4×4 float64 micro-kernel. The packed A panel holds 4 row elements per
// k (32 B), the packed B panel 4 column elements per k (32 B). Four YMM
// accumulators hold the output rows; the k loop is unrolled by two with
// a second accumulator set (Y8–Y11) so eight independent FMA chains
// cover the FMA latency. Per k: one 4-lane B load, four broadcasts of
// A, four FMAs.
TEXT ·gemmKernelAsm(SB), NOSPLIT, $0-41
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), R8
	SHLQ $3, R8            // row stride in bytes
	MOVQ a+16(FP), SI
	MOVQ b+24(FP), BX
	MOVQ kc+32(FP), CX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

	MOVQ CX, DX
	SHRQ $1, DX
	JZ   tail

loop2:
	VMOVUPD      (BX), Y4
	VBROADCASTSD (SI), Y5
	VFMADD231PD  Y4, Y5, Y0
	VBROADCASTSD 8(SI), Y5
	VFMADD231PD  Y4, Y5, Y1
	VBROADCASTSD 16(SI), Y5
	VFMADD231PD  Y4, Y5, Y2
	VBROADCASTSD 24(SI), Y5
	VFMADD231PD  Y4, Y5, Y3
	VMOVUPD      32(BX), Y6
	VBROADCASTSD 32(SI), Y7
	VFMADD231PD  Y6, Y7, Y8
	VBROADCASTSD 40(SI), Y7
	VFMADD231PD  Y6, Y7, Y9
	VBROADCASTSD 48(SI), Y7
	VFMADD231PD  Y6, Y7, Y10
	VBROADCASTSD 56(SI), Y7
	VFMADD231PD  Y6, Y7, Y11
	ADDQ $64, SI
	ADDQ $64, BX
	DECQ DX
	JNZ  loop2

tail:
	TESTQ $1, CX
	JZ    reduce
	VMOVUPD      (BX), Y4
	VBROADCASTSD (SI), Y5
	VFMADD231PD  Y4, Y5, Y0
	VBROADCASTSD 8(SI), Y5
	VFMADD231PD  Y4, Y5, Y1
	VBROADCASTSD 16(SI), Y5
	VFMADD231PD  Y4, Y5, Y2
	VBROADCASTSD 24(SI), Y5
	VFMADD231PD  Y4, Y5, Y3

reduce:
	VADDPD Y8, Y0, Y0
	VADDPD Y9, Y1, Y1
	VADDPD Y10, Y2, Y2
	VADDPD Y11, Y3, Y3

	MOVBLZX add+40(FP), AX
	TESTB   AL, AL
	JZ      store

	VADDPD  (DI), Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    R8, DI
	VADDPD  (DI), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    R8, DI
	VADDPD  (DI), Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ    R8, DI
	VADDPD  (DI), Y3, Y3
	VMOVUPD Y3, (DI)
	VZEROUPPER
	RET

store:
	VMOVUPD Y0, (DI)
	ADDQ    R8, DI
	VMOVUPD Y1, (DI)
	ADDQ    R8, DI
	VMOVUPD Y2, (DI)
	ADDQ    R8, DI
	VMOVUPD Y3, (DI)
	VZEROUPPER
	RET
