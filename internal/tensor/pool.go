package tensor

import (
	"math/bits"
	"sync"
)

// Workspace pool. Training iterates the same shapes over and over, so
// scratch tensors (im2col workspaces, matmul intermediates, gradient
// staging buffers) are recycled through sync.Pools bucketed by
// power-of-two capacity. A steady-state iteration that Gets and Puts
// its workspaces performs no heap allocation for them.

const (
	// minPoolBits is the smallest bucket (64 floats = 512 B); tinier
	// buffers are cheaper to allocate than to pool.
	minPoolBits = 6
	// maxPoolBits caps pooled buffers at 1<<28 floats (2 GiB); anything
	// larger falls through to the garbage collector.
	maxPoolBits = 28
)

var pools [maxPoolBits + 1]sync.Pool

// poolBits returns the bucket index for a buffer of n floats.
func poolBits(n int) int {
	b := bits.Len(uint(n - 1))
	if b < minPoolBits {
		b = minPoolBits
	}
	return b
}

// Get returns a tensor of the given shape backed by a pooled buffer.
// The contents are NOT zeroed — callers must fully overwrite the data
// (or use GetZeroed). Release the tensor with Put once no live view of
// it remains.
func Get(shape ...int) *Tensor {
	n := checkShape(shape)
	b := poolBits(n)
	if b > maxPoolBits {
		return New(shape...)
	}
	t, _ := pools[b].Get().(*Tensor)
	if t == nil {
		t = &Tensor{Data: make([]Elem, 1<<b)}
	}
	t.Data = t.Data[:n]
	t.shape = append(t.shape[:0], shape...)
	return t
}

// GetZeroed is Get with the data cleared.
func GetZeroed(shape ...int) *Tensor {
	t := Get(shape...)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// Put returns t's storage to the pool. t and every view sharing its
// data must not be used afterwards. Tensors whose backing array did not
// come from Get (non-power-of-two capacity) are silently dropped; Put
// of nil is a no-op.
func Put(t *Tensor) {
	if t == nil {
		return
	}
	c := cap(t.Data)
	if c < 1<<minPoolBits || c > 1<<maxPoolBits || c&(c-1) != 0 {
		return
	}
	t.Data = t.Data[:c]
	pools[bits.Len(uint(c))-1].Put(t)
}

// Ensure returns a tensor of the given shape, reusing t's storage when
// its capacity suffices (the contents are preserved up to the new
// volume, not zeroed). It is the building block for layer-owned output
// and gradient buffers that persist across training iterations:
//
//	l.out = tensor.Ensure(l.out, n, c)
//
// The returned tensor may be t itself with its shape rewritten, so
// callers must own t exclusively.
func Ensure(t *Tensor, shape ...int) *Tensor {
	n := checkShape(shape)
	if t == nil || cap(t.Data) < n {
		return New(shape...)
	}
	t.Data = t.Data[:n]
	t.shape = append(t.shape[:0], shape...)
	return t
}
