//go:build !race

package tensor

// raceEnabled relaxes steady-state allocation budgets under the race
// detector; see race_on_test.go.
const raceEnabled = false
