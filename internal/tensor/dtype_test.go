package tensor

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// Cross-dtype wire round-trips: whatever the compiled Elem, a frame
// written in either wire dtype (or the legacy pre-dtype framing) must
// decode, with values exact up to the narrower of the two widths.

// f32Tol bounds the error of a value that passed through float32 at
// least once: relative 2^-23 of the magnitude (the test data is O(1)).
const f32Tol = 2e-7

func legacyFrame(x *Tensor) []byte {
	out := binary.LittleEndian.AppendUint32(nil, uint32(x.Rank()))
	for _, d := range x.Shape() {
		out = binary.LittleEndian.AppendUint32(out, uint32(d))
	}
	for _, v := range x.Data {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(float64(v)))
	}
	return out
}

func TestCrossDtypeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randTensor(rng, 3, 7, 2)
	for _, tc := range []struct {
		name string
		enc  []byte
		tol  float64
	}{
		{"native", x.AppendBinary(nil), 0},
		{"f64", x.AppendBinaryAs(nil, DTypeF64), Tol(0, 0)},
		{"f32", x.AppendBinaryAs(nil, DTypeF32), Tol(f32Tol, 0)},
		{"legacy", legacyFrame(x), Tol(0, 0)},
	} {
		var y Tensor
		n, err := y.ReadFrom(bytes.NewReader(tc.enc))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if n != int64(len(tc.enc)) {
			t.Fatalf("%s: consumed %d of %d bytes", tc.name, n, len(tc.enc))
		}
		if !x.Equal(&y, tc.tol) {
			t.Fatalf("%s: round trip deviates beyond %g", tc.name, tc.tol)
		}
		// The in-place decoder must accept the same frames.
		z := New(x.Shape()...)
		if _, err := z.ReadInPlace(bytes.NewReader(tc.enc)); err != nil {
			t.Fatalf("%s: ReadInPlace: %v", tc.name, err)
		}
		if !x.Equal(z, tc.tol) {
			t.Fatalf("%s: ReadInPlace deviates beyond %g", tc.name, tc.tol)
		}
	}
}

func TestEncodedSizeAsMatchesFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randTensor(rng, 5, 4)
	for _, dt := range []byte{DTypeF64, DTypeF32} {
		if got, want := int64(len(x.AppendBinaryAs(nil, dt))), x.EncodedSizeAs(dt); got != want {
			t.Fatalf("dtype %#x: frame is %d bytes, EncodedSizeAs says %d", dt, got, want)
		}
	}
	if x.EncodedSize() != x.EncodedSizeAs(NativeDType) {
		t.Fatal("EncodedSize must describe the native framing")
	}
	// The f32 frame of a 20-element tensor is 4·20 bytes smaller than
	// the f64 frame, dtype byte and shape header identical.
	if d := x.EncodedSizeAs(DTypeF64) - x.EncodedSizeAs(DTypeF32); d != 4*20 {
		t.Fatalf("f64−f32 frame delta = %d, want 80", d)
	}
}

func TestReadInPlaceRejectsWrongShapeEitherDtype(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := randTensor(rng, 4, 4)
	for _, dt := range []byte{DTypeF64, DTypeF32} {
		enc := x.AppendBinaryAs(nil, dt)
		y := New(2, 8) // same volume, different shape
		if _, err := y.ReadInPlace(bytes.NewReader(enc)); err == nil {
			t.Fatalf("dtype %#x: shape mismatch accepted", dt)
		}
	}
}

func TestReadFromBoundsF32Frames(t *testing.T) {
	// A frame claiming 2^20 f32 elements backed by 8 bytes must be
	// rejected by the bytes.Reader extent check before allocating.
	b := []byte{DTypeF32}
	b = binary.LittleEndian.AppendUint32(b, 1)
	b = binary.LittleEndian.AppendUint32(b, 1<<20)
	b = append(b, make([]byte, 8)...)
	var y Tensor
	if _, err := y.ReadFrom(bytes.NewReader(b)); err == nil {
		t.Fatal("oversized f32 frame decoded without error")
	}
	if cap(y.Data) >= 1<<20 {
		t.Fatal("decoder allocated storage for a fabricated volume")
	}
}

func TestAppendBinaryPanicsOnUnknownDtype(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dtype byte must panic")
		}
	}()
	New(1).AppendBinaryAs(nil, 0x42)
}
