//go:build f32

package tensor

// Elem is the element type of tensor storage and of every compute
// kernel in this package: float32 under the `f32` build tag. See
// dtype64.go for the default and for what stays float64 regardless.
type Elem = float32

const (
	// DTypeName names the compiled element type ("float64"/"float32").
	DTypeName = "float32"
	// ElemBytes is the wire and storage size of one element.
	ElemBytes = 4
	// ElemEpsilon is the machine epsilon of Elem.
	ElemEpsilon = 0x1p-23
	// NativeDType is the wire dtype byte AppendBinary emits.
	NativeDType = DTypeF32
)

// Tol selects a test tolerance by compiled dtype; under `-tags f32` the
// explicitly chosen float32 tolerance applies. See dtype64.go.
func Tol(f64, f32 float64) float64 { return f32 }
