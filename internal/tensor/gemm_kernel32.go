//go:build f32

package tensor

// gemmKernelGo is the portable float32 micro-kernel for the 8-lane × 4-
// row tile (gemmMR=4, gemmNR=8). 32 scalar accumulators would spill, so
// the tile is computed as two register-resident 4×4 passes over the
// column halves of the packed B panel; per output element the k
// accumulation order is identical to the legacy kernels. c is row-major
// with stride ldc; add selects store vs accumulate.
func gemmKernelGo(c []Elem, ldc int, a, b []Elem, kc int, add bool) {
	for h := 0; h < 8; h += 4 {
		var c00, c01, c02, c03 Elem
		var c10, c11, c12, c13 Elem
		var c20, c21, c22, c23 Elem
		var c30, c31, c32, c33 Elem
		for p := 0; p < kc; p++ {
			ap := a[p*4 : p*4+4]
			bp := b[p*8+h : p*8+h+4]
			a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
			b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
			c20 += a2 * b0
			c21 += a2 * b1
			c22 += a2 * b2
			c23 += a2 * b3
			c30 += a3 * b0
			c31 += a3 * b1
			c32 += a3 * b2
			c33 += a3 * b3
		}
		r0 := c[0*ldc+h : 0*ldc+h+4]
		r1 := c[1*ldc+h : 1*ldc+h+4]
		r2 := c[2*ldc+h : 2*ldc+h+4]
		r3 := c[3*ldc+h : 3*ldc+h+4]
		if add {
			r0[0] += c00
			r0[1] += c01
			r0[2] += c02
			r0[3] += c03
			r1[0] += c10
			r1[1] += c11
			r1[2] += c12
			r1[3] += c13
			r2[0] += c20
			r2[1] += c21
			r2[2] += c22
			r2[3] += c23
			r3[0] += c30
			r3[1] += c31
			r3[2] += c32
			r3[3] += c33
			continue
		}
		r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
		r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
		r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
		r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
	}
}
