package tensor

import (
	"math/rand"
	"testing"
)

func TestGetPutRoundTrip(t *testing.T) {
	x := Get(3, 5)
	if x.Dim(0) != 3 || x.Dim(1) != 5 || x.Size() != 15 {
		t.Fatalf("Get(3,5) shape %v size %d", x.Shape(), x.Size())
	}
	x.Fill(7)
	Put(x)
	y := Get(15)
	if y.Size() != 15 {
		t.Fatalf("Get(15) size %d", y.Size())
	}
	Put(y)
}

func TestGetReusesBuffer(t *testing.T) {
	// sync.Pool may drop entries under GC pressure, so only assert the
	// happy path: an immediate Get after Put of the same size class.
	x := Get(100)
	p := &x.Data[0]
	Put(x)
	y := Get(128) // same power-of-two class as 100
	if &y.Data[0] != p {
		t.Log("pool did not reuse buffer (GC ran?) — not a failure")
	}
	Put(y)
}

func TestGetZeroed(t *testing.T) {
	x := Get(200)
	x.Fill(3)
	Put(x)
	y := GetZeroed(200)
	for i, v := range y.Data {
		if v != 0 {
			t.Fatalf("GetZeroed data[%d] = %v", i, v)
		}
	}
	Put(y)
}

func TestPutForeignTensorIsSafe(t *testing.T) {
	Put(nil)
	Put(FromSlice(make([]Elem, 100), 100)) // non-power-of-two cap: dropped
	Put(New(3))                            // below min class: dropped
}

func TestEnsureReusesStorage(t *testing.T) {
	x := New(4, 4)
	y := Ensure(x, 2, 3)
	if y != x {
		t.Fatal("Ensure must reuse sufficient storage")
	}
	if y.Dim(0) != 2 || y.Dim(1) != 3 || y.Size() != 6 {
		t.Fatalf("Ensure shape %v", y.Shape())
	}
	z := Ensure(y, 8, 8)
	if z == y {
		t.Fatal("Ensure must allocate when capacity is insufficient")
	}
	if w := Ensure(nil, 2, 2); w == nil || w.Size() != 4 {
		t.Fatal("Ensure(nil) must allocate")
	}
}

func TestPoolSteadyStateAllocs(t *testing.T) {
	// After warm-up, a Get/Put cycle must not allocate.
	for i := 0; i < 4; i++ {
		Put(Get(1000))
	}
	n := testing.AllocsPerRun(100, func() {
		w := Get(1000)
		w.Data[0] = 1
		Put(w)
	})
	if n > 0.5 {
		t.Fatalf("Get/Put allocates %v per cycle, want 0", n)
	}
}

func TestMatMulIntoVariantsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Odd sizes exercise the 4-wide remainder paths; the large case
	// crosses the parallel grain and the column tile.
	for _, dims := range [][3]int{{1, 1, 1}, {3, 2, 5}, {5, 7, 3}, {6, 5, 9}, {33, 65, 517}, {130, 70, 600}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		want := naiveMatMul(a, b)

		out := Full(3, m, n)
		MatMulInto(out, a, b)
		if !out.Equal(want, Tol(1e-9, 1e-3)) {
			t.Fatalf("MatMulInto mismatch for dims %v", dims)
		}

		at := a.Transpose() // (k, m)
		out.Fill(5)
		MatMulT1Into(out, at, b)
		if !out.Equal(want, Tol(1e-9, 1e-3)) {
			t.Fatalf("MatMulT1Into mismatch for dims %v", dims)
		}

		bt := b.Transpose() // (n, k)
		out.Fill(-2)
		MatMulT2Into(out, a, bt)
		if !out.Equal(want, Tol(1e-9, 1e-3)) {
			t.Fatalf("MatMulT2Into mismatch for dims %v", dims)
		}

		// Accumulating variants: out = 1 + a·b.
		ones := Full(1, m, n)
		wantAcc := Add(want, ones)
		acc := Full(1, m, n)
		MatMulT1Add(acc, at, b)
		if !acc.Equal(wantAcc, Tol(1e-9, 1e-3)) {
			t.Fatalf("MatMulT1Add mismatch for dims %v", dims)
		}
		acc = Full(1, m, n)
		MatMulT2Add(acc, a, bt)
		if !acc.Equal(wantAcc, Tol(1e-9, 1e-3)) {
			t.Fatalf("MatMulT2Add mismatch for dims %v", dims)
		}
	}
}

// TestMatMulSparseDispatchAgainstNaive drives the zero-skip kernels:
// ReLU-like operands (half zeros) must produce bit-identical products.
func TestMatMulSparseDispatchAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, dims := range [][3]int{{5, 7, 3}, {10, 48, 784}, {33, 65, 517}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(rng, m, k)
		for i := range a.Data {
			if rng.Float64() < 0.5 {
				a.Data[i] = 0
			}
		}
		b := randTensor(rng, k, n)
		want := naiveMatMul(a, b)
		if got := MatMul(a, b); !got.Equal(want, Tol(1e-9, 1e-3)) {
			t.Fatalf("sparse MatMul mismatch for dims %v", dims)
		}
		at := a.Transpose()
		out := Full(9, m, n)
		MatMulT1Into(out, at, b)
		if !out.Equal(want, Tol(1e-9, 1e-3)) {
			t.Fatalf("sparse MatMulT1Into mismatch for dims %v", dims)
		}
		bt := b.Transpose()
		out.Fill(-3)
		MatMulT2Into(out, a, bt)
		if !out.Equal(want, Tol(1e-9, 1e-3)) {
			t.Fatalf("sparse MatMulT2Into mismatch for dims %v", dims)
		}
		acc := Full(1, m, n)
		MatMulT2Add(acc, a, bt)
		if !acc.Equal(Add(want, Full(1, m, n)), Tol(1e-9, 1e-3)) {
			t.Fatalf("sparse MatMulT2Add mismatch for dims %v", dims)
		}
	}
}

func TestZipIntoAndTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randTensor(rng, 7, 9)
	b := randTensor(rng, 7, 9)
	out := New(7, 9)
	AddInto(out, a, b)
	if !out.Equal(Add(a, b), 0) {
		t.Fatal("AddInto mismatch")
	}
	SubInto(out, a, b)
	if !out.Equal(Sub(a, b), 0) {
		t.Fatal("SubInto mismatch")
	}
	MulInto(out, a, b)
	if !out.Equal(Mul(a, b), 0) {
		t.Fatal("MulInto mismatch")
	}
	tr := New(9, 7)
	TransposeInto(tr, a)
	if !tr.Equal(a.Transpose(), 0) {
		t.Fatal("TransposeInto mismatch")
	}
	v := randTensor(rng, 1, 9)
	inPlace := a.Clone()
	inPlace.AddRowVecInPlace(v)
	if !inPlace.Equal(AddRowVec(a, v), 0) {
		t.Fatal("AddRowVecInPlace mismatch")
	}
	bias := New(1, 9)
	a.SumRowsAdd(bias)
	a.SumRowsAdd(bias)
	if !bias.Equal(a.SumRows().Scale(2), Tol(1e-12, 1e-5)) {
		t.Fatal("SumRowsAdd must accumulate row sums")
	}
}
