package tensor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if x.Data[2*4+1] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]Elem{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape must alias data")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Reshape with wrong volume did not panic")
			}
		}()
		x.Reshape(4, 2)
	}()
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]Elem{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 42
	if x.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]Elem{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]Elem{5, 6, 7, 8}, 2, 2)
	if got := Add(a, b).Data; got[0] != 6 || got[3] != 12 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 4 || got[3] != 4 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data; got[0] != 5 || got[3] != 32 {
		t.Fatalf("Mul = %v", got)
	}
	if got := Div(b, a).Data; got[0] != 5 || !almostEq(float64(got[3]), 2, 1e-15) {
		t.Fatalf("Div = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]Elem{1, 2, 3}, 3)
	a.AddInPlace(FromSlice([]Elem{1, 1, 1}, 3))
	a.ScaleInPlace(2)
	a.AxpyInPlace(-1, FromSlice([]Elem{4, 6, 8}, 3))
	want := []Elem{0, 0, 0}
	for i, v := range a.Data {
		if v != want[i] {
			t.Fatalf("chained in-place ops = %v, want %v", a.Data, want)
		}
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]Elem{1, -2, 3, 4}, 2, 2)
	if x.Sum() != 6 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 1.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Max() != 4 || x.Min() != -2 {
		t.Fatalf("Max/Min = %v/%v", x.Max(), x.Min())
	}
	if !almostEq(x.Norm2(), math.Sqrt(30), 1e-12) {
		t.Fatalf("Norm2 = %v", x.Norm2())
	}
	sr := x.SumRows()
	if sr.At(0, 0) != 4 || sr.At(0, 1) != 2 {
		t.Fatalf("SumRows = %v", sr.Data)
	}
	sc := x.SumCols()
	if sc.At(0, 0) != -1 || sc.At(1, 0) != 7 {
		t.Fatalf("SumCols = %v", sc.Data)
	}
}

func TestArgMaxRows(t *testing.T) {
	x := FromSlice([]Elem{0.1, 0.9, 0.5, 0.2, 0.3, 0.1}, 2, 3)
	got := x.ArgMaxRows()
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	x := FromSlice([]Elem{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Transpose()
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("Transpose shape %v", y.Shape())
	}
	if y.At(0, 1) != 4 || y.At(2, 0) != 3 {
		t.Fatalf("Transpose data %v", y.Data)
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += a.At(i, kk) * b.At(kk, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = Elem(rng.NormFloat64())
	}
	return t
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {64, 33, 17}, {130, 70, 50}} {
		a := randTensor(rng, dims[0], dims[1])
		b := randTensor(rng, dims[1], dims[2])
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !got.Equal(want, Tol(1e-9, 1e-3)) {
			t.Fatalf("MatMul mismatch for dims %v", dims)
		}
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randTensor(rng, 9, 6)
	b := randTensor(rng, 9, 7)
	got := MatMulT1(a, b) // aᵀ·b
	want := naiveMatMul(a.Transpose(), b)
	if !got.Equal(want, Tol(1e-9, 1e-3)) {
		t.Fatal("MatMulT1 mismatch")
	}
	c := randTensor(rng, 5, 6)
	d := randTensor(rng, 8, 6)
	got2 := MatMulT2(c, d) // c·dᵀ
	want2 := naiveMatMul(c, d.Transpose())
	if !got2.Equal(want2, Tol(1e-9, 1e-3)) {
		t.Fatal("MatMulT2 mismatch")
	}
}

func TestMatMulAddAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 4, 5)
	b := randTensor(rng, 5, 6)
	out := Full(1, 4, 6)
	MatMulAdd(out, a, b)
	want := Add(naiveMatMul(a, b), Full(1, 4, 6))
	if !out.Equal(want, Tol(1e-9, 1e-4)) {
		t.Fatal("MatMulAdd must accumulate")
	}
}

func TestRowAndSliceRowsAreViews(t *testing.T) {
	x := FromSlice([]Elem{1, 2, 3, 4, 5, 6}, 3, 2)
	r := x.Row(1)
	r.Data[0] = 42
	if x.At(1, 0) != 42 {
		t.Fatal("Row must be a view")
	}
	s := x.SliceRows(1, 3)
	if s.Dim(0) != 2 || s.At(0, 0) != 42 || s.At(1, 1) != 6 {
		t.Fatalf("SliceRows wrong: %v", s.Data)
	}
	s.Data[3] = -1
	if x.At(2, 1) != -1 {
		t.Fatal("SliceRows must be a view")
	}
}

func TestConcatAndGather(t *testing.T) {
	a := FromSlice([]Elem{1, 2}, 1, 2)
	b := FromSlice([]Elem{3, 4, 5, 6}, 2, 2)
	c := ConcatRows(a, b)
	if c.Dim(0) != 3 || c.At(2, 1) != 6 {
		t.Fatalf("ConcatRows = %v", c.Data)
	}
	g := c.Gather([]int{2, 0})
	if g.At(0, 0) != 5 || g.At(1, 1) != 2 {
		t.Fatalf("Gather = %v", g.Data)
	}
}

func TestAddRowVec(t *testing.T) {
	x := FromSlice([]Elem{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]Elem{10, 20}, 1, 2)
	got := AddRowVec(x, v)
	want := []Elem{11, 22, 13, 24}
	for i, w := range want {
		if got.Data[i] != w {
			t.Fatalf("AddRowVec = %v", got.Data)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randTensor(rng, 3, 5, 2)
	var buf bytes.Buffer
	n, err := x.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != x.EncodedSize() {
		t.Fatalf("wrote %d bytes, EncodedSize says %d", n, x.EncodedSize())
	}
	var y Tensor
	if _, err := y.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !x.Equal(&y, 0) {
		t.Fatal("round trip not bit-exact")
	}
}

func TestSerializationRejectsGarbage(t *testing.T) {
	var y Tensor
	if _, err := y.ReadFrom(bytes.NewReader([]byte{255, 255, 255, 255})); err == nil {
		t.Fatal("expected error on implausible rank")
	}
}

// Property: MatMul is distributive over addition, (a+b)·c == a·c + b·c.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randTensor(rng, m, k)
		b := randTensor(rng, m, k)
		c := randTensor(rng, k, n)
		lhs := MatMul(Add(a, b), c)
		rhs := Add(MatMul(a, c), MatMul(b, c))
		return lhs.Equal(rhs, Tol(1e-9, 1e-4))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialisation round trip is the identity for random tensors.
func TestSerializationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := make([]int, 1+rng.Intn(3))
		for i := range shape {
			shape[i] = 1 + rng.Intn(6)
		}
		x := randTensor(rng, shape...)
		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			return false
		}
		var y Tensor
		if _, err := y.ReadFrom(&buf); err != nil {
			return false
		}
		return x.Equal(&y, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randTensor(rng, 1+rng.Intn(10), 1+rng.Intn(10))
		return x.Transpose().Transpose().Equal(x, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
