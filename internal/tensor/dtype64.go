//go:build !f32

package tensor

// Elem is the element type of tensor storage and of every compute
// kernel in this package. The default build uses float64; building with
// `-tags f32` switches storage and compute to float32 (halving memory
// traffic through the bandwidth-bound kernels) while keeping the
// correctness-sensitive state — optimiser moments, loss/reduction
// accumulators, batch-norm statistics — in float64.
type Elem = float64

const (
	// DTypeName names the compiled element type ("float64"/"float32").
	DTypeName = "float64"
	// ElemBytes is the wire and storage size of one element.
	ElemBytes = 8
	// ElemEpsilon is the machine epsilon of Elem.
	ElemEpsilon = 0x1p-52
	// NativeDType is the wire dtype byte AppendBinary emits.
	NativeDType = DTypeF64
)

// Tol selects a test tolerance by compiled dtype: f64 under the default
// build, f32 under `-tags f32`. Tests pass the float64-build tolerance
// they historically asserted plus an explicitly chosen float32
// counterpart (float32 tolerances do not follow from a uniform scale
// factor — they depend on the accumulation depth of the op under test).
func Tol(f64, f32 float64) float64 { return f64 }
