package tensor

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Serialisation uses a small explicit binary framing (dtype byte, shape
// rank, dims, then the raw little-endian payload) rather than gob so
// that the wire size is predictable — the communication-complexity
// experiments (Tables III/IV) account bytes from these encodings.
//
// The leading dtype byte (DTypeF64/DTypeF32) lets a float32 build ship
// 4-byte elements natively and lets either build decode the other's
// frames. Frames written before the dtype byte existed started directly
// with the rank word, whose low byte is 1..8 — disjoint from the dtype
// byte values — so the decoders transparently accept legacy float64
// frames (this is what keeps pre-dtype checkpoints loadable).
//
// The hot wire paths (MD-GAN batches, feedbacks and swaps every
// iteration) use AppendBinary into exact-size buffers and the in-place
// decoders, so steady-state messaging neither grows bytes.Buffers nor
// allocates intermediate payload scratch.

// Wire dtype bytes. The values are chosen outside 1..8 (a legacy
// frame's first byte is its rank) so the two framings self-distinguish.
const (
	DTypeF64 byte = 0xF8
	DTypeF32 byte = 0xF4
)

// dtypeSize returns the payload bytes per element of a wire dtype.
func dtypeSize(dt byte) int {
	if dt == DTypeF32 {
		return 4
	}
	return 8
}

// EncodedSize returns the number of bytes WriteTo will produce.
func (t *Tensor) EncodedSize() int64 { return t.EncodedSizeAs(NativeDType) }

// EncodedSizeAs returns the number of bytes AppendBinaryAs(_, dt) will
// produce.
func (t *Tensor) EncodedSizeAs(dt byte) int64 {
	return int64(1 + 4 + 4*len(t.shape) + dtypeSize(dt)*len(t.Data))
}

// AppendBinary appends t's wire framing, with the payload in the
// compiled element width, to dst and returns the extended slice.
// Appending to a buffer with sufficient capacity performs no
// allocation.
func (t *Tensor) AppendBinary(dst []byte) []byte {
	return t.AppendBinaryAs(dst, NativeDType)
}

// AppendBinaryAs appends t's wire framing with the payload encoded in
// the given wire dtype, converting per element when dt is not the
// compiled width (the FP32 feedback compression and the cross-dtype
// tests use this; hot paths use AppendBinary).
func (t *Tensor) AppendBinaryAs(dst []byte, dt byte) []byte {
	dst = append(dst, dt)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.shape)))
	for _, d := range t.shape {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
	}
	switch dt {
	case DTypeF64:
		for _, v := range t.Data {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(float64(v)))
		}
	case DTypeF32:
		for _, v := range t.Data {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v)))
		}
	default:
		panic(fmt.Sprintf("tensor: unknown wire dtype byte %#x", dt))
	}
	return dst
}

// WriteTo encodes t to w. It implements io.WriterTo.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	buf := t.AppendBinary(make([]byte, 0, t.EncodedSize()))
	n, err := w.Write(buf)
	return int64(n), err
}

// maxDecodeVol caps the element count a decoded frame may claim (2^30
// floats, far beyond any tensor this system ships); the product check
// against it also rejects dimension products that would overflow int,
// and the constant itself fits a 32-bit int.
const maxDecodeVol = 1 << 30

// readHeader parses the dtype/rank/dims framing, returning the wire
// dtype, the shape (decoded into shapeBuf when its capacity suffices)
// and the volume. A first byte in 1..8 selects the legacy pre-dtype
// framing: the byte is the low byte of the rank word and the payload is
// float64.
func readHeader(r io.Reader, shapeBuf []int) (dt byte, shape []int, vol int, read int64, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, 0, 0, fmt.Errorf("tensor: read dtype: %w", err)
	}
	read = 1
	switch hdr[0] {
	case DTypeF64, DTypeF32:
		dt = hdr[0]
		if _, err = io.ReadFull(r, hdr[:4]); err != nil {
			return 0, nil, 0, read, fmt.Errorf("tensor: read rank: %w", err)
		}
		read += 4
	default:
		// Legacy framing: hdr[0] is the low byte of the rank word and an
		// implausible value fails the rank check below.
		dt = DTypeF64
		if _, err = io.ReadFull(r, hdr[1:4]); err != nil {
			return 0, nil, 0, read, fmt.Errorf("tensor: read rank: %w", err)
		}
		read += 3
	}
	rank := int(binary.LittleEndian.Uint32(hdr[:]))
	if rank <= 0 || rank > 8 {
		return 0, nil, 0, read, fmt.Errorf("tensor: implausible rank %d", rank)
	}
	var dims [32]byte
	if _, err = io.ReadFull(r, dims[:4*rank]); err != nil {
		return 0, nil, 0, read, fmt.Errorf("tensor: read dims: %w", err)
	}
	read += int64(4 * rank)
	shape = shapeBuf[:0]
	vol = 1
	for i := 0; i < rank; i++ {
		d := int(binary.LittleEndian.Uint32(dims[4*i:]))
		if d <= 0 {
			return 0, nil, 0, read, fmt.Errorf("tensor: non-positive dim %d", d)
		}
		if d > maxDecodeVol/vol {
			return 0, nil, 0, read, fmt.Errorf("tensor: implausible frame volume (dims %v…)", shape)
		}
		shape = append(shape, d)
		vol *= d
	}
	return dt, shape, vol, read, nil
}

// readPayload streams len(data) elements of wire dtype dt from r into
// data using a fixed stack chunk, converting to the compiled element
// width and avoiding a payload-sized byte scratch.
func readPayload(r io.Reader, data []Elem, dt byte) (int64, error) {
	es := dtypeSize(dt)
	var chunk [8192]byte // divisible by both element widths
	read := int64(0)
	for off := 0; off < len(data); {
		want := (len(data) - off) * es
		if want > len(chunk) {
			want = len(chunk)
		}
		if _, err := io.ReadFull(r, chunk[:want]); err != nil {
			return read, fmt.Errorf("tensor: read payload: %w", err)
		}
		read += int64(want)
		if dt == DTypeF32 {
			for i := 0; i < want; i += 4 {
				data[off] = Elem(math.Float32frombits(binary.LittleEndian.Uint32(chunk[i:])))
				off++
			}
		} else {
			for i := 0; i < want; i += 8 {
				data[off] = Elem(math.Float64frombits(binary.LittleEndian.Uint64(chunk[i:])))
				off++
			}
		}
	}
	return read, nil
}

// ReadFrom decodes a tensor previously written with WriteTo (either
// wire dtype, or the legacy pre-dtype float64 framing), replacing t's
// shape and data. Existing capacity is reused when sufficient, so
// decoding repeatedly into the same tensor reaches a steady state with
// no allocation. It implements io.ReaderFrom.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	// Decode the header into a local scratch so a mid-header error
	// cannot leave t with a half-updated shape.
	var shapeBuf [8]int
	dt, shape, vol, read, err := readHeader(r, shapeBuf[:0])
	if err != nil {
		return read, err
	}
	// When the frame's true extent is knowable (the wire paths all
	// decode from in-memory payloads), a claimed volume beyond it is
	// corrupt: reject before allocating payload-sized storage.
	if br, ok := r.(*bytes.Reader); ok && int64(vol) > int64(br.Len())/int64(dtypeSize(dt)) {
		return read, fmt.Errorf("tensor: frame claims %d elements, %d bytes remain", vol, br.Len())
	}
	t.shape = append(t.shape[:0], shape...)
	if cap(t.Data) >= vol {
		t.Data = t.Data[:vol]
	} else {
		t.Data = make([]Elem, vol)
	}
	n, err := readPayload(r, t.Data, dt)
	read += n
	if err != nil {
		return read, err
	}
	return read, nil
}

// ReadInPlace decodes a frame whose shape must equal t's, streaming the
// payload directly into t.Data with no allocation. It is the swap-path
// primitive: a worker adopting a peer's discriminator decodes every
// parameter straight into its own storage.
func (t *Tensor) ReadInPlace(r io.Reader) (int64, error) {
	var shapeBuf [8]int
	dt, shape, vol, read, err := readHeader(r, shapeBuf[:0])
	if err != nil {
		return read, err
	}
	if len(shape) != len(t.shape) {
		return read, fmt.Errorf("tensor: ReadInPlace rank %d, want %d", len(shape), len(t.shape))
	}
	for i, d := range shape {
		if t.shape[i] != d {
			return read, fmt.Errorf("tensor: ReadInPlace shape %v, want %v", shape, t.shape)
		}
	}
	_ = vol
	n, err := readPayload(r, t.Data, dt)
	read += n
	return read, err
}
