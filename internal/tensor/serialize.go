package tensor

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Serialisation uses a small explicit binary framing (shape rank, dims,
// then raw little-endian float64 payload) rather than gob so that the
// wire size is predictable — the communication-complexity experiments
// (Tables III/IV) account bytes from these encodings.
//
// The hot wire paths (MD-GAN batches, feedbacks and swaps every
// iteration) use AppendBinary into exact-size buffers and the in-place
// decoders, so steady-state messaging neither grows bytes.Buffers nor
// allocates intermediate payload scratch.

// EncodedSize returns the number of bytes WriteTo will produce.
func (t *Tensor) EncodedSize() int64 {
	return int64(4 + 4*len(t.shape) + 8*len(t.Data))
}

// AppendBinary appends t's wire framing to dst and returns the extended
// slice. Appending to a buffer with sufficient capacity performs no
// allocation.
func (t *Tensor) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.shape)))
	for _, d := range t.shape {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
	}
	for _, v := range t.Data {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// WriteTo encodes t to w. It implements io.WriterTo.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	buf := t.AppendBinary(make([]byte, 0, t.EncodedSize()))
	n, err := w.Write(buf)
	return int64(n), err
}

// maxDecodeVol caps the element count a decoded frame may claim (2^30
// floats = 8 GiB of payload, far beyond any tensor this system ships);
// the product check against it also rejects dimension products that
// would overflow int, and the constant itself fits a 32-bit int.
const maxDecodeVol = 1 << 30

// readHeader parses the rank/dims framing, returning the shape (decoded
// into shapeBuf when its capacity suffices) and the volume.
func readHeader(r io.Reader, shapeBuf []int) (shape []int, vol int, read int64, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, 0, fmt.Errorf("tensor: read rank: %w", err)
	}
	rank := int(binary.LittleEndian.Uint32(hdr[:]))
	if rank <= 0 || rank > 8 {
		return nil, 0, 4, fmt.Errorf("tensor: implausible rank %d", rank)
	}
	read = 4
	var dims [32]byte
	if _, err = io.ReadFull(r, dims[:4*rank]); err != nil {
		return nil, 0, read, fmt.Errorf("tensor: read dims: %w", err)
	}
	read += int64(4 * rank)
	shape = shapeBuf[:0]
	vol = 1
	for i := 0; i < rank; i++ {
		d := int(binary.LittleEndian.Uint32(dims[4*i:]))
		if d <= 0 {
			return nil, 0, read, fmt.Errorf("tensor: non-positive dim %d", d)
		}
		if d > maxDecodeVol/vol {
			return nil, 0, read, fmt.Errorf("tensor: implausible frame volume (dims %v…)", shape)
		}
		shape = append(shape, d)
		vol *= d
	}
	return shape, vol, read, nil
}

// readPayload streams vol float64 values from r into data using a fixed
// stack chunk, avoiding a payload-sized byte scratch.
func readPayload(r io.Reader, data []float64) (int64, error) {
	var chunk [8192]byte
	read := int64(0)
	for off := 0; off < len(data); {
		want := (len(data) - off) * 8
		if want > len(chunk) {
			want = len(chunk)
		}
		if _, err := io.ReadFull(r, chunk[:want]); err != nil {
			return read, fmt.Errorf("tensor: read payload: %w", err)
		}
		read += int64(want)
		for i := 0; i < want; i += 8 {
			data[off] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[i:]))
			off++
		}
	}
	return read, nil
}

// ReadFrom decodes a tensor previously written with WriteTo, replacing
// t's shape and data. Existing capacity is reused when sufficient, so
// decoding repeatedly into the same tensor reaches a steady state with
// no allocation. It implements io.ReaderFrom.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	// Decode the header into a local scratch so a mid-header error
	// cannot leave t with a half-updated shape.
	var shapeBuf [8]int
	shape, vol, read, err := readHeader(r, shapeBuf[:0])
	if err != nil {
		return read, err
	}
	// When the frame's true extent is knowable (the wire paths all
	// decode from in-memory payloads), a claimed volume beyond it is
	// corrupt: reject before allocating payload-sized storage.
	if br, ok := r.(*bytes.Reader); ok && int64(vol) > int64(br.Len())/8 {
		return read, fmt.Errorf("tensor: frame claims %d floats, %d bytes remain", vol, br.Len())
	}
	t.shape = append(t.shape[:0], shape...)
	if cap(t.Data) >= vol {
		t.Data = t.Data[:vol]
	} else {
		t.Data = make([]float64, vol)
	}
	n, err := readPayload(r, t.Data)
	read += n
	if err != nil {
		return read, err
	}
	return read, nil
}

// ReadInPlace decodes a frame whose shape must equal t's, streaming the
// payload directly into t.Data with no allocation. It is the swap-path
// primitive: a worker adopting a peer's discriminator decodes every
// parameter straight into its own storage.
func (t *Tensor) ReadInPlace(r io.Reader) (int64, error) {
	var shapeBuf [8]int
	shape, vol, read, err := readHeader(r, shapeBuf[:0])
	if err != nil {
		return read, err
	}
	if len(shape) != len(t.shape) {
		return read, fmt.Errorf("tensor: ReadInPlace rank %d, want %d", len(shape), len(t.shape))
	}
	for i, d := range shape {
		if t.shape[i] != d {
			return read, fmt.Errorf("tensor: ReadInPlace shape %v, want %v", shape, t.shape)
		}
	}
	_ = vol
	n, err := readPayload(r, t.Data)
	read += n
	return read, err
}
