package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Serialisation uses a small explicit binary framing (shape rank, dims,
// then raw little-endian float64 payload) rather than gob so that the
// wire size is predictable — the communication-complexity experiments
// (Tables III/IV) account bytes from these encodings.

// EncodedSize returns the number of bytes WriteTo will produce.
func (t *Tensor) EncodedSize() int64 {
	return int64(4 + 4*len(t.shape) + 8*len(t.Data))
}

// WriteTo encodes t to w. It implements io.WriterTo.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, t.EncodedSize())
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(t.shape)))
	off := 4
	for _, d := range t.shape {
		binary.LittleEndian.PutUint32(buf[off:off+4], uint32(d))
		off += 4
	}
	for _, v := range t.Data {
		binary.LittleEndian.PutUint64(buf[off:off+8], math.Float64bits(v))
		off += 8
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadFrom decodes a tensor previously written with WriteTo, replacing
// t's shape and data. It implements io.ReaderFrom.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("tensor: read rank: %w", err)
	}
	rank := int(binary.LittleEndian.Uint32(hdr[:]))
	if rank <= 0 || rank > 8 {
		return 4, fmt.Errorf("tensor: implausible rank %d", rank)
	}
	read := int64(4)
	dims := make([]byte, 4*rank)
	if _, err := io.ReadFull(r, dims); err != nil {
		return read, fmt.Errorf("tensor: read dims: %w", err)
	}
	read += int64(len(dims))
	shape := make([]int, rank)
	vol := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(dims[4*i:]))
		if shape[i] <= 0 {
			return read, fmt.Errorf("tensor: non-positive dim %d", shape[i])
		}
		vol *= shape[i]
	}
	payload := make([]byte, 8*vol)
	if _, err := io.ReadFull(r, payload); err != nil {
		return read, fmt.Errorf("tensor: read payload: %w", err)
	}
	read += int64(len(payload))
	data := make([]float64, vol)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	t.shape = shape
	t.Data = data
	return read, nil
}
