//go:build !amd64 || noasm

package tensor

// Portable fallback: no assembly micro-kernel is compiled in, either
// because the target is not amd64 or because the `noasm` build tag
// asked for the pure-Go kernels (the reference the asm variants are
// validated against).

const gemmAsmCompiled = false

// gemmUseAsm is permanently false on this build; microKernel always
// takes the Go kernel.
var gemmUseAsm = false

func detectAsmAvailable() bool { return false }

// gemmKernelAsm exists so microKernel links; gemmUseAsm can never be
// true here.
func gemmKernelAsm(c *Elem, ldc int, a, b *Elem, kc int, add bool) {
	panic("tensor: assembly micro-kernel called on a noasm build")
}
