//go:build !amd64 || noasm

package tensor

// Portable fallback: no assembly micro-kernel is compiled in, either
// because the target is not amd64 or because the `noasm` build tag
// asked for the pure-Go kernels (the reference the asm variants are
// validated against). Only the generic tier exists here, so the tier
// dispatch in gemm.go never leaves its zero value and
// MDGAN_GEMM_KERNEL has nothing to force.

const (
	gemmAsmCompiled = false
	gemmHasAVX2     = false
	gemmHasAVX512   = false
)

// gemmKernelAsm exists so microKernel links; the tierAVX2 dispatch is
// unreachable on this build.
func gemmKernelAsm(c *Elem, ldc int, a, b *Elem, kc int, add bool) {
	panic("tensor: assembly micro-kernel called on a noasm build")
}

// gemmKernelAsm512 exists so the tierAVX512 dispatch links; it is
// unreachable on this build.
func gemmKernelAsm512(c *Elem, ldc int, a, b *Elem, kc int, add bool, mr, nr int) {
	panic("tensor: AVX-512 micro-kernel called on a noasm build")
}
