//go:build amd64 && !noasm

package tensor

import "os"

// Runtime CPU feature detection for the assembly micro-kernels. The
// probes run once at init: CPUID must report the ISA bits and OSXSAVE,
// and XGETBV must confirm the OS context-switches the corresponding
// register state — otherwise the first VEX/EVEX instruction would
// fault. Build with `-tags noasm` to compile the probes and the
// assembly out entirely (gemm_noasm.go pins the generic tier).

// gemmKernelAsm is the AVX2+FMA micro-kernel (gemm_amd64_f64.s /
// gemm_amd64_f32.s, one per compiled dtype): it computes the full
// base-tile gemmMR×gemmNR block from the packed panels at a and b and
// stores it to (add=false) or accumulates it into (add=true) c with row
// stride ldc. Only reachable on the tierAVX2 dispatch — the probe must
// have passed.
//
//go:noescape
func gemmKernelAsm(c *Elem, ldc int, a, b *Elem, kc int, add bool)

// gemmKernelAsm512 is the AVX-512 micro-kernel
// (gemm_amd64_f64_avx512.s / gemm_amd64_f32_avx512.s): it computes an
// mr×nr tile (mr ≤ gemmMR512 rows, nr ≤ gemmNR512 columns) from packed
// full-width panels, masking the C loads/stores to the first nr lanes
// via a K register and stopping the row walk at mr — so ragged edge
// tiles need no stack-tile merge. Only reachable on the tierAVX512
// dispatch.
//
//go:noescape
func gemmKernelAsm512(c *Elem, ldc int, a, b *Elem, kc int, add bool, mr, nr int)

// cpuidRaw executes CPUID for the given leaf/subleaf
// (gemm_cpu_amd64.s).
func cpuidRaw(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbvRaw reads XCR0 (gemm_cpu_amd64.s); only call it when CPUID
// reports OSXSAVE.
func xgetbvRaw() (eax, edx uint32)

const gemmAsmCompiled = true

// Cached CPU probes; gemm.go's tier dispatch (bestGemmTier,
// ForceGemmKernel) consumes them.
var (
	gemmHasAVX2   = detectGemmAVX2()
	gemmHasAVX512 = detectGemmAVX512()
)

// The env override runs at init so MDGAN_GEMM_KERNEL forces a tier for
// a whole process (verify.sh's kernel matrix); an unknown or
// unavailable name falls back to the best available tier.
func init() {
	if !ForceGemmKernel(os.Getenv("MDGAN_GEMM_KERNEL")) {
		applyGemmTier(bestGemmTier())
	}
}

// osSavesAVX reports OSXSAVE + AVX CPU support and YMM state saving;
// both VEX tiers require it.
func osSavesAVX() bool {
	maxLeaf, _, _, _ := cpuidRaw(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidRaw(1, 0)
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	if ecx1&cpuidFMA == 0 || ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS context-switches YMM state.
	xcr0, _ := xgetbvRaw()
	return xcr0&0x6 == 0x6
}

func detectGemmAVX2() bool {
	if !osSavesAVX() {
		return false
	}
	_, ebx7, _, _ := cpuidRaw(7, 0)
	const cpuidAVX2 = 1 << 5
	return ebx7&cpuidAVX2 != 0
}

func detectGemmAVX512() bool {
	if !osSavesAVX() {
		return false
	}
	_, ebx7, _, _ := cpuidRaw(7, 0)
	const (
		cpuidAVX512F  = 1 << 16
		cpuidAVX512DQ = 1 << 17
		cpuidAVX512BW = 1 << 30
		cpuidAVX512VL = 1 << 31
	)
	const need = cpuidAVX512F | cpuidAVX512DQ | cpuidAVX512BW | cpuidAVX512VL
	if ebx7&need != need {
		return false
	}
	// XCR0 0xE6: SSE+AVX plus opmask (bit 5), ZMM_Hi256 (bit 6) and
	// Hi16_ZMM (bit 7) — the OS context-switches K and ZMM state.
	xcr0, _ := xgetbvRaw()
	return xcr0&0xE6 == 0xE6
}
