//go:build amd64 && !noasm

package tensor

import "os"

// Runtime CPU feature detection for the AVX2+FMA micro-kernel. The
// probe runs once at init: CPUID must report AVX, FMA, AVX2 and
// OSXSAVE, and XGETBV must confirm the OS saves the XMM+YMM register
// state — otherwise the first VEX instruction would fault. Build with
// `-tags noasm` to compile the probe and the assembly out entirely
// (gemm_noasm.go pins gemmUseAsm to false).

// gemmKernelAsm is the AVX2+FMA micro-kernel (gemm_amd64_f64.s /
// gemm_amd64_f32.s, one per compiled dtype): it computes the full
// gemmMR×gemmNR tile from the packed panels at a and b and stores it to
// (add=false) or accumulates it into (add=true) c with row stride ldc.
// Only reachable when gemmUseAsm — the caller must have verified the
// CPU features via detectGemmAsm.
//
//go:noescape
func gemmKernelAsm(c *Elem, ldc int, a, b *Elem, kc int, add bool)

// cpuidRaw executes CPUID for the given leaf/subleaf
// (gemm_cpu_amd64.s).
func cpuidRaw(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbvRaw reads XCR0 (gemm_cpu_amd64.s); only call it when CPUID
// reports OSXSAVE.
func xgetbvRaw() (eax, edx uint32)

const gemmAsmCompiled = true

// gemmAsmAvailable caches the CPU probe; gemmUseAsm gates microKernel
// onto the assembly path (tests flip it via setGemmAsm to cover both
// kernels in one binary, and MDGAN_GEMM_KERNEL=generic forces the
// portable kernel without a rebuild — verify.sh uses it to run the
// engine-equivalence gates under the pure-Go kernel on asm builds).
var (
	gemmAsmAvailable = detectGemmAsm()
	gemmUseAsm       = gemmAsmAvailable && os.Getenv("MDGAN_GEMM_KERNEL") != "generic"
)

func detectAsmAvailable() bool { return gemmAsmAvailable }

func detectGemmAsm() bool {
	maxLeaf, _, _, _ := cpuidRaw(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidRaw(1, 0)
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	if ecx1&cpuidFMA == 0 || ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS context-switches YMM state.
	if xcr0, _ := xgetbvRaw(); xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidRaw(7, 0)
	const cpuidAVX2 = 1 << 5
	return ebx7&cpuidAVX2 != 0
}
