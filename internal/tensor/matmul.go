package tensor

import (
	"fmt"

	"mdgan/internal/parallel"
)

// Matmul dispatch. Every entry point samples the left operand and picks
// one of three kernel families, in this order (see gemm.go for the
// packed layer's architecture):
//
//  1. markedly sparse A → the legacy zero-skipping row kernels below
//     (ReLU activations and ReLU-gated gradients are ~half zeros; the
//     skip beats any dense kernel there, and packing would only bury
//     the zeros);
//  2. small products → the legacy column-tiled 4-wide kernels below
//     (packing two operands costs more than it saves under
//     gemmMinWork multiply-adds);
//  3. everything else → the packed, register-blocked GEMM (gemm.go),
//     which absorbs the T1/T2 transposes into packing and runs the
//     AVX2+FMA micro-kernel when the CPU has it.

const (
	// matMulGrain is the m·k·n product below which a matmul runs inline
	// instead of fanning out to the scheduler.
	matMulGrain = 1 << 15
	// mmRowGrainMin keeps split row ranges wide enough for the 4-wide
	// accumulator unrolling: chunks never drop below 8 rows, so at most
	// three tail rows per chunk run the scalar loop.
	mmRowGrainMin = 8
	// mmTile is the column-tile width: four float64 accumulator rows of
	// this width occupy 16 KiB, comfortably inside L1 alongside the
	// streamed operand row.
	mmTile = 512
	// sparseSamples and sparseNum/sparseDen: sample up to sparseSamples
	// elements of the left operand; at ≥ sparseNum/sparseDen zeros the
	// zero-skip kernel wins — against the *scalar* dense kernels. The
	// skip saves work proportionally (~2× at ReLU's ~50% zeros), but the
	// AVX2+FMA micro-kernel beats the scalar kernels by ~6× (and the
	// AVX-512 kernel by more), so when the packed path would run an
	// assembly kernel the skip only pays once the zero fraction clears a
	// per-tier threshold: ~81% for AVX2, ~92% for AVX-512.
	sparseSamples = 256
	sparseNum     = 1
	sparseDen     = 4
	sparseNumAsm  = 13
	sparseDenAsm  = 16
	sparseNum512  = 11
	sparseDen512  = 12
)

// leftSparse samples a and reports whether the zero-skip kernels should
// handle a matmul of the given m·k·n work (ReLU activations hit ~50%
// zeros; dense data ~0%). The threshold is kernel-aware: see the
// constant block above.
func leftSparse(a []Elem, work int) bool {
	num, den := sparseNum, sparseDen
	if work >= gemmMinWork {
		switch gemmTier {
		case tierAVX512:
			num, den = sparseNum512, sparseDen512
		case tierAVX2:
			num, den = sparseNumAsm, sparseDenAsm
		}
	}
	n := len(a)
	step := 1
	if n > sparseSamples {
		step = n / sparseSamples
	}
	zeros, samples := 0, 0
	for i := 0; i < n; i += step {
		samples++
		if a[i] == 0 {
			zeros++
		}
	}
	return zeros*den >= samples*num
}

// MatMul computes the matrix product a·b of two rank-2 tensors
// (m, k)·(k, n) → (m, n).
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	out := New(m, n)
	matMulInto(out, a, b, m, k, n, false)
	return out
}

// MatMulInto computes out = a·b into the preallocated out (m, n).
func MatMulInto(out, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	checkOutShape("MatMulInto", out, m, n)
	matMulInto(out, a, b, m, k, n, false)
}

// MatMulAdd computes out += a·b in place; out must be (m, n).
func MatMulAdd(out, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	checkOutShape("MatMulAdd", out, m, n)
	matMulInto(out, a, b, m, k, n, true)
}

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	if a.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v · %v", a.shape, b.shape))
	}
	return a.shape[0], a.shape[1], b.shape[1]
}

func checkOutShape(op string, out *Tensor, m, n int) {
	if len(out.shape) != 2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s out shape %v, want (%d,%d)", op, out.shape, m, n))
	}
}

func matMulInto(out, a, b *Tensor, m, k, n int, accumulate bool) {
	if leftSparse(a.Data, m*k*n) {
		if m*k*n < matMulGrain {
			matMulRowsSkip(out.Data, a.Data, b.Data, k, n, 0, m, accumulate)
			return
		}
		parallel.ForGrain(m, mmRowGrain(k, n), func(s, e int) {
			matMulRowsSkip(out.Data, a.Data, b.Data, k, n, s, e, accumulate)
		})
		return
	}
	if m*k*n >= gemmMinWork {
		gemm(out.Data, n, m, n, k, a.Data, k, 1, b.Data, n, 1, nil, accumulate)
		return
	}
	matMulRows(out.Data, a.Data, b.Data, k, n, 0, m, accumulate)
}

// mmRowGrain sizes the row ranges a matmul splits into so one task
// carries at least matMulGrain multiply-adds: fine enough for stealing
// to balance K concurrent workers' kernels, coarse enough to amortise
// the hand-off.
func mmRowGrain(k, n int) int {
	g := matMulGrain / (k*n + 1)
	if g < mmRowGrainMin {
		g = mmRowGrainMin
	}
	return g
}

// matMulRowsSkip is the sparse-A variant: classic ikj with a zero-skip
// on each streamed A element, so rows of B are only touched for
// non-zero activations.
func matMulRowsSkip(out, a, b []Elem, k, n, i0, i1 int, accumulate bool) {
	for i := i0; i < i1; i++ {
		row := out[i*n : (i+1)*n]
		if !accumulate {
			for j := range row {
				row[j] = 0
			}
		}
		arow := a[i*k : (i+1)*k]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			brow = brow[:len(row)]
			for j, bv := range brow {
				row[j] += av * bv
			}
		}
	}
}

// matMulRows computes out[i0:i1] (+)= a[i0:i1]·b, tiling the n columns.
func matMulRows(out, a, b []Elem, k, n, i0, i1 int, accumulate bool) {
	for j0 := 0; j0 < n; j0 += mmTile {
		j1 := j0 + mmTile
		if j1 > n {
			j1 = n
		}
		i := i0
		for ; i+4 <= i1; i += 4 {
			r0 := out[(i+0)*n+j0 : (i+0)*n+j1]
			// Re-slicing r1..r3 to len(r0) once lets the compiler drop
			// the bounds checks in the 4-wide accumulator loop below.
			r1 := out[(i+1)*n+j0 : (i+1)*n+j1][:len(r0)]
			r2 := out[(i+2)*n+j0 : (i+2)*n+j1][:len(r0)]
			r3 := out[(i+3)*n+j0 : (i+3)*n+j1][:len(r0)]
			if !accumulate {
				for j := range r0 {
					r0[j], r1[j], r2[j], r3[j] = 0, 0, 0, 0
				}
			}
			a0 := a[(i+0)*k : (i+1)*k]
			a1 := a[(i+1)*k : (i+2)*k]
			a2 := a[(i+2)*k : (i+3)*k]
			a3 := a[(i+3)*k : (i+4)*k]
			for kk := 0; kk < k; kk++ {
				v0, v1, v2, v3 := a0[kk], a1[kk], a2[kk], a3[kk]
				brow := b[kk*n+j0 : kk*n+j1]
				brow = brow[:len(r0)]
				for j, bv := range brow {
					r0[j] += v0 * bv
					r1[j] += v1 * bv
					r2[j] += v2 * bv
					r3[j] += v3 * bv
				}
			}
		}
		for ; i < i1; i++ {
			row := out[i*n+j0 : i*n+j1]
			if !accumulate {
				for j := range row {
					row[j] = 0
				}
			}
			arow := a[i*k : (i+1)*k]
			for kk, av := range arow {
				brow := b[kk*n+j0 : kk*n+j1]
				brow = brow[:len(row)]
				for j, bv := range brow {
					row[j] += av * bv
				}
			}
		}
	}
}

// MatMulT1 computes aᵀ·b for a (k, m), b (k, n) → (m, n) without
// materialising the transpose.
func MatMulT1(a, b *Tensor) *Tensor {
	k, m, n := checkMatMulT1(a, b)
	out := New(m, n)
	matMulT1Into(out, a, b, k, m, n, false)
	return out
}

// MatMulT1Into computes out = aᵀ·b into the preallocated out (m, n).
func MatMulT1Into(out, a, b *Tensor) {
	k, m, n := checkMatMulT1(a, b)
	checkOutShape("MatMulT1Into", out, m, n)
	matMulT1Into(out, a, b, k, m, n, false)
}

// MatMulT1Add computes out += aᵀ·b in place; out must be (m, n). It is
// the natural shape of weight-gradient accumulation (dW += xᵀ·g).
func MatMulT1Add(out, a, b *Tensor) {
	k, m, n := checkMatMulT1(a, b)
	checkOutShape("MatMulT1Add", out, m, n)
	matMulT1Into(out, a, b, k, m, n, true)
}

func checkMatMulT1(a, b *Tensor) (k, m, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 || a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMulT1 shapes %v %v", a.shape, b.shape))
	}
	return a.shape[0], a.shape[1], b.shape[1]
}

func matMulT1Into(out, a, b *Tensor, k, m, n int, accumulate bool) {
	if leftSparse(a.Data, m*k*n) {
		if m*k*n < matMulGrain {
			matMulT1RowsSkip(out.Data, a.Data, b.Data, k, m, n, 0, m, accumulate)
			return
		}
		parallel.ForGrain(m, mmRowGrain(k, n), func(s, e int) {
			matMulT1RowsSkip(out.Data, a.Data, b.Data, k, m, n, s, e, accumulate)
		})
		return
	}
	if m*k*n >= gemmMinWork {
		// Packing reads A through the (rs=1, cs=m) transposed view, so
		// the backward passes never strided-read inside a kernel.
		gemm(out.Data, n, m, n, k, a.Data, 1, m, b.Data, n, 1, nil, accumulate)
		return
	}
	matMulT1Rows(out.Data, a.Data, b.Data, k, m, n, 0, m, accumulate)
}

// matMulT1RowsSkip is the sparse-A variant of the transposed-left
// kernel (dW += xᵀ·g with x a ReLU activation is the common case).
func matMulT1RowsSkip(out, a, b []Elem, k, m, n, i0, i1 int, accumulate bool) {
	if !accumulate {
		for i := i0; i < i1; i++ {
			row := out[i*n : (i+1)*n]
			for j := range row {
				row[j] = 0
			}
		}
	}
	for kk := 0; kk < k; kk++ {
		arow := a[kk*m : (kk+1)*m]
		brow := b[kk*n : (kk+1)*n]
		for i := i0; i < i1; i++ {
			v := arow[i]
			if v == 0 {
				continue
			}
			row := out[i*n : (i+1)*n]
			row = row[:len(brow)]
			for j, bv := range brow {
				row[j] += v * bv
			}
		}
	}
}

// matMulT1Rows computes out[i0:i1] (+)= (aᵀ·b)[i0:i1] where a is
// (k, m): out[i][j] = Σ_kk a[kk][i]·b[kk][j].
func matMulT1Rows(out, a, b []Elem, k, m, n, i0, i1 int, accumulate bool) {
	for j0 := 0; j0 < n; j0 += mmTile {
		j1 := j0 + mmTile
		if j1 > n {
			j1 = n
		}
		i := i0
		for ; i+4 <= i1; i += 4 {
			r0 := out[(i+0)*n+j0 : (i+0)*n+j1]
			r1 := out[(i+1)*n+j0 : (i+1)*n+j1][:len(r0)]
			r2 := out[(i+2)*n+j0 : (i+2)*n+j1][:len(r0)]
			r3 := out[(i+3)*n+j0 : (i+3)*n+j1][:len(r0)]
			if !accumulate {
				for j := range r0 {
					r0[j], r1[j], r2[j], r3[j] = 0, 0, 0, 0
				}
			}
			for kk := 0; kk < k; kk++ {
				acol := a[kk*m+i : kk*m+i+4]
				v0, v1, v2, v3 := acol[0], acol[1], acol[2], acol[3]
				brow := b[kk*n+j0 : kk*n+j1]
				brow = brow[:len(r0)]
				for j, bv := range brow {
					r0[j] += v0 * bv
					r1[j] += v1 * bv
					r2[j] += v2 * bv
					r3[j] += v3 * bv
				}
			}
		}
		for ; i < i1; i++ {
			row := out[i*n+j0 : i*n+j1]
			if !accumulate {
				for j := range row {
					row[j] = 0
				}
			}
			for kk := 0; kk < k; kk++ {
				v := a[kk*m+i]
				brow := b[kk*n+j0 : kk*n+j1]
				brow = brow[:len(row)]
				for j, bv := range brow {
					row[j] += v * bv
				}
			}
		}
	}
}

// MatMulT2 computes a·bᵀ for a (m, k), b (n, k) → (m, n) without
// materialising the transpose.
func MatMulT2(a, b *Tensor) *Tensor {
	m, k, n := checkMatMulT2(a, b)
	out := New(m, n)
	matMulT2Into(out, a, b, m, k, n, false)
	return out
}

// MatMulT2Into computes out = a·bᵀ into the preallocated out (m, n).
func MatMulT2Into(out, a, b *Tensor) {
	m, k, n := checkMatMulT2(a, b)
	checkOutShape("MatMulT2Into", out, m, n)
	matMulT2Into(out, a, b, m, k, n, false)
}

// MatMulT2Add computes out += a·bᵀ in place; out must be (m, n).
func MatMulT2Add(out, a, b *Tensor) {
	m, k, n := checkMatMulT2(a, b)
	checkOutShape("MatMulT2Add", out, m, n)
	matMulT2Into(out, a, b, m, k, n, true)
}

func checkMatMulT2(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 || a.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulT2 shapes %v %v", a.shape, b.shape))
	}
	return a.shape[0], a.shape[1], b.shape[0]
}

func matMulT2Into(out, a, b *Tensor, m, k, n int, accumulate bool) {
	if leftSparse(a.Data, m*k*n) {
		if m*k*n < matMulGrain {
			matMulT2RowsSkip(out.Data, a.Data, b.Data, k, n, 0, m, accumulate)
			return
		}
		parallel.ForGrain(m, mmRowGrain(k, n), func(s, e int) {
			matMulT2RowsSkip(out.Data, a.Data, b.Data, k, n, s, e, accumulate)
		})
		return
	}
	if m*k*n >= gemmMinWork {
		// B is a stored transpose: packing reads it through the
		// (rs=1, cs=k) view, one contiguous source run per column.
		gemm(out.Data, n, m, n, k, a.Data, k, 1, b.Data, 1, k, nil, accumulate)
		return
	}
	matMulT2Rows(out.Data, a.Data, b.Data, k, n, 0, m, accumulate)
}

// matMulT2RowsSkip is the sparse-A variant of a·bᵀ: the same 4-wide dot
// products, but a zero A element skips its four loads and FMAs
// (gradients gated by a ReLU are ~half zeros).
func matMulT2RowsSkip(out, a, b []Elem, k, n, i0, i1 int, accumulate bool) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			b0 = b0[:len(arow)]
			b1 = b1[:len(arow)]
			b2 = b2[:len(arow)]
			b3 = b3[:len(arow)]
			var s0, s1, s2, s3 Elem
			for kk, av := range arow {
				if av == 0 {
					continue
				}
				s0 += av * b0[kk]
				s1 += av * b1[kk]
				s2 += av * b2[kk]
				s3 += av * b3[kk]
			}
			if accumulate {
				orow[j] += s0
				orow[j+1] += s1
				orow[j+2] += s2
				orow[j+3] += s3
			} else {
				orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
			}
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			brow = brow[:len(arow)]
			var s Elem
			for kk, av := range arow {
				if av == 0 {
					continue
				}
				s += av * brow[kk]
			}
			if accumulate {
				orow[j] += s
			} else {
				orow[j] = s
			}
		}
	}
}

// matMulT2Rows computes out[i0:i1] (+)= (a·bᵀ)[i0:i1]: each output
// element is a dot product of rows; four b rows are consumed per pass
// over a row of a.
func matMulT2Rows(out, a, b []Elem, k, n, i0, i1 int, accumulate bool) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			b0 = b0[:len(arow)]
			b1 = b1[:len(arow)]
			b2 = b2[:len(arow)]
			b3 = b3[:len(arow)]
			var s0, s1, s2, s3 Elem
			for kk, av := range arow {
				s0 += av * b0[kk]
				s1 += av * b1[kk]
				s2 += av * b2[kk]
				s3 += av * b3[kk]
			}
			if accumulate {
				orow[j] += s0
				orow[j+1] += s1
				orow[j+2] += s2
				orow[j+3] += s3
			} else {
				orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
			}
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s Elem
			for kk, av := range arow {
				s += av * brow[kk]
			}
			if accumulate {
				orow[j] += s
			} else {
				orow[j] = s
			}
		}
	}
}
