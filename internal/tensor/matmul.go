package tensor

import (
	"fmt"

	"mdgan/internal/parallel"
)

// MatMul computes the matrix product a·b of two rank-2 tensors
// (m, k)·(k, n) → (m, n). The kernel is cache-blocked over k and
// parallelised over output rows.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	out := New(m, n)
	matMulInto(out, a, b, m, k, n, false)
	return out
}

// MatMulAdd computes out += a·b in place; out must be (m, n).
func MatMulAdd(out, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	if len(out.shape) != 2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAdd out shape %v, want (%d,%d)", out.shape, m, n))
	}
	matMulInto(out, a, b, m, k, n, true)
}

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	if a.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v · %v", a.shape, b.shape))
	}
	return a.shape[0], a.shape[1], b.shape[1]
}

// matMulInto writes (or accumulates into) out = a·b. The inner kernel
// walks b row-wise so both operands stream sequentially through memory,
// which is the standard ikj loop order for row-major data.
func matMulInto(out, a, b *Tensor, m, k, n int, accumulate bool) {
	work := m * n * k
	run := func(s, e int) {
		for i := s; i < e; i++ {
			orow := out.Data[i*n : (i+1)*n]
			if !accumulate {
				for j := range orow {
					orow[j] = 0
				}
			}
			arow := a.Data[i*k : (i+1)*k]
			for kk := 0; kk < k; kk++ {
				aik := arow[kk]
				if aik == 0 {
					continue
				}
				brow := b.Data[kk*n : (kk+1)*n]
				for j, bv := range brow {
					orow[j] += aik * bv
				}
			}
		}
	}
	// Only fan out when there is enough arithmetic to amortise the
	// goroutine overhead.
	if work < 1<<15 {
		run(0, m)
		return
	}
	parallel.ForceFor(m, run)
}

// MatMulT1 computes aᵀ·b for a (k, m), b (k, n) → (m, n) without
// materialising the transpose.
func MatMulT1(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 || a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMulT1 shapes %v %v", a.shape, b.shape))
	}
	k, m, n := a.shape[0], a.shape[1], b.shape[1]
	out := New(m, n)
	// out[i][j] = Σ_kk a[kk][i] * b[kk][j]
	if m*n*k < 1<<15 {
		matMulT1Range(out, a, b, k, m, n, 0, m)
		return out
	}
	parallel.ForceFor(m, func(s, e int) { matMulT1Range(out, a, b, k, m, n, s, e) })
	return out
}

func matMulT1Range(out, a, b *Tensor, k, m, n, s, e int) {
	for kk := 0; kk < k; kk++ {
		arow := a.Data[kk*m : (kk+1)*m]
		brow := b.Data[kk*n : (kk+1)*n]
		for i := s; i < e; i++ {
			aki := arow[i]
			if aki == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += aki * bv
			}
		}
	}
}

// MatMulT2 computes a·bᵀ for a (m, k), b (n, k) → (m, n) without
// materialising the transpose.
func MatMulT2(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 || a.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulT2 shapes %v %v", a.shape, b.shape))
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	out := New(m, n)
	run := func(s, e int) {
		for i := s; i < e; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*k : (j+1)*k]
				sum := 0.0
				for kk, av := range arow {
					sum += av * brow[kk]
				}
				orow[j] = sum
			}
		}
	}
	if m*n*k < 1<<15 {
		run(0, m)
		return out
	}
	parallel.ForceFor(m, run)
	return out
}
