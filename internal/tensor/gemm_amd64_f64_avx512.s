//go:build amd64 && !noasm && !f32

#include "textflag.h"

// func gemmKernelAsm512(c *float64, ldc int, a, b *float64, kc int, add bool, mr, nr int)
//
// 8×8 float64 AVX-512 micro-kernel. The packed A panel holds 8 row
// elements per k (64 B), the packed B panel 8 column elements per k
// (one full ZMM, 64 B). Eight ZMM accumulators hold the output rows;
// the k loop is unrolled by two with a second accumulator set (Z8–Z15)
// so sixteen independent FMA chains cover the FMA latency. Per k: one
// 8-lane B load, eight broadcasts of A, eight FMAs.
//
// Ragged edges are handled in-kernel: K1 = (1<<nr)-1 masks every C
// load/store to the valid columns (packing zero-padded the operands,
// so lanes past nr compute garbage that is never written), and the
// store walk simply stops after mr rows.
TEXT ·gemmKernelAsm512(SB), NOSPLIT, $0-64
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), R8
	SHLQ $3, R8            // row stride in bytes
	MOVQ a+16(FP), SI
	MOVQ b+24(FP), BX
	MOVQ kc+32(FP), CX

	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7
	VPXORQ Z8, Z8, Z8
	VPXORQ Z9, Z9, Z9
	VPXORQ Z10, Z10, Z10
	VPXORQ Z11, Z11, Z11
	VPXORQ Z12, Z12, Z12
	VPXORQ Z13, Z13, Z13
	VPXORQ Z14, Z14, Z14
	VPXORQ Z15, Z15, Z15

	MOVQ CX, DX
	SHRQ $1, DX
	JZ   tail

loop2:
	VMOVUPD      (BX), Z16
	VMOVUPD      64(BX), Z17
	VBROADCASTSD (SI), Z18
	VFMADD231PD  Z16, Z18, Z0
	VBROADCASTSD 8(SI), Z19
	VFMADD231PD  Z16, Z19, Z1
	VBROADCASTSD 16(SI), Z18
	VFMADD231PD  Z16, Z18, Z2
	VBROADCASTSD 24(SI), Z19
	VFMADD231PD  Z16, Z19, Z3
	VBROADCASTSD 32(SI), Z18
	VFMADD231PD  Z16, Z18, Z4
	VBROADCASTSD 40(SI), Z19
	VFMADD231PD  Z16, Z19, Z5
	VBROADCASTSD 48(SI), Z18
	VFMADD231PD  Z16, Z18, Z6
	VBROADCASTSD 56(SI), Z19
	VFMADD231PD  Z16, Z19, Z7
	VBROADCASTSD 64(SI), Z18
	VFMADD231PD  Z17, Z18, Z8
	VBROADCASTSD 72(SI), Z19
	VFMADD231PD  Z17, Z19, Z9
	VBROADCASTSD 80(SI), Z18
	VFMADD231PD  Z17, Z18, Z10
	VBROADCASTSD 88(SI), Z19
	VFMADD231PD  Z17, Z19, Z11
	VBROADCASTSD 96(SI), Z18
	VFMADD231PD  Z17, Z18, Z12
	VBROADCASTSD 104(SI), Z19
	VFMADD231PD  Z17, Z19, Z13
	VBROADCASTSD 112(SI), Z18
	VFMADD231PD  Z17, Z18, Z14
	VBROADCASTSD 120(SI), Z19
	VFMADD231PD  Z17, Z19, Z15
	ADDQ $128, SI
	ADDQ $128, BX
	DECQ DX
	JNZ  loop2

tail:
	TESTQ $1, CX
	JZ    reduce
	VMOVUPD      (BX), Z16
	VBROADCASTSD (SI), Z18
	VFMADD231PD  Z16, Z18, Z0
	VBROADCASTSD 8(SI), Z19
	VFMADD231PD  Z16, Z19, Z1
	VBROADCASTSD 16(SI), Z18
	VFMADD231PD  Z16, Z18, Z2
	VBROADCASTSD 24(SI), Z19
	VFMADD231PD  Z16, Z19, Z3
	VBROADCASTSD 32(SI), Z18
	VFMADD231PD  Z16, Z18, Z4
	VBROADCASTSD 40(SI), Z19
	VFMADD231PD  Z16, Z19, Z5
	VBROADCASTSD 48(SI), Z18
	VFMADD231PD  Z16, Z18, Z6
	VBROADCASTSD 56(SI), Z19
	VFMADD231PD  Z16, Z19, Z7

reduce:
	VADDPD Z8, Z0, Z0
	VADDPD Z9, Z1, Z1
	VADDPD Z10, Z2, Z2
	VADDPD Z11, Z3, Z3
	VADDPD Z12, Z4, Z4
	VADDPD Z13, Z5, Z5
	VADDPD Z14, Z6, Z6
	VADDPD Z15, Z7, Z7

	// K1 = (1<<nr)-1: the valid output columns.
	MOVQ  nr+56(FP), CX
	MOVL  $1, AX
	SHLL  CX, AX
	DECL  AX
	KMOVW AX, K1

	MOVQ    mr+48(FP), R9
	MOVBLZX add+40(FP), AX
	TESTB   AL, AL
	JZ      store

	VMOVUPD.Z (DI), K1, Z20
	VADDPD    Z20, Z0, Z0
	VMOVUPD   Z0, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPD.Z (DI), K1, Z20
	VADDPD    Z20, Z1, Z1
	VMOVUPD   Z1, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPD.Z (DI), K1, Z20
	VADDPD    Z20, Z2, Z2
	VMOVUPD   Z2, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPD.Z (DI), K1, Z20
	VADDPD    Z20, Z3, Z3
	VMOVUPD   Z3, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPD.Z (DI), K1, Z20
	VADDPD    Z20, Z4, Z4
	VMOVUPD   Z4, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPD.Z (DI), K1, Z20
	VADDPD    Z20, Z5, Z5
	VMOVUPD   Z5, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPD.Z (DI), K1, Z20
	VADDPD    Z20, Z6, Z6
	VMOVUPD   Z6, K1, (DI)
	DECQ      R9
	JZ        done
	ADDQ      R8, DI
	VMOVUPD.Z (DI), K1, Z20
	VADDPD    Z20, Z7, Z7
	VMOVUPD   Z7, K1, (DI)
	JMP       done

store:
	VMOVUPD Z0, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPD Z1, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPD Z2, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPD Z3, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPD Z4, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPD Z5, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPD Z6, K1, (DI)
	DECQ    R9
	JZ      done
	ADDQ    R8, DI
	VMOVUPD Z7, K1, (DI)

done:
	VZEROUPPER
	RET
