package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// WorkerFaults is the per-worker fault accounting the membership layer
// accumulates while a run tolerates transient failures.
type WorkerFaults struct {
	// Timeouts counts rounds in which the worker was dispatched to but
	// produced no feedback before the round deadline expired.
	Timeouts int
	// Suspects counts transitions into (or escalation ticks while in)
	// the suspect state.
	Suspects int
	// Demotions counts permanent removals: the escalation of a suspect
	// after too many consecutive misses, or a direct fail-stop demotion
	// (ErrNodeDown, corrupt-frame threshold).
	Demotions int
	// Rejoins counts re-admissions of a suspect whose feedback or
	// transport reappeared.
	Rejoins int
	// CorruptFrames counts feedback frames from this worker that failed
	// to decode.
	CorruptFrames int
	// Reparents counts rounds in which this worker had to be rehomed
	// under a new parent because the aggregator it reported to died or
	// went suspect mid-round (tree topologies only; the next round's
	// plan reparents it automatically).
	Reparents int
}

// FaultStats is a snapshot of a run's fault accounting: the per-worker
// counters plus cluster-wide totals and the transport-level retry count
// (fresh-dial retries on TCPNet).
type FaultStats struct {
	// Workers maps worker name → its fault counters. Only workers that
	// experienced at least one fault event appear.
	Workers map[string]WorkerFaults
	// Totals over all workers.
	Timeouts, Suspects, Demotions, Rejoins, CorruptFrames, Reparents int
	// TransportRetries counts transport-level send retries (TCPNet
	// fresh-dial retries after a broken or timed-out write).
	TransportRetries int64
}

// Any reports whether any fault event was recorded.
func (s FaultStats) Any() bool {
	return s.Timeouts+s.Suspects+s.Demotions+s.Rejoins+s.CorruptFrames+s.Reparents > 0 ||
		s.TransportRetries > 0
}

// String formats a one-block summary for CLI output: the totals line
// followed by one line per affected worker.
func (s FaultStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults: timeouts=%d suspects=%d demotions=%d rejoins=%d corrupt=%d reparents=%d retries=%d\n",
		s.Timeouts, s.Suspects, s.Demotions, s.Rejoins, s.CorruptFrames, s.Reparents, s.TransportRetries)
	names := make([]string, 0, len(s.Workers))
	for name := range s.Workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := s.Workers[name]
		fmt.Fprintf(&b, "  %s: timeouts=%d suspects=%d demotions=%d rejoins=%d corrupt=%d reparents=%d\n",
			name, w.Timeouts, w.Suspects, w.Demotions, w.Rejoins, w.CorruptFrames, w.Reparents)
	}
	return b.String()
}

// faults returns (allocating if needed) the counter struct for name.
func (m *Membership) faults(name string) *WorkerFaults {
	if m.workerFaults == nil {
		m.workerFaults = make(map[string]*WorkerFaults)
	}
	f := m.workerFaults[name]
	if f == nil {
		f = &WorkerFaults{}
		m.workerFaults[name] = f
	}
	return f
}

// NoteTimeout records a round-deadline expiry against name.
func (m *Membership) NoteTimeout(name string) { m.faults(name).Timeouts++ }

// NoteReparent records that name lost its aggregator mid-round and is
// rehomed under a new parent by the next round's topology plan.
func (m *Membership) NoteReparent(name string) { m.faults(name).Reparents++ }

// NoteCorrupt records a feedback frame from name that failed to decode
// and returns the worker's running corrupt-frame count, which the
// engines compare against the suspect threshold to escalate a
// persistent garbage sender to demotion.
func (m *Membership) NoteCorrupt(name string) int {
	f := m.faults(name)
	f.CorruptFrames++
	return f.CorruptFrames
}

// Faults snapshots the fault accounting. retries is the transport-level
// retry count supplied by the caller (the membership does not own the
// transport's counters).
func (m *Membership) Faults(retries int64) FaultStats {
	s := FaultStats{TransportRetries: retries}
	if len(m.workerFaults) > 0 {
		s.Workers = make(map[string]WorkerFaults, len(m.workerFaults))
	}
	for name, f := range m.workerFaults {
		s.Workers[name] = *f
		s.Timeouts += f.Timeouts
		s.Suspects += f.Suspects
		s.Demotions += f.Demotions
		s.Rejoins += f.Rejoins
		s.CorruptFrames += f.CorruptFrames
		s.Reparents += f.Reparents
	}
	return s
}
