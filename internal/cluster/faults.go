package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// WorkerFaults is the per-worker fault accounting the membership layer
// accumulates while a run tolerates transient failures.
type WorkerFaults struct {
	// Timeouts counts rounds in which the worker was dispatched to but
	// produced no feedback before the round deadline expired.
	Timeouts int
	// Suspects counts transitions into (or escalation ticks while in)
	// the suspect state.
	Suspects int
	// Demotions counts permanent removals: the escalation of a suspect
	// after too many consecutive misses, or a direct fail-stop demotion
	// (ErrNodeDown, corrupt-frame threshold).
	Demotions int
	// Rejoins counts re-admissions of a suspect whose feedback or
	// transport reappeared.
	Rejoins int
	// CorruptFrames counts feedback frames from this worker that failed
	// to decode.
	CorruptFrames int
	// Reparents counts rounds in which this worker had to be rehomed
	// under a new parent because the aggregator it reported to died or
	// went suspect mid-round (tree topologies only; the next round's
	// plan reparents it automatically).
	Reparents int
	// DownWeighted counts rounds in which the feedback-quality defense
	// reduced this worker's aggregation weight below 1 (the first,
	// reversible rung of the free-rider response).
	DownWeighted int
	// FreeRiderDemotions counts permanent removals initiated by the
	// feedback-quality defense (a subset of Demotions: the defense
	// demotes through the same strike-budget machinery as corrupt
	// frames).
	FreeRiderDemotions int
	// Retirements counts graceful scheduled departures (temporary
	// discriminators reaching the end of their Lifetime). A planned
	// retirement is not a fault: it does not trip FaultStats.Any.
	Retirements int
}

// FaultStats is a snapshot of a run's fault accounting: the per-worker
// counters plus cluster-wide totals and the transport-level retry count
// (fresh-dial retries on TCPNet).
type FaultStats struct {
	// Workers maps worker name → its fault counters. Only workers that
	// experienced at least one fault event appear.
	Workers map[string]WorkerFaults
	// Totals over all workers.
	Timeouts, Suspects, Demotions, Rejoins, CorruptFrames, Reparents int
	// DownWeighted totals the rounds in which the feedback-quality
	// defense reduced some worker's aggregation weight;
	// FreeRidersDemoted counts the workers the defense removed
	// permanently. Both zero when the defense is off or never fired.
	DownWeighted, FreeRidersDemoted int
	// Retirements totals graceful scheduled departures (not faults:
	// excluded from Any).
	Retirements int
	// Defense holds the per-worker feedback-quality score snapshots of
	// a defense-enabled run (nil otherwise). Keys match Workers.
	Defense map[string]DefenseScore
	// TransportRetries counts transport-level send retries (TCPNet
	// fresh-dial retries after a broken or timed-out write).
	TransportRetries int64
}

// DefenseScore is the end-of-run feedback-quality snapshot of one
// worker, as tracked by the server-side free-rider defense
// (internal/core/defense.go).
type DefenseScore struct {
	// Suspicion is the final EWMA suspicion in [0, 1] (0 = looks
	// honest every round, 1 = flagged every recent round).
	Suspicion float64
	// AvgCosine is the mean cosine similarity of the worker's feedback
	// to the leave-one-out group aggregate over the rounds it was
	// scored against a reference.
	AvgCosine float64
	// ReplayHits counts rounds whose feedback fingerprint exactly
	// repeated an earlier round's (replay attack evidence).
	ReplayHits int
	// ScoredRounds counts rounds the defense observed a feedback from
	// this worker.
	ScoredRounds int
	// Demoted reports whether the defense removed the worker.
	Demoted bool
}

// Any reports whether any fault event was recorded. Scheduled
// retirements are planned departures, not faults, and are excluded —
// like scheduled crashes, which are not recorded at all.
func (s FaultStats) Any() bool {
	return s.Timeouts+s.Suspects+s.Demotions+s.Rejoins+s.CorruptFrames+s.Reparents > 0 ||
		s.DownWeighted+s.FreeRidersDemoted > 0 ||
		s.TransportRetries > 0
}

// String formats a one-block summary for CLI output: the totals line
// followed by one line per affected worker.
func (s FaultStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults: timeouts=%d suspects=%d demotions=%d rejoins=%d corrupt=%d reparents=%d retries=%d",
		s.Timeouts, s.Suspects, s.Demotions, s.Rejoins, s.CorruptFrames, s.Reparents, s.TransportRetries)
	if s.DownWeighted+s.FreeRidersDemoted > 0 {
		fmt.Fprintf(&b, " downweighted=%d freeriders=%d", s.DownWeighted, s.FreeRidersDemoted)
	}
	if s.Retirements > 0 {
		fmt.Fprintf(&b, " retired=%d", s.Retirements)
	}
	b.WriteByte('\n')
	names := make([]string, 0, len(s.Workers))
	for name := range s.Workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := s.Workers[name]
		fmt.Fprintf(&b, "  %s: timeouts=%d suspects=%d demotions=%d rejoins=%d corrupt=%d reparents=%d",
			name, w.Timeouts, w.Suspects, w.Demotions, w.Rejoins, w.CorruptFrames, w.Reparents)
		if w.DownWeighted+w.FreeRiderDemotions > 0 {
			fmt.Fprintf(&b, " downweighted=%d freerider-demotions=%d", w.DownWeighted, w.FreeRiderDemotions)
		}
		if w.Retirements > 0 {
			fmt.Fprintf(&b, " retired=%d", w.Retirements)
		}
		if d, ok := s.Defense[name]; ok {
			fmt.Fprintf(&b, " suspicion=%.2f avg-cos=%.2f replays=%d", d.Suspicion, d.AvgCosine, d.ReplayHits)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// faults returns (allocating if needed) the counter struct for name.
func (m *Membership) faults(name string) *WorkerFaults {
	if m.workerFaults == nil {
		m.workerFaults = make(map[string]*WorkerFaults)
	}
	f := m.workerFaults[name]
	if f == nil {
		f = &WorkerFaults{}
		m.workerFaults[name] = f
	}
	return f
}

// NoteTimeout records a round-deadline expiry against name.
func (m *Membership) NoteTimeout(name string) { m.faults(name).Timeouts++ }

// NoteReparent records that name lost its aggregator mid-round and is
// rehomed under a new parent by the next round's topology plan.
func (m *Membership) NoteReparent(name string) { m.faults(name).Reparents++ }

// NoteCorrupt records a feedback frame from name that failed to decode
// and returns the worker's running corrupt-frame count, which the
// engines compare against the suspect threshold to escalate a
// persistent garbage sender to demotion.
func (m *Membership) NoteCorrupt(name string) int {
	f := m.faults(name)
	f.CorruptFrames++
	return f.CorruptFrames
}

// NoteDownWeight records a round in which the feedback-quality defense
// reduced name's aggregation weight below 1.
func (m *Membership) NoteDownWeight(name string) { m.faults(name).DownWeighted++ }

// NoteFreeRiderDemotion records that the feedback-quality defense
// removed name permanently. The engines call it alongside Fail, which
// counts the underlying Demotion; this counter distinguishes
// defense-initiated removals from straggler escalations.
func (m *Membership) NoteFreeRiderDemotion(name string) { m.faults(name).FreeRiderDemotions++ }

// Faults snapshots the fault accounting. retries is the transport-level
// retry count supplied by the caller (the membership does not own the
// transport's counters).
func (m *Membership) Faults(retries int64) FaultStats {
	s := FaultStats{TransportRetries: retries}
	if len(m.workerFaults) > 0 {
		s.Workers = make(map[string]WorkerFaults, len(m.workerFaults))
	}
	for name, f := range m.workerFaults {
		s.Workers[name] = *f
		s.Timeouts += f.Timeouts
		s.Suspects += f.Suspects
		s.Demotions += f.Demotions
		s.Rejoins += f.Rejoins
		s.CorruptFrames += f.CorruptFrames
		s.Reparents += f.Reparents
		s.DownWeighted += f.DownWeighted
		s.FreeRidersDemoted += f.FreeRiderDemotions
		s.Retirements += f.Retirements
	}
	return s
}
