package cluster

import (
	"fmt"
	"sort"
)

// Temporary discriminators (Qu et al., "Learn Distributed GAN with
// Temporary Discriminators"): a worker's participation can be bounded
// by a lifetime — it joins at a scheduled round (riding the existing
// dynamic-join machinery) and later RETIRES gracefully, rather than
// crashing. Retirement differs from the fail-stop path in every
// observable way the paper's Fig. 5 model cares about:
//
//   - the final round's feedback is counted (retirement happens at a
//     round boundary, after the previous round applied);
//   - the worker is stopped with a protocol message, not an inbox
//     close, so any swap rendezvous it participates in has already
//     resolved and its goroutine exits through its own main loop;
//   - aggregation reweights automatically — the retiree simply leaves
//     the active set, and the engines' groupSize/received scaling
//     absorbs the change like any other membership shift;
//   - fault accounting records a Retirement, never a Demotion, and
//     FaultStats.Any() stays false (a planned departure is not a
//     fault, exactly like a scheduled crash).

// Lifetime bounds one worker's participation window. The zero value
// means "present from the start, never retires" — the default every
// worker had before lifetimes existed.
type Lifetime struct {
	// Join is the iteration at which the worker enters through the
	// dynamic-join protocol (0 = present from the start). For joining
	// workers this must match the iteration their JoinAt shard is
	// scheduled at — the schedule validation cross-checks the two.
	Join int
	// Retire is the iteration at whose START the worker retires
	// gracefully (0 = never). Its feedback from iteration Retire-1 is
	// the last one counted.
	Retire int
}

// ValidateLifetimes checks a lifetime schedule keyed by worker index
// against the initial cluster size and the join schedule's implied
// index → iteration assignment (joinIters; nil when no joins are
// scheduled). Initial workers (index < initialN) must not declare a
// Join round; later indices must, and it must match the join schedule.
func ValidateLifetimes(lifetimes map[int]Lifetime, initialN int, joinIters map[int]int) error {
	for idx, lt := range lifetimes {
		if idx < 0 {
			return fmt.Errorf("cluster: lifetime for negative worker index %d", idx)
		}
		if lt.Join < 0 || lt.Retire < 0 {
			return fmt.Errorf("cluster: worker %d lifetime has negative round (join=%d retire=%d)", idx, lt.Join, lt.Retire)
		}
		if lt.Retire > 0 && lt.Retire <= lt.Join {
			return fmt.Errorf("cluster: worker %d retires at %d, not after its join at %d", idx, lt.Retire, lt.Join)
		}
		if idx < initialN {
			if lt.Join != 0 {
				return fmt.Errorf("cluster: initial worker %d cannot schedule a join (join=%d)", idx, lt.Join)
			}
			continue
		}
		want, scheduled := joinIters[idx]
		if !scheduled {
			return fmt.Errorf("cluster: worker %d has a lifetime but no scheduled join shard", idx)
		}
		if lt.Join != want {
			return fmt.Errorf("cluster: worker %d lifetime joins at %d but its shard is scheduled at %d", idx, lt.Join, want)
		}
	}
	return nil
}

// RetireesAt returns the worker indices scheduled to retire at the
// start of iteration it, in ascending index order (deterministic
// processing order for the engines). Retire 0 means "never", so no
// iteration — including 0 — retires a zero-valued Lifetime.
func RetireesAt(lifetimes map[int]Lifetime, it int) []int {
	var out []int
	for idx, lt := range lifetimes {
		if lt.Retire == it && lt.Retire > 0 {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}
