package cluster

import (
	"reflect"
	"strings"
	"testing"
)

func TestLifetimeValidation(t *testing.T) {
	joinIters := map[int]int{3: 5, 4: 5}
	cases := []struct {
		name      string
		lifetimes map[int]Lifetime
		ok        bool
	}{
		{"empty", nil, true},
		{"initial-retire-only", map[int]Lifetime{1: {Retire: 7}}, true},
		{"joiner-window", map[int]Lifetime{3: {Join: 5, Retire: 9}}, true},
		{"joiner-never-retires", map[int]Lifetime{4: {Join: 5}}, true},
		{"negative-index", map[int]Lifetime{-1: {Retire: 3}}, false},
		{"negative-round", map[int]Lifetime{1: {Retire: -2}}, false},
		{"retire-not-after-join", map[int]Lifetime{3: {Join: 5, Retire: 5}}, false},
		{"initial-declares-join", map[int]Lifetime{1: {Join: 2, Retire: 7}}, false},
		{"no-scheduled-shard", map[int]Lifetime{9: {Join: 5, Retire: 9}}, false},
		{"join-iteration-mismatch", map[int]Lifetime{3: {Join: 4, Retire: 9}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateLifetimes(tc.lifetimes, 3, joinIters)
			if (err == nil) != tc.ok {
				t.Fatalf("ValidateLifetimes(%v) = %v, want ok=%v", tc.lifetimes, err, tc.ok)
			}
		})
	}
}

func TestLifetimeRetireesAtSortsIndices(t *testing.T) {
	lts := map[int]Lifetime{
		4: {Retire: 5},
		1: {Retire: 5},
		2: {Retire: 7},
		3: {}, // never retires
	}
	if got := RetireesAt(lts, 5); !reflect.DeepEqual(got, []int{1, 4}) {
		t.Fatalf("RetireesAt(5) = %v, want [1 4]", got)
	}
	if got := RetireesAt(lts, 6); got != nil {
		t.Fatalf("RetireesAt(6) = %v, want none", got)
	}
	// Retire 0 means never, not "at iteration 0".
	if got := RetireesAt(lts, 0); got != nil {
		t.Fatalf("RetireesAt(0) = %v — the zero Lifetime must never retire", got)
	}
}

// TestRetireLeavesTransportUpAndRecordsNoFault: retirement removes the
// worker from the live set without crashing its transport endpoint (the
// worker drains its inbox and exits through its own main loop), records
// a Retirement, and — unlike every demotion path — trips no fault.
func TestRetireLeavesTransportUpAndRecordsNoFault(t *testing.T) {
	m, net := newM(t, 3, nil, 0)
	defer net.Close()
	if !m.Retire("worker1") {
		t.Fatal("Retire of a live worker must succeed")
	}
	if m.Alive("worker1") {
		t.Fatal("retiree still alive")
	}
	if net.Down("worker1") {
		t.Fatal("retirement must not crash the transport endpoint")
	}
	if got := m.Live(); !reflect.DeepEqual(got, []string{"worker0", "worker2"}) {
		t.Fatalf("Live = %v", got)
	}
	if m.Retire("worker1") {
		t.Fatal("re-retiring a departed worker must be a no-op")
	}
	if m.Retire("ghost") {
		t.Fatal("retiring an unknown worker must be a no-op")
	}
	s := m.Faults(0)
	if s.Retirements != 1 || s.Workers["worker1"].Retirements != 1 {
		t.Fatalf("faults = %+v, want one recorded retirement", s)
	}
	if s.Demotions != 0 || s.Any() {
		t.Fatalf("faults = %+v: a retirement is not a fault", s)
	}
}

// TestDefenseScoreRendering: the CLI fault summary must surface the
// defense columns — totals line counters plus the per-worker suspicion
// snapshot — and retirements must render without tripping Any.
func TestDefenseScoreRendering(t *testing.T) {
	s := FaultStats{
		Workers: map[string]WorkerFaults{
			"worker2": {Demotions: 1, DownWeighted: 3, FreeRiderDemotions: 1},
			"worker4": {Retirements: 1},
		},
		Demotions: 1, DownWeighted: 3, FreeRidersDemoted: 1, Retirements: 1,
		Defense: map[string]DefenseScore{
			"worker2": {Suspicion: 0.97, AvgCosine: -0.01, ReplayHits: 4, ScoredRounds: 9, Demoted: true},
		},
	}
	out := s.String()
	for _, want := range []string{
		"downweighted=3 freeriders=1",
		"retired=1",
		"suspicion=0.97",
		"replays=4",
		"freerider-demotions=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fault summary missing %q:\n%s", want, out)
		}
	}
	retiredOnly := FaultStats{Retirements: 2}
	if retiredOnly.Any() {
		t.Fatal("retirements alone must not count as faults")
	}
	if !s.Any() {
		t.Fatal("a down-weighted, demoted free-rider is a fault event")
	}
}
