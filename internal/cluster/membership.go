// Package cluster provides the membership layer shared by the
// distributed training protocols (synchronous and asynchronous MD-GAN
// in internal/core, FL-GAN in internal/flgan): one component that owns
// the live set of workers, the fail-stop crash schedule (Fig. 5),
// dynamic joins (paper §IV-A), per-round client sampling (the §VII.4
// adaptation of federated learning), and straggler demotion (a worker
// whose transport fails mid-round is removed instead of aborting the
// run, the relaxation §VII.1 invites).
//
// Determinism contract: Live returns names in join order (the index
// order workers were Added in), Sample consumes the injected *rand.Rand
// only when sampling is actually active and returns the subset in
// lexicographic order, and ApplyCrashes resolves schedule indices
// against the join order. Two runs that Add the same names, share the
// same schedule and draw from identically-seeded RNGs therefore observe
// identical membership at every iteration — the property the engines'
// bitwise-equivalence tests pin.
package cluster

import (
	"math/rand"
	"sort"

	"mdgan/internal/simnet"
)

// Membership tracks which workers of a training cluster are alive and
// which participate in the current round. It is not safe for concurrent
// use: exactly one protocol driver (the server/engine goroutine) owns
// it.
type Membership struct {
	// net, when non-nil, is told about fail-stop deaths (net.Crash
	// closes the victim's inbox so its goroutine observes the crash).
	net simnet.Net
	// rng drives client sampling; it may be shared with the protocol
	// driver (the engines share their server RNG so the draw order is
	// part of the pinned deterministic stream).
	rng *rand.Rand
	// order lists every worker ever added, in join order. Crashed
	// workers stay in order (schedule indices must remain stable) but
	// drop out of live.
	order []string
	live  map[string]bool
	// crashAt schedules fail-stop crashes: iteration (or round) number
	// → indices into order of the workers to kill at its start.
	crashAt map[int][]int
	// activePerRound, when in (0, live count), bounds how many workers
	// a Sample activates.
	activePerRound int
}

// New builds a membership over an initially empty worker set. net may
// be nil (no transport to signal crashes to), crashAt may be nil (no
// scheduled crashes) and activePerRound 0 (every live worker active).
func New(net simnet.Net, rng *rand.Rand, crashAt map[int][]int, activePerRound int) *Membership {
	return &Membership{
		net:            net,
		rng:            rng,
		live:           make(map[string]bool),
		crashAt:        crashAt,
		activePerRound: activePerRound,
	}
}

// Add registers a worker as alive and appends it to the join order —
// used both for the initial cluster and for dynamic joins.
func (m *Membership) Add(name string) {
	m.order = append(m.order, name)
	m.live[name] = true
}

// Alive reports whether the named worker is currently live.
func (m *Membership) Alive(name string) bool { return m.live[name] }

// NumLive returns the number of live workers.
func (m *Membership) NumLive() int {
	n := 0
	for _, name := range m.order {
		if m.live[name] {
			n++
		}
	}
	return n
}

// Len returns the number of workers ever added (live or not).
func (m *Membership) Len() int { return len(m.order) }

// Name returns the join-order name at index i ("" when out of range).
func (m *Membership) Name(i int) string {
	if i < 0 || i >= len(m.order) {
		return ""
	}
	return m.order[i]
}

// Live returns the live worker names in join order. The slice is
// freshly allocated; callers may retain or reorder it.
func (m *Membership) Live() []string {
	out := make([]string, 0, len(m.order))
	for _, name := range m.order {
		if m.live[name] {
			out = append(out, name)
		}
	}
	return out
}

// ApplyCrashes executes the fail-stop schedule for iteration it:
// workers whose join-order index is listed die before the round starts,
// taking their data shard with them (Fig. 5). Out-of-range and already-
// dead indices are ignored.
func (m *Membership) ApplyCrashes(it int) {
	for _, idx := range m.crashAt[it] {
		if idx < 0 || idx >= len(m.order) {
			continue
		}
		m.Fail(m.order[idx])
	}
}

// Fail demotes a worker fail-stop style: it leaves the live set and, on
// a real transport, its inbox is closed so the worker goroutine (local
// transports) observes the death. The engines call this both for
// scheduled crashes and for stragglers discovered mid-round (a send
// that returns simnet.ErrNodeDown).
func (m *Membership) Fail(name string) {
	if !m.live[name] {
		return
	}
	m.live[name] = false
	if m.net != nil {
		m.net.Crash(name)
	}
}

// Sample returns this round's active workers: all live workers in join
// order, or — when ActivePerRound is set below the live count — a
// uniform random subset of that size in lexicographic order (the §VII.4
// client-sampling extension: fewer active discriminators than workers,
// the whole dataset still covered over time). The RNG is consumed only
// when sampling actually truncates, so runs without the knob draw an
// identical stream to runs of a sampling-free build.
func (m *Membership) Sample() []string {
	alive := m.Live()
	if m.activePerRound > 0 && m.activePerRound < len(alive) {
		m.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
		alive = alive[:m.activePerRound]
		sort.Strings(alive) // deterministic merge order
	}
	return alive
}

// StopAll sends a best-effort stop message (type stopType, C→W) from
// the named server node to every live worker — the shared half of the
// protocols' shutdown paths, which must run on every exit (including
// error returns) so worker goroutines never outlive a Train call.
// Sends to workers that died between the liveness check and the send
// fail harmlessly: a crashed worker's goroutine has already exited via
// its closed inbox. Callers then join their own worker goroutines
// (the handles are protocol-specific).
func (m *Membership) StopAll(from, stopType string) {
	if m.net == nil {
		return
	}
	for _, name := range m.order {
		if m.live[name] {
			_ = m.net.Send(simnet.Message{From: from, To: name, Type: stopType, Kind: simnet.CtoW})
		}
	}
}

// ActiveBound returns an upper bound on the size of the next Sample —
// min(ActivePerRound, live count) — without consuming the RNG. The
// pipelined engine uses it to clamp k when generating a round ahead of
// the membership decisions for that round.
func (m *Membership) ActiveBound() int {
	n := m.NumLive()
	if m.activePerRound > 0 && m.activePerRound < n {
		return m.activePerRound
	}
	return n
}
