// Package cluster provides the membership layer shared by the
// distributed training protocols (synchronous and asynchronous MD-GAN
// in internal/core, FL-GAN in internal/flgan): one component that owns
// the live set of workers, the fail-stop crash schedule (Fig. 5),
// dynamic joins (paper §IV-A), per-round client sampling (the §VII.4
// adaptation of federated learning), and the failure lifecycle below.
//
// # Failure model
//
// The layer distinguishes two failure classes:
//
//   - Fail-stop (Fig. 5): a scheduled crash or an unrecoverable
//     transport death. The worker leaves the cluster permanently and
//     its data shard disappears with it (Fail / ApplyCrashes).
//   - Transient: a straggler, a dropped message, a short partition.
//     The worker is *suspected* — skipped for dispatch, all state
//     retained — and re-admitted (Reinstate) when its feedback or
//     transport reappears. Only SuspectThreshold consecutive misses
//     escalate a suspect to the permanent demotion above, so losing a
//     worker's shard for the rest of the run is the last resort, not
//     the only response (§VII.1's straggler relaxation).
//
// Lifecycle state diagram:
//
//	         Suspect (miss)            Suspect ×N (escalation)
//	ACTIVE ------------------> SUSPECT -----------------------> DEMOTED
//	   ^                          |                                ^
//	   |        Reinstate         |                                |
//	   +--------------------------+       Fail / ApplyCrashes      |
//	   +-----------------------------------------------------------+
//
// ACTIVE workers are dispatched to every round; SUSPECT workers are
// skipped (Sample/Active exclude them) but stay in the live set — their
// goroutine, discriminator and shard survive — and are probed by the
// engines; DEMOTED workers are gone fail-stop style (their transport
// inbox is closed). Fault events are counted per worker (faults.go).
//
// Determinism contract: Live returns names in join order (the index
// order workers were Added in), Sample consumes the injected *rand.Rand
// only when sampling is actually active and returns the subset in
// lexicographic order, and ApplyCrashes resolves schedule indices
// against the join order. Two runs that Add the same names, share the
// same schedule and draw from identically-seeded RNGs therefore observe
// identical membership at every iteration — the property the engines'
// bitwise-equivalence tests pin. Suspicion and reinstatement only occur
// in response to faults, so a fault-free run traverses exactly the
// pre-lifecycle code paths.
//
// # Topology contract
//
// Since PR 8 the package also owns the communication Topology
// (topology.go): a pluggable plan for how per-round feedback flows
// back to the server. Three node roles exist, all implicit in the
// Plan a Topology produces each round:
//
//   - server — the root; consumes the final reduced contributions.
//   - aggregator — a worker with Children in the plan; it reduces its
//     children's feedback frames (summing per generated batch) before
//     forwarding one combined frame to its own parent. Aggregators
//     are ordinary workers: they hold a shard, train a discriminator,
//     and add their own feedback to the reduction.
//   - worker (leaf) — sends its single contribution to its parent.
//
// Rules implementations and consumers must uphold:
//
//   - Plans are recomputed from the active set every round and MUST be
//     a deterministic, RNG-free function of (server, active order).
//     This is also the reparenting rule: when an aggregator dies or
//     goes suspect, it simply drops out of the next round's active
//     set and the fresh plan rehomes its children (counted per child
//     as WorkerFaults.Reparents by the engines). No explicit tree
//     surgery happens mid-round — the engines instead account the
//     dead aggregator's Subtree as missing for that round.
//   - The suspect/demote/rejoin lifecycle above composes unchanged: a
//     child stranded by a dead aggregator is suspected at the round
//     deadline like any straggler and reinstated by its next pong.
//   - The flat star (Flat, the default) must keep the engines on
//     their pre-topology code paths bitwise — enabling the topology
//     layer may not shift any pinned RNG stream or wire byte the
//     serial-reference equivalence test observes.
//
// To add a topology: implement Topology (Name + a deterministic Plan),
// extend ParseTopology's spec grammar, and rely on the engines'
// generic plan routing — dispatch/collect consume only Parent,
// Children and Subtree, never the concrete topology type. The swap
// counterpart (which worker ships its discriminator where) is the
// separate SwapSchedule interface in internal/core, deliberately
// decoupled so aggregation trees and gossip/shuffle swap patterns
// compose freely.
package cluster

import (
	"math/rand"
	"sort"

	"mdgan/internal/simnet"
)

// Membership tracks which workers of a training cluster are alive and
// which participate in the current round. It is not safe for concurrent
// use: exactly one protocol driver (the server/engine goroutine) owns
// it.
type Membership struct {
	// net, when non-nil, is told about fail-stop deaths (net.Crash
	// closes the victim's inbox so its goroutine observes the crash).
	net simnet.Net
	// rng drives client sampling; it may be shared with the protocol
	// driver (the engines share their server RNG so the draw order is
	// part of the pinned deterministic stream).
	rng *rand.Rand
	// order lists every worker ever added, in join order. Crashed
	// workers stay in order (schedule indices must remain stable) but
	// drop out of live.
	order []string
	live  map[string]bool
	// crashAt schedules fail-stop crashes: iteration (or round) number
	// → indices into order of the workers to kill at its start.
	crashAt map[int][]int
	// activePerRound, when in (0, live count), bounds how many workers
	// a Sample activates.
	activePerRound int
	// suspect marks live workers currently excluded from dispatch
	// (transient-fault state; see the package doc's lifecycle diagram).
	suspect map[string]bool
	// misses counts consecutive Suspect ticks since the last
	// reinstatement; reaching suspectAfter escalates to demotion.
	misses map[string]int
	// suspectAfter is the escalation threshold N (0 = DefaultSuspectAfter,
	// negative = never escalate).
	suspectAfter int
	// workerFaults accumulates per-worker fault counters (faults.go).
	workerFaults map[string]*WorkerFaults
}

// DefaultSuspectAfter is the default number of consecutive misses after
// which a suspect is demoted permanently.
const DefaultSuspectAfter = 3

// New builds a membership over an initially empty worker set. net may
// be nil (no transport to signal crashes to), crashAt may be nil (no
// scheduled crashes) and activePerRound 0 (every live worker active).
func New(net simnet.Net, rng *rand.Rand, crashAt map[int][]int, activePerRound int) *Membership {
	return &Membership{
		net:            net,
		rng:            rng,
		live:           make(map[string]bool),
		crashAt:        crashAt,
		activePerRound: activePerRound,
		suspect:        make(map[string]bool),
		misses:         make(map[string]int),
	}
}

// SetSuspectThreshold configures the escalation threshold N: a suspect
// accumulating n consecutive misses is demoted permanently. n == 0
// selects DefaultSuspectAfter; n < 0 disables escalation entirely
// (suspects are only demoted by an explicit Fail or crash schedule).
func (m *Membership) SetSuspectThreshold(n int) { m.suspectAfter = n }

// SuspectThreshold returns the resolved escalation threshold (the
// engines also use it as the corrupt-frame strike budget).
func (m *Membership) SuspectThreshold() int { return m.suspectThreshold() }

// suspectThreshold resolves the configured escalation threshold.
func (m *Membership) suspectThreshold() int {
	switch {
	case m.suspectAfter > 0:
		return m.suspectAfter
	case m.suspectAfter < 0:
		return int(^uint(0) >> 1) // never
	default:
		return DefaultSuspectAfter
	}
}

// Add registers a worker as alive and appends it to the join order —
// used both for the initial cluster and for dynamic joins.
func (m *Membership) Add(name string) {
	m.order = append(m.order, name)
	m.live[name] = true
}

// Alive reports whether the named worker is currently live.
func (m *Membership) Alive(name string) bool { return m.live[name] }

// NumLive returns the number of live workers.
func (m *Membership) NumLive() int {
	n := 0
	for _, name := range m.order {
		if m.live[name] {
			n++
		}
	}
	return n
}

// Len returns the number of workers ever added (live or not).
func (m *Membership) Len() int { return len(m.order) }

// Name returns the join-order name at index i ("" when out of range).
func (m *Membership) Name(i int) string {
	if i < 0 || i >= len(m.order) {
		return ""
	}
	return m.order[i]
}

// Live returns the live worker names in join order. The slice is
// freshly allocated; callers may retain or reorder it.
func (m *Membership) Live() []string {
	out := make([]string, 0, len(m.order))
	for _, name := range m.order {
		if m.live[name] {
			out = append(out, name)
		}
	}
	return out
}

// ApplyCrashes executes the fail-stop schedule for iteration it:
// workers whose join-order index is listed die before the round starts,
// taking their data shard with them (Fig. 5). Out-of-range and already-
// dead indices are ignored. Scheduled crashes are not counted as
// demotions in the fault stats — they are injected, not detected.
func (m *Membership) ApplyCrashes(it int) {
	for _, idx := range m.crashAt[it] {
		if idx < 0 || idx >= len(m.order) {
			continue
		}
		m.fail(m.order[idx], false)
	}
}

// Fail demotes a worker fail-stop style: it leaves the live set and, on
// a real transport, its inbox is closed so the worker goroutine (local
// transports) observes the death. The engines call this for stragglers
// whose escalation budget is exhausted and for unrecoverable transport
// deaths.
func (m *Membership) Fail(name string) { m.fail(name, true) }

func (m *Membership) fail(name string, counted bool) {
	if !m.live[name] {
		return
	}
	m.live[name] = false
	delete(m.suspect, name)
	delete(m.misses, name)
	if counted {
		m.faults(name).Demotions++
	}
	if m.net != nil {
		m.net.Crash(name)
	}
}

// Retire removes a worker gracefully at the end of its scheduled
// lifetime (lifetimes.go): it leaves the live set like a fail-stop
// death, but its transport inbox is NOT closed — the engine stops it
// with a protocol message so the goroutine drains its queue and exits
// through its own main loop, letting any in-flight swap traffic
// resolve first. A retirement is a planned departure, so it is counted
// as a Retirement, never a Demotion, and does not trip FaultStats.Any.
// Retiring a dead or unknown worker is a no-op (reported by the return
// value).
func (m *Membership) Retire(name string) bool {
	if !m.live[name] {
		return false
	}
	m.live[name] = false
	delete(m.suspect, name)
	delete(m.misses, name)
	m.faults(name).Retirements++
	return true
}

// Suspect records a miss against a live worker: on the first miss the
// worker enters the suspect state (skipped for dispatch, state
// retained); each further miss ticks its escalation counter, and
// reaching the threshold demotes it permanently. It reports whether
// this call demoted the worker. Calls against dead workers are no-ops.
func (m *Membership) Suspect(name string) (demoted bool) {
	if !m.live[name] {
		return false
	}
	m.suspect[name] = true
	m.misses[name]++
	m.faults(name).Suspects++
	if m.misses[name] >= m.suspectThreshold() {
		m.fail(name, true)
		return true
	}
	return false
}

// Reinstate re-admits a suspect whose feedback or transport reappeared:
// it returns to the active set with its miss counter cleared (misses
// are consecutive). Returns false when the worker is not currently a
// live suspect (already demoted, never suspected, or unknown).
func (m *Membership) Reinstate(name string) bool {
	if !m.live[name] || !m.suspect[name] {
		return false
	}
	delete(m.suspect, name)
	delete(m.misses, name)
	m.faults(name).Rejoins++
	return true
}

// IsSuspect reports whether the named worker is live but suspected.
func (m *Membership) IsSuspect(name string) bool { return m.live[name] && m.suspect[name] }

// Suspects returns the current suspects in join order.
func (m *Membership) Suspects() []string {
	out := make([]string, 0, len(m.suspect))
	for _, name := range m.order {
		if m.live[name] && m.suspect[name] {
			out = append(out, name)
		}
	}
	return out
}

// NumSuspect returns the number of live suspects.
func (m *Membership) NumSuspect() int {
	n := 0
	for name := range m.suspect {
		if m.live[name] {
			n++
		}
	}
	return n
}

// Active returns the dispatchable workers — live minus suspects — in
// join order. The slice is freshly allocated; callers may retain or
// reorder it.
func (m *Membership) Active() []string {
	out := make([]string, 0, len(m.order))
	for _, name := range m.order {
		if m.live[name] && !m.suspect[name] {
			out = append(out, name)
		}
	}
	return out
}

// NumActive returns the number of dispatchable (live, non-suspect)
// workers.
func (m *Membership) NumActive() int {
	n := 0
	for _, name := range m.order {
		if m.live[name] && !m.suspect[name] {
			n++
		}
	}
	return n
}

// Sample returns this round's active workers: all dispatchable workers
// in join order (suspects are skipped — their state is retained but
// they receive no batches until reinstated), or — when ActivePerRound
// is set below that count — a uniform random subset of that size in
// lexicographic order (the §VII.4 client-sampling extension: fewer
// active discriminators than workers, the whole dataset still covered
// over time). The RNG is consumed only when sampling actually
// truncates, so runs without the knob draw an identical stream to runs
// of a sampling-free build.
func (m *Membership) Sample() []string {
	alive := m.Active()
	if m.activePerRound > 0 && m.activePerRound < len(alive) {
		m.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
		alive = alive[:m.activePerRound]
		sort.Strings(alive) // deterministic merge order
	}
	return alive
}

// StopAll sends a best-effort stop message (type stopType, C→W) from
// the named server node to every live worker — the shared half of the
// protocols' shutdown paths, which must run on every exit (including
// error returns) so worker goroutines never outlive a Train call.
// Sends to workers that died between the liveness check and the send
// fail harmlessly: a crashed worker's goroutine has already exited via
// its closed inbox. Callers then join their own worker goroutines
// (the handles are protocol-specific).
func (m *Membership) StopAll(from, stopType string) {
	if m.net == nil {
		return
	}
	for _, name := range m.order {
		if m.live[name] {
			_ = m.net.Send(simnet.Message{From: from, To: name, Type: stopType, Kind: simnet.CtoW})
		}
	}
}

// ActiveBound returns an upper bound on the size of the next Sample —
// min(ActivePerRound, dispatchable count) — without consuming the RNG.
// The pipelined engine uses it to clamp k when generating a round ahead
// of the membership decisions for that round.
func (m *Membership) ActiveBound() int {
	n := m.NumActive()
	if m.activePerRound > 0 && m.activePerRound < n {
		return m.activePerRound
	}
	return n
}
