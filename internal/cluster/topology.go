package cluster

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Topology plans how the workers' per-round feedback flows back to the
// server. The flat star (every worker reports directly) is the paper's
// layout; a tree inserts aggregator workers that reduce their
// children's feedback frames before forwarding, bounding the server's
// per-round fan-in by the tree's root degree instead of K.
//
// The full topology contract — roles, reparenting rules, and how the
// engines consume a Plan — is documented in the package doc
// (membership.go).
type Topology interface {
	// Name identifies the topology ("flat", "tree:2", ...).
	Name() string
	// Plan builds the aggregation plan for one round over the active
	// workers, listed in dispatch order. Implementations MUST be
	// deterministic and MUST NOT consume an RNG: plans are recomputed
	// every round from the live membership (which is how a failed
	// aggregator's children get reparented), and the engines' pinned
	// RNG streams must not shift when a topology is enabled.
	Plan(server string, active []string) *Plan
}

// Plan is one round's aggregation layout. Node roles are implicit:
// the server is Server, a worker with Children is an aggregator, and
// every other worker is a plain leaf.
type Plan struct {
	// Server is the root every contribution ultimately reaches.
	Server string
	// Parent maps each active worker to the node its contribution is
	// sent to: the server for root-level workers, an aggregator
	// worker otherwise.
	Parent map[string]string
	// Children maps the server and each aggregator to the workers
	// whose contributions it reduces, in deterministic plan order —
	// the merge order of the aggregation, so tree runs are
	// reproducible given identical arrival completeness.
	Children map[string][]string
}

// IsAggregator reports whether name is a worker that reduces other
// workers' contributions this round.
func (p *Plan) IsAggregator(name string) bool {
	return name != p.Server && len(p.Children[name]) > 0
}

// Subtree returns name and every descendant below it in plan order.
// The engines use it to account for the contributions that can no
// longer reach the server when an aggregator dies mid-round.
func (p *Plan) Subtree(name string) []string {
	out := []string{name}
	for i := 0; i < len(out); i++ {
		out = append(out, p.Children[out[i]]...)
	}
	return out
}

// Flat is the paper's star topology: every worker reports its feedback
// directly to the server. It is the default and the layout whose
// engine paths the bitwise serial-reference pin replays.
type Flat struct{}

// Name implements Topology.
func (Flat) Name() string { return "flat" }

// Plan implements Topology.
func (Flat) Plan(server string, active []string) *Plan {
	p := &Plan{
		Server:   server,
		Parent:   make(map[string]string, len(active)),
		Children: map[string][]string{server: append([]string(nil), active...)},
	}
	for _, name := range active {
		p.Parent[name] = server
	}
	return p
}

// Tree arranges the active workers into an aggregation tree of the
// given depth: the active list is split into at most Fanin contiguous
// groups, the first worker of each group becomes an aggregator (child
// of the level above), and the rest of its group recurses one level
// deeper below it. Depth 1 degenerates to Flat; Depth 2 gives the
// server Fanin direct children instead of K.
//
// Fanin 0 picks ceil(n^(1/Depth)) per plan — the degree that balances
// the fan-in of every level for the current active count.
type Tree struct {
	Depth int
	Fanin int
}

// Name implements Topology.
func (t Tree) Name() string { return fmt.Sprintf("tree:%d", t.Depth) }

// Plan implements Topology.
func (t Tree) Plan(server string, active []string) *Plan {
	depth := t.Depth
	if depth < 1 {
		depth = 1
	}
	fanin := t.Fanin
	if fanin < 2 {
		fanin = int(math.Ceil(math.Pow(float64(len(active)), 1/float64(depth))))
		if fanin < 2 {
			fanin = 2
		}
	}
	p := &Plan{
		Server:   server,
		Parent:   make(map[string]string, len(active)),
		Children: make(map[string][]string),
	}
	attach(p, server, active, depth, fanin)
	return p
}

// attach hangs nodes below parent: directly when they fit the fan-in
// (or the level budget is spent), otherwise split into contiguous
// groups headed by an aggregator each. Contiguous splitting keeps the
// plan a pure function of the active order — no RNG, no hashing — so
// membership changes reshape the tree minimally and deterministically.
func attach(p *Plan, parent string, nodes []string, depth, fanin int) {
	if len(nodes) == 0 {
		return
	}
	if depth <= 1 || len(nodes) <= fanin {
		for _, name := range nodes {
			p.Parent[name] = parent
			p.Children[parent] = append(p.Children[parent], name)
		}
		return
	}
	groups := fanin
	base, rem := len(nodes)/groups, len(nodes)%groups
	start := 0
	for g := 0; g < groups && start < len(nodes); g++ {
		size := base
		if g < rem {
			size++
		}
		group := nodes[start : start+size]
		start += size
		head := group[0]
		p.Parent[head] = parent
		p.Children[parent] = append(p.Children[parent], head)
		attach(p, head, group[1:], depth-1, fanin)
	}
}

// ParseTopology resolves a topology spec: "" or "flat" is the star,
// "tree:<depth>" is an aggregation tree (depth ≥ 2) with the given
// fan-in (0 = auto). It is the single parser behind the facade, CLI
// flags and test env knobs.
func ParseTopology(spec string, fanin int) (Topology, error) {
	switch {
	case spec == "" || spec == "flat":
		return Flat{}, nil
	case strings.HasPrefix(spec, "tree:"):
		d, err := strconv.Atoi(spec[len("tree:"):])
		if err != nil || d < 2 {
			return nil, fmt.Errorf("cluster: bad tree depth in topology %q (want tree:<depth≥2>)", spec)
		}
		if fanin < 0 || fanin == 1 {
			return nil, fmt.Errorf("cluster: bad fan-in %d (want 0=auto or ≥2)", fanin)
		}
		return Tree{Depth: d, Fanin: fanin}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown topology %q (want flat or tree:<depth>)", spec)
	}
}
