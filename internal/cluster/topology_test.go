package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func topoNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("worker%d", i)
	}
	return out
}

// checkPlan verifies the structural invariants every topology must
// satisfy: each active worker has exactly one parent, every parent
// chain terminates at the server, children lists partition the actives,
// and the plan mentions nobody else.
func checkPlan(t *testing.T, p *Plan, server string, active []string) {
	t.Helper()
	seen := map[string]bool{}
	for _, c := range p.Children {
		for _, name := range c {
			if seen[name] {
				t.Fatalf("%s appears under two parents", name)
			}
			seen[name] = true
		}
	}
	for _, name := range active {
		if !seen[name] {
			t.Fatalf("%s missing from every children list", name)
		}
		// Walk to the server; bound the walk to catch cycles.
		cur := name
		for hops := 0; cur != server; hops++ {
			if hops > len(active) {
				t.Fatalf("parent chain from %s does not terminate", name)
			}
			next, ok := p.Parent[cur]
			if !ok || next == "" {
				t.Fatalf("%s has no parent", cur)
			}
			cur = next
		}
	}
	if len(seen) != len(active) {
		t.Fatalf("plan covers %d nodes, want %d", len(seen), len(active))
	}
}

func TestFlatPlan(t *testing.T) {
	active := topoNames(7)
	p := Flat{}.Plan("server", active)
	checkPlan(t, p, "server", active)
	if got := p.Children["server"]; !reflect.DeepEqual(got, active) {
		t.Fatalf("flat children = %v", got)
	}
	for _, name := range active {
		if p.Parent[name] != "server" {
			t.Fatalf("flat parent of %s = %q", name, p.Parent[name])
		}
		if p.IsAggregator(name) {
			t.Fatalf("flat plan made %s an aggregator", name)
		}
	}
}

func TestTreePlanStructure(t *testing.T) {
	for _, tc := range []struct{ n, depth, fanin int }{
		{9, 2, 0}, {9, 2, 3}, {50, 2, 0}, {500, 2, 0}, {27, 3, 3},
		{1, 2, 0}, {2, 2, 0}, {5, 2, 2}, {100, 3, 0},
	} {
		name := fmt.Sprintf("n=%d_d=%d_f=%d", tc.n, tc.depth, tc.fanin)
		t.Run(name, func(t *testing.T) {
			active := topoNames(tc.n)
			topo := Tree{Depth: tc.depth, Fanin: tc.fanin}
			p := topo.Plan("server", active)
			checkPlan(t, p, "server", active)
			if tc.fanin >= 2 {
				for parent, kids := range p.Children {
					if len(kids) > tc.fanin {
						t.Fatalf("%s has %d children, fan-in %d", parent, len(kids), tc.fanin)
					}
				}
			}
			// Determinism: same inputs, same plan.
			again := topo.Plan("server", active)
			if !reflect.DeepEqual(p, again) {
				t.Fatal("plan is not deterministic")
			}
		})
	}
}

// TestTreePlanReducesServerFanin is the point of the tree: the server's
// direct-child count must be far below the cluster size.
func TestTreePlanReducesServerFanin(t *testing.T) {
	active := topoNames(500)
	p := Tree{Depth: 2}.Plan("server", active)
	if got := len(p.Children["server"]); got >= 100 {
		t.Fatalf("server fan-in %d for K=500 depth-2, want O(sqrt K)", got)
	}
}

// TestTreePlanReparentsAfterLoss: removing an aggregator from the
// active set must yield a valid plan over the survivors — reparenting
// is nothing but a replan.
func TestTreePlanReparentsAfterLoss(t *testing.T) {
	active := topoNames(9)
	topo := Tree{Depth: 2}
	p := topo.Plan("server", active)
	var agg string
	for _, name := range active {
		if p.IsAggregator(name) {
			agg = name
			break
		}
	}
	if agg == "" {
		t.Fatal("no aggregator in a 9-worker depth-2 tree")
	}
	survivors := make([]string, 0, len(active)-1)
	for _, name := range active {
		if name != agg {
			survivors = append(survivors, name)
		}
	}
	checkPlan(t, topo.Plan("server", survivors), "server", survivors)
}

func TestSubtree(t *testing.T) {
	p := Tree{Depth: 2, Fanin: 3}.Plan("server", topoNames(9))
	// With fan-in 3 over 9 workers, worker0 heads the first group of 3.
	want := []string{"worker0", "worker1", "worker2"}
	if got := p.Subtree("worker0"); !reflect.DeepEqual(got, want) {
		t.Fatalf("Subtree(worker0) = %v, want %v", got, want)
	}
	if got := p.Subtree("worker1"); !reflect.DeepEqual(got, []string{"worker1"}) {
		t.Fatalf("Subtree(worker1) = %v", got)
	}
}

func TestParseTopology(t *testing.T) {
	for _, spec := range []string{"", "flat"} {
		topo, err := ParseTopology(spec, 0)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", spec, err)
		}
		if topo.Name() != "flat" {
			t.Fatalf("ParseTopology(%q) = %s", spec, topo.Name())
		}
	}
	topo, err := ParseTopology("tree:2", 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr, ok := topo.(Tree); !ok || tr.Depth != 2 || tr.Fanin != 4 {
		t.Fatalf("ParseTopology(tree:2) = %#v", topo)
	}
	for _, bad := range []string{"tree", "tree:", "tree:1", "tree:x", "mesh"} {
		if _, err := ParseTopology(bad, 0); err == nil {
			t.Fatalf("ParseTopology(%q) accepted", bad)
		}
	}
	if _, err := ParseTopology("tree:2", 1); err == nil {
		t.Fatal("fan-in 1 accepted")
	}
}
