package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"mdgan/internal/simnet"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "worker" + string(rune('0'+i))
	}
	return out
}

func newM(t *testing.T, n int, crashAt map[int][]int, active int) (*Membership, *simnet.ChannelNet) {
	t.Helper()
	net := simnet.NewChannelNet(4)
	m := New(net, rand.New(rand.NewSource(1)), crashAt, active)
	for _, name := range names(n) {
		if err := net.Register(name); err != nil {
			t.Fatal(err)
		}
		m.Add(name)
	}
	return m, net
}

func TestLiveFollowsJoinOrder(t *testing.T) {
	m, net := newM(t, 4, nil, 0)
	defer net.Close()
	if got := m.Live(); !reflect.DeepEqual(got, names(4)) {
		t.Fatalf("Live = %v", got)
	}
	if m.NumLive() != 4 || m.Len() != 4 {
		t.Fatalf("NumLive=%d Len=%d", m.NumLive(), m.Len())
	}
	m.Add("late")
	if got := m.Live(); got[len(got)-1] != "late" {
		t.Fatalf("joiner not last in order: %v", got)
	}
}

func TestApplyCrashesKillsScheduledIndices(t *testing.T) {
	m, net := newM(t, 4, map[int][]int{3: {1, 99, -1}, 5: {1}}, 0)
	defer net.Close()
	m.ApplyCrashes(1) // nothing scheduled
	if m.NumLive() != 4 {
		t.Fatalf("NumLive = %d before any schedule entry", m.NumLive())
	}
	m.ApplyCrashes(3) // kills index 1; out-of-range entries ignored
	if m.Alive("worker1") {
		t.Fatal("worker1 survived its scheduled crash")
	}
	if !net.Down("worker1") {
		t.Fatal("transport was not told about the crash")
	}
	if got := m.Live(); !reflect.DeepEqual(got, []string{"worker0", "worker2", "worker3"}) {
		t.Fatalf("Live = %v", got)
	}
	m.ApplyCrashes(5) // re-killing a dead index is a no-op
	if m.NumLive() != 3 {
		t.Fatalf("NumLive = %d after re-kill", m.NumLive())
	}
}

func TestFailDemotesStraggler(t *testing.T) {
	m, net := newM(t, 3, nil, 0)
	defer net.Close()
	m.Fail("worker2")
	if m.Alive("worker2") || !net.Down("worker2") {
		t.Fatal("Fail did not demote fail-stop style")
	}
	m.Fail("worker2") // idempotent
	if m.NumLive() != 2 {
		t.Fatalf("NumLive = %d", m.NumLive())
	}
	m.Fail("nobody") // unknown names are ignored
}

func TestSampleSubsetsAndStaysSorted(t *testing.T) {
	m, net := newM(t, 6, nil, 2)
	defer net.Close()
	seen := map[string]bool{}
	for round := 0; round < 40; round++ {
		s := m.Sample()
		if len(s) != 2 {
			t.Fatalf("sample size %d", len(s))
		}
		if s[0] >= s[1] {
			t.Fatalf("sample not sorted: %v", s)
		}
		for _, name := range s {
			if !m.Alive(name) {
				t.Fatalf("sampled dead worker %s", name)
			}
			seen[name] = true
		}
	}
	// 40 rounds of 2-of-6: every worker activated with overwhelming
	// probability ((4/6)^40 ≈ 9e-8 per worker of never appearing).
	if len(seen) != 6 {
		t.Fatalf("coverage over rounds: only %d of 6 workers sampled", len(seen))
	}
}

func TestSampleWithoutKnobIsLiveOrderAndDrawsNoRandomness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(7))
	m := New(nil, rng, nil, 0)
	for _, name := range names(5) {
		m.Add(name)
	}
	if got := m.Sample(); !reflect.DeepEqual(got, names(5)) {
		t.Fatalf("Sample = %v", got)
	}
	// ActivePerRound >= live count must also leave the stream alone.
	m2 := New(nil, rng, nil, 5)
	for _, name := range names(5) {
		m2.Add(name)
	}
	m2.Sample()
	if rng.Int63() != before {
		t.Fatal("Sample consumed the RNG without sampling being active")
	}
}

func TestSampleDeterministicForFixedSeed(t *testing.T) {
	run := func() [][]string {
		m := New(nil, rand.New(rand.NewSource(42)), nil, 2)
		for _, name := range names(5) {
			m.Add(name)
		}
		var out [][]string
		for i := 0; i < 10; i++ {
			out = append(out, m.Sample())
		}
		return out
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("sampling not deterministic for a fixed seed")
	}
}

// TestCrashJoinSampleInterleaving drives the three membership
// mechanisms together the way the engines do: crash a worker, join a
// replacement, keep sampling — dead workers never appear, joiners do,
// the order index stays stable for the crash schedule.
func TestCrashJoinSampleInterleaving(t *testing.T) {
	m, net := newM(t, 4, map[int][]int{2: {0}, 6: {2}}, 3)
	defer net.Close()
	for it := 1; it <= 10; it++ {
		m.ApplyCrashes(it)
		if it == 4 {
			if err := net.Register("joiner"); err != nil {
				t.Fatal(err)
			}
			m.Add("joiner")
		}
		active := m.Sample()
		if want := m.ActiveBound(); len(active) != want {
			t.Fatalf("it %d: %d active, bound says %d", it, len(active), want)
		}
		for _, name := range active {
			if !m.Alive(name) {
				t.Fatalf("it %d: dead worker %s sampled", it, name)
			}
		}
	}
	// Schedule indices referred to the original join order even after
	// the join: index 2 was worker2, not the joiner.
	if m.Alive("worker0") || m.Alive("worker2") {
		t.Fatal("scheduled crashes missed their targets")
	}
	if !m.Alive("joiner") || !m.Alive("worker1") || !m.Alive("worker3") {
		t.Fatalf("Live = %v", m.Live())
	}
	if m.NumLive() != 3 || m.Len() != 5 {
		t.Fatalf("NumLive=%d Len=%d", m.NumLive(), m.Len())
	}
}

// TestStopAllReachesOnlyLiveWorkers: the shared shutdown half sends
// one stop per live worker and skips the dead (whose inboxes are
// closed anyway).
func TestStopAllReachesOnlyLiveWorkers(t *testing.T) {
	m, net := newM(t, 3, nil, 0)
	defer net.Close()
	if err := net.Register("server"); err != nil {
		t.Fatal(err)
	}
	m.Fail("worker1")
	m.StopAll("server", "stop")
	for _, tc := range []struct {
		node string
		want bool
	}{{"worker0", true}, {"worker2", true}} {
		select {
		case msg := <-net.Inbox(tc.node):
			if msg.Type != "stop" || msg.From != "server" {
				t.Fatalf("%s got %+v", tc.node, msg)
			}
		default:
			t.Fatalf("%s received no stop", tc.node)
		}
	}
	// The dead worker's inbox was closed by Fail; no send reached it.
	if _, ok := <-net.Inbox("worker1"); ok {
		t.Fatal("dead worker received a message")
	}
	// A nil-net membership is a no-op, not a panic.
	m2 := New(nil, nil, nil, 0)
	m2.Add("w")
	m2.StopAll("server", "stop")
}

func TestActiveBound(t *testing.T) {
	m, net := newM(t, 5, nil, 3)
	defer net.Close()
	if m.ActiveBound() != 3 {
		t.Fatalf("bound = %d", m.ActiveBound())
	}
	m.Fail("worker0")
	m.Fail("worker1")
	m.Fail("worker2")
	if m.ActiveBound() != 2 {
		t.Fatalf("bound = %d with 2 live", m.ActiveBound())
	}
	if m.Name(1) != "worker1" || m.Name(9) != "" {
		t.Fatal("Name indexing broken")
	}
}

// --- Transient-fault lifecycle (suspect → demote → rejoin) ---

func TestSuspectLifecycle(t *testing.T) {
	m, net := newM(t, 3, nil, 0)
	defer net.Close()

	// First miss: suspect, still live, excluded from Active/Sample.
	if demoted := m.Suspect("worker1"); demoted {
		t.Fatal("first miss must not demote")
	}
	if !m.IsSuspect("worker1") || !m.Alive("worker1") {
		t.Fatal("suspect must stay live")
	}
	if got := m.Active(); !reflect.DeepEqual(got, []string{"worker0", "worker2"}) {
		t.Fatalf("Active = %v", got)
	}
	if got := m.Sample(); !reflect.DeepEqual(got, []string{"worker0", "worker2"}) {
		t.Fatalf("Sample = %v", got)
	}
	if got := m.Live(); !reflect.DeepEqual(got, names(3)) {
		t.Fatalf("Live must retain the suspect: %v", got)
	}
	if m.NumActive() != 2 || m.NumSuspect() != 1 || m.NumLive() != 3 {
		t.Fatalf("NumActive=%d NumSuspect=%d NumLive=%d", m.NumActive(), m.NumSuspect(), m.NumLive())
	}
	if got := m.Suspects(); !reflect.DeepEqual(got, []string{"worker1"}) {
		t.Fatalf("Suspects = %v", got)
	}

	// Reinstatement clears the consecutive-miss counter.
	if !m.Reinstate("worker1") {
		t.Fatal("reinstating a live suspect must succeed")
	}
	if m.IsSuspect("worker1") || m.NumActive() != 3 {
		t.Fatal("reinstated worker must be active again")
	}
	if m.Reinstate("worker1") {
		t.Fatal("reinstating a non-suspect must report false")
	}

	// Escalation: DefaultSuspectAfter consecutive misses demote.
	var demoted bool
	for i := 0; i < DefaultSuspectAfter; i++ {
		demoted = m.Suspect("worker1")
	}
	if !demoted {
		t.Fatalf("%d consecutive misses must demote", DefaultSuspectAfter)
	}
	if m.Alive("worker1") || m.IsSuspect("worker1") {
		t.Fatal("demoted worker must leave both live and suspect sets")
	}
	if m.Suspect("worker1") {
		t.Fatal("suspecting a dead worker must be a no-op")
	}
	if m.Reinstate("worker1") {
		t.Fatal("a demoted worker cannot be reinstated")
	}

	f := m.Faults(7)
	if f.Suspects != DefaultSuspectAfter+1 || f.Rejoins != 1 || f.Demotions != 1 {
		t.Fatalf("fault totals = %+v", f)
	}
	if f.TransportRetries != 7 || !f.Any() {
		t.Fatalf("retries not carried through: %+v", f)
	}
	w1 := f.Workers["worker1"]
	if w1.Suspects != DefaultSuspectAfter+1 || w1.Rejoins != 1 || w1.Demotions != 1 {
		t.Fatalf("worker1 counters = %+v", w1)
	}
}

func TestSuspectThresholdKnob(t *testing.T) {
	m, net := newM(t, 2, nil, 0)
	defer net.Close()
	m.SetSuspectThreshold(1)
	if !m.Suspect("worker0") {
		t.Fatal("threshold 1 must demote on the first miss")
	}
	m.SetSuspectThreshold(-1)
	for i := 0; i < 50; i++ {
		if m.Suspect("worker1") {
			t.Fatal("negative threshold must never escalate")
		}
	}
	if !m.Alive("worker1") || !m.IsSuspect("worker1") {
		t.Fatal("unescalated suspect must stay live")
	}
	if m.SuspectThreshold() != int(^uint(0)>>1) {
		t.Fatalf("resolved threshold = %d", m.SuspectThreshold())
	}
	m.SetSuspectThreshold(0)
	if m.SuspectThreshold() != DefaultSuspectAfter {
		t.Fatalf("default threshold = %d", m.SuspectThreshold())
	}
}

func TestScheduledCrashesAreNotCountedAsDemotions(t *testing.T) {
	m, net := newM(t, 3, map[int][]int{2: {0}}, 0)
	defer net.Close()
	m.ApplyCrashes(2)
	m.Fail("worker1")
	f := m.Faults(0)
	if f.Demotions != 1 {
		t.Fatalf("demotions = %d: the scheduled crash is injected, not detected", f.Demotions)
	}
	if _, ok := f.Workers["worker0"]; ok {
		t.Fatal("crashed worker must have no fault record")
	}
}

func TestCorruptStrikesAccumulate(t *testing.T) {
	m, net := newM(t, 2, nil, 0)
	defer net.Close()
	if n := m.NoteCorrupt("worker0"); n != 1 {
		t.Fatalf("first strike = %d", n)
	}
	if n := m.NoteCorrupt("worker0"); n != 2 {
		t.Fatalf("second strike = %d", n)
	}
	m.NoteTimeout("worker0")
	f := m.Faults(0)
	if f.CorruptFrames != 2 || f.Timeouts != 1 {
		t.Fatalf("totals = %+v", f)
	}
	if s := f.String(); s == "" {
		t.Fatal("summary must render")
	}
}

func TestSuspectExcludedFromActiveBoundAndStopAllStillReaches(t *testing.T) {
	m, net := newM(t, 3, nil, 2)
	defer net.Close()
	if err := net.Register("srv"); err != nil {
		t.Fatal(err)
	}
	m.Suspect("worker2")
	if b := m.ActiveBound(); b != 2 {
		t.Fatalf("ActiveBound = %d", b)
	}
	m.Suspect("worker1")
	if b := m.ActiveBound(); b != 1 {
		t.Fatalf("ActiveBound with 2 suspects = %d", b)
	}
	// Shutdown must still reach suspects: their goroutines are alive.
	m.StopAll("srv", "stop")
	for _, name := range names(3) {
		select {
		case msg := <-net.Inbox(name):
			if msg.Type != "stop" {
				t.Fatalf("%s got %q", name, msg.Type)
			}
		default:
			t.Fatalf("%s (suspect or not) must receive stop", name)
		}
	}
}
