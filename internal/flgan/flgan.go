// Package flgan implements FL-GAN, the paper's adaptation of federated
// learning (McMahan et al.) to GANs (§III-c): every worker holds a full
// (G, D) couple treated as one atomic object, trains locally on its
// shard for E epochs, then sends both parameter sets to the server,
// which averages them (FedAvg) and broadcasts the result at the start
// of the next round. It is the communication-efficient baseline MD-GAN
// is compared against in Figs. 3–6 and Tables II–IV.
//
// Cluster membership — fail-stop crash schedules, straggler demotion
// on send failures, and per-round client sampling (the original
// federated-learning setting MD-GAN's §VII.4 borrows back) — comes
// from the shared internal/cluster layer, so the baseline runs the
// same failure scenarios as MD-GAN: a crashed worker's shard and local
// couple disappear, the server keeps averaging the survivors.
package flgan

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"mdgan/internal/cluster"
	"mdgan/internal/dataset"
	"mdgan/internal/gan"
	"mdgan/internal/nn"
	"mdgan/internal/opt"
	"mdgan/internal/simnet"
	"mdgan/internal/tensor"
)

// Config configures an FL-GAN run.
type Config struct {
	gan.TrainConfig
	// Epochs is E: local epochs per round (default 1).
	Epochs int
	// Net supplies the transport; nil selects an in-process ChannelNet.
	Net simnet.Net
	// CrashAt schedules fail-stop worker crashes: round number →
	// indices of workers to kill at the start of that round. Their
	// shards (and local couples) disappear with them — the FL-GAN
	// analogue of the Fig. 5 scenario.
	CrashAt map[int][]int
	// ActivePerRound, when in (0, N), has the server synchronise only
	// a uniform random subset of workers each round (federated
	// learning's client sampling). 0 activates everyone.
	ActivePerRound int
}

// EvalFunc observes the server's averaged generator after each round.
type EvalFunc func(iter int, g *gan.Generator)

// Result is the outcome of an FL-GAN run.
type Result struct {
	// Model is the final averaged couple held by the server.
	Model *gan.GAN
	// Traffic is the byte/message accounting snapshot.
	Traffic simnet.Traffic
	// Rounds is the number of synchronisation rounds performed.
	Rounds int
	// Iters is the number of local generator iterations each worker
	// performed in total.
	Iters int
	// Live lists the workers that survived the run, sorted by name.
	Live []string
}

const serverName = "server"

func workerName(i int) string { return fmt.Sprintf("flworker%d", i) }

// Message types.
const (
	msgModel = "model" // C→W: averaged (G, D) parameters; W→C: local ones
	msgStop  = "stop"
)

// encodeCouple serialises G then D parameters (w and θ — the paper's
// N(θ+w) per-round traffic).
func encodeCouple(m *gan.GAN) []byte {
	var buf bytes.Buffer
	if _, err := m.G.Net.WriteParams(&buf); err != nil {
		panic(err)
	}
	if m.G.Embed != nil {
		if _, err := m.G.Embed.W.WriteTo(&buf); err != nil {
			panic(err)
		}
	}
	if _, err := m.D.WriteParams(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func decodeCoupleInto(m *gan.GAN, p []byte) error {
	r := bytes.NewReader(p)
	if _, err := m.G.Net.ReadParams(r); err != nil {
		return fmt.Errorf("flgan: decode G: %w", err)
	}
	if m.G.Embed != nil {
		if _, err := m.G.Embed.W.ReadFrom(r); err != nil {
			return fmt.Errorf("flgan: decode embed: %w", err)
		}
	}
	if _, err := m.D.ReadParams(r); err != nil {
		return fmt.Errorf("flgan: decode D: %w", err)
	}
	return nil
}

// fullVector flattens every (G, D) parameter — generator network,
// conditioning embedding, discriminator trunk and both heads — in the
// fixed order setFullVector expects.
func fullVector(m *gan.GAN) []float64 {
	v := m.G.Net.ParamVector()
	if m.G.Embed != nil {
		for _, x := range m.G.Embed.W.Data {
			v = append(v, float64(x))
		}
	}
	v = append(v, m.D.Trunk.ParamVector()...)
	v = append(v, m.D.Src.ParamVector()...)
	if m.D.Cls != nil {
		v = append(v, m.D.Cls.ParamVector()...)
	}
	return v
}

// Train runs FL-GAN over the shards. Iters counts LOCAL generator
// iterations per worker (matching the x-axes of Fig. 3, where FL-GAN
// scores are plotted against worker iterations); a synchronisation
// round happens every E·m/b local iterations.
func Train(shards []*dataset.Dataset, arch gan.Arch, cfg Config, eval EvalFunc) (*Result, error) {
	cfg.TrainConfig = cfg.TrainConfig.Defaults()
	if cfg.Epochs == 0 {
		cfg.Epochs = 1
	}
	n := len(shards)
	if n == 0 {
		return nil, fmt.Errorf("flgan: no shards")
	}

	net := cfg.Net
	if net == nil {
		net = simnet.NewChannelNet(0)
		defer net.Close()
	}
	if err := net.Register(serverName); err != nil {
		return nil, err
	}

	// Server model; every worker starts from the same parameters
	// (federated learning synchronises at the start of each round).
	global := arch.NewGAN(cfg.Seed, cfg.GenLoss, cfg.ClsWeight)

	m := shards[0].Len()
	for _, sh := range shards {
		if sh.Len() < m {
			m = sh.Len()
		}
	}
	roundIters := cfg.Epochs * m / cfg.Batch
	if roundIters < 1 {
		roundIters = 1
	}
	rounds := cfg.Iters / roundIters
	if rounds < 1 {
		rounds = 1
	}

	// Workers.
	type flWorker struct {
		name    string
		model   *gan.GAN
		optG    *opt.Adam
		optD    *opt.Adam
		sampler *dataset.Sampler
		rng     *rand.Rand
		done    chan struct{}
	}
	workers := make([]*flWorker, n)
	for i := range workers {
		name := workerName(i)
		if err := net.Register(name); err != nil {
			return nil, err
		}
		w := &flWorker{
			name:    name,
			model:   global.Clone(),
			optG:    opt.NewAdam(cfg.OptG),
			optD:    opt.NewAdam(cfg.OptD),
			sampler: dataset.NewSampler(shards[i], cfg.Seed+104729*int64(i+1)),
			rng:     rand.New(rand.NewSource(cfg.Seed + 1299709*int64(i+1))),
			done:    make(chan struct{}),
		}
		workers[i] = w
		go func() {
			defer close(w.done)
			inbox := net.Inbox(w.name)
			for msg := range inbox {
				switch msg.Type {
				case msgStop:
					return
				case msgModel:
					// Synchronise with the server's averaged couple,
					// then run E local epochs (§III-c).
					if err := decodeCoupleInto(w.model, msg.Payload); err != nil {
						return
					}
					for it := 0; it < roundIters; it++ {
						xr, lr := w.sampler.Sample(cfg.Batch)
						xg, lg := w.model.G.Generate(cfg.Batch, w.rng, true)
						for l := 0; l < cfg.DiscSteps; l++ {
							gan.DiscStep(w.model.D, w.model.LossConfig, w.optD, xr, lr, xg, lg)
						}
						gan.GenStepLocal(w.model, w.optG, cfg.Batch, w.rng)
					}
					if err := net.Send(simnet.Message{
						From: w.name, To: serverName, Type: msgModel,
						Kind: simnet.WtoC, Payload: encodeCouple(w.model),
					}); err != nil {
						return
					}
				}
			}
		}()
	}

	// Membership: the shared crash/join/sampling layer. The RNG is
	// FL-GAN's own (nothing else here draws server-side randomness).
	mem := cluster.New(net, rand.New(rand.NewSource(cfg.Seed+104659)), cfg.CrashAt, cfg.ActivePerRound)
	for _, w := range workers {
		mem.Add(w.name)
	}

	// Shutdown runs on every exit path (the error returns used to leak
	// the worker goroutines when cfg.Net was caller-supplied).
	stopped := false
	shutdown := func() {
		if stopped {
			return
		}
		stopped = true
		mem.StopAll(serverName, msgStop)
		for _, w := range workers {
			<-w.done
		}
	}
	defer shutdown()

	// Server rounds.
	shadow := global.Clone() // decode buffer for incoming worker models
	inbox := net.Inbox(serverName)
	nextEval := cfg.EvalEvery
	completed := 0
	for r := 1; r <= rounds; r++ {
		mem.ApplyCrashes(r)
		active := mem.Sample()
		if len(active) == 0 {
			break // every worker crashed: training ends
		}
		payload := encodeCouple(global)
		msgs := make([]simnet.Message, len(active))
		for i, name := range active {
			msgs[i] = simnet.Message{
				From: serverName, To: name, Type: msgModel,
				Kind: simnet.CtoW, Payload: payload,
			}
		}
		// A destination that is down mid-round (a crash that raced the
		// send, or a dead peer on a real transport) is demoted and the
		// round continues with the survivors; other transport errors
		// stay fatal.
		sent := make(map[string]bool, len(active))
		for i, err := range simnet.BroadcastEach(net, msgs) {
			switch {
			case err == nil:
				sent[active[i]] = true
			case errors.Is(err, simnet.ErrNodeDown):
				mem.Fail(active[i])
			default:
				return nil, fmt.Errorf("flgan: broadcast round %d: %w", r, err)
			}
		}
		if len(sent) == 0 {
			continue
		}
		// Average the returned parameter vectors. Sum in worker order
		// for determinism.
		vectors := make(map[string][]float64, len(sent))
		for len(vectors) < len(sent) {
			msg, ok := <-inbox
			if !ok {
				return nil, fmt.Errorf("flgan: server inbox closed")
			}
			if msg.Type != msgModel || !sent[msg.From] {
				continue
			}
			if err := decodeCoupleInto(shadow, msg.Payload); err != nil {
				return nil, err
			}
			vectors[msg.From] = fullVector(shadow)
		}
		names := make([]string, 0, len(vectors))
		for name := range vectors {
			names = append(names, name)
		}
		sort.Strings(names)
		avg := make([]float64, len(vectors[names[0]]))
		for _, name := range names {
			v := vectors[name]
			for i := range avg {
				avg[i] += v[i]
			}
		}
		inv := 1 / float64(len(names))
		for i := range avg {
			avg[i] *= inv
		}
		if err := setFullVector(global, avg); err != nil {
			return nil, err
		}
		// completed counts rounds in which workers actually trained —
		// a round skipped because every sampled destination was down
		// contributes no local iterations, so Result.Iters and the
		// eval x-axis must not count it.
		completed++
		if eval != nil && cfg.EvalEvery > 0 {
			// Report at the equivalent local-iteration count so curves
			// are comparable with MD-GAN and standalone; rounds rarely
			// align with EvalEvery exactly, so fire on every crossing.
			it := completed * roundIters
			if it >= nextEval {
				eval(it, global.G)
				for nextEval <= it {
					nextEval += cfg.EvalEvery
				}
			}
		}
	}
	shutdown()
	live := mem.Live()
	sort.Strings(live)
	return &Result{
		Model:   global,
		Traffic: net.Snapshot(),
		Rounds:  completed,
		Iters:   completed * roundIters,
		Live:    live,
	}, nil
}

// setFullVector loads the averaged full-couple vector back into the
// model, in the same order coupleVector (+ heads) produced it.
func setFullVector(m *gan.GAN, v []float64) error {
	gLen := m.G.Net.NumParams()
	if err := m.G.Net.SetParamVector(v[:gLen]); err != nil {
		return err
	}
	off := gLen
	if m.G.Embed != nil {
		e := m.G.Embed.W.Size()
		for i, x := range v[off : off+e] {
			m.G.Embed.W.Data[i] = tensor.Elem(x)
		}
		off += e
	}
	tLen := m.D.Trunk.NumParams()
	if err := m.D.Trunk.SetParamVector(v[off : off+tLen]); err != nil {
		return err
	}
	off += tLen
	sLen := m.D.Src.NumParams()
	if err := m.D.Src.SetParamVector(v[off : off+sLen]); err != nil {
		return err
	}
	off += sLen
	if m.D.Cls != nil {
		cLen := m.D.Cls.NumParams()
		if err := m.D.Cls.SetParamVector(v[off : off+cLen]); err != nil {
			return err
		}
		off += cLen
	}
	if off != len(v) {
		return fmt.Errorf("flgan: vector length %d, consumed %d", len(v), off)
	}
	return nil
}

// RoundTripBytes returns the per-round traffic of one worker in each
// direction: the serialised couple size (the paper's θ+w entry in
// Table III).
func RoundTripBytes(arch gan.Arch, seed int64, mode nn.GenLossMode, clsWeight float64) int64 {
	m := arch.NewGAN(seed, mode, clsWeight)
	return int64(len(encodeCouple(m)))
}
