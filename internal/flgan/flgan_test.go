package flgan

import (
	"math"
	mathrand "math/rand"
	"testing"

	"mdgan/internal/dataset"
	"mdgan/internal/gan"
	"mdgan/internal/nn"
	"mdgan/internal/opt"
	"mdgan/internal/simnet"
)

func ringShards(n, perShard int, seed int64) []*dataset.Dataset {
	ds := dataset.GaussianRing(n*perShard, 8, 2.0, 0.05, seed)
	return dataset.Split(ds, n, seed+1)
}

func baseConfig() Config {
	return Config{
		TrainConfig: gan.TrainConfig{
			Batch: 16, Iters: 20, DiscSteps: 1,
			GenLoss: nn.GenLossNonSaturating,
			OptG:    opt.AdamConfig{LR: 1e-3}, OptD: opt.AdamConfig{LR: 4e-3},
			Seed: 7,
		},
		Epochs: 1,
	}
}

func TestTrainRunsAndRounds(t *testing.T) {
	shards := ringShards(3, 64, 1) // m=64, b=16 → 4 iters/round
	cfg := baseConfig()
	cfg.Iters = 20
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d, want 20/4 = 5", res.Rounds)
	}
	if res.Iters != 20 {
		t.Fatalf("iters = %d", res.Iters)
	}
}

// TestTrafficIsModelSized verifies the Table III structure: every round
// moves exactly θ+w per worker in each direction, independent of batch
// size — the defining property that separates FL-GAN from MD-GAN.
func TestTrafficIsModelSized(t *testing.T) {
	shards := ringShards(2, 64, 3)
	cfg := baseConfig()
	cfg.Iters = 8 // 2 rounds
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	couple := RoundTripBytes(gan.RingMLP(), 1, cfg.GenLoss, cfg.ClsWeight)
	wantPerDirection := int64(2) /*workers*/ * int64(res.Rounds) * couple
	if got := res.Traffic.Bytes[simnet.CtoW]; got != wantPerDirection {
		t.Fatalf("C→W = %d, want %d", got, wantPerDirection)
	}
	if got := res.Traffic.Bytes[simnet.WtoC]; got != wantPerDirection {
		t.Fatalf("W→C = %d, want %d", got, wantPerDirection)
	}
	if got := res.Traffic.Bytes[simnet.WtoW]; got != 0 {
		t.Fatalf("FL-GAN has no W→W traffic, got %d", got)
	}
	// Traffic must not depend on batch size.
	cfg2 := cfg
	cfg2.Batch = 32
	cfg2.Iters = 4 // keep 2 rounds (m/b = 2)
	res2, err := Train(ringShards(2, 64, 3), gan.RingMLP(), cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Traffic.Bytes[simnet.CtoW] != res.Traffic.Bytes[simnet.CtoW] {
		t.Fatalf("FL-GAN traffic changed with batch size: %d vs %d",
			res2.Traffic.Bytes[simnet.CtoW], res.Traffic.Bytes[simnet.CtoW])
	}
}

// TestAveragingIsExact runs one round with DiscSteps=-1 and Iters so
// small that local models only drift via generator updates, then checks
// the global model equals the element-wise mean of the (identically
// seeded) worker results by construction: with identical RNG streams
// and shards of identical data the workers produce identical models, so
// the average must equal any one of them. Here we use one worker, where
// FedAvg must be the identity on that worker's result.
func TestAveragingSingleWorkerIsIdentity(t *testing.T) {
	shards := ringShards(1, 64, 5)
	cfg := baseConfig()
	cfg.Iters = 4 // one round
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: standalone training with matching seeds/streams.
	// (Worker 0 uses sampler seed Seed+104729 and rng seed Seed+1299709;
	// replicate through the exported knobs by running FL again — the
	// run must be deterministic.)
	res2, err := Train(ringShards(1, 64, 5), gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := fullVector(res.Model)
	b := fullVector(res2.Model)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FL-GAN run not deterministic")
		}
	}
}

func TestVectorRoundTrip(t *testing.T) {
	m := gan.ScaledMLP(32).NewGAN(11, nn.GenLossNonSaturating, 1)
	v := fullVector(m)
	m2 := gan.ScaledMLP(32).NewGAN(12, nn.GenLossNonSaturating, 1)
	if err := setFullVector(m2, v); err != nil {
		t.Fatal(err)
	}
	v2 := fullVector(m2)
	for i := range v {
		if v[i] != v2[i] {
			t.Fatalf("vector round trip mismatch at %d", i)
		}
	}
}

func TestEncodeDecodeCouple(t *testing.T) {
	a := gan.ScaledMLP(32).NewGAN(13, nn.GenLossNonSaturating, 1)
	b := gan.ScaledMLP(32).NewGAN(14, nn.GenLossNonSaturating, 1)
	if err := decodeCoupleInto(b, encodeCouple(a)); err != nil {
		t.Fatal(err)
	}
	va, vb := fullVector(a), fullVector(b)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("couple transfer mismatch at %d", i)
		}
	}
}

// TestFLGANLearnsRing: end-to-end federated learning moves generated
// samples onto the ring.
func TestFLGANLearnsRing(t *testing.T) {
	shards := ringShards(3, 300, 7)
	cfg := baseConfig()
	cfg.Batch = 32
	cfg.Iters = 400
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := sampleRadii(t, res.Model)
	if x < 1.0 || x > 3.0 {
		t.Fatalf("mean generated radius %v, want ~2", x)
	}
}

func sampleRadii(t *testing.T, m *gan.GAN) float64 {
	t.Helper()
	rng := newTestRand()
	x, _ := m.G.Generate(256, rng, false)
	sum := 0.0
	for i := 0; i < x.Dim(0); i++ {
		sum += math.Hypot(x.At(i, 0), x.At(i, 1))
	}
	return sum / float64(x.Dim(0))
}

func TestEvalHook(t *testing.T) {
	shards := ringShards(2, 64, 9)
	cfg := baseConfig()
	cfg.Iters = 12 // 3 rounds of 4 iters
	cfg.EvalEvery = 4
	var calls []int
	_, err := Train(shards, gan.RingMLP(), cfg, func(it int, g *gan.Generator) {
		calls = append(calls, it)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 3 {
		t.Fatalf("eval calls = %v, want one per round", calls)
	}
}

func newTestRand() *mathrand.Rand { return mathrand.New(mathrand.NewSource(77)) }

// TestCrashScheduleCompletesWithSurvivors: FL-GAN now runs the same
// fail-stop crash schedules as MD-GAN through the shared membership
// layer — a crashed worker's couple and shard disappear, the server
// keeps averaging the survivors and the run completes.
func TestCrashScheduleCompletesWithSurvivors(t *testing.T) {
	shards := ringShards(4, 64, 11) // m=64, b=16 → 4 iters/round
	cfg := baseConfig()
	cfg.Iters = 32 // 8 rounds
	cfg.CrashAt = map[int][]int{3: {0}, 5: {2}}
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 8 {
		t.Fatalf("rounds = %d; crashes must not stop training", res.Rounds)
	}
	if len(res.Live) != 2 {
		t.Fatalf("live = %v, want 2 survivors", res.Live)
	}
	for _, name := range res.Live {
		if name == workerName(0) || name == workerName(2) {
			t.Fatalf("crashed worker %s reported live", name)
		}
	}
	// Post-crash rounds move fewer couples: exactly the per-round
	// survivor count in each direction (4,4,3,3 then 2 for rounds 5-8).
	couple := RoundTripBytes(gan.RingMLP(), 1, cfg.GenLoss, cfg.ClsWeight)
	if want := int64(4+4+3+3+2+2+2+2) * couple; res.Traffic.Bytes[simnet.CtoW] != want {
		t.Fatalf("C→W bytes = %d, want %d", res.Traffic.Bytes[simnet.CtoW], want)
	}
}

func TestAllWorkersCrashedEndsRun(t *testing.T) {
	shards := ringShards(2, 64, 13)
	cfg := baseConfig()
	cfg.Iters = 40 // 10 rounds planned
	cfg.CrashAt = map[int][]int{3: {0, 1}}
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 || len(res.Live) != 0 {
		t.Fatalf("rounds=%d live=%v; run must end when every worker dies", res.Rounds, res.Live)
	}
	if res.Iters != 2*4 {
		t.Fatalf("iters = %d, want the completed rounds' worth", res.Iters)
	}
}

// TestClientSampling: ActivePerRound bounds each round's participants;
// traffic drops proportionally and every worker still participates
// over time (the original federated-learning setting).
func TestClientSampling(t *testing.T) {
	const n = 5
	shards := ringShards(n, 64, 17)
	cfg := baseConfig()
	cfg.Iters = 48 // 12 rounds
	cfg.ActivePerRound = 2
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	couple := RoundTripBytes(gan.RingMLP(), 1, cfg.GenLoss, cfg.ClsWeight)
	if want := int64(2*12) * couple; res.Traffic.Bytes[simnet.CtoW] != want {
		t.Fatalf("C→W bytes = %d, want %d (2 of %d workers × 12 rounds)",
			res.Traffic.Bytes[simnet.CtoW], want, n)
	}
	for name, ingress := range res.Traffic.IngressByNode {
		if name == serverName {
			continue
		}
		if ingress == 0 {
			t.Fatalf("worker %s never sampled across 12 rounds", name)
		}
	}
	if len(res.Live) != n {
		t.Fatalf("live = %v", res.Live)
	}
}

// TestCrashedRunStillLearns: the ring end-to-end check under a crash
// schedule — the surviving federation keeps converging.
func TestCrashedRunStillLearns(t *testing.T) {
	shards := ringShards(3, 300, 19)
	cfg := baseConfig()
	cfg.Batch = 32
	cfg.Iters = 400
	cfg.CrashAt = map[int][]int{10: {1}}
	res, err := Train(shards, gan.RingMLP(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Live) != 2 {
		t.Fatalf("live = %v", res.Live)
	}
	if x := sampleRadii(t, res.Model); x < 1.0 || x > 3.0 {
		t.Fatalf("surviving federation diverged: mean radius %v", x)
	}
}
