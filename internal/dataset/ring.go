package dataset

import (
	"math"
	"math/rand"

	"mdgan/internal/tensor"
)

// GaussianRing generates the classic 2-D GAN toy problem: n points drawn
// from a mixture of `modes` Gaussians placed uniformly on a circle of
// the given radius, each with standard deviation std. Labels identify
// the mode. Mode collapse — the failure the minibatch-discrimination
// layer exists to catch — is directly visible on this set.
func GaussianRing(n, modes int, radius, std float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{Name: "gaussianring", Classes: modes, C: 0, H: 0, W: 2}
	ds.X = newVecTensor(n, 2)
	ds.Labels = make([]int, n)
	for i := 0; i < n; i++ {
		m := rng.Intn(modes)
		ds.Labels[i] = m
		angle := 2 * math.Pi * float64(m) / float64(modes)
		ds.X.Data[2*i] = tensor.Elem(radius*math.Cos(angle) + std*rng.NormFloat64())
		ds.X.Data[2*i+1] = tensor.Elem(radius*math.Sin(angle) + std*rng.NormFloat64())
	}
	return ds
}
