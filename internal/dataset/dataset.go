// Package dataset provides the training data used by the experiments.
// The paper evaluates on MNIST, CIFAR10 and CelebA; those downloads are
// unavailable to an offline module, so this package generates synthetic
// datasets with the same tensor formats, class structure and difficulty
// ordering (documented in DESIGN.md §2):
//
//   - SynthDigits — 28×28×1 procedural seven-segment digits (MNIST stand-in)
//   - SynthCIFAR  — 32×32×3 class-conditional colour/texture patterns
//   - SynthFaces  — 32×32×3 procedural face compositions (CelebA stand-in)
//   - GaussianRing — 2-D mixture-of-Gaussians toy set for fast tests
//
// All generators are deterministic given a seed. Pixel values live in
// [−1, 1], matching the Tanh output of the generators.
package dataset

import (
	"fmt"
	"math/rand"

	"mdgan/internal/tensor"
)

// Dataset is an in-memory labelled dataset. X has shape (N, C, H, W) for
// images or (N, D) for vector data.
type Dataset struct {
	Name    string
	X       *tensor.Tensor
	Labels  []int
	Classes int
	// Image geometry; C == 0 means vector data of dimension W.
	C, H, W int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Dim(0) }

// SampleDim returns the flattened per-sample dimension (the paper's
// object size d, in floats).
func (d *Dataset) SampleDim() int { return d.X.Size() / d.Len() }

// Batch gathers the samples at the given indices, returning the data
// tensor and labels.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	x := d.X.Gather(idx)
	labels := make([]int, len(idx))
	for i, j := range idx {
		labels[i] = d.Labels[j]
	}
	return x, labels
}

// Sampler draws random batches from a dataset with its own RNG, so each
// worker samples independently and reproducibly.
type Sampler struct {
	ds  *Dataset
	rng *rand.Rand
	// Reused batch storage: one training iteration draws and consumes a
	// batch before the next draw, so Sample hands out the same buffers
	// every call.
	idx   []int
	x     *tensor.Tensor
	lab   []int
	shape []int
}

// NewSampler returns a sampler over ds seeded with seed.
func NewSampler(ds *Dataset, seed int64) *Sampler {
	return &Sampler{ds: ds, rng: rand.New(rand.NewSource(seed))}
}

// Sample draws a uniform batch of size b with replacement. The returned
// tensor and label slice are sampler-owned and valid until the next
// Sample call.
func (s *Sampler) Sample(b int) (*tensor.Tensor, []int) {
	if cap(s.idx) < b {
		s.idx = make([]int, b)
	}
	s.idx = s.idx[:b]
	for i := range s.idx {
		s.idx[i] = s.rng.Intn(s.ds.Len())
	}
	xs := s.ds.X.Shape()
	s.shape = append(s.shape[:0], b)
	s.shape = append(s.shape, xs[1:]...)
	s.x = tensor.Ensure(s.x, s.shape...)
	rowVol := s.ds.X.Size() / xs[0]
	if cap(s.lab) < b {
		s.lab = make([]int, b)
	}
	s.lab = s.lab[:b]
	for i, j := range s.idx {
		copy(s.x.Data[i*rowVol:(i+1)*rowVol], s.ds.X.Data[j*rowVol:(j+1)*rowVol])
		s.lab[i] = s.ds.Labels[j]
	}
	return s.x, s.lab
}

// Split partitions ds into n i.i.d. shards of near-equal size
// (|B_n| = |B|/n as in paper §V-A), by shuffling with the given seed and
// dealing round-robin. Every sample lands in exactly one shard.
func Split(ds *Dataset, n int, seed int64) []*Dataset {
	if n <= 0 {
		panic("dataset: Split needs n > 0")
	}
	perm := rand.New(rand.NewSource(seed)).Perm(ds.Len())
	shardIdx := make([][]int, n)
	for i, p := range perm {
		shardIdx[i%n] = append(shardIdx[i%n], p)
	}
	out := make([]*Dataset, n)
	for i, idx := range shardIdx {
		x, labels := ds.Batch(idx)
		out[i] = &Dataset{
			Name:    fmt.Sprintf("%s/shard%d", ds.Name, i),
			X:       x,
			Labels:  labels,
			Classes: ds.Classes,
			C:       ds.C, H: ds.H, W: ds.W,
		}
	}
	return out
}

// newImageTensor allocates an (n, c, h, w) tensor.
func newImageTensor(n, c, h, w int) *tensor.Tensor { return tensor.New(n, c, h, w) }

// newVecTensor allocates an (n, d) tensor.
func newVecTensor(n, d int) *tensor.Tensor { return tensor.New(n, d) }

// img is a helper for the procedural generators: a single-image view
// with convenience setters, pixel values in [−1, 1].
type img struct {
	c, h, w int
	data    []tensor.Elem
}

func newImg(data []tensor.Elem, c, h, w int) *img {
	for i := range data {
		data[i] = -1 // background
	}
	return &img{c: c, h: h, w: w, data: data}
}

// set writes value v to pixel (x, y) of channel ch if inside bounds.
func (im *img) set(ch, y, x int, v float64) {
	if x < 0 || x >= im.w || y < 0 || y >= im.h {
		return
	}
	im.data[(ch*im.h+y)*im.w+x] = tensor.Elem(v)
}

// setAll writes (r, g, b) to pixel (x, y) across up to 3 channels.
func (im *img) setAll(y, x int, rgb [3]float64) {
	for c := 0; c < im.c; c++ {
		im.set(c, y, x, rgb[c])
	}
}

// fillRect paints a filled rectangle on channel ch.
func (im *img) fillRect(ch, y0, x0, y1, x1 int, v float64) {
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			im.set(ch, y, x, v)
		}
	}
}

// fillEllipse paints a filled axis-aligned ellipse across all channels.
func (im *img) fillEllipse(cy, cx, ry, rx int, rgb [3]float64) {
	for y := cy - ry; y <= cy+ry; y++ {
		for x := cx - rx; x <= cx+rx; x++ {
			dy := float64(y-cy) / float64(ry)
			dx := float64(x-cx) / float64(rx)
			if dy*dy+dx*dx <= 1 {
				im.setAll(y, x, rgb)
			}
		}
	}
}

// addNoise perturbs every pixel with N(0, sigma) clamped to [−1, 1].
func addNoise(data []tensor.Elem, sigma float64, rng *rand.Rand) {
	for i := range data {
		v := float64(data[i]) + sigma*rng.NormFloat64()
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		data[i] = tensor.Elem(v)
	}
}
