package dataset

import (
	"math"
	"math/rand"

	"mdgan/internal/tensor"
)

// Class palettes for the CIFAR10 stand-in: each class owns a base colour
// and a texture family, so classes are separable yet overlapping enough
// to be non-trivial (colour channels correlate, textures share phases).
var cifarPalette = [10][3]float64{
	{0.9, -0.4, -0.4}, // 0: red-ish
	{-0.4, 0.9, -0.4}, // 1: green-ish
	{-0.4, -0.4, 0.9}, // 2: blue-ish
	{0.9, 0.9, -0.5},  // 3: yellow
	{0.9, -0.5, 0.9},  // 4: magenta
	{-0.5, 0.9, 0.9},  // 5: cyan
	{0.8, 0.4, -0.2},  // 6: orange
	{-0.2, 0.4, 0.8},  // 7: sky
	{0.5, 0.5, 0.5},   // 8: light grey
	{-0.6, 0.1, -0.6}, // 9: dark green
}

// SynthCIFAR generates n procedural 32×32×3 images in 10 classes, the
// CIFAR10 stand-in. Each class combines its palette colour with one of
// five texture families (stripes at class-dependent angles, checkers,
// radial rings), plus random phase and noise.
func SynthCIFAR(n int, seed int64) *Dataset { return SynthCIFARSize(n, seed, 32) }

// SynthCIFARSize generates the same patterns at an arbitrary square size
// (scaled-down variants keep test runtimes short).
func SynthCIFARSize(n int, seed int64, size int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	s := size
	ds := &Dataset{Name: "synthcifar", Classes: 10, C: 3, H: s, W: s}
	ds.X = newImageTensor(n, 3, s, s)
	ds.Labels = make([]int, n)
	vol := 3 * s * s
	for i := 0; i < n; i++ {
		label := rng.Intn(10)
		ds.Labels[i] = label
		drawPattern(ds.X.Data[i*vol:(i+1)*vol], label, s, rng)
	}
	return ds
}

func drawPattern(data []tensor.Elem, label, s int, rng *rand.Rand) {
	base := cifarPalette[label]
	family := label % 5
	freq := 2 + float64(label%3)         // spatial frequency
	phase := rng.Float64() * 2 * math.Pi // random phase: intra-class variety
	amp := 0.6 + 0.3*rng.Float64()
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			fy := float64(y) / float64(s)
			fx := float64(x) / float64(s)
			var t float64
			switch family {
			case 0: // horizontal stripes
				t = math.Sin(2*math.Pi*freq*fy + phase)
			case 1: // vertical stripes
				t = math.Sin(2*math.Pi*freq*fx + phase)
			case 2: // diagonal stripes
				t = math.Sin(2*math.Pi*freq*(fx+fy) + phase)
			case 3: // checkers
				t = math.Sin(2*math.Pi*freq*fx+phase) * math.Sin(2*math.Pi*freq*fy+phase)
			default: // radial rings
				r := math.Hypot(fx-0.5, fy-0.5)
				t = math.Sin(2*math.Pi*2*freq*r + phase)
			}
			for c := 0; c < 3; c++ {
				v := base[c] * (0.4 + amp*0.5*(t+1)/2)
				if v > 1 {
					v = 1
				} else if v < -1 {
					v = -1
				}
				data[(c*s+y)*s+x] = tensor.Elem(v)
			}
		}
	}
	addNoise(data, 0.1, rng)
}
