package dataset

import (
	"fmt"
	"math/rand"
	"sort"
)

// The paper assumes i.i.d. shards ("there are no bias in the
// distribution of the data on one particular worker node", §III-a).
// SplitNonIID relaxes that assumption so the effect of label skew on
// MD-GAN — and the corrective role of the discriminator swap — can be
// studied. Skew is controlled by a single knob:
//
//	skew = 0  → i.i.d. (equivalent to Split)
//	skew = 1  → fully sorted by label: each worker sees only ~C/N classes
//
// Intermediate values mix a sorted deal with a shuffled deal, the
// standard "fraction-sorted" construction from the federated-learning
// literature (McMahan et al.'s pathological split is skew = 1).
func SplitNonIID(ds *Dataset, n int, skew float64, seed int64) []*Dataset {
	if n <= 0 {
		panic("dataset: SplitNonIID needs n > 0")
	}
	if skew < 0 || skew > 1 {
		panic(fmt.Sprintf("dataset: skew %v outside [0,1]", skew))
	}
	rng := rand.New(rand.NewSource(seed))

	// Partition indices into a sorted pool (dealt contiguously, so
	// neighbouring workers get same-label runs) and a shuffled pool
	// (dealt round-robin).
	idx := rng.Perm(ds.Len())
	nSorted := int(skew * float64(len(idx)))
	sortedPool := append([]int(nil), idx[:nSorted]...)
	shuffledPool := idx[nSorted:]
	sort.Slice(sortedPool, func(a, b int) bool {
		if ds.Labels[sortedPool[a]] != ds.Labels[sortedPool[b]] {
			return ds.Labels[sortedPool[a]] < ds.Labels[sortedPool[b]]
		}
		return sortedPool[a] < sortedPool[b]
	})

	shardIdx := make([][]int, n)
	// Sorted pool: contiguous blocks of size ⌈len/n⌉.
	if len(sortedPool) > 0 {
		block := (len(sortedPool) + n - 1) / n
		for i := 0; i < n; i++ {
			lo := i * block
			hi := lo + block
			if lo > len(sortedPool) {
				lo = len(sortedPool)
			}
			if hi > len(sortedPool) {
				hi = len(sortedPool)
			}
			shardIdx[i] = append(shardIdx[i], sortedPool[lo:hi]...)
		}
	}
	// Shuffled pool: round-robin.
	for i, p := range shuffledPool {
		shardIdx[i%n] = append(shardIdx[i%n], p)
	}

	out := make([]*Dataset, n)
	for i, si := range shardIdx {
		if len(si) == 0 {
			panic(fmt.Sprintf("dataset: SplitNonIID produced an empty shard (n=%d too large for %d samples)", n, ds.Len()))
		}
		x, labels := ds.Batch(si)
		out[i] = &Dataset{
			Name:    fmt.Sprintf("%s/noniid%d", ds.Name, i),
			X:       x,
			Labels:  labels,
			Classes: ds.Classes,
			C:       ds.C, H: ds.H, W: ds.W,
		}
	}
	return out
}

// LabelHistogram counts samples per class.
func LabelHistogram(ds *Dataset) []int {
	h := make([]int, ds.Classes)
	for _, l := range ds.Labels {
		h[l]++
	}
	return h
}

// LabelSkew quantifies how far a shard's class distribution is from the
// parent's, as total-variation distance in [0, 1].
func LabelSkew(shard, parent *Dataset) float64 {
	hs, hp := LabelHistogram(shard), LabelHistogram(parent)
	tv := 0.0
	for c := 0; c < parent.Classes; c++ {
		ps := float64(hs[c]) / float64(shard.Len())
		pp := float64(hp[c]) / float64(parent.Len())
		d := ps - pp
		if d < 0 {
			d = -d
		}
		tv += d
	}
	return tv / 2
}
