package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSynthDigitsBasics(t *testing.T) {
	ds := SynthDigits(200, 1)
	if ds.Len() != 200 || ds.Classes != 10 {
		t.Fatalf("len %d classes %d", ds.Len(), ds.Classes)
	}
	if ds.SampleDim() != 28*28 {
		t.Fatalf("sample dim %d", ds.SampleDim())
	}
	seen := make(map[int]bool)
	for _, l := range ds.Labels {
		if l < 0 || l > 9 {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d classes present in 200 samples", len(seen))
	}
	for _, v := range ds.X.Data {
		if v < -1 || v > 1 {
			t.Fatalf("pixel %v outside [-1,1]", v)
		}
	}
}

func TestSynthDigitsDeterministic(t *testing.T) {
	a := SynthDigits(50, 7)
	b := SynthDigits(50, 7)
	if !a.X.Equal(b.X, 0) {
		t.Fatal("same seed must give identical data")
	}
	c := SynthDigits(50, 8)
	if a.X.Equal(c.X, 0) {
		t.Fatal("different seeds must differ")
	}
}

func TestDigitsClassesAreDistinguishable(t *testing.T) {
	// Nearest-centroid classification on noiseless-ish data should beat
	// chance by a wide margin; this is what makes MS/FID meaningful.
	train := SynthDigits(500, 1)
	test := SynthDigits(200, 2)
	d := train.SampleDim()
	centroids := make([][]float64, 10)
	counts := make([]int, 10)
	for i := range centroids {
		centroids[i] = make([]float64, d)
	}
	for i := 0; i < train.Len(); i++ {
		l := train.Labels[i]
		counts[l]++
		for j := 0; j < d; j++ {
			centroids[l][j] += float64(train.X.Data[i*d+j])
		}
	}
	for l := range centroids {
		for j := range centroids[l] {
			centroids[l][j] /= float64(counts[l])
		}
	}
	hit := 0
	for i := 0; i < test.Len(); i++ {
		best, bl := math.Inf(1), -1
		for l := range centroids {
			s := 0.0
			for j := 0; j < d; j++ {
				diff := float64(test.X.Data[i*d+j]) - centroids[l][j]
				s += diff * diff
			}
			if s < best {
				best, bl = s, l
			}
		}
		if bl == test.Labels[i] {
			hit++
		}
	}
	acc := float64(hit) / float64(test.Len())
	if acc < 0.8 {
		t.Fatalf("nearest-centroid accuracy %.2f, want >= 0.8", acc)
	}
}

func TestSynthCIFARBasics(t *testing.T) {
	ds := SynthCIFAR(100, 3)
	if ds.C != 3 || ds.H != 32 || ds.W != 32 || ds.SampleDim() != 3072 {
		t.Fatalf("geometry %d %d %d dim %d", ds.C, ds.H, ds.W, ds.SampleDim())
	}
	for _, v := range ds.X.Data {
		if v < -1 || v > 1 {
			t.Fatalf("pixel %v outside [-1,1]", v)
		}
	}
}

func TestSynthFacesBasics(t *testing.T) {
	ds := SynthFaces(64, 4)
	if ds.Classes != 8 {
		t.Fatalf("classes %d", ds.Classes)
	}
	seen := map[int]bool{}
	for _, l := range ds.Labels {
		if l < 0 || l > 7 {
			t.Fatalf("label %d", l)
		}
		seen[l] = true
	}
	if len(seen) < 6 {
		t.Fatalf("only %d attribute classes present in 64 samples", len(seen))
	}
}

func TestGaussianRingGeometry(t *testing.T) {
	ds := GaussianRing(1000, 8, 2.0, 0.05, 5)
	if ds.SampleDim() != 2 {
		t.Fatalf("dim %d", ds.SampleDim())
	}
	// Every point should be near radius 2.
	for i := 0; i < ds.Len(); i++ {
		r := math.Hypot(float64(ds.X.Data[2*i]), float64(ds.X.Data[2*i+1]))
		if r < 1.5 || r > 2.5 {
			t.Fatalf("point %d at radius %v", i, r)
		}
	}
}

func TestSplitPartitions(t *testing.T) {
	ds := SynthDigits(103, 6)
	shards := Split(ds, 4, 1)
	total := 0
	for _, sh := range shards {
		total += sh.Len()
		if sh.Classes != 10 || sh.C != 1 {
			t.Fatal("shard metadata lost")
		}
	}
	if total != 103 {
		t.Fatalf("shards cover %d of 103 samples", total)
	}
	// Sizes near-equal: ceil/floor of 103/4.
	for _, sh := range shards {
		if sh.Len() < 25 || sh.Len() > 26 {
			t.Fatalf("shard size %d", sh.Len())
		}
	}
}

// Property: Split covers the dataset exactly — total mass (sum of all
// pixels) is preserved for any shard count.
func TestSplitMassConservationProperty(t *testing.T) {
	ds := SynthDigits(60, 9)
	want := ds.X.Sum()
	f := func(nRaw uint8) bool {
		n := int(nRaw%8) + 1
		shards := Split(ds, n, 42)
		got := 0.0
		for _, sh := range shards {
			got += sh.X.Sum()
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerDeterministicAndInRange(t *testing.T) {
	ds := SynthDigits(40, 10)
	a, la := NewSampler(ds, 3).Sample(16)
	b, lb := NewSampler(ds, 3).Sample(16)
	if !a.Equal(b, 0) {
		t.Fatal("same-seed samplers must agree")
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("label streams must agree")
		}
	}
	if a.Dim(0) != 16 {
		t.Fatalf("batch rows %d", a.Dim(0))
	}
}

func TestBatchGather(t *testing.T) {
	ds := GaussianRing(10, 4, 1, 0.01, 11)
	x, labels := ds.Batch([]int{3, 3, 7})
	if x.Dim(0) != 3 || len(labels) != 3 {
		t.Fatal("bad batch shape")
	}
	if x.At(0, 0) != x.At(1, 0) || labels[0] != labels[1] {
		t.Fatal("repeated index must repeat the sample")
	}
	if x.At(2, 0) != ds.X.At(7, 0) || labels[2] != ds.Labels[7] {
		t.Fatal("gather mismatch")
	}
}
