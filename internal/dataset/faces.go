package dataset

import (
	"math/rand"

	"mdgan/internal/tensor"
)

// SynthFaces generates n procedural face compositions of shape
// (n, 3, size, size) — the CelebA stand-in of the Fig. 6 experiment.
// Faces combine three binary attributes (skin tone, eye colour, mouth
// expression), yielding 8 attribute classes the scoring classifier can
// learn; CelebA itself is unlabelled for our purposes, but the Inception
// substitute needs classes to produce IS/FID (DESIGN.md §2).
func SynthFaces(n int, seed int64) *Dataset { return SynthFacesSize(n, seed, 32) }

// SynthFacesSize generates faces at an arbitrary square size.
func SynthFacesSize(n int, seed int64, size int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	s := size
	ds := &Dataset{Name: "synthfaces", Classes: 8, C: 3, H: s, W: s}
	ds.X = newImageTensor(n, 3, s, s)
	ds.Labels = make([]int, n)
	vol := 3 * s * s
	for i := 0; i < n; i++ {
		skin := rng.Intn(2)
		eyes := rng.Intn(2)
		mouth := rng.Intn(2)
		ds.Labels[i] = skin<<2 | eyes<<1 | mouth
		drawFace(ds.X.Data[i*vol:(i+1)*vol], s, skin, eyes, mouth, rng)
	}
	return ds
}

func drawFace(data []tensor.Elem, s, skin, eyes, mouth int, rng *rand.Rand) {
	im := newImg(data, 3, s, s)
	// Background hue: random muted colour.
	bg := [3]float64{
		-0.8 + 0.4*rng.Float64(),
		-0.8 + 0.4*rng.Float64(),
		-0.8 + 0.4*rng.Float64(),
	}
	im.fillRect(0, 0, 0, s, s, bg[0])
	im.fillRect(1, 0, 0, s, s, bg[1])
	im.fillRect(2, 0, 0, s, s, bg[2])

	// Head: ellipse near the centre with jitter.
	cy := s/2 + rng.Intn(3) - 1
	cx := s/2 + rng.Intn(3) - 1
	ry := s*2/5 + rng.Intn(2)
	rx := s/3 + rng.Intn(2)
	skinTones := [2][3]float64{
		{0.9, 0.55, 0.25},  // light
		{0.35, 0.0, -0.35}, // dark
	}
	im.fillEllipse(cy, cx, ry, rx, skinTones[skin])

	// Eyes: two small ellipses; colour attribute.
	eyeColours := [2][3]float64{
		{-0.9, -0.9, -0.9}, // dark
		{-0.6, 0.2, 0.9},   // blue
	}
	er := max(1, s/16)
	im.fillEllipse(cy-ry/3, cx-rx/2, er, er, eyeColours[eyes])
	im.fillEllipse(cy-ry/3, cx+rx/2, er, er, eyeColours[eyes])

	// Mouth: smile (wide, thin) or neutral (short, thick).
	mc := [3]float64{0.8, -0.6, -0.5}
	if mouth == 0 {
		im.fillEllipse(cy+ry/2, cx, max(1, s/24), rx/2, mc)
	} else {
		im.fillEllipse(cy+ry/2, cx, max(1, s/12), rx/4, mc)
	}
	addNoise(data, 0.06, rng)
}
