package dataset

import (
	"math/rand"
)

// Seven-segment encodings: segments are numbered
//
//	 _0_
//	1|   |2
//	 |_3_|
//	4|   |5
//	 |_6_|
//
// which is enough glyph variety for ten visually distinct classes.
var segDigits = [10][7]bool{
	{true, true, true, false, true, true, true},     // 0
	{false, false, true, false, false, true, false}, // 1
	{true, false, true, true, true, false, true},    // 2
	{true, false, true, true, false, true, true},    // 3
	{false, true, true, true, false, true, false},   // 4
	{true, true, false, true, false, true, true},    // 5
	{true, true, false, true, true, true, true},     // 6
	{true, false, true, false, false, true, false},  // 7
	{true, true, true, true, true, true, true},      // 8
	{true, true, true, true, false, true, true},     // 9
}

// DigitsOpts tunes the SynthDigits generator.
type DigitsOpts struct {
	Size   int     // image side (default 28)
	Jitter int     // max absolute translation in pixels (default 1, -1 disables)
	Noise  float64 // additive Gaussian sigma (default 0.08)
}

// SynthDigits generates n procedural digit images of shape
// (n, 1, size, size) with labels 0..9, the MNIST stand-in.
func SynthDigits(n int, seed int64) *Dataset { return SynthDigitsWith(n, seed, DigitsOpts{}) }

// SynthDigitsWith generates digits with explicit options.
func SynthDigitsWith(n int, seed int64, o DigitsOpts) *Dataset {
	if o.Size == 0 {
		o.Size = 28
	}
	switch {
	case o.Jitter == 0:
		o.Jitter = 1
	case o.Jitter < 0:
		o.Jitter = 0
	}
	if o.Noise == 0 {
		o.Noise = 0.08
	}
	rng := rand.New(rand.NewSource(seed))
	s := o.Size
	ds := &Dataset{Name: "synthdigits", Classes: 10, C: 1, H: s, W: s}
	ds.X = newImageTensor(n, 1, s, s)
	ds.Labels = make([]int, n)
	vol := s * s
	for i := 0; i < n; i++ {
		label := rng.Intn(10)
		ds.Labels[i] = label
		im := newImg(ds.X.Data[i*vol:(i+1)*vol], 1, s, s)
		drawDigit(im, label, rng, o)
		addNoise(im.data, o.Noise, rng)
	}
	return ds
}

func drawDigit(im *img, d int, rng *rand.Rand, o DigitsOpts) {
	s := o.Size
	// Glyph box: roughly centred, height ~60% of the image.
	gh := s * 3 / 5
	gw := s * 2 / 5
	th := max(2, s/9) // stroke thickness
	oy := (s-gh)/2 + rng.Intn(2*o.Jitter+1) - o.Jitter
	ox := (s-gw)/2 + rng.Intn(2*o.Jitter+1) - o.Jitter
	ink := 0.75 + 0.25*rng.Float64()
	segs := segDigits[d]
	half := gh / 2
	// 0: top bar
	if segs[0] {
		im.fillRect(0, oy, ox, oy+th, ox+gw, ink)
	}
	// 1: upper-left
	if segs[1] {
		im.fillRect(0, oy, ox, oy+half, ox+th, ink)
	}
	// 2: upper-right
	if segs[2] {
		im.fillRect(0, oy, ox+gw-th, oy+half, ox+gw, ink)
	}
	// 3: middle bar
	if segs[3] {
		im.fillRect(0, oy+half-th/2, ox, oy+half+th-th/2, ox+gw, ink)
	}
	// 4: lower-left
	if segs[4] {
		im.fillRect(0, oy+half, ox, oy+gh, ox+th, ink)
	}
	// 5: lower-right
	if segs[5] {
		im.fillRect(0, oy+half, ox+gw-th, oy+gh, ox+gw, ink)
	}
	// 6: bottom bar
	if segs[6] {
		im.fillRect(0, oy+gh-th, ox, oy+gh, ox+gw, ink)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
