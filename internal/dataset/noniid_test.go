package dataset

import (
	"testing"
)

func TestSplitNonIIDZeroSkewIsBalanced(t *testing.T) {
	ds := SynthDigits(1000, 1)
	shards := SplitNonIID(ds, 5, 0, 2)
	total := 0
	for _, sh := range shards {
		total += sh.Len()
		if LabelSkew(sh, ds) > 0.15 {
			t.Fatalf("skew-0 shard has TV distance %v", LabelSkew(sh, ds))
		}
	}
	if total != 1000 {
		t.Fatalf("shards cover %d of 1000", total)
	}
}

func TestSplitNonIIDFullSkewConcentratesLabels(t *testing.T) {
	ds := SynthDigits(1000, 3)
	shards := SplitNonIID(ds, 5, 1, 4)
	for i, sh := range shards {
		// Each shard should see only a small subset of the 10 classes.
		classes := 0
		for _, c := range LabelHistogram(sh) {
			if c > 0 {
				classes++
			}
		}
		if classes > 4 {
			t.Fatalf("shard %d sees %d classes under full skew", i, classes)
		}
		if LabelSkew(sh, ds) < 0.5 {
			t.Fatalf("shard %d skew %v too low for sorted split", i, LabelSkew(sh, ds))
		}
	}
}

func TestSplitNonIIDSkewMonotone(t *testing.T) {
	ds := SynthDigits(1000, 5)
	avgSkew := func(skew float64) float64 {
		s := 0.0
		shards := SplitNonIID(ds, 5, skew, 6)
		for _, sh := range shards {
			s += LabelSkew(sh, ds)
		}
		return s / float64(len(shards))
	}
	lo, mid, hi := avgSkew(0), avgSkew(0.5), avgSkew(1)
	if !(lo < mid && mid < hi) {
		t.Fatalf("skew not monotone: %v %v %v", lo, mid, hi)
	}
}

func TestSplitNonIIDCoversDataset(t *testing.T) {
	ds := SynthDigits(303, 7)
	for _, skew := range []float64{0, 0.3, 0.7, 1} {
		shards := SplitNonIID(ds, 4, skew, 8)
		sum := 0.0
		total := 0
		for _, sh := range shards {
			sum += sh.X.Sum()
			total += sh.Len()
		}
		if total != 303 {
			t.Fatalf("skew %v: covered %d of 303", skew, total)
		}
		// Tolerance accounts for summation-order float error over
		// ~240k pixel values.
		diff := sum - ds.X.Sum()
		if diff < -1e-6 || diff > 1e-6 {
			t.Fatalf("skew %v: mass not conserved (diff %g)", skew, diff)
		}
	}
}

func TestSplitNonIIDRejectsBadArgs(t *testing.T) {
	ds := SynthDigits(10, 9)
	for _, f := range []func(){
		func() { SplitNonIID(ds, 0, 0, 1) },
		func() { SplitNonIID(ds, 2, -0.1, 1) },
		func() { SplitNonIID(ds, 2, 1.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
