package metrics

// Buffer-ownership contract test at the metrics call site: Features
// returns the scorer network's layer-owned buffer, valid until the next
// Features/Posteriors/Score call. FID's first feature pass must
// therefore Clone before the second pass runs (metrics.go: "survives
// the second Features pass"). This test retains the buffer WITHOUT
// cloning and asserts the corruption is real, so the Clone can never be
// "optimised away" silently.

import (
	"testing"

	"mdgan/internal/dataset"
)

func TestFeaturesCloneOrCorrupt(t *testing.T) {
	ds := dataset.SynthDigits(300, 21)
	s := TrainScorer(ds, ScorerConfig{Epochs: 2, Seed: 21})

	real := dataset.SynthDigits(40, 22)
	gen := dataset.SynthDigits(40, 23)

	fr := s.Features(real.X) // retained WITHOUT clone, as a buggy FID would
	kept := fr.Clone()       // what FID actually does
	fg := s.Features(gen.X)

	if &fr.Data[0] != &fg.Data[0] {
		t.Fatal("Features returned a fresh buffer: the layer-ownership " +
			"contract changed — revisit Scorer.FID's Clone and this test")
	}
	differs := false
	for i := range kept.Data {
		if kept.Data[i] != fr.Data[i] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("second Features pass left the retained buffer intact; contract test is vacuous")
	}
}
