package metrics

import (
	"math"

	"mdgan/internal/tensor"
)

// ModeCoverage measures mode collapse on the Gaussian-ring toy set —
// the failure mode the discriminators' minibatch-discrimination layer
// exists to catch. Given generated 2-D points and the ring geometry, it
// reports the fraction of the mixture's modes that received at least
// one sample within tol of the mode centre. 1.0 = all modes covered;
// 1/modes ≈ a fully collapsed generator.
func ModeCoverage(x *tensor.Tensor, modes int, radius, tol float64) float64 {
	if x.Rank() != 2 || x.Dim(1) != 2 {
		panic("metrics: ModeCoverage expects (N, 2) points")
	}
	hit := make([]bool, modes)
	for i := 0; i < x.Dim(0); i++ {
		px, py := x.At(i, 0), x.At(i, 1)
		for m := 0; m < modes; m++ {
			angle := 2 * math.Pi * float64(m) / float64(modes)
			cx, cy := radius*math.Cos(angle), radius*math.Sin(angle)
			if math.Hypot(px-cx, py-cy) <= tol {
				hit[m] = true
			}
		}
	}
	covered := 0
	for _, h := range hit {
		if h {
			covered++
		}
	}
	return float64(covered) / float64(modes)
}

// HighQualityFraction reports the share of generated 2-D points lying
// within tol of ANY mode centre — the "sample quality" companion to
// ModeCoverage's "sample diversity".
func HighQualityFraction(x *tensor.Tensor, modes int, radius, tol float64) float64 {
	if x.Rank() != 2 || x.Dim(1) != 2 {
		panic("metrics: HighQualityFraction expects (N, 2) points")
	}
	good := 0
	for i := 0; i < x.Dim(0); i++ {
		px, py := x.At(i, 0), x.At(i, 1)
		for m := 0; m < modes; m++ {
			angle := 2 * math.Pi * float64(m) / float64(modes)
			if math.Hypot(px-radius*math.Cos(angle), py-radius*math.Sin(angle)) <= tol {
				good++
				break
			}
		}
	}
	return float64(good) / float64(x.Dim(0))
}
