package metrics

import (
	"testing"

	"mdgan/internal/dataset"
	"mdgan/internal/tensor"
)

func TestModeCoverageOnRealRing(t *testing.T) {
	ds := dataset.GaussianRing(800, 8, 2.0, 0.05, 1)
	if c := ModeCoverage(ds.X, 8, 2.0, 0.3); c != 1 {
		t.Fatalf("real ring coverage = %v, want 1", c)
	}
	if q := HighQualityFraction(ds.X, 8, 2.0, 0.3); q < 0.99 {
		t.Fatalf("real ring quality = %v, want ~1", q)
	}
}

func TestModeCoverageDetectsCollapse(t *testing.T) {
	// A "generator" stuck on one mode.
	x := tensor.New(100, 2)
	for i := 0; i < 100; i++ {
		x.Set(2.0, i, 0) // mode at angle 0: (2, 0)
		x.Set(0.0, i, 1)
	}
	if c := ModeCoverage(x, 8, 2.0, 0.3); c != 0.125 {
		t.Fatalf("collapsed coverage = %v, want 1/8", c)
	}
	if q := HighQualityFraction(x, 8, 2.0, 0.3); q != 1 {
		t.Fatalf("collapsed quality = %v (points are on a mode)", q)
	}
}

func TestModeCoverageJunk(t *testing.T) {
	x := tensor.New(50, 2) // all points at the origin, off the ring
	if c := ModeCoverage(x, 8, 2.0, 0.3); c != 0 {
		t.Fatalf("junk coverage = %v, want 0", c)
	}
	if q := HighQualityFraction(x, 8, 2.0, 0.3); q != 0 {
		t.Fatalf("junk quality = %v, want 0", q)
	}
}

func TestModeCoverageRejectsBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-2D input")
		}
	}()
	ModeCoverage(tensor.New(3, 5), 8, 2.0, 0.3)
}
