package metrics

import (
	"math/rand"
	"testing"

	"mdgan/internal/dataset"
	"mdgan/internal/tensor"
)

// trainTestScorer trains a small scorer once and shares it across tests
// (classifier training dominates this package's test time).
var sharedScorer *Scorer
var sharedTrain *dataset.Dataset

func getScorer(t *testing.T) (*Scorer, *dataset.Dataset) {
	t.Helper()
	if sharedScorer == nil {
		sharedTrain = dataset.SynthDigits(1200, 1)
		sharedScorer = TrainScorer(sharedTrain, ScorerConfig{Epochs: 10, Seed: 1})
	}
	return sharedScorer, sharedTrain
}

func TestScorerAccuracy(t *testing.T) {
	s, _ := getScorer(t)
	test := dataset.SynthDigits(400, 99)
	if acc := s.Accuracy(test); acc < 0.9 {
		t.Fatalf("held-out accuracy %.3f, want >= 0.9", acc)
	}
}

func TestScoreRealBeatsNoise(t *testing.T) {
	s, _ := getScorer(t)
	real := dataset.SynthDigits(300, 7)
	noise := tensor.New(300, 1, 28, 28)
	rng := rand.New(rand.NewSource(2))
	for i := range noise.Data {
		noise.Data[i] = tensor.Elem(rng.Float64()*2 - 1)
	}
	sr := s.Score(real.X)
	sn := s.Score(noise)
	if sr <= sn {
		t.Fatalf("score(real)=%.3f must beat score(noise)=%.3f", sr, sn)
	}
	if sr < 3 {
		t.Fatalf("score(real)=%.3f too low for 10-class data", sr)
	}
}

func TestScoreBounds(t *testing.T) {
	s, _ := getScorer(t)
	for _, mk := range []func() *tensor.Tensor{
		func() *tensor.Tensor { return dataset.SynthDigits(200, 3).X },
		func() *tensor.Tensor {
			x := tensor.New(200, 1, 28, 28)
			rng := rand.New(rand.NewSource(4))
			for i := range x.Data {
				x.Data[i] = tensor.Elem(rng.Float64()*2 - 1)
			}
			return x
		},
	} {
		v := s.Score(mk())
		if v < 1-1e-9 || v > float64(s.Classes())+1e-9 {
			t.Fatalf("score %v outside [1, %d]", v, s.Classes())
		}
	}
}

func TestScoreDetectsModeCollapse(t *testing.T) {
	s, _ := getScorer(t)
	// A "generator" that only emits one digit class: low diversity.
	all := dataset.SynthDigits(2000, 5)
	var idx []int
	for i, l := range all.Labels {
		if l == 3 {
			idx = append(idx, i)
		}
	}
	collapsed, _ := all.Batch(idx)
	diverse := dataset.SynthDigits(len(idx), 6)
	sc := s.Score(collapsed)
	sd := s.Score(diverse.X)
	if sc >= sd/2 {
		t.Fatalf("collapsed score %.3f should be far below diverse score %.3f", sc, sd)
	}
}

func TestFIDRealVsRealSmall(t *testing.T) {
	s, _ := getScorer(t)
	a := dataset.SynthDigits(500, 11)
	b := dataset.SynthDigits(500, 12)
	fidSame, err := s.FID(a.X, b.X)
	if err != nil {
		t.Fatal(err)
	}
	noise := tensor.New(500, 1, 28, 28)
	rng := rand.New(rand.NewSource(13))
	for i := range noise.Data {
		noise.Data[i] = tensor.Elem(rng.Float64()*2 - 1)
	}
	fidNoise, err := s.FID(a.X, noise)
	if err != nil {
		t.Fatal(err)
	}
	if fidSame >= fidNoise/5 {
		t.Fatalf("FID(real, real')=%.3f should be far below FID(real, noise)=%.3f", fidSame, fidNoise)
	}
}

func TestFIDSelfIsTiny(t *testing.T) {
	s, _ := getScorer(t)
	a := dataset.SynthDigits(400, 21)
	fid, err := s.FID(a.X, a.X.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if fid > 1e-3 {
		t.Fatalf("FID(x, x) = %v, want ~0", fid)
	}
}

func TestFeaturesShape(t *testing.T) {
	s, _ := getScorer(t)
	x := dataset.SynthDigits(10, 31).X
	f := s.Features(x)
	if f.Dim(0) != 10 || f.Dim(1) != 24 {
		t.Fatalf("feature shape %v", f.Shape())
	}
}

func TestScorerDeterminism(t *testing.T) {
	ds := dataset.SynthDigits(300, 41)
	a := TrainScorer(ds, ScorerConfig{Epochs: 2, Seed: 5})
	b := TrainScorer(ds, ScorerConfig{Epochs: 2, Seed: 5})
	x := dataset.SynthDigits(50, 42).X
	if a.Score(x) != b.Score(x) {
		t.Fatal("same seed must give identical scorer")
	}
}
