// Package metrics implements the paper's evaluation measures: the
// classifier-based score (the "MNIST score"/Inception score of §V-A(c),
// higher is better) and the Fréchet Inception Distance (lower is
// better). The paper replaces the Inception network with a classifier
// adapted to each dataset; this package does exactly that, training a
// small classifier on the labelled synthetic data and using (a) its
// class posterior for the score and (b) its penultimate-layer features
// for FID.
package metrics

import (
	"fmt"
	"math"
	"math/rand"

	"mdgan/internal/dataset"
	"mdgan/internal/linalg"
	"mdgan/internal/nn"
	"mdgan/internal/opt"
	"mdgan/internal/tensor"
)

// ScorerConfig configures classifier training.
type ScorerConfig struct {
	Hidden     int // trunk width (default 64)
	FeatureDim int // penultimate feature dimension used by FID (default 24)
	Epochs     int // training epochs (default 8)
	Batch      int // batch size (default 32)
	LR         float64
	Seed       int64
}

func (c *ScorerConfig) defaults() {
	if c.Hidden == 0 {
		c.Hidden = 64
	}
	if c.FeatureDim == 0 {
		c.FeatureDim = 24
	}
	if c.Epochs == 0 {
		c.Epochs = 8
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
}

// Scorer scores generated samples against the distribution its
// classifier was trained on.
type Scorer struct {
	trunk   *nn.Sequential // input → features
	head    *nn.Sequential // features → class logits
	classes int
	dim     int
}

// TrainScorer fits the scoring classifier on the labelled dataset.
func TrainScorer(ds *dataset.Dataset, cfg ScorerConfig) *Scorer {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	d := ds.SampleDim()
	trunk := nn.NewSequential(
		nn.NewFlatten(),
		nn.NewDense(d, cfg.Hidden, rng),
		nn.NewLeakyReLU(0.2),
		nn.NewDense(cfg.Hidden, cfg.FeatureDim, rng),
		nn.NewLeakyReLU(0.2),
	)
	head := nn.NewSequential(nn.NewDense(cfg.FeatureDim, ds.Classes, rng))
	s := &Scorer{trunk: trunk, head: head, classes: ds.Classes, dim: d}

	optim := opt.NewAdam(opt.AdamConfig{LR: cfg.LR})
	sampler := dataset.NewSampler(ds, cfg.Seed+2)
	steps := cfg.Epochs * (ds.Len() / cfg.Batch)
	// Copy: Sequential.Params returns a cached slice that must not be
	// appended to in place.
	params := make([]*nn.Param, 0, len(trunk.Params())+len(head.Params()))
	params = append(params, trunk.Params()...)
	params = append(params, head.Params()...)
	for i := 0; i < steps; i++ {
		x, labels := sampler.Sample(cfg.Batch)
		logits := head.Forward(trunk.Forward(x, true), true)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		trunk.ZeroGrads()
		head.ZeroGrads()
		trunk.Backward(head.Backward(grad))
		optim.Step(params)
	}
	return s
}

// Accuracy returns classification accuracy on the given dataset — a
// self-check that the scorer is trustworthy before it judges a GAN.
func (s *Scorer) Accuracy(ds *dataset.Dataset) float64 {
	logits := s.head.Forward(s.trunk.Forward(ds.X, false), false)
	return nn.Accuracy(logits, ds.Labels)
}

// Features maps samples to the classifier's penultimate representation.
// The result is a network-owned buffer, valid until the next Features,
// Posteriors or Accuracy call on this scorer.
func (s *Scorer) Features(x *tensor.Tensor) *tensor.Tensor {
	return s.trunk.Forward(x, false)
}

// Posteriors returns p(y|x) rows for the given samples.
func (s *Scorer) Posteriors(x *tensor.Tensor) *tensor.Tensor {
	return nn.Softmax(s.head.Forward(s.trunk.Forward(x, false), false))
}

// Score computes the Inception-score analogue
// exp(E_x KL(p(y|x) ‖ p(y))) on a batch of generated samples. The value
// lies in [1, #classes]: 1 for junk or fully collapsed output, #classes
// for confident and perfectly diverse output.
func (s *Scorer) Score(x *tensor.Tensor) float64 {
	p := s.Posteriors(x)
	n, k := p.Dim(0), p.Dim(1)
	marginal := p.SumRows().Scale(1 / float64(n))
	klSum := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			pij := p.At(i, j)
			if pij <= 0 {
				continue
			}
			klSum += pij * (math.Log(pij) - math.Log(math.Max(marginal.At(0, j), 1e-300)))
		}
	}
	return math.Exp(klSum / float64(n))
}

// FID computes the Fréchet distance between classifier features of real
// and generated batches.
func (s *Scorer) FID(real, gen *tensor.Tensor) (float64, error) {
	fr := s.Features(real).Clone() // survives the second Features pass
	fg := s.Features(gen)
	mr, cr := linalg.MeanCov(fr)
	mg, cg := linalg.MeanCov(fg)
	// Regularise: tiny diagonal load keeps sqrtm stable when a feature
	// has near-zero variance in a small sample.
	for i := 0; i < cr.Dim(0); i++ {
		cr.Set(cr.At(i, i)+1e-6, i, i)
		cg.Set(cg.At(i, i)+1e-6, i, i)
	}
	fid, err := linalg.FrechetDistance(mr, cr, mg, cg)
	if err != nil {
		return 0, fmt.Errorf("metrics: FID: %w", err)
	}
	return fid, nil
}

// Classes returns the number of classes the scorer distinguishes.
func (s *Scorer) Classes() int { return s.classes }

// InputDim returns the flattened sample dimension the scorer expects.
func (s *Scorer) InputDim() int { return s.dim }
