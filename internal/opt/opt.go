// Package opt implements the gradient-based optimisers used to train
// generators and discriminators: SGD (optionally with momentum) and Adam
// (Kingma & Ba, 2014), the optimiser the paper uses on both sides
// (§IV-B2, wi(t) = wi(t−1) + Adam(Δwi)).
package opt

import (
	"math"

	"mdgan/internal/nn"
	"mdgan/internal/parallel"
	"mdgan/internal/tensor"
)

// parGrain is the parameter count above which an optimiser update fans
// out across the worker pool.
const parGrain = 1 << 14

// Optimizer updates network parameters from their accumulated gradients.
// Step consumes the current .Grad of every parameter; callers zero the
// gradients between steps.
type Optimizer interface {
	// Step applies one update to all parameters.
	Step(params []*nn.Param)
	// Reset clears internal state (momentum/Adam moments).
	Reset()
}

// SGD is plain stochastic gradient descent with optional classical
// momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*nn.Param][]float64
}

// NewSGD returns an SGD optimiser.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*nn.Param][]float64)}
}

// Step applies w ← w − lr·(m·v + g). The velocity state is kept in
// float64 regardless of the compiled tensor Elem (mixed precision: tiny
// per-step updates must not be rounded away before they accumulate).
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		if s.Momentum == 0 {
			for i, g := range p.Grad.Data {
				p.W.Data[i] -= tensor.Elem(s.LR * float64(g))
			}
			continue
		}
		v := s.velocity[p]
		if v == nil {
			v = make([]float64, p.W.Size())
			s.velocity[p] = v
		}
		for i, g := range p.Grad.Data {
			v[i] = s.Momentum*v[i] + float64(g)
			p.W.Data[i] -= tensor.Elem(s.LR * v[i])
		}
	}
}

// Reset drops momentum state.
func (s *SGD) Reset() { s.velocity = make(map[*nn.Param][]float64) }

// Adam implements the Adam optimiser with bias-corrected first and
// second moment estimates.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	t     int
	m, v  map[*nn.Param][]float64
}

// AdamConfig carries the hyper-parameters; the zero value is replaced by
// the conventional defaults (lr 1e-3, β1 0.9, β2 0.999, ε 1e-8). The
// paper's CelebA experiment tunes these per competitor (§V-B4), which is
// why they are all exposed.
type AdamConfig struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
}

// NewAdam returns an Adam optimiser with the given config.
func NewAdam(cfg AdamConfig) *Adam {
	if cfg.LR == 0 {
		cfg.LR = 1e-3
	}
	if cfg.Beta1 == 0 {
		cfg.Beta1 = 0.9
	}
	if cfg.Beta2 == 0 {
		cfg.Beta2 = 0.999
	}
	if cfg.Eps == 0 {
		cfg.Eps = 1e-8
	}
	return &Adam{
		LR: cfg.LR, Beta1: cfg.Beta1, Beta2: cfg.Beta2, Eps: cfg.Eps,
		m: make(map[*nn.Param][]float64), v: make(map[*nn.Param][]float64),
	}
}

// Step applies one Adam update to all parameters.
func (a *Adam) Step(params []*nn.Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = make([]float64, p.W.Size())
			v = make([]float64, p.W.Size())
			a.m[p] = m
			a.v[p] = v
		}
		w, g := p.W.Data, p.Grad.Data
		if len(g) < parGrain {
			a.update(w, g, m, v, c1, c2, 0, len(g))
			continue
		}
		// Split at half the fan-out threshold so one task still
		// amortises the hand-off while stealing can balance several
		// workers' optimiser steps running concurrently.
		parallel.ForGrain(len(g), parGrain/2, func(s, e int) {
			a.update(w, g, m, v, c1, c2, s, e)
		})
	}
}

// update applies the Adam rule to the index range [s, e). The bias
// corrections are applied as reciprocal multiplies; only the final
// denominator needs a real division. The moment vectors m and v are
// float64 regardless of the compiled tensor Elem — this is the
// correctness-sensitive half of the mixed-precision design: v holds
// squared gradients (whose dynamic range underflows float32 long before
// the gradients themselves do) and both moments integrate tiny
// (1−β)-scaled contributions that float32 would round away.
func (a *Adam) update(w, grad []tensor.Elem, m, v []float64, c1, c2 float64, s, e int) {
	b1, b2, lr, eps := a.Beta1, a.Beta2, a.LR, a.Eps
	ic1, ic2 := 1/c1, 1/c2
	for i := s; i < e; i++ {
		g := float64(grad[i])
		mi := b1*m[i] + (1-b1)*g
		vi := b2*v[i] + (1-b2)*g*g
		m[i] = mi
		v[i] = vi
		w[i] -= tensor.Elem(lr * (mi * ic1) / (math.Sqrt(vi*ic2) + eps))
	}
}

// Reset drops moment state and the step counter.
func (a *Adam) Reset() {
	a.t = 0
	a.m = make(map[*nn.Param][]float64)
	a.v = make(map[*nn.Param][]float64)
}
