package opt

import (
	"math"
	"math/rand"
	"testing"

	"mdgan/internal/nn"
	"mdgan/internal/tensor"
)

// paramWithGrad builds a standalone parameter for unit tests.
func paramWithGrad(w, g []float64) *nn.Param {
	toElem := func(v []float64) []tensor.Elem {
		out := make([]tensor.Elem, len(v))
		for i, x := range v {
			out[i] = tensor.Elem(x)
		}
		return out
	}
	p := &nn.Param{
		W:    tensor.FromSlice(toElem(w), len(w)),
		Grad: tensor.FromSlice(toElem(g), len(g)),
	}
	return p
}

func TestSGDStep(t *testing.T) {
	p := paramWithGrad([]float64{1, 2}, []float64{0.5, -0.5})
	NewSGD(0.1, 0).Step([]*nn.Param{p})
	if math.Abs(float64(p.W.Data[0])-0.95) > tensor.Tol(1e-12, 1e-7) || math.Abs(float64(p.W.Data[1])-2.05) > tensor.Tol(1e-12, 1e-6) {
		t.Fatalf("SGD step = %v", p.W.Data)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := paramWithGrad([]float64{0}, []float64{1})
	s := NewSGD(1, 0.5)
	s.Step([]*nn.Param{p}) // v=1, w=-1
	s.Step([]*nn.Param{p}) // v=1.5, w=-2.5
	if math.Abs(float64(p.W.Data[0])+2.5) > tensor.Tol(1e-12, 1e-6) {
		t.Fatalf("momentum w = %v, want -2.5", p.W.Data[0])
	}
	s.Reset()
	s.Step([]*nn.Param{p}) // v=1 again, w=-3.5
	if math.Abs(float64(p.W.Data[0])+3.5) > tensor.Tol(1e-12, 1e-6) {
		t.Fatalf("after reset w = %v, want -3.5", p.W.Data[0])
	}
}

// TestAdamReferenceSequence checks the exact element-wise Adam update
// against a hand-computed reference for two steps.
func TestAdamReferenceSequence(t *testing.T) {
	p := paramWithGrad([]float64{1}, []float64{0.1})
	a := NewAdam(AdamConfig{LR: 0.01, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8})

	// Step 1: m=0.01, v=1e-5·... : m̂ = g, v̂ = g² → Δ = lr·g/(|g|+ε) ≈ lr.
	a.Step([]*nn.Param{p})
	w1 := 1 - 0.01*0.1/(math.Sqrt(0.1*0.1)+1e-8)
	if math.Abs(float64(p.W.Data[0])-w1) > tensor.Tol(1e-12, 1e-7) {
		t.Fatalf("step1 w = %.15f, want %.15f", p.W.Data[0], w1)
	}

	// Step 2 with the same gradient, computed by replaying the recurrence.
	m := 0.9*(0.1*(1-0.9)) + (1-0.9)*0.1 // = 0.1*(1-0.9) after step1 was 0.01
	_ = m
	// Recompute exactly as the implementation does:
	m1 := (1 - 0.9) * 0.1
	v1 := (1 - 0.999) * 0.01
	m2 := 0.9*m1 + 0.1*0.1
	v2 := 0.999*v1 + 0.001*0.01
	mhat := m2 / (1 - math.Pow(0.9, 2))
	vhat := v2 / (1 - math.Pow(0.999, 2))
	w2 := w1 - 0.01*mhat/(math.Sqrt(vhat)+1e-8)
	a.Step([]*nn.Param{p})
	if math.Abs(float64(p.W.Data[0])-w2) > tensor.Tol(1e-12, 1e-7) {
		t.Fatalf("step2 w = %.15f, want %.15f", p.W.Data[0], w2)
	}
}

func TestAdamDefaults(t *testing.T) {
	a := NewAdam(AdamConfig{})
	if a.LR != 1e-3 || a.Beta1 != 0.9 || a.Beta2 != 0.999 || a.Eps != 1e-8 {
		t.Fatalf("defaults = %+v", a)
	}
}

func TestAdamZeroGradIsNoOp(t *testing.T) {
	p := paramWithGrad([]float64{3}, []float64{0})
	a := NewAdam(AdamConfig{})
	for i := 0; i < 5; i++ {
		a.Step([]*nn.Param{p})
	}
	if p.W.Data[0] != 3 {
		t.Fatalf("zero gradient moved weight to %v", p.W.Data[0])
	}
}

// TestOptimizersMinimiseQuadratic drives both optimisers on f(w)=|w|²
// and checks convergence toward 0 — an end-to-end sanity check of the
// update direction and magnitude.
func TestOptimizersMinimiseQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, mk := range map[string]func() Optimizer{
		"sgd":      func() Optimizer { return NewSGD(0.1, 0) },
		"momentum": func() Optimizer { return NewSGD(0.05, 0.9) },
		"adam":     func() Optimizer { return NewAdam(AdamConfig{LR: 0.05}) },
	} {
		w := make([]float64, 8)
		for i := range w {
			w[i] = rng.NormFloat64() * 3
		}
		p := paramWithGrad(w, make([]float64, 8))
		o := mk()
		for it := 0; it < 400; it++ {
			for i, v := range p.W.Data {
				p.Grad.Data[i] = 2 * v
			}
			o.Step([]*nn.Param{p})
		}
		for i, v := range p.W.Data {
			if math.Abs(float64(v)) > 1e-2 {
				t.Fatalf("%s: w[%d] = %v did not converge", name, i, v)
			}
		}
	}
}
