package render

import (
	"bytes"
	"image/png"
	"path/filepath"
	"testing"

	"mdgan/internal/dataset"
	"mdgan/internal/tensor"
)

func TestGridGeometry(t *testing.T) {
	ds := dataset.SynthDigits(10, 1)
	img, err := Grid(ds.X, 5)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	// 5 cols × 2 rows of 28px + 1px gutters.
	if b.Dx() != 5*29+1 || b.Dy() != 2*29+1 {
		t.Fatalf("grid size %dx%d", b.Dx(), b.Dy())
	}
}

func TestGridRGB(t *testing.T) {
	ds := dataset.SynthCIFAR(4, 2)
	img, err := Grid(ds.X, 2)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 2*33+1 {
		t.Fatalf("rgb grid width %d", img.Bounds().Dx())
	}
}

func TestGridRejectsBadShapes(t *testing.T) {
	if _, err := Grid(tensor.New(3, 4), 2); err == nil {
		t.Fatal("rank-2 tensor must be rejected")
	}
	if _, err := Grid(tensor.New(1, 2, 4, 4), 2); err == nil {
		t.Fatal("2-channel tensor must be rejected")
	}
}

func TestEncodePNGRoundTrip(t *testing.T) {
	ds := dataset.SynthDigits(6, 3)
	var buf bytes.Buffer
	if err := EncodePNG(&buf, ds.X, 3); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("produced invalid PNG: %v", err)
	}
	if img.Bounds().Dx() == 0 {
		t.Fatal("empty image")
	}
}

func TestSavePNG(t *testing.T) {
	ds := dataset.SynthFaces(4, 4)
	path := filepath.Join(t.TempDir(), "faces.png")
	if err := SavePNG(path, ds.X, 2); err != nil {
		t.Fatal(err)
	}
}

func TestPixelClamps(t *testing.T) {
	if pixel(-5) != 0 {
		t.Fatal("underflow not clamped")
	}
	if pixel(5) != 254 {
		t.Fatal("overflow not clamped")
	}
	if pixel(0) != 127 {
		t.Fatalf("midpoint = %d", pixel(0))
	}
}
