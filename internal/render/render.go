// Package render turns generated sample tensors into images for
// qualitative inspection — the visual counterpart of the quantitative
// MS/FID scores. Grayscale (C=1) and RGB (C=3) tensors in the
// generator's [−1, 1] range are tiled into a grid and encoded as PNG
// with the stdlib image packages.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"

	"mdgan/internal/tensor"
)

// pixel maps a [−1, 1] value to 0..255.
func pixel(v tensor.Elem) uint8 {
	v = (v + 1) / 2
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	return uint8(v*254 + 0.5)
}

// Grid tiles the first rows of x — an image tensor (N, C, H, W) with
// C ∈ {1, 3} — into a grid with the given number of columns, separated
// by 1-pixel gutters.
func Grid(x *tensor.Tensor, cols int) (image.Image, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("render: want (N, C, H, W) tensor, got shape %v", x.Shape())
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != 1 && c != 3 {
		return nil, fmt.Errorf("render: unsupported channel count %d", c)
	}
	if cols <= 0 {
		cols = 8
	}
	if cols > n {
		cols = n
	}
	rows := (n + cols - 1) / cols
	const gut = 1
	img := image.NewRGBA(image.Rect(0, 0, cols*(w+gut)+gut, rows*(h+gut)+gut))
	// Dark background behind the gutters.
	for i := range img.Pix {
		img.Pix[i] = 32
	}
	vol := c * h * w
	for i := 0; i < n; i++ {
		ox := gut + (i%cols)*(w+gut)
		oy := gut + (i/cols)*(h+gut)
		data := x.Data[i*vol : (i+1)*vol]
		for y := 0; y < h; y++ {
			for xx := 0; xx < w; xx++ {
				var col color.RGBA
				if c == 1 {
					g := pixel(data[y*w+xx])
					col = color.RGBA{g, g, g, 255}
				} else {
					col = color.RGBA{
						pixel(data[(0*h+y)*w+xx]),
						pixel(data[(1*h+y)*w+xx]),
						pixel(data[(2*h+y)*w+xx]),
						255,
					}
				}
				img.SetRGBA(ox+xx, oy+y, col)
			}
		}
	}
	return img, nil
}

// EncodePNG writes the grid of x as PNG to w.
func EncodePNG(w io.Writer, x *tensor.Tensor, cols int) error {
	img, err := Grid(x, cols)
	if err != nil {
		return err
	}
	return png.Encode(w, img)
}

// SavePNG writes the grid of x as a PNG file.
func SavePNG(path string, x *tensor.Tensor, cols int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: %w", err)
	}
	defer f.Close()
	if err := EncodePNG(f, x, cols); err != nil {
		return err
	}
	return f.Close()
}
