// Package serve is the generator-serving tier: an HTTP front end that
// loads a trained generator checkpoint and answers sampling requests at
// batch efficiency. Training PRs made one Forward over a batch far
// cheaper than many Forwards over singles (packed GEMM, batched
// im2col); serving exploits exactly that by COALESCING concurrent
// requests — callers park on a batch window (Config.MaxBatch samples or
// Config.MaxWait, whichever fills/expires first) and their latent draws
// are fused into ONE batched Generator.Forward call.
//
// Ownership: a generator is not safe for concurrent use, and its
// Forward result is a module-owned buffer valid only until the next
// Forward (the clone-or-corrupt contract of internal/nn). The coalescer
// therefore owns its generator exclusively — one goroutine per replica,
// no locks around the model — and copies each request's slice of the
// fused output into a pooled per-request response tensor BEFORE the
// next batch's Forward can clobber it. The /statusz sample preview is a
// retained cache and clones for the same reason (contract_test.go pins
// both sites). Config.Replicas > 1 runs that many independent
// generator copies pulling from one shared request queue — the
// multi-core layout; each replica owns its generator and latent RNG.
//
// Hot reload: Reload() builds a spare generator, fills it from the
// checkpoint (Config.Load), and only then publishes it to the replicas,
// which adopt it at a batch boundary — requests are always answered by
// a fully-loaded generator, never a half-swapped one. A failed load
// (missing, truncated, wrong-architecture checkpoint) leaves the
// serving generator untouched. Reloads are cheap: the MDG\x02
// checkpoint format loads either dtype's frames into either build.
// Command mdgan-serve wires SIGHUP and POST /reload to Reload.
//
// Endpoints: POST /sample?n=&format=raw|png&labels=&cols= draws n
// samples (raw = one tensor wire frame, shape (n, out...); png = a
// rendered grid for image-shaped generators), GET /healthz is the
// liveness probe, GET /statusz reports counters (samples/sec, batch
// histogram, latency percentiles, reload count) as JSON, GET /preview
// renders the cached last batch, POST /reload hot-reloads.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdgan/internal/gan"
	"mdgan/internal/render"
	"mdgan/internal/tensor"
)

// Config parameterises a Server. New and Load are required; zero values
// elsewhere select the noted defaults.
type Config struct {
	// New builds a fresh generator of the served architecture (shapes
	// only — parameters are overwritten by Load). Called once per
	// replica at startup and once per reload.
	New func() *gan.Generator
	// Load fills a generator's parameters, typically from a checkpoint
	// file. A Load error at reload time leaves the old generator
	// serving.
	Load func(*gan.Generator) error

	MaxBatch int           // max samples fused into one Forward; default 64
	MaxWait  time.Duration // batch-window length; default 2ms
	Replicas int           // independent generator copies; default 1
	Seed     int64         // latent-stream seed (replica i uses Seed+i); default 1
	// PreviewSamples caps the cached /preview batch (0 → 16, <0
	// disables the cache entirely).
	PreviewSamples int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PreviewSamples == 0 {
		c.PreviewSamples = 16
	}
	return c
}

// request is one caller parked on the batch window.
type request struct {
	n      int
	labels []int         // nil → drawn uniformly by the coalescer
	done   chan response // buffered(1); exactly one response is sent
}

// response hands the caller its slice of the fused batch, copied into a
// pooled tensor the caller releases via putResponse.
type response struct {
	x      *tensor.Tensor
	labels []int
	err    error
}

// replica is one exclusively-owned generator driven by its own
// coalescer goroutine.
type replica struct {
	id    int
	g     *gan.Generator
	next  atomic.Pointer[gan.Generator] // pending hot-reload, adopted at batch boundary
	carry *request                      // request received past the batch budget; leads the next batch
}

// Server coalesces sampling requests into batched generator forwards.
// It implements http.Handler.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	reqs     chan *request
	stop     chan struct{}
	wg       sync.WaitGroup
	closed   sync.Once
	replicas []*replica
	stats    stats

	zdim, classes int
	outShape      []int // per-sample output shape
	sampleVol     int

	previewMu sync.Mutex
	preview   *tensor.Tensor // cloned slice of the last fused batch

	bufPool sync.Pool // *[]byte response-encode buffers
}

var errClosing = errors.New("serve: server shutting down")

// NewServer loads the checkpoint into Config.Replicas generator copies
// and starts the coalescer goroutines. The returned server is ready to
// answer requests; stop it with Close.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.New == nil || cfg.Load == nil {
		return nil, errors.New("serve: Config.New and Config.Load are required")
	}
	first := cfg.New()
	if err := cfg.Load(first); err != nil {
		return nil, fmt.Errorf("serve: initial checkpoint load: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		reqs:    make(chan *request),
		stop:    make(chan struct{}),
		zdim:    first.ZDim,
		classes: first.Classes,
	}
	s.stats.start = time.Now()
	s.bufPool.New = func() any { b := make([]byte, 0, 1024); return &b }
	// Probe the per-sample output shape with a throwaway forward (its
	// RNG is separate from the serving latent streams, which start
	// fresh per replica).
	probe := rand.New(rand.NewSource(cfg.Seed - 1))
	z, labels := first.SampleZ(1, probe)
	out := first.Forward(z, labels, false)
	s.outShape = append([]int(nil), out.Shape()[1:]...)
	s.sampleVol = out.Size()
	for i := 0; i < cfg.Replicas; i++ {
		g := first
		if i > 0 {
			g = first.Clone()
		}
		r := &replica{id: i, g: g}
		s.replicas = append(s.replicas, r)
		s.wg.Add(1)
		go s.runReplica(r)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/sample", s.handleSample)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/reload", s.handleReload)
	s.mux.HandleFunc("/preview", s.handlePreview)
	return s, nil
}

// Close stops the coalescer goroutines and waits for in-flight batches
// to be answered. Requests parked on the queue are failed with 503.
func (s *Server) Close() {
	s.closed.Do(func() {
		close(s.stop)
		s.wg.Wait()
	})
}

// Reload builds a spare generator, loads the checkpoint into it, and
// publishes it to every replica; each adopts at its next batch
// boundary. On error the serving generators are untouched.
func (s *Server) Reload() error {
	g := s.cfg.New()
	if err := s.cfg.Load(g); err != nil {
		s.stats.reloadFails.Add(1)
		return fmt.Errorf("serve: reload: %w", err)
	}
	// Build every replica's copy BEFORE publishing any of them: once a
	// pointer is stored, that replica may adopt it and start Forward
	// concurrently, and cloning a generator another goroutine is using
	// would couple correctness to Forward never mutating parameters.
	gs := make([]*gan.Generator, len(s.replicas))
	gs[0] = g
	for i := 1; i < len(gs); i++ {
		gs[i] = g.Clone()
	}
	for i, r := range s.replicas {
		r.next.Store(gs[i])
	}
	s.stats.reloads.Add(1)
	return nil
}

// Stopped reports whether Close has begun.
func (s *Server) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// runReplica is the coalescer loop: collect a batch of parked requests,
// fuse their latent draws into one Forward, copy each request's slice
// out of the module-owned output buffer, respond, repeat. The replica's
// generator is touched by no other goroutine.
func (s *Server) runReplica(r *replica) {
	defer s.wg.Done()
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(r.id)))
	for {
		var first *request
		if r.carry != nil {
			first, r.carry = r.carry, nil
		} else {
			select {
			case <-s.stop:
				return
			case first = <-s.reqs:
			}
		}
		// Adopt a pending hot-reload strictly between batches: the
		// batch below is served either fully by the old generator or
		// fully by the new one.
		if ng := r.next.Swap(nil); ng != nil {
			r.g = ng
		}
		batch := []*request{first}
		total := first.n
		if total < s.cfg.MaxBatch {
			timer := time.NewTimer(s.cfg.MaxWait)
		collect:
			for total < s.cfg.MaxBatch {
				select {
				case rq := <-s.reqs:
					if total+rq.n > s.cfg.MaxBatch {
						r.carry = rq // leads the next batch
						break collect
					}
					batch = append(batch, rq)
					total += rq.n
				case <-timer.C:
					break collect
				case <-s.stop:
					break collect // serve what we have, then exit
				}
			}
			timer.Stop()
		}

		// One fused forward for the whole window. SampleZ draws the
		// latents AND uniform labels from the replica's stream —
		// exactly the serial draw order, so tests can replay it —
		// and requests that pinned labels overwrite their region.
		z, labels := r.g.SampleZ(total, rng)
		off := 0
		for _, rq := range batch {
			if rq.labels != nil {
				copy(labels[off:], rq.labels)
			}
			off += rq.n
		}
		out := r.g.Forward(z, labels, false)
		s.stats.forwards.Add(1)
		s.stats.samples.Add(int64(total))
		s.stats.requests.Add(int64(len(batch)))
		s.stats.batchHist[histBucket(total)].Add(1)

		// Copy each request's slice out of the generator-owned buffer
		// before this loop can run Forward again — the response tensors
		// are pooled and released by the handler after encoding.
		off = 0
		for _, rq := range batch {
			t := tensor.Get(append([]int{rq.n}, s.outShape...)...)
			copy(t.Data, out.Data[off*s.sampleVol:(off+rq.n)*s.sampleVol])
			var lab []int
			if labels != nil {
				lab = append([]int(nil), labels[off:off+rq.n]...)
			}
			rq.done <- response{x: t, labels: lab}
			off += rq.n
		}
		s.cachePreview(out)

		if s.stopped() {
			if r.carry != nil {
				r.carry.done <- response{err: errClosing}
				r.carry = nil
			}
			return
		}
	}
}

// cachePreview clones the head of the fused batch for /preview — the
// retained-across-batches site, so it must NOT alias the generator's
// output buffer (contract_test.go corrupts a non-cloning cache).
func (s *Server) cachePreview(out *tensor.Tensor) {
	if s.cfg.PreviewSamples < 0 {
		return
	}
	n := s.cfg.PreviewSamples
	if n > out.Dim(0) {
		n = out.Dim(0)
	}
	s.previewMu.Lock()
	s.preview = tensor.Ensure(s.preview, append([]int{n}, s.outShape...)...)
	copy(s.preview.Data, out.Data[:n*s.sampleVol])
	s.previewMu.Unlock()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Sample draws n samples through the coalescer — the in-process
// equivalent of POST /sample, used by tests and embedding callers. The
// returned tensor is pooled; pass it to Release when done.
func (s *Server) Sample(n int, labels []int) (*tensor.Tensor, []int, error) {
	if n <= 0 || n > s.cfg.MaxBatch {
		return nil, nil, fmt.Errorf("serve: n must be in 1..%d", s.cfg.MaxBatch)
	}
	if labels != nil {
		// Mirror handleSample's validation: a bad label that reaches the
		// coalescer panics in the replica goroutine (nil-slice copy on an
		// unconditional generator, embedding index out of range on a
		// conditional one) and takes the whole server down.
		if s.classes == 0 {
			return nil, nil, errors.New("serve: generator is unconditional: labels not supported")
		}
		if len(labels) != n {
			return nil, nil, fmt.Errorf("serve: %d labels for %d samples", len(labels), n)
		}
		for _, l := range labels {
			if l < 0 || l >= s.classes {
				return nil, nil, fmt.Errorf("serve: label %d out of range 0..%d", l, s.classes-1)
			}
		}
	}
	rq := &request{n: n, labels: labels, done: make(chan response, 1)}
	select {
	case s.reqs <- rq:
	case <-s.stop:
		return nil, nil, errClosing
	}
	resp := <-rq.done
	return resp.x, resp.labels, resp.err
}

// Release returns a Sample result to the tensor pool.
func (s *Server) Release(t *tensor.Tensor) { tensor.Put(t) }

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	n := 1
	if v := q.Get("n"); v != "" {
		var err error
		if n, err = strconv.Atoi(v); err != nil {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
	}
	if n <= 0 || n > s.cfg.MaxBatch {
		http.Error(w, fmt.Sprintf("n must be in 1..%d", s.cfg.MaxBatch), http.StatusBadRequest)
		return
	}
	var labels []int
	if v := q.Get("labels"); v != "" {
		if s.classes == 0 {
			http.Error(w, "generator is unconditional: labels not supported", http.StatusBadRequest)
			return
		}
		for _, part := range strings.Split(v, ",") {
			l, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || l < 0 || l >= s.classes {
				http.Error(w, fmt.Sprintf("labels must be integers in 0..%d", s.classes-1), http.StatusBadRequest)
				return
			}
			labels = append(labels, l)
		}
		if len(labels) != n {
			http.Error(w, fmt.Sprintf("%d labels for n=%d", len(labels), n), http.StatusBadRequest)
			return
		}
	}
	format := q.Get("format")
	if format == "" {
		format = "raw"
	}
	if format != "raw" && format != "png" {
		http.Error(w, "format must be raw or png", http.StatusBadRequest)
		return
	}

	start := time.Now()
	t, lab, err := s.Sample(n, labels)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer s.Release(t)
	s.stats.recordLatency(time.Since(start))

	switch format {
	case "raw":
		// One tensor wire frame (dtype byte, rank, dims, payload) —
		// decodable by tensor.(*Tensor).ReadFrom in either build.
		bp := s.bufPool.Get().(*[]byte)
		buf := t.AppendBinary((*bp)[:0])
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
		w.Header().Set("X-MDGAN-Shape", shapeString(t.Shape()))
		w.Header().Set("X-MDGAN-Dtype", tensor.DTypeName)
		if lab != nil {
			w.Header().Set("X-MDGAN-Labels", labelString(lab))
		}
		w.Write(buf)
		*bp = buf
		s.bufPool.Put(bp)
	case "png":
		cols := 8
		if v := q.Get("cols"); v != "" {
			if c, err := strconv.Atoi(v); err == nil && c > 0 {
				cols = c
			}
		}
		img, err := render.Grid(t, cols)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "image/png")
		if err := encodePNG(w, img); err != nil {
			return // client gone; nothing useful to add
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.stopped() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// Status snapshots the server's counters — the in-process equivalent
// of GET /statusz, used by the load benchmark and embedding callers.
func (s *Server) Status() Status {
	st := s.stats.snapshot()
	st.Dtype = tensor.DTypeName
	st.Replicas = s.cfg.Replicas
	st.MaxBatch = s.cfg.MaxBatch
	st.MaxWaitMs = float64(s.cfg.MaxWait) / 1e6
	st.OutShape = s.outShape
	return st
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	st := s.Status()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if err := s.Reload(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintf(w, "reloaded (%d total)\n", s.stats.reloads.Load())
}

func (s *Server) handlePreview(w http.ResponseWriter, r *http.Request) {
	// Copy the cached batch under the lock, then render and encode to
	// the client without it: cachePreview takes previewMu after every
	// fused batch on every replica, so holding it across a PNG write to
	// a slow client would stall all sampling.
	s.previewMu.Lock()
	if s.preview == nil {
		s.previewMu.Unlock()
		http.Error(w, "no samples served yet", http.StatusNotFound)
		return
	}
	t := tensor.Get(s.preview.Shape()...)
	copy(t.Data, s.preview.Data)
	s.previewMu.Unlock()
	defer tensor.Put(t)
	img, err := render.Grid(t, 8)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	encodePNG(w, img)
}

func shapeString(shape []int) string {
	var sb strings.Builder
	for i, d := range shape {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(d))
	}
	return sb.String()
}

func labelString(labels []int) string {
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(l))
	}
	return sb.String()
}
