package serve

import (
	"bytes"
	"fmt"
	"image/png"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mdgan/internal/gan"
	"mdgan/internal/nn"
	"mdgan/internal/tensor"
)

// testArch is the small conditional MLP every serve test serves.
func testArch() gan.Arch { return gan.ScaledMLP(16) }

// copyParams copies src's learnable state into dst (same architecture).
func copyParams(dst, src *gan.Generator) {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		panic("copyParams: parameter count mismatch")
	}
	for i := range dp {
		dp[i].W.CopyFrom(sp[i].W)
	}
}

// newTestServer builds a server whose loader copies parameters from a
// reference generator (no filesystem), returning both.
func newTestServer(t *testing.T, mod func(*Config)) (*Server, *gan.Generator) {
	t.Helper()
	ref := testArch().NewGAN(7, nn.GenLossNonSaturating, 1).G
	cfg := Config{
		New:  func() *gan.Generator { return testArch().NewGAN(1, nn.GenLossNonSaturating, 1).G },
		Load: func(g *gan.Generator) error { copyParams(g, ref); return nil },
	}
	if mod != nil {
		mod(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, ref
}

// replayGenerator builds a fresh generator carrying ref's parameters,
// for replaying the server's deterministic latent stream.
func replayGenerator(ref *gan.Generator) *gan.Generator {
	g := testArch().NewGAN(2, nn.GenLossNonSaturating, 1).G
	copyParams(g, ref)
	return g
}

// TestCoalescingFusesConcurrentRequests is the headline contract: N
// concurrent single-sample requests inside one batch window must cost
// exactly ONE generator forward.
func TestCoalescingFusesConcurrentRequests(t *testing.T) {
	const n = 8
	// MaxBatch == n: the window fires the moment all n requests have
	// parked, so the test neither races the timer nor waits it out.
	s, _ := newTestServer(t, func(c *Config) {
		c.MaxBatch = n
		c.MaxWait = 5 * time.Second
	})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x, _, err := s.Sample(1, nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Release(x)
			if x.Dim(0) != 1 {
				t.Errorf("sample dim %d, want 1", x.Dim(0))
			}
		}()
	}
	wg.Wait()
	if got := s.stats.forwards.Load(); got != 1 {
		t.Fatalf("%d concurrent requests cost %d forwards, want 1 (coalescing broken)", n, got)
	}
	if got := s.stats.samples.Load(); got != n {
		t.Fatalf("samples counter = %d, want %d", got, n)
	}
	if got := s.stats.requests.Load(); got != n {
		t.Fatalf("requests counter = %d, want %d", got, n)
	}
}

// TestResponsesMatchSerialReplay pins determinism and copy correctness:
// a single-replica server's responses must equal a serial replay of the
// same latent stream through an identical generator, bitwise.
func TestResponsesMatchSerialReplay(t *testing.T) {
	s, ref := newTestServer(t, func(c *Config) {
		c.MaxWait = time.Microsecond // effectively no batching: serial requests
		c.Seed = 11
	})
	rep := replayGenerator(ref)
	rng := rand.New(rand.NewSource(11)) // Seed + replica id 0

	for _, n := range []int{3, 2, 5} {
		got, gotLab, err := s.Sample(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		z, lab := rep.SampleZ(n, rng)
		want := rep.Forward(z, lab, false)
		if !got.Equal(want, 0) {
			t.Fatalf("Sample(%d) diverged from the serial replay", n)
		}
		for i := range lab {
			if gotLab[i] != lab[i] {
				t.Fatalf("Sample(%d) labels %v, replay %v", n, gotLab, lab)
			}
		}
		s.Release(got)
	}
}

// TestPinnedLabelsOverrideDraw: a request carrying explicit labels must
// be generated with them.
func TestPinnedLabelsOverrideDraw(t *testing.T) {
	s, ref := newTestServer(t, func(c *Config) { c.Seed = 13 })
	rep := replayGenerator(ref)
	rng := rand.New(rand.NewSource(13))

	want := []int{3, 1, 4}
	got, gotLab, err := s.Sample(3, want)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release(got)
	for i := range want {
		if gotLab[i] != want[i] {
			t.Fatalf("labels %v, want %v", gotLab, want)
		}
	}
	z, _ := rep.SampleZ(3, rng)
	ref2 := rep.Forward(z, want, false)
	if !got.Equal(ref2, 0) {
		t.Fatal("pinned-label sample diverged from replay with the same labels")
	}
}

// zeroLoader zeroes every parameter; biasLoader additionally sets the
// output-layer bias to 1, so the two checkpoints produce uniform but
// visibly different outputs — any mid-batch mix of the two would be a
// half-swapped generator.
func zeroLoader(g *gan.Generator) error {
	for _, p := range g.Params() {
		p.W.Zero()
	}
	return nil
}

func biasLoader(g *gan.Generator) error {
	zeroLoader(g)
	params := g.Params()
	// The output Dense bias is the last 784-sized parameter.
	for i := len(params) - 1; i >= 0; i-- {
		if params[i].W.Size() == 784 {
			for j := range params[i].W.Data {
				params[i].W.Data[j] = 1
			}
			return nil
		}
	}
	return fmt.Errorf("no 784-sized bias found")
}

// TestReloadSwapsAtomicallyUnderLoad: hammer the server while flipping
// between two checkpoints whose outputs are uniform constants. Every
// response must be uniformly one constant — a mixed response means a
// batch ran on a half-swapped generator.
func TestReloadSwapsAtomicallyUnderLoad(t *testing.T) {
	var mu sync.Mutex
	useBias := false
	s, _ := newTestServer(t, func(c *Config) {
		c.MaxBatch = 8
		c.MaxWait = 200 * time.Microsecond
		c.Load = func(g *gan.Generator) error {
			mu.Lock()
			defer mu.Unlock()
			if useBias {
				return biasLoader(g)
			}
			return zeroLoader(g)
		}
	})

	// The two uniform output constants: tanh(0) and tanh(1) as the net
	// computes them.
	probe := testArch().NewGAN(3, nn.GenLossNonSaturating, 1).G
	zeroLoader(probe)
	rng := rand.New(rand.NewSource(99))
	z, lab := probe.SampleZ(1, rng)
	c0 := probe.Forward(z, lab, false).Data[0]
	biasLoader(probe)
	c1 := probe.Forward(z, lab, false).Data[0]
	if c0 == c1 {
		t.Fatal("test checkpoints are not distinguishable")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				x, _, err := s.Sample(4, nil)
				if err != nil {
					t.Error(err)
					return
				}
				first := x.Data[0]
				if first != c0 && first != c1 {
					t.Errorf("response value %v is neither checkpoint's constant", first)
				}
				for _, v := range x.Data {
					if v != first {
						t.Errorf("mixed response (%v and %v): served by a half-swapped generator", first, v)
						break
					}
				}
				s.Release(x)
			}
		}()
	}
	for i := 0; i < 40; i++ {
		mu.Lock()
		useBias = !useBias
		mu.Unlock()
		if err := s.Reload(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := s.stats.reloads.Load(); got != 40 {
		t.Fatalf("reload counter = %d, want 40", got)
	}
}

// TestReloadFailureKeepsServing: a reload whose checkpoint load fails
// must leave the serving generator untouched and count the failure.
func TestReloadFailureKeepsServing(t *testing.T) {
	fail := false
	var ref *gan.Generator
	s, r0 := newTestServer(t, func(c *Config) {
		base := c.Load
		c.Load = func(g *gan.Generator) error {
			if fail {
				return fmt.Errorf("injected load failure")
			}
			return base(g)
		}
		c.MaxWait = time.Microsecond
		c.Seed = 21
	})
	ref = r0

	fail = true
	if err := s.Reload(); err == nil {
		t.Fatal("failing reload reported success")
	}
	if got := s.stats.reloadFails.Load(); got != 1 {
		t.Fatalf("reload_fails = %d, want 1", got)
	}
	if got := s.stats.reloads.Load(); got != 0 {
		t.Fatalf("reloads = %d, want 0", got)
	}

	// Still serving the original parameters.
	rep := replayGenerator(ref)
	rng := rand.New(rand.NewSource(21))
	got, _, err := s.Sample(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release(got)
	z, lab := rep.SampleZ(2, rng)
	want := rep.Forward(z, lab, false)
	if !got.Equal(want, 0) {
		t.Fatal("failed reload disturbed the serving generator")
	}
}

// TestCloseDrains: Close must answer or fail every parked request and
// not hang; requests after Close fail fast.
func TestCloseDrains(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.MaxBatch = 4
		c.MaxWait = 50 * time.Millisecond
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x, _, err := s.Sample(2, nil)
			if err == nil {
				s.Release(x)
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung")
	}
	wg.Wait()
	if _, _, err := s.Sample(1, nil); err == nil {
		t.Fatal("Sample after Close succeeded")
	}
}

// TestReplicasServeConcurrently is the multi-core layout smoke: several
// replicas pulling one queue under the race detector.
func TestReplicasServeConcurrently(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.Replicas = 3
		c.MaxBatch = 4
		c.MaxWait = 100 * time.Microsecond
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				x, _, err := s.Sample(2, nil)
				if err != nil {
					t.Error(err)
					return
				}
				s.Release(x)
			}
		}()
	}
	wg.Wait()
	if got := s.stats.samples.Load(); got != 8*20*2 {
		t.Fatalf("samples = %d, want %d", got, 8*20*2)
	}
}

// --- HTTP layer ---

func httpServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	s, _ := newTestServer(t, mod)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestHTTPSampleRaw(t *testing.T) {
	_, ts := httpServer(t, nil)
	resp, err := http.Post(ts.URL+"/sample?n=4", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-MDGAN-Shape"); got != "4,1,28,28" {
		t.Fatalf("shape header %q, want 4,1,28,28", got)
	}
	if got := resp.Header.Get("X-MDGAN-Dtype"); got != tensor.DTypeName {
		t.Fatalf("dtype header %q, want %s", got, tensor.DTypeName)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var x tensor.Tensor
	if _, err := x.ReadFrom(bytes.NewReader(body)); err != nil {
		t.Fatalf("response is not a tensor wire frame: %v", err)
	}
	if x.Rank() != 4 || x.Dim(0) != 4 || x.Dim(2) != 28 {
		t.Fatalf("decoded shape %v", x.Shape())
	}
	if lab := resp.Header.Get("X-MDGAN-Labels"); len(strings.Split(lab, ",")) != 4 {
		t.Fatalf("labels header %q, want 4 entries", lab)
	}
}

func TestHTTPSamplePNGAndPreview(t *testing.T) {
	_, ts := httpServer(t, nil)
	resp, err := http.Post(ts.URL+"/sample?n=4&format=png&cols=2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("content type %q", ct)
	}
	if _, err := png.Decode(resp.Body); err != nil {
		t.Fatalf("response is not a PNG: %v", err)
	}

	prev, err := http.Get(ts.URL + "/preview")
	if err != nil {
		t.Fatal(err)
	}
	defer prev.Body.Close()
	if prev.StatusCode != 200 {
		t.Fatalf("preview status %d", prev.StatusCode)
	}
	if _, err := png.Decode(prev.Body); err != nil {
		t.Fatalf("preview is not a PNG: %v", err)
	}
}

func TestHTTPHealthzAndStatusz(t *testing.T) {
	_, ts := httpServer(t, nil)
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != 200 {
		t.Fatalf("healthz status %d", h.StatusCode)
	}

	if resp, err := http.Post(ts.URL+"/sample?n=2", "", nil); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	st, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	body, _ := io.ReadAll(st.Body)
	for _, want := range []string{`"forwards"`, `"samples_per_sec"`, `"batch_hist"`, `"reloads"`, `"latency_p99_ms"`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("statusz missing %s: %s", want, body)
		}
	}
}

func TestHTTPReloadEndpoint(t *testing.T) {
	s, ts := httpServer(t, nil)
	resp, err := http.Post(ts.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	if got := s.stats.reloads.Load(); got != 1 {
		t.Fatalf("reloads = %d, want 1", got)
	}
	// GET must not reload.
	g, _ := http.Get(ts.URL + "/reload")
	g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reload status %d, want 405", g.StatusCode)
	}
}

func TestHTTPValidation(t *testing.T) {
	s, ts := httpServer(t, func(c *Config) { c.MaxBatch = 8 })
	for _, tc := range []struct {
		method, path string
		wantStatus   int
	}{
		{"GET", "/sample?n=1", http.StatusMethodNotAllowed},
		{"POST", "/sample?n=0", http.StatusBadRequest},
		{"POST", "/sample?n=9", http.StatusBadRequest}, // > MaxBatch
		{"POST", "/sample?n=abc", http.StatusBadRequest},
		{"POST", "/sample?n=2&labels=1", http.StatusBadRequest},    // count mismatch
		{"POST", "/sample?n=1&labels=99", http.StatusBadRequest},   // out of range
		{"POST", "/sample?n=1&format=jpeg", http.StatusBadRequest}, // unknown format
		{"POST", "/sample?n=1&labels=0,1", http.StatusBadRequest},  // count mismatch
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
	if got := s.stats.forwards.Load(); got != 0 {
		t.Fatalf("invalid requests reached the generator (%d forwards)", got)
	}
}

// TestSampleValidatesLabels: the exported Go API must reject bad labels
// just like the HTTP handler does. Before the fix, an out-of-range
// label panicked inside the embedding lookup and a labeled request on
// an unconditional generator could panic slicing the nil label stream —
// both inside the replica goroutine, taking the whole server down.
func TestSampleValidatesLabels(t *testing.T) {
	s, _ := newTestServer(t, nil) // conditional: 10 classes
	for _, labels := range [][]int{{10}, {-1}, {0, 3}} {
		if _, _, err := s.Sample(1, labels); err == nil {
			t.Errorf("Sample(1, %v) on a 10-class generator succeeded, want error", labels)
		}
	}
	if got := s.stats.forwards.Load(); got != 0 {
		t.Fatalf("invalid labels reached the generator (%d forwards)", got)
	}
	// The server must still serve after rejecting garbage.
	x, _, err := s.Sample(1, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	s.Release(x)

	// Unconditional generator: any labels are an error, and a labeled
	// request must never park on the coalescer (where a batch offset > 0
	// would slice the nil label stream).
	ref := gan.RingMLP().NewGAN(9, nn.GenLossNonSaturating, 1).G
	u, err := NewServer(Config{
		New:  func() *gan.Generator { return gan.RingMLP().NewGAN(1, nn.GenLossNonSaturating, 1).G },
		Load: func(g *gan.Generator) error { copyParams(g, ref); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)
	if _, _, err := u.Sample(1, []int{0}); err == nil {
		t.Fatal("labeled Sample on an unconditional generator succeeded, want error")
	}
	x, lab, err := u.Sample(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lab != nil {
		t.Fatalf("unconditional Sample returned labels %v", lab)
	}
	u.Release(x)
}
