package serve

import (
	"image"
	"image/png"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// stats is the server's instrumentation: monotonic counters on the hot
// path (atomics, no locks around the model), a power-of-two batch-size
// histogram, and a fixed ring of recent request latencies from which
// /statusz derives percentiles.
type stats struct {
	start       time.Time
	requests    atomic.Int64
	samples     atomic.Int64
	forwards    atomic.Int64
	reloads     atomic.Int64
	reloadFails atomic.Int64
	batchHist   [8]atomic.Int64 // fused-batch sizes: 1, 2, ≤4, ≤8, ≤16, ≤32, ≤64, >64

	latMu  sync.Mutex
	lat    [4096]int64 // ns; ring of recent request latencies
	latIdx int
	latN   int
}

// histBucket maps a fused-batch size to its histogram bucket.
func histBucket(n int) int {
	b := bits.Len(uint(n - 1)) // 1→0, 2→1, 3..4→2, …, 33..64→6
	if b > 7 {
		b = 7
	}
	return b
}

// histLabel names bucket i for the JSON report.
var histLabel = [8]string{"1", "2", "<=4", "<=8", "<=16", "<=32", "<=64", ">64"}

func (st *stats) recordLatency(d time.Duration) {
	st.latMu.Lock()
	st.lat[st.latIdx] = int64(d)
	st.latIdx = (st.latIdx + 1) % len(st.lat)
	if st.latN < len(st.lat) {
		st.latN++
	}
	st.latMu.Unlock()
}

// Status is the /statusz JSON schema.
type Status struct {
	UptimeSec     float64          `json:"uptime_sec"`
	Dtype         string           `json:"dtype"`
	Replicas      int              `json:"replicas"`
	MaxBatch      int              `json:"max_batch"`
	MaxWaitMs     float64          `json:"max_wait_ms"`
	OutShape      []int            `json:"out_shape"`
	Requests      int64            `json:"requests"`
	Samples       int64            `json:"samples"`
	Forwards      int64            `json:"forwards"`
	Reloads       int64            `json:"reloads"`
	ReloadFails   int64            `json:"reload_fails"`
	SamplesPerSec float64          `json:"samples_per_sec"`
	AvgBatch      float64          `json:"avg_batch"`
	BatchHist     map[string]int64 `json:"batch_hist"`
	LatencyP50Ms  float64          `json:"latency_p50_ms"`
	LatencyP99Ms  float64          `json:"latency_p99_ms"`
	LatencyMaxMs  float64          `json:"latency_max_ms"`
}

func (st *stats) snapshot() Status {
	up := time.Since(st.start).Seconds()
	samples := st.samples.Load()
	forwards := st.forwards.Load()
	out := Status{
		UptimeSec:   up,
		Requests:    st.requests.Load(),
		Samples:     samples,
		Forwards:    forwards,
		Reloads:     st.reloads.Load(),
		ReloadFails: st.reloadFails.Load(),
		BatchHist:   map[string]int64{},
	}
	if up > 0 {
		out.SamplesPerSec = float64(samples) / up
	}
	if forwards > 0 {
		out.AvgBatch = float64(samples) / float64(forwards)
	}
	for i := range st.batchHist {
		if v := st.batchHist[i].Load(); v > 0 {
			out.BatchHist[histLabel[i]] = v
		}
	}
	p50, p99, max := st.latencyPercentiles()
	out.LatencyP50Ms = float64(p50) / 1e6
	out.LatencyP99Ms = float64(p99) / 1e6
	out.LatencyMaxMs = float64(max) / 1e6
	return out
}

// latencyPercentiles sorts a snapshot of the latency ring. ~4096 int64s
// per /statusz hit — far off the sampling hot path.
func (st *stats) latencyPercentiles() (p50, p99, max int64) {
	st.latMu.Lock()
	snap := append([]int64(nil), st.lat[:st.latN]...)
	st.latMu.Unlock()
	if len(snap) == 0 {
		return 0, 0, 0
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	return snap[len(snap)/2], snap[len(snap)*99/100], snap[len(snap)-1]
}

// encodePNG writes img as PNG to w.
func encodePNG(w io.Writer, img image.Image) error { return png.Encode(w, img) }
