package serve

// Buffer-ownership contract tests for the serving tier — the serve-side
// extension of internal/core/contract_test.go. Generator.Forward
// returns a module-owned buffer valid only until the generator's next
// Forward, so everything the server hands out or retains must be a
// copy: the coalescer's per-request response tensors and the /preview
// cache are the two retention sites. As in core, the first test
// demonstrates the corruption is REAL on the raw generator (if the
// ownership model ever changes, it fails loudly and this file plus the
// serve package doc must be revisited), and the rest pin that the
// server's copies actually escape it.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"mdgan/internal/nn"
	"mdgan/internal/tensor"
)

// TestServeForwardCloneOrCorrupt pins the hazard the coalescer is built
// around: retaining a Forward result across the next Forward corrupts
// it. The serving loop's response copies and preview clone exist
// because of exactly this.
func TestServeForwardCloneOrCorrupt(t *testing.T) {
	g := testArch().NewGAN(5, nn.GenLossNonSaturating, 1).G
	rng := rand.New(rand.NewSource(17))

	z1, l1 := g.SampleZ(4, rng)
	x1 := g.Forward(z1, l1, false) // retained WITHOUT clone — the bug shape
	kept := x1.Clone()             // what the coalescer's response copy stands in for

	z2, l2 := g.SampleZ(4, rng)
	x2 := g.Forward(z2, l2, false)

	if &x1.Data[0] != &x2.Data[0] {
		t.Fatal("Generator.Forward returned a fresh buffer: the clone-or-corrupt " +
			"contract changed — revisit the serve coalescer's response copies, " +
			"the /preview cache, and this test together")
	}
	differs := false
	for i := range kept.Data {
		if kept.Data[i] != x1.Data[i] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("second Forward left the retained buffer intact — corruption " +
			"demonstration failed, contract tests are no longer meaningful")
	}
}

// TestResponseSurvivesSubsequentBatches: a response handed to one
// request must stay intact while the same replica serves later batches
// — the two-concurrent-requests corruption regression. Pre-fix shape:
// handing out a view of the generator's output buffer passes every
// single-request test and corrupts the moment a second request's batch
// runs before the first response is encoded.
func TestResponseSurvivesSubsequentBatches(t *testing.T) {
	s, ref := newTestServer(t, func(c *Config) {
		c.MaxWait = time.Microsecond
		c.Seed = 31
	})
	rep := replayGenerator(ref)
	rng := rand.New(rand.NewSource(31))

	got, _, err := s.Sample(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release(got)
	z, lab := rep.SampleZ(4, rng)
	want := rep.Forward(z, lab, false).Clone()

	// Drive several more batches through the replica while the first
	// response is still held un-encoded — the window in which an
	// aliased response would be clobbered.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x, _, err := s.Sample(4, nil)
			if err == nil {
				s.Release(x)
			}
		}()
	}
	wg.Wait()

	if !got.Equal(want, 0) {
		t.Fatal("earlier response corrupted by later batches: the coalescer " +
			"handed out a generator-owned buffer instead of a copy")
	}
}

// TestPreviewCacheDoesNotAliasGeneratorBuffer: the /preview cache is
// retained across batches, so it must be a clone of the fused output,
// never a view into the generator's buffer.
func TestPreviewCacheDoesNotAliasGeneratorBuffer(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.MaxWait = time.Microsecond
		c.PreviewSamples = 4
	})
	x, _, err := s.Sample(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Release(x)

	s.previewMu.Lock()
	snap := s.preview.Clone()
	s.previewMu.Unlock()

	// Stop the replica goroutine so the generator may be driven from
	// here, then clobber its forward buffer directly.
	s.Close()
	g := s.replicas[0].g
	rng := rand.New(rand.NewSource(1234))
	z, lab := g.SampleZ(4, rng)
	g.Forward(z, lab, false)

	s.previewMu.Lock()
	defer s.previewMu.Unlock()
	if !s.preview.Equal(snap, 0) {
		t.Fatal("/preview cache aliases the generator's output buffer")
	}
}

// TestResponseTensorsAreIndependent: two requests fused into ONE batch
// must receive responses backed by distinct storage (pooled copies),
// not adjacent views of the same fused buffer.
func TestResponseTensorsAreIndependent(t *testing.T) {
	const n = 2
	s, _ := newTestServer(t, func(c *Config) {
		c.MaxBatch = 2 * n
		c.MaxWait = 5 * time.Second
	})
	results := make(chan *tensor.Tensor, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x, _, err := s.Sample(n, nil)
			if err != nil {
				t.Error(err)
				return
			}
			results <- x
		}()
	}
	wg.Wait()
	close(results)
	if got := s.stats.forwards.Load(); got != 1 {
		t.Fatalf("requests were not fused (%d forwards)", got)
	}
	var held []*tensor.Tensor
	for x := range results {
		held = append(held, x)
	}
	if len(held) != n {
		t.Fatalf("got %d responses, want %d", len(held), n)
	}
	a, b := held[0], held[1]
	if &a.Data[0] == &b.Data[0] {
		t.Fatal("two fused requests share response storage")
	}
	// Mutating one response must not leak into the other.
	before := b.Clone()
	for i := range a.Data {
		a.Data[i] = -12345
	}
	if !b.Equal(before, 0) {
		t.Fatal("responses of one fused batch alias each other")
	}
	for _, x := range held {
		s.Release(x)
	}
}
