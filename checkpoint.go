package mdgan

import (
	"fmt"
	"os"

	"mdgan/internal/render"
)

// SaveGenerator checkpoints a trained generator's parameters to a file.
// The architecture is not stored: reload into a generator built from
// the same Arch and seed-independent shape.
func SaveGenerator(g *Generator, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mdgan: save generator: %w", err)
	}
	defer f.Close()
	if _, err := g.WriteParams(f); err != nil {
		return fmt.Errorf("mdgan: save generator: %w", err)
	}
	return f.Close()
}

// LoadGenerator restores parameters saved with SaveGenerator into g,
// which must have the same architecture.
func LoadGenerator(g *Generator, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("mdgan: load generator: %w", err)
	}
	defer f.Close()
	if _, err := g.ReadParams(f); err != nil {
		return fmt.Errorf("mdgan: load generator: %w", err)
	}
	return nil
}

// SaveSampleGrid renders an image tensor (N, C, H, W) as a PNG grid —
// qualitative inspection to complement the MS/FID numbers.
func SaveSampleGrid(path string, x *Tensor, cols int) error {
	return render.SavePNG(path, x, cols)
}
