package mdgan

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"mdgan/internal/render"
)

// Checkpoint framing. Version 2 (this PR) prefixes a magic header so
// future format changes are explicit; the parameter frames that follow
// carry their own dtype byte, so a checkpoint written by a float64
// build loads into a float32 build and vice versa (values convert on
// read). Files written before the header existed — bare concatenated
// pre-dtype tensor frames — are detected by the absence of the magic
// and still load: the tensor decoder accepts legacy frames natively.
var checkpointMagic = []byte{'M', 'D', 'G', 2}

// SaveGenerator checkpoints a trained generator's parameters to a file.
// The architecture is not stored: reload into a generator built from
// the same Arch and seed-independent shape.
func SaveGenerator(g *Generator, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mdgan: save generator: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(checkpointMagic); err != nil {
		return fmt.Errorf("mdgan: save generator: %w", err)
	}
	if _, err := g.WriteParams(f); err != nil {
		return fmt.Errorf("mdgan: save generator: %w", err)
	}
	return f.Close()
}

// LoadGenerator restores parameters saved with SaveGenerator into g,
// which must have the same architecture. Both current (versioned,
// dtype-framed) and pre-version float64 checkpoints load.
func LoadGenerator(g *Generator, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("mdgan: load generator: %w", err)
	}
	defer f.Close()
	var hdr [4]byte
	n, err := io.ReadFull(f, hdr[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return fmt.Errorf("mdgan: load generator: %w", err)
	}
	var r io.Reader = f
	if !bytes.Equal(hdr[:n], checkpointMagic) {
		if n == 4 && bytes.Equal(hdr[:3], checkpointMagic[:3]) {
			return fmt.Errorf("mdgan: load generator: unsupported checkpoint version %d", hdr[3])
		}
		// Legacy checkpoint (no magic): the four bytes are the first
		// parameter's rank word — replay them ahead of the rest.
		r = io.MultiReader(bytes.NewReader(hdr[:n]), f)
	}
	if _, err := g.ReadParams(r); err != nil {
		return fmt.Errorf("mdgan: load generator: %w", err)
	}
	return nil
}

// SaveSampleGrid renders an image tensor (N, C, H, W) as a PNG grid —
// qualitative inspection to complement the MS/FID numbers.
func SaveSampleGrid(path string, x *Tensor, cols int) error {
	return render.SavePNG(path, x, cols)
}
