package mdgan

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mdgan/internal/render"
)

// Checkpoint framing. Version 2 (this PR) prefixes a magic header so
// future format changes are explicit; the parameter frames that follow
// carry their own dtype byte, so a checkpoint written by a float64
// build loads into a float32 build and vice versa (values convert on
// read). Files written before the header existed — bare concatenated
// pre-dtype tensor frames — are detected by the absence of the magic
// and still load: the tensor decoder accepts legacy frames natively.
var checkpointMagic = []byte{'M', 'D', 'G', 2}

// checkpointWriteWrap, when non-nil, wraps the checkpoint byte sink —
// a test seam for injecting mid-write failures without touching the
// filesystem semantics under test.
var checkpointWriteWrap func(io.Writer) io.Writer

// SaveGenerator checkpoints a trained generator's parameters to a file.
// The architecture is not stored: reload into a generator built from
// the same Arch and seed-independent shape.
//
// The write is atomic with respect to the destination path: parameters
// land in a same-directory temp file which is fsynced and then renamed
// over path, so a crash (or write error) mid-checkpoint can never leave
// a truncated file where the last good checkpoint was. This is what
// makes the serving tier's hot-reload safe to point at a path that a
// trainer is still periodically rewriting.
func SaveGenerator(g *Generator, path string) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		// A bare filename must stage its temp file in the destination's
		// directory (the cwd), not os.TempDir() — rename across
		// filesystems (tmpfs /tmp) fails with EXDEV, and a cross-dir
		// rename is not the atomic same-directory replace promised above.
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("mdgan: save generator: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	var w io.Writer = f
	if checkpointWriteWrap != nil {
		w = checkpointWriteWrap(f)
	}
	if _, err = w.Write(checkpointMagic); err != nil {
		return fmt.Errorf("mdgan: save generator: %w", err)
	}
	if _, err = g.WriteParams(w); err != nil {
		return fmt.Errorf("mdgan: save generator: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("mdgan: save generator: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("mdgan: save generator: %w", err)
	}
	// CreateTemp's 0600 would tighten what os.Create used to grant;
	// restore the conventional mode before publishing the file.
	if err = os.Chmod(tmp, 0o644); err != nil {
		return fmt.Errorf("mdgan: save generator: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("mdgan: save generator: %w", err)
	}
	return nil
}

// LoadGenerator restores parameters saved with SaveGenerator into g,
// which must have the same architecture. Both current (versioned,
// dtype-framed) and pre-version float64 checkpoints load.
func LoadGenerator(g *Generator, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("mdgan: load generator: %w", err)
	}
	defer f.Close()
	var hdr [4]byte
	n, err := io.ReadFull(f, hdr[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return fmt.Errorf("mdgan: load generator: %w", err)
	}
	var r io.Reader = f
	if !bytes.Equal(hdr[:n], checkpointMagic) {
		if n == 4 && bytes.Equal(hdr[:3], checkpointMagic[:3]) {
			return fmt.Errorf("mdgan: load generator: unsupported checkpoint version %d", hdr[3])
		}
		// Legacy checkpoint (no magic): the four bytes are the first
		// parameter's rank word — replay them ahead of the rest.
		r = io.MultiReader(bytes.NewReader(hdr[:n]), f)
	}
	if _, err := g.ReadParams(r); err != nil {
		return fmt.Errorf("mdgan: load generator: %w", err)
	}
	// A well-formed checkpoint ends exactly where the parameters do.
	// Trailing bytes mean the file is not what it claims to be — a
	// concatenation, a partial overwrite by a larger older file, or a
	// different architecture's checkpoint whose prefix happened to
	// parse — and loading the prefix silently would serve garbage.
	var tail [1]byte
	if n, _ := io.ReadFull(f, tail[:]); n != 0 {
		return fmt.Errorf("mdgan: load generator: %s: trailing bytes after parameters (truncated overwrite or wrong architecture?)", path)
	}
	return nil
}

// SaveSampleGrid renders an image tensor (N, C, H, W) as a PNG grid —
// qualitative inspection to complement the MS/FID numbers.
func SaveSampleGrid(path string, x *Tensor, cols int) error {
	return render.SavePNG(path, x, cols)
}
