package mdgan_test

// Facade-level serving tests: NewSampleServer end to end against real
// checkpoint files, including the hot-reload × checkpoint-format matrix
// the internal/serve tests cannot cover (they use injected loaders):
// cross-dtype checkpoints (a float32 build's file served by a float64
// build and vice versa) and legacy pre-magic files.

import (
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mdgan"
	"mdgan/internal/tensor"
)

// newCkptGAN builds a small conditional generator with distinct
// parameters per seed.
func newCkptGAN(seed int64) *mdgan.Generator {
	return mdgan.MLPArch(16).NewGAN(seed, 0, 1).G
}

// writeCheckpointAs hand-writes a checkpoint for g with every parameter
// frame encoded at wire dtype dt — the file a build of the OTHER
// element type would produce with SaveGenerator.
func writeCheckpointAs(t *testing.T, g *mdgan.Generator, path string, dt byte) {
	t.Helper()
	buf := []byte{'M', 'D', 'G', 2}
	buf = g.Net.AppendParamsAs(buf, dt)
	if g.Embed != nil {
		buf = g.Embed.W.AppendBinaryAs(buf, dt)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeLegacyCheckpoint hand-writes the pre-magic format: bare
// rank-first float64 frames, no header, no dtype bytes.
func writeLegacyCheckpoint(t *testing.T, g *mdgan.Generator, path string) {
	t.Helper()
	var buf []byte
	for _, p := range g.Params() {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.W.Rank()))
		for _, d := range p.W.Shape() {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
		}
		for _, v := range p.W.Data {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(v)))
		}
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// replayServer recomputes what a just-started server (replica 0, the
// default Seed 1) must return for its first n-sample batch: load the
// same checkpoint, replay the latent stream, clone the forward.
func replayServer(t *testing.T, path string, seed int64, n int) *mdgan.Tensor {
	t.Helper()
	g := newCkptGAN(99) // arbitrary init; Load overwrites everything
	if err := mdgan.LoadGenerator(g, path); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	z, labels := g.SampleZ(n, rng)
	return g.Forward(z, labels, false).Clone()
}

func startServer(t *testing.T, path string) *mdgan.SampleServer {
	t.Helper()
	s, err := mdgan.NewSampleServer(mdgan.ServeOptions{
		Arch:       mdgan.MLPArch(16),
		Checkpoint: path,
		MaxWait:    time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestSampleServerServesCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.ckpt")
	if err := mdgan.SaveGenerator(newCkptGAN(41), path); err != nil {
		t.Fatal(err)
	}
	s := startServer(t, path)
	want := replayServer(t, path, 1, 3)

	got, _, err := s.Sample(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release(got)
	if !got.Equal(want, 0) {
		t.Fatal("served samples differ from checkpoint replay")
	}
}

// TestSampleServerHTTPRoundTrip drives the facade over a real HTTP
// listener: the raw tensor response must decode back to the replayed
// forward bit for bit.
func TestSampleServerHTTPRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.ckpt")
	if err := mdgan.SaveGenerator(newCkptGAN(43), path); err != nil {
		t.Fatal(err)
	}
	s := startServer(t, path)
	want := replayServer(t, path, 1, 2)

	hs := httptest.NewServer(s)
	defer hs.Close()
	resp, err := http.Post(hs.URL+"/sample?n=2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /sample: %s: %s", resp.Status, body)
	}
	if dt := resp.Header.Get("X-MDGAN-Dtype"); dt != tensor.DTypeName {
		t.Fatalf("X-MDGAN-Dtype = %q, want %q", dt, tensor.DTypeName)
	}
	var got tensor.Tensor
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatal("HTTP raw response differs from checkpoint replay")
	}
}

// TestSampleServerHotReloadCrossDtype: a running server must hot-reload
// a checkpoint written by a build of the OTHER element type — the
// trainer fleet and the serving fleet need not be compiled alike.
func TestSampleServerHotReloadCrossDtype(t *testing.T) {
	otherDT := tensor.DTypeF32
	if tensor.DTypeName == "float32" {
		otherDT = tensor.DTypeF64
	}
	path := filepath.Join(t.TempDir(), "g.ckpt")
	if err := mdgan.SaveGenerator(newCkptGAN(7), path); err != nil {
		t.Fatal(err)
	}
	s := startServer(t, path)
	before := replayServer(t, path, 1, 4)

	// The trainer (other-dtype build) rewrites the checkpoint in place.
	writeCheckpointAs(t, newCkptGAN(8), path, otherDT)
	if err := s.Reload(); err != nil {
		t.Fatalf("cross-dtype reload: %v", err)
	}
	want := replayServer(t, path, 1, 4)
	if want.Equal(before, 0) {
		t.Fatal("test is vacuous: old and new checkpoints generate identically")
	}

	got, _, err := s.Sample(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release(got)
	// No batch ran before the reload, so the first post-reload batch
	// uses the latent stream from the top — exactly what replayServer
	// replayed against the rewritten checkpoint.
	if !got.Equal(want, 0) {
		t.Fatal("post-reload samples do not match the cross-dtype checkpoint")
	}
}

// TestSampleServerServesLegacyCheckpoint: pre-magic checkpoints (bare
// float64 frames) must serve and hot-reload like current ones.
func TestSampleServerServesLegacyCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	writeLegacyCheckpoint(t, newCkptGAN(11), path)
	s := startServer(t, path)
	want := replayServer(t, path, 1, 2)

	got, _, err := s.Sample(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatal("legacy checkpoint served wrong samples")
	}
	s.Release(got)
	// And it reloads: corrupting the file must NOT take the old weights
	// down with it (reload failure keeps serving).
	if err := os.WriteFile(path, []byte{'M', 'D', 'G', 99}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err == nil {
		t.Fatal("reload of a future-version checkpoint must fail")
	}
	got2, _, err := s.Sample(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Release(got2)
}

func TestArchByName(t *testing.T) {
	good := []struct {
		name    string
		archNam string
	}{
		{"ring", "ring-mlp"},
		{"paper-mlp", "paper-mlp"},
		{"paper-cnn-mnist", "paper-cnn"},
		{"paper-cnn-cifar", "paper-cnn"},
		{"faces", "faces-cnn"},
		{"mlp:64", "scaled-mlp"},
		{"cnn:1x28x10", "scaled-cnn"},
	}
	for _, c := range good {
		a, err := mdgan.ArchByName(c.name)
		if err != nil {
			t.Errorf("ArchByName(%q): %v", c.name, err)
			continue
		}
		if a.BuildG == nil {
			t.Errorf("ArchByName(%q): nil BuildG", c.name)
		}
		if !strings.Contains(a.Name, strings.Split(c.archNam, "-")[0]) && a.Name != c.archNam {
			t.Logf("ArchByName(%q) resolved to arch %q", c.name, a.Name)
		}
	}
	for _, bad := range []string{"", "mlp", "mlp:", "mlp:x", "mlp:-3", "cnn:3x32", "cnn:axbxc", "resnet"} {
		if _, err := mdgan.ArchByName(bad); err == nil {
			t.Errorf("ArchByName(%q): expected error", bad)
		}
	}
}
