package mdgan_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"mdgan"
)

func TestRunAllAlgorithmsOnRing(t *testing.T) {
	ds := mdgan.GaussianRing(600, 8, 2.0, 0.05, 1)
	for _, algo := range []mdgan.Algorithm{mdgan.Standalone, mdgan.FLGAN, mdgan.MDGAN} {
		t.Run(string(algo), func(t *testing.T) {
			res, err := mdgan.Run(ds, mdgan.RingArch(), mdgan.Options{
				Algorithm: algo, Workers: 3, Batch: 16, Iters: 20, Seed: 2,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.G == nil {
				t.Fatal("no generator returned")
			}
			if algo != mdgan.Standalone && res.Traffic.Total() == 0 {
				t.Fatal("distributed run recorded no traffic")
			}
		})
	}
}

func TestRunProducesCurves(t *testing.T) {
	ds := mdgan.SynthDigits(400, 3)
	test := mdgan.SynthDigits(300, 4)
	scorer := mdgan.TrainScorer(test, 3)
	ev := mdgan.NewEvaluator(scorer, test, 100)
	res, err := mdgan.Run(ds, mdgan.MLPArch(32), mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 4, Batch: 10, Iters: 20, EvalEvery: 10, Seed: 5,
	}, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Iters) != 2 {
		t.Fatalf("curve points = %v", res.Curve.Iters)
	}
	for i := range res.Curve.Iters {
		if res.Curve.Score[i] < 1 || res.Curve.Score[i] > 10 {
			t.Fatalf("score out of range: %v", res.Curve.Score)
		}
		if res.Curve.FID[i] < 0 {
			t.Fatalf("FID negative: %v", res.Curve.FID)
		}
	}
}

func TestRunRejectsUnknownAlgorithm(t *testing.T) {
	ds := mdgan.GaussianRing(100, 4, 1, 0.05, 1)
	if _, err := mdgan.Run(ds, mdgan.RingArch(), mdgan.Options{Algorithm: "sgd"}, nil); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

func TestEvaluatorDeterministic(t *testing.T) {
	test := mdgan.SynthDigits(300, 6)
	scorer := mdgan.TrainScorer(test, 6)
	ev := mdgan.NewEvaluator(scorer, test, 100)
	g := mdgan.MLPArch(32).NewGAN(7, 0, 1)
	s1, f1 := ev.Eval(g.G, 10)
	s2, f2 := ev.Eval(g.G, 10)
	if s1 != s2 || f1 != f2 {
		t.Fatal("evaluation at the same iteration must be deterministic")
	}
}

func TestArchFor(t *testing.T) {
	if a := mdgan.ArchFor(mdgan.GaussianRing(10, 4, 1, 0.1, 1)); a.Name != "ring-mlp" {
		t.Fatalf("ring → %s", a.Name)
	}
	if a := mdgan.ArchFor(mdgan.SynthDigits(10, 1)); a.Name != "scaled-mlp" {
		t.Fatalf("digits → %s", a.Name)
	}
	if a := mdgan.ArchFor(mdgan.SynthCIFAR(10, 1)); a.Name != "scaled-cnn" {
		t.Fatalf("cifar → %s", a.Name)
	}
}

func TestArchParams(t *testing.T) {
	w, theta := mdgan.ArchParams(mdgan.PaperMLPArch(), 1)
	if w != 716560 || theta != 670219 {
		t.Fatalf("paper MLP params = %d/%d", w, theta)
	}
}

func TestComplexityFacade(t *testing.T) {
	p := mdgan.PaperCIFARComplexity()
	rows := mdgan.ComputeTableIV(p, []int{10, 100})
	if len(rows) != 2 || rows[0].B != 10 {
		t.Fatalf("rows = %+v", rows)
	}
	if mdgan.BytesToMB(rows[0].MDCtoWWorker) > 0.5 {
		t.Fatal("MD-GAN worker ingress should be fractions of a MB at b=10")
	}
	if red := mdgan.WorkerReduction(mdgan.PaperMNISTComplexity()); red < 1.9 || red > 2.2 {
		t.Fatalf("reduction = %v", red)
	}
}

func TestFormatters(t *testing.T) {
	curves := []mdgan.Curve{{Name: "x", Iters: []int{1}, Score: []float64{2}, FID: []float64{3}}}
	if out := mdgan.FormatCurves("t", curves); !strings.Contains(out, "x") || !strings.Contains(out, "2.000") {
		t.Fatalf("FormatCurves output:\n%s", out)
	}
	if csv := mdgan.FormatCurvesCSV(curves); !strings.Contains(csv, "x,1,2,3") {
		t.Fatalf("CSV output:\n%s", csv)
	}
	if out := mdgan.TableIIIFormulas(); !strings.Contains(out, "bdN") || !strings.Contains(out, "N(θ+w)") {
		t.Fatalf("Table III output:\n%s", out)
	}
	p := mdgan.PaperCIFARComplexity()
	if out := mdgan.FormatTableIV(mdgan.ComputeTableIV(p, []int{10, 100})); !strings.Contains(out, "Table IV") {
		t.Fatal("Table IV formatter broken")
	}
	s := mdgan.ComputeFig2(p, []int{1, 10, 100})
	if out := mdgan.FormatFig2("cifar", p, s); !strings.Contains(out, "crossover") {
		t.Fatal("Fig2 formatter broken")
	}
	if out := mdgan.FormatTableII("mnist", mdgan.PaperMNISTComplexity()); !strings.Contains(out, "reduction") {
		t.Fatal("Table II formatter broken")
	}
}

func TestCurveLast(t *testing.T) {
	var c mdgan.Curve
	if s, f := c.Last(); s != 0 || f != 0 {
		t.Fatal("empty curve must report zeros")
	}
	c = mdgan.Curve{Iters: []int{1, 2}, Score: []float64{1, 5}, FID: []float64{9, 3}}
	if s, f := c.Last(); s != 5 || f != 3 {
		t.Fatalf("Last = %v/%v", s, f)
	}
}

// TestMDGANImprovesFID: a short digits run must cut the generator's
// FID well below its untrained starting point — the weakest useful
// statement of Fig. 3's qualitative outcome, kept cheap enough for the
// unit suite (the full trajectories live in the bench harness).
func TestMDGANImprovesFID(t *testing.T) {
	train := mdgan.SynthDigits(1500, 8)
	test := mdgan.SynthDigits(600, 9)
	scorer := mdgan.TrainScorer(test, 8)
	ev := mdgan.NewEvaluator(scorer, test, 200)

	untrained := mdgan.MLPArch(64).NewGAN(10, 0, 1)
	_, fid0 := ev.Eval(untrained.G, 0)

	res, err := mdgan.Run(train, mdgan.MLPArch(64), mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 5, Batch: 10, Iters: 600,
		EvalEvery: 600, Seed: 10, K: 1,
	}, ev)
	if err != nil {
		t.Fatal(err)
	}
	_, fid := res.Curve.Last()
	if math.IsNaN(fid) || fid >= fid0*0.6 {
		t.Fatalf("trained FID %.1f must be well below untrained FID %.1f", fid, fid0)
	}
}

// TestRunWithChaosAndDeadline: the facade's fault-tolerance knobs reach
// the engine — a chaotic transport with a round deadline completes,
// reports the injected faults, and keeps the curve plumbing intact.
func TestRunWithChaosAndDeadline(t *testing.T) {
	ds := mdgan.GaussianRing(600, 8, 2.0, 0.05, 1)
	res, err := mdgan.Run(ds, mdgan.RingArch(), mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 3, Batch: 16, Iters: 25, Seed: 2,
		RoundTimeout: 250 * time.Millisecond,
		SuspectAfter: 8,
		Chaos:        &mdgan.ChaosConfig{Seed: 11, Drop: 0.02, Delay: 0.05, Duplicate: 0.02},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 25 {
		t.Fatalf("iters = %d, want 25 despite chaos", res.Iters)
	}
	if res.Chaos.Dropped+res.Chaos.Delayed+res.Chaos.Duplicated == 0 {
		t.Fatal("chaos transport injected nothing — the wrapper was not wired")
	}
	if res.Faults.Timeouts == 0 {
		t.Fatal("dropped frames never cost a timeout — fault accounting not wired")
	}
}
