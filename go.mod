module mdgan

go 1.24
