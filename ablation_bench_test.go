package mdgan_test

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// discriminator swap (§IV-C1), the batch-diversity parameter k
// (§IV-B4), the synchronous barrier vs the §VII.1 asynchronous mode,
// and the §VII.2 feedback-compression extension. Each sub-benchmark
// trains the same small MD-GAN configuration with one knob changed and
// prints the final FID, so `go test -bench=Ablation` doubles as an
// ablation study.

import (
	"fmt"
	"testing"

	"mdgan"
)

// ablationRun trains MD-GAN on digits with the given mutation and
// returns the final FID.
func ablationRun(b *testing.B, mutate func(*mdgan.Options)) float64 {
	b.Helper()
	train := mdgan.SynthDigits(1000, 11)
	test := mdgan.SynthDigits(600, 12)
	scorer := mdgan.TrainScorer(test, 11)
	ev := mdgan.NewEvaluator(scorer, test, 150)
	o := mdgan.Options{
		Algorithm: mdgan.MDGAN, Workers: 8, Batch: 10,
		Iters: 300, EvalEvery: 300, Seed: 13, K: 2,
	}
	mutate(&o)
	res, err := mdgan.Run(train, mdgan.MLPArch(48), o, ev)
	if err != nil {
		b.Fatal(err)
	}
	_, fid := res.Curve.Last()
	return fid
}

// BenchmarkAblationSwap compares swap-enabled against swap-disabled
// training (the Fig. 4 dotted-vs-plain comparison).
func BenchmarkAblationSwap(b *testing.B) {
	for _, c := range []struct {
		name string
		swap int
	}{
		{"swap-on", 1},
		{"swap-off", -1},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fid := ablationRun(b, func(o *mdgan.Options) { o.SwapEvery = c.swap })
				printEach("abl-swap-"+c.name, fmt.Sprintf("ablation %s: final FID %.1f\n", c.name, fid))
			}
		})
	}
}

// BenchmarkAblationK sweeps the batch-diversity parameter (§IV-B4:
// "the more the data diversity sent by the server to workers, the
// higher the generator scores").
func BenchmarkAblationK(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fid := ablationRun(b, func(o *mdgan.Options) { o.K = k })
				printEach(fmt.Sprintf("abl-k-%d", k), fmt.Sprintf("ablation k=%d: final FID %.1f\n", k, fid))
			}
		})
	}
}

// BenchmarkAblationAsync compares the synchronous Algorithm 1 with the
// §VII.1 asynchronous mode at an equal number of worker feedbacks.
func BenchmarkAblationAsync(b *testing.B) {
	for _, c := range []struct {
		name  string
		async bool
	}{
		{"sync", false},
		{"async", true},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fid := ablationRun(b, func(o *mdgan.Options) {
					o.Async = c.async
					if c.async {
						// One async update consumes a single feedback;
						// equalise the total feedback count.
						o.Iters *= o.Workers
						o.EvalEvery = o.Iters
					}
				})
				printEach("abl-async-"+c.name, fmt.Sprintf("ablation %s: final FID %.1f\n", c.name, fid))
			}
		})
	}
}

// BenchmarkAblationNonIID studies the paper's i.i.d. assumption
// (§III-a) by sweeping label skew, with the discriminator swap on and
// off: the swap is the mechanism expected to compensate for skewed
// shards, since each discriminator tours multiple workers' data.
func BenchmarkAblationNonIID(b *testing.B) {
	for _, c := range []struct {
		name string
		skew float64
		swap int
	}{
		{"iid-swap", 0, 1},
		{"skewed-swap", 1, 1},
		{"skewed-noswap", 1, -1},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fid := ablationRun(b, func(o *mdgan.Options) {
					o.NonIIDSkew = c.skew
					o.SwapEvery = c.swap
				})
				printEach("abl-noniid-"+c.name, fmt.Sprintf("ablation %s: final FID %.1f\n", c.name, fid))
			}
		})
	}
}

// BenchmarkAblationByzantine compares aggregation rules under a
// one-third Byzantine minority (§VII.3).
func BenchmarkAblationByzantine(b *testing.B) {
	for _, c := range []struct {
		name string
		agg  mdgan.Aggregation
	}{
		{"mean-under-attack", mdgan.AggMean},
		{"median-under-attack", mdgan.AggMedian},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fid := ablationRun(b, func(o *mdgan.Options) {
					o.K = 1 // all workers share a batch: aggregation applies across all
					o.Byzantine = map[int]mdgan.ByzantineMode{0: mdgan.ByzantineInvert, 3: mdgan.ByzantineScale}
					o.Aggregate = c.agg
				})
				printEach("abl-byz-"+c.name, fmt.Sprintf("ablation %s: final FID %.1f\n", c.name, fid))
			}
		})
	}
}

// BenchmarkAblationWorkers sweeps the cluster size K with everything
// else pinned, the ablation the work-stealing scheduler exists for:
// each worker trains its own discriminator concurrently, and final FID
// tracks how batch diversity k = ⌊ln K⌋ and shard thinning interact.
func BenchmarkAblationWorkers(b *testing.B) {
	for _, k := range workerSweep {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fid := ablationRun(b, func(o *mdgan.Options) {
					o.Workers = k
					o.K = 0 // paper default ⌊ln K⌋
				})
				printEach(fmt.Sprintf("abl-workers-%d", k), fmt.Sprintf("ablation K=%d workers: final FID %.1f\n", k, fid))
			}
		})
	}
}

// BenchmarkAblationGenLoss compares the paper's log(1−D) generator
// objective against the non-saturating heuristic.
func BenchmarkAblationGenLoss(b *testing.B) {
	for _, c := range []struct {
		name  string
		paper bool
	}{
		{"non-saturating", false},
		{"paper-log1minusD", true},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fid := ablationRun(b, func(o *mdgan.Options) { o.PaperLoss = c.paper })
				printEach("abl-loss-"+c.name, fmt.Sprintf("ablation %s: final FID %.1f\n", c.name, fid))
			}
		})
	}
}
