package mdgan

import (
	"fmt"
	"strings"
)

// Text renderers for the experiment artifacts — the bench harness and
// the CLI print these so a run regenerates the same rows/series the
// paper reports.

// FormatCurves renders score/FID trajectories side by side (the data
// behind Figs. 3, 5 and 6).
func FormatCurves(title string, curves []Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	for _, c := range curves {
		fmt.Fprintf(&b, "-- %s\n", c.Name)
		fmt.Fprintf(&b, "%10s  %10s  %10s\n", "iter", "score", "FID")
		for i := range c.Iters {
			fmt.Fprintf(&b, "%10d  %10.3f  %10.3f\n", c.Iters[i], c.Score[i], c.FID[i])
		}
	}
	return b.String()
}

// FormatCurvesCSV renders the same data as CSV (one row per point).
func FormatCurvesCSV(curves []Curve) string {
	var b strings.Builder
	b.WriteString("competitor,iter,score,fid\n")
	for _, c := range curves {
		for i := range c.Iters {
			fmt.Fprintf(&b, "%s,%d,%g,%g\n", c.Name, c.Iters[i], c.Score[i], c.FID[i])
		}
	}
	return b.String()
}

// FormatFig4 renders the Figure 4 sweep.
func FormatFig4(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("== Figure 4: final score/FID vs number of workers (MLP) ==\n")
	fmt.Fprintf(&b, "%4s  %-14s  %-5s  %10s  %10s\n", "N", "workload", "swap", "score", "FID")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d  %-14s  %-5v  %10.3f  %10.3f\n", r.N, r.Variant, r.Swap, r.Score, r.FID)
	}
	return b.String()
}

// FormatTableII renders the computation/memory complexity table with
// the headline worker-reduction factor.
func FormatTableII(name string, p ComplexityParams) string {
	t := ComputeTableII(p)
	var b strings.Builder
	fmt.Fprintf(&b, "== Table II (%s): computation and memory ==\n", name)
	fmt.Fprintf(&b, "%-22s  %14s  %14s\n", "", "FL-GAN", "MD-GAN")
	fmt.Fprintf(&b, "%-22s  %14.3g  %14.3g\n", "Computation C", t.FLComputeServer, t.MDComputeServer)
	fmt.Fprintf(&b, "%-22s  %14.3g  %14.3g\n", "Memory C", t.FLMemoryServer, t.MDMemoryServer)
	fmt.Fprintf(&b, "%-22s  %14.3g  %14.3g\n", "Computation W", t.FLComputeWorker, t.MDComputeWorker)
	fmt.Fprintf(&b, "%-22s  %14.3g  %14.3g\n", "Memory W", t.FLMemoryWorker, t.MDMemoryWorker)
	fmt.Fprintf(&b, "worker reduction factor (|w|+|θ|)/|θ| = %.2f (≈2 when G and D are of similar size)\n", WorkerReduction(p))
	return b.String()
}

// TableIIIFormulas returns the symbolic Table III exactly as printed in
// the paper.
func TableIIIFormulas() string {
	rows := [][3]string{
		{"Communication type", "FL-GAN", "MD-GAN"},
		{"C→W (C)", "N(θ+w)", "bdN"},
		{"C→W (W)", "θ+w", "bd"},
		{"W→C (W)", "θ+w", "bd"},
		{"W→C (C)", "N(θ+w)", "bdN"},
		{"Total # C↔W", "Ib/(mE)", "I"},
		{"W→W (W)", "—", "θ"},
		{"Total # W↔W", "—", "Ib/(mE)"},
	}
	var b strings.Builder
	b.WriteString("== Table III: communication complexities ==\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s  %-12s  %-10s\n", r[0], r[1], r[2])
	}
	return b.String()
}

// FormatTableIV renders the instantiated communication costs (CIFAR10
// deployment) for the given batch-size columns.
func FormatTableIV(rows []TableIVRow) string {
	var b strings.Builder
	b.WriteString("== Table IV: communication costs, CIFAR10, N=10 ==\n")
	fmt.Fprintf(&b, "%-14s", "type")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %10s  %10s", fmt.Sprintf("FL b=%d", r.B), fmt.Sprintf("MD b=%d", r.B))
	}
	b.WriteString("\n")
	line := func(label string, fl, md func(TableIVRow) float64, unit string) {
		fmt.Fprintf(&b, "%-14s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "  %10.2f  %10.2f", fl(r), md(r))
		}
		fmt.Fprintf(&b, "  %s\n", unit)
	}
	line("C→W (C)", func(r TableIVRow) float64 { return BytesToMB(r.FLCtoWServer) },
		func(r TableIVRow) float64 { return BytesToMB(r.MDCtoWServer) }, "MB")
	line("C→W (W)", func(r TableIVRow) float64 { return BytesToMB(r.FLCtoWWorker) },
		func(r TableIVRow) float64 { return BytesToMB(r.MDCtoWWorker) }, "MB")
	line("W→C (W)", func(r TableIVRow) float64 { return BytesToMB(r.FLWtoCWorker) },
		func(r TableIVRow) float64 { return BytesToMB(r.MDWtoCWorker) }, "MB")
	line("W→C (C)", func(r TableIVRow) float64 { return BytesToMB(r.FLWtoCServer) },
		func(r TableIVRow) float64 { return BytesToMB(r.MDWtoCServer) }, "MB")
	line("Total # C↔W", func(r TableIVRow) float64 { return r.FLTotalComms },
		func(r TableIVRow) float64 { return r.MDTotalComms }, "msgs")
	line("W→W (W)", func(TableIVRow) float64 { return 0 },
		func(r TableIVRow) float64 { return BytesToMB(r.MDWtoWWorker) }, "MB (FL: —)")
	line("Total # W↔W", func(TableIVRow) float64 { return 0 },
		func(r TableIVRow) float64 { return r.MDTotalSwaps }, "msgs (FL: —)")
	return b.String()
}

// FormatFig2 renders the ingress-traffic sweep with the crossover
// annotation.
func FormatFig2(name string, p ComplexityParams, s Fig2Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Figure 2 (%s): max ingress traffic per communication ==\n", name)
	fmt.Fprintf(&b, "%8s  %14s  %14s  %14s  %14s\n", "b", "MD worker", "MD server", "FL worker", "FL server")
	for i, batch := range s.B {
		fmt.Fprintf(&b, "%8d  %14.3f  %14.3f  %14.3f  %14.3f\n",
			batch, BytesToMB(s.MDWorker[i]), BytesToMB(s.MDServer[i]),
			BytesToMB(s.FLWorker[i]), BytesToMB(s.FLServer[i]))
	}
	fmt.Fprintf(&b, "worker-line crossover at b ≈ %.0f\n", CrossoverBatch(p))
	return b.String()
}

// FormatTraffic renders a measured traffic snapshot (to compare against
// the analytic tables).
func FormatTraffic(t Traffic) string {
	var b strings.Builder
	b.WriteString("== measured traffic ==\n")
	for kind, bytes := range t.Bytes {
		fmt.Fprintf(&b, "%-6v  %12d bytes  %8d msgs\n", kind, bytes, t.Msgs[kind])
	}
	return b.String()
}
