#!/usr/bin/env bash
# verify.sh — the repo's tier-1 gate plus a perf smoke, run over the
# kernel build matrix {float64, float32} × {asm, noasm}: both tensor
# dtypes (see internal/tensor/dtype64.go / dtype32.go) and, for each,
# the `noasm` build that compiles the AVX2/AVX-512 GEMM micro-kernels
# out (see internal/tensor/gemm.go). The primary (asm) suites
# additionally re-run the engine-equivalence gates once per runtime-
# forcible kernel tier (MDGAN_GEMM_KERNEL=<tier>, tiers discovered via
# mdgan-bench -list-kernels so hosts without AVX2/AVX-512 just narrow
# the axis), and once with GOMAXPROCS=4 so the intra-GEMM macro-loop
# parallelism actually fans out — every kernel × parallelism variant
# must hold the strict-engine bitwise pin.
#
#   scripts/verify.sh              # fmt, vet, build, test, bench smoke × matrix
#   MDGAN_DTYPES=float64 scripts/verify.sh
#                                  # restrict to one dtype (float64|float32|both)
#   MDGAN_KERNELS=asm scripts/verify.sh
#                                  # restrict the kernel axis (asm|noasm|both);
#                                  # noasm suites run vet/build/test + the
#                                  # engine gates (no race, no bench rows)
#   MDGAN_CHAOS=off scripts/verify.sh
#                                  # skip the named chaos/fault gates (they
#                                  # still run inside the plain test suites)
#   MDGAN_TOPO=off scripts/verify.sh
#                                  # skip the topology gates (tree-vs-flat
#                                  # engine equivalence under
#                                  # MDGAN_TOPOLOGY=tree:2 and the depth-2
#                                  # tree chaos soak)
#   MDGAN_DEFENSE=off scripts/verify.sh
#                                  # skip the defense/robustness gates
#                                  # (free-rider demotion soaks, the
#                                  # defense-on strict pin, replay
#                                  # fingerprints, temporary-
#                                  # discriminator retirement)
#   MDGAN_SERVE=off scripts/verify.sh
#                                  # skip the serving smoke gate (train a
#                                  # tiny checkpoint, boot mdgan-serve,
#                                  # sample raw + PNG, SIGHUP hot-reload,
#                                  # clean shutdown)
#   BENCH_JSON=BENCH_1.json scripts/verify.sh
#                                  # additionally (re)generate the perf
#                                  # trajectory file via cmd/mdgan-bench,
#                                  # one set of rows per dtype
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

dtypes=${MDGAN_DTYPES:-both}
kernels=${MDGAN_KERNELS:-both}
chaos=${MDGAN_CHAOS:-on}
defense=${MDGAN_DEFENSE:-on}
serve=${MDGAN_SERVE:-on}
topo=${MDGAN_TOPO:-on}

engine_gates() { # $1 = label, $2.. = go test args
    local name=$1
    shift
    # Explicit gates for the round-engine contracts (also part of the
    # plain test run, but named here so a failure is unmissable):
    # strict mode must replay serial Algorithm 1 bitwise, and the
    # pipelined driver must match strict at Iters=1 and converge with
    # it at full length.
    echo "== [$name] engine equivalence gates =="
    go test "$@" -count=1 \
        -run 'TestStrictEngineMatchesSerialReference|TestPipelinedOneIterationMatchesStrict|TestPipelinedConvergesLikeStrict' \
        ./internal/core
}

run_suite() { # $1 = dtype name, $2 = go build tags ("" for none)
    local name=$1 tags=$2 tagargs=()
    if [ -n "$tags" ]; then
        tagargs=(-tags "$tags")
    fi
    # ${tagargs[@]+...}: expanding an EMPTY array under `set -u` is an
    # "unbound variable" error on bash < 4.4 (macOS ships 3.2).
    echo "== [$name] go vet =="
    go vet ${tagargs[@]+"${tagargs[@]}"} ./...

    echo "== [$name] go build =="
    go build ${tagargs[@]+"${tagargs[@]}"} ./...

    echo "== [$name] go test =="
    go test ${tagargs[@]+"${tagargs[@]}"} ./...

    echo "== [$name] go test -race =="
    # The race gate: the work-stealing scheduler, the buffer-reuse
    # paths and the simnet transports all run under the detector, at
    # both element widths.
    go test -race ${tagargs[@]+"${tagargs[@]}"} ./...

    engine_gates "$name" ${tagargs[@]+"${tagargs[@]}"}
    # The same gates under every kernel tier the host can force: the
    # strict-engine pin must hold for every micro-kernel the binary can
    # dispatch to, not just the one the CPU probe picked. The tier list
    # comes from the binary itself (-list-kernels), so a host without
    # AVX2 or AVX-512 shrinks the axis instead of failing.
    local kern
    for kern in $(go run ${tagargs[@]+"${tagargs[@]}"} ./cmd/mdgan-bench -list-kernels); do
        MDGAN_GEMM_KERNEL=$kern engine_gates "$name/kernel=$kern" ${tagargs[@]+"${tagargs[@]}"}
    done
    # And once with GOMAXPROCS=4: one GEMM call then fans out across
    # the worker pool (the macro-loop split), and the strict replay
    # must stay bitwise despite the parallel packing.
    GOMAXPROCS=4 engine_gates "$name/gomaxprocs=4" ${tagargs[@]+"${tagargs[@]}"}

    topology_gates "$name" ${tagargs[@]+"${tagargs[@]}"}

    chaos_gates "$name" ${tagargs[@]+"${tagargs[@]}"}

    defense_gates "$name" ${tagargs[@]+"${tagargs[@]}"}

    serve_smoke "$name" ${tagargs[@]+"${tagargs[@]}"}

    echo "== [$name] bench smoke (1 iteration) =="
    go test ${tagargs[@]+"${tagargs[@]}"} -run=NONE -bench='BenchmarkMDGANIteration$|BenchmarkGeneratorForward$|BenchmarkTableII$' -benchtime=1x -benchmem .

    if [ -n "${BENCH_JSON:-}" ]; then
        echo "== [$name] writing ${BENCH_JSON} rows =="
        go run ${tagargs[@]+"${tagargs[@]}"} ./cmd/mdgan-bench -dtype "${name%%-*}" -benchjson "${BENCH_JSON}"
        echo "== [$name] benchdiff vs previous trajectory (advisory) =="
        scripts/benchdiff.sh "${BENCH_JSON}" || true
    fi
}

topology_gates() { # $1 = label, $2.. = go test args
    local name=$1
    shift
    [ "$topo" = off ] && return 0
    # Named topology gates: the engine-equivalence suite re-run under a
    # depth-2 aggregation tree (MDGAN_TOPOLOGY flips the strict test
    # into a tree-vs-flat tolerance comparison — hierarchical partial
    # sums are reassociation-equivalent to the flat mean, not bitwise),
    # plus the tree-specific fault paths: ingress reduction, aggregator
    # failure → leaf reparenting, goroutine reaping on every tree exit
    # path, and the seeded chaos soak with a partitioned aggregator.
    echo "== [$name] topology gates (tree:2) =="
    MDGAN_TOPOLOGY=tree:2 go test "$@" -count=1 \
        -run 'TestStrictEngineMatchesSerialReference' ./internal/core
    go test -race "$@" -count=1 \
        -run 'TestTreeAggregationMatchesFlat|TestTreeServerIngressReduction|TestAggregatorFailureReparentsChildren|TestTreeTrainExitPathsReapWorkers|TestChaosSoakTree' \
        ./internal/core
    go test "$@" -count=1 -run 'TestTreePlan|TestSubtree|TestParseTopology' ./internal/cluster
}

chaos_gates() { # $1 = label, $2.. = go test args
    local name=$1
    shift
    [ "$chaos" = off ] && return 0
    # Named fault-tolerance gates, under the race detector: the K=8
    # chaos soaks (both synchronous drivers over a seeded ChaosNet),
    # the deadline/suspect/rejoin and corrupt-frame regressions — all
    # of which assert no goroutine leaks across Train's exit paths —
    # and the bitwise strict pin with the round deadline armed.
    echo "== [$name] chaos & fault-tolerance gates (-race) =="
    go test -race "$@" -count=1 \
        -run 'TestChaosSoak|TestRoundDeadlineSuspectsStragglerAndRejoins|TestRoundDeadlineEscalatesToDemotion|TestCorruptFeedbackKeepsTraining|TestAsyncTimeoutDemotesUnresponsiveWorkers|TestAsyncCorruptFeedbackKeepsTraining|TestDeadlineFaultFreeKeepsStrictPin|TestTrainErrorPathStopsWorkers' \
        ./internal/core
    go test -race "$@" -count=1 -run 'TestChaos|TestTCP' ./internal/simnet
}

defense_gates() { # $1 = label, $2.. = go test args
    local name=$1
    shift
    [ "$defense" = off ] && return 0
    # Named robustness gates, under the race detector: the free-rider
    # demotion soaks (2/8 attackers per variant over a seeded ChaosNet
    # must be down-weighted then demoted while every honest worker
    # survives), the defense-on strict pin (zero attackers → the
    # weighted-aggregation path must stay dormant and replay Algorithm 1
    # bitwise), the replay-fingerprint FP32 wire round-trip, the
    # temporary-discriminator retirement paths (final feedback counted,
    # swap rendezvous released, no goroutine leaks) and the joiner
    # warm-up ramp.
    echo "== [$name] defense & free-rider gates (-race) =="
    go test -race "$@" -count=1 \
        -run 'TestDefenseFaultFreeKeepsStrictPin|TestDefenseDemotesFreeRiders|TestReplayFingerprintSurvivesFP32|TestFreeRiderFeedback|TestUnknownByzantineModeTakesCorruptStrikePath|TestRetirement|TestJoinWarmup' \
        ./internal/core
    go test "$@" -count=1 -run 'TestLifetime|TestRetire|TestDefenseScore' ./internal/cluster
}

# serve_smoke scratch state, reaped by the EXIT trap if a smoke step
# aborts the script mid-flight (a RETURN trap would persist beyond the
# function and fire on every later function return).
smoke_dir=""
smoke_pid=""
smoke_cleanup() {
    if [ -n "$smoke_pid" ]; then
        kill "$smoke_pid" 2>/dev/null || true
        smoke_pid=""
    fi
    if [ -n "$smoke_dir" ]; then
        rm -rf "$smoke_dir"
        smoke_dir=""
    fi
}
trap smoke_cleanup EXIT

serve_smoke() { # $1 = label, $2.. = go build tag args
    local name=$1
    shift
    [ "$serve" = off ] && return 0
    # End-to-end smoke of the serving tier as a user runs it: train a
    # tiny checkpoint, boot the daemon on a kernel-assigned port, pull
    # a raw sample and a PNG grid over HTTP, hot-reload via SIGHUP, and
    # shut down cleanly. Everything in-process is already unit-tested;
    # this gate is for the process plumbing (flags, signals, listener,
    # ready-file) that unit tests cannot reach.
    echo "== [$name] serve smoke (daemon, HTTP, SIGHUP reload) =="
    local dir
    smoke_dir=$(mktemp -d)
    dir=$smoke_dir
    go build "$@" -o "$dir/mdgan-train" ./cmd/mdgan-train
    go build "$@" -o "$dir/mdgan-serve" ./cmd/mdgan-serve
    "$dir/mdgan-train" -algo standalone -dataset digits -samples 64 \
        -iters 1 -eval 0 -ckpt-out "$dir/g.ckpt" >/dev/null
    "$dir/mdgan-serve" -ckpt "$dir/g.ckpt" -arch mlp:128 \
        -addr 127.0.0.1:0 -ready-file "$dir/ready" -max-wait 1ms \
        >"$dir/serve.log" 2>&1 &
    smoke_pid=$!
    local i addr=""
    for i in $(seq 1 100); do
        [ -s "$dir/ready" ] && break
        sleep 0.05
    done
    if ! [ -s "$dir/ready" ]; then
        echo "serve smoke: daemon never became ready" >&2
        cat "$dir/serve.log" >&2
        return 1
    fi
    addr=$(cat "$dir/ready")
    curl -fsS "http://$addr/healthz" | grep -q ok
    curl -fsS -X POST "http://$addr/sample?n=2" -o "$dir/raw.bin"
    [ -s "$dir/raw.bin" ]
    curl -fsS -X POST "http://$addr/sample?n=4&format=png" -o "$dir/grid.png"
    head -c 8 "$dir/grid.png" | grep -q PNG
    curl -fsS "http://$addr/statusz" | grep -q '"forwards"'
    kill -HUP "$smoke_pid"
    for i in $(seq 1 100); do
        curl -fsS "http://$addr/statusz" | grep -q '"reloads": 1' && break
        sleep 0.05
    done
    curl -fsS "http://$addr/statusz" | grep -q '"reloads": 1'
    # The reloaded daemon must still serve.
    curl -fsS -X POST "http://$addr/sample?n=1" -o "$dir/raw2.bin"
    [ -s "$dir/raw2.bin" ]
    kill -TERM "$smoke_pid"
    local status=0
    wait "$smoke_pid" || status=$?
    smoke_pid=""
    if [ "$status" -ne 0 ]; then
        echo "serve smoke: daemon exited with status $status" >&2
        cat "$dir/serve.log" >&2
        return 1
    fi
    smoke_cleanup
}

run_noasm_suite() { # $1 = dtype name, $2 = go build tags (includes noasm)
    # The noasm leg of the kernel matrix: vet, build, the full test
    # suite and the engine gates with the assembly compiled out. Race
    # and bench rows stay on the primary suites — this leg exists to
    # prove the portable build is complete and correct on its own.
    local name=$1 tags=$2
    echo "== [$name] go vet =="
    go vet -tags "$tags" ./...
    echo "== [$name] go build =="
    go build -tags "$tags" ./...
    echo "== [$name] go test =="
    go test -tags "$tags" ./...
    engine_gates "$name" -tags "$tags"
}

want_dtype() { # $1 = float64|float32
    [ "$dtypes" = both ] || [ "$dtypes" = "$1" ]
}

case "$dtypes" in
float64 | float32 | both) ;;
*)
    echo "MDGAN_DTYPES must be float64, float32 or both (got '$dtypes')" >&2
    exit 1
    ;;
esac

case "$kernels" in
asm | noasm | both) ;;
*)
    echo "MDGAN_KERNELS must be asm, noasm or both (got '$kernels')" >&2
    exit 1
    ;;
esac

if [ "$kernels" != noasm ]; then
    if want_dtype float64; then run_suite float64 ""; fi
    if want_dtype float32; then run_suite float32 f32; fi
fi
if [ "$kernels" != asm ]; then
    if want_dtype float64; then run_noasm_suite float64-noasm noasm; fi
    if want_dtype float32; then run_noasm_suite float32-noasm f32,noasm; fi
fi

echo "verify: OK"
