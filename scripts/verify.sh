#!/usr/bin/env bash
# verify.sh — the repo's tier-1 gate plus a perf smoke, run under BOTH
# tensor dtypes: the default float64 build and the `-tags f32` float32
# build (see internal/tensor/dtype64.go / dtype32.go).
#
#   scripts/verify.sh              # fmt, vet, build, test, bench smoke ×2 dtypes
#   MDGAN_DTYPES=float64 scripts/verify.sh
#                                  # restrict to one dtype (float64|float32|both)
#   BENCH_JSON=BENCH_1.json scripts/verify.sh
#                                  # additionally (re)generate the perf
#                                  # trajectory file via cmd/mdgan-bench,
#                                  # one set of rows per dtype
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

dtypes=${MDGAN_DTYPES:-both}

run_suite() { # $1 = dtype name, $2 = go build tags ("" for none)
    local name=$1 tags=$2 tagargs=()
    if [ -n "$tags" ]; then
        tagargs=(-tags "$tags")
    fi
    # ${tagargs[@]+...}: expanding an EMPTY array under `set -u` is an
    # "unbound variable" error on bash < 4.4 (macOS ships 3.2).
    echo "== [$name] go vet =="
    go vet ${tagargs[@]+"${tagargs[@]}"} ./...

    echo "== [$name] go build =="
    go build ${tagargs[@]+"${tagargs[@]}"} ./...

    echo "== [$name] go test =="
    go test ${tagargs[@]+"${tagargs[@]}"} ./...

    echo "== [$name] go test -race =="
    # The race gate: the work-stealing scheduler, the buffer-reuse
    # paths and the simnet transports all run under the detector, at
    # both element widths.
    go test -race ${tagargs[@]+"${tagargs[@]}"} ./...

    echo "== [$name] engine equivalence gates =="
    # Explicit gates for the round-engine contracts (also part of the
    # plain test run above, but named here so a failure is unmissable):
    # strict mode must replay serial Algorithm 1 bitwise, and the
    # pipelined driver must match strict at Iters=1 and converge with
    # it at full length.
    go test ${tagargs[@]+"${tagargs[@]}"} -count=1 \
        -run 'TestStrictEngineMatchesSerialReference|TestPipelinedOneIterationMatchesStrict|TestPipelinedConvergesLikeStrict' \
        ./internal/core

    echo "== [$name] bench smoke (1 iteration) =="
    go test ${tagargs[@]+"${tagargs[@]}"} -run=NONE -bench='BenchmarkMDGANIteration$|BenchmarkGeneratorForward$|BenchmarkTableII$' -benchtime=1x -benchmem .

    if [ -n "${BENCH_JSON:-}" ]; then
        echo "== [$name] writing ${BENCH_JSON} rows =="
        go run ${tagargs[@]+"${tagargs[@]}"} ./cmd/mdgan-bench -dtype "$name" -benchjson "${BENCH_JSON}"
    fi
}

case "$dtypes" in
float64) run_suite float64 "" ;;
float32) run_suite float32 f32 ;;
both)
    run_suite float64 ""
    run_suite float32 f32
    ;;
*)
    echo "MDGAN_DTYPES must be float64, float32 or both (got '$dtypes')" >&2
    exit 1
    ;;
esac

echo "verify: OK"
