#!/usr/bin/env bash
# verify.sh — the repo's tier-1 gate plus a perf smoke.
#
#   scripts/verify.sh              # fmt, vet, build, test, bench smoke
#   BENCH_JSON=BENCH_1.json scripts/verify.sh
#                                  # additionally (re)generate the perf
#                                  # trajectory file via cmd/mdgan-bench
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
# The race gate: the work-stealing scheduler, the PR-1 buffer-reuse
# paths and the simnet transports all run under the detector.
go test -race ./...

echo "== bench smoke (1 iteration) =="
go test -run=NONE -bench='BenchmarkMDGANIteration$|BenchmarkGeneratorForward$|BenchmarkTableII$' -benchtime=1x -benchmem .

if [ -n "${BENCH_JSON:-}" ]; then
    echo "== writing ${BENCH_JSON} =="
    go run ./cmd/mdgan-bench -benchjson "${BENCH_JSON}"
fi

echo "verify: OK"
